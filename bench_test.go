// Benchmarks regenerating the paper's evaluation, one family per table
// and figure. Wall time measures the simulation host; the reproduced
// quantity is the *modelled* time on the simulated T3D, reported as the
// custom metrics model-ms (modelled milliseconds) and q-levels
// (independent sets). Run the full sweep with cmd/experiments; these
// benchmarks exercise a reduced scale so `go test -bench=.` stays fast.
package repro_test

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/experiments"
	"repro/internal/graph"
	"repro/internal/ilu"
	"repro/internal/krylov"
	"repro/internal/machine"
	"repro/internal/matgen"
	"repro/internal/mis"
	"repro/internal/partition"
	"repro/internal/sparse"
)

func benchConfig() experiments.Config {
	c := experiments.Default()
	c.G0Side = 64    // 4096 unknowns
	c.TorsoSide = 16 // 4096 unknowns
	c.Procs = []int{4, 16}
	return c
}

// BenchmarkTable1Factorization: parallel factorization time (Table 1,
// Figures 4 and 5 measure the same runs across p).
func BenchmarkTable1Factorization(b *testing.B) {
	c := benchConfig()
	for _, prob := range []*experiments.Problem{c.G0(), c.Torso()} {
		for _, star := range []bool{false, true} {
			for _, p := range c.Procs {
				params := ilu.Params{M: 10, Tau: 1e-6}
				name := "ILUT"
				if star {
					params.K = c.K
					name = "ILUTstar"
				}
				b.Run(fmt.Sprintf("%s/%s/p=%d", prob.Name, name, p), func(b *testing.B) {
					var out experiments.FactorOutcome
					for i := 0; i < b.N; i++ {
						var err error
						out, _, err = c.Factorization(prob, p, params)
						if err != nil {
							b.Fatal(err)
						}
					}
					b.ReportMetric(out.Seconds*1e3, "model-ms")
					b.ReportMetric(float64(out.Levels), "q-levels")
				})
			}
		}
	}
}

// BenchmarkTable2Triangular: forward+backward substitution time per
// application (Table 2, Figure 6).
func BenchmarkTable2Triangular(b *testing.B) {
	c := benchConfig()
	prob := c.Torso()
	for _, star := range []bool{false, true} {
		for _, p := range c.Procs {
			params := ilu.Params{M: 10, Tau: 1e-4}
			name := "ILUT"
			if star {
				params.K = c.K
				name = "ILUTstar"
			}
			_, pcs, err := c.Factorization(prob, p, params)
			if err != nil {
				b.Fatal(err)
			}
			b.Run(fmt.Sprintf("%s/p=%d", name, p), func(b *testing.B) {
				var t float64
				for i := 0; i < b.N; i++ {
					t, err = c.TriangularSolve(prob, p, pcs, 3)
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(t*1e3, "model-ms")
			})
		}
	}
}

// BenchmarkTable2MatVec: the matrix–vector row of Table 2.
func BenchmarkTable2MatVec(b *testing.B) {
	c := benchConfig()
	prob := c.Torso()
	for _, p := range c.Procs {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			var t float64
			var err error
			for i := 0; i < b.N; i++ {
				t, err = c.MatVec(prob, p, 3)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(t*1e3, "model-ms")
		})
	}
}

// BenchmarkTable3GMRES: preconditioned GMRES time and matvec count.
func BenchmarkTable3GMRES(b *testing.B) {
	c := benchConfig()
	prob := c.G0()
	p := c.Procs[len(c.Procs)-1]
	for _, tc := range []struct {
		name   string
		kind   experiments.PrecondKind
		params ilu.Params
	}{
		{"ILUT", experiments.PrecondILUT, ilu.Params{M: 10, Tau: 1e-4}},
		{"ILUTstar", experiments.PrecondILUTStar, ilu.Params{M: 10, Tau: 1e-4, K: 2}},
		{"Diagonal", experiments.PrecondDiagonal, ilu.Params{}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var out experiments.GMRESOutcome
			var err error
			for i := 0; i < b.N; i++ {
				out, err = c.GMRES(prob, p, tc.kind, tc.params, 50, 3000, 1e-6)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(out.Seconds*1e3, "model-ms")
			b.ReportMetric(float64(out.NMV), "NMV")
		})
	}
}

// --- kernel microbenchmarks (ablation support) --------------------------

// BenchmarkSerialILUT measures the sequential factorization kernel, the
// baseline every parallel number is compared against.
func BenchmarkSerialILUT(b *testing.B) {
	a := matgen.Grid2D(64, 64)
	for _, tc := range []struct {
		name string
		p    ilu.Params
	}{
		{"m5_t1e-2", ilu.Params{M: 5, Tau: 1e-2}},
		{"m10_t1e-4", ilu.Params{M: 10, Tau: 1e-4}},
		{"m20_t1e-6", ilu.Params{M: 20, Tau: 1e-6}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := ilu.ILUT(a, tc.p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSerialILU0 measures the static-pattern baseline.
func BenchmarkSerialILU0(b *testing.B) {
	a := matgen.Grid2D(64, 64)
	for i := 0; i < b.N; i++ {
		if _, _, err := ilu.ILU0(a); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPartitioner measures the multilevel k-way partitioner.
func BenchmarkPartitioner(b *testing.B) {
	g := graph.FromMatrix(matgen.Grid2D(128, 128))
	for _, k := range []int{16, 64} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			var cut int
			for i := 0; i < b.N; i++ {
				part := partition.KWay(g, k, partition.Options{Seed: int64(i + 1)})
				cut = g.EdgeCut(part)
			}
			b.ReportMetric(float64(cut), "edge-cut")
		})
	}
}

// BenchmarkMIS measures the Luby independent-set kernel.
func BenchmarkMIS(b *testing.B) {
	g := graph.FromMatrix(matgen.Grid2D(100, 100))
	adj := make([][]int, g.NVtx)
	for v := 0; v < g.NVtx; v++ {
		adj[v] = g.Neighbors(v)
	}
	var size int
	for i := 0; i < b.N; i++ {
		sel := mis.Serial(adj, nil, mis.DefaultRounds, int64(i+1))
		size = 0
		for _, s := range sel {
			if s {
				size++
			}
		}
	}
	b.ReportMetric(float64(size), "set-size")
}

// BenchmarkTriangularSolveSerial measures the serial L/U solve kernel.
func BenchmarkTriangularSolveSerial(b *testing.B) {
	a := matgen.Grid2D(64, 64)
	f, _, err := ilu.ILUT(a, ilu.Params{M: 10, Tau: 1e-4})
	if err != nil {
		b.Fatal(err)
	}
	x := make([]float64, a.N)
	rhs := sparse.Ones(a.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Solve(x, rhs)
	}
}

// BenchmarkDistSpMV measures the simulated distributed SpMV end to end
// (host wall time; the modelled time is Table 2's metric).
func BenchmarkDistSpMV(b *testing.B) {
	a := matgen.Grid2D(64, 64)
	P := 8
	g := graph.FromMatrix(a)
	part := partition.KWay(g, P, partition.Options{Seed: 1})
	lay, err := dist.NewLayout(a.N, P, part)
	if err != nil {
		b.Fatal(err)
	}
	x := sparse.Ones(a.N)
	xp := lay.Scatter(x)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := machine.New(P, machine.T3D())
		m.Run(func(p *machine.Proc) {
			dm := dist.NewMatrix(p, lay, a)
			y := make([]float64, lay.NLocal(p.ID()))
			dm.MulVec(p, y, xp[p.ID()])
		})
	}
}

// BenchmarkGMRESSerial measures the serial solver loop.
func BenchmarkGMRESSerial(b *testing.B) {
	a := matgen.Grid2D(48, 48)
	f, _, err := ilu.ILUT(a, ilu.Params{M: 10, Tau: 1e-4})
	if err != nil {
		b.Fatal(err)
	}
	rhs := sparse.Ones(a.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x := make([]float64, a.N)
		if _, err := krylov.GMRES(a, f, x, rhs, krylov.Options{Restart: 30, Tol: 1e-8}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationKLevels quantifies DESIGN.md ablation 1: the reduced-row
// cap k against the level count q (the paper's central trade-off).
func BenchmarkAblationKLevels(b *testing.B) {
	c := benchConfig()
	prob := c.Torso()
	p := 16
	for _, k := range []int{1, 2, 4, 0} {
		name := fmt.Sprintf("k=%d", k)
		if k == 0 {
			name = "k=inf"
		}
		b.Run(name, func(b *testing.B) {
			var out experiments.FactorOutcome
			var err error
			for i := 0; i < b.N; i++ {
				out, _, err = c.Factorization(prob, p, ilu.Params{M: 10, Tau: 1e-6, K: k})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(out.Levels), "q-levels")
			b.ReportMetric(out.Seconds*1e3, "model-ms")
		})
	}
}

// BenchmarkFactorCore exercises core.Factor directly (plan prebuilt),
// isolating the factorization from partitioning.
func BenchmarkFactorCore(b *testing.B) {
	a := matgen.Torso(16, 16, 16, 1)
	P := 8
	g := graph.FromMatrix(a)
	part := partition.KWay(g, P, partition.Options{Seed: 1})
	lay, err := dist.NewLayout(a.N, P, part)
	if err != nil {
		b.Fatal(err)
	}
	plan, err := core.NewPlan(a, lay)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := machine.New(P, machine.T3D())
		m.Run(func(p *machine.Proc) {
			core.Factor(p, plan, core.Options{Params: ilu.Params{M: 10, Tau: 1e-4, K: 2}})
		})
	}
}

// BenchmarkFig4SpeedupG0 / Fig5 / Fig6: relative-speedup measurements
// behind the paper's figures, reported as the speedup metric between the
// smallest and largest benchmark processor counts.
func benchmarkSpeedup(b *testing.B, prob *experiments.Problem, substitution bool) {
	c := benchConfig()
	params := ilu.Params{M: 10, Tau: 1e-6, K: c.K}
	var times [2]float64
	for i := 0; i < b.N; i++ {
		for pi, p := range c.Procs {
			out, pcs, err := c.Factorization(prob, p, params)
			if err != nil {
				b.Fatal(err)
			}
			if substitution {
				t, err := c.TriangularSolve(prob, p, pcs, 3)
				if err != nil {
					b.Fatal(err)
				}
				times[pi] = t
			} else {
				times[pi] = out.Seconds
			}
		}
	}
	b.ReportMetric(times[0]/times[1], "speedup")
}

func BenchmarkFig4SpeedupG0(b *testing.B) {
	c := benchConfig()
	benchmarkSpeedup(b, c.G0(), false)
}

func BenchmarkFig5SpeedupTorso(b *testing.B) {
	c := benchConfig()
	benchmarkSpeedup(b, c.Torso(), false)
}

func BenchmarkFig6SpeedupTrisolve(b *testing.B) {
	c := benchConfig()
	benchmarkSpeedup(b, c.Torso(), true)
}

// BenchmarkAblationSchur compares the §7 variant's level count and time
// against MIS-only phase 2.
func BenchmarkAblationSchur(b *testing.B) {
	a := matgen.Torso(16, 16, 16, 1)
	P := 16
	g := graph.FromMatrix(a)
	part := partition.KWay(g, P, partition.Options{Seed: 1})
	lay, err := dist.NewLayout(a.N, P, part)
	if err != nil {
		b.Fatal(err)
	}
	plan, err := core.NewPlan(a, lay)
	if err != nil {
		b.Fatal(err)
	}
	for _, schur := range []bool{false, true} {
		name := "mis-only"
		if schur {
			name = "schur"
		}
		b.Run(name, func(b *testing.B) {
			var q float64
			var elapsed float64
			for i := 0; i < b.N; i++ {
				m := machine.New(P, machine.T3D())
				var pc0 *core.ProcPrecond
				res := m.Run(func(p *machine.Proc) {
					pc := core.Factor(p, plan, core.Options{
						Params: ilu.Params{M: 10, Tau: 1e-6, K: 2},
						Schur:  schur,
					})
					if p.ID() == 0 {
						pc0 = pc
					}
				})
				q = float64(pc0.NumLevels())
				elapsed = res.Elapsed
			}
			b.ReportMetric(q, "q-levels")
			b.ReportMetric(elapsed*1e3, "model-ms")
		})
	}
}

// BenchmarkNetworkSensitivity measures the modelled time ILUT* saves over
// ILUT under the two cost models (the paper's conclusion claim: the
// saving explodes on slow networks).
func BenchmarkNetworkSensitivity(b *testing.B) {
	for _, net := range []struct {
		name string
		cost machine.CostModel
	}{
		{"t3d", machine.T3D()},
		{"workstation", machine.Workstation()},
	} {
		b.Run(net.name, func(b *testing.B) {
			c := benchConfig()
			c.Cost = net.cost
			prob := c.Torso()
			var ratio float64
			for i := 0; i < b.N; i++ {
				plain, _, err := c.Factorization(prob, 16, ilu.Params{M: 10, Tau: 1e-6})
				if err != nil {
					b.Fatal(err)
				}
				star, _, err := c.Factorization(prob, 16, ilu.Params{M: 10, Tau: 1e-6, K: 2})
				if err != nil {
					b.Fatal(err)
				}
				ratio = plain.Seconds - star.Seconds
			}
			b.ReportMetric(ratio*1e3, "saved-model-ms")
		})
	}
}

// BenchmarkSerialMultiElim measures the serial multi-elimination driver.
func BenchmarkSerialMultiElim(b *testing.B) {
	a := matgen.Grid2D(48, 48)
	for i := 0; i < b.N; i++ {
		if _, err := ilu.MultiElimILUT(a, ilu.Params{M: 10, Tau: 1e-4}, mis.DefaultRounds, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSerialILUTP measures the pivoting variant against plain ILUT.
func BenchmarkSerialILUTP(b *testing.B) {
	a := matgen.ConvDiff2D(48, 48, 60, 40)
	for i := 0; i < b.N; i++ {
		if _, err := ilu.ILUTP(a, ilu.Params{M: 10, Tau: 1e-4}, 50); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParallelILU0 measures the static-schedule factorization the
// paper contrasts PILUT with (§3).
func BenchmarkParallelILU0(b *testing.B) {
	a := matgen.Torso(16, 16, 16, 1)
	P := 16
	g := graph.FromMatrix(a)
	part := partition.KWay(g, P, partition.Options{Seed: 1})
	lay, err := dist.NewLayout(a.N, P, part)
	if err != nil {
		b.Fatal(err)
	}
	plan, err := core.NewPlan(a, lay)
	if err != nil {
		b.Fatal(err)
	}
	var q float64
	var elapsed float64
	for i := 0; i < b.N; i++ {
		m := machine.New(P, machine.T3D())
		var pc0 *core.ProcPrecond
		res := m.Run(func(p *machine.Proc) {
			pc := core.FactorILU0(p, plan, 0, 1)
			if p.ID() == 0 {
				pc0 = pc
			}
		})
		q = float64(pc0.NumLevels())
		elapsed = res.Elapsed
	}
	b.ReportMetric(q, "q-levels")
	b.ReportMetric(elapsed*1e3, "model-ms")
}
