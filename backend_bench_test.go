// Backend wall-clock benchmark: the same p=16 TORSO ILUT* factorization
// run on the modelled machine (central scheduler, virtual clock) and on
// the real shared-memory backend (per-pair mailboxes, wall clock). Both
// compute identical factors; the difference is pure orchestration cost,
// which is what the realcomm backend exists to remove.
package repro_test

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/ilu"
	"repro/internal/machine"
	"repro/internal/matgen"
	"repro/internal/partition"
	"repro/internal/pcomm"
	"repro/internal/pcomm/modelled"
	"repro/internal/pcomm/realcomm"
)

// beforeBroadcastWakeupMs is the mean wall time of the benchmark
// factorization below on the modelled machine *before* the per-mailbox
// signaling fix, when every message delivery and clock advance hit a
// single sync.Cond broadcast and woke all P processors (O(P²) wakeups
// per exchange). Measured on this repository at the commit preceding the
// fix; kept as a constant so the report tracks the improvement without
// rebuilding old code.
const beforeBroadcastWakeupMs = 259.0

type backendDist struct {
	MeanMs float64 `json:"mean_ms"`
	MinMs  float64 `json:"min_ms"`
	MaxMs  float64 `json:"max_ms"`
}

func summarizeMs(samples []float64) backendDist {
	d := backendDist{MinMs: samples[0], MaxMs: samples[0]}
	for _, v := range samples {
		d.MeanMs += v
		if v < d.MinMs {
			d.MinMs = v
		}
		if v > d.MaxMs {
			d.MaxMs = v
		}
	}
	d.MeanMs /= float64(len(samples))
	return d
}

// TestEmitBackendBench writes BENCH_backend.json comparing wall-clock
// factorization time across communication backends at p=16. Gated on
// PILUT_BENCH_OUT (the path to write) so ordinary test runs skip it;
// `make bench-backend` sets it.
func TestEmitBackendBench(t *testing.T) {
	if netcommWorker() {
		// Creates no netcomm worlds (skipping cannot desync generation
		// numbers); only the parent process should write the report.
		t.Skip("netcomm worker process")
	}
	out := os.Getenv("PILUT_BENCH_OUT")
	if out == "" {
		t.Skip("set PILUT_BENCH_OUT=<path> to emit BENCH_backend.json")
	}
	const P = 16
	const samples = 5
	a := matgen.Torso(16, 16, 16, 1)
	g := graph.FromMatrix(a)
	part := partition.KWay(g, P, partition.Options{Seed: 1})
	lay, err := dist.NewLayout(a.N, P, part)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := core.NewPlan(a, lay)
	if err != nil {
		t.Fatal(err)
	}
	opt := core.Options{Params: ilu.Params{M: 10, Tau: 1e-4, K: 2}, Seed: 1}

	measure := func(world func() pcomm.World) ([]float64, pcomm.Result) {
		ms := make([]float64, samples)
		var last pcomm.Result
		for i := range ms {
			w := world()
			start := time.Now()
			last = w.Run(func(p pcomm.Comm) {
				core.Factor(p, plan, opt)
			})
			ms[i] = float64(time.Since(start)) / float64(time.Millisecond)
		}
		return ms, last
	}

	modMs, modRes := measure(func() pcomm.World { return modelled.New(P, machine.T3D()) })
	realMs, _ := measure(func() pcomm.World { return realcomm.New(P) })

	modD, realD := summarizeMs(modMs), summarizeMs(realMs)
	speedup := modD.MeanMs / realD.MeanMs
	report := map[string]any{
		"benchmark":  "backend_factorization_wall_clock",
		"matrix":     map[string]any{"kind": "torso", "side": 16, "n": a.N, "nnz": a.NNZ()},
		"procs":      P,
		"host_cpus":  runtime.NumCPU(),
		"gomaxprocs": runtime.GOMAXPROCS(0),
		"params":     map[string]any{"m": opt.Params.M, "tau": opt.Params.Tau, "k": opt.Params.K},
		"samples":    samples,
		"before_broadcast_wakeup": map[string]any{
			"mean_ms": beforeBroadcastWakeupMs,
			"note":    "modelled machine before per-mailbox signaling; sync.Cond broadcast woke every processor on each delivery",
		},
		"modelled":                 modD,
		"real":                     realD,
		"speedup_real_vs_modelled": speedup,
		"speedup_vs_before":        beforeBroadcastWakeupMs / realD.MeanMs,
		"modelled_virtual_seconds": modRes.Elapsed,
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(out, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("modelled %.1fms, real %.1fms, speedup %.2fx on %d CPUs",
		modD.MeanMs, realD.MeanMs, speedup, runtime.NumCPU())
	// The ≥2× target needs actual hardware parallelism: both backends pay
	// the full serial compute on a single core (the modelled machine
	// interleaves its processors, the real one timeslices goroutines), so
	// wall-clock speedup only appears once the real backend's goroutines
	// spread across cores. Report-only below 8 CPUs, enforced at 8+.
	if runtime.NumCPU() >= 8 && speedup < 2 {
		t.Errorf("real backend %.2fx faster than modelled at p=%d, want >= 2x", speedup, P)
	}
}

// BenchmarkRealFactorGOMAXPROCS runs the same p=16 real-backend
// factorization under a sweep of GOMAXPROCS values. The single-number
// backend comparison above hides how much of the real backend's win comes
// from hardware parallelism versus cheaper orchestration: on a one-core
// host (or gomaxprocs=1) the sweep's points coincide and the blind spot
// is explicit in the output, while on a multicore host the curve shows
// the scaling the speedup report enforces.
func BenchmarkRealFactorGOMAXPROCS(b *testing.B) {
	if netcommWorker() {
		b.Skip("netcomm worker process")
	}
	const P = 16
	a := matgen.Torso(16, 16, 16, 1)
	g := graph.FromMatrix(a)
	part := partition.KWay(g, P, partition.Options{Seed: 1})
	lay, err := dist.NewLayout(a.N, P, part)
	if err != nil {
		b.Fatal(err)
	}
	plan, err := core.NewPlan(a, lay)
	if err != nil {
		b.Fatal(err)
	}
	opt := core.Options{Params: ilu.Params{M: 10, Tau: 1e-4, K: 2}, Seed: 1}
	for _, gmp := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("gomaxprocs=%d", gmp), func(b *testing.B) {
			prev := runtime.GOMAXPROCS(gmp)
			defer runtime.GOMAXPROCS(prev)
			for i := 0; i < b.N; i++ {
				w := realcomm.New(P)
				w.Run(func(p pcomm.Comm) {
					core.Factor(p, plan, opt)
				})
			}
		})
	}
}
