// Package mis computes maximal independent sets with Luby's randomized
// algorithm (§4.1 of the paper): each vertex draws a random key and joins
// the set when its key beats every neighbour's; the process repeats on the
// undecided remainder for a fixed number of augmentation rounds (the paper
// uses five). Because the reduced matrices of ILUT are in general only
// *structurally nonsymmetric* directed graphs, the paper's two-step
// insert-then-remove fix-up is applied: tentative members adjacent to other
// tentative members along an out-edge withdraw, which restores
// independence without requiring the reverse edges to be known.
package mis

import (
	"fmt"
)

// DefaultRounds is the paper's augmentation-round count: almost all
// independent vertices are discovered in the first few rounds, so the
// algorithm stops early instead of iterating to exact maximality.
const DefaultRounds = 5

// key is the per-(vertex, round) pseudo-random draw. The comparison is on
// (hash, id) so ties are impossible.
func key(seed int64, round, v int) uint64 {
	x := uint64(seed)*0x9e3779b97f4a7c15 + uint64(v)*0xbf58476d1ce4e5b9 + uint64(round)*0x94d049bb133111eb
	// splitmix64 finalizer.
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func less(k1 uint64, v1 int, k2 uint64, v2 int) bool {
	if k1 != k2 {
		return k1 < k2
	}
	return v1 < v2
}

// Serial computes an independent set of the directed graph adj (adj[v]
// lists the out-neighbours of v) restricted to the vertices with active[v]
// true, running the given number of augmentation rounds. A nil active mask
// means all vertices. The returned mask marks selected vertices.
//
// Guarantees: the result is independent (no edge in either direction
// connects two selected vertices), and it is nonempty whenever any vertex
// is active.
func Serial(adj [][]int, active []bool, rounds int, seed int64) []bool {
	n := len(adj)
	if rounds <= 0 {
		rounds = DefaultRounds
	}
	act := make([]bool, n)
	if active == nil {
		for i := range act {
			act[i] = true
		}
	} else {
		copy(act, active)
	}
	sel := make([]bool, n)
	cand := make([]bool, n)
	keys := make([]uint64, n)

	for r := 0; r < rounds; r++ {
		nActive := 0
		for v := 0; v < n; v++ {
			if act[v] {
				keys[v] = key(seed, r, v)
				nActive++
			}
		}
		if nActive == 0 {
			break
		}
		// Step 1: tentative insertion — beat every active out-neighbour.
		for v := 0; v < n; v++ {
			cand[v] = false
			if !act[v] {
				continue
			}
			ok := true
			for _, u := range adj[v] {
				if u == v || !act[u] {
					continue
				}
				if !less(keys[v], v, keys[u], u) {
					ok = false
					break
				}
			}
			cand[v] = ok
		}
		// Step 2: withdraw tentative members that see another tentative
		// member along an out-edge (the nonsymmetric fix-up).
		for v := 0; v < n; v++ {
			if !cand[v] {
				continue
			}
			keep := true
			for _, u := range adj[v] {
				if u != v && cand[u] {
					keep = false
					break
				}
			}
			if keep {
				sel[v] = true
			}
		}
		// Deactivate selected vertices and everything adjacent to them in
		// either direction. Out-edges of selected vertices deactivate the
		// head; out-edges pointing *to* selected vertices deactivate the
		// tail.
		for v := 0; v < n; v++ {
			if sel[v] {
				act[v] = false
				for _, u := range adj[v] {
					act[u] = false
				}
			}
		}
		for v := 0; v < n; v++ {
			if !act[v] {
				continue
			}
			for _, u := range adj[v] {
				if sel[u] {
					act[v] = false
					break
				}
			}
		}
	}
	return sel
}

// VerifyIndependent checks that no edge of adj (in either direction)
// connects two selected vertices. The paper's Figure 1(b) pitfall — fill
// silently invalidating a precomputed colouring — makes this check the
// core safety net of the whole factorization, so tests run it on every
// level.
func VerifyIndependent(adj [][]int, sel []bool) error {
	for v := range adj {
		if !sel[v] {
			continue
		}
		for _, u := range adj[v] {
			if u != v && sel[u] {
				return fmt.Errorf("mis: selected vertices %d and %d share edge %d→%d", v, u, v, u)
			}
		}
	}
	return nil
}

// Maximal reports whether sel is maximal in the *symmetrized* graph: every
// unselected vertex has a selected neighbour (in some direction). With few
// augmentation rounds the result may legitimately be non-maximal; tests
// use this to measure how close five rounds get.
func Maximal(adj [][]int, active, sel []bool) bool {
	n := len(adj)
	blocked := make([]bool, n)
	for v := range adj {
		for _, u := range adj[v] {
			if sel[u] {
				blocked[v] = true
			}
			if sel[v] {
				blocked[u] = true
			}
		}
	}
	for v := 0; v < n; v++ {
		if active != nil && !active[v] {
			continue
		}
		if !sel[v] && !blocked[v] {
			return false
		}
	}
	return true
}
