package mis

import (
	"sort"

	"repro/internal/pcomm"
	"repro/internal/trace"
)

// Message tags used by Distributed; callers sharing a machine must avoid
// this range.
const (
	tagState = 9102
	tagCand  = 9103
	tagSel   = 9104
	tagExcl  = 9105
)

type stateMsg struct {
	Keys   []uint64
	Active []bool
}

// stateMsg crosses the communicator, so the multi-process backend must
// be able to serialize it.
func init() { pcomm.RegisterWire(stateMsg{}) }

// Exchange describes the communication plan the setup phase derived and
// the global activity count observed in the first round. The parallel
// factorization reuses the plan to push pivot rows: the processors that
// requested a vertex's MIS state are exactly the processors whose rows
// reference that vertex.
type Exchange struct {
	// NeedBy[q] lists local indices of owned vertices processor q needs.
	NeedBy [][]int
	// ReqFrom[q] lists global ids this processor requested from q.
	ReqFrom [][]int
	// GlobalActive is the total number of active vertices at entry.
	GlobalActive int
}

// Distributed computes an independent set of a directed graph whose
// vertices are distributed over the processors of a virtual machine.
// It mirrors the paper's implementation: a communication setup phase
// determines which vertex keys each processor pair must exchange (the
// boundary vertices), then each augmentation round performs three
// neighbour exchanges (keys, tentative flags, selected flags) plus the
// exclusion notices required by the directed two-step fix-up.
//
//   - owned lists this processor's global vertex ids;
//   - adj[i] lists the out-neighbours (global ids) of owned[i];
//   - active[i] marks vertices still eligible (nil = all);
//   - owner maps any global id appearing in adj to its processor.
//
// All processors must call Distributed collectively with the same rounds
// and seed. The returned mask is over owned, and the union across
// processors is independent and nonempty whenever any vertex is active.
func Distributed(p pcomm.Comm, owned []int, adj [][]int, active []bool, owner func(int) int, rounds int, seed int64) []bool {
	sel, _ := DistributedPlan(p, owned, adj, active, owner, rounds, seed)
	return sel
}

// DistributedPlan is Distributed exposing the communication plan and the
// global activity count (see Exchange).
func DistributedPlan(p pcomm.Comm, owned []int, adj [][]int, active []bool, owner func(int) int, rounds int, seed int64) ([]bool, *Exchange) {
	if rounds <= 0 {
		rounds = DefaultRounds
	}
	nLocal := len(owned)
	P := p.P()

	localIdx := make(map[int]int, nLocal)
	for i, g := range owned {
		localIdx[g] = i
	}

	// --- communication setup phase -------------------------------------
	// Collect the remote vertices whose state we need: every out-neighbour
	// we do not own.
	reqFrom := make([][]int, P)
	remoteSlot := make(map[int]int) // global id → index into remote arrays
	var remotes []int
	for _, nbrs := range adj {
		for _, g := range nbrs {
			if _, ok := localIdx[g]; ok {
				continue
			}
			if _, ok := remoteSlot[g]; ok {
				continue
			}
			remoteSlot[g] = len(remotes)
			remotes = append(remotes, g)
			q := owner(g)
			reqFrom[q] = append(reqFrom[q], g)
		}
	}
	for q := range reqFrom {
		sort.Ints(reqFrom[q])
	}
	// Re-slot remotes in (proc, id) order so message payloads are
	// positional.
	remotes = remotes[:0]
	for q := 0; q < P; q++ {
		for _, g := range reqFrom[q] {
			remoteSlot[g] = len(remotes)
			remotes = append(remotes, g)
		}
	}

	// Tell every owner which of its vertices we need: flatten request
	// lists as [dst, count, ids...]* and allgather.
	var flat []int
	for q := 0; q < P; q++ {
		if len(reqFrom[q]) == 0 {
			continue
		}
		flat = append(flat, q, len(reqFrom[q]))
		flat = append(flat, reqFrom[q]...)
	}
	allReq := pcomm.AllGatherInts(p, flat)
	needBy := make([][]int, P) // needBy[q]: local indices of vertices proc q needs
	for src := 0; src < P; src++ {
		f := allReq[src]
		for i := 0; i < len(f); {
			dst, cnt := f[i], f[i+1]
			ids := f[i+2 : i+2+cnt]
			i += 2 + cnt
			if dst != p.ID() {
				continue
			}
			for _, g := range ids {
				li, ok := localIdx[g]
				if !ok {
					panic("mis: processor asked for a vertex we do not own")
				}
				needBy[src] = append(needBy[src], li)
			}
		}
	}

	// --- augmentation rounds --------------------------------------------
	act := make([]bool, nLocal)
	if active == nil {
		for i := range act {
			act[i] = true
		}
	} else {
		copy(act, active)
	}
	sel := make([]bool, nLocal)
	cand := make([]bool, nLocal)
	keys := make([]uint64, nLocal)

	remKey := make([]uint64, len(remotes))
	remAct := make([]bool, len(remotes))
	remCand := make([]bool, len(remotes))
	remSel := make([]bool, len(remotes))

	// exchange sends one flag/key set per boundary vertex in both
	// directions, following the setup lists.
	exchangeBools := func(tag int, local []bool, remote []bool) {
		for q := 0; q < P; q++ {
			if q == p.ID() || len(needBy[q]) == 0 {
				continue
			}
			msg := make([]bool, len(needBy[q]))
			for k, li := range needBy[q] {
				msg[k] = local[li]
			}
			p.Send(q, tag, msg, pcomm.BytesOfBools(len(msg)))
		}
		pos := 0
		for q := 0; q < P; q++ {
			if q == p.ID() || len(reqFrom[q]) == 0 {
				continue
			}
			msg := p.Recv(q, tag).([]bool)
			copy(remote[pos:pos+len(msg)], msg)
			pos += len(msg)
		}
	}

	// Tracing is local-only: round counts and candidate/selected tallies are
	// recorded on this processor's timeline without any added communication,
	// so the cost model is identical with and without a recorder attached.
	tr := p.Tracer()
	tMIS := p.Time()
	roundsRun := 0

	ex := &Exchange{NeedBy: needBy, ReqFrom: reqFrom}
	for r := 0; r < rounds; r++ {
		nActive := 0
		for i := range owned {
			if act[i] {
				keys[i] = key(seed, r, owned[i])
				nActive++
			}
		}
		// A single global reduction in the first round detects the
		// nothing-to-do case; later rounds run unconditionally (messages
		// stay matched, and an empty round is cheap), keeping the
		// synchronization count at one per MIS call.
		if r == 0 {
			ex.GlobalActive = p.AllReduceInt(nActive, pcomm.OpSum)
		}
		if ex.GlobalActive == 0 {
			break
		}

		// Exchange keys + active state of boundary vertices.
		for q := 0; q < P; q++ {
			if q == p.ID() || len(needBy[q]) == 0 {
				continue
			}
			msg := stateMsg{Keys: make([]uint64, len(needBy[q])), Active: make([]bool, len(needBy[q]))}
			for k, li := range needBy[q] {
				msg.Keys[k] = keys[li]
				msg.Active[k] = act[li]
			}
			p.Send(q, tagState, msg,
				pcomm.BytesOfUint64s(len(needBy[q]))+pcomm.BytesOfBools(len(needBy[q])))
		}
		pos := 0
		for q := 0; q < P; q++ {
			if q == p.ID() || len(reqFrom[q]) == 0 {
				continue
			}
			msg := p.Recv(q, tagState).(stateMsg)
			copy(remKey[pos:], msg.Keys)
			copy(remAct[pos:], msg.Active)
			pos += len(msg.Keys)
		}

		// Step 1: tentative insertion.
		scanned := 0
		for i, g := range owned {
			cand[i] = false
			if !act[i] {
				continue
			}
			ok := true
			for _, u := range adj[i] {
				if u == g {
					continue
				}
				scanned++
				var uk uint64
				var ua bool
				if li, isLocal := localIdx[u]; isLocal {
					uk, ua = keys[li], act[li]
				} else {
					s := remoteSlot[u]
					uk, ua = remKey[s], remAct[s]
				}
				if ua && !less(keys[i], g, uk, u) {
					ok = false
					break
				}
			}
			cand[i] = ok
		}
		p.Work(float64(scanned))

		// Exchange tentative flags; step 2 withdraws members that see
		// another tentative member along an out-edge.
		exchangeBools(tagCand, cand, remCand)
		newSel := make([]bool, nLocal)
		for i, g := range owned {
			if !cand[i] {
				continue
			}
			keep := true
			for _, u := range adj[i] {
				if u == g {
					continue
				}
				var uc bool
				if li, isLocal := localIdx[u]; isLocal {
					uc = cand[li]
				} else {
					uc = remCand[remoteSlot[u]]
				}
				if uc {
					keep = false
					break
				}
			}
			if keep {
				newSel[i] = true
				sel[i] = true
				act[i] = false
			}
		}

		// Exchange selected flags: a vertex whose out-neighbour was
		// selected deactivates.
		exchangeBools(tagSel, newSel, remSel)
		for i, g := range owned {
			if !act[i] {
				continue
			}
			for _, u := range adj[i] {
				if u == g {
					continue
				}
				var us bool
				if li, isLocal := localIdx[u]; isLocal {
					us = newSel[li]
				} else {
					us = remSel[remoteSlot[u]]
				}
				if us {
					act[i] = false
					break
				}
			}
		}

		// Exclusion notices along out-edges of selected vertices: the head
		// of each such edge must deactivate even though it may not see the
		// selected tail. Notices flow opposite to the request lists.
		excl := make([][]int, P)
		for i, g := range owned {
			if !newSel[i] {
				continue
			}
			for _, u := range adj[i] {
				if u == g {
					continue
				}
				if li, isLocal := localIdx[u]; isLocal {
					act[li] = false
				} else {
					excl[owner(u)] = append(excl[owner(u)], u)
				}
			}
		}
		for q := 0; q < P; q++ {
			if q == p.ID() || len(reqFrom[q]) == 0 {
				continue
			}
			// Copy before sending: excl[q] stays referenced by the sender
			// for the rest of the round, and a sent slice must never share
			// memory with anything the sender may touch again.
			p.Send(q, tagExcl, pcomm.CopyInts(excl[q]), pcomm.BytesOfInts(len(excl[q])))
		}
		for q := 0; q < P; q++ {
			if q == p.ID() || len(needBy[q]) == 0 {
				continue
			}
			ids := p.Recv(q, tagExcl).([]int)
			for _, g := range ids {
				if li, ok := localIdx[g]; ok {
					act[li] = false
				}
			}
		}

		roundsRun++
		if tr.Enabled() {
			nCand, nSel := 0, 0
			for i := range owned {
				if cand[i] {
					nCand++
				}
				if newSel[i] {
					nSel++
				}
			}
			tr.Instant("mis", "round", p.Time(),
				trace.I("round", r), trace.I("candidates", nCand),
				trace.I("selected", nSel), trace.I("active_in", nActive))
		}
	}
	if tr.Enabled() {
		nSel := 0
		for i := range sel {
			if sel[i] {
				nSel++
			}
		}
		tr.Span("mis", "distributed", tMIS, p.Time(),
			trace.I("rounds", roundsRun), trace.I("global_active", ex.GlobalActive),
			trace.I("selected_local", nSel), trace.I("owned", nLocal))
	}
	return sel, ex
}
