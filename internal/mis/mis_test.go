package mis

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/machine"
	"repro/internal/matgen"
	"repro/internal/pcomm"
	"repro/internal/pcomm/pcommtest"
)

// symAdj builds symmetric adjacency lists from a graph.
func symAdj(g *graph.Graph) [][]int {
	adj := make([][]int, g.NVtx)
	for v := 0; v < g.NVtx; v++ {
		adj[v] = append([]int(nil), g.Neighbors(v)...)
	}
	return adj
}

func countSel(sel []bool) int {
	n := 0
	for _, s := range sel {
		if s {
			n++
		}
	}
	return n
}

func TestSerialIndependentOnGrid(t *testing.T) {
	g := graph.FromMatrix(matgen.Grid2D(10, 10))
	adj := symAdj(g)
	sel := Serial(adj, nil, DefaultRounds, 1)
	if err := VerifyIndependent(adj, sel); err != nil {
		t.Fatal(err)
	}
	if countSel(sel) == 0 {
		t.Fatal("empty independent set")
	}
}

func TestSerialNonemptyGuarantee(t *testing.T) {
	// Even a single round on a clique selects exactly one vertex.
	n := 12
	adj := make([][]int, n)
	for v := 0; v < n; v++ {
		for u := 0; u < n; u++ {
			if u != v {
				adj[v] = append(adj[v], u)
			}
		}
	}
	sel := Serial(adj, nil, 1, 7)
	if got := countSel(sel); got != 1 {
		t.Fatalf("clique MIS size = %d, want 1", got)
	}
	if err := VerifyIndependent(adj, sel); err != nil {
		t.Fatal(err)
	}
}

func TestSerialRespectsActiveMask(t *testing.T) {
	g := graph.FromMatrix(matgen.Grid2D(6, 6))
	adj := symAdj(g)
	active := make([]bool, g.NVtx)
	for v := 0; v < g.NVtx; v += 2 {
		active[v] = true
	}
	sel := Serial(adj, active, DefaultRounds, 3)
	for v, s := range sel {
		if s && !active[v] {
			t.Fatalf("inactive vertex %d selected", v)
		}
	}
	if countSel(sel) == 0 {
		t.Fatal("no active vertex selected")
	}
}

func TestSerialDirectedTwoStep(t *testing.T) {
	// The paper's example: a directed edge (u,v) with keys such that both
	// would join under naive Luby. The two-step rule must keep the set
	// independent regardless of seed.
	adj := [][]int{
		1: {0}, // edge 1→0 only
		0: {},
		2: {},
	}
	adj = [][]int{{}, {0}, {}}
	for seed := int64(0); seed < 50; seed++ {
		sel := Serial(adj, nil, DefaultRounds, seed)
		if sel[0] && sel[1] {
			t.Fatalf("seed %d: both endpoints of directed edge selected", seed)
		}
		if !sel[2] {
			t.Fatalf("seed %d: isolated vertex not selected", seed)
		}
	}
}

func TestSerialDirectedCycles(t *testing.T) {
	// Directed 3-cycle plus chords; must stay independent for any seed.
	adj := [][]int{{1}, {2}, {0}, {0, 1}}
	for seed := int64(0); seed < 30; seed++ {
		sel := Serial(adj, nil, DefaultRounds, seed)
		if err := VerifyIndependent(adj, sel); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if countSel(sel) == 0 {
			t.Fatalf("seed %d: empty set", seed)
		}
	}
}

func TestSerialFiveRoundsNearMaximal(t *testing.T) {
	g := graph.FromMatrix(matgen.Grid2D(20, 20))
	adj := symAdj(g)
	sel := Serial(adj, nil, DefaultRounds, 5)
	if !Maximal(adj, nil, sel) {
		// Five rounds may be short of maximal, but on a grid the gap
		// should be tiny: measure it.
		uncovered := 0
		covered := make([]bool, len(adj))
		for v := range adj {
			if sel[v] {
				covered[v] = true
				for _, u := range adj[v] {
					covered[u] = true
				}
			}
		}
		for v := range adj {
			if !covered[v] {
				uncovered++
			}
		}
		if uncovered > len(adj)/20 {
			t.Errorf("5 rounds left %d/%d vertices uncovered", uncovered, len(adj))
		}
	}
}

func TestVerifyIndependentDetectsViolation(t *testing.T) {
	adj := [][]int{{1}, {0}}
	if err := VerifyIndependent(adj, []bool{true, true}); err == nil {
		t.Fatal("violation not detected")
	}
}

// Property: independence holds for random directed graphs over many seeds.
func TestSerialIndependenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(40)
		adj := make([][]int, n)
		for v := 0; v < n; v++ {
			for e := 0; e < r.Intn(5); e++ {
				u := r.Intn(n)
				if u != v {
					adj[v] = append(adj[v], u)
				}
			}
		}
		sel := Serial(adj, nil, DefaultRounds, seed)
		if VerifyIndependent(adj, sel) != nil {
			return false
		}
		return countSel(sel) > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// --- distributed -------------------------------------------------------

// distribute rows of a grid graph round-robin across P procs and run the
// distributed MIS; verify against the global structure.
func runDistributed(t *testing.T, adj [][]int, P, rounds int, seed int64) []bool {
	t.Helper()
	n := len(adj)
	ownerOf := func(g int) int { return g % P }
	globalSel := make([]bool, n)
	m := pcommtest.New(t, P, machine.T3D())
	var mu = make(chan struct{}, 1)
	mu <- struct{}{}
	m.Run(func(p pcomm.Comm) {
		var owned []int
		var localAdj [][]int
		for v := 0; v < n; v++ {
			if ownerOf(v) == p.ID() {
				owned = append(owned, v)
				localAdj = append(localAdj, adj[v])
			}
		}
		sel := Distributed(p, owned, localAdj, nil, ownerOf, rounds, seed)
		<-mu
		for i, g := range owned {
			globalSel[g] = sel[i]
		}
		mu <- struct{}{}
	})
	return globalSel
}

func TestDistributedMatchesIndependence(t *testing.T) {
	g := graph.FromMatrix(matgen.Grid2D(12, 12))
	adj := symAdj(g)
	for _, P := range []int{1, 2, 4, 7} {
		sel := runDistributed(t, adj, P, DefaultRounds, 9)
		if err := VerifyIndependent(adj, sel); err != nil {
			t.Fatalf("P=%d: %v", P, err)
		}
		if countSel(sel) == 0 {
			t.Fatalf("P=%d: empty set", P)
		}
	}
}

func TestDistributedEqualsSerial(t *testing.T) {
	// The distributed algorithm with deterministic keys must select
	// exactly the serial result, regardless of P.
	g := graph.FromMatrix(matgen.Grid2D(9, 11))
	adj := symAdj(g)
	want := Serial(adj, nil, DefaultRounds, 13)
	for _, P := range []int{2, 3, 8} {
		got := runDistributed(t, adj, P, DefaultRounds, 13)
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("P=%d: vertex %d: distributed %v, serial %v", P, v, got[v], want[v])
			}
		}
	}
}

func TestDistributedDirected(t *testing.T) {
	// Random directed graph: distributed two-step must stay independent.
	r := rand.New(rand.NewSource(2))
	n := 60
	adj := make([][]int, n)
	for v := 0; v < n; v++ {
		for e := 0; e < 3; e++ {
			u := r.Intn(n)
			if u != v {
				adj[v] = append(adj[v], u)
			}
		}
	}
	sel := runDistributed(t, adj, 5, DefaultRounds, 31)
	if err := VerifyIndependent(adj, sel); err != nil {
		t.Fatal(err)
	}
	if countSel(sel) == 0 {
		t.Fatal("empty set")
	}
	// And must match serial.
	want := Serial(adj, nil, DefaultRounds, 31)
	for v := range want {
		if sel[v] != want[v] {
			t.Fatalf("vertex %d differs from serial", v)
		}
	}
}

func TestDistributedActiveMask(t *testing.T) {
	g := graph.FromMatrix(matgen.Grid2D(8, 8))
	adj := symAdj(g)
	n := len(adj)
	P := 4
	ownerOf := func(gid int) int { return gid % P }
	globalSel := make([]bool, n)
	gate := make(chan struct{}, 1)
	gate <- struct{}{}
	m := pcommtest.New(t, P, machine.Zero())
	m.Run(func(p pcomm.Comm) {
		var owned []int
		var localAdj [][]int
		var act []bool
		for v := 0; v < n; v++ {
			if ownerOf(v) == p.ID() {
				owned = append(owned, v)
				localAdj = append(localAdj, adj[v])
				act = append(act, v < n/2)
			}
		}
		sel := Distributed(p, owned, localAdj, act, ownerOf, DefaultRounds, 4)
		<-gate
		for i, g := range owned {
			globalSel[g] = sel[i]
		}
		gate <- struct{}{}
	})
	for v := n / 2; v < n; v++ {
		if globalSel[v] {
			t.Fatalf("inactive vertex %d selected", v)
		}
	}
	if countSel(globalSel) == 0 {
		t.Fatal("no active vertex selected")
	}
}
