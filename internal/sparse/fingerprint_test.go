package sparse

import "testing"

// fpTestMatrix builds a small structurally nonsymmetric matrix whose rows
// have distinct patterns, so permutations genuinely move content around.
func fpTestMatrix() *CSR {
	b := NewBuilder(5, 5)
	entries := []struct {
		i, j int
		v    float64
	}{
		{0, 0, 4}, {0, 1, -1}, {0, 4, 0.5},
		{1, 1, 4}, {1, 2, -1},
		{2, 2, 4}, {2, 0, -2},
		{3, 3, 4}, {3, 4, -1},
		{4, 4, 4}, {4, 3, -1}, {4, 0, 0.25},
	}
	for _, e := range entries {
		b.Add(e.i, e.j, e.v)
	}
	return b.Build()
}

func TestFingerprintIdenticalMatrices(t *testing.T) {
	a := fpTestMatrix()
	clone := a.Clone()
	fa, fc := Fingerprint(a), Fingerprint(clone)
	if fa != fc {
		t.Fatalf("clone fingerprint differs: %s vs %s", fa, fc)
	}
	// A structurally identical matrix assembled through a different code
	// path (builder vs clone) must also agree.
	b := NewBuilder(a.N, a.M)
	for i := 0; i < a.N; i++ {
		cols, vals := a.Row(i)
		for k, j := range cols {
			b.Add(i, j, vals[k])
		}
	}
	if fb := Fingerprint(b.Build()); fb != fa {
		t.Fatalf("rebuilt fingerprint differs: %s vs %s", fb, fa)
	}
	if len(fa) != 32 {
		t.Fatalf("fingerprint %q has length %d, want 32 hex chars", fa, len(fa))
	}
}

func TestFingerprintPermutedMatrixDiffers(t *testing.T) {
	a := fpTestMatrix()
	perm := []int{2, 0, 4, 1, 3}
	p := a.Permute(perm)
	if Fingerprint(a) == Fingerprint(p) {
		t.Fatalf("permuted matrix has the same fingerprint")
	}
	// Round-tripping the permutation restores the fingerprint.
	back := p.Permute(InversePermutation(perm))
	if Fingerprint(a) != Fingerprint(back) {
		t.Fatalf("inverse permutation did not restore the fingerprint")
	}
}

func TestFingerprintValuePerturbationDiffers(t *testing.T) {
	a := fpTestMatrix()
	fa := Fingerprint(a)
	b := a.Clone()
	b.Vals[3] += 1e-13 // tiny perturbation still changes the bits
	if Fingerprint(b) == fa {
		t.Fatalf("value-perturbed matrix has the same fingerprint")
	}
	// Structure-only change: same values, one extra explicit zero.
	c := NewBuilder(a.N, a.M)
	for i := 0; i < a.N; i++ {
		cols, vals := a.Row(i)
		for k, j := range cols {
			c.Add(i, j, vals[k])
		}
	}
	c.Add(1, 4, 0)
	if Fingerprint(c.Build()) == fa {
		t.Fatalf("pattern-extended matrix has the same fingerprint")
	}
}

func TestFingerprintDimensionsMatter(t *testing.T) {
	// An empty 3×4 and 4×3 matrix share all (empty) entry arrays except
	// the row-pointer length; dims are hashed explicitly as well.
	if Fingerprint(NewCSR(3, 4)) == Fingerprint(NewCSR(4, 3)) {
		t.Fatalf("transposed empty dimensions collide")
	}
}
