package sparse

import "testing"

// fpTestMatrix builds a small structurally nonsymmetric matrix whose rows
// have distinct patterns, so permutations genuinely move content around.
func fpTestMatrix() *CSR {
	b := NewBuilder(5, 5)
	entries := []struct {
		i, j int
		v    float64
	}{
		{0, 0, 4}, {0, 1, -1}, {0, 4, 0.5},
		{1, 1, 4}, {1, 2, -1},
		{2, 2, 4}, {2, 0, -2},
		{3, 3, 4}, {3, 4, -1},
		{4, 4, 4}, {4, 3, -1}, {4, 0, 0.25},
	}
	for _, e := range entries {
		b.Add(e.i, e.j, e.v)
	}
	return b.Build()
}

func TestFingerprintIdenticalMatrices(t *testing.T) {
	a := fpTestMatrix()
	clone := a.Clone()
	fa, fc := Fingerprint(a), Fingerprint(clone)
	if fa != fc {
		t.Fatalf("clone fingerprint differs: %s vs %s", fa, fc)
	}
	// A structurally identical matrix assembled through a different code
	// path (builder vs clone) must also agree.
	b := NewBuilder(a.N, a.M)
	for i := 0; i < a.N; i++ {
		cols, vals := a.Row(i)
		for k, j := range cols {
			b.Add(i, j, vals[k])
		}
	}
	if fb := Fingerprint(b.Build()); fb != fa {
		t.Fatalf("rebuilt fingerprint differs: %s vs %s", fb, fa)
	}
	if len(fa) != 32 {
		t.Fatalf("fingerprint %q has length %d, want 32 hex chars", fa, len(fa))
	}
}

func TestFingerprintPermutedMatrixDiffers(t *testing.T) {
	a := fpTestMatrix()
	perm := []int{2, 0, 4, 1, 3}
	p := a.Permute(perm)
	if Fingerprint(a) == Fingerprint(p) {
		t.Fatalf("permuted matrix has the same fingerprint")
	}
	// Round-tripping the permutation restores the fingerprint.
	back := p.Permute(InversePermutation(perm))
	if Fingerprint(a) != Fingerprint(back) {
		t.Fatalf("inverse permutation did not restore the fingerprint")
	}
}

func TestFingerprintValuePerturbationDiffers(t *testing.T) {
	a := fpTestMatrix()
	fa := Fingerprint(a)
	b := a.Clone()
	b.Vals[3] += 1e-13 // tiny perturbation still changes the bits
	if Fingerprint(b) == fa {
		t.Fatalf("value-perturbed matrix has the same fingerprint")
	}
	// Structure-only change: same values, one extra explicit zero.
	c := NewBuilder(a.N, a.M)
	for i := 0; i < a.N; i++ {
		cols, vals := a.Row(i)
		for k, j := range cols {
			c.Add(i, j, vals[k])
		}
	}
	c.Add(1, 4, 0)
	if Fingerprint(c.Build()) == fa {
		t.Fatalf("pattern-extended matrix has the same fingerprint")
	}
}

func TestPatternFingerprintIgnoresValues(t *testing.T) {
	a := fpTestMatrix()
	pa, va, fa := PatternFingerprint(a), ValueFingerprint(a), Fingerprint(a)
	if pa == va || pa == fa || va == fa {
		t.Fatalf("fingerprint families collide: pattern=%s value=%s full=%s", pa, va, fa)
	}

	// A value edit must change the value and full fingerprints but leave
	// the pattern key unchanged — this is the property the symbolic cache
	// relies on for matrix sequences.
	b := a.Clone()
	for k := range b.Vals {
		b.Vals[k] *= 1 + 1e-3*float64(k+1)
	}
	if got := PatternFingerprint(b); got != pa {
		t.Fatalf("value edit changed pattern fingerprint: %s vs %s", got, pa)
	}
	if ValueFingerprint(b) == va {
		t.Fatalf("value edit did not change value fingerprint")
	}
	if Fingerprint(b) == fa {
		t.Fatalf("value edit did not change full fingerprint")
	}

	// Clones agree on all three keys.
	c := a.Clone()
	if PatternFingerprint(c) != pa || ValueFingerprint(c) != va || Fingerprint(c) != fa {
		t.Fatalf("clone fingerprints differ from original")
	}
}

func TestPatternFingerprintSeesStructure(t *testing.T) {
	a := fpTestMatrix()
	pa := PatternFingerprint(a)

	// Adding an explicit zero leaves every stored value's bits intact but
	// changes the structure: the pattern key must move.
	b := NewBuilder(a.N, a.M)
	for i := 0; i < a.N; i++ {
		cols, vals := a.Row(i)
		for k, j := range cols {
			b.Add(i, j, vals[k])
		}
	}
	b.Add(1, 4, 0)
	if PatternFingerprint(b.Build()) == pa {
		t.Fatalf("pattern-extended matrix kept the pattern fingerprint")
	}

	// Permutations move structure too.
	if PatternFingerprint(a.Permute([]int{2, 0, 4, 1, 3})) == pa {
		t.Fatalf("permuted matrix kept the pattern fingerprint")
	}
}

func TestValueFingerprintLengthAndDims(t *testing.T) {
	a := fpTestMatrix()
	for _, fp := range []string{PatternFingerprint(a), ValueFingerprint(a)} {
		if len(fp) != 32 {
			t.Fatalf("fingerprint %q has length %d, want 32 hex chars", fp, len(fp))
		}
	}
	if PatternFingerprint(NewCSR(3, 4)) == PatternFingerprint(NewCSR(4, 3)) {
		t.Fatalf("transposed empty dimensions collide on pattern fingerprint")
	}
	if ValueFingerprint(NewCSR(3, 4)) == ValueFingerprint(NewCSR(4, 3)) {
		t.Fatalf("transposed empty dimensions collide on value fingerprint")
	}
}

// fpTestMatrixFullFingerprint was produced by the pre-split Fingerprint
// implementation on fpTestMatrix().
const fpTestMatrixFullFingerprint = "430b76fe5c9c5ae9d6e2bfc1a9a8a281"

func TestFingerprintEncodingUnchangedBySplit(t *testing.T) {
	// The full fingerprint keys the factorization cache AND the HRW
	// cluster routing, so its encoding is pinned: this literal was
	// produced by the pre-split implementation and must never change.
	if got := Fingerprint(fpTestMatrix()); got != fpTestMatrixFullFingerprint {
		t.Fatalf("Fingerprint(fpTestMatrix()) = %s, want pinned %s", got, fpTestMatrixFullFingerprint)
	}
}

func TestFingerprintDimensionsMatter(t *testing.T) {
	// An empty 3×4 and 4×3 matrix share all (empty) entry arrays except
	// the row-pointer length; dims are hashed explicitly as well.
	if Fingerprint(NewCSR(3, 4)) == Fingerprint(NewCSR(4, 3)) {
		t.Fatalf("transposed empty dimensions collide")
	}
}
