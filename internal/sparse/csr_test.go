package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func testMatrix() *CSR {
	// 4×4:
	//  2 -1  0  0
	// -1  2 -1  0
	//  0 -1  2 -1
	//  0  0 -1  2
	return FromDense([][]float64{
		{2, -1, 0, 0},
		{-1, 2, -1, 0},
		{0, -1, 2, -1},
		{0, 0, -1, 2},
	})
}

func TestFromDenseAndAt(t *testing.T) {
	a := testMatrix()
	if a.N != 4 || a.M != 4 {
		t.Fatalf("dims = %d×%d, want 4×4", a.N, a.M)
	}
	if got := a.NNZ(); got != 10 {
		t.Fatalf("NNZ = %d, want 10", got)
	}
	if got := a.At(1, 2); got != -1 {
		t.Errorf("At(1,2) = %v, want -1", got)
	}
	if got := a.At(0, 3); got != 0 {
		t.Errorf("At(0,3) = %v, want 0", got)
	}
	if got := a.At(2, 2); got != 2 {
		t.Errorf("At(2,2) = %v, want 2", got)
	}
}

func TestRowAccessorsSorted(t *testing.T) {
	a := testMatrix()
	for i := 0; i < a.N; i++ {
		cols, vals := a.Row(i)
		if len(cols) != len(vals) {
			t.Fatalf("row %d: len(cols)=%d len(vals)=%d", i, len(cols), len(vals))
		}
		for k := 1; k < len(cols); k++ {
			if cols[k] <= cols[k-1] {
				t.Fatalf("row %d not strictly sorted: %v", i, cols)
			}
		}
	}
}

func TestBuilderDuplicatesSummed(t *testing.T) {
	b := NewBuilder(2, 2)
	b.Add(0, 0, 1)
	b.Add(0, 0, 2.5)
	b.Add(1, 1, -1)
	b.Add(0, 1, 4)
	a := b.Build()
	if got := a.At(0, 0); got != 3.5 {
		t.Errorf("duplicate sum: got %v, want 3.5", got)
	}
	if got := a.At(0, 1); got != 4.0 {
		t.Errorf("At(0,1) = %v, want 4", got)
	}
	if a.NNZ() != 3 {
		t.Errorf("NNZ = %d, want 3", a.NNZ())
	}
}

func TestBuilderPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range Add")
		}
	}()
	NewBuilder(2, 2).Add(2, 0, 1)
}

func TestMulVec(t *testing.T) {
	a := testMatrix()
	x := []float64{1, 2, 3, 4}
	y := make([]float64, 4)
	a.MulVec(y, x)
	want := []float64{0, 0, 0, 5} // tridiagonal [-1 2 -1] action
	for i := range want {
		if math.Abs(y[i]-want[i]) > 1e-15 {
			t.Errorf("y[%d] = %v, want %v", i, y[i], want[i])
		}
	}
}

func TestMulVecTMatchesTransposeMulVec(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randomCSR(rng, 17, 13, 0.2)
	x := randomVec(rng, 17)
	y1 := make([]float64, 13)
	y2 := make([]float64, 13)
	a.MulVecT(y1, x)
	a.Transpose().MulVec(y2, x)
	for i := range y1 {
		if math.Abs(y1[i]-y2[i]) > 1e-12 {
			t.Fatalf("MulVecT mismatch at %d: %v vs %v", i, y1[i], y2[i])
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randomCSR(rng, 23, 11, 0.15)
	b := a.Transpose().Transpose()
	if !a.Equal(b) {
		t.Fatal("transpose twice did not return original")
	}
}

func TestTransposeEntries(t *testing.T) {
	a := testMatrix()
	at := a.Transpose()
	for i := 0; i < a.N; i++ {
		for j := 0; j < a.M; j++ {
			if a.At(i, j) != at.At(j, i) {
				t.Fatalf("transpose entry mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestPermuteSymmetric(t *testing.T) {
	a := testMatrix()
	perm := []int{2, 0, 3, 1}
	p := a.Permute(perm)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if got, want := p.At(perm[i], perm[j]), a.At(i, j); got != want {
				t.Fatalf("Permute: entry (%d,%d)→(%d,%d) = %v, want %v", i, j, perm[i], perm[j], got, want)
			}
		}
	}
}

func TestPermuteIdentity(t *testing.T) {
	a := testMatrix()
	p := a.Permute(IdentityPermutation(4))
	if !a.Equal(p) {
		t.Fatal("identity permutation changed the matrix")
	}
}

func TestPermuteRows(t *testing.T) {
	a := testMatrix()
	perm := []int{3, 1, 0, 2}
	p := a.PermuteRows(perm)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if got, want := p.At(perm[i], j), a.At(i, j); got != want {
				t.Fatalf("PermuteRows: row %d→%d col %d = %v, want %v", i, perm[i], j, got, want)
			}
		}
	}
}

func TestInversePermutation(t *testing.T) {
	perm := []int{2, 0, 3, 1}
	inv := InversePermutation(perm)
	for i, p := range perm {
		if inv[p] != i {
			t.Fatalf("inv[%d] = %d, want %d", p, inv[p], i)
		}
	}
}

func TestInversePermutationPanicsOnDuplicate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for duplicate permutation entry")
		}
	}()
	InversePermutation([]int{0, 0, 1})
}

func TestSymmetrizeStructure(t *testing.T) {
	a := FromDense([][]float64{
		{1, 5, 0},
		{0, 2, 0},
		{7, 0, 3},
	})
	s := a.SymmetrizeStructure()
	// Pattern must contain (1,0) and (0,2) as explicit (zero) entries.
	hasEntry := func(m *CSR, i, j int) bool {
		cols, _ := m.Row(i)
		for _, c := range cols {
			if c == j {
				return true
			}
		}
		return false
	}
	for _, e := range [][2]int{{0, 1}, {1, 0}, {2, 0}, {0, 2}} {
		if !hasEntry(s, e[0], e[1]) {
			t.Errorf("symmetrized pattern missing (%d,%d)", e[0], e[1])
		}
	}
	// Original values preserved.
	if s.At(0, 1) != 5 || s.At(2, 0) != 7 {
		t.Error("symmetrization altered original values")
	}
	if s.At(1, 0) != 0 || s.At(0, 2) != 0 {
		t.Error("fill-in entries should be explicit zeros")
	}
}

func TestDiagonalAndNorms(t *testing.T) {
	a := testMatrix()
	d := a.Diagonal()
	for i, v := range d {
		if v != 2 {
			t.Errorf("Diagonal[%d] = %v, want 2", i, v)
		}
	}
	if got := a.RowNorm1(1); got != 4 {
		t.Errorf("RowNorm1(1) = %v, want 4", got)
	}
	if got := a.RowNorm2(0); math.Abs(got-math.Sqrt(5)) > 1e-15 {
		t.Errorf("RowNorm2(0) = %v, want sqrt(5)", got)
	}
}

func TestMaxAbsDiff(t *testing.T) {
	a := testMatrix()
	b := a.Clone()
	if d := MaxAbsDiff(a, b); d != 0 {
		t.Fatalf("identical matrices differ by %v", d)
	}
	b.Vals[0] += 0.25
	if d := MaxAbsDiff(a, b); math.Abs(d-0.25) > 1e-15 {
		t.Fatalf("MaxAbsDiff = %v, want 0.25", d)
	}
	// Entry present only in b.
	c := FromDense([][]float64{{0, 0}, {0, 0}})
	e := FromDense([][]float64{{0, 0.5}, {0, 0}})
	if d := MaxAbsDiff(c, e); d != 0.5 {
		t.Fatalf("MaxAbsDiff one-sided = %v, want 0.5", d)
	}
}

func TestFromRows(t *testing.T) {
	a := FromRows(2, 3,
		[][]int{{0, 2}, {1}},
		[][]float64{{1, 2}, {3}},
	)
	if a.At(0, 2) != 2 || a.At(1, 1) != 3 || a.NNZ() != 3 {
		t.Fatal("FromRows produced wrong matrix")
	}
}

func TestFromRowsPanicsUnsorted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unsorted row")
		}
	}()
	FromRows(1, 3, [][]int{{2, 0}}, [][]float64{{1, 2}})
}

func TestIdentity(t *testing.T) {
	a := Identity(5)
	x := []float64{1, 2, 3, 4, 5}
	y := make([]float64, 5)
	a.MulVec(y, x)
	for i := range x {
		if y[i] != x[i] {
			t.Fatalf("identity MulVec changed x at %d", i)
		}
	}
}

// Property: permuting a matrix and permuting vectors commute with MulVec:
// (P A Pᵀ)(P x) = P(A x).
func TestPermuteMulVecProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(20)
		a := randomCSR(r, n, n, 0.3)
		perm := randomPermutation(r, n)
		x := randomVec(r, n)

		ax := make([]float64, n)
		a.MulVec(ax, x)
		pax := PermuteVec(ax, perm)

		pap := a.Permute(perm)
		px := PermuteVec(x, perm)
		papx := make([]float64, n)
		pap.MulVec(papx, px)

		for i := range pax {
			if math.Abs(pax[i]-papx[i]) > 1e-10 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: Builder collapse is order-independent.
func TestBuilderOrderIndependence(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(10)
		type trip struct {
			i, j int
			v    float64
		}
		var trips []trip
		for k := 0; k < 30; k++ {
			trips = append(trips, trip{r.Intn(n), r.Intn(n), r.NormFloat64()})
		}
		b1 := NewBuilder(n, n)
		for _, tr := range trips {
			b1.Add(tr.i, tr.j, tr.v)
		}
		a1 := b1.Build()
		// Shuffled order.
		r.Shuffle(len(trips), func(x, y int) { trips[x], trips[y] = trips[y], trips[x] })
		b2 := NewBuilder(n, n)
		for _, tr := range trips {
			b2.Add(tr.i, tr.j, tr.v)
		}
		a2 := b2.Build()
		return MaxAbsDiff(a1, a2) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// --- test helpers shared by the package ---

func randomCSR(r *rand.Rand, n, m int, density float64) *CSR {
	b := NewBuilder(n, m)
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			if r.Float64() < density {
				b.Add(i, j, r.NormFloat64())
			}
		}
	}
	return b.Build()
}

func randomVec(r *rand.Rand, n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = r.NormFloat64()
	}
	return x
}

func randomPermutation(r *rand.Rand, n int) []int {
	p := IdentityPermutation(n)
	r.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}
