package sparse

import (
	"fmt"
	"sort"
)

// Builder assembles a CSR matrix from (row, col, value) triplets in any
// order. Duplicate entries are summed, matching finite-element assembly
// semantics.
type Builder struct {
	n, m int
	rows []int
	cols []int
	vals []float64
}

// NewBuilder returns a Builder for an n×m matrix.
func NewBuilder(n, m int) *Builder {
	return &Builder{n: n, m: m}
}

// Add records the triplet (i, j, v). Zero values are kept as explicit
// entries; use the resulting pattern deliberately.
func (b *Builder) Add(i, j int, v float64) {
	if i < 0 || i >= b.n || j < 0 || j >= b.m {
		panic(fmt.Sprintf("sparse: Builder.Add index (%d,%d) out of range for %d×%d", i, j, b.n, b.m))
	}
	b.rows = append(b.rows, i)
	b.cols = append(b.cols, j)
	b.vals = append(b.vals, v)
}

// Len reports the number of recorded triplets (before duplicate collapse).
func (b *Builder) Len() int { return len(b.rows) }

// Build produces the CSR matrix: triplets bucketed by row, sorted by
// column, duplicates summed. The Builder may be reused afterwards; its
// triplet list is left intact.
func (b *Builder) Build() *CSR {
	count := make([]int, b.n+1)
	for _, i := range b.rows {
		count[i+1]++
	}
	for i := 0; i < b.n; i++ {
		count[i+1] += count[i]
	}
	order := make([]int, len(b.rows))
	next := append([]int(nil), count[:b.n]...)
	for k, i := range b.rows {
		order[next[i]] = k
		next[i]++
	}

	a := &CSR{N: b.n, M: b.m, RowPtr: make([]int, b.n+1)}
	a.Cols = make([]int, 0, len(b.rows))
	a.Vals = make([]float64, 0, len(b.rows))
	for i := 0; i < b.n; i++ {
		lo, hi := count[i], count[i+1]
		rowIdx := order[lo:hi]
		sort.Slice(rowIdx, func(x, y int) bool { return b.cols[rowIdx[x]] < b.cols[rowIdx[y]] })
		for k := 0; k < len(rowIdx); {
			j := b.cols[rowIdx[k]]
			var v float64
			for ; k < len(rowIdx) && b.cols[rowIdx[k]] == j; k++ {
				v += b.vals[rowIdx[k]]
			}
			a.Cols = append(a.Cols, j)
			a.Vals = append(a.Vals, v)
		}
		a.RowPtr[i+1] = len(a.Cols)
	}
	return a
}

// FromDense builds a CSR matrix from a dense slice-of-slices, storing only
// nonzero entries. Intended for tests and examples.
func FromDense(d [][]float64) *CSR {
	n := len(d)
	m := 0
	if n > 0 {
		m = len(d[0])
	}
	b := NewBuilder(n, m)
	for i := 0; i < n; i++ {
		if len(d[i]) != m {
			panic("sparse: FromDense: ragged rows")
		}
		for j := 0; j < m; j++ {
			if d[i][j] != 0 {
				b.Add(i, j, d[i][j])
			}
		}
	}
	return b.Build()
}

// FromRows builds a CSR matrix directly from per-row (cols, vals) pairs.
// Each row's columns must be strictly increasing; the function panics
// otherwise. This is the fast path used by the factorization code, which
// produces rows already sorted.
func FromRows(n, m int, cols [][]int, vals [][]float64) *CSR {
	if len(cols) != n || len(vals) != n {
		panic("sparse: FromRows: row count mismatch")
	}
	a := &CSR{N: n, M: m, RowPtr: make([]int, n+1)}
	nnz := 0
	for i := 0; i < n; i++ {
		if len(cols[i]) != len(vals[i]) {
			panic("sparse: FromRows: cols/vals length mismatch")
		}
		nnz += len(cols[i])
	}
	a.Cols = make([]int, 0, nnz)
	a.Vals = make([]float64, 0, nnz)
	for i := 0; i < n; i++ {
		prev := -1
		for k, j := range cols[i] {
			if j <= prev || j >= m {
				panic(fmt.Sprintf("sparse: FromRows: row %d columns not strictly increasing or out of range", i))
			}
			prev = j
			a.Cols = append(a.Cols, j)
			a.Vals = append(a.Vals, vals[i][k])
		}
		a.RowPtr[i+1] = len(a.Cols)
	}
	return a
}

// Identity returns the n×n identity matrix.
func Identity(n int) *CSR {
	a := &CSR{N: n, M: n, RowPtr: make([]int, n+1), Cols: make([]int, n), Vals: make([]float64, n)}
	for i := 0; i < n; i++ {
		a.RowPtr[i+1] = i + 1
		a.Cols[i] = i
		a.Vals[i] = 1
	}
	return a
}
