package sparse

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
)

// Fingerprint version strings are folded into every hash so that a change
// to an encoding can never collide with hashes computed by an older
// scheme, and so the three fingerprint families can never collide with
// each other even on matrices whose payloads would hash identically.
const (
	fingerprintVersion        = "pilut-fp-v1"
	patternFingerprintVersion = "pilut-pfp-v1"
	valueFingerprintVersion   = "pilut-vfp-v1"
)

// hashCSR is the shared fingerprint body: it hashes the version string,
// the dimensions, and whichever of the structure (row pointers + column
// indices) and value payloads the caller selects. The byte stream for
// pattern+values under fingerprintVersion is exactly the historical
// Fingerprint encoding — cache keys and HRW cluster routing depend on
// that stability.
func hashCSR(a *CSR, version string, pattern, values bool) string {
	h := sha256.New()
	var scratch [8]byte
	writeU64 := func(v uint64) {
		binary.LittleEndian.PutUint64(scratch[:], v)
		h.Write(scratch[:])
	}

	h.Write([]byte(version))
	writeU64(uint64(a.N))
	writeU64(uint64(a.M))
	writeU64(uint64(a.NNZ()))

	// Hash in sizeable chunks: a per-entry Write call would dominate the
	// cost on the multi-hundred-thousand-entry matrices the service keys.
	buf := make([]byte, 0, 1<<14)
	flush := func() {
		h.Write(buf)
		buf = buf[:0]
	}
	put := func(v uint64) {
		if len(buf)+8 > cap(buf) {
			flush()
		}
		buf = binary.LittleEndian.AppendUint64(buf, v)
	}
	if pattern {
		for _, p := range a.RowPtr {
			put(uint64(p))
		}
		for _, c := range a.Cols {
			put(uint64(c))
		}
	}
	if values {
		for _, v := range a.Vals {
			put(math.Float64bits(v))
		}
	}
	flush()

	sum := h.Sum(nil)
	return hex.EncodeToString(sum[:16])
}

// Fingerprint returns a stable content hash of the matrix: two matrices
// have the same fingerprint exactly when they have identical dimensions,
// row pointers, column indices and values (bit-for-bit on the float64
// payload). The hash is the key of the solver service's factorization
// cache, so it must be insensitive to everything but content — in
// particular it does not depend on spare slice capacity or on the address
// of the matrix. Permuting a matrix or perturbing a single value yields a
// different fingerprint.
func Fingerprint(a *CSR) string {
	return hashCSR(a, fingerprintVersion, true, true)
}

// PatternFingerprint hashes only the sparsity structure: dimensions, row
// pointers and column indices. Two matrices share a pattern fingerprint
// exactly when they have identical nonzero patterns, regardless of the
// values stored in them. It keys the service's symbolic-analysis cache:
// a matrix sequence with a fixed pattern and evolving values maps to one
// pattern key and many value keys, so the partition/layout/interface
// analysis is reused while each value set still gets its own numeric
// factorization.
func PatternFingerprint(a *CSR) string {
	return hashCSR(a, patternFingerprintVersion, true, false)
}

// ValueFingerprint hashes only the dimensions and the value payload
// (bit-for-bit). Together with PatternFingerprint it decomposes
// Fingerprint: equal pattern + equal value fingerprints imply the full
// fingerprints agree. It exists so callers can tell "same pattern, new
// values" (refactor only) apart from "same matrix" (full cache hit)
// without hashing the structure twice.
func ValueFingerprint(a *CSR) string {
	return hashCSR(a, valueFingerprintVersion, false, true)
}
