package sparse

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
)

// fingerprintVersion is folded into every fingerprint so that a change to
// the encoding can never collide with hashes computed by an older scheme.
const fingerprintVersion = "pilut-fp-v1"

// Fingerprint returns a stable content hash of the matrix: two matrices
// have the same fingerprint exactly when they have identical dimensions,
// row pointers, column indices and values (bit-for-bit on the float64
// payload). The hash is the key of the solver service's factorization
// cache, so it must be insensitive to everything but content — in
// particular it does not depend on spare slice capacity or on the address
// of the matrix. Permuting a matrix or perturbing a single value yields a
// different fingerprint.
func Fingerprint(a *CSR) string {
	h := sha256.New()
	var scratch [8]byte
	writeU64 := func(v uint64) {
		binary.LittleEndian.PutUint64(scratch[:], v)
		h.Write(scratch[:])
	}

	h.Write([]byte(fingerprintVersion))
	writeU64(uint64(a.N))
	writeU64(uint64(a.M))
	writeU64(uint64(a.NNZ()))

	// Hash in sizeable chunks: a per-entry Write call would dominate the
	// cost on the multi-hundred-thousand-entry matrices the service keys.
	buf := make([]byte, 0, 1<<14)
	flush := func() {
		h.Write(buf)
		buf = buf[:0]
	}
	put := func(v uint64) {
		if len(buf)+8 > cap(buf) {
			flush()
		}
		buf = binary.LittleEndian.AppendUint64(buf, v)
	}
	for _, p := range a.RowPtr {
		put(uint64(p))
	}
	for _, c := range a.Cols {
		put(uint64(c))
	}
	for _, v := range a.Vals {
		put(math.Float64bits(v))
	}
	flush()

	sum := h.Sum(nil)
	return hex.EncodeToString(sum[:16])
}
