package sparse

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteMatrixMarket writes the matrix in MatrixMarket coordinate format
// (real, general), the interchange format used by sparse-matrix
// collections. Indices are 1-based on disk.
func WriteMatrixMarket(w io.Writer, a *CSR) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%%%%MatrixMarket matrix coordinate real general\n"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(bw, "%d %d %d\n", a.N, a.M, a.NNZ()); err != nil {
		return err
	}
	for i := 0; i < a.N; i++ {
		cols, vals := a.Row(i)
		for k, j := range cols {
			if _, err := fmt.Fprintf(bw, "%d %d %.17g\n", i+1, j+1, vals[k]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// maxMMDim bounds the dimensions a MatrixMarket header may declare.
// Building the matrix allocates O(n) bookkeeping before any entry is
// verified, so a three-integer header must not be able to commit gigabytes;
// 1<<24 rows is far beyond the paper's problems while keeping the
// worst-case pre-allocation in the low hundreds of megabytes.
const maxMMDim = 1 << 24

// ReadMatrixMarket parses a MatrixMarket coordinate file (real; general or
// symmetric — symmetric input is expanded to full storage). Pattern and
// complex files are rejected, as are headers declaring negative entry
// counts, non-square symmetric shapes, or dimensions beyond maxMMDim.
func ReadMatrixMarket(r io.Reader) (*CSR, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)

	if !sc.Scan() {
		return nil, fmt.Errorf("sparse: MatrixMarket: empty input")
	}
	header := strings.Fields(strings.ToLower(sc.Text()))
	if len(header) < 5 || header[0] != "%%matrixmarket" || header[1] != "matrix" || header[2] != "coordinate" {
		return nil, fmt.Errorf("sparse: MatrixMarket: unsupported header %q", sc.Text())
	}
	if header[3] != "real" && header[3] != "integer" {
		return nil, fmt.Errorf("sparse: MatrixMarket: unsupported field type %q", header[3])
	}
	symmetric := false
	switch header[4] {
	case "general":
	case "symmetric":
		symmetric = true
	default:
		return nil, fmt.Errorf("sparse: MatrixMarket: unsupported symmetry %q", header[4])
	}

	// Skip comments, read the size line.
	var n, m, nnz int
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		if _, err := fmt.Sscan(line, &n, &m, &nnz); err != nil {
			return nil, fmt.Errorf("sparse: MatrixMarket: bad size line %q: %v", line, err)
		}
		break
	}
	if n <= 0 || m <= 0 {
		return nil, fmt.Errorf("sparse: MatrixMarket: invalid dimensions %d×%d", n, m)
	}
	if n > maxMMDim || m > maxMMDim {
		return nil, fmt.Errorf("sparse: MatrixMarket: dimensions %d×%d exceed the %d limit", n, m, maxMMDim)
	}
	if nnz < 0 {
		return nil, fmt.Errorf("sparse: MatrixMarket: negative entry count %d", nnz)
	}
	if symmetric && n != m {
		return nil, fmt.Errorf("sparse: MatrixMarket: symmetric matrix must be square, got %d×%d", n, m)
	}

	b := NewBuilder(n, m)
	read := 0
	for read < nnz && sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 3 {
			return nil, fmt.Errorf("sparse: MatrixMarket: bad entry line %q", line)
		}
		i, err := strconv.Atoi(f[0])
		if err != nil {
			return nil, fmt.Errorf("sparse: MatrixMarket: bad row index %q", f[0])
		}
		j, err := strconv.Atoi(f[1])
		if err != nil {
			return nil, fmt.Errorf("sparse: MatrixMarket: bad column index %q", f[1])
		}
		v, err := strconv.ParseFloat(f[2], 64)
		if err != nil {
			return nil, fmt.Errorf("sparse: MatrixMarket: bad value %q", f[2])
		}
		if i < 1 || i > n || j < 1 || j > m {
			return nil, fmt.Errorf("sparse: MatrixMarket: entry (%d,%d) out of range", i, j)
		}
		b.Add(i-1, j-1, v)
		if symmetric && i != j {
			b.Add(j-1, i-1, v)
		}
		read++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if read < nnz {
		return nil, fmt.Errorf("sparse: MatrixMarket: expected %d entries, found %d", nnz, read)
	}
	return b.Build(), nil
}
