package sparse

import "math"

// Dot returns the inner product xᵀy. It panics on length mismatch.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("sparse: Dot length mismatch")
	}
	var s float64
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	return math.Sqrt(Dot(x, x))
}

// NormInf returns the maximum-magnitude entry of x.
func NormInf(x []float64) float64 {
	var m float64
	for _, v := range x {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// Axpy computes y ← y + alpha·x in place.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic("sparse: Axpy length mismatch")
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Scale computes x ← alpha·x in place.
func Scale(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// Ones returns a length-n vector of ones; the paper's right-hand sides are
// b = A·e with e all ones.
func Ones(n int) []float64 {
	e := make([]float64, n)
	for i := range e {
		e[i] = 1
	}
	return e
}

// Gathered returns x restricted to the given indices: out[k] = x[idx[k]].
func Gathered(x []float64, idx []int) []float64 {
	out := make([]float64, len(idx))
	for k, i := range idx {
		out[k] = x[i]
	}
	return out
}

// ScatterInto writes vals into x at the given indices: x[idx[k]] = vals[k].
func ScatterInto(x []float64, idx []int, vals []float64) {
	for k, i := range idx {
		x[i] = vals[k]
	}
}

// PermuteVec returns the vector y with y[perm[i]] = x[i].
func PermuteVec(x []float64, perm []int) []float64 {
	y := make([]float64, len(x))
	for i, p := range perm {
		y[p] = x[i]
	}
	return y
}
