package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWorkRowScatterGather(t *testing.T) {
	w := NewWorkRow(10)
	w.Scatter([]int{3, 7, 1}, []float64{3.0, 7.0, 1.0})
	if w.NNZ() != 3 {
		t.Fatalf("NNZ = %d, want 3", w.NNZ())
	}
	cols, vals := w.Gather(0, 10, nil, nil)
	wantCols := []int{1, 3, 7}
	wantVals := []float64{1, 3, 7}
	for k := range wantCols {
		if cols[k] != wantCols[k] || vals[k] != wantVals[k] {
			t.Fatalf("Gather = (%v,%v), want (%v,%v)", cols, vals, wantCols, wantVals)
		}
	}
}

func TestWorkRowAccumulates(t *testing.T) {
	w := NewWorkRow(5)
	w.Add(2, 1.5)
	w.Add(2, 2.5)
	if got := w.Get(2); got != 4.0 {
		t.Fatalf("accumulated value = %v, want 4", got)
	}
	if w.NNZ() != 1 {
		t.Fatalf("NNZ = %d, want 1 (no duplicate index)", w.NNZ())
	}
}

func TestWorkRowSetOverwrites(t *testing.T) {
	w := NewWorkRow(5)
	w.Add(1, 3)
	w.Set(1, -7)
	if got := w.Get(1); got != -7 {
		t.Fatalf("Set result = %v, want -7", got)
	}
}

func TestWorkRowDropAndReset(t *testing.T) {
	w := NewWorkRow(8)
	w.Scatter([]int{0, 4, 6}, []float64{1, 2, 3})
	w.Drop(4)
	if w.Has(4) || w.Get(4) != 0 {
		t.Fatal("Drop did not clear position 4")
	}
	idx := w.Indices()
	if len(idx) != 2 || idx[0] != 0 || idx[1] != 6 {
		t.Fatalf("Indices after drop = %v, want [0 6]", idx)
	}
	w.Reset()
	if w.NNZ() != 0 {
		t.Fatal("Reset left marked entries")
	}
	for j := 0; j < 8; j++ {
		if w.Get(j) != 0 || w.Has(j) {
			t.Fatalf("Reset left residue at %d", j)
		}
	}
}

func TestWorkRowGatherRange(t *testing.T) {
	w := NewWorkRow(10)
	w.Scatter([]int{1, 3, 5, 7, 9}, []float64{1, 3, 5, 7, 9})
	cols, vals := w.Gather(3, 8, nil, nil)
	if len(cols) != 3 || cols[0] != 3 || cols[2] != 7 {
		t.Fatalf("range gather cols = %v, want [3 5 7]", cols)
	}
	if vals[1] != 5 {
		t.Fatalf("range gather vals = %v", vals)
	}
}

func TestDropBelow(t *testing.T) {
	w := NewWorkRow(6)
	w.Scatter([]int{0, 1, 2, 3}, []float64{0.01, -0.5, 0.02, 3})
	n := w.DropBelow(0, 6, 0.1, 2) // protect index 2 even though tiny
	if n != 1 {
		t.Fatalf("dropped %d, want 1", n)
	}
	if w.Has(0) {
		t.Error("index 0 should have been dropped")
	}
	if !w.Has(2) {
		t.Error("protected index 2 was dropped")
	}
	if !w.Has(1) || !w.Has(3) {
		t.Error("large entries were dropped")
	}
}

func TestKeepLargest(t *testing.T) {
	w := NewWorkRow(10)
	w.Scatter([]int{0, 1, 2, 3, 4}, []float64{5, -4, 3, -2, 1})
	dropped := w.KeepLargest(0, 10, 2, -1)
	if dropped != 3 {
		t.Fatalf("dropped %d, want 3", dropped)
	}
	if !w.Has(0) || !w.Has(1) {
		t.Error("two largest entries should survive")
	}
	if w.Has(2) || w.Has(3) || w.Has(4) {
		t.Error("smaller entries should have been dropped")
	}
}

func TestKeepLargestProtected(t *testing.T) {
	w := NewWorkRow(10)
	w.Scatter([]int{0, 1, 2}, []float64{5, 4, 0.001})
	w.KeepLargest(0, 10, 1, 2)
	if !w.Has(2) {
		t.Error("protected diagonal dropped")
	}
	if !w.Has(0) {
		t.Error("largest entry dropped")
	}
	if w.Has(1) {
		t.Error("entry 1 should have been dropped (m=1 excluding protected)")
	}
}

func TestKeepLargestRange(t *testing.T) {
	w := NewWorkRow(10)
	w.Scatter([]int{0, 1, 5, 6}, []float64{100, 200, 1, 2})
	// Only restrict within [5,10); the large low entries must be untouched.
	w.KeepLargest(5, 10, 1, -1)
	if !w.Has(0) || !w.Has(1) {
		t.Error("entries outside range were dropped")
	}
	if w.Has(5) {
		t.Error("smaller in-range entry should drop")
	}
	if !w.Has(6) {
		t.Error("larger in-range entry should survive")
	}
}

func TestKeepLargestDeterministicTies(t *testing.T) {
	w := NewWorkRow(6)
	w.Scatter([]int{4, 2, 0}, []float64{1, 1, 1})
	w.KeepLargest(0, 6, 2, -1)
	// Ties break toward smaller column index.
	if !w.Has(0) || !w.Has(2) || w.Has(4) {
		t.Errorf("tie-break wrong: has0=%v has2=%v has4=%v", w.Has(0), w.Has(2), w.Has(4))
	}
}

// Property: after arbitrary operations, Indices() is sorted, duplicate-free
// and matches Has().
func TestWorkRowIndicesConsistent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 5 + r.Intn(40)
		w := NewWorkRow(n)
		ref := make(map[int]float64)
		for op := 0; op < 100; op++ {
			j := r.Intn(n)
			switch r.Intn(4) {
			case 0:
				v := r.NormFloat64()
				w.Add(j, v)
				ref[j] += v
			case 1:
				v := r.NormFloat64()
				w.Set(j, v)
				ref[j] = v
			case 2:
				w.Drop(j)
				delete(ref, j)
			case 3:
				// no-op read
				if w.Get(j) != ref[j] && !(ref[j] == 0 && !w.Has(j)) {
					if math.Abs(w.Get(j)-ref[j]) > 1e-12 {
						return false
					}
				}
			}
		}
		idx := w.Indices()
		if len(idx) != len(ref) {
			return false
		}
		prev := -1
		for _, j := range idx {
			if j <= prev {
				return false
			}
			prev = j
			if _, ok := ref[j]; !ok {
				return false
			}
			if math.Abs(w.Get(j)-ref[j]) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: KeepLargest keeps exactly min(m, count) in-range entries and
// they are the largest by magnitude.
func TestKeepLargestProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 10 + r.Intn(50)
		w := NewWorkRow(n)
		for j := 0; j < n; j++ {
			if r.Float64() < 0.5 {
				w.Set(j, r.NormFloat64())
			}
		}
		lo, hi := 0, n
		m := r.Intn(6)
		// Record magnitudes in range before.
		var mags []float64
		for j := lo; j < hi; j++ {
			if w.Has(j) {
				mags = append(mags, math.Abs(w.Get(j)))
			}
		}
		w.KeepLargest(lo, hi, m, -1)
		kept := 0
		minKept := math.Inf(1)
		for j := lo; j < hi; j++ {
			if w.Has(j) {
				kept++
				if a := math.Abs(w.Get(j)); a < minKept {
					minKept = a
				}
			}
		}
		want := m
		if len(mags) < m {
			want = len(mags)
		}
		if kept != want {
			return false
		}
		// Count entries strictly larger than the smallest kept one: must be < m.
		larger := 0
		for _, a := range mags {
			if a > minKept {
				larger++
			}
		}
		return kept == 0 || larger < kept
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
