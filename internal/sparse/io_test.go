package sparse

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestMatrixMarketRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randomCSR(rng, 20, 15, 0.2)
	var buf bytes.Buffer
	if err := WriteMatrixMarket(&buf, a); err != nil {
		t.Fatalf("write: %v", err)
	}
	b, err := ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if !a.Equal(b) {
		t.Fatal("round trip changed the matrix")
	}
}

func TestMatrixMarketSymmetricExpansion(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real symmetric
3 3 4
1 1 2.0
2 1 -1.0
2 2 2.0
3 3 2.0
`
	a, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if a.At(0, 1) != -1 || a.At(1, 0) != -1 {
		t.Error("symmetric entry not mirrored")
	}
	if a.NNZ() != 5 {
		t.Errorf("NNZ = %d, want 5", a.NNZ())
	}
}

func TestMatrixMarketComments(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real general
% a comment
% another
2 2 2
1 1 1.0
2 2 4.0
`
	a, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if a.At(1, 1) != 4 {
		t.Error("wrong value parsed")
	}
}

func TestMatrixMarketErrors(t *testing.T) {
	cases := []string{
		"",
		"%%MatrixMarket matrix array real general\n2 2\n",
		"%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 0\n",
		"%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n", // out of range
		"%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n", // truncated
	}
	for i, in := range cases {
		if _, err := ReadMatrixMarket(strings.NewReader(in)); err == nil {
			t.Errorf("case %d: expected error, got nil", i)
		}
	}
}

func TestVecOps(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{4, 5, 6}
	if got := Dot(x, y); got != 32 {
		t.Errorf("Dot = %v, want 32", got)
	}
	if got := Norm2([]float64{3, 4}); got != 5 {
		t.Errorf("Norm2 = %v, want 5", got)
	}
	if got := NormInf([]float64{-7, 3}); got != 7 {
		t.Errorf("NormInf = %v, want 7", got)
	}
	z := append([]float64(nil), y...)
	Axpy(2, x, z)
	if z[0] != 6 || z[2] != 12 {
		t.Errorf("Axpy wrong: %v", z)
	}
	Scale(0.5, z)
	if z[0] != 3 {
		t.Errorf("Scale wrong: %v", z)
	}
	e := Ones(3)
	if e[0] != 1 || e[2] != 1 {
		t.Errorf("Ones wrong: %v", e)
	}
	g := Gathered([]float64{10, 20, 30}, []int{2, 0})
	if g[0] != 30 || g[1] != 10 {
		t.Errorf("Gathered wrong: %v", g)
	}
	s := make([]float64, 3)
	ScatterInto(s, []int{1, 2}, []float64{9, 8})
	if s[1] != 9 || s[2] != 8 {
		t.Errorf("ScatterInto wrong: %v", s)
	}
	p := PermuteVec([]float64{1, 2, 3}, []int{2, 0, 1})
	if p[2] != 1 || p[0] != 2 || p[1] != 3 {
		t.Errorf("PermuteVec wrong: %v", p)
	}
}
