// Package sparse provides the sparse-matrix kernel underlying the parallel
// ILUT factorization: compressed sparse row (CSR) matrices, triplet
// assembly, permutation, transposition, structural symmetrization, dense
// conversion for small-scale verification, and the full-length working-row
// accumulator used by threshold-based incomplete factorizations.
package sparse

import (
	"fmt"
	"math"
	"sort"
)

// CSR is a sparse matrix in compressed sparse row format. Row i occupies
// Cols[RowPtr[i]:RowPtr[i+1]] and Vals[RowPtr[i]:RowPtr[i+1]]. Column
// indices within a row are kept sorted in increasing order by every
// constructor and transformation in this package.
type CSR struct {
	N      int // number of rows
	M      int // number of columns
	RowPtr []int
	Cols   []int
	Vals   []float64
}

// NewCSR returns an N×M matrix with no stored entries.
func NewCSR(n, m int) *CSR {
	return &CSR{N: n, M: m, RowPtr: make([]int, n+1)}
}

// NNZ reports the number of stored entries.
func (a *CSR) NNZ() int { return len(a.Cols) }

// Dims reports the matrix dimensions (rows, columns).
func (a *CSR) Dims() (int, int) { return a.N, a.M }

// SizeBytes reports the in-memory footprint of the stored arrays (8 bytes
// per row pointer, column index and value). Cache byte budgets are
// accounted with it.
func (a *CSR) SizeBytes() int64 {
	return 8 * int64(len(a.RowPtr)+len(a.Cols)+len(a.Vals))
}

// Row returns the column-index and value slices of row i. The slices alias
// the matrix storage; callers must not grow them.
func (a *CSR) Row(i int) ([]int, []float64) {
	lo, hi := a.RowPtr[i], a.RowPtr[i+1]
	return a.Cols[lo:hi], a.Vals[lo:hi]
}

// RowNNZ reports the number of stored entries in row i.
func (a *CSR) RowNNZ(i int) int { return a.RowPtr[i+1] - a.RowPtr[i] }

// At returns the value at (i, j), or 0 if the entry is not stored. Row
// entries are sorted, so the lookup is a binary search.
func (a *CSR) At(i, j int) float64 {
	cols, vals := a.Row(i)
	k := sort.SearchInts(cols, j)
	if k < len(cols) && cols[k] == j {
		return vals[k]
	}
	return 0
}

// Clone returns a deep copy of the matrix.
func (a *CSR) Clone() *CSR {
	b := &CSR{
		N:      a.N,
		M:      a.M,
		RowPtr: append([]int(nil), a.RowPtr...),
		Cols:   append([]int(nil), a.Cols...),
		Vals:   append([]float64(nil), a.Vals...),
	}
	return b
}

// MulVec computes y = A·x. It panics if the dimensions disagree.
func (a *CSR) MulVec(y, x []float64) {
	if len(x) != a.M || len(y) != a.N {
		panic(fmt.Sprintf("sparse: MulVec dimension mismatch: A is %d×%d, x %d, y %d", a.N, a.M, len(x), len(y)))
	}
	for i := 0; i < a.N; i++ {
		var s float64
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			s += a.Vals[k] * x[a.Cols[k]]
		}
		y[i] = s
	}
}

// MulVecT computes y = Aᵀ·x.
func (a *CSR) MulVecT(y, x []float64) {
	if len(x) != a.N || len(y) != a.M {
		panic(fmt.Sprintf("sparse: MulVecT dimension mismatch: A is %d×%d, x %d, y %d", a.N, a.M, len(x), len(y)))
	}
	for i := range y {
		y[i] = 0
	}
	for i := 0; i < a.N; i++ {
		xi := x[i]
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			y[a.Cols[k]] += a.Vals[k] * xi
		}
	}
}

// Transpose returns Aᵀ with sorted rows.
func (a *CSR) Transpose() *CSR {
	t := &CSR{N: a.M, M: a.N}
	t.RowPtr = make([]int, a.M+1)
	for _, j := range a.Cols {
		t.RowPtr[j+1]++
	}
	for j := 0; j < a.M; j++ {
		t.RowPtr[j+1] += t.RowPtr[j]
	}
	t.Cols = make([]int, a.NNZ())
	t.Vals = make([]float64, a.NNZ())
	next := append([]int(nil), t.RowPtr[:a.M]...)
	for i := 0; i < a.N; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			j := a.Cols[k]
			p := next[j]
			next[j]++
			t.Cols[p] = i
			t.Vals[p] = a.Vals[k]
		}
	}
	// Rows of the transpose come out sorted because rows of A are scanned
	// in increasing i.
	return t
}

// SymmetrizeStructure returns a matrix with the sparsity pattern of A + Aᵀ
// and the values of A (entries present only in Aᵀ get an explicit zero).
// Incomplete-factorization graph algorithms (independent sets, partitioning)
// need an undirected structure even when A is structurally nonsymmetric.
func (a *CSR) SymmetrizeStructure() *CSR {
	if a.N != a.M {
		panic("sparse: SymmetrizeStructure requires a square matrix")
	}
	t := a.Transpose()
	b := NewBuilder(a.N, a.M)
	for i := 0; i < a.N; i++ {
		cols, vals := a.Row(i)
		for k, j := range cols {
			b.Add(i, j, vals[k])
		}
		tcols, _ := t.Row(i)
		for _, j := range tcols {
			b.Add(i, j, 0) // duplicate adds collapse; value of A wins via summation with 0
		}
	}
	return b.Build()
}

// Permute returns P·A·Pᵀ where perm maps old index → new index, i.e.
// entry (i, j) of A lands at (perm[i], perm[j]).
func (a *CSR) Permute(perm []int) *CSR {
	if a.N != a.M {
		panic("sparse: Permute requires a square matrix")
	}
	if len(perm) != a.N {
		panic("sparse: Permute: permutation length mismatch")
	}
	inv := InversePermutation(perm)
	p := &CSR{N: a.N, M: a.M}
	p.RowPtr = make([]int, a.N+1)
	for newI := 0; newI < a.N; newI++ {
		oldI := inv[newI]
		p.RowPtr[newI+1] = p.RowPtr[newI] + a.RowNNZ(oldI)
	}
	p.Cols = make([]int, a.NNZ())
	p.Vals = make([]float64, a.NNZ())
	for newI := 0; newI < a.N; newI++ {
		oldI := inv[newI]
		lo := p.RowPtr[newI]
		cols, vals := a.Row(oldI)
		for k, j := range cols {
			p.Cols[lo+k] = perm[j]
			p.Vals[lo+k] = vals[k]
		}
		sortRow(p.Cols[lo:p.RowPtr[newI+1]], p.Vals[lo:p.RowPtr[newI+1]])
	}
	return p
}

// PermuteRows returns the matrix whose row perm[i] is row i of A; columns
// are untouched. Used to renumber equations without renumbering unknowns.
func (a *CSR) PermuteRows(perm []int) *CSR {
	if len(perm) != a.N {
		panic("sparse: PermuteRows: permutation length mismatch")
	}
	inv := InversePermutation(perm)
	p := &CSR{N: a.N, M: a.M}
	p.RowPtr = make([]int, a.N+1)
	for newI := 0; newI < a.N; newI++ {
		p.RowPtr[newI+1] = p.RowPtr[newI] + a.RowNNZ(inv[newI])
	}
	p.Cols = make([]int, a.NNZ())
	p.Vals = make([]float64, a.NNZ())
	for newI := 0; newI < a.N; newI++ {
		oldI := inv[newI]
		lo := p.RowPtr[newI]
		cols, vals := a.Row(oldI)
		copy(p.Cols[lo:], cols)
		copy(p.Vals[lo:], vals)
	}
	return p
}

// Dense returns the matrix as a dense row-major n×m slice-of-slices. Only
// intended for small-scale verification in tests.
func (a *CSR) Dense() [][]float64 {
	d := make([][]float64, a.N)
	for i := range d {
		d[i] = make([]float64, a.M)
		cols, vals := a.Row(i)
		for k, j := range cols {
			d[i][j] = vals[k]
		}
	}
	return d
}

// Diagonal returns a copy of the main diagonal (missing entries are 0).
func (a *CSR) Diagonal() []float64 {
	n := a.N
	if a.M < n {
		n = a.M
	}
	d := make([]float64, n)
	for i := 0; i < n; i++ {
		d[i] = a.At(i, i)
	}
	return d
}

// RowNorm1 returns the 1-norm of row i (sum of absolute values of the
// stored entries). ILUT's relative drop tolerance is t times this norm.
func (a *CSR) RowNorm1(i int) float64 {
	_, vals := a.Row(i)
	var s float64
	for _, v := range vals {
		s += math.Abs(v)
	}
	return s
}

// RowNorm2 returns the 2-norm of row i.
func (a *CSR) RowNorm2(i int) float64 {
	_, vals := a.Row(i)
	var s float64
	for _, v := range vals {
		s += v * v
	}
	return math.Sqrt(s)
}

// Equal reports whether a and b have identical dimensions, structure and
// values (exact comparison).
func (a *CSR) Equal(b *CSR) bool {
	if a.N != b.N || a.M != b.M || a.NNZ() != b.NNZ() {
		return false
	}
	for i := range a.RowPtr {
		if a.RowPtr[i] != b.RowPtr[i] {
			return false
		}
	}
	for k := range a.Cols {
		if a.Cols[k] != b.Cols[k] || a.Vals[k] != b.Vals[k] {
			return false
		}
	}
	return true
}

// MaxAbsDiff returns max_{ij} |a_ij − b_ij| over the union of both
// patterns. Matrices must have equal dimensions.
func MaxAbsDiff(a, b *CSR) float64 {
	if a.N != b.N || a.M != b.M {
		panic("sparse: MaxAbsDiff dimension mismatch")
	}
	var d float64
	for i := 0; i < a.N; i++ {
		cols, vals := a.Row(i)
		for k, j := range cols {
			if v := math.Abs(vals[k] - b.At(i, j)); v > d {
				d = v
			}
		}
		bcols, bvals := b.Row(i)
		for k, j := range bcols {
			if a.At(i, j) == 0 {
				if v := math.Abs(bvals[k]); v > d {
					d = v
				}
			}
		}
	}
	return d
}

// InversePermutation returns the inverse of perm: inv[perm[i]] = i.
// It panics if perm is not a permutation of 0..len(perm)-1.
func InversePermutation(perm []int) []int {
	inv := make([]int, len(perm))
	for i := range inv {
		inv[i] = -1
	}
	for i, p := range perm {
		if p < 0 || p >= len(perm) || inv[p] != -1 {
			panic(fmt.Sprintf("sparse: invalid permutation: element %d maps to %d", i, p))
		}
		inv[p] = i
	}
	return inv
}

// IdentityPermutation returns the permutation 0,1,…,n−1.
func IdentityPermutation(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return p
}

// sortRow sorts a (cols, vals) pair by column index. Rows are short, so a
// simple insertion sort avoids allocation.
func sortRow(cols []int, vals []float64) {
	for i := 1; i < len(cols); i++ {
		c, v := cols[i], vals[i]
		j := i - 1
		for j >= 0 && cols[j] > c {
			cols[j+1], vals[j+1] = cols[j], vals[j]
			j--
		}
		cols[j+1], vals[j+1] = c, v
	}
}
