package sparse

import (
	"bytes"
	"math"
	"testing"
)

// FuzzReadMatrixMarket feeds arbitrary bytes to the MatrixMarket reader.
// The reader must never panic — malformed input is an error, not a crash —
// and any matrix it does accept must be structurally sound and survive a
// write/read round trip unchanged.
func FuzzReadMatrixMarket(f *testing.F) {
	seeds := [][]byte{
		[]byte("%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 4.0\n1 2 -1.5\n2 2 3.25\n"),
		[]byte("%%MatrixMarket matrix coordinate real symmetric\n3 3 4\n1 1 2\n2 1 -1\n2 2 2\n3 3 2\n"),
		[]byte("%%MatrixMarket matrix coordinate integer general\n% comment line\n\n2 2 2\n1 1 7\n2 2 9\n"),
		[]byte("%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1 1e308\n"),
		[]byte("%%MatrixMarket matrix coordinate real general\n2 2 -5\n"),
		[]byte("%%MatrixMarket matrix coordinate real symmetric\n2 1 1\n2 1 0\n"),
		[]byte("%%MatrixMarket matrix coordinate real general\n99999999999 2 1\n1 1 1\n"),
		[]byte("%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1\n"),
		[]byte("not a matrix market file\n"),
		[]byte(""),
	}
	for _, s := range seeds {
		f.Add(s)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		a, err := ReadMatrixMarket(bytes.NewReader(data))
		if err != nil {
			return
		}
		if a.N <= 0 || a.M <= 0 {
			t.Fatalf("accepted matrix with dimensions %d×%d", a.N, a.M)
		}
		if len(a.RowPtr) != a.N+1 || a.RowPtr[0] != 0 {
			t.Fatalf("malformed RowPtr: len=%d first=%d", len(a.RowPtr), a.RowPtr[0])
		}
		for i := 0; i < a.N; i++ {
			lo, hi := a.RowPtr[i], a.RowPtr[i+1]
			if lo > hi || hi > len(a.Cols) {
				t.Fatalf("row %d: RowPtr window [%d,%d) out of bounds", i, lo, hi)
			}
			for k := lo; k < hi; k++ {
				if a.Cols[k] < 0 || a.Cols[k] >= a.M {
					t.Fatalf("row %d: column %d out of range [0,%d)", i, a.Cols[k], a.M)
				}
				if k > lo && a.Cols[k] <= a.Cols[k-1] {
					t.Fatalf("row %d: columns not strictly increasing at %d", i, k)
				}
			}
		}

		var buf bytes.Buffer
		if err := WriteMatrixMarket(&buf, a); err != nil {
			t.Fatalf("writing accepted matrix: %v", err)
		}
		b, err := ReadMatrixMarket(&buf)
		if err != nil {
			t.Fatalf("re-reading written matrix: %v", err)
		}
		if b.N != a.N || b.M != a.M || b.NNZ() != a.NNZ() {
			t.Fatalf("round trip changed shape: %d×%d/%d → %d×%d/%d",
				a.N, a.M, a.NNZ(), b.N, b.M, b.NNZ())
		}
		for i := 0; i < a.N; i++ {
			ac, av := a.Row(i)
			bc, bv := b.Row(i)
			if len(ac) != len(bc) {
				t.Fatalf("round trip changed row %d length: %d → %d", i, len(ac), len(bc))
			}
			for k := range ac {
				sameVal := av[k] == bv[k] || (math.IsNaN(av[k]) && math.IsNaN(bv[k]))
				if ac[k] != bc[k] || !sameVal {
					t.Fatalf("round trip changed row %d entry %d: (%d,%v) → (%d,%v)",
						i, k, ac[k], av[k], bc[k], bv[k])
				}
			}
		}
	})
}
