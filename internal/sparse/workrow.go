package sparse

import (
	"math"
	"slices"
	"sort"
)

// WorkRow is the full-length working row of Algorithm 1 in the paper: a
// dense value array w paired with a companion list of its nonzero
// positions, so that scatter, gather and reset are all sparse operations.
// One WorkRow is reused across all rows of a factorization.
type WorkRow struct {
	val   []float64
	mark  []bool // position currently holds a live entry
	inIdx []bool // position present in the companion index list (may be dropped)
	idx   []int
	cand  []int // scratch for KeepLargest; per-row so concurrent WorkRows never share
}

// NewWorkRow returns a WorkRow over vectors of length n.
func NewWorkRow(n int) *WorkRow {
	return &WorkRow{val: make([]float64, n), mark: make([]bool, n), inIdx: make([]bool, n)}
}

// Len reports the full (dense) length of the row.
func (w *WorkRow) Len() int { return len(w.val) }

// Resize grows the dense arrays to length n; it never shrinks, so a
// pooled WorkRow serves factorizations of any size it has ever seen.
// The row must be reset (Resize preserves no marked state).
func (w *WorkRow) Resize(n int) {
	if n <= len(w.val) {
		return
	}
	w.val = make([]float64, n)
	w.mark = make([]bool, n)
	w.inIdx = make([]bool, n)
	w.idx = w.idx[:0]
	w.cand = w.cand[:0]
}

// PoisonClean verifies the row is fully reset — no marks, no live
// indices, every value zero — and then scribbles sentinel garbage over
// the spare capacity of the index and candidate lists, the only storage
// a correct kernel may not read. It panics if the row is dirty. This is
// the stale-scratch tripwire of the poisoning property tests: a kernel
// that consumes leftover state from a previous factorization either
// trips the clean check here or reads a sentinel and corrupts its output
// in a way the bitwise run-to-run comparison catches.
func (w *WorkRow) PoisonClean() {
	for j := range w.val {
		if w.val[j] != 0 || w.mark[j] || w.inIdx[j] {
			panic("sparse: WorkRow not clean: stale state survived a Reset")
		}
	}
	if len(w.idx) != 0 {
		panic("sparse: WorkRow not clean: index list non-empty")
	}
	const sentinel = -0x5A5A5A5A
	spare := w.idx[:cap(w.idx)]
	for k := range spare {
		spare[k] = sentinel
	}
	spare = w.cand[:cap(w.cand)]
	for k := range spare {
		spare[k] = sentinel
	}
	w.cand = w.cand[:0]
}

// NNZ reports the number of positions currently marked (explicit zeros
// that were Set remain counted until dropped or reset).
func (w *WorkRow) NNZ() int {
	n := 0
	for _, j := range w.idx {
		if w.mark[j] {
			n++
		}
	}
	return n
}

// Scatter loads the sparse row (cols, vals) into the working row,
// accumulating into any positions already present.
//
//pilut:hotpath
func (w *WorkRow) Scatter(cols []int, vals []float64) {
	for k, j := range cols {
		w.Add(j, vals[k])
	}
}

// Add accumulates v into position j, marking it if previously unset.
//
//pilut:hotpath
func (w *WorkRow) Add(j int, v float64) {
	w.mark[j] = true
	if !w.inIdx[j] {
		w.inIdx[j] = true
		w.idx = append(w.idx, j) //pilutlint:ok hotalloc index list grows to peak row nnz once, then is reused across rows
	}
	w.val[j] += v
}

// Set overwrites position j with v, marking it if previously unset.
//
//pilut:hotpath
func (w *WorkRow) Set(j int, v float64) {
	w.mark[j] = true
	if !w.inIdx[j] {
		w.inIdx[j] = true
		w.idx = append(w.idx, j) //pilutlint:ok hotalloc index list grows to peak row nnz once, then is reused across rows
	}
	w.val[j] = v
}

// Get returns the value at position j (0 when unset).
//
//pilut:hotpath
func (w *WorkRow) Get(j int) float64 { return w.val[j] }

// Has reports whether position j is currently marked.
//
//pilut:hotpath
func (w *WorkRow) Has(j int) bool { return w.mark[j] }

// Drop unmarks position j and zeroes its value. The companion index list
// is compacted lazily by Indices/Gather, so Drop is O(1).
//
//pilut:hotpath
func (w *WorkRow) Drop(j int) {
	if w.mark[j] {
		w.mark[j] = false
		w.val[j] = 0
	}
}

// Indices returns the sorted list of currently-marked positions. The
// returned slice is freshly compacted and owned by the WorkRow; it is valid
// until the next mutating call.
//
//pilut:hotpath
func (w *WorkRow) Indices() []int {
	out := w.idx[:0]
	for _, j := range w.idx {
		if w.mark[j] {
			out = append(out, j) //pilutlint:ok hotalloc compacts in place into idx's own backing array, never grows
		} else {
			w.inIdx[j] = false
		}
	}
	w.idx = out
	sort.Ints(w.idx)
	return w.idx
}

// Reset clears every marked position; an O(nnz) sparse operation
// corresponding to "w = 0" in Algorithm 1.
//
//pilut:hotpath
func (w *WorkRow) Reset() {
	for _, j := range w.idx {
		w.mark[j] = false
		w.inIdx[j] = false
		w.val[j] = 0
	}
	w.idx = w.idx[:0]
}

// Gather appends the marked positions in [lo, hi) in increasing column
// order to (cols, vals) and returns the extended slices. The working row
// is left unchanged.
//
//pilut:hotpath
func (w *WorkRow) Gather(lo, hi int, cols []int, vals []float64) ([]int, []float64) {
	for _, j := range w.Indices() {
		if j >= lo && j < hi {
			cols = append(cols, j)        //pilutlint:ok hotalloc appends into the caller's slice, which owns the final row storage
			vals = append(vals, w.val[j]) //pilutlint:ok hotalloc appends into the caller's slice, which owns the final row storage
		}
	}
	return cols, vals
}

// DropBelow unmarks every position in [lo, hi) whose magnitude is < tol,
// except the protected position keep (pass −1 to protect nothing).
// Returns the number of dropped entries.
//
//pilut:hotpath
func (w *WorkRow) DropBelow(lo, hi int, tol float64, keep int) int {
	dropped := 0
	for _, j := range w.idx {
		if !w.mark[j] || j < lo || j >= hi || j == keep {
			continue
		}
		if math.Abs(w.val[j]) < tol {
			w.Drop(j)
			dropped++
		}
	}
	return dropped
}

// KeepLargest retains at most m marked positions within [lo, hi) — the m
// of largest magnitude — and unmarks the rest. The protected position keep
// is never dropped and does not count toward m (pass −1 for none).
// Ties are broken toward smaller column index so the result is
// deterministic. Returns the number of dropped entries.
//
//pilut:hotpath
func (w *WorkRow) KeepLargest(lo, hi, m int, keep int) int {
	cand := w.cand[:0]
	for _, j := range w.idx {
		if w.mark[j] && j >= lo && j < hi && j != keep {
			cand = append(cand, j) //pilutlint:ok hotalloc candidate scratch grows to peak row nnz once, then is reused across rows
		}
	}
	w.cand = cand
	if len(cand) <= m {
		return 0
	}
	// Select the m largest by magnitude: sort descending by |value|,
	// breaking ties by column index. slices.SortFunc, not sort.Slice: the
	// generic form boxes nothing and the comparator stays on the stack, so
	// the 2nd dropping rule costs zero allocations. The comparator is a
	// total order (columns are distinct), so the kept set is identical to
	// any other correct sort.
	//pilutlint:ok hotalloc the comparator closure does not escape slices.SortFunc; no boxing, no heap allocation
	slices.SortFunc(cand, func(x, y int) int {
		ax, ay := math.Abs(w.val[x]), math.Abs(w.val[y])
		switch {
		case ax > ay:
			return -1
		case ax < ay:
			return 1
		default:
			return x - y
		}
	})
	dropped := 0
	for _, j := range cand[m:] {
		w.Drop(j)
		dropped++
	}
	return dropped
}
