package backend

import (
	"strings"
	"testing"

	"repro/internal/machine"
	"repro/internal/pcomm/netcomm"
)

// netcomm cannot import this package (it would cycle through the
// registry), so it duplicates the environment-variable name; this pins
// the two constants together.
func TestNetcommEnvVarMatches(t *testing.T) {
	if netcomm.BackendEnvVar != EnvVar {
		t.Fatalf("netcomm.BackendEnvVar = %q, backend.EnvVar = %q", netcomm.BackendEnvVar, EnvVar)
	}
}

func TestValidate(t *testing.T) {
	for _, kind := range []string{"", Modelled, Real, "netcomm", "netcomm:spawn=4", "netcomm:/tmp/a.sock;/tmp/a.sock,/tmp/b.sock"} {
		if err := Validate(kind); err != nil {
			t.Errorf("Validate(%q) = %v, want nil", kind, err)
		}
	}
	bad := map[string]string{
		"mpi":               "unknown kind",
		"netcomm:spawn=0":   "spawn",
		"netcomm:spawn=999": "spawn",
		"netcomm:/tmp/a.sock;/tmp/b.sock,/tmp/c.sock": "listen address",
	}
	for kind, want := range bad {
		err := Validate(kind)
		if err == nil || !strings.Contains(err.Error(), want) {
			t.Errorf("Validate(%q) = %v, want error containing %q", kind, err, want)
		}
	}
}

func TestNewUnknownKind(t *testing.T) {
	if _, err := New("mpi", 2, machine.CostModel{}); err == nil {
		t.Fatal("New accepted an unknown backend kind")
	}
}
