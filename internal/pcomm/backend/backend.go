// Package backend selects a pcomm.World implementation by name. This is
// the single point where the service, CLIs, and tests choose between the
// modelled simulator and the wall-clock shared-memory backend.
package backend

import (
	"fmt"
	"os"

	"repro/internal/machine"
	"repro/internal/pcomm"
	"repro/internal/pcomm/modelled"
	"repro/internal/pcomm/realcomm"
)

// Kinds accepted by New. The empty string means Modelled.
const (
	Modelled = "modelled"
	Real     = "real"
)

// EnvVar is the environment variable FromEnv and the test harness read
// to pick a backend ("modelled" or "real").
const EnvVar = "PILUT_BACKEND"

// New creates a world of the given kind with p processors. cost applies
// only to the modelled backend; the real backend runs at hardware speed
// and ignores it.
func New(kind string, p int, cost machine.CostModel) (pcomm.World, error) {
	switch kind {
	case "", Modelled:
		return modelled.New(p, cost), nil
	case Real:
		return realcomm.New(p), nil
	default:
		return nil, fmt.Errorf("backend: unknown kind %q (want %q or %q)", kind, Modelled, Real)
	}
}

// FromEnv resolves the kind from $PILUT_BACKEND (empty → modelled).
func FromEnv(p int, cost machine.CostModel) (pcomm.World, error) {
	return New(os.Getenv(EnvVar), p, cost)
}
