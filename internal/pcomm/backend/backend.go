// Package backend selects a pcomm.World implementation by name. This is
// the single point where the service, CLIs, and tests choose between the
// modelled simulator, the wall-clock shared-memory backend, and the
// multi-process netcomm backend.
package backend

import (
	"fmt"
	"os"

	"repro/internal/machine"
	"repro/internal/pcomm"
	"repro/internal/pcomm/modelled"
	"repro/internal/pcomm/netcomm"
	"repro/internal/pcomm/realcomm"
)

// Kinds accepted by New. The empty string means Modelled. Netcomm specs
// carry configuration in the kind itself — "netcomm", "netcomm:spawn=N"
// or "netcomm:<listen>;<peer,peer,...>" — and are validated here, at
// selection time, so a typo fails at startup rather than at first send.
const (
	Modelled = "modelled"
	Real     = "real"
	Netcomm  = netcomm.Kind
)

// EnvVar is the environment variable FromEnv and the test harness read
// to pick a backend ("modelled", "real", or a netcomm spec).
const EnvVar = "PILUT_BACKEND"

// New creates a world of the given kind with p processors. cost applies
// only to the modelled backend; the wall-clock backends run at hardware
// speed and ignore it.
func New(kind string, p int, cost machine.CostModel) (pcomm.World, error) {
	switch {
	case kind == "" || kind == Modelled:
		return modelled.New(p, cost), nil
	case kind == Real:
		return realcomm.New(p), nil
	case netcomm.IsSpec(kind):
		return netcomm.WorldFor(kind, p)
	default:
		return nil, fmt.Errorf("backend: unknown kind %q (want %q, %q or a %q spec)", kind, Modelled, Real, Netcomm)
	}
}

// Validate checks a backend kind without creating a world (netcomm specs
// parse fully), so flag handling can reject a bad spec before any
// listener or subprocess exists.
func Validate(kind string) error {
	switch {
	case kind == "" || kind == Modelled || kind == Real:
		return nil
	case netcomm.IsSpec(kind):
		_, err := netcomm.ParseSpec(kind)
		return err
	default:
		return fmt.Errorf("backend: unknown kind %q (want %q, %q or a %q spec)", kind, Modelled, Real, Netcomm)
	}
}

// FromEnv resolves the kind from $PILUT_BACKEND (empty → modelled).
func FromEnv(p int, cost machine.CostModel) (pcomm.World, error) {
	return New(os.Getenv(EnvVar), p, cost)
}
