package pcomm

import (
	"fmt"
	"unsafe"
)

// RawSlice is an unboxed slice header: the type-erased form SendSlice
// uses to hand a payload to a RawComm backend without converting the
// slice to an interface value (which would heap-allocate the header on
// every message). Elem carries the element size so RecvSlice can reject
// a reinterpretation under the wrong type.
type RawSlice struct {
	Ptr  unsafe.Pointer
	Len  int
	Cap  int
	Elem uintptr // element size in bytes
}

// RawComm is the optional zero-boxing fast path a backend may provide.
// The real shared-memory backend implements it; the modelled simulator
// does not (boxed payloads are irrelevant next to its virtual clocks).
// SendRaw/RecvRaw must match Send/Recv semantics exactly: same FIFO
// order per (src, dst, tag), same counters, interchangeable with boxed
// messages on the same tag — RecvRaw returns the boxed payload (isRaw
// false) when the matched message was sent with plain Send.
type RawComm interface {
	SendRaw(dst, tag int, h RawSlice, bytes int)
	RecvRaw(src, tag int) (h RawSlice, boxed any, isRaw bool)
}

func rawOf[T any](xs []T) RawSlice {
	var z T
	var ptr unsafe.Pointer
	if cap(xs) > 0 {
		ptr = unsafe.Pointer(unsafe.SliceData(xs))
	}
	return RawSlice{Ptr: ptr, Len: len(xs), Cap: cap(xs), Elem: unsafe.Sizeof(z)}
}

func sliceOf[T any](h RawSlice) []T {
	var z T
	if h.Elem != unsafe.Sizeof(z) {
		panic(fmt.Sprintf("pcomm: RecvSlice element size %d does not match sent element size %d", unsafe.Sizeof(z), h.Elem))
	}
	if h.Ptr == nil {
		return nil
	}
	return unsafe.Slice((*T)(h.Ptr), h.Cap)[:h.Len]
}

// SendSlice sends xs to dst under tag, sizing the message with
// BytesOf[T]. On a RawComm backend the slice header passes unboxed; the
// element data is never copied on either backend (zero-copy), so the
// sendalias rule applies exactly as for Send: the sender must not retain
// and mutate xs.
func SendSlice[T any](c Comm, dst, tag int, xs []T) {
	bytes := BytesOf[T](len(xs))
	if rc, ok := c.(RawComm); ok {
		rc.SendRaw(dst, tag, rawOf(xs), bytes)
		return
	}
	c.Send(dst, tag, xs, bytes)
}

// RecvSlice receives a []T sent by SendSlice (or by a plain Send of a
// []T) from src under tag.
func RecvSlice[T any](c Comm, src, tag int) []T {
	if rc, ok := c.(RawComm); ok {
		h, boxed, isRaw := rc.RecvRaw(src, tag)
		if isRaw {
			return sliceOf[T](h)
		}
		if boxed == nil {
			return nil
		}
		return boxed.([]T)
	}
	if v := c.Recv(src, tag); v != nil {
		return v.([]T)
	}
	return nil
}

// AllGatherSlice gathers one []T per processor, sized with BytesOf[T].
func AllGatherSlice[T any](c Comm, xs []T) [][]T {
	vals := c.AllGather(xs, BytesOf[T](len(xs)))
	out := make([][]T, len(vals))
	for i, v := range vals {
		if v != nil {
			out[i] = v.([]T)
		}
	}
	return out
}
