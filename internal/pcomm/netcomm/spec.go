// Package netcomm is the multi-process pcomm backend: ranks live in
// separate OS processes connected over TCP or unix-domain sockets. It is
// the third backend next to the modelled simulator and the shared-memory
// realcomm, and keeps their bit-compatibility contract: every collective
// folds contributions in rank order, so factors, statistics and GMRES
// histories are bitwise identical across all three (the backend
// equivalence tests assert this across process boundaries).
//
// # Model
//
// A netcomm run is SPMD at program granularity: N processes execute the
// same binary, each hosting a contiguous block of the P ranks. World
// creation order is the generation counter — because every process runs
// the same program, the k-th world created on one process corresponds to
// the k-th world on every other, and all frames carry the generation so
// no cross-run traffic can alias.
//
// Process 0 is the coordinator: at node creation every other process
// dials it once (the rendezvous) and keeps that control connection for
// collective deposits, abort propagation and result broadcast. Data
// messages flow on lazily dialed per-(src, dst) connections carrying
// length-prefixed frames; co-located ranks short-circuit through
// in-memory mailboxes and never touch a socket.
//
// # Spec grammar
//
// A backend spec selects the process group:
//
//	netcomm                          spawn mode, two processes (default)
//	netcomm:spawn=N                  this process re-executes itself N-1
//	                                 times over unix sockets in a temp dir
//	netcomm:<listen>;<peer,peer,...> explicit peer list; <listen> must
//	                                 appear in the list and identifies
//	                                 this process. Addresses containing
//	                                 "/" are unix socket paths, everything
//	                                 else dials TCP.
//
// Specs are validated at parse time so a misconfigured daemon or test
// run fails at startup, not at first send.
package netcomm

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind is the backend-registry prefix of every netcomm spec.
const Kind = "netcomm"

// maxSpawn bounds spawn mode: re-executing the whole binary per process
// makes large N an accident, not a capability.
const maxSpawn = 64

// Spec is a parsed netcomm backend spec.
type Spec struct {
	// Raw is the spec text as given, the node-registry key.
	Raw string
	// Spawn is the process count of spawn mode; 0 selects explicit mode.
	Spawn int
	// Listen is this process's listen address (explicit mode).
	Listen string
	// Peers lists every process's listen address in rank-block order
	// (explicit mode). Self is the index of Listen in Peers.
	Peers []string
	Self  int
}

// N returns the number of processes in the group.
func (s *Spec) N() int {
	if s.Spawn > 0 {
		return s.Spawn
	}
	return len(s.Peers)
}

// IsSpec reports whether kind looks like a netcomm backend spec (exact
// kind or "netcomm:..."). It does not validate; ParseSpec does.
func IsSpec(kind string) bool {
	return kind == Kind || strings.HasPrefix(kind, Kind+":")
}

// ParseSpec validates and decodes a netcomm backend spec.
func ParseSpec(kind string) (*Spec, error) {
	if !IsSpec(kind) {
		return nil, fmt.Errorf("netcomm: %q is not a netcomm spec", kind)
	}
	s := &Spec{Raw: kind}
	body := strings.TrimPrefix(kind, Kind)
	body = strings.TrimPrefix(body, ":")
	if body == "" {
		s.Spawn = 2
		return s, nil
	}
	if n, ok := strings.CutPrefix(body, "spawn="); ok {
		v, err := strconv.Atoi(n)
		if err != nil {
			return nil, fmt.Errorf("netcomm: spawn count %q is not an integer", n)
		}
		if v < 1 || v > maxSpawn {
			return nil, fmt.Errorf("netcomm: spawn count %d out of range [1, %d]", v, maxSpawn)
		}
		s.Spawn = v
		return s, nil
	}
	listen, peers, ok := strings.Cut(body, ";")
	if !ok {
		return nil, fmt.Errorf("netcomm: spec %q: want %q, %q or %q", kind,
			Kind, Kind+":spawn=N", Kind+":<listen>;<peer,peer,...>")
	}
	s.Listen = strings.TrimSpace(listen)
	if s.Listen == "" {
		return nil, fmt.Errorf("netcomm: spec %q has an empty listen address", kind)
	}
	s.Self = -1
	for _, p := range strings.Split(peers, ",") {
		p = strings.TrimSpace(p)
		if p == "" {
			return nil, fmt.Errorf("netcomm: spec %q has an empty peer address", kind)
		}
		if p == s.Listen {
			if s.Self >= 0 {
				return nil, fmt.Errorf("netcomm: spec %q lists %q twice", kind, p)
			}
			s.Self = len(s.Peers)
		}
		s.Peers = append(s.Peers, p)
	}
	if s.Self < 0 {
		return nil, fmt.Errorf("netcomm: listen address %q is not in the peer list %v", s.Listen, s.Peers)
	}
	return s, nil
}

// network maps an address to its net package network name: addresses
// containing a path separator are unix-domain sockets, the rest is TCP.
func network(addr string) string {
	if strings.Contains(addr, "/") {
		return "unix"
	}
	return "tcp"
}

// rankRange returns the half-open global-rank interval process i hosts
// in a P-rank world over n processes: earlier processes take the extra
// ranks, so rank 0 always lives on process 0.
func rankRange(p, n, i int) (lo, hi int) {
	base, rem := p/n, p%n
	lo = i*base + min(i, rem)
	hi = lo + base
	if i < rem {
		hi++
	}
	return lo, hi
}

// rankProc returns the process index hosting global rank r.
func rankProc(p, n, r int) int {
	for i := 0; i < n; i++ {
		if lo, hi := rankRange(p, n, i); r >= lo && r < hi {
			return i
		}
	}
	panic(fmt.Sprintf("netcomm: rank %d out of range for P=%d", r, p))
}
