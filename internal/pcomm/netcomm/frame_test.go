package netcomm

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"strings"
	"testing"
	"unsafe"

	"repro/internal/pcomm"
)

func rawSliceOfFloats(xs []float64) pcomm.RawSlice {
	var ptr unsafe.Pointer
	if cap(xs) > 0 {
		ptr = unsafe.Pointer(unsafe.SliceData(xs))
	}
	return pcomm.RawSlice{Ptr: ptr, Len: len(xs), Cap: cap(xs), Elem: 8}
}

func floatsOfRawSlice(h pcomm.RawSlice) []float64 {
	if h.Ptr == nil {
		return nil
	}
	return unsafe.Slice((*float64)(h.Ptr), h.Len)
}

// TestFrameRoundTrip checks the basic codec invariant: what writeFrame
// writes, readFrame reads.
func TestFrameRoundTrip(t *testing.T) {
	cases := []struct {
		typ  byte
		body []byte
	}{
		{fHello, []byte("hello body")},
		{fData, nil},
		{fAbort, bytes.Repeat([]byte{0xAB}, 4096)},
	}
	for _, tc := range cases {
		var buf bytes.Buffer
		if err := writeFrame(&buf, tc.typ, tc.body); err != nil {
			t.Fatalf("writeFrame(%d): %v", tc.typ, err)
		}
		typ, body, err := readFrame(&buf)
		if err != nil {
			t.Fatalf("readFrame(%d): %v", tc.typ, err)
		}
		if typ != tc.typ || !bytes.Equal(body, tc.body) {
			t.Fatalf("round trip: got (%d, %d bytes), want (%d, %d bytes)", typ, len(body), tc.typ, len(tc.body))
		}
	}
}

// TestFrameTornRead checks that a frame cut anywhere mid-body surfaces
// as io.ErrUnexpectedEOF, never as a silent short read.
func TestFrameTornRead(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, fData, []byte("payload-that-gets-torn")); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()
	for cut := 1; cut < len(whole); cut++ {
		_, _, err := readFrame(bytes.NewReader(whole[:cut]))
		if err == nil {
			t.Fatalf("cut at %d of %d: read succeeded on a torn frame", cut, len(whole))
		}
		if cut >= 4 && !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("cut at %d (mid-body): err = %v, want io.ErrUnexpectedEOF", cut, err)
		}
	}
}

// errWriter fails after n bytes, modelling a short write on a dying
// connection.
type errWriter struct {
	n    int
	seen int
}

func (w *errWriter) Write(p []byte) (int, error) {
	if w.seen+len(p) > w.n {
		wrote := w.n - w.seen
		w.seen = w.n
		return wrote, fmt.Errorf("connection reset mid-write")
	}
	w.seen += len(p)
	return len(p), nil
}

// TestFrameShortWrite checks that writeFrame reports a failing writer
// instead of dropping bytes silently.
func TestFrameShortWrite(t *testing.T) {
	for _, n := range []int{0, 3, 5, 7} {
		err := writeFrame(&errWriter{n: n}, fData, []byte("body bytes"))
		if err == nil {
			t.Fatalf("writer failing after %d bytes: writeFrame succeeded", n)
		}
	}
}

// TestFrameOversizedPrefixRejectedBeforeAlloc feeds a length prefix far
// past maxFrameLen and checks rejection happens from the 4 header bytes
// alone — the body is never allocated or read.
func TestFrameOversizedPrefixRejectedBeforeAlloc(t *testing.T) {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(maxFrameLen+1))
	// Only the 4 prefix bytes exist; if readFrame tried to allocate and
	// read the claimed 1GiB+ body it would block or fail differently.
	_, _, err := readFrame(bytes.NewReader(hdr[:]))
	if err == nil {
		t.Fatal("oversized length prefix accepted")
	}
	if !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("oversized prefix error = %v, want a limit violation", err)
	}

	binary.BigEndian.PutUint32(hdr[:], 0)
	if _, _, err := readFrame(bytes.NewReader(hdr[:])); err == nil {
		t.Fatal("zero-length frame accepted")
	}
}

// TestHelloVersionMismatch checks the handshake rejects a peer speaking
// a different protocol version with a message naming both versions.
func TestHelloVersionMismatch(t *testing.T) {
	h := encodeHello(hello{kind: connControl, a: 1, b: 2})
	binary.BigEndian.PutUint16(h[4:6], wireVersion+1)
	_, err := decodeHello(h)
	if err == nil {
		t.Fatal("hello with wrong version accepted")
	}
	if !strings.Contains(err.Error(), "version") {
		t.Fatalf("version mismatch error = %v, want it to name the version", err)
	}
}

// TestHelloBadMagic checks a stranger protocol is identified as such.
func TestHelloBadMagic(t *testing.T) {
	h := encodeHello(hello{kind: connData, gen: 3, a: 0, b: 1, c: 4})
	binary.BigEndian.PutUint32(h[0:4], 0x48545450) // "HTTP"
	if _, err := decodeHello(h); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("bad magic error = %v, want a magic complaint", err)
	}
}

// TestHelloRoundTrip checks field-for-field hello fidelity.
func TestHelloRoundTrip(t *testing.T) {
	want := hello{kind: connData, gen: 1 << 40, a: 3, b: 7, c: 12}
	got, err := decodeHello(encodeHello(want))
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("hello round trip: got %+v, want %+v", got, want)
	}
}

// TestAckRoundTrip checks acceptance and rejection acks.
func TestAckRoundTrip(t *testing.T) {
	if err := decodeAck(encodeAck(nil)); err != nil {
		t.Fatalf("ok ack decoded as error: %v", err)
	}
	err := decodeAck(encodeAck(fmt.Errorf("wrong group size")))
	if err == nil || !strings.Contains(err.Error(), "wrong group size") {
		t.Fatalf("reject ack = %v, want the original reason", err)
	}
	if err := decodeAck(nil); err == nil {
		t.Fatal("empty ack accepted")
	}
}

// TestPayloadRoundTrip checks every payload kind, including exact bit
// preservation of float64 (the property the bitwise-equivalence contract
// rests on).
func TestPayloadRoundTrip(t *testing.T) {
	floats := []float64{0, math.Copysign(0, -1), 1.5, -math.MaxFloat64, math.Inf(1), 5e-324}
	for _, f := range floats {
		pay, err := encodePayload(f)
		if err != nil {
			t.Fatal(err)
		}
		v, _, isRaw, err := decodePayload(pay)
		if err != nil || isRaw {
			t.Fatalf("float64 %v: err=%v isRaw=%v", f, err, isRaw)
		}
		if math.Float64bits(v.(float64)) != math.Float64bits(f) {
			t.Fatalf("float64 bits changed: sent %x, got %x", math.Float64bits(f), math.Float64bits(v.(float64)))
		}
	}

	for _, n := range []int{0, -1, 1 << 40, math.MinInt64} {
		pay, err := encodePayload(n)
		if err != nil {
			t.Fatal(err)
		}
		v, _, _, err := decodePayload(pay)
		if err != nil {
			t.Fatal(err)
		}
		if v.(int) != n {
			t.Fatalf("int round trip: sent %d, got %d", n, v)
		}
	}

	pay, err := encodePayload(nil)
	if err != nil {
		t.Fatal(err)
	}
	if v, _, _, err := decodePayload(pay); err != nil || v != nil {
		t.Fatalf("nil round trip: v=%v err=%v", v, err)
	}

	// Gob path: a registered slice type.
	xs := []float64{1.25, -2.5, 3.75}
	pay, err = encodePayload(xs)
	if err != nil {
		t.Fatal(err)
	}
	v, _, _, err := decodePayload(pay)
	if err != nil {
		t.Fatal(err)
	}
	got := v.([]float64)
	for i := range xs {
		if math.Float64bits(got[i]) != math.Float64bits(xs[i]) {
			t.Fatalf("gob []float64 bits changed at %d", i)
		}
	}

	// Unregistered type: the error should point at RegisterWire.
	type unregistered struct{ X int }
	if _, err := encodePayload(unregistered{1}); err == nil || !strings.Contains(err.Error(), "RegisterWire") {
		t.Fatalf("unregistered payload error = %v, want a RegisterWire hint", err)
	}
}

// TestRawPayloadRoundTrip checks RawSlice bytes survive the wire on an
// aligned backing array.
func TestRawPayloadRoundTrip(t *testing.T) {
	src := []float64{1.5, -0.25, 3.5e300, 5e-324}
	h := rawSliceOfFloats(src)
	pay := encodeRawPayload(h)
	_, got, isRaw, err := decodePayload(pay)
	if err != nil || !isRaw {
		t.Fatalf("raw decode: isRaw=%v err=%v", isRaw, err)
	}
	out := floatsOfRawSlice(got)
	if len(out) != len(src) {
		t.Fatalf("raw length %d, want %d", len(out), len(src))
	}
	for i := range src {
		if math.Float64bits(out[i]) != math.Float64bits(src[i]) {
			t.Fatalf("raw float bits changed at %d", i)
		}
	}

	// Empty slice.
	pay = encodeRawPayload(rawSliceOfFloats(nil))
	if _, got, isRaw, err := decodePayload(pay); err != nil || !isRaw || got.Len != 0 {
		t.Fatalf("empty raw: len=%d isRaw=%v err=%v", got.Len, isRaw, err)
	}

	// Truncated raw body.
	pay = encodeRawPayload(rawSliceOfFloats(src))
	pay.data = pay.data[:len(pay.data)-3]
	if _, _, _, err := decodePayload(pay); err == nil {
		t.Fatal("truncated raw payload accepted")
	}
}

// TestDepositResultFrames round-trips the collective frames.
func TestDepositResultFrames(t *testing.T) {
	pay, err := encodePayload(2.5)
	if err != nil {
		t.Fatal(err)
	}
	d := deposit{gen: 9, round: 4, rank: 2, p: 4, op: "allreduce_f64", pay: pay}
	got, err := decodeDepositFrame(encodeDepositFrame(d))
	if err != nil {
		t.Fatal(err)
	}
	if got.gen != d.gen || got.round != d.round || got.rank != d.rank || got.p != d.p || got.op != d.op ||
		got.pay.kind != d.pay.kind || !bytes.Equal(got.pay.data, d.pay.data) {
		t.Fatalf("deposit round trip: got %+v, want %+v", got, d)
	}

	r := roundResult{gen: 9, round: 4, op: "allreduce_f64", pays: []payload{pay, pay, pay, pay}}
	gotR, err := decodeResultFrame(encodeResultFrame(r))
	if err != nil {
		t.Fatal(err)
	}
	if gotR.gen != r.gen || gotR.round != r.round || gotR.op != r.op || len(gotR.pays) != len(r.pays) {
		t.Fatalf("result round trip: got %+v, want %+v", gotR, r)
	}

	a := abortMsg{gen: 9, rank: -1, msg: "watchdog fired"}
	gotA, err := decodeAbortFrame(encodeAbortFrame(a))
	if err != nil {
		t.Fatal(err)
	}
	if gotA != a {
		t.Fatalf("abort round trip: got %+v, want %+v", gotA, a)
	}

	res := pcomm.Result{Elapsed: 1.5, PerProc: []pcomm.Stats{{Flops: 10, MsgsSent: 3}, {Collectives: 2}}}
	body, err := encodeDoneFrame(9, res)
	if err != nil {
		t.Fatal(err)
	}
	gen, gotRes, err := decodeDoneFrame(body)
	if err != nil {
		t.Fatal(err)
	}
	if gen != 9 || gotRes.Elapsed != res.Elapsed || len(gotRes.PerProc) != 2 || gotRes.PerProc[0].Flops != 10 {
		t.Fatalf("done round trip: gen=%d res=%+v", gen, gotRes)
	}
}

// TestSpecParsing is the table-driven spec grammar check: every accepted
// form and every rejection with its reason.
func TestSpecParsing(t *testing.T) {
	cases := []struct {
		kind    string
		wantErr string // empty means accept
		check   func(*Spec) error
	}{
		{kind: "netcomm", check: func(s *Spec) error {
			if s.Spawn != 2 {
				return fmt.Errorf("default spawn = %d, want 2", s.Spawn)
			}
			return nil
		}},
		{kind: "netcomm:spawn=4", check: func(s *Spec) error {
			if s.Spawn != 4 || s.N() != 4 {
				return fmt.Errorf("spawn = %d N = %d, want 4", s.Spawn, s.N())
			}
			return nil
		}},
		{kind: "netcomm:spawn=0", wantErr: "out of range"},
		{kind: "netcomm:spawn=65", wantErr: "out of range"},
		{kind: "netcomm:spawn=two", wantErr: "not an integer"},
		{kind: "netcomm:127.0.0.1:4001;127.0.0.1:4000,127.0.0.1:4001", check: func(s *Spec) error {
			if s.Self != 1 || s.N() != 2 || s.Listen != "127.0.0.1:4001" {
				return fmt.Errorf("parsed %+v", s)
			}
			return nil
		}},
		{kind: "netcomm:/tmp/a.sock;/tmp/a.sock,/tmp/b.sock", check: func(s *Spec) error {
			if s.Self != 0 || network(s.Listen) != "unix" {
				return fmt.Errorf("parsed %+v", s)
			}
			return nil
		}},
		{kind: "netcomm:127.0.0.1:4002;127.0.0.1:4000,127.0.0.1:4001", wantErr: "not in the peer list"},
		{kind: "netcomm:a;a,a", wantErr: "twice"},
		{kind: "netcomm:;a,b", wantErr: "empty listen"},
		{kind: "netcomm:a;a,,b", wantErr: "empty peer"},
		{kind: "netcomm:garbage", wantErr: "want"},
		{kind: "modelled", wantErr: "not a netcomm spec"},
	}
	for _, tc := range cases {
		s, err := ParseSpec(tc.kind)
		if tc.wantErr != "" {
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("ParseSpec(%q) err = %v, want %q", tc.kind, err, tc.wantErr)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", tc.kind, err)
			continue
		}
		if err := tc.check(s); err != nil {
			t.Errorf("ParseSpec(%q): %v", tc.kind, err)
		}
	}
}

// TestRankDistribution checks the block distribution: contiguous,
// exhaustive, rank 0 on process 0, and rankProc consistent with
// rankRange.
func TestRankDistribution(t *testing.T) {
	for p := 1; p <= 9; p++ {
		for n := 1; n <= 4; n++ {
			covered := 0
			for i := 0; i < n; i++ {
				lo, hi := rankRange(p, n, i)
				if lo > hi {
					t.Fatalf("P=%d n=%d proc %d: inverted range [%d,%d)", p, n, i, lo, hi)
				}
				covered += hi - lo
				for r := lo; r < hi; r++ {
					if rankProc(p, n, r) != i {
						t.Fatalf("P=%d n=%d: rankProc(%d) = %d, want %d", p, n, r, rankProc(p, n, r), i)
					}
				}
			}
			if covered != p {
				t.Fatalf("P=%d n=%d: ranges cover %d ranks", p, n, covered)
			}
			if lo, _ := rankRange(p, n, 0); lo != 0 {
				t.Fatalf("P=%d n=%d: rank 0 not on process 0", p, n)
			}
		}
	}
}
