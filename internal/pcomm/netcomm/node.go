package netcomm

import (
	"errors"
	"fmt"
	"io/fs"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"syscall"
	"time"

	"repro/internal/pcomm"
)

// BackendEnvVar is the environment variable spawn mode rewrites in its
// children so they join the parent's process group instead of spawning
// their own. It must equal backend.EnvVar (the backend package imports
// netcomm, so the constant is declared here and cross-checked by a test
// there).
const BackendEnvVar = "PILUT_BACKEND"

const (
	// rendezvousTimeout bounds node creation: every process must check in
	// with the coordinator within it.
	rendezvousTimeout = 60 * time.Second
	// dialRetryInterval paces control-connection dial attempts while the
	// coordinator's listener is still coming up.
	dialRetryInterval = 50 * time.Millisecond
	// handshakeTimeout bounds one hello/ack exchange on an established
	// connection.
	handshakeTimeout = 10 * time.Second
)

// Node is one process's membership in a netcomm process group: the
// listener, the control connection to the coordinator (or the
// coordinator state on process 0), and the registry of live worlds.
// A Node persists across worlds — each World.Run is one generation on
// the shared transport — mirroring how a daemon keeps its sockets across
// requests.
type Node struct {
	spec  *Spec
	n     int
	self  int
	peers []string // resolved listen addresses, index = process
	ln    net.Listener

	coord  *coordinator // process 0 only
	ctlOut *ctlConn     // processes > 0: connection to the coordinator

	mu       sync.Mutex
	gen      uint64
	worlds   map[uint64]*World
	doneGens map[uint64]bool
	// Frames and connections for generations this process has not created
	// yet (a peer raced ahead); drained into the world when it appears.
	pendingResults map[uint64][]roundResult
	pendingAborts  map[uint64][]abortMsg
	pendingDones   map[uint64]*pcomm.Result
	pendingConns   map[uint64][]pendingData
	closed         bool
	failure        error // node-wide failure: a peer process died
}

type pendingData struct {
	conn net.Conn
	h    hello
}

// ctlConn serializes writes on one control connection.
type ctlConn struct {
	mu sync.Mutex
	c  net.Conn
}

func (c *ctlConn) send(typ byte, body []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return writeFrame(c.c, typ, body)
}

// registry caches one Node per spec text, so repeated WorldFor calls
// (one per test, one per run) share the rendezvoused process group.
var (
	registryMu sync.Mutex
	registry   = map[string]*Node{}
)

// WorldFor returns a fresh single-use world of p ranks on the process
// group selected by the spec, creating and rendezvousing the group on
// first use. This is the backend registry's entry point.
func WorldFor(kind string, p int) (pcomm.World, error) {
	spec, err := ParseSpec(kind)
	if err != nil {
		return nil, err
	}
	registryMu.Lock()
	node, ok := registry[spec.Raw]
	if !ok {
		node, err = NewNode(spec)
		if err != nil {
			registryMu.Unlock()
			return nil, err
		}
		registry[spec.Raw] = node
	}
	registryMu.Unlock()
	return node.NewWorld(p)
}

// NewNode joins (or, in spawn mode, creates) the spec's process group:
// it binds the listen address, spawns children when asked, and completes
// the control rendezvous with the coordinator. It returns only once the
// whole group is connected, so a misconfigured peer list fails here —
// at startup — not at first send.
func NewNode(spec *Spec) (*Node, error) {
	node := &Node{
		spec:           spec,
		worlds:         make(map[uint64]*World),
		doneGens:       make(map[uint64]bool),
		pendingResults: make(map[uint64][]roundResult),
		pendingAborts:  make(map[uint64][]abortMsg),
		pendingDones:   make(map[uint64]*pcomm.Result),
		pendingConns:   make(map[uint64][]pendingData),
	}
	if spec.Spawn > 0 {
		peers, err := spawnPeers(spec)
		if err != nil {
			return nil, err
		}
		node.peers, node.self = peers, 0
	} else {
		node.peers, node.self = spec.Peers, spec.Self
	}
	node.n = len(node.peers)

	listen := node.peers[node.self]
	if network(listen) == "unix" {
		// A stale socket file from a dead process blocks the bind.
		if err := os.Remove(listen); err != nil && !errors.Is(err, fs.ErrNotExist) {
			return nil, fmt.Errorf("netcomm: removing stale socket %s: %w", listen, err)
		}
	}
	ln, err := net.Listen(network(listen), listen)
	if err != nil {
		return nil, fmt.Errorf("netcomm: listen %s: %w", listen, err)
	}
	node.ln = ln
	if node.self == 0 {
		node.coord = newCoordinator(node)
	}
	go node.acceptLoop()

	if err := node.rendezvous(); err != nil {
		closeErr := ln.Close()
		_ = closeErr // the rendezvous error is the diagnosis; the listener is going away either way
		return nil, err
	}
	return node, nil
}

// NewWorld creates the next-generation world with p ranks. Every process
// in the group must create its worlds in the same order with the same p
// — the SPMD contract at program granularity — because the creation
// index is the generation number that keys all traffic.
func (n *Node) NewWorld(p int) (*World, error) {
	if p < 1 {
		return nil, fmt.Errorf("netcomm: need at least one rank, got %d", p)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, fmt.Errorf("netcomm: node is closed")
	}
	if n.failure != nil {
		return nil, fmt.Errorf("netcomm: process group is broken: %w", n.failure)
	}
	n.gen++
	w := newWorld(n, n.gen, p)
	n.worlds[n.gen] = w
	n.drainPendingLocked(w)
	return w, nil
}

// Close shuts the node down: the listener stops, control connections
// close, and active worlds fail. Registry-held nodes live for the
// process lifetime; Close exists for explicitly created nodes in tests.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	worlds := make([]*World, 0, len(n.worlds))
	for _, w := range n.worlds {
		worlds = append(worlds, w)
	}
	n.mu.Unlock()
	err := n.ln.Close()
	if n.ctlOut != nil {
		if cerr := n.ctlOut.c.Close(); err == nil {
			err = cerr
		}
	}
	if n.coord != nil {
		n.coord.closeConns()
	}
	for _, w := range worlds {
		w.poison(abortMsg{gen: w.gen, rank: -1, msg: "node closed"})
	}
	return err
}

// Addr returns the node's bound listen address.
func (n *Node) Addr() net.Addr { return n.ln.Addr() }

// fail poisons the node: active worlds abort and future NewWorld calls
// return the failure. Used when a peer process dies (its control
// connection dropped) — the group cannot form another world.
func (n *Node) fail(err error) {
	n.mu.Lock()
	if n.failure == nil {
		n.failure = err
	}
	worlds := make([]*World, 0, len(n.worlds))
	for _, w := range n.worlds {
		worlds = append(worlds, w)
	}
	n.mu.Unlock()
	for _, w := range worlds {
		w.poison(abortMsg{gen: w.gen, rank: -1, msg: err.Error()})
	}
}

// rendezvous completes the group handshake: the coordinator waits for
// every peer's control connection; everyone else dials the coordinator
// (with retries while its listener comes up).
func (n *Node) rendezvous() error {
	if n.self == 0 {
		return n.coord.awaitPeers(rendezvousTimeout)
	}
	deadline := time.Now().Add(rendezvousTimeout)
	addr := n.peers[0]
	var lastErr error
	for time.Now().Before(deadline) {
		c, err := net.DialTimeout(network(addr), addr, dialRetryInterval*4)
		if err != nil {
			lastErr = err
			time.Sleep(dialRetryInterval)
			continue
		}
		err = handshake(c, hello{kind: connControl, a: uint32(n.self), b: uint32(n.n)})
		if err != nil {
			lastErr = err
			if cerr := c.Close(); cerr != nil {
				lastErr = fmt.Errorf("%w (and closing: %v)", err, cerr)
			}
			// A rejected handshake (version mismatch, wrong group size) is
			// a configuration error retries cannot fix.
			return fmt.Errorf("netcomm: control handshake with coordinator %s: %w", addr, lastErr)
		}
		n.ctlOut = &ctlConn{c: c}
		go n.controlReadLoop(c)
		return nil
	}
	return fmt.Errorf("netcomm: rendezvous with coordinator %s timed out after %v: %w", addr, rendezvousTimeout, lastErr)
}

// handshake sends a hello and waits for the ack, bounded by
// handshakeTimeout.
func handshake(c net.Conn, h hello) error {
	if err := c.SetDeadline(time.Now().Add(handshakeTimeout)); err != nil {
		return err
	}
	if err := writeFrame(c, fHello, encodeHello(h)); err != nil {
		return err
	}
	typ, body, err := readFrame(c)
	if err != nil {
		return fmt.Errorf("reading hello ack: %w", err)
	}
	if typ != fHelloAck {
		return fmt.Errorf("netcomm: expected hello ack, got frame type %d", typ)
	}
	if err := decodeAck(body); err != nil {
		return err
	}
	return c.SetDeadline(time.Time{})
}

// acceptLoop serves incoming connections for the node's lifetime.
func (n *Node) acceptLoop() {
	for {
		c, err := n.ln.Accept()
		if err != nil {
			return // listener closed with the node
		}
		go n.handleConn(c)
	}
}

// handleConn performs the server side of the handshake and routes the
// connection: control connections register with the coordinator, data
// connections attach to their world (parking until it exists).
func (n *Node) handleConn(c net.Conn) {
	reject := func(err error) {
		if werr := writeFrame(c, fHelloAck, encodeAck(err)); werr != nil {
			_ = werr //pilutlint:ok errdrop the peer is being rejected; its ack read failing too adds nothing
		}
		if cerr := c.Close(); cerr != nil {
			_ = cerr //pilutlint:ok errdrop close-on-reject; the connection is already being abandoned
		}
	}
	if err := c.SetDeadline(time.Now().Add(handshakeTimeout)); err != nil {
		reject(err)
		return
	}
	typ, body, err := readFrame(c)
	if err != nil || typ != fHello {
		reject(fmt.Errorf("netcomm: expected hello frame: %v", err))
		return
	}
	h, err := decodeHello(body)
	if err != nil {
		reject(err)
		return
	}
	switch h.kind {
	case connControl:
		if n.self != 0 {
			reject(fmt.Errorf("netcomm: process %d is not the coordinator", n.self))
			return
		}
		if int(h.b) != n.n {
			reject(fmt.Errorf("netcomm: peer believes the group has %d processes, this node has %d", h.b, n.n))
			return
		}
		if h.a == 0 || int(h.a) >= n.n {
			reject(fmt.Errorf("netcomm: control hello from invalid process index %d", h.a))
			return
		}
		if err := writeFrame(c, fHelloAck, encodeAck(nil)); err != nil {
			reject(err)
			return
		}
		if err := c.SetDeadline(time.Time{}); err != nil {
			reject(err)
			return
		}
		n.coord.register(int(h.a), c)
	case connData:
		p, src, dst := int(h.c), int(h.a), int(h.b)
		if p < 1 || src < 0 || src >= p || dst < 0 || dst >= p {
			reject(fmt.Errorf("netcomm: data hello with rank %d→%d outside P=%d", src, dst, p))
			return
		}
		if rankProc(p, n.n, dst) != n.self {
			reject(fmt.Errorf("netcomm: rank %d is not hosted on process %d", dst, n.self))
			return
		}
		if err := writeFrame(c, fHelloAck, encodeAck(nil)); err != nil {
			reject(err)
			return
		}
		if err := c.SetDeadline(time.Time{}); err != nil {
			reject(err)
			return
		}
		n.attachData(c, h)
	default:
		reject(fmt.Errorf("netcomm: unknown connection kind %d", h.kind))
	}
}

// attachData hands a handshaken data connection to its world, parking it
// when the local program has not created that generation yet.
func (n *Node) attachData(c net.Conn, h hello) {
	n.mu.Lock()
	if n.doneGens[h.gen] || n.closed {
		n.mu.Unlock()
		if err := c.Close(); err != nil {
			_ = err //pilutlint:ok errdrop the world is finished; a late connection is simply turned away
		}
		return
	}
	w, ok := n.worlds[h.gen]
	if !ok {
		n.pendingConns[h.gen] = append(n.pendingConns[h.gen], pendingData{conn: c, h: h})
		n.mu.Unlock()
		return
	}
	n.mu.Unlock()
	w.startReader(c, int(h.a), int(h.b))
}

// controlReadLoop is the non-coordinator side of the control connection:
// it dispatches result, abort and done broadcasts. Its EOF means the
// coordinator process died, which breaks the whole group.
func (n *Node) controlReadLoop(c net.Conn) {
	for {
		typ, body, err := readFrame(c)
		if err != nil {
			n.mu.Lock()
			closed := n.closed
			n.mu.Unlock()
			if !closed {
				n.fail(fmt.Errorf("netcomm: lost control connection to coordinator %s: %v", n.peers[0], err))
			}
			return
		}
		n.dispatchControl(typ, body)
	}
}

// dispatchControl routes one coordinator broadcast. Malformed frames
// break the group: the control stream is the spine everything else
// hangs off.
func (n *Node) dispatchControl(typ byte, body []byte) {
	switch typ {
	case fResult:
		r, err := decodeResultFrame(body)
		if err != nil {
			n.fail(err)
			return
		}
		n.handleResult(r)
	case fAbort:
		a, err := decodeAbortFrame(body)
		if err != nil {
			n.fail(err)
			return
		}
		n.handleAbort(a)
	case fDone:
		gen, res, err := decodeDoneFrame(body)
		if err != nil {
			n.fail(err)
			return
		}
		n.handleDone(gen, res)
	default:
		n.fail(fmt.Errorf("netcomm: unexpected control frame type %d", typ))
	}
}

func (n *Node) handleResult(r roundResult) {
	n.mu.Lock()
	w, ok := n.worlds[r.gen]
	if !ok {
		if !n.doneGens[r.gen] {
			n.pendingResults[r.gen] = append(n.pendingResults[r.gen], r)
		}
		n.mu.Unlock()
		return
	}
	n.mu.Unlock()
	w.postResult(r)
}

func (n *Node) handleAbort(a abortMsg) {
	n.mu.Lock()
	w, ok := n.worlds[a.gen]
	if !ok {
		if !n.doneGens[a.gen] {
			n.pendingAborts[a.gen] = append(n.pendingAborts[a.gen], a)
		}
		n.mu.Unlock()
		return
	}
	n.mu.Unlock()
	w.poison(a)
}

func (n *Node) handleDone(gen uint64, res pcomm.Result) {
	n.mu.Lock()
	w, ok := n.worlds[gen]
	if !ok {
		if !n.doneGens[gen] {
			r := res
			n.pendingDones[gen] = &r
		}
		n.mu.Unlock()
		return
	}
	n.mu.Unlock()
	w.postDone(res)
}

// drainPendingLocked replays frames that arrived before the world was
// created. Caller holds n.mu.
func (n *Node) drainPendingLocked(w *World) {
	gen := w.gen
	results := n.pendingResults[gen]
	aborts := n.pendingAborts[gen]
	done := n.pendingDones[gen]
	conns := n.pendingConns[gen]
	delete(n.pendingResults, gen)
	delete(n.pendingAborts, gen)
	delete(n.pendingDones, gen)
	delete(n.pendingConns, gen)
	if len(results) == 0 && len(aborts) == 0 && done == nil && len(conns) == 0 {
		return
	}
	go func() {
		for _, c := range conns {
			w.startReader(c.conn, int(c.h.a), int(c.h.b))
		}
		for _, r := range results {
			w.postResult(r)
		}
		for _, a := range aborts {
			w.poison(a)
		}
		if done != nil {
			w.postDone(*done)
		}
	}()
}

// finishWorld retires a completed (or failed) generation: late frames
// for it are dropped instead of parked forever.
func (n *Node) finishWorld(gen uint64) {
	n.mu.Lock()
	delete(n.worlds, gen)
	n.doneGens[gen] = true
	delete(n.pendingResults, gen)
	delete(n.pendingAborts, gen)
	delete(n.pendingDones, gen)
	conns := n.pendingConns[gen]
	delete(n.pendingConns, gen)
	n.mu.Unlock()
	for _, c := range conns {
		if err := c.conn.Close(); err != nil {
			_ = err //pilutlint:ok errdrop late data connection for a finished world; nothing to diagnose
		}
	}
}

// deposit forwards one collective contribution to the coordinator —
// locally on process 0, over the control connection elsewhere.
func (n *Node) deposit(d deposit) error {
	if n.coord != nil {
		n.coord.deposit(d)
		return nil
	}
	return n.ctlOut.send(fDeposit, encodeDepositFrame(d))
}

// sendAbort tells the coordinator (and through it, everyone) that gen
// failed here.
func (n *Node) sendAbort(a abortMsg) {
	if n.coord != nil {
		n.coord.abortGen(a)
		return
	}
	if err := n.ctlOut.send(fAbort, encodeAbortFrame(a)); err != nil {
		// The control link is gone; the coordinator will observe the EOF
		// and broadcast the group failure itself.
		_ = err //pilutlint:ok errdrop abort-path write failure is superseded by the coordinator's own EOF detection
	}
}

// spawnPeers implements spawn mode: reserve N unix socket paths in a
// fresh temp directory, re-execute this binary N−1 times with an
// explicit spec pointing each child at its socket, and return the peer
// list with this process as the coordinator. Children are killed by the
// kernel if the parent dies (PDEATHSIG), and reaped as they exit.
func spawnPeers(spec *Spec) ([]string, error) {
	dir, err := os.MkdirTemp("", "netcomm-")
	if err != nil {
		return nil, fmt.Errorf("netcomm: spawn temp dir: %w", err)
	}
	peers := make([]string, spec.Spawn)
	for i := range peers {
		peers[i] = filepath.Join(dir, fmt.Sprintf("p%d.sock", i))
	}
	peerList := ""
	for i, p := range peers {
		if i > 0 {
			peerList += ","
		}
		peerList += p
	}
	for i := 1; i < spec.Spawn; i++ {
		childSpec := fmt.Sprintf("%s:%s;%s", Kind, peers[i], peerList)
		cmd := exec.Command(os.Args[0], os.Args[1:]...)
		cmd.Env = append(envWithout(BackendEnvVar), BackendEnvVar+"="+childSpec)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		cmd.SysProcAttr = &syscall.SysProcAttr{Pdeathsig: syscall.SIGKILL}
		if err := cmd.Start(); err != nil {
			return nil, fmt.Errorf("netcomm: spawning process %d: %w", i, err)
		}
		go func() {
			if err := cmd.Wait(); err != nil {
				_ = err //pilutlint:ok errdrop reaping only; a child's exit status is its own test output
			}
		}()
	}
	return peers, nil
}

// envWithout copies the environment minus the named variable.
func envWithout(name string) []string {
	env := os.Environ()
	out := make([]string, 0, len(env))
	prefix := name + "="
	for _, kv := range env {
		if len(kv) >= len(prefix) && kv[:len(prefix)] == prefix {
			continue
		}
		out = append(out, kv)
	}
	return out
}
