package netcomm

import (
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/pcomm"
)

// opStats is the reserved collective op of the run-completion round:
// after the SPMD function returns, every rank deposits its statistics
// under this op and the coordinator answers with a done broadcast
// instead of a result frame. The "__" prefix keeps it out of the user
// collective namespace ("barrier", "allreduce_f64", ...).
const opStats = "__stats"

// coordinator is process 0's collective brain: it owns one control
// connection per peer process, collects the P deposits of each
// (generation, round), and broadcasts the rank-ordered result — or an
// abort — to every process. Keeping the fold inputs in rank order here
// is what lets each rank reduce locally with realcomm's exact loop, so
// results stay bitwise identical across backends.
type coordinator struct {
	node *Node

	mu         sync.Mutex
	conns      []*ctlConn // index = process; [0] stays nil (local)
	registered int
	allIn      chan struct{}
	gens       map[uint64]*genCollect
	dead       error // a peer process died; every subsequent round aborts
}

// genCollect is the coordinator's state for one world generation.
type genCollect struct {
	p       int
	rounds  map[uint64]*roundCollect
	aborted bool
}

// roundCollect accumulates one collective round's deposits.
type roundCollect struct {
	op   string
	pays []payload
	seen []bool
	got  int
}

func newCoordinator(n *Node) *coordinator {
	return &coordinator{
		node:  n,
		conns: make([]*ctlConn, n.n),
		allIn: make(chan struct{}),
		gens:  make(map[uint64]*genCollect),
	}
}

// awaitPeers blocks until every peer's control connection has
// registered, or the rendezvous times out.
func (c *coordinator) awaitPeers(timeout time.Duration) error {
	if c.node.n == 1 {
		return nil
	}
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case <-c.allIn:
		return nil
	case <-t.C:
		c.mu.Lock()
		got := c.registered
		c.mu.Unlock()
		return fmt.Errorf("netcomm: rendezvous timed out after %v: %d of %d peer processes checked in",
			timeout, got, c.node.n-1)
	}
}

// register adopts a handshaken control connection from process idx and
// starts its read loop.
func (c *coordinator) register(idx int, conn net.Conn) {
	c.mu.Lock()
	if c.conns[idx] != nil {
		c.mu.Unlock()
		if err := conn.Close(); err != nil {
			_ = err // duplicate control connection; the first one stays authoritative
		}
		return
	}
	c.conns[idx] = &ctlConn{c: conn}
	c.registered++
	if c.registered == c.node.n-1 {
		close(c.allIn)
	}
	c.mu.Unlock()
	go c.readLoop(idx, conn)
}

// closeConns tears down every control connection (node shutdown).
func (c *coordinator) closeConns() {
	c.mu.Lock()
	conns := append([]*ctlConn(nil), c.conns...)
	c.mu.Unlock()
	for _, cc := range conns {
		if cc == nil {
			continue
		}
		if err := cc.c.Close(); err != nil {
			_ = err // shutdown path; the connection is being discarded
		}
	}
}

// readLoop consumes deposits and aborts from one peer process. Its EOF
// is the death notice of that process: the group cannot complete any
// round without it, so everything aborts.
func (c *coordinator) readLoop(idx int, conn net.Conn) {
	for {
		typ, body, err := readFrame(conn)
		if err != nil {
			c.node.mu.Lock()
			closed := c.node.closed
			c.node.mu.Unlock()
			if !closed {
				c.peerLost(idx, fmt.Errorf("netcomm: lost control connection to process %d (%s): %v",
					idx, c.node.peers[idx], err))
			}
			return
		}
		switch typ {
		case fDeposit:
			d, derr := decodeDepositFrame(body)
			if derr != nil {
				c.peerLost(idx, derr)
				return
			}
			c.deposit(d)
		case fAbort:
			a, aerr := decodeAbortFrame(body)
			if aerr != nil {
				c.peerLost(idx, aerr)
				return
			}
			c.abortGen(a)
		default:
			c.peerLost(idx, fmt.Errorf("netcomm: unexpected frame type %d on control connection from process %d", typ, idx))
			return
		}
	}
}

// deposit folds one rank's contribution into its round; when the round
// is full it broadcasts the rank-ordered result (or, for the stats
// round, assembles and broadcasts the run Result).
func (c *coordinator) deposit(d deposit) {
	c.mu.Lock()
	if c.dead != nil {
		dead := c.dead
		c.mu.Unlock()
		c.abortGen(abortMsg{gen: d.gen, rank: -1, msg: dead.Error()})
		return
	}
	gc, ok := c.gens[d.gen]
	if !ok {
		gc = &genCollect{p: d.p, rounds: make(map[uint64]*roundCollect)}
		c.gens[d.gen] = gc
	}
	if gc.aborted {
		c.mu.Unlock()
		return
	}
	abort := func(msg string) {
		c.mu.Unlock()
		c.abortGen(abortMsg{gen: d.gen, rank: d.rank, msg: msg})
	}
	if gc.p != d.p {
		abort(fmt.Sprintf("netcomm: SPMD violation: rank %d deposited into a %d-rank world, this generation has %d ranks", d.rank, d.p, gc.p))
		return
	}
	if d.rank < 0 || d.rank >= gc.p {
		abort(fmt.Sprintf("netcomm: deposit from out-of-range rank %d (P=%d)", d.rank, gc.p))
		return
	}
	rc, ok := gc.rounds[d.round]
	if !ok {
		rc = &roundCollect{op: d.op, pays: make([]payload, gc.p), seen: make([]bool, gc.p)}
		gc.rounds[d.round] = rc
	}
	if rc.op != d.op {
		abort(fmt.Sprintf("netcomm: collective mismatch in round %d: rank %d entered %q, others entered %q", d.round, d.rank, d.op, rc.op))
		return
	}
	if rc.seen[d.rank] {
		abort(fmt.Sprintf("netcomm: rank %d deposited twice into round %d (%q)", d.rank, d.round, d.op))
		return
	}
	rc.pays[d.rank] = d.pay
	rc.seen[d.rank] = true
	rc.got++
	if rc.got < gc.p {
		c.mu.Unlock()
		return
	}
	delete(gc.rounds, d.round)
	if d.op == opStats {
		delete(c.gens, d.gen) // the stats round is every rank's last act
		c.mu.Unlock()
		c.finishGen(d.gen, rc.pays)
		return
	}
	c.mu.Unlock()
	c.broadcastResult(roundResult{gen: d.gen, round: d.round, op: d.op, pays: rc.pays})
}

// finishGen decodes the stats round and broadcasts the assembled run
// Result so Run returns the same value in every process.
func (c *coordinator) finishGen(gen uint64, pays []payload) {
	res := pcomm.Result{PerProc: make([]pcomm.Stats, len(pays))}
	for i, pay := range pays {
		v, _, isRaw, err := decodePayload(pay)
		if err != nil || isRaw {
			c.abortGen(abortMsg{gen: gen, rank: i, msg: fmt.Sprintf("netcomm: malformed stats deposit from rank %d: %v", i, err)})
			return
		}
		st, ok := v.(pcomm.Stats)
		if !ok {
			c.abortGen(abortMsg{gen: gen, rank: i, msg: fmt.Sprintf("netcomm: stats deposit from rank %d decoded as %T", i, v)})
			return
		}
		res.PerProc[i] = st
		if st.Time > res.Elapsed {
			res.Elapsed = st.Time
		}
	}
	body, err := encodeDoneFrame(gen, res)
	if err != nil {
		c.abortGen(abortMsg{gen: gen, rank: -1, msg: err.Error()})
		return
	}
	c.node.handleDone(gen, res)
	for idx, cc := range c.snapshotConns() {
		if cc == nil {
			continue
		}
		if err := cc.send(fDone, body); err != nil {
			c.peerLost(idx, fmt.Errorf("netcomm: broadcasting done to process %d: %w", idx, err))
		}
	}
}

// broadcastResult delivers one completed round to every process.
func (c *coordinator) broadcastResult(r roundResult) {
	body := encodeResultFrame(r)
	c.node.handleResult(r)
	for idx, cc := range c.snapshotConns() {
		if cc == nil {
			continue
		}
		if err := cc.send(fResult, body); err != nil {
			c.peerLost(idx, fmt.Errorf("netcomm: broadcasting round result to process %d: %w", idx, err))
		}
	}
}

// abortGen marks a generation failed (first cause wins) and broadcasts
// the abort to every process, including this one.
func (c *coordinator) abortGen(a abortMsg) {
	c.mu.Lock()
	gc, ok := c.gens[a.gen]
	if !ok {
		gc = &genCollect{rounds: make(map[uint64]*roundCollect)}
		c.gens[a.gen] = gc
	}
	if gc.aborted {
		c.mu.Unlock()
		return
	}
	gc.aborted = true
	gc.rounds = make(map[uint64]*roundCollect) // drop buffered deposits
	c.mu.Unlock()
	body := encodeAbortFrame(a)
	c.node.handleAbort(a)
	for _, cc := range c.snapshotConns() {
		if cc == nil {
			continue
		}
		if err := cc.send(fAbort, body); err != nil {
			// A peer unreachable during an abort broadcast is already dead;
			// its own read-loop EOF handling raises the group failure.
			continue
		}
	}
}

// peerLost handles the death of a peer process: the node is poisoned,
// every active generation aborts, and the dead flag makes any later
// round abort immediately.
func (c *coordinator) peerLost(idx int, err error) {
	c.mu.Lock()
	if c.dead == nil {
		c.dead = err
	}
	c.conns[idx] = nil
	gens := make([]uint64, 0, len(c.gens))
	for gen, gc := range c.gens {
		if !gc.aborted {
			gens = append(gens, gen)
		}
	}
	c.mu.Unlock()
	for _, gen := range gens {
		c.abortGen(abortMsg{gen: gen, rank: -1, msg: err.Error()})
	}
	c.node.fail(err)
}

func (c *coordinator) snapshotConns() []*ctlConn {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]*ctlConn(nil), c.conns...)
}
