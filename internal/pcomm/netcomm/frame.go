package netcomm

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"math"
	"unsafe"

	"repro/internal/pcomm"
)

// Wire constants. Every connection starts with a hello frame carrying
// the magic and protocol version; a peer speaking anything else is
// rejected at handshake time with an explanatory ack, never at first
// data frame.
const (
	wireMagic   uint32 = 0x50494C55 // "PILU"
	wireVersion uint16 = 1

	// maxFrameLen bounds one frame. The length prefix is validated
	// against it before any allocation, so a corrupt or malicious prefix
	// cannot balloon memory.
	maxFrameLen = 1 << 30
)

// Frame types.
const (
	fHello byte = iota + 1
	fHelloAck
	fData
	fDeposit
	fResult
	fAbort
	fDone
)

// Connection kinds inside a hello frame.
const (
	connControl byte = iota
	connData
)

// Payload kinds. Float64 and int travel as fixed 8-byte values (the
// AllReduce fast path); raw carries a RawSlice's bytes; everything else
// rides the gob registry (see pcomm.RegisterWire).
const (
	pkNil byte = iota
	pkFloat64
	pkInt
	pkGob
	pkRaw
)

// writeFrame writes one length-prefixed frame: a 4-byte big-endian
// length covering the type byte and body, then both.
func writeFrame(w io.Writer, typ byte, body []byte) error {
	n := 1 + len(body)
	if n > maxFrameLen {
		return fmt.Errorf("netcomm: frame of %d bytes exceeds the %d-byte limit", n, maxFrameLen)
	}
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(n))
	hdr[4] = typ
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("netcomm: writing frame header: %w", err)
	}
	if len(body) > 0 {
		if _, err := w.Write(body); err != nil {
			return fmt.Errorf("netcomm: writing frame body: %w", err)
		}
	}
	return nil
}

// readFrame reads one frame. The length prefix is validated before the
// body is allocated; torn reads surface as io.ErrUnexpectedEOF from
// io.ReadFull.
func readFrame(r io.Reader) (typ byte, body []byte, err error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 {
		return 0, nil, fmt.Errorf("netcomm: zero-length frame")
	}
	if n > maxFrameLen {
		return 0, nil, fmt.Errorf("netcomm: frame length %d exceeds the %d-byte limit", n, maxFrameLen)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, fmt.Errorf("netcomm: reading %d-byte frame body: %w", n, err)
	}
	return buf[0], buf[1:], nil
}

// hello is the handshake sent as the first frame of every connection.
type hello struct {
	kind byte   // connControl or connData
	gen  uint64 // data: world generation (control: 0)
	a    uint32 // control: process index; data: src rank
	b    uint32 // control: process count;  data: dst rank
	c    uint32 // data: world size P
}

func encodeHello(h hello) []byte {
	buf := make([]byte, 0, 27)
	buf = binary.BigEndian.AppendUint32(buf, wireMagic)
	buf = binary.BigEndian.AppendUint16(buf, wireVersion)
	buf = append(buf, h.kind)
	buf = binary.BigEndian.AppendUint64(buf, h.gen)
	buf = binary.BigEndian.AppendUint32(buf, h.a)
	buf = binary.BigEndian.AppendUint32(buf, h.b)
	buf = binary.BigEndian.AppendUint32(buf, h.c)
	return buf
}

// decodeHello validates magic and version before touching anything else,
// so a stranger protocol (or a future netcomm) is told exactly why it
// was turned away.
func decodeHello(body []byte) (hello, error) {
	if len(body) < 27 {
		return hello{}, fmt.Errorf("netcomm: hello frame is %d bytes, want 27", len(body))
	}
	if m := binary.BigEndian.Uint32(body[0:4]); m != wireMagic {
		return hello{}, fmt.Errorf("netcomm: bad magic %#x (not a netcomm peer?)", m)
	}
	if v := binary.BigEndian.Uint16(body[4:6]); v != wireVersion {
		return hello{}, fmt.Errorf("netcomm: protocol version %d, this process speaks %d", v, wireVersion)
	}
	return hello{
		kind: body[6],
		gen:  binary.BigEndian.Uint64(body[7:15]),
		a:    binary.BigEndian.Uint32(body[15:19]),
		b:    binary.BigEndian.Uint32(body[19:23]),
		c:    binary.BigEndian.Uint32(body[23:27]),
	}, nil
}

// encodeAck builds a hello-ack body: a status byte and, on rejection,
// the reason.
func encodeAck(err error) []byte {
	if err == nil {
		return []byte{0}
	}
	return append([]byte{1}, err.Error()...)
}

func decodeAck(body []byte) error {
	if len(body) == 0 {
		return fmt.Errorf("netcomm: empty hello ack")
	}
	if body[0] == 0 {
		return nil
	}
	return fmt.Errorf("netcomm: peer rejected handshake: %s", string(body[1:]))
}

// payload is one encoded Send/collective value.
type payload struct {
	kind byte
	data []byte
}

// encodePayload serializes a boxed value. Floats and ints (the
// AllReduce vocabulary) take a fixed 8-byte form whose decode is exactly
// bit-preserving; every other value must be registered with
// pcomm.RegisterWire.
func encodePayload(v any) (payload, error) {
	switch x := v.(type) {
	case nil:
		return payload{kind: pkNil}, nil
	case float64:
		return payload{kind: pkFloat64, data: binary.BigEndian.AppendUint64(nil, math.Float64bits(x))}, nil
	case int:
		return payload{kind: pkInt, data: binary.BigEndian.AppendUint64(nil, uint64(int64(x)))}, nil
	default:
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(&v); err != nil {
			return payload{}, fmt.Errorf("netcomm: encoding %T payload (is the type registered with pcomm.RegisterWire?): %w", v, err)
		}
		return payload{kind: pkGob, data: buf.Bytes()}, nil
	}
}

// encodeRawPayload serializes a RawSlice's element bytes.
func encodeRawPayload(h pcomm.RawSlice) payload {
	n := h.Len * int(h.Elem)
	buf := make([]byte, 8, 8+n)
	binary.BigEndian.PutUint32(buf[0:4], uint32(h.Elem))
	binary.BigEndian.PutUint32(buf[4:8], uint32(h.Len))
	if n > 0 {
		buf = append(buf, unsafe.Slice((*byte)(h.Ptr), n)...)
	}
	return payload{kind: pkRaw, data: buf}
}

// decodePayload reconstructs a payload. Raw slices come back on a
// fresh 8-byte-aligned backing array (allocated as []uint64) so the
// receiver may reinterpret them as float64/int slices safely.
func decodePayload(p payload) (boxed any, raw pcomm.RawSlice, isRaw bool, err error) {
	switch p.kind {
	case pkNil:
		return nil, pcomm.RawSlice{}, false, nil
	case pkFloat64:
		if len(p.data) != 8 {
			return nil, pcomm.RawSlice{}, false, fmt.Errorf("netcomm: float64 payload is %d bytes", len(p.data))
		}
		return math.Float64frombits(binary.BigEndian.Uint64(p.data)), pcomm.RawSlice{}, false, nil
	case pkInt:
		if len(p.data) != 8 {
			return nil, pcomm.RawSlice{}, false, fmt.Errorf("netcomm: int payload is %d bytes", len(p.data))
		}
		return int(int64(binary.BigEndian.Uint64(p.data))), pcomm.RawSlice{}, false, nil
	case pkGob:
		var v any
		if err := gob.NewDecoder(bytes.NewReader(p.data)).Decode(&v); err != nil {
			return nil, pcomm.RawSlice{}, false, fmt.Errorf("netcomm: decoding gob payload: %w", err)
		}
		return v, pcomm.RawSlice{}, false, nil
	case pkRaw:
		if len(p.data) < 8 {
			return nil, pcomm.RawSlice{}, false, fmt.Errorf("netcomm: raw payload header is %d bytes", len(p.data))
		}
		elem := int(binary.BigEndian.Uint32(p.data[0:4]))
		n := int(binary.BigEndian.Uint32(p.data[4:8]))
		nbytes := n * elem
		if len(p.data) != 8+nbytes || elem <= 0 && n > 0 {
			return nil, pcomm.RawSlice{}, false, fmt.Errorf("netcomm: raw payload wants %d×%d bytes, frame has %d", n, elem, len(p.data)-8)
		}
		h := pcomm.RawSlice{Len: n, Cap: n, Elem: uintptr(elem)}
		if nbytes > 0 {
			words := make([]uint64, (nbytes+7)/8)
			copy(unsafe.Slice((*byte)(unsafe.Pointer(&words[0])), nbytes), p.data[8:])
			h.Ptr = unsafe.Pointer(&words[0])
		}
		return nil, h, true, nil
	default:
		return nil, pcomm.RawSlice{}, false, fmt.Errorf("netcomm: unknown payload kind %d", p.kind)
	}
}

// appendPayload / readPayload frame a payload inside a larger body.
func appendPayload(buf []byte, p payload) []byte {
	buf = append(buf, p.kind)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(p.data)))
	return append(buf, p.data...)
}

func readPayload(body []byte) (payload, []byte, error) {
	if len(body) < 5 {
		return payload{}, nil, fmt.Errorf("netcomm: truncated payload header")
	}
	n := int(binary.BigEndian.Uint32(body[1:5]))
	if len(body) < 5+n {
		return payload{}, nil, fmt.Errorf("netcomm: payload wants %d bytes, frame has %d", n, len(body)-5)
	}
	return payload{kind: body[0], data: body[5 : 5+n]}, body[5+n:], nil
}

// Data frames: tag, then the payload.
func encodeDataFrame(tag int, p payload) []byte {
	buf := binary.BigEndian.AppendUint64(nil, uint64(int64(tag)))
	return appendPayload(buf, p)
}

func decodeDataFrame(body []byte) (tag int, p payload, err error) {
	if len(body) < 8 {
		return 0, payload{}, fmt.Errorf("netcomm: truncated data frame")
	}
	tag = int(int64(binary.BigEndian.Uint64(body[:8])))
	p, rest, err := readPayload(body[8:])
	if err != nil {
		return 0, payload{}, err
	}
	if len(rest) != 0 {
		return 0, payload{}, fmt.Errorf("netcomm: %d trailing bytes in data frame", len(rest))
	}
	return tag, p, nil
}

// Deposit frames: one rank's contribution to one collective round.
type deposit struct {
	gen   uint64
	round uint64
	rank  int
	p     int // world size, so the coordinator can size the round
	op    string
	pay   payload
}

func encodeDepositFrame(d deposit) []byte {
	buf := binary.BigEndian.AppendUint64(nil, d.gen)
	buf = binary.BigEndian.AppendUint64(buf, d.round)
	buf = binary.BigEndian.AppendUint32(buf, uint32(d.rank))
	buf = binary.BigEndian.AppendUint32(buf, uint32(d.p))
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(d.op)))
	buf = append(buf, d.op...)
	return appendPayload(buf, d.pay)
}

func decodeDepositFrame(body []byte) (deposit, error) {
	var d deposit
	if len(body) < 26 {
		return d, fmt.Errorf("netcomm: truncated deposit frame")
	}
	d.gen = binary.BigEndian.Uint64(body[0:8])
	d.round = binary.BigEndian.Uint64(body[8:16])
	d.rank = int(binary.BigEndian.Uint32(body[16:20]))
	d.p = int(binary.BigEndian.Uint32(body[20:24]))
	opLen := int(binary.BigEndian.Uint16(body[24:26]))
	if len(body) < 26+opLen {
		return d, fmt.Errorf("netcomm: deposit op wants %d bytes, frame has %d", opLen, len(body)-26)
	}
	d.op = string(body[26 : 26+opLen])
	pay, rest, err := readPayload(body[26+opLen:])
	if err != nil {
		return d, err
	}
	if len(rest) != 0 {
		return d, fmt.Errorf("netcomm: %d trailing bytes in deposit frame", len(rest))
	}
	d.pay = pay
	return d, nil
}

// Result frames: the coordinator's broadcast of one completed round —
// every rank's payload in rank order.
type roundResult struct {
	gen   uint64
	round uint64
	op    string
	pays  []payload // indexed by rank
}

func encodeResultFrame(r roundResult) []byte {
	buf := binary.BigEndian.AppendUint64(nil, r.gen)
	buf = binary.BigEndian.AppendUint64(buf, r.round)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(r.op)))
	buf = append(buf, r.op...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(r.pays)))
	for _, p := range r.pays {
		buf = appendPayload(buf, p)
	}
	return buf
}

func decodeResultFrame(body []byte) (roundResult, error) {
	var r roundResult
	if len(body) < 18 {
		return r, fmt.Errorf("netcomm: truncated result frame")
	}
	r.gen = binary.BigEndian.Uint64(body[0:8])
	r.round = binary.BigEndian.Uint64(body[8:16])
	opLen := int(binary.BigEndian.Uint16(body[16:18]))
	if len(body) < 18+opLen+4 {
		return r, fmt.Errorf("netcomm: truncated result frame op")
	}
	r.op = string(body[18 : 18+opLen])
	rest := body[18+opLen:]
	count := int(binary.BigEndian.Uint32(rest[:4]))
	rest = rest[4:]
	r.pays = make([]payload, 0, count)
	for i := 0; i < count; i++ {
		var p payload
		var err error
		p, rest, err = readPayload(rest)
		if err != nil {
			return r, fmt.Errorf("netcomm: result payload %d: %w", i, err)
		}
		r.pays = append(r.pays, p)
	}
	if len(rest) != 0 {
		return r, fmt.Errorf("netcomm: %d trailing bytes in result frame", len(rest))
	}
	return r, nil
}

// Abort frames: a failure on one process, broadcast to all.
type abortMsg struct {
	gen  uint64
	rank int // root-cause rank, -1 when unknown
	msg  string
}

func encodeAbortFrame(a abortMsg) []byte {
	buf := binary.BigEndian.AppendUint64(nil, a.gen)
	buf = binary.BigEndian.AppendUint32(buf, uint32(int32(a.rank)))
	return append(buf, a.msg...)
}

func decodeAbortFrame(body []byte) (abortMsg, error) {
	if len(body) < 12 {
		return abortMsg{}, fmt.Errorf("netcomm: truncated abort frame")
	}
	return abortMsg{
		gen:  binary.BigEndian.Uint64(body[0:8]),
		rank: int(int32(binary.BigEndian.Uint32(body[8:12]))),
		msg:  string(body[12:]),
	}, nil
}

// Done frames: the coordinator's world-completion broadcast carrying the
// assembled per-rank statistics, so World.Run returns an identical
// Result in every process (including processes hosting zero ranks).
func encodeDoneFrame(gen uint64, res pcomm.Result) ([]byte, error) {
	buf := bytes.NewBuffer(binary.BigEndian.AppendUint64(nil, gen))
	if err := gob.NewEncoder(buf).Encode(res); err != nil {
		return nil, fmt.Errorf("netcomm: encoding run result: %w", err)
	}
	return buf.Bytes(), nil
}

func decodeDoneFrame(body []byte) (gen uint64, res pcomm.Result, err error) {
	if len(body) < 8 {
		return 0, res, fmt.Errorf("netcomm: truncated done frame")
	}
	gen = binary.BigEndian.Uint64(body[0:8])
	if err := gob.NewDecoder(bytes.NewReader(body[8:])).Decode(&res); err != nil {
		return 0, res, fmt.Errorf("netcomm: decoding run result: %w", err)
	}
	return gen, res, nil
}
