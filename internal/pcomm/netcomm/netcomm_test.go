package netcomm

import (
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/pcomm"
)

// newGroup builds an n-process group inside this one test process:
// every "process" is a Node with its own listener, talking to the
// others over real unix sockets. The full wire path — handshakes,
// control rendezvous, data frames, coordinator broadcasts — is
// exercised; only the OS process boundary is folded away (the spawn
// smoke test covers that).
func newGroup(t *testing.T, n int) []*Node {
	t.Helper()
	dir := t.TempDir()
	peers := make([]string, n)
	for i := range peers {
		peers[i] = filepath.Join(dir, fmt.Sprintf("p%d.sock", i))
	}
	nodes := make([]*Node, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			nodes[i], errs[i] = NewNode(&Spec{Raw: fmt.Sprintf("test:%s#%d", dir, i), Listen: peers[i], Peers: peers, Self: i})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
	}
	t.Cleanup(func() {
		for _, nd := range nodes {
			if err := nd.Close(); err != nil {
				t.Logf("closing node: %v", err)
			}
		}
	})
	return nodes
}

// runGroup runs f as one P-rank world across the group and returns each
// process's Result. Every process must return the identical Result.
func runGroup(t *testing.T, nodes []*Node, p int, f func(pcomm.Comm)) []pcomm.Result {
	t.Helper()
	worlds := make([]*World, len(nodes))
	for i, nd := range nodes {
		w, err := nd.NewWorld(p)
		if err != nil {
			t.Fatalf("node %d NewWorld: %v", i, err)
		}
		worlds[i] = w
	}
	results := make([]pcomm.Result, len(nodes))
	runErrs := make([]error, len(nodes))
	var wg sync.WaitGroup
	wg.Add(len(nodes))
	for i, w := range worlds {
		go func(i int, w *World) {
			defer wg.Done()
			w.SetWatchdog(30 * time.Second)
			results[i], runErrs[i] = pcomm.Guard(w, f)
		}(i, w)
	}
	wg.Wait()
	for i, err := range runErrs {
		if err != nil {
			t.Fatalf("process %d run: %v", i, err)
		}
	}
	return results
}

// TestGroupCollectives runs every collective across 2 processes and
// checks values and cross-process Result identity.
func TestGroupCollectives(t *testing.T) {
	nodes := newGroup(t, 2)
	const P = 4
	results := runGroup(t, nodes, P, func(c pcomm.Comm) {
		id := c.ID()
		if c.P() != P {
			panic(fmt.Sprintf("P() = %d", c.P()))
		}
		sum := c.AllReduceFloat64(float64(id)+0.5, pcomm.OpSum)
		if sum != 0.5+1.5+2.5+3.5 {
			panic(fmt.Sprintf("rank %d: sum = %v", id, sum))
		}
		if mx := c.AllReduceInt(id*10, pcomm.OpMax); mx != 30 {
			panic(fmt.Sprintf("rank %d: max = %d", id, mx))
		}
		if mn := c.AllReduceInt(id*10, pcomm.OpMin); mn != 0 {
			panic(fmt.Sprintf("rank %d: min = %d", id, mn))
		}
		c.Barrier()
		all := c.AllGather([]int{id, id * id}, pcomm.BytesOfInts(2))
		for q := 0; q < P; q++ {
			got := all[q].([]int)
			if got[0] != q || got[1] != q*q {
				panic(fmt.Sprintf("rank %d: allgather[%d] = %v", id, q, got))
			}
		}
	})
	for i := 1; i < len(results); i++ {
		if len(results[i].PerProc) != P {
			t.Fatalf("process %d PerProc has %d entries", i, len(results[i].PerProc))
		}
		for r := 0; r < P; r++ {
			a, b := results[0].PerProc[r], results[i].PerProc[r]
			if a != b {
				t.Fatalf("rank %d stats differ across processes: %+v vs %+v", r, a, b)
			}
		}
	}
	// Each rank did 5 collectives (1 float allreduce, 2 int allreduces,
	// the barrier, the allgather); the internal stats round is not counted.
	if got := results[0].PerProc[0].Collectives; got != 5 {
		t.Fatalf("rank 0 Collectives = %d, want 5", got)
	}
}

// TestGroupSendRecv pushes point-to-point traffic across the process
// boundary in both directions, boxed and tagged out of order.
func TestGroupSendRecv(t *testing.T) {
	nodes := newGroup(t, 2)
	const P = 4
	runGroup(t, nodes, P, func(c pcomm.Comm) {
		id := c.ID()
		next, prev := (id+1)%P, (id+P-1)%P
		// Ring of floats: ranks 1↔2 cross the process boundary.
		c.Send(next, 1, float64(id)*1.25, 8)
		if got := c.Recv(prev, 1).(float64); got != float64(prev)*1.25 {
			panic(fmt.Sprintf("rank %d: ring got %v", id, got))
		}
		// Out-of-order tags across the boundary.
		if id == 0 {
			c.Send(3, 10, "tag10-first", 8)
			c.Send(3, 20, "tag20", 8)
			c.Send(3, 10, "tag10-second", 8)
		}
		if id == 3 {
			if got := c.Recv(0, 20).(string); got != "tag20" {
				panic("tag 20 mismatch: " + got)
			}
			if got := c.Recv(0, 10).(string); got != "tag10-first" {
				panic("tag 10 FIFO violated: " + got)
			}
			if got := c.Recv(0, 10).(string); got != "tag10-second" {
				panic("tag 10 FIFO violated: " + got)
			}
		}
		// Registered struct payload across the boundary.
		if id == 1 {
			c.Send(2, 5, pcomm.Stats{Flops: 42, MsgsSent: 7}, 16)
		}
		if id == 2 {
			st := c.Recv(1, 5).(pcomm.Stats)
			if st.Flops != 42 || st.MsgsSent != 7 {
				panic(fmt.Sprintf("struct payload mangled: %+v", st))
			}
		}
	})
}

// TestGroupRawSlices sends raw slices both co-located and across the
// boundary, checking exact float bits.
func TestGroupRawSlices(t *testing.T) {
	nodes := newGroup(t, 2)
	const P = 2
	vals := []float64{1.5, math.Copysign(0, -1), 5e-324, -math.MaxFloat64}
	runGroup(t, nodes, P, func(c pcomm.Comm) {
		if c.ID() == 0 {
			pcomm.SendSlice(c, 1, 3, append([]float64(nil), vals...))
			got := pcomm.RecvSlice[int](c, 1, 4)
			if len(got) != 3 || got[2] != 30 {
				panic(fmt.Sprintf("rank 0: got %v", got))
			}
		} else {
			got := pcomm.RecvSlice[float64](c, 0, 3)
			for i := range vals {
				if math.Float64bits(got[i]) != math.Float64bits(vals[i]) {
					panic(fmt.Sprintf("raw bits changed at %d: %x vs %x", i, math.Float64bits(got[i]), math.Float64bits(vals[i])))
				}
			}
			pcomm.SendSlice(c, 0, 4, []int{10, 20, 30})
		}
	})
}

// TestGroupPanicPropagation kills one rank on the second process and
// checks every process's Run fails: natively where the panic happened,
// as a RemoteAbort elsewhere.
func TestGroupPanicPropagation(t *testing.T) {
	nodes := newGroup(t, 2)
	const P = 4
	worlds := make([]*World, 2)
	for i, nd := range nodes {
		w, err := nd.NewWorld(P)
		if err != nil {
			t.Fatal(err)
		}
		w.SetWatchdog(30 * time.Second)
		worlds[i] = w
	}
	errs := make([]error, 2)
	var wg sync.WaitGroup
	wg.Add(2)
	for i, w := range worlds {
		go func(i int, w *World) {
			defer wg.Done()
			_, errs[i] = pcomm.Guard(w, func(c pcomm.Comm) {
				if c.ID() == 3 {
					panic("rank 3 exploded")
				}
				// Everyone else parks in a collective the dead rank never joins.
				c.Barrier()
			})
		}(i, w)
	}
	wg.Wait()
	for i, err := range errs {
		var re *pcomm.RunError
		if !errors.As(err, &re) {
			t.Fatalf("process %d: err = %v, want *pcomm.RunError", i, err)
		}
		if re.Backend != "netcomm" {
			t.Fatalf("process %d: backend %q", i, re.Backend)
		}
	}
	// Rank 3 lives on process 1: its process sees the native cause.
	if !strings.Contains(errs[1].Error(), "rank 3 exploded") {
		t.Fatalf("process 1 error lost the native cause: %v", errs[1])
	}
	// Process 0 sees a RemoteAbort carrying rank and message.
	var ra *RemoteAbort
	if !errors.As(errs[0], &ra) {
		t.Fatalf("process 0: err = %v, want RemoteAbort inside", errs[0])
	}
	if ra.Rank != 3 || !strings.Contains(ra.Msg, "rank 3 exploded") {
		t.Fatalf("process 0 RemoteAbort = %+v", ra)
	}
}

// TestGroupCollectiveMismatch checks the coordinator detects ranks
// entering different collectives and aborts the whole run.
func TestGroupCollectiveMismatch(t *testing.T) {
	nodes := newGroup(t, 2)
	const P = 2
	worlds := make([]*World, 2)
	for i, nd := range nodes {
		w, err := nd.NewWorld(P)
		if err != nil {
			t.Fatal(err)
		}
		w.SetWatchdog(30 * time.Second)
		worlds[i] = w
	}
	errs := make([]error, 2)
	var wg sync.WaitGroup
	wg.Add(2)
	for i, w := range worlds {
		go func(i int, w *World) {
			defer wg.Done()
			_, errs[i] = pcomm.Guard(w, func(c pcomm.Comm) {
				if c.ID() == 0 {
					c.Barrier()
				} else {
					c.AllReduceInt(1, pcomm.OpSum)
				}
			})
		}(i, w)
	}
	wg.Wait()
	for i, err := range errs {
		if err == nil || !strings.Contains(err.Error(), "mismatch") {
			t.Fatalf("process %d: err = %v, want a collective mismatch", i, err)
		}
	}
}

// TestGroupWatchdog checks a cross-process deadlock (a Recv nobody
// serves) fires the watchdog into a DeadlockError on the blocked
// process and aborts the peer.
func TestGroupWatchdog(t *testing.T) {
	nodes := newGroup(t, 2)
	const P = 2
	worlds := make([]*World, 2)
	for i, nd := range nodes {
		w, err := nd.NewWorld(P)
		if err != nil {
			t.Fatal(err)
		}
		w.SetWatchdog(500 * time.Millisecond)
		worlds[i] = w
	}
	errs := make([]error, 2)
	var wg sync.WaitGroup
	wg.Add(2)
	for i, w := range worlds {
		go func(i int, w *World) {
			defer wg.Done()
			_, errs[i] = pcomm.Guard(w, func(c pcomm.Comm) {
				if c.ID() == 1 {
					c.Recv(0, 99) // never sent
				}
			})
		}(i, w)
	}
	wg.Wait()
	var dl *DeadlockError
	if !errors.As(errs[1], &dl) {
		t.Fatalf("blocked process err = %v, want DeadlockError", errs[1])
	}
	if !strings.Contains(dl.Dump, "Recv(src=0, tag=99)") {
		t.Fatalf("deadlock dump does not name the blocked Recv:\n%s", dl.Dump)
	}
	if errs[0] == nil {
		t.Fatal("peer process run survived a group deadlock")
	}
}

// TestGroupZeroRankProcess runs a 1-rank world over 2 processes: the
// second process hosts no ranks but still gets the identical Result.
func TestGroupZeroRankProcess(t *testing.T) {
	nodes := newGroup(t, 2)
	results := runGroup(t, nodes, 1, func(c pcomm.Comm) {
		if c.ID() != 0 {
			panic("unexpected rank")
		}
		c.Work(123)
		if v := c.AllReduceFloat64(2.5, pcomm.OpSum); v != 2.5 {
			panic("single-rank allreduce broken")
		}
	})
	for i, res := range results {
		if len(res.PerProc) != 1 || res.PerProc[0].Flops != 123 {
			t.Fatalf("process %d result = %+v", i, res)
		}
	}
}

// TestGroupSequentialWorlds runs several generations over one group,
// checking generation isolation (the registry reuses nodes the same
// way).
func TestGroupSequentialWorlds(t *testing.T) {
	nodes := newGroup(t, 2)
	for gen := 0; gen < 3; gen++ {
		p := 2 + gen // vary P across generations
		runGroup(t, nodes, p, func(c pcomm.Comm) {
			want := p * (p - 1) / 2
			if got := c.AllReduceInt(c.ID(), pcomm.OpSum); got != want {
				panic(fmt.Sprintf("gen world P=%d: sum = %d, want %d", p, got, want))
			}
		})
	}
}

// TestGroupDropFaultReconnect arms a drop fault on a cross-boundary
// sender: the connection is severed once (the receiver sees a benign
// half-close), the next send redials, and the lost message surfaces as
// a watchdog deadlock whose dump names the armed transport.
func TestGroupDropFaultReconnect(t *testing.T) {
	nodes := newGroup(t, 2)
	const P = 2
	worlds := make([]*World, 2)
	for i, nd := range nodes {
		w, err := nd.NewWorld(P)
		if err != nil {
			t.Fatal(err)
		}
		worlds[i] = w
	}
	errs := make([]error, 2)
	var wg sync.WaitGroup
	wg.Add(2)
	for i, w := range worlds {
		go func(i int, w *World) {
			defer wg.Done()
			_, errs[i] = pcomm.Guard(w, func(c pcomm.Comm) {
				// Rank 0 (process 0) sends to rank 1 (process 1); the second
				// send is dropped by severing the connection, the third
				// proves the redial works.
				if c.ID() == 0 {
					td := c.(pcomm.TransportDropper)
					c.Send(1, 1, 1.0, 8)
					desc := td.DropTransport(1) // what the fault layer does for the dropped send
					if !strings.Contains(desc, "netcomm") || !strings.Contains(desc, "rank 0→1") {
						panic("transport description unhelpful: " + desc)
					}
					c.Send(1, 3, 3.0, 8) // redial path
				} else {
					if v := c.Recv(0, 1).(float64); v != 1.0 {
						panic("first message mangled")
					}
					if v := c.Recv(0, 3).(float64); v != 3.0 {
						panic("post-drop message mangled")
					}
				}
				c.Barrier()
			})
		}(i, w)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("process %d: %v", i, err)
		}
	}
}

// TestSpawnSmoke is the exec-based two-OS-process end-to-end test: the
// parent re-executes this test binary (spawn mode), the child joins the
// group via the explicit spec in its environment, and one world spans
// both processes. Inside the child this same test runs again and takes
// the join path, which is exactly the SPMD-at-program-granularity
// contract.
func TestSpawnSmoke(t *testing.T) {
	spec := os.Getenv(BackendEnvVar)
	if !IsSpec(spec) {
		spec = "netcomm:spawn=2"
	}
	w, err := WorldFor(spec, 3)
	if err != nil {
		t.Fatalf("WorldFor(%q): %v", spec, err)
	}
	w.SetWatchdog(90 * time.Second)
	res, err := pcomm.Guard(w, func(c pcomm.Comm) {
		id := c.ID()
		if got := c.AllReduceInt(id+1, pcomm.OpSum); got != 6 {
			panic(fmt.Sprintf("spawned world sum = %d", got))
		}
		next := (id + 1) % 3
		c.Send(next, 7, float64(id)*0.125, 8)
		prev := (id + 2) % 3
		if got := c.Recv(prev, 7).(float64); got != float64(prev)*0.125 {
			panic(fmt.Sprintf("spawned ring got %v", got))
		}
	})
	if err != nil {
		t.Fatalf("spawned run: %v", err)
	}
	if len(res.PerProc) != 3 {
		t.Fatalf("PerProc has %d entries", len(res.PerProc))
	}
	for r := 0; r < 3; r++ {
		if res.PerProc[r].Collectives != 1 || res.PerProc[r].MsgsSent != 1 {
			t.Fatalf("rank %d stats = %+v", r, res.PerProc[r])
		}
	}
}
