package netcomm

import (
	"fmt"
	"io"
	"net"
	"runtime/debug"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/pcomm"
	"repro/internal/trace"
)

// mailboxCap matches realcomm: the buffered-channel fast path depth of
// one (src, dst) mailbox.
const mailboxCap = 256

// message is one in-flight payload, boxed or a raw slice header. Remote
// payloads are decoded by the connection reader before delivery, so the
// consumer sees exactly what realcomm would hand it.
type message struct {
	tag     int
	payload any
	raw     pcomm.RawSlice
	isRaw   bool
}

// mailbox is realcomm's never-blocking (src, dst) queue: a buffered
// channel fast path with a mutex-guarded overflow, single producer
// (the co-located sender goroutine or the connection reader), single
// consumer (the destination rank).
type mailbox struct {
	ch      chan message
	wake    chan struct{}
	spilled atomic.Bool
	mu      sync.Mutex
	over    []message
}

func (b *mailbox) put(m message) {
	if !b.spilled.Load() {
		select {
		case b.ch <- m:
			return
		default:
		}
	}
	b.mu.Lock()
	b.spilled.Store(true)
	b.over = append(b.over, m)
	b.mu.Unlock()
	select {
	case b.wake <- struct{}{}:
	default:
	}
}

func (b *mailbox) drainInto(stash *[]message) {
	for {
		select {
		case m := <-b.ch:
			*stash = append(*stash, m)
			continue
		default:
		}
		break
	}
	if b.spilled.Load() {
		b.mu.Lock()
		*stash = append(*stash, b.over...)
		b.over = b.over[:0]
		b.spilled.Store(false)
		b.mu.Unlock()
	}
}

// DeadlockError is the watchdog failure, mirroring the other backends.
type DeadlockError struct {
	Timeout time.Duration
	Dump    string
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("netcomm: watchdog: run still blocked after %v\n%s", e.Timeout, e.Dump)
}

// RemoteAbort is the failure cause a World panics with when the run was
// killed by a rank hosted on another process: the original panic value
// cannot cross the process boundary, so its rendering travels instead.
type RemoteAbort struct {
	Rank int // root-cause rank, -1 when unknown
	Msg  string
}

func (e *RemoteAbort) Error() string {
	if e.Rank < 0 {
		return fmt.Sprintf("netcomm: run aborted by a peer process: %s", e.Msg)
	}
	return fmt.Sprintf("netcomm: run aborted by rank %d on a peer process: %s", e.Rank, e.Msg)
}

// procAbort wraps the root cause so secondary ranks woken by a failure
// do not overwrite it when they unwind.
type procAbort struct{ cause any }

// resultEntry is one broadcast round result with a countdown of local
// ranks still to consume it.
type resultEntry struct {
	r       roundResult
	readers int
}

// World is one P-rank netcomm run: the local block of ranks executes
// here, everything else is reached over the node's sockets. Like the
// other backends a World is single-use.
type World struct {
	node   *Node
	gen    uint64
	p      int
	lo, hi int // local rank block [lo, hi)

	boxes []mailbox // index (dst-lo)*p + src

	rmu     sync.Mutex
	results map[uint64]*resultEntry
	rwait   map[uint64]chan struct{}

	failMu    sync.Mutex
	failCause any
	failRank  int
	failStack string
	failDump  string
	failCh    chan struct{}

	doneOnce sync.Once
	doneCh   chan struct{}
	result   pcomm.Result

	connMu sync.Mutex
	conns  map[io.Closer]struct{}

	completed atomic.Bool

	mu       sync.Mutex
	started  bool
	watchdog time.Duration
	rec      *trace.Recorder

	start time.Time
	procs []*Proc
}

func newWorld(n *Node, gen uint64, p int) *World {
	lo, hi := rankRange(p, n.n, n.self)
	w := &World{
		node:    n,
		gen:     gen,
		p:       p,
		lo:      lo,
		hi:      hi,
		boxes:   make([]mailbox, (hi-lo)*p),
		results: make(map[uint64]*resultEntry),
		rwait:   make(map[uint64]chan struct{}),
		failCh:  make(chan struct{}),
		doneCh:  make(chan struct{}),
		conns:   make(map[io.Closer]struct{}),
	}
	for i := range w.boxes {
		w.boxes[i].ch = make(chan message, mailboxCap)
		w.boxes[i].wake = make(chan struct{}, 1)
	}
	return w
}

// NumProcs returns P — the world size, not this process's share of it.
func (w *World) NumProcs() int { return w.p }

// SetWatchdog arms a per-Run deadlock timeout; must precede Run.
func (w *World) SetWatchdog(d time.Duration) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.started {
		panic("netcomm: SetWatchdog must be called before Run")
	}
	w.watchdog = d
}

// SetRecorder attaches a trace recorder covering the world's ranks; only
// locally hosted ranks emit events. Must precede Run.
func (w *World) SetRecorder(r *trace.Recorder) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.started {
		panic("netcomm: SetRecorder after Run")
	}
	if r != nil && r.NumProcs() < w.p {
		panic(fmt.Sprintf("netcomm: recorder covers %d processors, world has %d", r.NumProcs(), w.p))
	}
	w.rec = r
}

// fail records a failure with no owning rank (watchdog, transport).
func (w *World) fail(cause any) { w.failLocal(-1, cause, "") }

// failLocal records a locally originated failure and tells the group.
func (w *World) failLocal(rank int, cause any, stack string) {
	if w.failProc(rank, cause, stack) {
		w.node.sendAbort(abortMsg{gen: w.gen, rank: rank, msg: fmt.Sprint(cause)})
		w.closeConns()
	}
}

// poison records a remotely originated failure (abort broadcast, node
// death); unlike failLocal it does not re-broadcast.
func (w *World) poison(a abortMsg) {
	if w.failProc(-1, &RemoteAbort{Rank: a.rank, Msg: a.msg}, "") {
		w.closeConns()
	}
}

// failProc stores the first failure cause, snapshots the blocked-state
// dump and poisons failCh. Reports whether this call won the race.
func (w *World) failProc(rank int, cause any, stack string) bool {
	w.failMu.Lock()
	defer w.failMu.Unlock()
	if w.failCause != nil {
		return false
	}
	w.failCause = cause
	w.failRank = rank
	w.failStack = stack
	w.failDump = w.dump()
	if stack != "" {
		w.failDump += fmt.Sprintf("\nroot-cause stack (rank %d):\n%s", rank, stack)
	}
	close(w.failCh)
	return true
}

func (w *World) failed() bool {
	w.failMu.Lock()
	defer w.failMu.Unlock()
	return w.failCause != nil
}

// abort panics with the run's root failure cause; called by ranks woken
// out of a blocking operation by failCh.
func (p *Proc) abort() {
	p.w.failMu.Lock()
	cause := p.w.failCause
	p.w.failMu.Unlock()
	panic(procAbort{cause})
}

// trackConn registers a connection for teardown; if the world already
// failed the connection is severed immediately.
func (w *World) trackConn(c io.Closer) {
	w.connMu.Lock()
	w.conns[c] = struct{}{}
	w.connMu.Unlock()
	select {
	case <-w.failCh:
		if err := c.Close(); err != nil {
			_ = err // the world is failing; this close only wakes blocked I/O
		}
	default:
	}
}

func (w *World) untrackConn(c io.Closer) {
	w.connMu.Lock()
	delete(w.conns, c)
	w.connMu.Unlock()
}

// closeConns severs every live connection of this world, waking any
// rank blocked in socket I/O.
func (w *World) closeConns() {
	w.connMu.Lock()
	conns := make([]io.Closer, 0, len(w.conns))
	for c := range w.conns {
		conns = append(conns, c)
	}
	w.connMu.Unlock()
	for _, c := range conns {
		if err := c.Close(); err != nil {
			continue // already closed; teardown is idempotent
		}
	}
}

// startReader adopts a handshaken inbound data connection and pumps its
// frames into the (src, dst) mailbox. A clean EOF at a frame boundary is
// a benign half-close — the sender may redial (fault injection cuts
// connections exactly this way) — while a torn frame or decode error
// fails the run.
func (w *World) startReader(c net.Conn, src, dst int) {
	if dst < w.lo || dst >= w.hi || src < 0 || src >= w.p {
		w.failLocal(-1, fmt.Errorf("netcomm: SPMD violation: inbound data connection for rank %d→%d, this process hosts [%d,%d) of P=%d",
			src, dst, w.lo, w.hi, w.p), "")
		if err := c.Close(); err != nil {
			_ = err // the run is failing; nothing more to learn from this close
		}
		return
	}
	w.trackConn(c)
	box := &w.boxes[(dst-w.lo)*w.p+src]
	go func() {
		defer w.untrackConn(c)
		for {
			typ, body, err := readFrame(c)
			if err != nil {
				if err == io.EOF || w.completed.Load() {
					if cerr := c.Close(); cerr != nil {
						_ = cerr // half-closed by the peer; local close is best-effort
					}
					return
				}
				w.failLocal(-1, fmt.Errorf("netcomm: data connection rank %d→%d: %w", src, dst, err), "")
				return
			}
			if typ != fData {
				w.failLocal(-1, fmt.Errorf("netcomm: unexpected frame type %d on data connection rank %d→%d", typ, src, dst), "")
				return
			}
			tag, pay, err := decodeDataFrame(body)
			if err != nil {
				w.failLocal(-1, err, "")
				return
			}
			v, raw, isRaw, err := decodePayload(pay)
			if err != nil {
				w.failLocal(-1, fmt.Errorf("netcomm: message rank %d→%d tag %d: %w", src, dst, tag, err), "")
				return
			}
			box.put(message{tag: tag, payload: v, raw: raw, isRaw: isRaw})
		}
	}()
}

// postResult delivers a round-result broadcast to the local ranks.
func (w *World) postResult(r roundResult) {
	if w.hi == w.lo {
		return // no local ranks consume results on a zero-rank process
	}
	w.rmu.Lock()
	if _, dup := w.results[r.round]; !dup {
		w.results[r.round] = &resultEntry{r: r, readers: w.hi - w.lo}
	}
	if ch, ok := w.rwait[r.round]; ok {
		delete(w.rwait, r.round)
		close(ch)
	}
	w.rmu.Unlock()
}

// awaitResult blocks rank p until round's broadcast arrives.
func (w *World) awaitResult(p *Proc, round uint64, desc string) roundResult {
	w.rmu.Lock()
	for {
		if e, ok := w.results[round]; ok {
			r := e.r
			e.readers--
			if e.readers <= 0 {
				delete(w.results, round)
			}
			w.rmu.Unlock()
			return r
		}
		ch, ok := w.rwait[round]
		if !ok {
			ch = make(chan struct{})
			w.rwait[round] = ch
		}
		w.rmu.Unlock()
		p.blocked.Store(fmt.Sprintf("waiting in collective %q (round %d)", desc, round))
		select {
		case <-ch:
			p.blocked.Store("")
		case <-w.failCh:
			p.blocked.Store("")
			p.abort()
		}
		w.rmu.Lock()
	}
}

// postDone installs the coordinator's run Result exactly once.
func (w *World) postDone(res pcomm.Result) {
	w.doneOnce.Do(func() {
		w.result = res
		close(w.doneCh)
	})
}

// Run executes f on this process's block of ranks and rendezvouses with
// the rest of the group; it returns the same Result on every process.
// Panic propagation and single-use semantics match the other backends.
func (w *World) Run(f func(pcomm.Comm)) pcomm.Result {
	w.mu.Lock()
	if w.started {
		w.mu.Unlock()
		panic("netcomm: Run called twice on the same World; a World is single-use — create a new World per run")
	}
	w.started = true
	rec := w.rec
	wd := w.watchdog
	w.mu.Unlock()

	nLocal := w.hi - w.lo
	w.procs = make([]*Proc, nLocal)
	for i := 0; i < nLocal; i++ {
		id := w.lo + i
		w.procs[i] = &Proc{id: id, w: w, tr: rec.Proc(id), stash: make([][]message, w.p), conns: make(map[int]net.Conn)}
	}
	w.start = time.Now()

	stopWatchdog := func() {}
	if wd > 0 {
		done := make(chan struct{})
		go func() {
			t := time.NewTimer(wd)
			defer t.Stop()
			select {
			case <-done:
			case <-t.C:
				w.failLocal(-1, &DeadlockError{Timeout: wd, Dump: w.dump()}, "")
			}
		}()
		stopWatchdog = func() { close(done) }
	}
	defer stopWatchdog()

	var wg sync.WaitGroup
	wg.Add(nLocal)
	for i := 0; i < nLocal; i++ {
		go func(p *Proc) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					if ab, secondary := r.(procAbort); secondary {
						w.failProc(-1, ab, "")
						return
					}
					w.failLocal(p.id, r, string(debug.Stack()))
				}
			}()
			f(p)
			p.stats.Time = time.Since(w.start).Seconds()
			p.depositStats()
		}(w.procs[i])
	}
	wg.Wait()

	if !w.failed() {
		// Every local rank deposited its stats; wait for the
		// coordinator's completion broadcast (still under the watchdog).
		select {
		case <-w.doneCh:
		case <-w.failCh:
		}
	}

	w.completed.Store(true)
	w.closeConns()
	w.node.finishWorld(w.gen)

	w.failMu.Lock()
	failed := w.failCause
	rank, stack, dump := w.failRank, w.failStack, w.failDump
	w.failMu.Unlock()
	if failed != nil {
		if ab, ok := failed.(procAbort); ok {
			failed = ab.cause
		}
		panic(&pcomm.RunError{Backend: "netcomm", Rank: rank, Cause: failed, Stack: stack, Dump: dump})
	}
	return w.result
}

// dump renders the local ranks' blocked states; remote ranks are out of
// reach, which the report says explicitly.
func (w *World) dump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "P=%d ranks; process %d of %d hosts ranks [%d,%d):\n", w.p, w.node.self, w.node.n, w.lo, w.hi)
	for _, p := range w.procs {
		if p == nil {
			continue
		}
		state, _ := p.blocked.Load().(string)
		if state == "" {
			state = "not blocked in the communicator (computing or finished)"
		}
		fmt.Fprintf(&b, "  rank %d: %s\n", p.id, state)
	}
	if w.node.n > 1 {
		fmt.Fprintf(&b, "  (ranks on the other %d processes are not visible from here)\n", w.node.n-1)
	}
	return strings.TrimRight(b.String(), "\n")
}

// Proc is one locally hosted rank's communicator handle, confined to
// the goroutine Run handed it to.
type Proc struct {
	id    int
	w     *World
	tr    *trace.ProcTracer
	stats pcomm.Stats
	round uint64
	// stash holds messages drained while looking for another tag,
	// indexed by src. Owned by this rank's goroutine.
	stash   [][]message
	blocked atomic.Value
	// conns are this rank's dialed outbound data connections by dst,
	// touched only by the rank's own goroutine (DropTransport included:
	// the fault injector runs inside the rank).
	conns map[int]net.Conn
}

// ID returns this rank.
func (p *Proc) ID() int { return p.id }

// P returns the world size.
func (p *Proc) P() int { return p.w.p }

// Time returns wall-clock seconds since Run started.
func (p *Proc) Time() float64 { return time.Since(p.w.start).Seconds() }

// Work accounts flops; wall time is spent, not modelled.
func (p *Proc) Work(flops float64) { p.stats.Flops += flops }

// Sleep is a no-op, as in realcomm.
func (p *Proc) Sleep(dt float64) {}

// Stats returns a snapshot of the rank's counters.
func (p *Proc) Stats() pcomm.Stats {
	s := p.stats
	s.Time = p.Time()
	return s
}

// Tracer returns the rank's trace sink, nil when tracing is off.
func (p *Proc) Tracer() *trace.ProcTracer { return p.tr }

// Send delivers payload to dst under tag: a mailbox put for co-located
// ranks, a data frame otherwise. The traffic counters use the caller's
// byte accounting, identical across backends.
func (p *Proc) Send(dst, tag int, payload any, bytes int) {
	p.send(dst, tag, message{tag: tag, payload: payload}, bytes)
}

// SendRaw implements the pcomm.RawComm fast path. Co-located ranks get
// the header zero-copy; remote ranks get the element bytes on the wire.
func (p *Proc) SendRaw(dst, tag int, h pcomm.RawSlice, bytes int) {
	p.send(dst, tag, message{tag: tag, raw: h, isRaw: true}, bytes)
}

func (p *Proc) send(dst, tag int, m message, bytes int) {
	w := p.w
	if dst < 0 || dst >= w.p {
		panic(fmt.Sprintf("netcomm: Send to invalid rank %d", dst))
	}
	p.stats.MsgsSent++
	p.stats.BytesSent += int64(bytes)
	if p.tr != nil {
		p.tr.Instant("machine", "send", p.Time(),
			trace.I("dst", dst), trace.I("tag", tag), trace.I("bytes", bytes))
	}
	if dst >= w.lo && dst < w.hi {
		w.boxes[(dst-w.lo)*w.p+p.id].put(m)
		return
	}
	var pay payload
	if m.isRaw {
		pay = encodeRawPayload(m.raw)
	} else {
		var err error
		pay, err = encodePayload(m.payload)
		if err != nil {
			panic(err)
		}
	}
	c, err := p.dataConn(dst)
	if err == nil {
		err = writeFrame(c, fData, encodeDataFrame(tag, pay))
		if err != nil {
			// The connection died under us (peer gone, or a fault cut it).
			// Drop it so a retry would redial, then unwind.
			delete(p.conns, dst)
			p.w.untrackConn(c)
			if cerr := c.Close(); cerr != nil {
				_ = cerr // already severed; the write error is the diagnosis
			}
		}
	}
	if err != nil {
		if w.failed() {
			p.abort()
		}
		panic(fmt.Errorf("netcomm: sending rank %d→%d: %w", p.id, dst, err))
	}
}

// dataConn returns the rank's outbound connection to dst's process,
// dialing and handshaking on first use (and again after a drop).
func (p *Proc) dataConn(dst int) (net.Conn, error) {
	if c, ok := p.conns[dst]; ok {
		return c, nil
	}
	w := p.w
	addr := w.node.peers[rankProc(w.p, w.node.n, dst)]
	c, err := net.DialTimeout(network(addr), addr, handshakeTimeout)
	if err != nil {
		return nil, fmt.Errorf("netcomm: dialing %s for rank %d→%d: %w", addr, p.id, dst, err)
	}
	if err := handshake(c, hello{kind: connData, gen: w.gen, a: uint32(p.id), b: uint32(dst), c: uint32(w.p)}); err != nil {
		if cerr := c.Close(); cerr != nil {
			_ = cerr // the handshake error is the diagnosis
		}
		return nil, fmt.Errorf("netcomm: data handshake rank %d→%d: %w", p.id, dst, err)
	}
	w.trackConn(c)
	p.conns[dst] = c
	return c, nil
}

// DropTransport implements pcomm.TransportDropper for the fault layer:
// it severs this rank's live connection toward dst once and describes
// the transport it cut. The next send redials — the reconnect path —
// while the message the fault swallowed stays lost, so the receiver
// either deadlocks into the watchdog or the run fails loudly.
func (p *Proc) DropTransport(dst int) string {
	w := p.w
	if dst < 0 || dst >= w.p {
		return fmt.Sprintf("netcomm: no transport toward invalid rank %d", dst)
	}
	if dst >= w.lo && dst < w.hi {
		return fmt.Sprintf("in-process mailbox rank %d→%d (co-located, no socket to cut)", p.id, dst)
	}
	c, err := p.dataConn(dst)
	if err != nil {
		return fmt.Sprintf("netcomm connection rank %d→%d (dial failed while arming the drop: %v)", p.id, dst, err)
	}
	desc := fmt.Sprintf("netcomm %s connection %s→%s (rank %d→%d), severed once",
		c.LocalAddr().Network(), c.LocalAddr(), c.RemoteAddr(), p.id, dst)
	delete(p.conns, dst)
	w.untrackConn(c)
	if cerr := c.Close(); cerr != nil {
		desc += fmt.Sprintf(" (close: %v)", cerr)
	}
	return desc
}

// Recv blocks until a message with the tag from src arrives.
func (p *Proc) Recv(src, tag int) any {
	t0 := p.Time()
	m := p.recvMessage(src, tag)
	if m.isRaw {
		panic(fmt.Sprintf("netcomm: Recv(src=%d, tag=%d) matched a raw slice message; receive it with pcomm.RecvSlice", src, tag))
	}
	if p.tr != nil {
		p.tr.Span("machine", "recv", t0, p.Time(),
			trace.I("src", src), trace.I("tag", tag))
	}
	return m.payload
}

// RecvRaw implements the pcomm.RawComm fast path.
func (p *Proc) RecvRaw(src, tag int) (pcomm.RawSlice, any, bool) {
	t0 := p.Time()
	m := p.recvMessage(src, tag)
	if p.tr != nil {
		p.tr.Span("machine", "recv", t0, p.Time(),
			trace.I("src", src), trace.I("tag", tag))
	}
	return m.raw, m.payload, m.isRaw
}

func (p *Proc) recvMessage(src, tag int) message {
	w := p.w
	if src < 0 || src >= w.p {
		panic(fmt.Sprintf("netcomm: Recv from invalid rank %d", src))
	}
	stash := &p.stash[src]
	if m, ok := takeByTag(stash, tag); ok {
		return m
	}
	b := &w.boxes[(p.id-w.lo)*w.p+src]
	for {
		n := len(*stash)
		b.drainInto(stash)
		if m, ok := takeByTagFrom(stash, tag, n); ok {
			return m
		}
		p.blocked.Store(fmt.Sprintf("blocked in Recv(src=%d, tag=%d)", src, tag))
		select {
		case m := <-b.ch:
			p.blocked.Store("")
			if m.tag == tag {
				return m
			}
			*stash = append(*stash, m)
		case <-b.wake:
			p.blocked.Store("")
		case <-w.failCh:
			p.blocked.Store("")
			p.abort()
		}
	}
}

func takeByTag(stash *[]message, tag int) (message, bool) {
	return takeByTagFrom(stash, tag, 0)
}

func takeByTagFrom(stash *[]message, tag, from int) (message, bool) {
	s := *stash
	for i := from; i < len(s); i++ {
		if s[i].tag == tag {
			m := s[i]
			*stash = append(s[:i], s[i+1:]...)
			return m, true
		}
	}
	return message{}, false
}

// collect is the rendezvous underlying every collective: deposit to the
// coordinator, await the rank-ordered broadcast, decode locally. The
// fold over the returned values runs on every rank in rank order —
// realcomm's exact loop — so network transport changes nothing bitwise.
func (p *Proc) collect(op string, val any) []any {
	w := p.w
	p.stats.Collectives++
	p.round++
	pay, err := encodePayload(val)
	if err != nil {
		panic(err)
	}
	p.deposit(deposit{gen: w.gen, round: p.round, rank: p.id, p: w.p, op: op, pay: pay})
	r := w.awaitResult(p, p.round, op)
	if r.op != op {
		panic(fmt.Sprintf("netcomm: collective mismatch: %q vs %q", r.op, op))
	}
	vals := make([]any, w.p)
	for i := range r.pays {
		v, _, isRaw, err := decodePayload(r.pays[i])
		if err != nil {
			panic(fmt.Errorf("netcomm: decoding collective %q contribution of rank %d: %w", op, i, err))
		}
		if isRaw {
			panic(fmt.Sprintf("netcomm: collective %q contribution of rank %d is a raw slice", op, i))
		}
		vals[i] = v
	}
	return vals
}

func (p *Proc) deposit(d deposit) {
	if err := p.w.node.deposit(d); err != nil {
		if p.w.failed() {
			p.abort()
		}
		panic(fmt.Errorf("netcomm: depositing into collective %q: %w", d.op, err))
	}
}

// depositStats is each rank's final act: contribute the run statistics
// to the reserved stats round so the coordinator can assemble the
// world's Result. Collectives is deliberately not incremented — the
// round is bookkeeping, not part of the program.
func (p *Proc) depositStats() {
	pay, err := encodePayload(p.stats)
	if err != nil {
		panic(err)
	}
	p.deposit(deposit{gen: p.w.gen, round: p.round + 1, rank: p.id, p: p.w.p, op: opStats, pay: pay})
}

// Barrier synchronizes all ranks.
func (p *Proc) Barrier() {
	t0 := p.Time()
	p.collect("barrier", nil)
	if p.tr != nil {
		p.tr.Span("machine", "barrier", t0, p.Time(), trace.I("bytes", 0))
	}
}

// AllReduceFloat64 combines one float64 per rank with op, folding in
// rank order — bitwise identical to the modelled backend.
func (p *Proc) AllReduceFloat64(v float64, op pcomm.ReduceOp) float64 {
	t0 := p.Time()
	vals := p.collect("allreduce_f64", v)
	if p.tr != nil {
		p.tr.Span("machine", "allreduce_f64", t0, p.Time(), trace.I("bytes", 8))
	}
	out := vals[0].(float64)
	for _, a := range vals[1:] {
		x := a.(float64)
		switch op {
		case pcomm.OpSum:
			out += x
		case pcomm.OpMax:
			if x > out {
				out = x
			}
		case pcomm.OpMin:
			if x < out {
				out = x
			}
		}
	}
	return out
}

// AllReduceInt combines one int per rank with op.
func (p *Proc) AllReduceInt(v int, op pcomm.ReduceOp) int {
	t0 := p.Time()
	vals := p.collect("allreduce_int", v)
	if p.tr != nil {
		p.tr.Span("machine", "allreduce_int", t0, p.Time(), trace.I("bytes", 8))
	}
	out := vals[0].(int)
	for _, a := range vals[1:] {
		x := a.(int)
		switch op {
		case pcomm.OpSum:
			out += x
		case pcomm.OpMax:
			if x > out {
				out = x
			}
		case pcomm.OpMin:
			if x < out {
				out = x
			}
		}
	}
	return out
}

// AllGather deposits one value per rank and returns the slice indexed
// by rank.
func (p *Proc) AllGather(v any, bytes int) []any {
	t0 := p.Time()
	vals := p.collect("allgather", v)
	if p.tr != nil {
		p.tr.Span("machine", "allgather", t0, p.Time(), trace.I("bytes", bytes))
	}
	return vals
}

var _ pcomm.Comm = (*Proc)(nil)
var _ pcomm.RawComm = (*Proc)(nil)
var _ pcomm.TransportDropper = (*Proc)(nil)
var _ pcomm.World = (*World)(nil)
