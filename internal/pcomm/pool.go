package pcomm

import (
	"fmt"
	"sync"
)

// SlicePool is a mutex-guarded free list of message buffers. Like the
// core scratch pool (DESIGN.md §13) it is a free list rather than a
// sync.Pool on purpose: buffers survive GC so steady-state exchanges
// stay allocation-free, and tests can reason about exactly which buffers
// exist. The intended protocol is ownership transfer: the sender Gets a
// buffer, fills it, and SendSlices it — relinquishing it — and the
// receiver copies the payload out with RecvSliceInto, which returns the
// transport buffer to the pool. Both in-process backends deliver the
// sender's buffer zero-copy, so the protocol must only be used where the
// sender genuinely lets go (the sendalias analyzer's rule, made load-
// bearing).
type SlicePool[T any] struct {
	mu   sync.Mutex
	free [][]T
}

// maxPooledSlices caps a pool's free list; beyond it, Put drops the
// buffer for the GC. The cap bounds pinned memory after a burst — one
// exchange needs at most one buffer in flight per (neighbor, direction).
const maxPooledSlices = 64

// Get returns a length-n buffer: a pooled one when any has the capacity,
// a fresh allocation otherwise. Contents are unspecified — callers
// overwrite every element.
//
//pilut:hotpath
func (p *SlicePool[T]) Get(n int) []T {
	p.mu.Lock()
	for k := len(p.free) - 1; k >= 0; k-- {
		if cap(p.free[k]) >= n {
			b := p.free[k]
			last := len(p.free) - 1
			p.free[k] = p.free[last]
			p.free[last] = nil
			p.free = p.free[:last]
			p.mu.Unlock()
			return b[:n]
		}
	}
	p.mu.Unlock()
	return make([]T, n) //pilutlint:ok hotalloc cold path: pool empty or all buffers too small; steady state always hits the list
}

// Put returns a buffer to the pool. Zero-capacity buffers are dropped
// (nothing to reuse), as is everything past the pool cap.
//
//pilut:hotpath
func (p *SlicePool[T]) Put(b []T) {
	if cap(b) == 0 {
		return
	}
	p.mu.Lock()
	if len(p.free) < maxPooledSlices {
		p.free = append(p.free, b[:0]) //pilutlint:ok hotalloc free list grows to the pool cap once, then appends reuse its backing array
	}
	p.mu.Unlock()
}

// Process-wide buffer pools for the common message element types. Shared
// across worlds deliberately: ownership transfer moves a buffer from a
// sending rank to a receiving rank, and a single pool is where both ends
// meet regardless of which world they belong to.
var (
	// Floats pools []float64 message buffers (ghost exchanges, vectors).
	Floats SlicePool[float64]
	// Ints pools []int message buffers (index exchanges).
	Ints SlicePool[int]
)

// RecvSliceInto is the borrowed-buffer receive path: it receives a []T
// sent by SendSlice (or a plain Send of a []T) from src under tag,
// copies the payload into dst, recycles the transport buffer into pool
// (when non-nil), and returns the payload length. dst must be at least
// payload-sized. Use only under the ownership-transfer protocol — the
// recycled buffer is the *sender's* slice on the in-process backends, so
// the sender must have obtained it from the same pool and let it go.
//
//pilut:hotpath
func RecvSliceInto[T any](c Comm, src, tag int, dst []T, pool *SlicePool[T]) int {
	var payload []T
	if rc, ok := c.(RawComm); ok {
		h, boxed, isRaw := rc.RecvRaw(src, tag)
		if isRaw {
			payload = sliceOf[T](h)
		} else if boxed != nil {
			payload = boxed.([]T)
		}
	} else if v := c.Recv(src, tag); v != nil {
		payload = v.([]T)
	}
	if len(payload) > len(dst) {
		panic(fmt.Sprintf("pcomm: RecvSliceInto: payload length %d exceeds destination length %d", len(payload), len(dst)))
	}
	copy(dst, payload)
	if pool != nil {
		pool.Put(payload)
	}
	return len(payload)
}
