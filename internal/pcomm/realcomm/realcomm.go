// Package realcomm is the wall-clock shared-memory pcomm backend: P
// goroutines exchanging messages at hardware speed, with no cost model
// and no global lock.
//
// Point-to-point traffic flows through per-(src, dst) mailboxes — a
// buffered channel fast path with a mutex-guarded overflow queue so
// sends never block (the machine's Send is asynchronous and unbounded) —
// and only the one processor that can consume a message is ever woken.
// Payload slices pass by reference (zero-copy); through the
// pcomm.RawComm fast path slice headers move without boxing into
// interface values. Collectives rendezvous on a sense-reversing barrier
// and combine contributions in processor-rank order, which makes every
// floating-point result bitwise identical to the modelled backend (a
// tree reduction would be faster asymptotically but would change the
// rounding order and break the Dong & Cooperman bit-compatibility
// property the cross-backend tests assert).
package realcomm

import (
	"fmt"
	"runtime/debug"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/pcomm"
	"repro/internal/trace"
)

// mailboxCap is the buffered-channel fast path depth of one mailbox.
// The SPMD codes in this repo keep at most a handful of messages in
// flight per processor pair, so the overflow queue is cold.
const mailboxCap = 256

// message is one in-flight payload: boxed (payload) or an unboxed slice
// header (raw) from the SendRaw fast path.
type message struct {
	tag     int
	payload any
	raw     pcomm.RawSlice
	isRaw   bool
}

// mailbox is the (src, dst) channel between one producer goroutine and
// one consumer goroutine. put never blocks: when the channel is full it
// spills to the overflow queue and pings wake so a parked consumer
// re-checks. FIFO holds because the producer stops using the channel
// while spilled is set, and the consumer always drains the channel
// before the overflow.
type mailbox struct {
	ch      chan message
	wake    chan struct{} // cap 1; pinged after an overflow append
	spilled atomic.Bool
	mu      sync.Mutex
	// over is the pooled spill buffer, held by pointer so returning it to
	// overflowPool re-uses the same header (no boxing on Put). nil when
	// nothing has spilled since the last drain.
	over *[]message
}

// overflowPool recycles spill buffers across mailboxes and worlds. A
// sync.Pool, not a free list (DESIGN.md §13): spills are bursty — a
// phase that outruns the channel depth fills a buffer once, the consumer
// drains it, and the buffer may not be needed again for the rest of the
// run — so letting the GC reclaim idle buffers is the right policy, and
// (unlike the scratch pools) nothing here needs deterministic
// enumeration. Items are *[]message so Put never boxes a fresh header.
var overflowPool = sync.Pool{New: func() any { return new([]message) }}

// put delivers m; producer side only (the src goroutine).
//
//pilut:hotpath
func (b *mailbox) put(m message) {
	if !b.spilled.Load() {
		select {
		case b.ch <- m:
			return
		default:
		}
	}
	b.mu.Lock()
	b.spilled.Store(true)
	if b.over == nil {
		b.over = overflowPool.Get().(*[]message)
	}
	*b.over = append(*b.over, m) //pilutlint:ok hotalloc overflow spill path is cold; the buffer comes from overflowPool and grows to burst size once
	b.mu.Unlock()
	select {
	case b.wake <- struct{}{}:
	default:
	}
}

// drainInto moves every currently delivered message into stash in
// arrival order; consumer side only (the dst goroutine).
//
//pilut:hotpath
func (b *mailbox) drainInto(stash *[]message) {
	for {
		select {
		case m := <-b.ch:
			*stash = append(*stash, m) //pilutlint:ok hotalloc stash grows to the peak out-of-order depth once, then is reused
			continue
		default:
		}
		break
	}
	if b.spilled.Load() {
		b.mu.Lock()
		ov := b.over
		b.over = nil
		b.spilled.Store(false)
		b.mu.Unlock()
		*stash = append(*stash, *ov...) //pilutlint:ok hotalloc stash grows to the peak out-of-order depth once, then is reused
		// Clear payload references before recycling the spill buffer so a
		// pooled buffer cannot pin delivered payloads, then hand it back.
		for i := range *ov {
			(*ov)[i] = message{}
		}
		*ov = (*ov)[:0]
		overflowPool.Put(ov)
	}
}

// barrier is a sense-reversing barrier: arrivals of one generation
// capture the release channel of their sense before incrementing, the
// last arriver re-arms the other sense's channel and closes this one.
type barrier struct {
	size    int32
	count   atomic.Int32
	release [2]chan struct{}
}

// Collective op codes. The rendezvous deposits and compares these bytes
// instead of strings; opNames renders them for mismatch panics and the
// watchdog dump, byte-identical to the historical messages.
const (
	opBarrier uint8 = iota
	opAllReduceF64
	opAllReduceInt
	opAllGather
)

var opNames = [...]string{"barrier", "allreduce_f64", "allreduce_int", "allgather"}

// Blocked-state encoding: publishing a wait state on the receive and
// collective hot paths is one atomic uint64 store instead of an
// fmt.Sprintf plus a string-into-interface heap escape. Layout: bits
// [0,3) kind, [3,8) collective op code, [8,24) source rank, [24,64) tag.
// dump decodes back to the historical human-readable strings.
const (
	stateNone uint64 = iota
	stateRecv
	stateCollWait
	stateCollLeave
)

func packRecvState(src, tag int) uint64 {
	return stateRecv | uint64(src)<<8 | uint64(tag)<<24
}

func packCollState(kind uint64, op uint8) uint64 {
	return kind | uint64(op)<<3
}

// renderBlocked decodes a packed blocked state for the watchdog dump.
func renderBlocked(s uint64) string {
	switch s & 7 {
	case stateRecv:
		return fmt.Sprintf("blocked in Recv(src=%d, tag=%d)", (s>>8)&0xFFFF, s>>24)
	case stateCollWait:
		return fmt.Sprintf("waiting in collective %q", opNames[(s>>3)&31])
	case stateCollLeave:
		return fmt.Sprintf("leaving collective %q", opNames[(s>>3)&31])
	}
	return ""
}

// DeadlockError is the failure a watchdog-armed Run panics with when the
// timeout expires, mirroring machine.DeadlockError: Dump reports what
// each processor was last blocked on.
type DeadlockError struct {
	Timeout time.Duration
	Dump    string
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("realcomm: watchdog: run still blocked after %v\n%s", e.Timeout, e.Dump)
}

// World is a P-processor shared-memory run. A World is single-use, like
// a machine.Machine.
type World struct {
	p     int
	boxes []mailbox // index src*p + dst
	bar   barrier
	// Rendezvous deposit slots, indexed by rank. Scalar reductions use
	// the unboxed fvals/ivals arrays — depositing a float64 or int there
	// is a plain store, where boxing into vals would heap-allocate on
	// every collective — and the generic AllGather keeps the boxed slots.
	opIdx []uint8
	vals  []any
	fvals []float64
	ivals []int

	failMu    sync.Mutex
	failCause any
	failRank  int    // root-cause rank, -1 when none (watchdog)
	failStack string // panicking goroutine's stack, "" for watchdog
	failDump  string // blocked-state table at failure time
	failCh    chan struct{}

	mu       sync.Mutex
	started  bool
	watchdog time.Duration
	rec      *trace.Recorder

	start time.Time
	procs []*Proc
}

// New creates a real-backend world with p processors.
func New(p int) *World {
	if p < 1 {
		panic("realcomm: need at least one processor")
	}
	w := &World{
		p:      p,
		boxes:  make([]mailbox, p*p),
		opIdx:  make([]uint8, p),
		vals:   make([]any, p),
		fvals:  make([]float64, p),
		ivals:  make([]int, p),
		failCh: make(chan struct{}),
	}
	for i := range w.boxes {
		w.boxes[i].ch = make(chan message, mailboxCap)
		w.boxes[i].wake = make(chan struct{}, 1)
	}
	w.bar.size = int32(p)
	w.bar.release[0] = make(chan struct{})
	w.bar.release[1] = make(chan struct{})
	return w
}

// NumProcs returns P.
func (w *World) NumProcs() int { return w.p }

// SetWatchdog arms a per-Run deadlock timeout; must be called before
// Run, d ≤ 0 disables.
func (w *World) SetWatchdog(d time.Duration) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.started {
		panic("realcomm: SetWatchdog must be called before Run")
	}
	w.watchdog = d
}

// SetRecorder attaches a trace recorder; timestamps are wall-clock
// seconds since Run started. Must be called before Run.
func (w *World) SetRecorder(r *trace.Recorder) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.started {
		panic("realcomm: SetRecorder after Run")
	}
	if r != nil && r.NumProcs() < w.p {
		panic(fmt.Sprintf("realcomm: recorder covers %d processors, world has %d", r.NumProcs(), w.p))
	}
	w.rec = r
}

// procAbort wraps the original panic so that secondary processors woken
// by a failure do not overwrite the root cause when they unwind.
type procAbort struct{ cause any }

func (w *World) fail(cause any) {
	w.failProc(-1, cause, "")
}

// failProc records the root failure cause with its rank and stack trace
// and poisons failCh, waking every processor parked in a mailbox receive
// or barrier wait so siblings unwind promptly. Only the first failure
// wins; the blocked-state dump is snapshotted at that moment.
func (w *World) failProc(rank int, cause any, stack string) {
	w.failMu.Lock()
	if w.failCause == nil {
		w.failCause = cause
		w.failRank = rank
		w.failStack = stack
		w.failDump = w.dump()
		if stack != "" {
			w.failDump += fmt.Sprintf("\nroot-cause stack (proc %d):\n%s", rank, stack)
		}
		close(w.failCh)
	}
	w.failMu.Unlock()
}

// abort panics with the run's root failure cause; called by processors
// woken out of a blocking operation by failCh.
func (p *Proc) abort() {
	p.w.failMu.Lock()
	cause := p.w.failCause
	p.w.failMu.Unlock()
	panic(procAbort{cause})
}

// Run executes f on every processor concurrently. Panic propagation and
// single-use semantics match machine.Machine.Run.
func (w *World) Run(f func(pcomm.Comm)) pcomm.Result {
	w.mu.Lock()
	if w.started {
		w.mu.Unlock()
		panic("realcomm: Run called twice on the same World; a World is single-use — create a new World per run")
	}
	w.started = true
	rec := w.rec
	wd := w.watchdog
	w.mu.Unlock()

	w.procs = make([]*Proc, w.p)
	for i := 0; i < w.p; i++ {
		w.procs[i] = &Proc{id: i, w: w, tr: rec.Proc(i), stash: make([][]message, w.p)}
	}
	w.start = time.Now()

	stopWatchdog := func() {}
	if wd > 0 {
		done := make(chan struct{})
		go func() {
			t := time.NewTimer(wd)
			defer t.Stop()
			select {
			case <-done:
			case <-t.C:
				w.fail(&DeadlockError{Timeout: wd, Dump: w.dump()})
			}
		}()
		stopWatchdog = func() { close(done) }
	}
	defer stopWatchdog()

	var wg sync.WaitGroup
	wg.Add(w.p)
	for i := 0; i < w.p; i++ {
		go func(p *Proc) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					if _, secondary := r.(procAbort); secondary {
						w.fail(r)
						return
					}
					// Capturing the stack inside the deferred recover
					// preserves the panicking frames: defers run before
					// the stack unwinds, so the trace survives into the
					// fail-channel payload and the RunError.
					w.failProc(p.id, r, string(debug.Stack()))
				}
			}()
			f(p)
			p.stats.Time = time.Since(w.start).Seconds()
		}(w.procs[i])
	}
	wg.Wait()

	w.failMu.Lock()
	failed := w.failCause
	rank, stack, dump := w.failRank, w.failStack, w.failDump
	w.failMu.Unlock()
	if failed != nil {
		if abort, ok := failed.(procAbort); ok {
			failed = abort.cause
		}
		panic(&pcomm.RunError{Backend: "real", Rank: rank, Cause: failed, Stack: stack, Dump: dump})
	}
	res := pcomm.Result{PerProc: make([]pcomm.Stats, w.p)}
	for i, p := range w.procs {
		res.PerProc[i] = p.stats
		if p.stats.Time > res.Elapsed {
			res.Elapsed = p.stats.Time
		}
	}
	return res
}

// dump renders every processor's last published blocked state for the
// watchdog's deadlock report.
func (w *World) dump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "P=%d processors:\n", w.p)
	for _, p := range w.procs {
		state := renderBlocked(p.blocked.Load())
		if state == "" {
			state = "not blocked in the communicator (computing or finished)"
		}
		fmt.Fprintf(&b, "  proc %d: %s\n", p.id, state)
	}
	return strings.TrimRight(b.String(), "\n")
}

// await passes the sense-reversing barrier; blocked is the packed wait
// state published for the watchdog dump.
//
//pilut:hotpath
func (w *World) await(p *Proc, blocked uint64) {
	s := p.sense
	ch := w.bar.release[s]
	p.sense = 1 - s
	if w.bar.count.Add(1) == w.bar.size {
		w.bar.count.Store(0)
		w.bar.release[1-s] = make(chan struct{}) //pilutlint:ok hotalloc one channel per barrier generation is the sense-reversing protocol
		close(ch)
		return
	}
	p.blocked.Store(blocked)
	defer p.blocked.Store(stateNone)
	select {
	case <-ch:
	case <-w.failCh:
		p.abort()
	}
}

// Proc is one processor's communicator handle. Like machine.Proc it is
// confined to the goroutine Run handed it to.
type Proc struct {
	id    int
	w     *World
	tr    *trace.ProcTracer
	stats pcomm.Stats
	sense int
	// stash holds messages drained from a mailbox while looking for a
	// different tag, in arrival order, indexed by src. Owned by this
	// processor's goroutine.
	stash [][]message
	// blocked publishes the packed wait state (see renderBlocked) for the
	// watchdog.
	blocked atomic.Uint64
}

// ID returns this processor's rank.
func (p *Proc) ID() int { return p.id }

// P returns the number of processors.
func (p *Proc) P() int { return p.w.p }

// Time returns wall-clock seconds since Run started.
func (p *Proc) Time() float64 { return time.Since(p.w.start).Seconds() }

// Work accounts flops; the real backend spends actual time instead of
// advancing a model clock.
func (p *Proc) Work(flops float64) { p.stats.Flops += flops }

// Sleep is a no-op: modelled non-flop local work takes its actual time
// here.
func (p *Proc) Sleep(dt float64) {}

// Stats returns a snapshot of the processor's counters.
func (p *Proc) Stats() pcomm.Stats {
	s := p.stats
	s.Time = p.Time()
	return s
}

// Tracer returns the processor's trace sink, nil when tracing is off.
func (p *Proc) Tracer() *trace.ProcTracer { return p.tr }

// Send delivers payload to dst under tag. bytes feeds the traffic
// counters (the cost model vocabulary is kept so both backends report
// identical MsgsSent/BytesSent for the same program).
func (p *Proc) Send(dst, tag int, payload any, bytes int) {
	p.send(dst, tag, message{tag: tag, payload: payload}, bytes)
}

// SendRaw implements the pcomm.RawComm zero-boxing fast path.
func (p *Proc) SendRaw(dst, tag int, h pcomm.RawSlice, bytes int) {
	p.send(dst, tag, message{tag: tag, raw: h, isRaw: true}, bytes)
}

func (p *Proc) send(dst, tag int, m message, bytes int) {
	w := p.w
	if dst < 0 || dst >= w.p {
		panic(fmt.Sprintf("realcomm: Send to invalid processor %d", dst))
	}
	p.stats.MsgsSent++
	p.stats.BytesSent += int64(bytes)
	if p.tr != nil {
		p.tr.Instant("machine", "send", p.Time(),
			trace.I("dst", dst), trace.I("tag", tag), trace.I("bytes", bytes))
	}
	w.boxes[p.id*w.p+dst].put(m)
}

// Recv blocks until a message with the given tag from src is available
// and returns its payload.
func (p *Proc) Recv(src, tag int) any {
	t0 := p.Time()
	m := p.recvMessage(src, tag)
	if m.isRaw {
		panic(fmt.Sprintf("realcomm: Recv(src=%d, tag=%d) matched a raw slice message; receive it with pcomm.RecvSlice", src, tag))
	}
	if p.tr != nil {
		p.tr.Span("machine", "recv", t0, p.Time(),
			trace.I("src", src), trace.I("tag", tag))
	}
	return m.payload
}

// RecvRaw implements the pcomm.RawComm zero-boxing fast path.
func (p *Proc) RecvRaw(src, tag int) (pcomm.RawSlice, any, bool) {
	t0 := p.Time()
	m := p.recvMessage(src, tag)
	if p.tr != nil {
		p.tr.Span("machine", "recv", t0, p.Time(),
			trace.I("src", src), trace.I("tag", tag))
	}
	return m.raw, m.payload, m.isRaw
}

//pilut:hotpath
func (p *Proc) recvMessage(src, tag int) message {
	w := p.w
	if src < 0 || src >= w.p {
		panic(fmt.Sprintf("realcomm: Recv from invalid processor %d", src))
	}
	stash := &p.stash[src]
	if m, ok := takeByTag(stash, tag); ok {
		return m
	}
	b := &w.boxes[src*w.p+p.id]
	for {
		n := len(*stash)
		b.drainInto(stash)
		if m, ok := takeByTagFrom(stash, tag, n); ok {
			return m
		}
		p.blocked.Store(packRecvState(src, tag))
		select {
		case m := <-b.ch:
			p.blocked.Store(stateNone)
			// m is newer than everything stashed, so if it matches it is
			// the FIFO-correct next message of this tag.
			if m.tag == tag {
				return m
			}
			*stash = append(*stash, m) //pilutlint:ok hotalloc stash grows to the peak out-of-order depth once, then is reused
		case <-b.wake:
			p.blocked.Store(stateNone)
		case <-w.failCh:
			p.abort()
		}
	}
}

// takeByTag removes and returns the first stashed message with the tag.
func takeByTag(stash *[]message, tag int) (message, bool) {
	return takeByTagFrom(stash, tag, 0)
}

// takeByTagFrom scans stash starting at index from (earlier entries are
// known not to match from a previous scan).
func takeByTagFrom(stash *[]message, tag, from int) (message, bool) {
	s := *stash
	for i := from; i < len(s); i++ {
		if s[i].tag == tag {
			m := s[i]
			*stash = append(s[:i], s[i+1:]...)
			return m, true
		}
	}
	return message{}, false
}

// enter is the first half of every collective rendezvous: deposit the op
// code, pass the phase-1 barrier, and verify all processors entered the
// same collective. Between enter and leave every deposit slot is stable
// and readable by everyone; leave (the phase-2 barrier) releases the
// slots for the next collective.
//
//pilut:hotpath
func (p *Proc) enter(op uint8) {
	w := p.w
	p.stats.Collectives++
	w.opIdx[p.id] = op
	w.await(p, packCollState(stateCollWait, op))
	for q := 0; q < w.p; q++ {
		if w.opIdx[q] != op {
			panic(fmt.Sprintf("realcomm: collective mismatch: %q vs %q", opNames[w.opIdx[q]], opNames[op]))
		}
	}
}

//pilut:hotpath
func (p *Proc) leave(op uint8) {
	p.w.await(p, packCollState(stateCollLeave, op))
}

// Barrier synchronizes all processors.
//
//pilut:hotpath
func (p *Proc) Barrier() {
	t0 := p.Time()
	p.enter(opBarrier)
	p.leave(opBarrier)
	if p.tr != nil {
		p.tr.Span("machine", "barrier", t0, p.Time(), trace.I("bytes", 0))
	}
}

// AllReduceFloat64 combines one float64 per processor with op. The fold
// runs in rank order — bitwise identical to the modelled backend — over
// the unboxed deposit array, so the steady-state reduction allocates
// nothing.
//
//pilut:hotpath
func (p *Proc) AllReduceFloat64(v float64, op pcomm.ReduceOp) float64 {
	t0 := p.Time()
	w := p.w
	w.fvals[p.id] = v
	p.enter(opAllReduceF64)
	out := w.fvals[0]
	for _, x := range w.fvals[1:] {
		switch op {
		case pcomm.OpSum:
			out += x
		case pcomm.OpMax:
			if x > out {
				out = x
			}
		case pcomm.OpMin:
			if x < out {
				out = x
			}
		}
	}
	p.leave(opAllReduceF64)
	if p.tr != nil {
		p.tr.Span("machine", "allreduce_f64", t0, p.Time(), trace.I("bytes", 8))
	}
	return out
}

// AllReduceInt combines one int per processor with op.
//
//pilut:hotpath
func (p *Proc) AllReduceInt(v int, op pcomm.ReduceOp) int {
	t0 := p.Time()
	w := p.w
	w.ivals[p.id] = v
	p.enter(opAllReduceInt)
	out := w.ivals[0]
	for _, x := range w.ivals[1:] {
		switch op {
		case pcomm.OpSum:
			out += x
		case pcomm.OpMax:
			if x > out {
				out = x
			}
		case pcomm.OpMin:
			if x < out {
				out = x
			}
		}
	}
	p.leave(opAllReduceInt)
	if p.tr != nil {
		p.tr.Span("machine", "allreduce_int", t0, p.Time(), trace.I("bytes", 8))
	}
	return out
}

// AllGather deposits one value per processor and returns the slice
// indexed by processor rank. The result is inherently per-call storage,
// so this path keeps the boxed deposit slots.
func (p *Proc) AllGather(v any, bytes int) []any {
	t0 := p.Time()
	w := p.w
	w.vals[p.id] = v
	p.enter(opAllGather)
	vals := append([]any(nil), w.vals...)
	p.leave(opAllGather)
	if p.tr != nil {
		p.tr.Span("machine", "allgather", t0, p.Time(), trace.I("bytes", bytes))
	}
	return vals
}

var _ pcomm.Comm = (*Proc)(nil)
var _ pcomm.RawComm = (*Proc)(nil)
var _ pcomm.World = (*World)(nil)
