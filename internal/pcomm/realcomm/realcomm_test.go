package realcomm

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/pcomm"
	"repro/internal/trace"
)

func TestSendRecvFIFO(t *testing.T) {
	w := New(2)
	w.Run(func(c pcomm.Comm) {
		const n = 2000 // well past mailboxCap so the overflow path runs
		if c.ID() == 0 {
			for i := 0; i < n; i++ {
				c.Send(1, 7, i, 8)
			}
		} else {
			for i := 0; i < n; i++ {
				got := c.Recv(0, 7).(int)
				if got != i {
					t.Errorf("message %d arrived out of order: got %d", i, got)
					return
				}
			}
		}
	})
}

func TestRecvOutOfOrderTags(t *testing.T) {
	w := New(2)
	w.Run(func(c pcomm.Comm) {
		if c.ID() == 0 {
			c.Send(1, 1, "first-tag1", 8)
			c.Send(1, 2, "tag2", 8)
			c.Send(1, 1, "second-tag1", 8)
		} else {
			if got := c.Recv(0, 2).(string); got != "tag2" {
				t.Errorf("tag 2: got %q", got)
			}
			if got := c.Recv(0, 1).(string); got != "first-tag1" {
				t.Errorf("tag 1 first: got %q", got)
			}
			if got := c.Recv(0, 1).(string); got != "second-tag1" {
				t.Errorf("tag 1 second: got %q", got)
			}
		}
	})
}

func TestCollectives(t *testing.T) {
	const P = 5
	w := New(P)
	w.Run(func(c pcomm.Comm) {
		me := float64(c.ID() + 1)
		if got := c.AllReduceFloat64(me, pcomm.OpSum); got != 15 {
			t.Errorf("proc %d: sum = %v, want 15", c.ID(), got)
		}
		if got := c.AllReduceInt(c.ID(), pcomm.OpMax); got != P-1 {
			t.Errorf("proc %d: max = %d, want %d", c.ID(), got, P-1)
		}
		if got := c.AllReduceInt(c.ID(), pcomm.OpMin); got != 0 {
			t.Errorf("proc %d: min = %d, want 0", c.ID(), got)
		}
		gathered := c.AllGather(c.ID()*10, 8)
		for q, v := range gathered {
			if v.(int) != q*10 {
				t.Errorf("proc %d: gathered[%d] = %v", c.ID(), q, v)
			}
		}
		c.Barrier()
		// Rank-order gather helpers over slices.
		rows := pcomm.AllGatherInts(c, []int{c.ID(), c.ID()})
		for q, r := range rows {
			if len(r) != 2 || r[0] != q || r[1] != q {
				t.Errorf("proc %d: AllGatherInts[%d] = %v", c.ID(), q, r)
			}
		}
	})
}

func TestBarrierReuse(t *testing.T) {
	const P, rounds = 4, 100
	w := New(P)
	var phase atomic.Int64
	w.Run(func(c pcomm.Comm) {
		for r := 0; r < rounds; r++ {
			c.Barrier()
			if got := phase.Load(); got != int64(r) {
				t.Errorf("proc %d round %d: phase %d", c.ID(), r, got)
				return
			}
			c.Barrier()
			if c.ID() == 0 {
				phase.Add(1)
			}
		}
	})
}

func TestSendSliceZeroCopy(t *testing.T) {
	w := New(2)
	src := []float64{1, 2, 3}
	w.Run(func(c pcomm.Comm) {
		if c.ID() == 0 {
			pcomm.SendSlice(c, 1, 3, src)
		} else {
			got := pcomm.RecvSlice[float64](c, 0, 3)
			if len(got) != 3 || got[0] != 1 || got[2] != 3 {
				t.Errorf("RecvSlice = %v", got)
			}
			// Same backing array: the real backend passes by reference.
			got[0] = 42
		}
	})
	if src[0] != 42 {
		t.Errorf("expected zero-copy delivery to alias the source slice; src = %v", src)
	}
}

func TestRecvOnRawMessagePanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil || !strings.Contains(fmt.Sprint(r), "RecvSlice") {
			t.Fatalf("recover() = %v, want RecvSlice hint", r)
		}
	}()
	w := New(2)
	w.Run(func(c pcomm.Comm) {
		if c.ID() == 0 {
			pcomm.SendSlice(c, 1, 1, []int{1})
		} else {
			c.Recv(0, 1)
		}
	})
}

func TestCollectiveMismatchPanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil || !strings.Contains(fmt.Sprint(r), "collective mismatch") {
			t.Fatalf("recover() = %v, want collective mismatch", r)
		}
	}()
	w := New(2)
	w.Run(func(c pcomm.Comm) {
		if c.ID() == 0 {
			c.Barrier()
		} else {
			c.AllReduceInt(1, pcomm.OpSum)
		}
	})
}

func TestPanicPropagatesRootCause(t *testing.T) {
	defer func() {
		r := recover()
		re, ok := r.(*pcomm.RunError)
		if !ok {
			t.Fatalf("recover() = %v (%T), want *pcomm.RunError", r, r)
		}
		if re.Rank != 1 || re.Cause != any("boom on proc 1") {
			t.Fatalf("root cause lost: rank=%d cause=%v", re.Rank, re.Cause)
		}
		// The fail-channel payload must preserve the panicking
		// goroutine's stack, and the dump must embed it.
		if !strings.Contains(re.Stack, "TestPanicPropagatesRootCause") {
			t.Errorf("stack trace does not name the panicking frame:\n%s", re.Stack)
		}
		if !strings.Contains(re.Dump, "root-cause stack (proc 1)") {
			t.Errorf("dump missing root-cause stack section:\n%s", re.Dump)
		}
	}()
	w := New(3)
	w.Run(func(c pcomm.Comm) {
		if c.ID() == 1 {
			panic("boom on proc 1")
		}
		c.Recv(1, 9) // would deadlock without failure propagation
	})
}

func TestWatchdogDeadlock(t *testing.T) {
	defer func() {
		r := recover()
		re, ok := r.(*pcomm.RunError)
		if !ok {
			t.Fatalf("recover() = %v (%T), want *pcomm.RunError", r, r)
		}
		de, ok := re.Cause.(*DeadlockError)
		if !ok {
			t.Fatalf("cause = %v (%T), want *DeadlockError", re.Cause, re.Cause)
		}
		if re.Rank != -1 {
			t.Errorf("watchdog failure blames rank %d, want -1", re.Rank)
		}
		if !strings.Contains(de.Dump, "Recv(src=1, tag=5)") {
			t.Errorf("dump missing blocked Recv state:\n%s", de.Dump)
		}
	}()
	w := New(2)
	w.SetWatchdog(50 * time.Millisecond)
	w.Run(func(c pcomm.Comm) {
		if c.ID() == 0 {
			c.Recv(1, 5) // never sent
		}
	})
}

func TestStatsCounters(t *testing.T) {
	w := New(2)
	res := w.Run(func(c pcomm.Comm) {
		c.Work(100)
		if c.ID() == 0 {
			c.Send(1, 1, 1.0, 8)
		} else {
			c.Recv(0, 1)
		}
		c.Barrier()
	})
	if res.PerProc[0].MsgsSent != 1 || res.PerProc[0].BytesSent != 8 {
		t.Errorf("proc 0 traffic = %+v", res.PerProc[0])
	}
	if res.PerProc[0].Collectives != 1 || res.PerProc[1].Collectives != 1 {
		t.Errorf("collectives = %d, %d", res.PerProc[0].Collectives, res.PerProc[1].Collectives)
	}
	if res.PerProc[0].Flops != 100 {
		t.Errorf("flops = %v", res.PerProc[0].Flops)
	}
	if res.Elapsed <= 0 {
		t.Errorf("elapsed = %v, want wall time > 0", res.Elapsed)
	}
}

func TestRunTwicePanics(t *testing.T) {
	w := New(1)
	w.Run(func(c pcomm.Comm) {})
	defer func() {
		if recover() == nil {
			t.Fatal("second Run did not panic")
		}
	}()
	w.Run(func(c pcomm.Comm) {})
}

func TestTracerRecordsEvents(t *testing.T) {
	w := New(2)
	rec := trace.NewRecorder(2)
	w.SetRecorder(rec)
	w.Run(func(c pcomm.Comm) {
		if !c.Tracer().Enabled() {
			t.Errorf("proc %d: tracer disabled with recorder set", c.ID())
		}
		if c.ID() == 0 {
			c.Send(1, 1, nil, 0)
		} else {
			c.Recv(0, 1)
		}
		c.Barrier()
	})
	names := map[string]bool{}
	for _, e := range rec.Events() {
		names[e.Name] = true
	}
	for _, want := range []string{"send", "recv", "barrier"} {
		if !names[want] {
			t.Errorf("trace missing %q event; got %v", want, names)
		}
	}
}
