//go:build !race

package realcomm

import (
	"runtime"
	"testing"

	"repro/internal/pcomm"
)

// Alloc-regression guard for the mailbox fast path (ISSUE 8): a steady-
// state SendSlice/RecvSliceInto ping-pong under the ownership-transfer
// protocol must not touch the allocator — the raw path boxes nothing,
// blocking receives select on pre-existing channels, and the transport
// buffers circulate through pcomm.Floats. AllocsPerRun cannot see across
// goroutines, so the guard reads the global malloc counter around a
// quiesced measurement window instead; the generous budget absorbs the
// barrier generations that delimit the window and incidental runtime
// housekeeping, while a real per-message regression would show up as
// thousands. Excluded under the race detector, whose instrumentation
// allocates.
func TestMailboxSteadyStateAllocs(t *testing.T) {
	const (
		tag    = 4242
		msgLen = 64
		warm   = 300
		meas   = 2000
		budget = 100
	)
	w := New(2)
	var delta uint64
	w.Run(func(c pcomm.Comm) {
		dst := make([]float64, msgLen)
		round := func(peer int, sendFirst bool) {
			send := func() {
				buf := pcomm.Floats.Get(msgLen)
				for k := range buf {
					buf[k] = float64(k)
				}
				pcomm.SendSlice(c, peer, tag, buf)
			}
			recv := func() {
				if n := pcomm.RecvSliceInto(c, peer, tag, dst, &pcomm.Floats); n != msgLen {
					panic("short ghost message in alloc guard")
				}
			}
			if sendFirst {
				send()
				recv()
			} else {
				recv()
				send()
			}
		}
		peer := 1 - c.ID()
		for i := 0; i < warm; i++ {
			round(peer, c.ID() == 0)
		}
		c.Barrier()
		var m1, m2 runtime.MemStats
		if c.ID() == 0 {
			runtime.GC()
			runtime.ReadMemStats(&m1)
		}
		c.Barrier()
		for i := 0; i < meas; i++ {
			round(peer, c.ID() == 0)
		}
		c.Barrier()
		if c.ID() == 0 {
			runtime.ReadMemStats(&m2)
			delta = m2.Mallocs - m1.Mallocs
		}
		c.Barrier()
	})
	t.Logf("mallocs over %d ping-pong rounds: %d (budget %d)", meas, delta, budget)
	if delta > budget {
		t.Errorf("mailbox fast path allocated %d objects over %d rounds, budget %d", delta, meas, budget)
	}
}
