package pcomm

import "encoding/gob"

// RegisterWire registers a concrete payload type with the wire codec the
// multi-process backend (pcomm/netcomm) uses to move Send/AllGather
// payloads between OS processes. The in-process backends pass payloads
// by reference and need no registration; a package whose payload types
// cross the communicator seam calls RegisterWire from an init function
// so the types serialize under netcomm too. Registration is keyed by the
// concrete type's name inside one binary — SPMD runs execute the same
// binary in every process, so sender and receiver always agree.
//
// Unexported types work: gob encodes the exported fields of a registered
// concrete type regardless of the type name's visibility.
func RegisterWire(v any) { gob.Register(v) }

// Common scalar and slice payloads the SPMD stack sends or gathers. The
// netcomm fast path encodes float64 and int without gob; everything else
// round-trips through the gob registry.
func init() {
	RegisterWire(int(0))
	RegisterWire(int64(0))
	RegisterWire(float64(0))
	RegisterWire(uint64(0))
	RegisterWire(false)
	RegisterWire("")
	RegisterWire([]int(nil))
	RegisterWire([]int64(nil))
	RegisterWire([]float64(nil))
	RegisterWire([]uint64(nil))
	RegisterWire([]bool(nil))
	RegisterWire([]byte(nil))
	RegisterWire(Stats{})
}

// TransportDropper is an optional Comm capability of backends whose
// messages cross a real transport. DropTransport severs the underlying
// connection from this rank toward dst — the network-level analogue of
// the fault layer's message drop — and returns a human-readable
// description of the transport it cut, for the RunError diagnosis.
// In-process backends do not implement it (there is no transport to
// cut); the fault injector falls back to silently swallowing the send.
type TransportDropper interface {
	DropTransport(dst int) string
}
