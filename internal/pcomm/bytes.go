package pcomm

import "unsafe"

// BytesOf returns the modelled wire size of n elements of type T — the
// generic form of the BytesOf* helpers, for payloads built through
// SendSlice/RecvSlice. It sizes the element representation only; for
// element types that themselves hold slices, write a domain-specific
// BytesOf* helper that sizes the reachable data (see ilu.BytesOfURows).
func BytesOf[T any](n int) int {
	var z T
	return int(unsafe.Sizeof(z)) * n
}

// BytesOfFloats returns the modelled wire size of n float64s.
func BytesOfFloats(n int) int { return 8 * n }

// BytesOfInts returns the modelled wire size of n int indices.
func BytesOfInts(n int) int { return 8 * n }

// BytesOfUint64s returns the modelled wire size of n uint64 keys.
func BytesOfUint64s(n int) int { return 8 * n }

// BytesOfBools returns the modelled wire size of n boolean flags (one
// byte each, as an MPI byte-typed message would ship them).
func BytesOfBools(n int) int { return n }

// The Copy* helpers detach a payload from the sender's memory before a
// Send: because both backends pass references where a real distributed
// machine would serialize onto the wire, a sender that retains and later
// mutates a sent slice silently corrupts the receiver — the aliasing bug
// the sendalias analyzer flags. Copying at the call site (or sending a
// freshly built buffer) restores the by-value semantics of a real
// message.

// CopySlice returns a copy of xs that shares no memory with it.
func CopySlice[T any](xs []T) []T { return append([]T(nil), xs...) }

// CopyInts returns a copy of xs that shares no memory with it.
func CopyInts(xs []int) []int { return append([]int(nil), xs...) }

// CopyFloats returns a copy of xs that shares no memory with it.
func CopyFloats(xs []float64) []float64 { return append([]float64(nil), xs...) }

// CopyBools returns a copy of xs that shares no memory with it.
func CopyBools(xs []bool) []bool { return append([]bool(nil), xs...) }
