// Package pcomm defines the communicator abstraction the SPMD algorithm
// stack (dist, mis, core, krylov, experiments, service) is written
// against. A Comm is one virtual processor's handle inside a World.Run;
// a World is a P-processor execution backend.
//
// Two backends implement the abstraction:
//
//   - the modelled machine (internal/machine, wrapped by
//     internal/pcomm/modelled): the paper's simulated Cray T3D with
//     LogP-style virtual clocks. Time() is modelled seconds.
//   - the real shared-memory backend (internal/pcomm/realcomm): per-pair
//     mailboxes and sense-reversing-barrier collectives running at
//     hardware speed. Time() is wall-clock seconds since Run started.
//
// The two backends are bit-compatible in the Dong & Cooperman sense
// (arXiv:0803.0048): an SPMD program that follows the repo's SPMD
// invariants (see internal/analysis) produces bitwise-identical
// floating-point results on both, because every collective combines
// contributions in processor-rank order on both backends. Only the
// clocks differ.
package pcomm

import (
	"time"

	"repro/internal/trace"
)

// ReduceOp selects the combining operator of an AllReduce.
type ReduceOp int

// Reduction operators.
const (
	OpSum ReduceOp = iota
	OpMax
	OpMin
)

// Stats accumulates per-processor activity. On the modelled backend Time
// and Busy are virtual (modelled) seconds; on the real backend Time is
// wall-clock seconds and Busy is not tracked (zero). The message and
// flop counters are backend-independent: both backends count the same
// program the same way.
type Stats struct {
	Flops       float64
	MsgsSent    int64
	BytesSent   int64
	Collectives int64
	Time        float64 // final clock (modelled or wall-clock seconds)
	// Busy is the clock time spent computing (Work/Sleep); Time − Busy is
	// communication, synchronization and idling — the overhead the paper's
	// scalability analysis is about. Modelled backend only.
	Busy float64
}

// Result summarizes a completed Run.
type Result struct {
	Elapsed float64 // max clock over processors (modelled or wall seconds)
	PerProc []Stats
}

// TotalFlops sums the flop counts of all processors.
func (r Result) TotalFlops() float64 {
	var s float64
	for _, st := range r.PerProc {
		s += st.Flops
	}
	return s
}

// TotalBytes sums the bytes sent by all processors.
func (r Result) TotalBytes() int64 {
	var s int64
	for _, st := range r.PerProc {
		s += st.BytesSent
	}
	return s
}

// OverheadFraction reports the share of processor-time spent on
// communication, synchronization and idling: 1 − Σbusy / (P × makespan).
// Meaningful on the modelled backend only (the real backend does not
// track Busy).
func (r Result) OverheadFraction() float64 {
	if r.Elapsed == 0 {
		return 0
	}
	var busy float64
	for _, st := range r.PerProc {
		busy += st.Busy
	}
	return 1 - busy/(r.Elapsed*float64(len(r.PerProc)))
}

// Comm is one virtual processor's communicator: everything the SPMD
// algorithm stack may do that touches another processor or the clock.
// A Comm must only be used from the goroutine Run handed it to (the
// procescape analyzer enforces this), and payloads handed to Send and
// AllGather must not alias memory the sender retains (sendalias).
type Comm interface {
	// ID returns this processor's rank in [0, P).
	ID() int
	// P returns the number of processors in the run.
	P() int
	// Time returns the processor's current clock in seconds: modelled
	// seconds on the simulator, wall-clock seconds since Run on the real
	// backend.
	Time() float64
	// Work accounts flops of local computation; the modelled backend also
	// advances the virtual clock by flops × FlopTime.
	Work(flops float64)
	// Sleep models non-flop local work (copying, sorting) of dt seconds;
	// a no-op on the real backend, where such work takes its actual time.
	Sleep(dt float64)
	// Stats returns a snapshot of the processor's counters.
	Stats() Stats
	// Tracer returns the processor's trace sink, nil when tracing is off.
	Tracer() *trace.ProcTracer

	// Send delivers payload to processor dst under tag. bytes is the wire
	// size for the cost model and the traffic counters (use the BytesOf*
	// helpers; the bytesarg analyzer enforces this). Sends are
	// asynchronous and unbounded; matching is FIFO per (src, dst, tag).
	Send(dst, tag int, payload any, bytes int)
	// Recv blocks until a message with the given tag from src is
	// available and returns its payload.
	Recv(src, tag int) any

	// Barrier synchronizes all processors.
	Barrier()
	// AllReduceFloat64 combines one float64 per processor with op; all
	// processors receive the result. Both backends fold contributions in
	// rank order, so the result is bitwise identical across backends.
	AllReduceFloat64(v float64, op ReduceOp) float64
	// AllReduceInt combines one int per processor with op.
	AllReduceInt(v int, op ReduceOp) int
	// AllGather deposits one value per processor and returns the slice
	// indexed by processor rank. bytes is the per-processor payload size.
	AllGather(v any, bytes int) []any
}

// World is a P-processor execution backend. A World is single-use:
// create one per parallel run.
type World interface {
	// NumProcs returns P.
	NumProcs() int
	// Run executes f on every processor concurrently and returns once all
	// have finished. If any processor panics, all blocked processors are
	// woken and Run panics with a *RunError carrying the failing rank,
	// root cause, stack trace and blocked-state dump; catch it with
	// Guard to contain the failure to this run.
	Run(f func(Comm)) Result
	// SetWatchdog arms a per-Run deadlock timeout. Must be called before
	// Run; d ≤ 0 disables the watchdog.
	SetWatchdog(d time.Duration)
	// SetRecorder attaches a trace recorder covering at least P
	// processors. Must be called before Run; nil keeps tracing off.
	SetRecorder(r *trace.Recorder)
}

// AllGatherInts gathers one []int per processor.
func AllGatherInts(c Comm, xs []int) [][]int { return AllGatherSlice(c, xs) }

// AllGatherFloats gathers one []float64 per processor.
func AllGatherFloats(c Comm, xs []float64) [][]float64 { return AllGatherSlice(c, xs) }
