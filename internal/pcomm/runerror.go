package pcomm

import (
	"fmt"
	"strings"
)

// RunError is the structured failure a World.Run panics with when an SPMD
// run cannot complete: a processor panicked (its own bug, an injected
// fault, or a numerical breakdown signalled by panicking with an error),
// or the watchdog declared the run deadlocked. It converts what used to
// be a bare re-panic of the root cause into something a supervisor — the
// solver service, a test harness — can catch with Guard, inspect, and
// contain to one request instead of one process.
type RunError struct {
	// Backend names the world that failed ("modelled" or "real").
	Backend string
	// Rank is the virtual processor whose panic was the root cause, or
	// -1 when no single processor is to blame (watchdog deadlock).
	Rank int
	// Cause is the root panic value. Secondary panics from sibling
	// processors woken by the failure never overwrite it.
	Cause any
	// Stack is the panicking goroutine's stack trace, captured inside
	// the deferred recover while the panicking frames were still intact.
	// Empty for watchdog failures, which have no panicking goroutine.
	Stack string
	// Dump is the per-processor blocked-state table at failure time:
	// what every other rank was parked on when the run died.
	Dump string
}

func (e *RunError) Error() string {
	var b strings.Builder
	if e.Rank >= 0 {
		fmt.Fprintf(&b, "%s: processor %d failed: %v", e.Backend, e.Rank, e.Cause)
	} else {
		fmt.Fprintf(&b, "%s: run failed: %v", e.Backend, e.Cause)
	}
	return b.String()
}

// Unwrap exposes an error-typed Cause to errors.Is/As, so callers can
// match domain failures (core.BreakdownError, fault.InjectedPanic,
// deadlock errors) through the RunError wrapper.
func (e *RunError) Unwrap() error {
	if err, ok := e.Cause.(error); ok {
		return err
	}
	return nil
}

// Guard runs f on w and converts a failed run into an error instead of a
// propagating panic. Both backends panic with *RunError on processor
// panics and watchdog deadlocks, so err is almost always a *RunError;
// any other panic escaping Run (programmer errors such as reusing a
// single-use world) is wrapped in one with Rank -1 so the caller still
// gets an error rather than a crash.
func Guard(w World, f func(Comm)) (res Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			if re, ok := r.(*RunError); ok {
				err = re
				return
			}
			err = &RunError{Rank: -1, Cause: r}
		}
	}()
	res = w.Run(f)
	return res, nil
}
