// Package pcommtest builds worlds for tests. New honors $PILUT_BACKEND
// so the whole tier-1 suite can run against any backend — the modelled
// simulator, the shared-memory realcomm, or a netcomm process group
// ("netcomm:spawn=2" re-executes the test binary and spreads each
// world's ranks across OS processes) — and $PILUT_FAULTS so the chaos
// lane can replay the entire suite under deterministic fault injection
// (delay-only specs keep every numerical assertion valid — see
// internal/fault). Tests that assert modelled virtual-time numbers
// should call machine.New directly instead.
package pcommtest

import (
	"os"
	"testing"

	"repro/internal/fault"
	"repro/internal/machine"
	"repro/internal/pcomm"
	"repro/internal/pcomm/backend"
	"repro/internal/pcomm/netcomm"
)

// Backend reports the backend kind tests run under ("modelled" unless
// $PILUT_BACKEND says otherwise). Netcomm kinds are full specs.
func Backend() string {
	if k := os.Getenv(backend.EnvVar); k != "" {
		return k
	}
	return backend.Modelled
}

// Netcomm reports whether tests run over the multi-process backend.
// Tests whose harness cannot span OS processes (anything driving a
// service request stream, which only exists in one process) skip under
// it.
func Netcomm() bool {
	return netcomm.IsSpec(Backend())
}

// New creates a world with p processors using the backend selected by
// $PILUT_BACKEND, failing the test on an unknown kind. cost applies to
// the modelled backend only. When $PILUT_FAULTS is set, the world is
// wrapped in the fault-injection layer with a fresh spec per call so
// one-shot faults rearm for every test.
func New(t testing.TB, p int, cost machine.CostModel) pcomm.World {
	t.Helper()
	w, err := backend.FromEnv(p, cost)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := fault.FromEnv()
	if err != nil {
		t.Fatal(err)
	}
	return spec.World(w)
}
