// Package modelled adapts the simulated machine (internal/machine) to
// the pcomm.World interface. The adaptation is a zero-cost shim:
// *machine.Proc itself implements pcomm.Comm, so the virtual-time output
// of a run through this wrapper is byte-identical to driving the machine
// directly.
package modelled

import (
	"time"

	"repro/internal/machine"
	"repro/internal/pcomm"
	"repro/internal/trace"
)

// World wraps one single-use machine.Machine as a pcomm.World.
type World struct {
	M *machine.Machine
}

// New creates a modelled world with p processors and the given cost
// model.
func New(p int, cost machine.CostModel) *World {
	return &World{M: machine.New(p, cost)}
}

// NumProcs returns P.
func (w *World) NumProcs() int { return w.M.NumProcs() }

// SetWatchdog arms the machine's deadlock watchdog.
func (w *World) SetWatchdog(d time.Duration) { w.M.SetWatchdog(d) }

// SetRecorder attaches a trace recorder to the machine.
func (w *World) SetRecorder(r *trace.Recorder) { w.M.SetRecorder(r) }

// Run executes f on every virtual processor.
func (w *World) Run(f func(pcomm.Comm)) pcomm.Result {
	return w.M.Run(func(p *machine.Proc) { f(p) })
}

// Interface conformance of the machine's processor handle.
var _ pcomm.Comm = (*machine.Proc)(nil)
var _ pcomm.World = (*World)(nil)
