package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/ilu"
	"repro/internal/machine"
	"repro/internal/matgen"
	"repro/internal/partition"
	"repro/internal/pcomm"
	"repro/internal/pcomm/pcommtest"
	"repro/internal/sparse"
)

// solveFixture factors a problem and returns everything needed to compare
// distributed solves against the gathered global factors.
func solveFixture(t *testing.T, P int) ([]*ProcPrecond, *Plan, *ilu.Factors, []int) {
	t.Helper()
	a := matgen.Torso(5, 5, 7, 2)
	g := graph.FromMatrix(a)
	part := partition.KWay(g, P, partition.Options{Seed: 4})
	lay, err := dist.NewLayout(a.N, P, part)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := NewPlan(a, lay)
	if err != nil {
		t.Fatal(err)
	}
	pcs := make([]*ProcPrecond, P)
	m := pcommtest.New(t, P, machine.T3D())
	m.Run(func(p pcomm.Comm) {
		pcs[p.ID()] = Factor(p, plan, Options{Params: ilu.Params{M: 7, Tau: 1e-4, K: 2}})
	})
	f, perm, err := GatherFactors(pcs)
	if err != nil {
		t.Fatal(err)
	}
	return pcs, plan, f, perm
}

func distApply(t *testing.T, plan *Plan, pcs []*ProcPrecond, b []float64,
	apply func(pc *ProcPrecond, p pcomm.Comm, y, b []float64)) []float64 {
	t.Helper()
	lay := plan.Lay
	bParts := lay.Scatter(b)
	yParts := make([][]float64, lay.P)
	m := pcommtest.New(t, lay.P, machine.T3D())
	m.Run(func(p pcomm.Comm) {
		y := make([]float64, lay.NLocal(p.ID()))
		apply(pcs[p.ID()], p, y, bParts[p.ID()])
		yParts[p.ID()] = y
	})
	return lay.Gather(yParts)
}

func TestSolveForwardMatchesGathered(t *testing.T) {
	P := 4
	pcs, plan, f, perm := solveFixture(t, P)
	n := plan.A.N
	rng := rand.New(rand.NewSource(5))
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	got := distApply(t, plan, pcs, b, func(pc *ProcPrecond, p pcomm.Comm, y, bl []float64) {
		pc.SolveForward(p, y, bl)
	})
	want := make([]float64, n)
	f.SolveL(want, sparse.PermuteVec(b, perm))
	for i := 0; i < n; i++ {
		if math.Abs(got[i]-want[perm[i]]) > 1e-10*math.Max(1, math.Abs(want[perm[i]])) {
			t.Fatalf("forward mismatch at %d: %v vs %v", i, got[i], want[perm[i]])
		}
	}
}

func TestSolveBackwardMatchesGathered(t *testing.T) {
	P := 4
	pcs, plan, f, perm := solveFixture(t, P)
	n := plan.A.N
	rng := rand.New(rand.NewSource(6))
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	got := distApply(t, plan, pcs, b, func(pc *ProcPrecond, p pcomm.Comm, y, bl []float64) {
		pc.SolveBackward(p, y, bl)
	})
	want := make([]float64, n)
	f.SolveU(want, sparse.PermuteVec(b, perm))
	for i := 0; i < n; i++ {
		if math.Abs(got[i]-want[perm[i]]) > 1e-9*math.Max(1, math.Abs(want[perm[i]])) {
			t.Fatalf("backward mismatch at %d: %v vs %v", i, got[i], want[perm[i]])
		}
	}
}

func TestSolveBuffersReusable(t *testing.T) {
	// Two successive solves with different right-hand sides must not
	// contaminate each other through the reused xInt/xIface buffers.
	P := 3
	pcs, plan, f, perm := solveFixture(t, P)
	n := plan.A.N
	b1 := sparse.Ones(n)
	b2 := make([]float64, n)
	for i := range b2 {
		b2[i] = float64(i%5) - 2
	}
	lay := plan.Lay
	b1Parts := lay.Scatter(b1)
	b2Parts := lay.Scatter(b2)
	y2Parts := make([][]float64, P)
	m := pcommtest.New(t, P, machine.T3D())
	m.Run(func(p pcomm.Comm) {
		y := make([]float64, lay.NLocal(p.ID()))
		pcs[p.ID()].Solve(p, y, b1Parts[p.ID()]) // first solve, result discarded
		y2 := make([]float64, lay.NLocal(p.ID()))
		pcs[p.ID()].Solve(p, y2, b2Parts[p.ID()])
		y2Parts[p.ID()] = y2
	})
	got := lay.Gather(y2Parts)
	want := make([]float64, n)
	f.Solve(want, sparse.PermuteVec(b2, perm))
	for i := 0; i < n; i++ {
		if math.Abs(got[i]-want[perm[i]]) > 1e-9*math.Max(1, math.Abs(want[perm[i]])) {
			t.Fatalf("second solve mismatch at %d", i)
		}
	}
}

func TestSolveAliasedVectors(t *testing.T) {
	// Solve must allow y and b to alias, as DistGMRES relies on.
	P := 2
	pcs, plan, f, perm := solveFixture(t, P)
	n := plan.A.N
	b := sparse.Ones(n)
	lay := plan.Lay
	parts := lay.Scatter(b)
	m := pcommtest.New(t, P, machine.T3D())
	m.Run(func(p pcomm.Comm) {
		pcs[p.ID()].Solve(p, parts[p.ID()], parts[p.ID()])
	})
	got := lay.Gather(parts)
	want := make([]float64, n)
	f.Solve(want, sparse.PermuteVec(b, perm))
	for i := 0; i < n; i++ {
		if math.Abs(got[i]-want[perm[i]]) > 1e-9*math.Max(1, math.Abs(want[perm[i]])) {
			t.Fatalf("aliased solve mismatch at %d", i)
		}
	}
}

func TestSolvePanicsOnBadLength(t *testing.T) {
	P := 2
	pcs, plan, _, _ := solveFixture(t, P)
	m := pcommtest.New(t, P, machine.T3D())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Run(func(p pcomm.Comm) {
		pcs[p.ID()].SolveForward(p, make([]float64, 1), make([]float64, plan.Lay.NLocal(p.ID())))
	})
}

func TestSolveSyncPointsEqualLevels(t *testing.T) {
	// The paper: forward+backward substitution has q implicit
	// synchronization points each. Count collectives per solve.
	P := 4
	pcs, plan, _, _ := solveFixture(t, P)
	lay := plan.Lay
	b := sparse.Ones(plan.A.N)
	parts := lay.Scatter(b)
	m := pcommtest.New(t, P, machine.T3D())
	res := m.Run(func(p pcomm.Comm) {
		y := make([]float64, lay.NLocal(p.ID()))
		pcs[p.ID()].SolveForward(p, y, parts[p.ID()])
	})
	q := int64(pcs[0].NumLevels())
	if got := res.PerProc[0].Collectives; got != q {
		t.Errorf("forward solve used %d collectives, want q=%d", got, q)
	}
}
