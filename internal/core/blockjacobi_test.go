package core

import (
	"testing"

	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/ilu"
	"repro/internal/machine"
	"repro/internal/matgen"
	"repro/internal/partition"
	"repro/internal/pcomm"
	"repro/internal/pcomm/pcommtest"
	"repro/internal/sparse"
)

func TestBlockJacobiSingleProcEqualsILUT(t *testing.T) {
	// With one processor the block is the whole matrix.
	a := matgen.Grid2D(8, 8)
	lay, _ := dist.NewLayout(a.N, 1, make([]int, a.N))
	plan, err := NewPlan(a, lay)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := ilu.ILUT(a, ilu.Params{M: 5, Tau: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	m := pcommtest.New(t, 1, machine.Zero())
	m.Run(func(p pcomm.Comm) {
		bj, err := FactorBlockJacobi(p, plan, ilu.Params{M: 5, Tau: 1e-3})
		if err != nil {
			panic(err)
		}
		if bj.NNZ() != want.NNZ() {
			panic("block-jacobi on 1 proc differs from serial ILUT")
		}
	})
}

func TestBlockJacobiNoCommunication(t *testing.T) {
	a := matgen.Torso(6, 6, 6, 2)
	P := 4
	g := graph.FromMatrix(a)
	part := partition.KWay(g, P, partition.Options{Seed: 9})
	lay, _ := dist.NewLayout(a.N, P, part)
	plan, err := NewPlan(a, lay)
	if err != nil {
		t.Fatal(err)
	}
	b := sparse.Ones(a.N)
	bParts := lay.Scatter(b)
	m := pcommtest.New(t, P, machine.T3D())
	res := m.Run(func(p pcomm.Comm) {
		bj, err := FactorBlockJacobi(p, plan, ilu.Params{M: 8, Tau: 1e-4})
		if err != nil {
			panic(err)
		}
		x := make([]float64, lay.NLocal(p.ID()))
		bj.Solve(p, x, bParts[p.ID()])
	})
	for q := 0; q < P; q++ {
		if res.PerProc[q].MsgsSent != 0 || res.PerProc[q].Collectives != 0 {
			t.Fatalf("proc %d communicated: %+v", q, res.PerProc[q])
		}
	}
}

func TestBlockJacobiWeakerThanPILUT(t *testing.T) {
	// The point of the comparison: as P grows, block Jacobi discards more
	// coupling and needs more iterations than PILUT at the same (m, tau).
	a := matgen.Torso(7, 7, 7, 4)
	P := 8
	g := graph.FromMatrix(a)
	part := partition.KWay(g, P, partition.Options{Seed: 9})
	lay, _ := dist.NewLayout(a.N, P, part)
	plan, err := NewPlan(a, lay)
	if err != nil {
		t.Fatal(err)
	}
	params := ilu.Params{M: 10, Tau: 1e-4, K: 2}
	b := sparse.Ones(a.N)
	bParts := lay.Scatter(b)
	// One Richardson step each; PILUT's residual must be smaller.
	xBJ := make([][]float64, P)
	xPI := make([][]float64, P)
	m := pcommtest.New(t, P, machine.T3D())
	m.Run(func(p pcomm.Comm) {
		bj, err := FactorBlockJacobi(p, plan, params)
		if err != nil {
			panic(err)
		}
		pc := Factor(p, plan, Options{Params: params})
		x1 := make([]float64, lay.NLocal(p.ID()))
		bj.Solve(p, x1, bParts[p.ID()])
		x2 := make([]float64, lay.NLocal(p.ID()))
		pc.Solve(p, x2, bParts[p.ID()])
		xBJ[p.ID()] = x1
		xPI[p.ID()] = x2
	})
	resNorm := func(parts [][]float64) float64 {
		x := lay.Gather(parts)
		r := make([]float64, a.N)
		a.MulVec(r, x)
		for i := range r {
			r[i] = b[i] - r[i]
		}
		return sparse.Norm2(r)
	}
	rBJ, rPI := resNorm(xBJ), resNorm(xPI)
	t.Logf("one-step residuals: block-jacobi=%.3e pilut=%.3e", rBJ, rPI)
	if rPI >= rBJ {
		t.Errorf("PILUT residual %v not better than block Jacobi %v", rPI, rBJ)
	}
}

func TestBlockJacobiMissingDiagonalRepaired(t *testing.T) {
	// A row whose diagonal lies outside its block (possible with zero
	// original diagonal) must still factor via the pivot floor.
	a := sparse.FromDense([][]float64{
		{0, 1, 0, 0},
		{1, 2, 0, 0},
		{0, 0, 3, 1},
		{0, 0, 1, 3},
	})
	part := []int{0, 0, 1, 1}
	lay, _ := dist.NewLayout(4, 2, part)
	plan, err := NewPlan(a, lay)
	if err != nil {
		t.Fatal(err)
	}
	m := pcommtest.New(t, 2, machine.Zero())
	m.Run(func(p pcomm.Comm) {
		if _, err := FactorBlockJacobi(p, plan, ilu.Params{M: 2, Tau: 1e-8}); err != nil {
			panic(err)
		}
	})
}
