package core

import (
	"fmt"
	"math"

	"repro/internal/pcomm"
)

// BreakdownError is the collective verdict that a factorization is
// numerically useless: too many pivots needed floor repairs, or a
// non-finite value reached the factors. Every processor panics with the
// same value (the inputs to the decision are AllGathered, so the verdict
// is identical on all ranks), Run wraps it in a *pcomm.RunError, and the
// service's recovery ladder matches it with errors.As to decide whether
// to retry with a diagonal shift, relaxed parameters, or the
// block-Jacobi fallback.
type BreakdownError struct {
	// FixedPivots and Rows are global counts; Rate is their ratio.
	FixedPivots int
	Rows        int
	Rate        float64
	// NonFinite counts NaN/Inf entries found in the factors (global).
	NonFinite int
}

func (e *BreakdownError) Error() string {
	if e.NonFinite > 0 {
		return fmt.Sprintf("core: numerical breakdown: %d non-finite entries in the factors (%d/%d pivots repaired)",
			e.NonFinite, e.FixedPivots, e.Rows)
	}
	return fmt.Sprintf("core: numerical breakdown: %d of %d pivots (%.0f%%) needed floor repairs",
		e.FixedPivots, e.Rows, 100*e.Rate)
}

// checkBreakdown is the collective breakdown test run at the end of
// Factor when Options.MaxRepairRate > 0. It gathers (repaired pivots,
// rows, non-finite entries) from every processor — integer data, so the
// factors themselves stay bitwise untouched — and panics with a
// *BreakdownError on every rank when the global repair rate exceeds
// maxRate or any non-finite value is present.
func (pc *ProcPrecond) checkBreakdown(p pcomm.Comm, maxRate float64) {
	nonFinite := 0
	countRow := func(vals []float64) {
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				nonFinite++
			}
		}
	}
	for li := range pc.uVals {
		countRow(pc.lVals[li])
		countRow(pc.uVals[li])
		if math.IsNaN(pc.uDiag[li]) || math.IsInf(pc.uDiag[li], 0) {
			nonFinite++
		}
	}
	local := []int{pc.Stats.ILU.FixedPivot, len(pc.owned), nonFinite}
	var fixed, rows, bad int
	for _, part := range pcomm.AllGatherInts(p, local) {
		fixed += part[0]
		rows += part[1]
		bad += part[2]
	}
	if rows == 0 {
		return
	}
	rate := float64(fixed) / float64(rows)
	if bad > 0 || rate > maxRate {
		panic(&BreakdownError{FixedPivots: fixed, Rows: rows, Rate: rate, NonFinite: bad})
	}
}
