package core

import (
	"reflect"
	"testing"

	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/ilu"
	"repro/internal/machine"
	"repro/internal/matgen"
	"repro/internal/partition"
	"repro/internal/pcomm"
	"repro/internal/pcomm/modelled"
	"repro/internal/sparse"
	"repro/internal/trace"
)

// runTracedFactor factors a on P processors with a recorder attached and
// returns the pieces plus the recorded event stream. It pins the modelled
// backend: the tests below assert virtual-clock properties (identical
// makespans, identical traced timestamps) that a wall-clock backend cannot
// provide. Cross-backend equivalence of factors and stats is covered by
// the pcomm backend-equivalence tests instead.
func runTracedFactor(t *testing.T, a *sparse.CSR, P int, opt Options) ([]*ProcPrecond, []trace.Event, machine.Result) {
	t.Helper()
	g := graph.FromMatrix(a)
	part := partition.KWay(g, P, partition.Options{Seed: 17})
	lay, err := dist.NewLayout(a.N, P, part)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := NewPlan(a, lay)
	if err != nil {
		t.Fatal(err)
	}
	pcs := make([]*ProcPrecond, P)
	m := modelled.New(P, machine.T3D())
	rec := trace.NewRecorder(P)
	m.SetRecorder(rec)
	res := m.Run(func(p pcomm.Comm) {
		pcs[p.ID()] = Factor(p, plan, opt)
	})
	return pcs, rec.Events(), res
}

// TestFactorDeterministicTraced runs the same factorization twice and
// demands bitwise-identical factors, identical modelled times and an
// identical trace event sequence — virtual clocks included. The machine is
// simulated, so scheduling nondeterminism of the host must never leak into
// results (TestFactorDeterministic checks the gathered factors; this test
// additionally pins the per-processor storage and the observability layer).
func TestFactorDeterministicTraced(t *testing.T) {
	a := matgen.Grid2D(20, 20)
	opt := Options{Params: ilu.Params{M: 6, Tau: 1e-4, K: 2}, Seed: 3}
	const P = 4

	pcs1, ev1, res1 := runTracedFactor(t, a, P, opt)
	pcs2, ev2, res2 := runTracedFactor(t, a, P, opt)

	if res1.Elapsed != res2.Elapsed {
		t.Fatalf("modelled makespan differs across identical runs: %v vs %v", res1.Elapsed, res2.Elapsed)
	}
	for q := 0; q < P; q++ {
		p1, p2 := pcs1[q], pcs2[q]
		if !reflect.DeepEqual(p1.newOf, p2.newOf) {
			t.Fatalf("proc %d: elimination order differs", q)
		}
		if !reflect.DeepEqual(p1.lCols, p2.lCols) || !reflect.DeepEqual(p1.lVals, p2.lVals) {
			t.Fatalf("proc %d: L factor differs bitwise", q)
		}
		if !reflect.DeepEqual(p1.uCols, p2.uCols) || !reflect.DeepEqual(p1.uVals, p2.uVals) ||
			!reflect.DeepEqual(p1.uDiag, p2.uDiag) {
			t.Fatalf("proc %d: U factor differs bitwise", q)
		}
		if !reflect.DeepEqual(p1.Stats, p2.Stats) {
			t.Fatalf("proc %d: stats differ:\n%+v\n%+v", q, p1.Stats, p2.Stats)
		}
	}

	if len(ev1) != len(ev2) {
		t.Fatalf("trace length differs: %d vs %d events", len(ev1), len(ev2))
	}
	for i := range ev1 {
		if !reflect.DeepEqual(ev1[i], ev2[i]) {
			t.Fatalf("trace event %d differs:\n%+v\n%+v", i, ev1[i], ev2[i])
		}
	}
	if len(ev1) == 0 {
		t.Fatal("traced factorization recorded no events")
	}
}

// TestFactorLevelStats checks the per-level records against their global
// invariants: equal level structure on every processor, level sizes
// matching the published LevelInfo, local pivots summing to the level
// size, and — with ILUT* — reduced rows entering each level bounded by the
// k·m cap (plus the protected diagonal).
func TestFactorLevelStats(t *testing.T) {
	a := matgen.Grid2D(20, 20)
	const M, K = 6, 2
	opt := Options{Params: ilu.Params{M: M, Tau: 1e-4, K: K}, Seed: 3}
	const P = 4
	pcs, _, _ := runTracedFactor(t, a, P, opt)

	nlev := len(pcs[0].Stats.Levels)
	if nlev == 0 {
		t.Fatal("no phase-2 levels recorded")
	}
	if nlev != pcs[0].NumLevels() {
		t.Fatalf("Stats.Levels has %d entries, NumLevels=%d", nlev, pcs[0].NumLevels())
	}
	for q := 1; q < P; q++ {
		if len(pcs[q].Stats.Levels) != nlev {
			t.Fatalf("proc %d recorded %d levels, proc 0 recorded %d", q, len(pcs[q].Stats.Levels), nlev)
		}
	}

	sum := SummarizeLevels(pcs)
	for l, ls := range sum {
		info := pcs[0].Levels()[l]
		if ls.Start != info.Start || ls.Size != info.Size {
			t.Fatalf("level %d: summary (%d,%d) disagrees with LevelInfo (%d,%d)",
				l, ls.Start, ls.Size, info.Start, info.Size)
		}
		if ls.Pivots != ls.Size {
			t.Fatalf("level %d: local pivots sum to %d, level size is %d", l, ls.Pivots, ls.Size)
		}
		if ls.Rows == 0 {
			t.Fatalf("level %d: no rows entered the level", l)
		}
	}
	for q := 0; q < P; q++ {
		for l, ls := range pcs[q].Stats.Levels {
			if ls.ReducedNNZLocal > ls.RowsLocal*(K*M+1) {
				t.Fatalf("proc %d level %d: %d reduced entries in %d rows exceeds the k·m cap %d",
					q, l, ls.ReducedNNZLocal, ls.RowsLocal, ls.RowsLocal*(K*M+1))
			}
		}
	}
}
