package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/ilu"
	"repro/internal/machine"
	"repro/internal/matgen"
	"repro/internal/partition"
	"repro/internal/pcomm"
	"repro/internal/pcomm/pcommtest"
	"repro/internal/sparse"
)

// runFactor partitions a, factors it on P virtual processors and returns
// the per-processor pieces plus the machine result.
func runFactor(t *testing.T, a *sparse.CSR, P int, opt Options) ([]*ProcPrecond, *Plan, machine.Result) {
	t.Helper()
	g := graph.FromMatrix(a)
	part := partition.KWay(g, P, partition.Options{Seed: 17})
	lay, err := dist.NewLayout(a.N, P, part)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := NewPlan(a, lay)
	if err != nil {
		t.Fatal(err)
	}
	pcs := make([]*ProcPrecond, P)
	m := pcommtest.New(t, P, machine.T3D())
	res := m.Run(func(p pcomm.Comm) {
		pcs[p.ID()] = Factor(p, plan, opt)
	})
	return pcs, plan, res
}

func TestPlanClassification(t *testing.T) {
	a := matgen.Grid2D(8, 8)
	g := graph.FromMatrix(a)
	part := partition.KWay(g, 4, partition.Options{Seed: 1})
	lay, err := dist.NewLayout(a.N, 4, part)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := NewPlan(a, lay)
	if err != nil {
		t.Fatal(err)
	}
	if plan.TotInterior+plan.NInterface != a.N {
		t.Fatalf("interior %d + interface %d != %d", plan.TotInterior, plan.NInterface, a.N)
	}
	if plan.TotInterior == 0 {
		t.Fatal("no interior rows on an 8×8 grid with 4 parts")
	}
	// Every interior row must couple only to local rows.
	for i := 0; i < a.N; i++ {
		if !plan.Interior[i] {
			continue
		}
		cols, _ := a.Row(i)
		for _, j := range cols {
			if lay.PartOf[j] != lay.PartOf[i] {
				t.Fatalf("interior row %d couples to remote column %d", i, j)
			}
		}
	}
	// Interior new ids are a bijection onto [0, TotInterior).
	seen := make(map[int]bool)
	for i, nid := range plan.NewOfInterior {
		if plan.Interior[i] != (nid >= 0) {
			t.Fatalf("row %d: interior flag and new id disagree", i)
		}
		if nid >= 0 {
			if nid >= plan.TotInterior || seen[nid] {
				t.Fatalf("row %d: bad interior id %d", i, nid)
			}
			seen[nid] = true
		}
	}
}

func TestSingleProcessorEqualsSerialILUT(t *testing.T) {
	// With P=1 every row is interior and the parallel algorithm must
	// reduce to plain serial ILUT in natural order.
	a := matgen.RandomSPDPattern(50, 5, 2)
	opt := Options{Params: ilu.Params{M: 4, Tau: 1e-3}}
	pcs, _, _ := runFactor(t, a, 1, opt)
	f, perm, err := GatherFactors(pcs)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range perm {
		if p != i {
			t.Fatalf("P=1 permutation not identity at %d", i)
		}
	}
	want, _, err := ilu.ILUT(a, opt.Params)
	if err != nil {
		t.Fatal(err)
	}
	if d := sparse.MaxAbsDiff(f.L, want.L); d > 1e-12 {
		t.Errorf("L differs from serial ILUT by %v", d)
	}
	if d := sparse.MaxAbsDiff(f.U, want.U); d > 1e-12 {
		t.Errorf("U differs from serial ILUT by %v", d)
	}
}

func TestParallelCompleteLUExact(t *testing.T) {
	// With no dropping, the parallel factorization is the *complete* LU of
	// the permuted matrix: L·U must equal P·A·Pᵀ to round-off. This
	// exercises both phases end to end.
	a := matgen.Grid2D(7, 7)
	for _, P := range []int{2, 4} {
		pcs, _, _ := runFactor(t, a, P, Options{Params: ilu.Params{M: 0, Tau: 0}})
		f, perm, err := GatherFactors(pcs)
		if err != nil {
			t.Fatal(err)
		}
		pap := a.Permute(perm)
		lu := f.Product()
		if d := sparse.MaxAbsDiff(lu, pap); d > 1e-8 {
			t.Errorf("P=%d: ‖LU − PAPᵀ‖∞ = %v", P, d)
		}
		if err := f.CheckStructure(); err != nil {
			t.Errorf("P=%d: %v", P, err)
		}
	}
}

func TestParallelCompleteLUExactNonsymmetric(t *testing.T) {
	a := matgen.ConvDiff2D(7, 7, 9, -4)
	pcs, _, _ := runFactor(t, a, 3, Options{Params: ilu.Params{M: 0, Tau: 0}})
	f, perm, err := GatherFactors(pcs)
	if err != nil {
		t.Fatal(err)
	}
	pap := a.Permute(perm)
	if d := sparse.MaxAbsDiff(f.Product(), pap); d > 1e-5*sparse.NormInf(pap.Vals) {
		t.Errorf("‖LU − PAPᵀ‖∞ = %v", d)
	}
}

func TestFactorizationInvariants(t *testing.T) {
	a := matgen.Torso(6, 6, 6, 5)
	for _, P := range []int{2, 4, 8} {
		opt := Options{Params: ilu.Params{M: 5, Tau: 1e-4, K: 2}}
		pcs, plan, _ := runFactor(t, a, P, opt)
		f, perm, err := GatherFactors(pcs)
		if err != nil {
			t.Fatalf("P=%d: %v", P, err)
		}
		if err := f.CheckStructure(); err != nil {
			t.Fatalf("P=%d: %v", P, err)
		}
		sparse.InversePermutation(perm) // validity check
		// Interior unknowns come first in the elimination order.
		for i := 0; i < a.N; i++ {
			if plan.Interior[i] && perm[i] >= plan.TotInterior {
				t.Fatalf("P=%d: interior row %d ordered into the interface range", P, i)
			}
			if !plan.Interior[i] && perm[i] < plan.TotInterior {
				t.Fatalf("P=%d: interface row %d ordered into the interior range", P, i)
			}
		}
		// Levels cover the interface exactly.
		covered := 0
		for _, l := range pcs[0].Levels() {
			if l.Start != plan.TotInterior+covered {
				t.Fatalf("P=%d: level starts at %d, want %d", P, l.Start, plan.TotInterior+covered)
			}
			covered += l.Size
		}
		if covered != plan.NInterface {
			t.Fatalf("P=%d: levels cover %d of %d interface rows", P, covered, plan.NInterface)
		}
		// Fill caps respected (M per row in L; M+diag in U).
		for i := 0; i < a.N; i++ {
			if f.L.RowNNZ(i) > opt.Params.M {
				t.Fatalf("P=%d: L row %d has %d > M entries", P, i, f.L.RowNNZ(i))
			}
			if f.U.RowNNZ(i) > opt.Params.M+1 {
				t.Fatalf("P=%d: U row %d has %d > M+1 entries", P, i, f.U.RowNNZ(i))
			}
		}
	}
}

func TestLevelsAreIndependentSets(t *testing.T) {
	// Reconstruct the permuted matrix's factor structure and verify the
	// defining property: within a level, no two unknowns are coupled
	// through L or U (the factorization's own fill included).
	a := matgen.Torso(5, 5, 5, 7)
	P := 4
	pcs, plan, _ := runFactor(t, a, P, Options{Params: ilu.Params{M: 8, Tau: 1e-6}})
	f, _, err := GatherFactors(pcs)
	if err != nil {
		t.Fatal(err)
	}
	levelOf := make([]int, a.N)
	for i := range levelOf {
		levelOf[i] = -1
	}
	for l, info := range pcs[0].Levels() {
		for nid := info.Start; nid < info.Start+info.Size; nid++ {
			levelOf[nid] = l
		}
	}
	check := func(m *sparse.CSR, name string) {
		for i := plan.TotInterior; i < a.N; i++ {
			cols, _ := m.Row(i)
			for _, j := range cols {
				if j != i && j >= plan.TotInterior && levelOf[i] == levelOf[j] {
					t.Fatalf("%s couples unknowns %d and %d of level %d", name, i, j, levelOf[i])
				}
			}
		}
	}
	check(f.L, "L")
	check(f.U, "U")
}

func TestILUTStarReducesLevels(t *testing.T) {
	// The paper's headline claim: the K·M cap on reduced rows shrinks the
	// number of independent sets for small thresholds.
	a := matgen.Torso(8, 8, 8, 3)
	P := 8
	plain, _, _ := runFactor(t, a, P, Options{Params: ilu.Params{M: 10, Tau: 1e-6, K: 0}})
	star, _, _ := runFactor(t, a, P, Options{Params: ilu.Params{M: 10, Tau: 1e-6, K: 2}})
	qPlain := plain[0].NumLevels()
	qStar := star[0].NumLevels()
	if qStar > qPlain {
		t.Errorf("ILUT* used more levels (%d) than ILUT (%d)", qStar, qPlain)
	}
	t.Logf("levels: ILUT=%d ILUT*=%d", qPlain, qStar)
}

func TestSolveInvertsDistributedFactors(t *testing.T) {
	a := matgen.Grid2D(10, 10)
	n := a.N
	for _, P := range []int{1, 2, 4, 6} {
		g := graph.FromMatrix(a)
		part := partition.KWay(g, P, partition.Options{Seed: 3})
		lay, err := dist.NewLayout(n, P, part)
		if err != nil {
			t.Fatal(err)
		}
		plan, err := NewPlan(a, lay)
		if err != nil {
			t.Fatal(err)
		}
		pcs := make([]*ProcPrecond, P)
		bParts := make([][]float64, P)
		yParts := make([][]float64, P)

		// Global reference: gather factors, apply serial solve.
		m := pcommtest.New(t, P, machine.T3D())
		rng := rand.New(rand.NewSource(8))
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		m.Run(func(p pcomm.Comm) {
			pcs[p.ID()] = Factor(p, plan, Options{Params: ilu.Params{M: 6, Tau: 1e-4}})
		})
		f, perm, err := GatherFactors(pcs)
		if err != nil {
			t.Fatal(err)
		}
		// Serial: solve on permuted system. Local b vectors are in
		// original row order; permute reference to match.
		bPerm := sparse.PermuteVec(b, perm)
		want := make([]float64, n)
		f.Solve(want, bPerm)
		wantOrig := make([]float64, n)
		for i := 0; i < n; i++ {
			wantOrig[i] = want[perm[i]]
		}

		for q := 0; q < P; q++ {
			bParts[q] = make([]float64, lay.NLocal(q))
			for k, gI := range lay.Rows[q] {
				bParts[q][k] = b[gI]
			}
			yParts[q] = make([]float64, lay.NLocal(q))
		}
		m2 := pcommtest.New(t, P, machine.T3D())
		m2.Run(func(p pcomm.Comm) {
			pcs[p.ID()].Solve(p, yParts[p.ID()], bParts[p.ID()])
		})
		got := lay.Gather(yParts)
		for i := 0; i < n; i++ {
			if math.Abs(got[i]-wantOrig[i]) > 1e-9*math.Max(1, math.Abs(wantOrig[i])) {
				t.Fatalf("P=%d: solve mismatch at %d: %v vs %v", P, i, got[i], wantOrig[i])
			}
		}
	}
}

func TestPreconditionerReducesResidual(t *testing.T) {
	a := matgen.Torso(6, 6, 6, 9)
	n := a.N
	P := 4
	g := graph.FromMatrix(a)
	part := partition.KWay(g, P, partition.Options{Seed: 5})
	lay, _ := dist.NewLayout(n, P, part)
	plan, _ := NewPlan(a, lay)
	pcs := make([]*ProcPrecond, P)
	m := pcommtest.New(t, P, machine.T3D())
	m.Run(func(p pcomm.Comm) {
		pcs[p.ID()] = Factor(p, plan, Options{Params: ilu.Params{M: 10, Tau: 1e-4, K: 2}})
	})
	b := sparse.Ones(n)
	bParts := lay.Scatter(b)
	xParts := make([][]float64, P)
	for q := range xParts {
		xParts[q] = make([]float64, lay.NLocal(q))
	}
	m2 := pcommtest.New(t, P, machine.T3D())
	m2.Run(func(p pcomm.Comm) {
		pcs[p.ID()].Solve(p, xParts[p.ID()], bParts[p.ID()])
	})
	x := lay.Gather(xParts)
	r := make([]float64, n)
	a.MulVec(r, x)
	for i := range r {
		r[i] = b[i] - r[i]
	}
	if rel := sparse.Norm2(r) / sparse.Norm2(b); rel > 0.6 {
		t.Errorf("preconditioned step leaves relative residual %v", rel)
	}
}

func TestFactorStats(t *testing.T) {
	a := matgen.Grid2D(12, 12)
	pcs, plan, res := runFactor(t, a, 4, Options{Params: ilu.Params{M: 5, Tau: 1e-4}})
	if res.Elapsed <= 0 {
		t.Error("no modelled time elapsed")
	}
	if res.TotalFlops() <= 0 {
		t.Error("no flops recorded on the machine")
	}
	totInt := 0
	for _, pc := range pcs {
		totInt += pc.Stats.NInterior
		if pc.Stats.NumLevels != pcs[0].Stats.NumLevels {
			t.Error("processors disagree on level count")
		}
	}
	if totInt != plan.TotInterior {
		t.Errorf("interior counts sum to %d, want %d", totInt, plan.TotInterior)
	}
}

func TestFactorDeterministic(t *testing.T) {
	a := matgen.Grid2D(9, 9)
	opt := Options{Params: ilu.Params{M: 4, Tau: 1e-3}, Seed: 2}
	p1, _, _ := runFactor(t, a, 4, opt)
	p2, _, _ := runFactor(t, a, 4, opt)
	f1, perm1, _ := GatherFactors(p1)
	f2, perm2, _ := GatherFactors(p2)
	for i := range perm1 {
		if perm1[i] != perm2[i] {
			t.Fatal("permutation not deterministic")
		}
	}
	if !f1.L.Equal(f2.L) || !f1.U.Equal(f2.U) {
		t.Fatal("factors not deterministic")
	}
}

// TestStaticColoringInvalidatedByFill reproduces the paper's Figure 1: a
// colouring of the interface rows computed from the *static* pattern of A
// (valid for ILU(0)) is no longer an elimination schedule once ILUT's
// fill adds dependencies — two same-colour unknowns end up coupled
// through the factors.
func TestStaticColoringInvalidatedByFill(t *testing.T) {
	a := matgen.Torso(7, 7, 7, 6)
	P := 6
	g := graph.FromMatrix(a)
	part := partition.KWay(g, P, partition.Options{Seed: 17})
	lay, err := dist.NewLayout(a.N, P, part)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := NewPlan(a, lay)
	if err != nil {
		t.Fatal(err)
	}

	// Static colouring of the interface sub-graph of A.
	iface := make([]int, 0, plan.NInterface)
	ifaceIdx := make(map[int]int)
	for i := 0; i < a.N; i++ {
		if !plan.Interior[i] {
			ifaceIdx[i] = len(iface)
			iface = append(iface, i)
		}
	}
	sub := sparse.NewBuilder(len(iface), len(iface))
	for k, i := range iface {
		sub.Add(k, k, 1)
		cols, _ := a.Row(i)
		for _, j := range cols {
			if kj, ok := ifaceIdx[j]; ok && kj != k {
				sub.Add(k, kj, 1)
			}
		}
	}
	ifaceGraph := graph.FromMatrix(sub.Build())
	color, nc := ifaceGraph.GreedyColoring(nil)
	if !ifaceGraph.ValidateColoring(color) {
		t.Fatal("static coloring invalid on the static pattern")
	}
	t.Logf("static interface coloring: %d colors for %d rows", nc, len(iface))

	// Factor with a permissive ILUT and examine the dependencies the
	// factors actually created among interface unknowns.
	pcs := make([]*ProcPrecond, P)
	m := pcommtest.New(t, P, machine.T3D())
	m.Run(func(p pcomm.Comm) {
		pcs[p.ID()] = Factor(p, plan, Options{Params: ilu.Params{M: 20, Tau: 1e-8}})
	})
	f, perm, err := GatherFactors(pcs)
	if err != nil {
		t.Fatal(err)
	}
	inv := sparse.InversePermutation(perm)
	conflicts := 0
	for nid := plan.TotInterior; nid < a.N; nid++ {
		iOrig := inv[nid]
		scan := func(msp *sparse.CSR) {
			cols, _ := msp.Row(nid)
			for _, c := range cols {
				if c < plan.TotInterior || c == nid {
					continue
				}
				jOrig := inv[c]
				if color[ifaceIdx[iOrig]] == color[ifaceIdx[jOrig]] {
					conflicts++
				}
			}
		}
		scan(f.L)
		scan(f.U)
	}
	if conflicts == 0 {
		t.Error("expected ILUT fill to create same-colour dependencies (Figure 1b); found none")
	} else {
		t.Logf("fill created %d same-colour dependencies — the static schedule is invalid for ILUT", conflicts)
	}
}
