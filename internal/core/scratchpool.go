package core

import (
	"sync"

	"repro/internal/ilu"
)

// The factorization scratch pool: a mutex-guarded free list rather than a
// sync.Pool, deliberately (DESIGN.md §13). A sync.Pool may drop its
// contents at any GC and keeps per-P shards we can neither enumerate nor
// poison; the free list retains scratches across factorizations — the
// whole point of amortizing their high-water-mark growth — and gives the
// scratch-poisoning property tests a hook that reaches every pooled
// scratch deterministically. Factor/FactorILU0 take a scratch per call,
// so the list's size tracks the peak number of concurrent factorizations
// (one per in-process rank), capped to keep a burst from pinning memory.
const maxPooledScratches = 64

var scratchPool struct {
	mu   sync.Mutex
	free []*ilu.Scratch
}

// getScratch returns a pooled scratch grown to cover n positions, or a
// fresh one when the pool is empty.
func getScratch(n int) *ilu.Scratch {
	scratchPool.mu.Lock()
	var s *ilu.Scratch
	if k := len(scratchPool.free); k > 0 {
		s = scratchPool.free[k-1]
		scratchPool.free[k-1] = nil
		scratchPool.free = scratchPool.free[:k-1]
	}
	scratchPool.mu.Unlock()
	if s == nil {
		return ilu.NewScratch(n)
	}
	s.Grow(n)
	return s
}

// putScratch returns a scratch to the pool. It sanitizes unconditionally
// — a factorization can leave mid-kernel state behind when it panics
// (breakdown detection, fault injection) — and detaches the output arena,
// whose carved rows the ProcPrecond now owns.
func putScratch(s *ilu.Scratch) {
	s.Sanitize()
	s.DetachOutputs()
	scratchPool.mu.Lock()
	if len(scratchPool.free) < maxPooledScratches {
		scratchPool.free = append(scratchPool.free, s)
	}
	scratchPool.mu.Unlock()
}

// PoisonPooledScratches overwrites the reusable spare capacity of every
// pooled scratch with NaN/sentinel garbage (and panics if any pooled
// scratch still holds live state). The scratch-poisoning property tests
// call it between factorizations: if any kernel reads state it should
// have written first, the poison surfaces as a bitwise run-to-run
// difference instead of a silent wrong-but-plausible factor.
func PoisonPooledScratches() {
	scratchPool.mu.Lock()
	defer scratchPool.mu.Unlock()
	for _, s := range scratchPool.free {
		s.Poison()
	}
}
