package core

import (
	"math"
	"testing"

	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/ilu"
	"repro/internal/machine"
	"repro/internal/matgen"
	"repro/internal/partition"
	"repro/internal/pcomm"
	"repro/internal/pcomm/pcommtest"
	"repro/internal/sparse"
)

// runFactorSchur mirrors runFactor with the §7 variant enabled.
func runFactorSchur(t *testing.T, a *sparse.CSR, P int, params ilu.Params) ([]*ProcPrecond, *Plan) {
	t.Helper()
	g := graph.FromMatrix(a)
	part := partition.KWay(g, P, partition.Options{Seed: 17})
	lay, err := dist.NewLayout(a.N, P, part)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := NewPlan(a, lay)
	if err != nil {
		t.Fatal(err)
	}
	pcs := make([]*ProcPrecond, P)
	m := pcommtest.New(t, P, machine.T3D())
	m.Run(func(p pcomm.Comm) {
		pcs[p.ID()] = Factor(p, plan, Options{Params: params, Schur: true})
	})
	return pcs, plan
}

func TestSchurCompleteLUExact(t *testing.T) {
	a := matgen.Grid2D(7, 7)
	for _, P := range []int{2, 4} {
		pcs, _ := runFactorSchur(t, a, P, ilu.Params{M: 0, Tau: 0})
		f, perm, err := GatherFactors(pcs)
		if err != nil {
			t.Fatal(err)
		}
		pap := a.Permute(perm)
		if d := sparse.MaxAbsDiff(f.Product(), pap); d > 1e-8 {
			t.Errorf("P=%d: ‖LU − PAPᵀ‖∞ = %v", P, d)
		}
		if err := f.CheckStructure(); err != nil {
			t.Errorf("P=%d: %v", P, err)
		}
	}
}

func TestSchurSolveMatchesGatheredFactors(t *testing.T) {
	a := matgen.Torso(6, 6, 6, 3)
	n := a.N
	P := 4
	pcs, plan := runFactorSchur(t, a, P, ilu.Params{M: 8, Tau: 1e-4, K: 2})
	lay := plan.Lay
	f, perm, err := GatherFactors(pcs)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = math.Sin(float64(i) * 0.7)
	}
	bPerm := sparse.PermuteVec(b, perm)
	want := make([]float64, n)
	f.Solve(want, bPerm)
	wantOrig := make([]float64, n)
	for i := 0; i < n; i++ {
		wantOrig[i] = want[perm[i]]
	}
	bParts := lay.Scatter(b)
	yParts := make([][]float64, P)
	m := pcommtest.New(t, P, machine.T3D())
	m.Run(func(p pcomm.Comm) {
		y := make([]float64, lay.NLocal(p.ID()))
		pcs[p.ID()].Solve(p, y, bParts[p.ID()])
		yParts[p.ID()] = y
	})
	got := lay.Gather(yParts)
	for i := range got {
		if math.Abs(got[i]-wantOrig[i]) > 1e-9*math.Max(1, math.Abs(wantOrig[i])) {
			t.Fatalf("solve mismatch at %d: %v vs %v", i, got[i], wantOrig[i])
		}
	}
}

func TestSchurReducesLevelsVsMIS(t *testing.T) {
	a := matgen.Torso(8, 8, 8, 3)
	P := 8
	params := ilu.Params{M: 10, Tau: 1e-6, K: 2}

	pcsS, _ := runFactorSchur(t, a, P, params)
	pcsM, _, _ := runFactor(t, a, P, Options{Params: params})
	qS := pcsS[0].NumLevels()
	qM := pcsM[0].NumLevels()
	t.Logf("levels: schur=%d mis-only=%d", qS, qM)
	if qS > qM {
		t.Errorf("schur variant used more levels (%d) than MIS-only (%d)", qS, qM)
	}
}

func TestSchurLevelsCoverInterface(t *testing.T) {
	a := matgen.Grid2D(12, 12)
	pcs, plan := runFactorSchur(t, a, 4, ilu.Params{M: 5, Tau: 1e-4})
	covered := 0
	for _, l := range pcs[0].Levels() {
		if l.Start != plan.TotInterior+covered {
			t.Fatalf("level starts at %d, want %d", l.Start, plan.TotInterior+covered)
		}
		covered += l.Size
	}
	if covered != plan.NInterface {
		t.Fatalf("levels cover %d of %d interface rows", covered, plan.NInterface)
	}
}

func TestSchurDeterministic(t *testing.T) {
	a := matgen.Grid2D(9, 9)
	p1, _ := runFactorSchur(t, a, 4, ilu.Params{M: 4, Tau: 1e-3})
	p2, _ := runFactorSchur(t, a, 4, ilu.Params{M: 4, Tau: 1e-3})
	f1, perm1, _ := GatherFactors(p1)
	f2, perm2, _ := GatherFactors(p2)
	for i := range perm1 {
		if perm1[i] != perm2[i] {
			t.Fatal("permutation not deterministic")
		}
	}
	if !f1.L.Equal(f2.L) || !f1.U.Equal(f2.U) {
		t.Fatal("factors not deterministic")
	}
}
