package core

import (
	"fmt"
	"sort"

	"repro/internal/ilu"
	"repro/internal/mis"
	"repro/internal/pcomm"
	"repro/internal/trace"
)

// Message tags used by this package.
const (
	tagPivotRows = 9301
)

// Options configure a parallel factorization.
type Options struct {
	// Params carries M (fill per row), Tau (threshold) and K: K > 0
	// selects ILUT*(M, Tau, K); K ≤ 0 selects plain parallel ILUT(M, Tau).
	Params ilu.Params
	// MISRounds bounds the Luby augmentation rounds per level (default 5,
	// the paper's choice).
	MISRounds int
	// Seed drives the independent-set randomness.
	Seed int64
	// MaxRepairRate, when positive, arms collective numerical-breakdown
	// detection at the end of Factor: if the global fraction of pivots
	// that needed floor repairs exceeds it, or any non-finite value
	// reached the factors, every processor panics with the same
	// *BreakdownError (the decision inputs are AllGathered integers, so
	// the check never perturbs a floating-point result). The service's
	// recovery ladder catches it through pcomm.Guard. Zero — the default
	// — disables the check.
	MaxRepairRate float64
	// Schur enables the paper's §7 future-work variant: before each
	// independent-set level, every processor factors — sequentially and
	// with no synchronization — the interface rows that currently couple
	// only to its own rows (a partition-extracted block of the reduced
	// matrix). Independent sets then handle only the genuinely coupled
	// remainder, shrinking q further.
	Schur bool
}

// LevelInfo describes one independent set in the elimination order.
type LevelInfo struct {
	Start int // first new id of the level
	Size  int // number of unknowns in the level (global)
}

// LevelStats records one phase-2 level as seen from one processor: the
// global level shape plus local work counters. The slice of LevelStats has
// the same length on every processor (the level loop is collective), so
// aggregating across processors with SummarizeLevels yields the global
// per-level picture the paper's Tables 2–4 are built from. Recording is a
// handful of integer stores per level and happens whether or not a trace
// recorder is attached.
type LevelStats struct {
	Start           int // first new id of the level (global)
	Size            int // global unknowns eliminated at the level
	PivotsLocal     int // pivots this processor factored
	RowsLocal       int // local unfactored rows entering the level
	ReducedNNZLocal int // local reduced-matrix entries entering the level
	DroppedLocal    int // local entries dropped during the level (all rules)
}

// Stats reports what the factorization did on one processor, plus the
// shared level structure.
type Stats struct {
	ILU           ilu.Stats
	NumLevels     int // q: independent sets used for the interface
	NInterface    int // global interface unknowns
	NInterior     int // local interior unknowns
	ReducedNNZ0   int // local reduced-matrix entries entering phase 2
	CopiedEntries int // reduced-matrix entries copied across levels

	// Levels holds one record per phase-2 independent-set level.
	Levels []LevelStats
	// Modelled seconds per phase on this processor's virtual clock:
	// interior factorization (1a), interior elimination from interface
	// rows (1b), and the level-by-level interface factorization (2).
	Phase1InteriorSeconds  float64
	Phase1InterfaceSeconds float64
	Phase2Seconds          float64
}

// ProcPrecond is one processor's piece of the distributed preconditioner:
// the L/U rows of its owned unknowns in final elimination-order indices,
// plus the level structure that drives the triangular solves.
type ProcPrecond struct {
	plan *Plan
	me   int

	owned []int // global rows, increasing (== Lay.Rows[me])
	newOf []int // final new id per owned row

	lCols [][]int
	lVals [][]float64
	uCols [][]int // diagonal NOT included; strictly-upper in new ids
	uVals [][]float64
	uDiag []float64

	interiorLocal []int // local indices of interior rows, ascending new id
	levels        []LevelInfo
	levelMembers  [][]int // per level: local indices, ascending new id

	// solve buffers, reused across applications
	xInt   []float64
	xIface []float64

	Stats Stats
}

// Factor runs the two-phase parallel ILUT/ILUT* factorization from
// scratch-built preprocessing: it is the composition Analyze + Bind +
// numeric kernels, kept as the entry point for one-off factorizations.
// It is an SPMD collective: every processor of the machine must call it
// with the same plan and options. The returned piece belongs to the
// calling processor.
func Factor(p pcomm.Comm, plan *Plan, opt Options) *ProcPrecond {
	return Refactor(p, plan, opt)
}

// Refactor runs ONLY the numeric phase of the factorization: the
// value-dependent ILUT/Schur kernels against a prebuilt symbolic
// analysis. The plan is a Symbolic (pattern-only, typically reused
// across a matrix sequence) bound to the current value set via
// Symbolic.Bind — so "refactor for new values" is spelled
//
//	plan, err := sym.Bind(a2)        // cheap: row norms + pattern guard
//	pc := core.Refactor(p, plan, opt)
//
// The MIS level schedule is recomputed here, not read from the symbolic
// artifact: the reduced matrix's adjacency depends on threshold dropping
// and therefore on the values, and the schedule is interleaved with the
// elimination level by level. That choice is what keeps Refactor on a
// rebound plan bitwise identical to a one-shot Factor on the same
// values (see DESIGN.md §14). Like Factor it is an SPMD collective.
func Refactor(p pcomm.Comm, plan *Plan, opt Options) *ProcPrecond {
	if opt.MISRounds <= 0 {
		opt.MISRounds = mis.DefaultRounds
	}
	par := opt.Params
	n := plan.A.N
	lay := plan.Lay
	me := p.ID()

	pc := &ProcPrecond{
		plan:  plan,
		me:    me,
		owned: lay.Rows[me],
	}
	nLocal := len(pc.owned)
	pc.newOf = make([]int, nLocal)
	pc.lCols = make([][]int, nLocal)
	pc.lVals = make([][]float64, nLocal)
	pc.uCols = make([][]int, nLocal)
	pc.uVals = make([][]float64, nLocal)
	pc.uDiag = make([]float64, nLocal)
	pc.Stats.NInterface = plan.NInterface
	pc.Stats.NInterior = plan.NIntLocal[me]

	localIdx := make(map[int]int, nLocal)
	for li, g := range pc.owned {
		localIdx[g] = li
	}
	// enc maps a global column to the combined index space.
	enc := func(j int) int {
		if nid := plan.NewOfInterior[j]; nid >= 0 {
			return nid
		}
		return n + j
	}

	st := &pc.Stats.ILU
	// The scratch comes from the per-process pool: after the first few
	// factorizations every kernel call runs allocation-free, and the
	// factored rows themselves are carved from the scratch's output arena
	// (detached to the ProcPrecond when the scratch is returned).
	s := getScratch(2 * n)
	defer putScratch(s)
	intBase := plan.IntBase[me]
	nInt := plan.NIntLocal[me]

	// Charge the virtual clock for local work accumulated since the last
	// synchronization point; copied reduced-matrix entries count too (the
	// paper identifies this copying as a main ILUT overhead). Charging at
	// phase boundaries instead of one deferred lump does not change any
	// arrival time — no communication happens between charges — but it
	// makes the phase spans below reflect modelled durations.
	var flopsCharged float64
	charge := func() {
		pending := pc.Stats.ILU.Flops + float64(pc.Stats.CopiedEntries) - flopsCharged
		if pending > 0 {
			p.Work(pending)
			flopsCharged += pending
		}
	}
	tr := p.Tracer()
	tStart := p.Time()

	// ---- Phase 1a: factor the interior rows (local ILUT) ---------------
	// localU[nid-intBase] is the U row of interior pivot nid, kernel form.
	// A value slice, not []*URow: storing a pivot is a copy into
	// preallocated memory instead of a per-row heap escape, and the looked-
	// up pointers stay valid because the slice is never regrown.
	localU := make([]ilu.URow, nInt)
	localUSet := make([]bool, nInt)
	pivotLookup := func(k int) *ilu.URow {
		if !localUSet[k-intBase] {
			return nil
		}
		return &localU[k-intBase]
	}
	encCols := make([]int, 0, 64)
	encVals := make([]float64, 0, 64)
	for _, g := range pc.owned {
		if !plan.Interior[g] {
			continue
		}
		li := localIdx[g]
		myNew := plan.NewOfInterior[g]
		pc.newOf[li] = myNew
		pc.interiorLocal = append(pc.interiorLocal, li)
		tau := par.Tau * plan.RowTau[g]

		cols, vals := plan.A.Row(g)
		encCols = encCols[:0]
		encVals = encVals[:0]
		for k, j := range cols {
			encCols = append(encCols, enc(j))
			encVals = append(encVals, vals[k])
		}
		sortPair(encCols, encVals)

		// The interior block is sequential: use the heap-driven kernel
		// with the pivot range covering my already-factored interiors.
		lC, lV, rC, rV := s.EliminateRowSeq(myNew, encCols, encVals,
			pivotLookup, intBase, myNew, tau, par.M, 0, st)
		// For an interior row the "reduced" part is its U row: everything
		// at or after the diagonal in elimination order, i.e. combined
		// indices ≥ myNew. EliminateRowSeq split at myNew, so rC holds
		// diag + later interiors + interface columns. Cap it to M like the
		// standard 2nd dropping rule (diagonal excluded from the cap).
		urow, err := s.FactorPivotRow(myNew, rC, rV, tau, par.M, par.PivotPerturb, st)
		if err != nil {
			panic(err)
		}
		localU[myNew-intBase] = urow
		localUSet[myNew-intBase] = true
		pc.lCols[li], pc.lVals[li] = lC, lV
		pc.uCols[li], pc.uVals[li] = urow.Cols, urow.Vals
		pc.uDiag[li] = urow.Diag
	}
	// Phase 1 is embarrassingly parallel; account the local work and move
	// on — no synchronization is needed until the interface phase.
	charge()
	tInterior := p.Time()
	pc.Stats.Phase1InteriorSeconds = tInterior - tStart
	if tr.Enabled() {
		tr.Span("factor", "phase1.interior", tStart, tInterior,
			trace.I("rows", nInt), trace.F("flops", st.Flops))
	}

	// ---- Phase 1b: eliminate interior unknowns from interface rows -----
	reduced := make([]redRow, nLocal)
	var remaining []int // local indices of unfactored interface rows
	for _, g := range pc.owned {
		if plan.Interior[g] {
			continue
		}
		li := localIdx[g]
		tau := par.Tau * plan.RowTau[g]
		cols, vals := plan.A.Row(g)
		encCols = encCols[:0]
		encVals = encVals[:0]
		for k, j := range cols {
			encCols = append(encCols, enc(j))
			encVals = append(encVals, vals[k])
		}
		sortPair(encCols, encVals)
		lC, lV, rC, rV := s.EliminateRowSeq(n+g, encCols, encVals,
			pivotLookup, intBase, intBase+nInt, tau, par.M, par.K, st)
		pc.lCols[li], pc.lVals[li] = lC, lV
		reduced[li] = redRow{rC, rV}
		remaining = append(remaining, li)
		pc.Stats.ReducedNNZ0 += len(rC)
	}

	charge()
	tIface := p.Time()
	pc.Stats.Phase1InterfaceSeconds = tIface - tInterior
	if tr.Enabled() {
		tr.Span("factor", "phase1.interface-elim", tInterior, tIface,
			trace.I("rows", len(remaining)), trace.I("reduced_nnz", pc.Stats.ReducedNNZ0))
	}

	// ---- Phase 2: level-by-level interface factorization ---------------
	nl := plan.TotInterior
	ownerOf := func(g int) int { return lay.PartOf[g] }
	// My factored interface pivots, by local index: value storage with a
	// presence mask, so storing a pivot never heap-escapes and &uF[li]
	// stays valid for the level's pivot lookups.
	uF := make([]ilu.URow, nLocal)
	uFSet := make([]bool, nLocal)
	// Per-level structures, allocated once and recycled each level: the
	// adjacency of the reduced matrix as one flat buffer plus offsets, the
	// id-translation buffer, and the two pivot maps (cleared, not remade —
	// their buckets are reused, so steady-state inserts don't allocate).
	var (
		ownedIDs []int
		adj      [][]int
		adjFlat  []int
		adjOff   []int
		tBuf     []int
	)
	levelNew := make(map[int]int)
	pivotByNew := make(map[int]*ilu.URow)
	pivotGet := func(k int) *ilu.URow { return pivotByNew[k] }

	for {
		charge()
		levelT0 := p.Time()
		droppedIn := st.Dropped

		if opt.Schur {
			var factored bool
			remaining, factored = pc.schurBlockRound(p, s, remaining, reduced, &nl, uF, uFSet, par, st)
			if factored {
				continue
			}
		}

		// Adjacency of the current reduced matrix (original ids, with all
		// fill included — the paper's dynamic dependency structure). Built
		// in the recycled flat buffer: neighbour lists are slices of
		// adjFlat cut at the recorded offsets, so a level's adjacency costs
		// no allocation once the buffers have grown to the high-water mark.
		// DistributedPlan does not retain adj past its return.
		rowsIn := len(remaining)
		nnzIn := 0
		ownedIDs = ownedIDs[:0]
		adjFlat = adjFlat[:0]
		adjOff = adjOff[:0]
		for _, li := range remaining {
			g := pc.owned[li]
			ownedIDs = append(ownedIDs, g)
			nnzIn += len(reduced[li].cols)
			adjOff = append(adjOff, len(adjFlat))
			for _, c := range reduced[li].cols {
				if o := c - n; o != g {
					adjFlat = append(adjFlat, o)
				}
			}
		}
		adjOff = append(adjOff, len(adjFlat))
		adj = adj[:0]
		for k := range remaining {
			adj = append(adj, adjFlat[adjOff[k]:adjOff[k+1]:adjOff[k+1]])
		}
		sel, ex := mis.DistributedPlan(p, ownedIDs, adj, nil, ownerOf,
			opt.MISRounds, opt.Seed+int64(len(pc.levels))*7919)
		if ex.GlobalActive == 0 {
			break
		}

		// Assign the level's new ids: members are ordered by (processor,
		// local order), so a single counts exchange fixes every rank.
		mineCount := 0
		for k := range remaining {
			if sel[k] {
				mineCount++
			}
		}
		counts := pcomm.AllGatherInts(p, []int{mineCount})
		levelSize := 0
		myOffset := nl
		for q := 0; q < lay.P; q++ {
			if q < me {
				myOffset += counts[q][0]
			}
			levelSize += counts[q][0]
		}
		nl1 := nl + levelSize
		pc.levels = append(pc.levels, LevelInfo{Start: nl, Size: levelSize})

		// Factor my pivots: only their U rows are created (independent
		// rows need no elimination), 2nd dropping rule applied.
		// levelNew maps original id → new id for the pivots this
		// processor can see (its own plus every pushed row).
		clear(levelNew)
		clear(pivotByNew)
		var members []int
		rank := 0
		for k, li := range remaining {
			if !sel[k] {
				continue
			}
			g := pc.owned[li]
			tau := par.Tau * plan.RowTau[g]
			urow, err := s.FactorPivotRow(n+g, reduced[li].cols, reduced[li].vals, tau, par.M, par.PivotPerturb, st)
			if err != nil {
				panic(err)
			}
			urow.Col = myOffset + rank
			urow.Orig = g
			rank++
			uF[li] = urow
			uFSet[li] = true
			levelNew[g] = urow.Col
			pivotByNew[urow.Col] = &uF[li]
			pc.newOf[li] = urow.Col
			pc.uCols[li], pc.uVals[li] = urow.Cols, urow.Vals
			pc.uDiag[li] = urow.Diag
			reduced[li] = redRow{}
			members = append(members, li)
		}
		sort.Slice(members, func(a, b int) bool { return pc.newOf[members[a]] < pc.newOf[members[b]] })
		pc.levelMembers = append(pc.levelMembers, members)

		// Push pivot rows along the MIS exchange plan: the processors
		// that requested a vertex's MIS state are exactly those whose
		// rows reference it, so the communication can be posted before
		// any elimination (§4 of the paper).
		for q := 0; q < lay.P; q++ {
			if q == me || len(ex.NeedBy[q]) == 0 {
				continue
			}
			var rows []ilu.URow
			for _, k := range ex.NeedBy[q] {
				if !sel[k] {
					continue
				}
				rows = append(rows, uF[remaining[k]])
			}
			p.Send(q, tagPivotRows, rows, ilu.BytesOfURows(rows))
		}
		for q := 0; q < lay.P; q++ {
			if q == me || len(ex.ReqFrom[q]) == 0 {
				continue
			}
			rows := p.Recv(q, tagPivotRows).([]ilu.URow)
			for k := range rows {
				levelNew[rows[k].Orig] = rows[k].Col
				pivotByNew[rows[k].Col] = &rows[k]
			}
		}

		// Eliminate the level's unknowns from my remaining rows
		// (Algorithm 2; single sweep thanks to independence).
		var next []int
		for k, li := range remaining {
			if sel[k] {
				continue
			}
			g := pc.owned[li]
			tau := par.Tau * plan.RowTau[g]
			// Translate this level's pivot columns to their new ids, in
			// the recycled translation buffer (the kernel does not retain
			// its column input).
			rc := reduced[li].cols
			rv := reduced[li].vals
			tC := append(tBuf[:0], rc...)
			tBuf = tC
			for idx, c := range rc {
				if nid, ok := levelNew[c-n]; ok {
					tC[idx] = nid
				}
			}
			sortPair(tC, rv)
			lC, lV, nrC, nrV := s.EliminateRow(n+g, tC, rv,
				pc.lCols[li], pc.lVals[li], pivotGet,
				nl, nl1, tau, par.M, par.K, st)
			pc.lCols[li], pc.lVals[li] = lC, lV
			reduced[li] = redRow{nrC, nrV}
			pc.Stats.CopiedEntries += len(nrC)
			next = append(next, li)
		}
		remaining = next
		nl = nl1

		charge()
		pc.Stats.Levels = append(pc.Stats.Levels, LevelStats{
			Start:           nl1 - levelSize,
			Size:            levelSize,
			PivotsLocal:     mineCount,
			RowsLocal:       rowsIn,
			ReducedNNZLocal: nnzIn,
			DroppedLocal:    st.Dropped - droppedIn,
		})
		if tr.Enabled() {
			tr.Span("factor", fmt.Sprintf("phase2.level%d", len(pc.Stats.Levels)-1),
				levelT0, p.Time(),
				trace.I("size", levelSize), trace.I("pivots_local", mineCount),
				trace.I("rows_local", rowsIn), trace.I("reduced_nnz_local", nnzIn))
		}
	}
	charge()
	tPhase2 := p.Time()
	pc.Stats.Phase2Seconds = tPhase2 - tIface
	pc.Stats.NumLevels = len(pc.levels)

	// ---- Final translation: combined indices → elimination order -------
	// One gather publishes every interface row's (original, new) pair so
	// stored U rows can be renumbered.
	var pairs []int
	for li, g := range pc.owned {
		if !plan.Interior[g] {
			pairs = append(pairs, g, pc.newOf[li])
		}
	}
	allPairs := pcomm.AllGatherInts(p, pairs)
	newOfIface := make(map[int]int, plan.NInterface)
	for _, pp := range allPairs {
		for i := 0; i < len(pp); i += 2 {
			newOfIface[pp[i]] = pp[i+1]
		}
	}
	for li := range pc.uCols {
		for k, c := range pc.uCols[li] {
			if c >= n {
				nid, ok := newOfIface[c-n]
				if !ok {
					panic("core: unfactored column survived the factorization")
				}
				pc.uCols[li][k] = nid
			}
		}
		sortPair(pc.uCols[li], pc.uVals[li])
	}

	pc.xInt = make([]float64, nInt)
	pc.xIface = make([]float64, plan.NInterface)
	if opt.MaxRepairRate > 0 {
		pc.checkBreakdown(p, opt.MaxRepairRate)
	}
	p.Barrier()
	if tr.Enabled() {
		tr.Span("factor", "finalize", tPhase2, p.Time(),
			trace.I("levels", pc.Stats.NumLevels))
	}
	return pc
}

// SummarizeLevels aggregates the per-processor level records of one
// factorization into the global per-level table of the paper: for each
// independent-set level, the global level size plus reduced-matrix rows,
// entries and dropped counts summed across processors. All pieces must come
// from the same collective Factor call (their Levels slices then have equal
// length by construction).
type LevelSummary struct {
	Start      int
	Size       int
	Pivots     int
	Rows       int
	ReducedNNZ int
	Dropped    int
}

func SummarizeLevels(pcs []*ProcPrecond) []LevelSummary {
	if len(pcs) == 0 {
		return nil
	}
	nlev := len(pcs[0].Stats.Levels)
	out := make([]LevelSummary, nlev)
	for _, pc := range pcs {
		if len(pc.Stats.Levels) != nlev {
			panic("core: SummarizeLevels: pieces from different factorizations")
		}
		for l, ls := range pc.Stats.Levels {
			out[l].Start = ls.Start
			out[l].Size = ls.Size
			out[l].Pivots += ls.PivotsLocal
			out[l].Rows += ls.RowsLocal
			out[l].ReducedNNZ += ls.ReducedNNZLocal
			out[l].Dropped += ls.DroppedLocal
		}
	}
	return out
}

// sortPair sorts cols ascending, permuting vals alongside.
func sortPair(cols []int, vals []float64) {
	for i := 1; i < len(cols); i++ {
		c, v := cols[i], vals[i]
		j := i - 1
		for j >= 0 && cols[j] > c {
			cols[j+1], vals[j+1] = cols[j], vals[j]
			j--
		}
		cols[j+1], vals[j+1] = c, v
	}
}
