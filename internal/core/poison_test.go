package core

import (
	"reflect"
	"testing"

	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/ilu"
	"repro/internal/machine"
	"repro/internal/matgen"
	"repro/internal/partition"
	"repro/internal/pcomm"
	"repro/internal/pcomm/modelled"
	"repro/internal/pcomm/realcomm"
	"repro/internal/sparse"
)

// Scratch-poisoning property test at the factorization level (ISSUE 8):
// the per-processor scratch pool must be invisible. Every pooled scratch
// is scribbled with NaN/sentinel garbage between runs, and the factors
// must still come out bitwise identical — on the modelled backend and on
// real goroutines, where pool contention actually happens.

func poisonTestProblem(t *testing.T) (*sparse.CSR, *Plan, int) {
	t.Helper()
	const P = 4
	a := matgen.Grid2D(20, 20)
	g := graph.FromMatrix(a)
	part := partition.KWay(g, P, partition.Options{Seed: 17})
	lay, err := dist.NewLayout(a.N, P, part)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := NewPlan(a, lay)
	if err != nil {
		t.Fatal(err)
	}
	return a, plan, P
}

func comparePrecs(t *testing.T, label string, base, got []*ProcPrecond) {
	t.Helper()
	for q := range base {
		b, g := base[q], got[q]
		if !reflect.DeepEqual(b.newOf, g.newOf) {
			t.Fatalf("%s: proc %d: elimination order differs", label, q)
		}
		if !reflect.DeepEqual(b.lCols, g.lCols) || !reflect.DeepEqual(b.lVals, g.lVals) {
			t.Fatalf("%s: proc %d: L factor differs bitwise", label, q)
		}
		if !reflect.DeepEqual(b.uCols, g.uCols) || !reflect.DeepEqual(b.uVals, g.uVals) ||
			!reflect.DeepEqual(b.uDiag, g.uDiag) {
			t.Fatalf("%s: proc %d: U factor differs bitwise", label, q)
		}
		if !reflect.DeepEqual(b.Stats.ILU, g.Stats.ILU) {
			t.Fatalf("%s: proc %d: ILU stats differ:\n%+v\n%+v", label, q, b.Stats.ILU, g.Stats.ILU)
		}
	}
}

// TestFactorPoisonedScratchPoolBitwise factors the same matrix repeatedly
// with poisoned pooled scratches in between, across both in-process
// backends, and demands bitwise-identical factors every time.
func TestFactorPoisonedScratchPoolBitwise(t *testing.T) {
	_, plan, P := poisonTestProblem(t)
	opt := Options{Params: ilu.Params{M: 6, Tau: 1e-4, K: 2}, Seed: 3}

	factorModelled := func() []*ProcPrecond {
		pcs := make([]*ProcPrecond, P)
		m := modelled.New(P, machine.T3D())
		m.Run(func(p pcomm.Comm) {
			pcs[p.ID()] = Factor(p, plan, opt)
		})
		return pcs
	}
	factorReal := func() []*ProcPrecond {
		pcs := make([]*ProcPrecond, P)
		w := realcomm.New(P)
		w.Run(func(p pcomm.Comm) {
			pcs[p.ID()] = Factor(p, plan, opt)
		})
		return pcs
	}

	base := factorModelled()
	for pass := 0; pass < 2; pass++ {
		PoisonPooledScratches()
		comparePrecs(t, "modelled after poison", base, factorModelled())
		PoisonPooledScratches()
		comparePrecs(t, "realcomm after poison", base, factorReal())
	}
}

// TestFactorILU0PoisonedScratchPoolBitwise covers the static-pattern
// factorization's use of the same pool.
func TestFactorILU0PoisonedScratchPoolBitwise(t *testing.T) {
	_, plan, P := poisonTestProblem(t)

	factor := func() []*ProcPrecond {
		pcs := make([]*ProcPrecond, P)
		m := modelled.New(P, machine.T3D())
		m.Run(func(p pcomm.Comm) {
			pcs[p.ID()] = FactorILU0(p, plan, 0, 11)
		})
		return pcs
	}

	base := factor()
	PoisonPooledScratches()
	comparePrecs(t, "ILU(0) after poison", base, factor())
}
