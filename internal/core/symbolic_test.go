package core

import (
	"reflect"
	"testing"

	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/ilu"
	"repro/internal/machine"
	"repro/internal/matgen"
	"repro/internal/partition"
	"repro/internal/pcomm"
	"repro/internal/pcomm/pcommtest"
	"repro/internal/sparse"
)

func symTestLayout(t *testing.T, a *sparse.CSR, P int) *dist.Layout {
	t.Helper()
	g := graph.FromMatrix(a)
	part := partition.KWay(g, P, partition.Options{Seed: 17})
	lay, err := dist.NewLayout(a.N, P, part)
	if err != nil {
		t.Fatal(err)
	}
	return lay
}

func TestAnalyzeBindMatchesNewPlan(t *testing.T) {
	a := matgen.Grid2D(10, 10)
	lay := symTestLayout(t, a, 4)

	sym, err := Analyze(a, lay)
	if err != nil {
		t.Fatal(err)
	}
	bound, err := sym.Bind(a)
	if err != nil {
		t.Fatal(err)
	}
	oneShot, err := NewPlan(a, lay)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(bound.Interior, oneShot.Interior) ||
		!reflect.DeepEqual(bound.IntBase, oneShot.IntBase) ||
		!reflect.DeepEqual(bound.NIntLocal, oneShot.NIntLocal) ||
		!reflect.DeepEqual(bound.NewOfInterior, oneShot.NewOfInterior) ||
		bound.TotInterior != oneShot.TotInterior ||
		bound.NInterface != oneShot.NInterface {
		t.Fatal("Analyze+Bind classification differs from NewPlan")
	}
	if !reflect.DeepEqual(bound.RowTau, oneShot.RowTau) {
		t.Fatal("Analyze+Bind row norms differ from NewPlan")
	}
	if sym.PatternKey != sparse.PatternFingerprint(a) {
		t.Fatalf("PatternKey %s does not match PatternFingerprint %s", sym.PatternKey, sparse.PatternFingerprint(a))
	}
	if sym.SizeBytes() <= 0 {
		t.Fatal("symbolic artifact reports non-positive size")
	}
}

func TestBindAcceptsSamePatternNewValues(t *testing.T) {
	a := matgen.Grid2D(10, 10)
	lay := symTestLayout(t, a, 4)
	sym, err := Analyze(a, lay)
	if err != nil {
		t.Fatal(err)
	}

	a2 := matgen.Evolve(a, 1, 1e-2, 3)[0]
	plan2, err := sym.Bind(a2)
	if err != nil {
		t.Fatalf("Bind rejected a same-pattern value swap: %v", err)
	}
	if plan2.Symbolic != sym {
		t.Fatal("bound plan does not share the symbolic artifact")
	}
	if plan2.A != a2 {
		t.Fatal("bound plan does not reference the new value set")
	}
	// RowTau must come from the NEW values: the threshold rule is relative
	// to the current matrix's row norms, not the analyzed one's.
	want, err := NewPlan(a2, lay)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plan2.RowTau, want.RowTau) {
		t.Fatal("Bind row norms differ from a fresh NewPlan on the same values")
	}
}

func TestBindRejectsPatternChange(t *testing.T) {
	a := matgen.Grid2D(8, 8)
	lay := symTestLayout(t, a, 2)
	sym, err := Analyze(a, lay)
	if err != nil {
		t.Fatal(err)
	}

	// Different nonzero count.
	b := sparse.NewBuilder(a.N, a.M)
	for i := 0; i < a.N; i++ {
		cols, vals := a.Row(i)
		for k, j := range cols {
			b.Add(i, j, vals[k])
		}
	}
	b.Add(0, a.N-1, 0.5)
	if _, err := sym.Bind(b.Build()); err == nil {
		t.Fatal("Bind accepted a matrix with an extra entry")
	}

	// Same nonzero count, moved entry.
	c := a.Clone()
	// Move row 0's last entry to a different column by rebuilding.
	cb := sparse.NewBuilder(a.N, a.M)
	for i := 0; i < c.N; i++ {
		cols, vals := c.Row(i)
		for k, j := range cols {
			if i == 0 && k == len(cols)-1 {
				j = a.N - 1
			}
			cb.Add(i, j, vals[k])
		}
	}
	if _, err := sym.Bind(cb.Build()); err == nil {
		t.Fatal("Bind accepted a matrix with a moved entry")
	}

	// Wrong dimensions.
	if _, err := sym.Bind(matgen.Grid2D(4, 4)); err == nil {
		t.Fatal("Bind accepted a matrix of the wrong size")
	}
}

// TestRefactorBitwiseIdenticalToFactor is the heart of the symbolic/
// numeric split: factoring new values through a REUSED analysis must
// produce bit-for-bit the factors a from-scratch Factor produces — L/U
// rows, diagonal, level schedule, stats, everything in the wire form.
func TestRefactorBitwiseIdenticalToFactor(t *testing.T) {
	base := matgen.Grid2D(12, 12)
	steps := matgen.Evolve(base, 3, 2e-2, 11)
	opt := Options{Params: ilu.Params{M: 8, Tau: 1e-4, K: 2}, Seed: 7}

	for _, P := range []int{2, 4} {
		lay := symTestLayout(t, base, P)
		sym, err := Analyze(base, lay)
		if err != nil {
			t.Fatal(err)
		}
		for si, a := range steps {
			rebound, err := sym.Bind(a)
			if err != nil {
				t.Fatal(err)
			}
			fresh, err := NewPlan(a, lay)
			if err != nil {
				t.Fatal(err)
			}

			reWires := make([]WirePrecond, P)
			m := pcommtest.New(t, P, machine.T3D())
			m.Run(func(p pcomm.Comm) {
				reWires[p.ID()] = Refactor(p, rebound, opt).Wire()
			})
			coldWires := make([]WirePrecond, P)
			m2 := pcommtest.New(t, P, machine.T3D())
			m2.Run(func(p pcomm.Comm) {
				coldWires[p.ID()] = Factor(p, fresh, opt).Wire()
			})

			for q := 0; q < P; q++ {
				// Per-phase seconds are virtual (deterministic) on the
				// modelled machine but wall-clock on the real backend;
				// the bitwise contract covers everything else.
				reWires[q].Stats.Phase1InteriorSeconds = 0
				reWires[q].Stats.Phase1InterfaceSeconds = 0
				reWires[q].Stats.Phase2Seconds = 0
				coldWires[q].Stats.Phase1InteriorSeconds = 0
				coldWires[q].Stats.Phase1InterfaceSeconds = 0
				coldWires[q].Stats.Phase2Seconds = 0
				if !reflect.DeepEqual(reWires[q], coldWires[q]) {
					t.Fatalf("P=%d step %d proc %d: Refactor on reused symbolic differs from one-shot Factor", P, si, q)
				}
			}
		}
	}
}
