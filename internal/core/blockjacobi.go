package core

import (
	"repro/internal/ilu"
	"repro/internal/pcomm"
	"repro/internal/sparse"
)

// BlockJacobi is the classic zero-communication parallel preconditioner
// the interface phase of PILUT exists to beat: every processor
// ILUT-factors only its diagonal block, discarding all couplings to
// remote unknowns. Factorization and application need no messages at
// all, but the preconditioner ignores exactly the interface couplings —
// so its iteration counts degrade as the processor count (and therefore
// the discarded coupling mass) grows.
type BlockJacobi struct {
	factors *ilu.Factors // over local indices
}

// FactorBlockJacobi builds the local-block ILUT preconditioner. It is
// SPMD like Factor, but performs no communication.
func FactorBlockJacobi(p pcomm.Comm, plan *Plan, params ilu.Params) (*BlockJacobi, error) {
	lay := plan.Lay
	rows := lay.Rows[p.ID()]
	b := sparse.NewBuilder(len(rows), len(rows))
	for li, g := range rows {
		cols, vals := plan.A.Row(g)
		diagSeen := false
		for k, j := range cols {
			lj := lay.LocalIndex(p.ID(), j)
			if lj < 0 {
				continue // off-block coupling discarded
			}
			if lj == li {
				diagSeen = true
			}
			b.Add(li, lj, vals[k])
		}
		if !diagSeen {
			b.Add(li, li, 0) // ILUT's pivot floor will repair it
		}
	}
	f, st, err := ilu.ILUT(b.Build(), params)
	if err != nil {
		return nil, err
	}
	p.Work(st.Flops)
	return &BlockJacobi{factors: f}, nil
}

// Solve applies the block preconditioner: purely local triangular solves.
func (bj *BlockJacobi) Solve(p pcomm.Comm, x, b []float64) {
	bj.factors.Solve(x, b)
	p.Work(float64(2 * bj.factors.NNZ()))
}

// SolveBatch applies the block preconditioner to every column of the
// batch, so a batched GMRES does not fall back to per-vector dispatch.
func (bj *BlockJacobi) SolveBatch(p pcomm.Comm, xs, bs [][]float64) {
	for k := range xs {
		bj.Solve(p, xs[k], bs[k])
	}
}

// NNZ reports the local factor entries.
func (bj *BlockJacobi) NNZ() int { return bj.factors.NNZ() }

// SizeBytes estimates this processor's in-memory footprint, mirroring
// ProcPrecond.SizeBytes so the service cache can budget ladder-fallback
// entries the same way.
func (bj *BlockJacobi) SizeBytes() int64 {
	return bj.factors.L.SizeBytes() + bj.factors.U.SizeBytes()
}
