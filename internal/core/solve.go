package core

import (
	"repro/internal/pcomm"
)

// levelValues is the per-level exchange payload of the triangular solves:
// each processor publishes the solution values of its level members.
type levelValues struct {
	NewIDs []int
	Vals   []float64
}

// publishLevel makes the just-solved values of level l visible to every
// processor (one synchronization point per level, as in §5 of the paper:
// the communication volume is proportional to the interface size and
// there are q implicit synchronization points per solve).
func (pc *ProcPrecond) publishLevel(p pcomm.Comm, l int) {
	members := pc.levelMembers[l]
	msg := levelValues{NewIDs: make([]int, len(members)), Vals: make([]float64, len(members))}
	for k, li := range members {
		msg.NewIDs[k] = pc.newOf[li]
		msg.Vals[k] = pc.xIface[pc.newOf[li]-pc.plan.TotInterior]
	}
	all := p.AllGather(msg, pcomm.BytesOfInts(len(members))+pcomm.BytesOfFloats(len(members)))
	for _, a := range all {
		lv := a.(levelValues)
		for k, nid := range lv.NewIDs {
			pc.xIface[nid-pc.plan.TotInterior] = lv.Vals[k]
		}
	}
}

// SolveForward solves L·y = b for this processor's unknowns. b and y are
// local vectors in owned-row order (y and b may alias). Collective: every
// processor must call it together.
func (pc *ProcPrecond) SolveForward(p pcomm.Comm, y, b []float64) {
	if len(y) != len(pc.owned) || len(b) != len(pc.owned) {
		panic("core: SolveForward local vector length mismatch")
	}
	tot := pc.plan.TotInterior
	intBase := pc.plan.IntBase[pc.me]
	flops := 0

	// Interior unknowns: purely local, ascending elimination order. An
	// interior L row references only earlier local interiors.
	for _, li := range pc.interiorLocal {
		s := b[li]
		cols := pc.lCols[li]
		vals := pc.lVals[li]
		for k, c := range cols {
			s -= vals[k] * pc.xInt[c-intBase]
		}
		flops += 2 * len(cols)
		pc.xInt[pc.newOf[li]-intBase] = s
	}
	p.Work(float64(flops))

	// Interface unknowns level by level: an interface L row references
	// local interiors and interface pivots of earlier levels.
	for l := range pc.levels {
		flops = 0
		for _, li := range pc.levelMembers[l] {
			s := b[li]
			cols := pc.lCols[li]
			vals := pc.lVals[li]
			for k, c := range cols {
				if c < tot {
					s -= vals[k] * pc.xInt[c-intBase]
				} else {
					s -= vals[k] * pc.xIface[c-tot]
				}
			}
			flops += 2 * len(cols)
			pc.xIface[pc.newOf[li]-tot] = s
		}
		p.Work(float64(flops))
		pc.publishLevel(p, l)
	}

	// Collect owned results.
	for li := range pc.owned {
		nid := pc.newOf[li]
		if nid < tot {
			y[li] = pc.xInt[nid-intBase]
		} else {
			y[li] = pc.xIface[nid-tot]
		}
	}
}

// SolveBackward solves U·y = b for this processor's unknowns, traversing
// the interface levels in reverse and finishing with the local interior
// block. Collective.
func (pc *ProcPrecond) SolveBackward(p pcomm.Comm, y, b []float64) {
	if len(y) != len(pc.owned) || len(b) != len(pc.owned) {
		panic("core: SolveBackward local vector length mismatch")
	}
	tot := pc.plan.TotInterior
	intBase := pc.plan.IntBase[pc.me]

	for l := len(pc.levels) - 1; l >= 0; l-- {
		flops := 0
		// Members in descending elimination order: independent-set levels
		// have no intra-level coupling, but the Schur-block levels of the
		// §7 variant are sequential within a processor, so later members
		// must be solved first.
		members := pc.levelMembers[l]
		for mi := len(members) - 1; mi >= 0; mi-- {
			li := members[mi]
			s := b[li]
			cols := pc.uCols[li]
			vals := pc.uVals[li]
			for k, c := range cols {
				// Interface U rows reference only later interface levels.
				s -= vals[k] * pc.xIface[c-tot]
			}
			flops += 2*len(cols) + 1
			pc.xIface[pc.newOf[li]-tot] = s / pc.uDiag[li]
		}
		p.Work(float64(flops))
		pc.publishLevel(p, l)
	}

	// Interior unknowns in reverse local order; their U rows reference
	// later local interiors and interface unknowns (all levels known now).
	flops := 0
	for k := len(pc.interiorLocal) - 1; k >= 0; k-- {
		li := pc.interiorLocal[k]
		s := b[li]
		cols := pc.uCols[li]
		vals := pc.uVals[li]
		for idx, c := range cols {
			if c < tot {
				s -= vals[idx] * pc.xInt[c-intBase]
			} else {
				s -= vals[idx] * pc.xIface[c-tot]
			}
		}
		flops += 2*len(cols) + 1
		pc.xInt[pc.newOf[li]-intBase] = s / pc.uDiag[li]
	}
	p.Work(float64(flops))

	for li := range pc.owned {
		nid := pc.newOf[li]
		if nid < tot {
			y[li] = pc.xInt[nid-intBase]
		} else {
			y[li] = pc.xIface[nid-tot]
		}
	}
}

// Solve applies the preconditioner: y = U⁻¹·L⁻¹·b on the distributed
// factors (y and b may alias). Collective.
func (pc *ProcPrecond) Solve(p pcomm.Comm, y, b []float64) {
	pc.SolveForward(p, y, b)
	pc.SolveBackward(p, y, y)
}

// NumLevels reports q, the number of independent sets the factorization
// used for the interface unknowns.
func (pc *ProcPrecond) NumLevels() int { return len(pc.levels) }

// Levels returns the level structure (shared across processors).
func (pc *ProcPrecond) Levels() []LevelInfo { return pc.levels }

// NNZ reports the local stored entries of L and U (unit diagonal of L
// implicit, diagonal of U counted).
func (pc *ProcPrecond) NNZ() int {
	n := 0
	for li := range pc.owned {
		n += len(pc.lCols[li]) + len(pc.uCols[li]) + 1
	}
	return n
}
