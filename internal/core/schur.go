package core

import (
	"sort"

	"repro/internal/ilu"
	"repro/internal/pcomm"
)

// redRow is the current reduced-matrix row of an unfactored interface
// unknown, in combined indices (all columns ≥ n, i.e. unfactored).
type redRow struct {
	cols []int
	vals []float64
}

// schurBlockRound implements the paper's §7 sketch: partition-extracted
// concurrency for the interface. Every processor identifies the remaining
// rows that currently couple only to its own rows — in both directions —
// and factors them *sequentially* with no communication, all processors
// at once; the mutual independence of the per-processor blocks makes this
// a single level of the elimination order. Returns the updated remaining
// list and whether any row was factored globally (if not, the caller
// falls back to an independent-set level).
func (pc *ProcPrecond) schurBlockRound(
	p pcomm.Comm,
	s *ilu.Scratch,
	remaining []int,
	reduced []redRow,
	nl *int,
	uF []ilu.URow,
	uFSet []bool,
	par ilu.Params,
	st *ilu.Stats,
) ([]int, bool) {
	plan := pc.plan
	lay := plan.Lay
	me := pc.me
	n := plan.A.N

	// Publish which remote rows my reduced rows reference, so owners can
	// tell which of their rows are coupled across the boundary.
	var refs []int
	seen := make(map[int]bool)
	for _, li := range remaining {
		for _, c := range reduced[li].cols {
			o := c - n
			if lay.PartOf[o] != me && !seen[o] {
				seen[o] = true
				refs = append(refs, o)
			}
		}
	}
	sort.Ints(refs)
	all := pcomm.AllGatherInts(p, refs)
	remoteRef := make(map[int]bool)
	for q, ids := range all {
		if q == me {
			continue
		}
		for _, g := range ids {
			if lay.PartOf[g] == me {
				remoteRef[g] = true
			}
		}
	}

	// My block: remaining rows neither referencing nor referenced by a
	// remote row under the *current* structure (fill included).
	var block []int
	for _, li := range remaining {
		g := pc.owned[li]
		if remoteRef[g] {
			continue
		}
		local := true
		for _, c := range reduced[li].cols {
			if lay.PartOf[c-n] != me {
				local = false
				break
			}
		}
		if local {
			block = append(block, li)
		}
	}

	counts := pcomm.AllGatherInts(p, []int{len(block)})
	total := 0
	myOffset := *nl
	for q := 0; q < lay.P; q++ {
		if q < me {
			myOffset += counts[q][0]
		}
		total += counts[q][0]
	}
	if total == 0 {
		return remaining, false
	}
	nl1 := *nl + total

	// Assign ids and factor the block sequentially, exactly like a
	// processor's interior phase but over the reduced matrix.
	blockNew := make(map[int]int, len(block))
	for r, li := range block {
		blockNew[pc.owned[li]] = myOffset + r
	}
	pivotFn := func(k int) *ilu.URow {
		li := block[k-myOffset]
		if !uFSet[li] {
			return nil
		}
		return &uF[li]
	}

	// Recycled translation buffers: the kernel does not retain its inputs,
	// so one pair of buffers serves every row of the round.
	var tcBuf []int
	var tvBuf []float64
	translate := func(li int) ([]int, []float64) {
		rc := reduced[li].cols
		rv := reduced[li].vals
		tC := tcBuf[:0]
		tV := tvBuf[:0]
		// Prior L entries (already final ids < *nl) ride along so the 3rd
		// dropping rule sees the whole factored part.
		tC = append(tC, pc.lCols[li]...)
		tV = append(tV, pc.lVals[li]...)
		for idx, c := range rc {
			if nid, ok := blockNew[c-n]; ok {
				tC = append(tC, nid)
			} else {
				tC = append(tC, c)
			}
			tV = append(tV, rv[idx])
		}
		sortPair(tC, tV)
		tcBuf, tvBuf = tC, tV
		return tC, tV
	}

	blockSet := make(map[int]bool, len(block))
	for _, li := range block {
		blockSet[li] = true
	}
	for r, li := range block {
		g := pc.owned[li]
		tau := par.Tau * plan.RowTau[g]
		myNew := myOffset + r
		tC, tV := translate(li)
		lC, lV, rC, rV := s.EliminateRowSeq(myNew, tC, tV,
			pivotFn, myOffset, myNew, tau, par.M, 0, st)
		urow, err := s.FactorPivotRow(myNew, rC, rV, tau, par.M, par.PivotPerturb, st)
		if err != nil {
			panic(err)
		}
		urow.Col = myNew
		urow.Orig = g
		uF[li] = urow
		uFSet[li] = true
		pc.newOf[li] = myNew
		pc.lCols[li], pc.lVals[li] = lC, lV
		pc.uCols[li], pc.uVals[li] = urow.Cols, urow.Vals
		pc.uDiag[li] = urow.Diag
		reduced[li] = redRow{}
	}
	pc.levels = append(pc.levels, LevelInfo{Start: *nl, Size: total})
	pc.levelMembers = append(pc.levelMembers, block)

	// Eliminate the block's unknowns from my other remaining rows. Blocks
	// of different processors are mutually invisible, so this is local.
	var next []int
	for _, li := range remaining {
		if blockSet[li] {
			continue
		}
		g := pc.owned[li]
		tau := par.Tau * plan.RowTau[g]
		tC, tV := translate(li)
		lC, lV, nrC, nrV := s.EliminateRowSeq(n+g, tC, tV,
			pivotFn, myOffset, myOffset+len(block), tau, par.M, par.K, st)
		pc.lCols[li], pc.lVals[li] = lC, lV
		reduced[li] = redRow{nrC, nrV}
		pc.Stats.CopiedEntries += len(nrC)
		next = append(next, li)
	}
	*nl = nl1
	return next, true
}
