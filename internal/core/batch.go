package core

import (
	"repro/internal/pcomm"
)

// levelValuesBatch is the per-level exchange payload of a multi-RHS
// triangular solve: the solution values of this processor's level members
// for every right-hand side of the batch, right-hand-side-major. One
// exchange per level serves the whole batch, so the q synchronization
// points of an application (§5 of the paper) are paid once per batch
// instead of once per right-hand side — the latency amortization the
// solver service's batching layer exists to exploit.
type levelValuesBatch struct {
	NewIDs []int
	Vals   []float64 // len(NewIDs) × B values, grouped by right-hand side
}

// publishLevelBatch makes the just-solved values of level l visible to
// every processor for all B right-hand sides with a single collective.
func (pc *ProcPrecond) publishLevelBatch(p pcomm.Comm, l int, xIface [][]float64) {
	members := pc.levelMembers[l]
	tot := pc.plan.TotInterior
	msg := levelValuesBatch{
		NewIDs: make([]int, len(members)),
		Vals:   make([]float64, 0, len(members)*len(xIface)),
	}
	for k, li := range members {
		msg.NewIDs[k] = pc.newOf[li]
	}
	for _, xf := range xIface {
		for _, li := range members {
			msg.Vals = append(msg.Vals, xf[pc.newOf[li]-tot])
		}
	}
	all := p.AllGather(msg, pcomm.BytesOfInts(len(msg.NewIDs))+pcomm.BytesOfFloats(len(msg.Vals)))
	for _, a := range all {
		lv := a.(levelValuesBatch)
		nm := len(lv.NewIDs)
		for bi := range xIface {
			vals := lv.Vals[bi*nm : (bi+1)*nm]
			for k, nid := range lv.NewIDs {
				xIface[bi][nid-tot] = vals[k]
			}
		}
	}
}

// SolveBatch applies the preconditioner to B right-hand sides at once:
// ys[i] = U⁻¹·L⁻¹·bs[i] (ys[i] and bs[i] may alias). The local
// arithmetic is identical to B calls of Solve, but every level of the
// forward and backward substitutions publishes the values of the entire
// batch in one exchange. Collective: every processor must call it
// together with the same batch size.
func (pc *ProcPrecond) SolveBatch(p pcomm.Comm, ys, bs [][]float64) {
	if len(ys) != len(bs) {
		panic("core: SolveBatch batch size mismatch")
	}
	B := len(bs)
	switch B {
	case 0:
		return
	case 1:
		pc.Solve(p, ys[0], bs[0])
		return
	}
	for i := range bs {
		if len(ys[i]) != len(pc.owned) || len(bs[i]) != len(pc.owned) {
			panic("core: SolveBatch local vector length mismatch")
		}
	}
	nInt := pc.plan.NIntLocal[pc.me]
	xInt := make([][]float64, B)
	xIface := make([][]float64, B)
	for bi := 0; bi < B; bi++ {
		xInt[bi] = make([]float64, nInt)
		xIface[bi] = make([]float64, pc.plan.NInterface)
	}
	pc.solveForwardBatch(p, ys, bs, xInt, xIface)
	pc.solveBackwardBatch(p, ys, ys, xInt, xIface)
}

// solveForwardBatch is SolveForward over a batch with shared level
// exchanges; scratch vectors are supplied by the caller.
func (pc *ProcPrecond) solveForwardBatch(p pcomm.Comm, ys, bs, xInt, xIface [][]float64) {
	tot := pc.plan.TotInterior
	intBase := pc.plan.IntBase[pc.me]
	flops := 0

	for bi := range bs {
		b := bs[bi]
		xi := xInt[bi]
		for _, li := range pc.interiorLocal {
			s := b[li]
			cols := pc.lCols[li]
			vals := pc.lVals[li]
			for k, c := range cols {
				s -= vals[k] * xi[c-intBase]
			}
			flops += 2 * len(cols)
			xi[pc.newOf[li]-intBase] = s
		}
	}
	p.Work(float64(flops))

	for l := range pc.levels {
		flops = 0
		for bi := range bs {
			b := bs[bi]
			xi := xInt[bi]
			xf := xIface[bi]
			for _, li := range pc.levelMembers[l] {
				s := b[li]
				cols := pc.lCols[li]
				vals := pc.lVals[li]
				for k, c := range cols {
					if c < tot {
						s -= vals[k] * xi[c-intBase]
					} else {
						s -= vals[k] * xf[c-tot]
					}
				}
				flops += 2 * len(cols)
				xf[pc.newOf[li]-tot] = s
			}
		}
		p.Work(float64(flops))
		pc.publishLevelBatch(p, l, xIface)
	}

	for bi := range ys {
		y := ys[bi]
		xi := xInt[bi]
		xf := xIface[bi]
		for li := range pc.owned {
			nid := pc.newOf[li]
			if nid < tot {
				y[li] = xi[nid-intBase]
			} else {
				y[li] = xf[nid-tot]
			}
		}
	}
}

// solveBackwardBatch is SolveBackward over a batch with shared level
// exchanges.
func (pc *ProcPrecond) solveBackwardBatch(p pcomm.Comm, ys, bs, xInt, xIface [][]float64) {
	tot := pc.plan.TotInterior
	intBase := pc.plan.IntBase[pc.me]

	for l := len(pc.levels) - 1; l >= 0; l-- {
		flops := 0
		members := pc.levelMembers[l]
		for bi := range bs {
			b := bs[bi]
			xf := xIface[bi]
			for mi := len(members) - 1; mi >= 0; mi-- {
				li := members[mi]
				s := b[li]
				cols := pc.uCols[li]
				vals := pc.uVals[li]
				for k, c := range cols {
					s -= vals[k] * xf[c-tot]
				}
				flops += 2*len(cols) + 1
				xf[pc.newOf[li]-tot] = s / pc.uDiag[li]
			}
		}
		p.Work(float64(flops))
		pc.publishLevelBatch(p, l, xIface)
	}

	flops := 0
	for bi := range bs {
		b := bs[bi]
		xi := xInt[bi]
		xf := xIface[bi]
		for k := len(pc.interiorLocal) - 1; k >= 0; k-- {
			li := pc.interiorLocal[k]
			s := b[li]
			cols := pc.uCols[li]
			vals := pc.uVals[li]
			for idx, c := range cols {
				if c < tot {
					s -= vals[idx] * xi[c-intBase]
				} else {
					s -= vals[idx] * xf[c-tot]
				}
			}
			flops += 2*len(cols) + 1
			xi[pc.newOf[li]-intBase] = s / pc.uDiag[li]
		}
	}
	p.Work(float64(flops))

	for bi := range ys {
		y := ys[bi]
		xi := xInt[bi]
		xf := xIface[bi]
		for li := range pc.owned {
			nid := pc.newOf[li]
			if nid < tot {
				y[li] = xi[nid-intBase]
			} else {
				y[li] = xf[nid-tot]
			}
		}
	}
}

// SizeBytes estimates the in-memory footprint of this processor's piece
// of the preconditioner: 16 bytes per stored L/U entry plus the index and
// buffer arrays. The solver service's cache accounts its byte budget with
// the sum over processors.
func (pc *ProcPrecond) SizeBytes() int64 {
	var n int64
	for li := range pc.owned {
		n += 16 * int64(len(pc.lCols[li])+len(pc.uCols[li]))
	}
	n += 8 * int64(len(pc.uDiag)+len(pc.owned)+len(pc.newOf)+len(pc.interiorLocal))
	n += 8 * int64(len(pc.xInt)+len(pc.xIface))
	for _, m := range pc.levelMembers {
		n += 8 * int64(len(m))
	}
	return n
}
