package core

import (
	"math"
	"testing"

	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/ilu"
	"repro/internal/machine"
	"repro/internal/matgen"
	"repro/internal/partition"
	"repro/internal/pcomm"
	"repro/internal/pcomm/pcommtest"
	"repro/internal/sparse"
)

func runFactorILU0(t *testing.T, a *sparse.CSR, P int) ([]*ProcPrecond, *Plan) {
	t.Helper()
	g := graph.FromMatrix(a)
	part := partition.KWay(g, P, partition.Options{Seed: 17})
	lay, err := dist.NewLayout(a.N, P, part)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := NewPlan(a, lay)
	if err != nil {
		t.Fatal(err)
	}
	pcs := make([]*ProcPrecond, P)
	m := pcommtest.New(t, P, machine.T3D())
	m.Run(func(p pcomm.Comm) {
		pcs[p.ID()] = FactorILU0(p, plan, 0, 1)
	})
	return pcs, plan
}

func TestParallelILU0PatternEqualsPermutedA(t *testing.T) {
	a := matgen.Torso(6, 6, 6, 2)
	for _, P := range []int{2, 4} {
		pcs, _ := runFactorILU0(t, a, P)
		f, perm, err := GatherFactors(pcs)
		if err != nil {
			t.Fatal(err)
		}
		if err := f.CheckStructure(); err != nil {
			t.Fatal(err)
		}
		pap := a.Permute(perm)
		// Union pattern of L and U must exactly equal the pattern of PAPᵀ.
		b := sparse.NewBuilder(a.N, a.N)
		for i := 0; i < a.N; i++ {
			cols, _ := f.L.Row(i)
			for _, j := range cols {
				b.Add(i, j, 1)
			}
			ucols, _ := f.U.Row(i)
			for _, j := range ucols {
				b.Add(i, j, 1)
			}
		}
		union := b.Build()
		if union.NNZ() != pap.NNZ() {
			t.Fatalf("P=%d: ILU(0) pattern nnz %d, PAPᵀ nnz %d", P, union.NNZ(), pap.NNZ())
		}
		for i := 0; i < a.N; i++ {
			uc, _ := union.Row(i)
			ac, _ := pap.Row(i)
			for k := range uc {
				if uc[k] != ac[k] {
					t.Fatalf("P=%d: row %d pattern differs", P, i)
				}
			}
		}
	}
}

func TestParallelILU0EqualsSerialOnPermutedMatrix(t *testing.T) {
	// The defining invariant: the parallel factorization is numerically
	// identical to serial ILU(0) applied to the permuted matrix — the
	// elimination order and the pattern restriction are the same, only
	// the execution is distributed.
	a := matgen.Torso(5, 5, 7, 6)
	for _, P := range []int{2, 5} {
		pcs, _ := runFactorILU0(t, a, P)
		f, perm, err := GatherFactors(pcs)
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := ilu.ILU0(a.Permute(perm))
		if err != nil {
			t.Fatal(err)
		}
		if d := sparse.MaxAbsDiff(f.L, want.L); d > 1e-12 {
			t.Errorf("P=%d: L differs from serial ILU0 of PAPᵀ by %v", P, d)
		}
		if d := sparse.MaxAbsDiff(f.U, want.U); d > 1e-12 {
			t.Errorf("P=%d: U differs from serial ILU0 of PAPᵀ by %v", P, d)
		}
	}
}

func TestParallelILU0SingleProcEqualsSerial(t *testing.T) {
	a := matgen.Grid2D(9, 9)
	pcs, _ := runFactorILU0(t, a, 1)
	f, perm, err := GatherFactors(pcs)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range perm {
		if p != i {
			t.Fatalf("P=1 permutation not identity at %d", i)
		}
	}
	want, _, err := ilu.ILU0(a)
	if err != nil {
		t.Fatal(err)
	}
	if d := sparse.MaxAbsDiff(f.L, want.L); d > 1e-12 {
		t.Errorf("L differs from serial ILU0 by %v", d)
	}
	if d := sparse.MaxAbsDiff(f.U, want.U); d > 1e-12 {
		t.Errorf("U differs from serial ILU0 by %v", d)
	}
}

func TestParallelILU0FewerLevelsThanILUT(t *testing.T) {
	// The static pattern needs only a colouring-sized number of levels;
	// ILUT's fill forces far more.
	a := matgen.Torso(8, 8, 8, 3)
	P := 8
	ilu0, _ := runFactorILU0(t, a, P)
	ilut, _, _ := runFactor(t, a, P, Options{Params: ilu.Params{M: 10, Tau: 1e-6}})
	q0 := ilu0[0].NumLevels()
	qT := ilut[0].NumLevels()
	t.Logf("levels: ILU(0)=%d ILUT(10,1e-6)=%d", q0, qT)
	if q0*3 > qT {
		t.Errorf("ILU(0) levels (%d) should be ≪ ILUT levels (%d)", q0, qT)
	}
}

func TestParallelILU0SolveMatchesGathered(t *testing.T) {
	a := matgen.Torso(6, 6, 6, 4)
	n := a.N
	P := 4
	pcs, plan := runFactorILU0(t, a, P)
	lay := plan.Lay
	f, perm, err := GatherFactors(pcs)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = math.Sin(float64(i) * 1.3)
	}
	want := make([]float64, n)
	f.Solve(want, sparse.PermuteVec(b, perm))
	bParts := lay.Scatter(b)
	yParts := make([][]float64, P)
	m := pcommtest.New(t, P, machine.T3D())
	m.Run(func(p pcomm.Comm) {
		y := make([]float64, lay.NLocal(p.ID()))
		pcs[p.ID()].Solve(p, y, bParts[p.ID()])
		yParts[p.ID()] = y
	})
	got := lay.Gather(yParts)
	for i := 0; i < n; i++ {
		if math.Abs(got[i]-want[perm[i]]) > 1e-9*math.Max(1, math.Abs(want[perm[i]])) {
			t.Fatalf("solve mismatch at %d", i)
		}
	}
}

func TestParallelILU0PreconditionsGMRES(t *testing.T) {
	// One preconditioned step should substantially reduce the residual —
	// less than ILUT at small tau, but far better than nothing.
	a := matgen.Grid2D(12, 12)
	n := a.N
	P := 4
	pcs, plan := runFactorILU0(t, a, P)
	lay := plan.Lay
	b := sparse.Ones(n)
	bParts := lay.Scatter(b)
	xParts := make([][]float64, P)
	m := pcommtest.New(t, P, machine.T3D())
	m.Run(func(p pcomm.Comm) {
		x := make([]float64, lay.NLocal(p.ID()))
		pcs[p.ID()].Solve(p, x, bParts[p.ID()])
		xParts[p.ID()] = x
	})
	x := lay.Gather(xParts)
	r := make([]float64, n)
	a.MulVec(r, x)
	for i := range r {
		r[i] = b[i] - r[i]
	}
	rel1 := sparse.Norm2(r) / sparse.Norm2(b)
	if rel1 >= 1 {
		t.Fatalf("ILU(0) step did not reduce the residual: %v", rel1)
	}
	// Richardson iteration with M = ILU(0) must converge steadily.
	rParts := lay.Scatter(r)
	m2 := pcommtest.New(t, P, machine.T3D())
	m2.Run(func(p pcomm.Comm) {
		xl := xParts[p.ID()]
		rl := rParts[p.ID()]
		z := make([]float64, len(xl))
		dm := dist.NewMatrix(p, lay, a)
		for it := 0; it < 10; it++ {
			pcs[p.ID()].Solve(p, z, rl)
			for i := range xl {
				xl[i] += z[i]
			}
			dm.MulVec(p, rl, xl)
			for i := range rl {
				rl[i] = bParts[p.ID()][i] - rl[i]
			}
		}
	})
	x = lay.Gather(xParts)
	a.MulVec(r, x)
	for i := range r {
		r[i] = b[i] - r[i]
	}
	// ILU(0) on a Laplacian converges slowly but steadily: ten further
	// steps must at least halve the first-step residual.
	if rel := sparse.Norm2(r) / sparse.Norm2(b); rel > rel1/2 {
		t.Errorf("Richardson with ILU(0) stalled at residual %v (first step %v)", rel, rel1)
	}
}
