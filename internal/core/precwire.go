package core

import "fmt"

// WirePrecond is the serializable form of one processor's ProcPrecond:
// everything the triangular solves read that cannot be rebuilt from the
// elimination plan. A factorization shipped between daemons travels as
// one WirePrecond per processor next to the matrix it factored; the
// receiver reconstructs the plan deterministically (same matrix, same
// layout, same parameters on both ends) and rehydrates the pieces with
// FromWire. Shipping the rows instead of refactoring preserves bitwise
// identity by construction — the bytes that cross the wire are the bytes
// the owner's factorization produced.
type WirePrecond struct {
	Me            int
	NewOf         []int
	LCols         [][]int
	LVals         [][]float64
	UCols         [][]int
	UVals         [][]float64
	UDiag         []float64
	InteriorLocal []int
	Levels        []LevelInfo
	LevelMembers  [][]int
	Stats         Stats
}

// Wire extracts the serializable form of the piece. The returned value
// aliases the piece's slices; callers encode it before the entry
// mutates (entries are immutable once published, so in practice: any
// time).
func (pc *ProcPrecond) Wire() WirePrecond {
	return WirePrecond{
		Me:            pc.me,
		NewOf:         pc.newOf,
		LCols:         pc.lCols,
		LVals:         pc.lVals,
		UCols:         pc.uCols,
		UVals:         pc.uVals,
		UDiag:         pc.uDiag,
		InteriorLocal: pc.interiorLocal,
		Levels:        pc.levels,
		LevelMembers:  pc.levelMembers,
		Stats:         pc.Stats,
	}
}

// FromWire rebuilds processor w.Me's preconditioner piece against a
// locally reconstructed plan. The plan must come from the same matrix
// and layout the piece was factored under; the basic shape invariants
// are checked so a mismatched plan fails loudly instead of producing
// silently wrong solves.
func FromWire(plan *Plan, w WirePrecond) (*ProcPrecond, error) {
	if w.Me < 0 || w.Me >= plan.Lay.P {
		return nil, fmt.Errorf("core: wire precond for processor %d of a %d-processor plan", w.Me, plan.Lay.P)
	}
	owned := plan.Lay.Rows[w.Me]
	if len(w.NewOf) != len(owned) || len(w.LCols) != len(owned) || len(w.UCols) != len(owned) ||
		len(w.LVals) != len(owned) || len(w.UVals) != len(owned) || len(w.UDiag) != len(owned) {
		return nil, fmt.Errorf("core: wire precond rows (%d) do not match plan rows (%d) for processor %d",
			len(w.NewOf), len(owned), w.Me)
	}
	if len(w.LevelMembers) != len(w.Levels) {
		return nil, fmt.Errorf("core: wire precond has %d level member lists for %d levels",
			len(w.LevelMembers), len(w.Levels))
	}
	pc := &ProcPrecond{
		plan:          plan,
		me:            w.Me,
		owned:         owned,
		newOf:         w.NewOf,
		lCols:         w.LCols,
		lVals:         w.LVals,
		uCols:         w.UCols,
		uVals:         w.UVals,
		uDiag:         w.UDiag,
		interiorLocal: w.InteriorLocal,
		levels:        w.Levels,
		levelMembers:  w.LevelMembers,
		Stats:         w.Stats,
	}
	pc.xInt = make([]float64, plan.NIntLocal[w.Me])
	pc.xIface = make([]float64, plan.NInterface)
	return pc, nil
}
