package core

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/ilu"
	"repro/internal/machine"
	"repro/internal/matgen"
	"repro/internal/partition"
	"repro/internal/pcomm"
	"repro/internal/pcomm/pcommtest"
)

// buildBatchFixture factors a small grid problem on P simulated
// processors and returns the plan plus per-processor pieces.
func buildBatchFixture(t *testing.T, p int) (*dist.Layout, []*ProcPrecond) {
	t.Helper()
	a := matgen.Grid2D(20, 20)
	g := graph.FromMatrix(a)
	part := partition.KWay(g, p, partition.Options{Seed: 3})
	lay, err := dist.NewLayout(a.N, p, part)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := NewPlan(a, lay)
	if err != nil {
		t.Fatal(err)
	}
	pcs := make([]*ProcPrecond, p)
	m := pcommtest.New(t, p, machine.Zero())
	m.SetWatchdog(30 * time.Second)
	m.Run(func(proc pcomm.Comm) {
		pcs[proc.ID()] = Factor(proc, plan, Options{Params: ilu.Params{M: 8, Tau: 1e-4, K: 2}, Seed: 3})
	})
	return lay, pcs
}

func TestSolveBatchMatchesRepeatedSolve(t *testing.T) {
	const P = 4
	const B = 3
	lay, pcs := buildBatchFixture(t, P)
	rng := rand.New(rand.NewSource(7))
	bsGlobal := make([][]float64, B)
	for bi := range bsGlobal {
		bsGlobal[bi] = make([]float64, lay.N)
		for i := range bsGlobal[bi] {
			bsGlobal[bi][i] = rng.NormFloat64()
		}
	}

	// Reference: B single applications.
	single := make([][][]float64, B)
	for bi := 0; bi < B; bi++ {
		parts := lay.Scatter(bsGlobal[bi])
		ys := make([][]float64, P)
		m := pcommtest.New(t, P, machine.Zero())
		m.SetWatchdog(30 * time.Second)
		m.Run(func(proc pcomm.Comm) {
			y := make([]float64, lay.NLocal(proc.ID()))
			pcs[proc.ID()].Solve(proc, y, parts[proc.ID()])
			ys[proc.ID()] = y
		})
		single[bi] = ys
	}

	// Batched application, plus collective counting.
	batchYs := make([][][]float64, B)
	for bi := range batchYs {
		batchYs[bi] = make([][]float64, P)
	}
	m := pcommtest.New(t, P, machine.Zero())
	m.SetWatchdog(30 * time.Second)
	res := m.Run(func(proc pcomm.Comm) {
		bs := make([][]float64, B)
		ys := make([][]float64, B)
		for bi := 0; bi < B; bi++ {
			bs[bi] = lay.Scatter(bsGlobal[bi])[proc.ID()]
			ys[bi] = make([]float64, lay.NLocal(proc.ID()))
		}
		pcs[proc.ID()].SolveBatch(proc, ys, bs)
		for bi := 0; bi < B; bi++ {
			batchYs[bi][proc.ID()] = ys[bi]
		}
	})

	for bi := 0; bi < B; bi++ {
		want := lay.Gather(single[bi])
		got := lay.Gather(batchYs[bi])
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("rhs %d: batch solve differs at %d: %v vs %v", bi, i, got[i], want[i])
			}
		}
	}

	// The batch pays one exchange per level per substitution direction,
	// independent of B: per processor that is 2q+... collectives, versus
	// B times as many for repeated single solves.
	q := pcs[0].NumLevels()
	wantCollectives := int64(2 * q) // publishLevelBatch calls only
	if got := res.PerProc[0].Collectives; got != wantCollectives {
		t.Fatalf("batch solve used %d collectives, want %d (q=%d)", got, wantCollectives, q)
	}
}

func TestSolveBatchSizeMismatchPanics(t *testing.T) {
	_, pcs := buildBatchFixture(t, 2)
	defer func() {
		if recover() == nil {
			t.Fatalf("mismatched batch sizes did not panic")
		}
	}()
	m := pcommtest.New(t, 1, machine.Zero())
	m.Run(func(proc pcomm.Comm) {
		pcs[0].SolveBatch(proc, make([][]float64, 2), make([][]float64, 3))
	})
}

func TestProcPrecondSizeBytes(t *testing.T) {
	_, pcs := buildBatchFixture(t, 4)
	var total int64
	for _, pc := range pcs {
		s := pc.SizeBytes()
		if s <= 0 {
			t.Fatalf("SizeBytes = %d, want > 0", s)
		}
		total += s
	}
	// The factors hold at least 16 bytes per stored entry.
	var nnz int
	for _, pc := range pcs {
		nnz += pc.NNZ()
	}
	if total < int64(16*nnz)/2 {
		t.Fatalf("SizeBytes total %d implausibly small for %d stored entries", total, nnz)
	}
}
