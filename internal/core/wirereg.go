package core

import (
	"repro/internal/ilu"
	"repro/internal/pcomm"
)

// Every payload type this package puts through Send or AllGather must be
// registered with the wire codec so the multi-process netcomm backend
// can serialize it; the in-process backends pass these by reference and
// never notice.
func init() {
	pcomm.RegisterWire(levelValues{})
	pcomm.RegisterWire(levelValuesBatch{})
	pcomm.RegisterWire(ilu.URow{})
	pcomm.RegisterWire([]ilu.URow(nil))
}
