package core

import (
	"fmt"

	"repro/internal/ilu"
	"repro/internal/sparse"
)

// GatherFactors reassembles the global permuted factors from every
// processor's piece: the permutation perm (original index → elimination
// order) and Factors such that L·U approximates P·A·Pᵀ up to the entries
// removed by the dropping rules. Diagnostic/test use — a production solve
// never forms the global factors.
func GatherFactors(pcs []*ProcPrecond) (*ilu.Factors, []int, error) {
	if len(pcs) == 0 {
		return nil, nil, fmt.Errorf("core: no processor pieces")
	}
	n := pcs[0].plan.A.N
	perm := make([]int, n)
	for i := range perm {
		perm[i] = -1
	}
	lCols := make([][]int, n)
	lVals := make([][]float64, n)
	uCols := make([][]int, n)
	uVals := make([][]float64, n)
	for _, pc := range pcs {
		for li, g := range pc.owned {
			nid := pc.newOf[li]
			if nid < 0 || nid >= n {
				return nil, nil, fmt.Errorf("core: row %d has invalid new id %d", g, nid)
			}
			if perm[g] != -1 {
				return nil, nil, fmt.Errorf("core: row %d assigned twice", g)
			}
			perm[g] = nid
			lCols[nid] = pc.lCols[li]
			lVals[nid] = pc.lVals[li]
			uc := append([]int{nid}, pc.uCols[li]...)
			uv := append([]float64{pc.uDiag[li]}, pc.uVals[li]...)
			uCols[nid] = uc
			uVals[nid] = uv
		}
	}
	for i, p := range perm {
		if p == -1 {
			return nil, nil, fmt.Errorf("core: row %d never assigned", i)
		}
	}
	f := &ilu.Factors{
		L: sparse.FromRows(n, n, lCols, lVals),
		U: sparse.FromRows(n, n, uCols, uVals),
	}
	return f, perm, nil
}
