// Package core implements the paper's contribution: the parallel
// threshold-based incomplete LU factorization (PILUT) and its ILUT*
// variant for distributed-memory machines, together with the parallel
// forward/backward substitutions used to apply the preconditioner.
//
// The algorithm follows §4–§5 of the paper:
//
//  1. The matrix graph is partitioned across processors (see
//     internal/partition); rows whose neighbours are all local are
//     *interior*, the rest are *interface*.
//  2. Phase 1: each processor ILUT-factors its interior rows independently
//     and eliminates the interior unknowns from its interface rows, forming
//     its piece of the global reduced matrix A^I.
//  3. Phase 2: the interface rows are factored level by level. Each level
//     computes a maximal independent set of the *current* reduced matrix
//     (whose structure includes all fill so far — the paper's Figure 1(b)
//     pitfall), factors its rows concurrently, exchanges the needed U rows,
//     and eliminates the level's unknowns from the remaining rows
//     (Algorithm 2). ILUT* caps the reduced rows at K·M entries.
//  4. Triangular solves reuse the level structure: interior unknowns are
//     solved locally; interface unknowns level by level with one
//     value exchange per level (q implicit synchronization points).
//
// All indices during factorization live in a combined space of size 2n:
// already-factored unknowns use their position in the elimination order
// ("new id" < n), not-yet-factored unknowns use n + original id. This lets
// the elimination kernels work with contiguous pivot ranges while the
// final order of interface unknowns is still being discovered.
package core

import (
	"fmt"

	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/sparse"
)

// Plan is the immutable shared preprocessing of a parallel factorization:
// the row classification (interior vs interface) and the static numbering
// of interior unknowns. Build it once; every processor reads it.
type Plan struct {
	A   *sparse.CSR
	Lay *dist.Layout

	Interior    []bool // per global row
	IntBase     []int  // per processor: first new id of its interior block
	NIntLocal   []int  // per processor: interior count
	TotInterior int
	NInterface  int
	// NewOfInterior maps a global row to its new id if interior, else −1.
	NewOfInterior []int
	// RowTau caches t-relative norms: RowTau[i] = ‖a_i‖₂ of the original
	// matrix, so every level uses the paper's "original row norm" rule.
	RowTau []float64
}

// NewPlan classifies rows against the layout and numbers the interior
// unknowns processor by processor. Classification uses the symmetrized
// structure: a row is interface if it is coupled to a remote row in either
// direction.
func NewPlan(a *sparse.CSR, lay *dist.Layout) (*Plan, error) {
	if a.N != a.M {
		return nil, fmt.Errorf("core: matrix must be square")
	}
	if a.N != lay.N {
		return nil, fmt.Errorf("core: matrix size %d does not match layout size %d", a.N, lay.N)
	}
	g := graph.FromMatrix(a)
	boundary := g.Boundary(lay.PartOf)

	p := &Plan{A: a, Lay: lay}
	p.Interior = make([]bool, a.N)
	for i := range p.Interior {
		p.Interior[i] = !boundary[i]
	}
	p.IntBase = make([]int, lay.P)
	p.NIntLocal = make([]int, lay.P)
	p.NewOfInterior = make([]int, a.N)
	for i := range p.NewOfInterior {
		p.NewOfInterior[i] = -1
	}
	base := 0
	for q := 0; q < lay.P; q++ {
		p.IntBase[q] = base
		for _, i := range lay.Rows[q] { // increasing global order
			if p.Interior[i] {
				p.NewOfInterior[i] = base
				base++
			}
		}
		p.NIntLocal[q] = base - p.IntBase[q]
	}
	p.TotInterior = base
	p.NInterface = a.N - base

	p.RowTau = make([]float64, a.N)
	for i := 0; i < a.N; i++ {
		p.RowTau[i] = a.RowNorm2(i)
	}
	return p, nil
}

// InteriorFraction reports the share of rows that are interior — the
// quantity a good partition maximizes.
func (p *Plan) InteriorFraction() float64 {
	return float64(p.TotInterior) / float64(p.A.N)
}
