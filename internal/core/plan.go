// Package core implements the paper's contribution: the parallel
// threshold-based incomplete LU factorization (PILUT) and its ILUT*
// variant for distributed-memory machines, together with the parallel
// forward/backward substitutions used to apply the preconditioner.
//
// The algorithm follows §4–§5 of the paper:
//
//  1. The matrix graph is partitioned across processors (see
//     internal/partition); rows whose neighbours are all local are
//     *interior*, the rest are *interface*.
//  2. Phase 1: each processor ILUT-factors its interior rows independently
//     and eliminates the interior unknowns from its interface rows, forming
//     its piece of the global reduced matrix A^I.
//  3. Phase 2: the interface rows are factored level by level. Each level
//     computes a maximal independent set of the *current* reduced matrix
//     (whose structure includes all fill so far — the paper's Figure 1(b)
//     pitfall), factors its rows concurrently, exchanges the needed U rows,
//     and eliminates the level's unknowns from the remaining rows
//     (Algorithm 2). ILUT* caps the reduced rows at K·M entries.
//  4. Triangular solves reuse the level structure: interior unknowns are
//     solved locally; interface unknowns level by level with one
//     value exchange per level (q implicit synchronization points).
//
// All indices during factorization live in a combined space of size 2n:
// already-factored unknowns use their position in the elimination order
// ("new id" < n), not-yet-factored unknowns use n + original id. This lets
// the elimination kernels work with contiguous pivot ranges while the
// final order of interface unknowns is still being discovered.
//
// The preprocessing is split into a pattern-only Symbolic phase
// (Analyze) and a cheap value binding (Symbolic.Bind); Factor composes
// them with the numeric kernels, while Refactor reuses a previous
// Symbolic across a matrix sequence whose values evolve on a fixed
// sparsity pattern. See DESIGN.md §14 for what is — and deliberately is
// not — part of the symbolic artifact.
package core

import (
	"fmt"

	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/sparse"
)

// Symbolic is the pattern-only preprocessing of a parallel factorization:
// everything derivable from the sparsity structure and the layout alone —
// the row classification (interior vs interface), the static numbering of
// interior unknowns, and scratch sizing. It contains no matrix values, so
// it can be cached under a sparse.PatternFingerprint key and reused across
// every member of a matrix sequence that shares the pattern.
//
// Deliberately NOT part of the symbolic artifact: the Phase-2 MIS level
// schedule. The reduced matrix A^I whose adjacency drives the independent
// sets is produced by threshold dropping (τ·‖a_i‖₂), which depends on the
// values; freezing a level schedule computed from one value set would
// change the factors of the next one. Refactor therefore recomputes the
// schedule — it is interleaved with the elimination anyway — keeping
// Analyze+Refactor bitwise identical to one-shot Factor.
type Symbolic struct {
	Lay *dist.Layout

	Interior    []bool // per global row
	IntBase     []int  // per processor: first new id of its interior block
	NIntLocal   []int  // per processor: interior count
	TotInterior int
	NInterface  int
	// NewOfInterior maps a global row to its new id if interior, else −1.
	NewOfInterior []int

	// PatternKey is sparse.PatternFingerprint of the analyzed matrix: the
	// cache key under which this artifact may be reused, and the guard
	// Bind checks candidates against.
	PatternKey string
	// NNZ of the analyzed pattern; a cheap first-line Bind sanity check.
	NNZ int
	// ScratchCells is the per-processor pooled scratch size the numeric
	// phase will request (the combined 2n index space).
	ScratchCells int

	// The analyzed structure itself (aliases into the analyzed matrix, not
	// copies): Bind compares candidates against these exactly, which is a
	// linear scan — far cheaper than re-hashing — and catches any caller
	// that tries to bind a drifted pattern.
	rowPtr []int
	cols   []int
}

// Plan binds a Symbolic analysis to one concrete value set: the matrix
// itself plus the value-derived row norms the threshold dropping uses.
// Build it once per value set; every processor reads it.
type Plan struct {
	*Symbolic
	A *sparse.CSR

	// RowTau caches t-relative norms: RowTau[i] = ‖a_i‖₂ of the original
	// matrix, so every level uses the paper's "original row norm" rule.
	RowTau []float64
}

// Analyze runs the symbolic phase: it classifies rows against the layout
// using the symmetrized structure (a row is interface if it is coupled to
// a remote row in either direction) and numbers the interior unknowns
// processor by processor. The result depends only on the sparsity pattern
// and the layout — values never enter.
func Analyze(a *sparse.CSR, lay *dist.Layout) (*Symbolic, error) {
	if a.N != a.M {
		return nil, fmt.Errorf("core: matrix must be square")
	}
	if a.N != lay.N {
		return nil, fmt.Errorf("core: matrix size %d does not match layout size %d", a.N, lay.N)
	}
	g := graph.FromMatrix(a)
	boundary := g.Boundary(lay.PartOf)

	s := &Symbolic{
		Lay:          lay,
		PatternKey:   sparse.PatternFingerprint(a),
		NNZ:          a.NNZ(),
		ScratchCells: 2 * a.N,
		rowPtr:       a.RowPtr,
		cols:         a.Cols,
	}
	s.Interior = make([]bool, a.N)
	for i := range s.Interior {
		s.Interior[i] = !boundary[i]
	}
	s.IntBase = make([]int, lay.P)
	s.NIntLocal = make([]int, lay.P)
	s.NewOfInterior = make([]int, a.N)
	for i := range s.NewOfInterior {
		s.NewOfInterior[i] = -1
	}
	base := 0
	for q := 0; q < lay.P; q++ {
		s.IntBase[q] = base
		for _, i := range lay.Rows[q] { // increasing global order
			if s.Interior[i] {
				s.NewOfInterior[i] = base
				base++
			}
		}
		s.NIntLocal[q] = base - s.IntBase[q]
	}
	s.TotInterior = base
	s.NInterface = a.N - base
	return s, nil
}

// Bind attaches a concrete value set to the analysis, producing the Plan
// the numeric kernels read. The matrix must share the analyzed sparsity
// pattern — a changed pattern invalidates the classification and the
// interior numbering, so Bind refuses it and the caller must re-Analyze.
// Binding is the only per-value-set preprocessing: one pass computing the
// row 2-norms the threshold dropping is relative to.
func (s *Symbolic) Bind(a *sparse.CSR) (*Plan, error) {
	if a.N != s.Lay.N || a.M != s.Lay.N || a.NNZ() != s.NNZ {
		return nil, fmt.Errorf("core: matrix %dx%d/%d entries does not match analyzed pattern %d/%d entries",
			a.N, a.M, a.NNZ(), s.Lay.N, s.NNZ)
	}
	if !s.samePattern(a) {
		return nil, fmt.Errorf("core: matrix pattern does not match analyzed pattern %s — re-run Analyze", s.PatternKey)
	}
	p := &Plan{Symbolic: s, A: a}
	p.RowTau = make([]float64, a.N)
	for i := 0; i < a.N; i++ {
		p.RowTau[i] = a.RowNorm2(i)
	}
	return p, nil
}

// samePattern reports whether a's structure equals the analyzed one,
// with a pointer fast path for the common case of binding the very
// matrix that was analyzed.
func (s *Symbolic) samePattern(a *sparse.CSR) bool {
	if len(a.RowPtr) != len(s.rowPtr) || len(a.Cols) != len(s.cols) {
		return false
	}
	if (len(a.RowPtr) == 0 || &a.RowPtr[0] == &s.rowPtr[0]) &&
		(len(a.Cols) == 0 || &a.Cols[0] == &s.cols[0]) {
		return true
	}
	for i, p := range s.rowPtr {
		if a.RowPtr[i] != p {
			return false
		}
	}
	for i, c := range s.cols {
		if a.Cols[i] != c {
			return false
		}
	}
	return true
}

// NewPlan is the one-shot composition Analyze + Bind, kept as the
// entry point for callers without a sequence to amortize over.
func NewPlan(a *sparse.CSR, lay *dist.Layout) (*Plan, error) {
	s, err := Analyze(a, lay)
	if err != nil {
		return nil, err
	}
	return s.Bind(a)
}

// InteriorFraction reports the share of rows that are interior — the
// quantity a good partition maximizes.
func (s *Symbolic) InteriorFraction() float64 {
	return float64(s.TotInterior) / float64(s.Lay.N)
}

// SizeBytes estimates the heap footprint of the artifact for cache
// accounting. The layout is counted too: a cached Symbolic keeps its
// layout alive, and the two are reused as a unit.
func (s *Symbolic) SizeBytes() int64 {
	b := int64(len(s.Interior)) // bools
	b += 8 * int64(len(s.IntBase)+len(s.NIntLocal)+len(s.NewOfInterior))
	b += int64(len(s.PatternKey))
	if s.Lay != nil {
		b += s.Lay.SizeBytes()
	}
	return b
}
