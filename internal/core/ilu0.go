package core

import (
	"sort"

	"repro/internal/ilu"
	"repro/internal/mis"
	"repro/internal/pcomm"
)

// FactorILU0 is the parallel zero-fill factorization the paper contrasts
// PILUT with (§3, Figure 1(a), and reference [9]): because ILU(0) creates
// no fill, the reduced matrices' structure is known in advance, so the
// *entire* elimination schedule — every independent set of the interface —
// is computed before a single numeric operation. The numeric phase then
// runs the levels with only the pivot-row exchanges, no per-level
// scheduling synchronization.
//
// The result is a ProcPrecond with the same solve machinery as Factor;
// its factors have exactly the pattern of the permuted matrix.
func FactorILU0(p pcomm.Comm, plan *Plan, misRounds int, seed int64) *ProcPrecond {
	if misRounds <= 0 {
		misRounds = mis.DefaultRounds
	}
	n := plan.A.N
	lay := plan.Lay
	me := p.ID()

	pc := &ProcPrecond{
		plan:  plan,
		me:    me,
		owned: lay.Rows[me],
	}
	nLocal := len(pc.owned)
	pc.newOf = make([]int, nLocal)
	pc.lCols = make([][]int, nLocal)
	pc.lVals = make([][]float64, nLocal)
	pc.uCols = make([][]int, nLocal)
	pc.uVals = make([][]float64, nLocal)
	pc.uDiag = make([]float64, nLocal)
	pc.Stats.NInterface = plan.NInterface
	pc.Stats.NInterior = plan.NIntLocal[me]

	localIdx := make(map[int]int, nLocal)
	for li, g := range pc.owned {
		localIdx[g] = li
	}
	enc := func(j int) int {
		if nid := plan.NewOfInterior[j]; nid >= 0 {
			return nid
		}
		return n + j
	}
	st := &pc.Stats.ILU
	s := getScratch(2 * n)
	defer putScratch(s)
	intBase := plan.IntBase[me]
	nInt := plan.NIntLocal[me]

	// ---- Phase 1: interiors, then interface rows, pattern-restricted ---
	localU := make([]ilu.URow, nInt)
	localUSet := make([]bool, nInt)
	pivotLookup := func(k int) *ilu.URow {
		if !localUSet[k-intBase] {
			return nil
		}
		return &localU[k-intBase]
	}
	encCols := make([]int, 0, 64)
	encVals := make([]float64, 0, 64)
	encRow := func(g int) ([]int, []float64) {
		cols, vals := plan.A.Row(g)
		ec := encCols[:0]
		ev := encVals[:0]
		for k, j := range cols {
			ec = append(ec, enc(j))
			ev = append(ev, vals[k])
		}
		sortPair(ec, ev)
		encCols, encVals = ec, ev
		return ec, ev
	}
	for _, g := range pc.owned {
		if !plan.Interior[g] {
			continue
		}
		li := localIdx[g]
		myNew := plan.NewOfInterior[g]
		pc.newOf[li] = myNew
		pc.interiorLocal = append(pc.interiorLocal, li)
		ec, ev := encRow(g)
		lC, lV, rC, rV := s.EliminateRowStatic(myNew, ec, ev, nil, nil,
			pivotLookup, intBase, myNew, st)
		urow, err := s.FactorPivotRow(myNew, rC, rV, 0, 0, 0, st)
		if err != nil {
			panic(err)
		}
		localU[myNew-intBase] = urow
		localUSet[myNew-intBase] = true
		pc.lCols[li], pc.lVals[li] = lC, lV
		pc.uCols[li], pc.uVals[li] = urow.Cols, urow.Vals
		pc.uDiag[li] = urow.Diag
	}
	reduced := make([]redRow, nLocal)
	var ifaceLocal []int
	for _, g := range pc.owned {
		if plan.Interior[g] {
			continue
		}
		li := localIdx[g]
		ec, ev := encRow(g)
		lC, lV, rC, rV := s.EliminateRowStatic(n+g, ec, ev, nil, nil,
			pivotLookup, intBase, intBase+nInt, st)
		pc.lCols[li], pc.lVals[li] = lC, lV
		reduced[li] = redRow{rC, rV}
		ifaceLocal = append(ifaceLocal, li)
		pc.Stats.ReducedNNZ0 += len(rC)
	}

	var flopsCharged float64
	charge := func() {
		if pending := pc.Stats.ILU.Flops - flopsCharged; pending > 0 {
			p.Work(pending)
			flopsCharged += pending
		}
	}
	charge()

	// ---- Phase 2a: precompute the whole schedule (no numeric work) -----
	// The static reduced structure never changes, so the independent sets
	// are just successive MIS calls with a shrinking active mask — all of
	// them before any elimination, the defining property of ILU(0).
	ownedIDs := make([]int, len(ifaceLocal))
	adj := make([][]int, len(ifaceLocal))
	for k, li := range ifaceLocal {
		g := pc.owned[li]
		ownedIDs[k] = g
		var nbrs []int
		for _, c := range reduced[li].cols {
			if o := c - n; o != g {
				nbrs = append(nbrs, o)
			}
		}
		adj[k] = nbrs
	}
	ownerOf := func(g int) int { return lay.PartOf[g] }
	active := make([]bool, len(ifaceLocal))
	for i := range active {
		active[i] = true
	}
	type levelPlan struct {
		sel      []bool
		ex       *mis.Exchange
		myOffset int
		size     int
	}
	var schedule []levelPlan
	nl := plan.TotInterior
	for {
		sel, ex := mis.DistributedPlan(p, ownedIDs, adj, active, ownerOf,
			misRounds, seed+int64(len(schedule))*7919)
		if ex.GlobalActive == 0 {
			break
		}
		mineCount := 0
		for k := range sel {
			if sel[k] {
				mineCount++
				active[k] = false
			}
		}
		counts := pcomm.AllGatherInts(p, []int{mineCount})
		lp := levelPlan{sel: sel, ex: ex, myOffset: nl}
		for q := 0; q < lay.P; q++ {
			if q < me {
				lp.myOffset += counts[q][0]
			}
			lp.size += counts[q][0]
		}
		schedule = append(schedule, lp)
		nl += lp.size
	}

	// ---- Phase 2b: numeric elimination over the precomputed levels -----
	nl = plan.TotInterior
	factored := make([]bool, len(ifaceLocal))
	for _, lp := range schedule {
		nl1 := nl + lp.size
		pc.levels = append(pc.levels, LevelInfo{Start: nl, Size: lp.size})

		levelNew := make(map[int]int, lp.size)
		pivotByNew := make(map[int]*ilu.URow)
		var members []int
		rank := 0
		ufLocal := make(map[int]*ilu.URow)
		for k, li := range ifaceLocal {
			if !lp.sel[k] {
				continue
			}
			g := pc.owned[li]
			urow, err := ilu.FactorPivotRowStatic(n+g, reduced[li].cols, reduced[li].vals, st)
			if err != nil {
				panic(err)
			}
			urow.Col = lp.myOffset + rank
			urow.Orig = g
			rank++
			levelNew[g] = urow.Col
			pivotByNew[urow.Col] = &urow
			ufLocal[g] = &urow
			pc.newOf[li] = urow.Col
			pc.uCols[li], pc.uVals[li] = urow.Cols, urow.Vals
			pc.uDiag[li] = urow.Diag
			reduced[li] = redRow{}
			factored[k] = true
			members = append(members, li)
		}
		sort.Slice(members, func(a, b int) bool { return pc.newOf[members[a]] < pc.newOf[members[b]] })
		pc.levelMembers = append(pc.levelMembers, members)

		// Pivot-row pushes along the level's exchange plan.
		for q := 0; q < lay.P; q++ {
			if q == me || len(lp.ex.NeedBy[q]) == 0 {
				continue
			}
			var rows []ilu.URow
			for _, k := range lp.ex.NeedBy[q] {
				if !lp.sel[k] {
					continue
				}
				rows = append(rows, *ufLocal[ownedIDs[k]])
			}
			p.Send(q, tagPivotRows, rows, ilu.BytesOfURows(rows))
		}
		for q := 0; q < lay.P; q++ {
			if q == me || len(lp.ex.ReqFrom[q]) == 0 {
				continue
			}
			rows := p.Recv(q, tagPivotRows).([]ilu.URow)
			for k := range rows {
				levelNew[rows[k].Orig] = rows[k].Col
				pivotByNew[rows[k].Col] = &rows[k]
			}
		}

		for k, li := range ifaceLocal {
			if lp.sel[k] || factored[k] {
				continue
			}
			g := pc.owned[li]
			rc := reduced[li].cols
			rv := reduced[li].vals
			tC := make([]int, len(rc))
			copy(tC, rc)
			for idx, c := range rc {
				if nid, ok := levelNew[c-n]; ok {
					tC[idx] = nid
				}
			}
			sortPair(tC, rv)
			lC, lV, nrC, nrV := s.EliminateRowStatic(n+g, tC, rv,
				pc.lCols[li], pc.lVals[li],
				func(k int) *ilu.URow { return pivotByNew[k] },
				nl, nl1, st)
			pc.lCols[li], pc.lVals[li] = lC, lV
			reduced[li] = redRow{nrC, nrV}
		}
		charge()
		nl = nl1
	}
	pc.Stats.NumLevels = len(pc.levels)

	// Final translation, identical to Factor's.
	var pairs []int
	for li, g := range pc.owned {
		if !plan.Interior[g] {
			pairs = append(pairs, g, pc.newOf[li])
		}
	}
	allPairs := pcomm.AllGatherInts(p, pairs)
	newOfIface := make(map[int]int, plan.NInterface)
	for _, pp := range allPairs {
		for i := 0; i < len(pp); i += 2 {
			newOfIface[pp[i]] = pp[i+1]
		}
	}
	for li := range pc.uCols {
		for k, c := range pc.uCols[li] {
			if c >= n {
				nid, ok := newOfIface[c-n]
				if !ok {
					panic("core: unfactored column survived ILU(0)")
				}
				pc.uCols[li][k] = nid
			}
		}
		sortPair(pc.uCols[li], pc.uVals[li])
	}

	pc.xInt = make([]float64, nInt)
	pc.xIface = make([]float64, plan.NInterface)
	p.Barrier()
	return pc
}
