package service

import "sync"

// Histogram is a fixed-bucket histogram snapshot. Bounds are upper edges
// (non-cumulative counts); observations above the last bound land in
// Overflow.
type Histogram struct {
	Bounds   []float64 `json:"bounds"`
	Counts   []int64   `json:"counts"`
	Overflow int64     `json:"overflow"`
	Count    int64     `json:"count"`
	Sum      float64   `json:"sum"`
}

// histogram is the mutable counterpart; callers hold the collector lock.
type histogram struct {
	bounds   []float64
	counts   []int64
	overflow int64
	count    int64
	sum      float64
}

func newHistogram(bounds []float64) *histogram {
	return &histogram{bounds: bounds, counts: make([]int64, len(bounds))}
}

func (h *histogram) observe(v float64) {
	h.count++
	h.sum += v
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i]++
			return
		}
	}
	h.overflow++
}

func (h *histogram) snapshot() Histogram {
	return Histogram{
		Bounds:   append([]float64(nil), h.bounds...),
		Counts:   append([]int64(nil), h.counts...),
		Overflow: h.overflow,
		Count:    h.count,
		Sum:      h.sum,
	}
}

// CacheStats describes the factorization cache and its symbolic tier.
type CacheStats struct {
	Entries        int   `json:"entries"`
	Bytes          int64 `json:"bytes"`
	BudgetBytes    int64 `json:"budget_bytes"`
	Hits           int64 `json:"hits"`
	Misses         int64 `json:"misses"`
	Evictions      int64 `json:"evictions"`
	Factorizations int64 `json:"factorizations"`

	// Symbolic-tier counters. A symbolic hit means a build found the
	// pattern's analysis already cached (only the numeric phase ran);
	// RefactorBuilds counts exactly those value-only rebuilds.
	SymbolicEntries int   `json:"symbolic_entries"`
	SymbolicBytes   int64 `json:"symbolic_bytes"`
	SymbolicHits    int64 `json:"symbolic_hits"`
	SymbolicMisses  int64 `json:"symbolic_misses"`
	RefactorBuilds  int64 `json:"refactor_builds"`
}

// SolveStats describes the solve pipeline.
type SolveStats struct {
	Requests  int64 `json:"requests"`
	Completed int64 `json:"completed"`
	Canceled  int64 `json:"canceled"`
	Errors    int64 `json:"errors"`

	Batches    int64 `json:"batches"`
	BatchedRHS int64 `json:"batched_rhs"`
	MaxBatch   int   `json:"max_batch"`

	// Failure-containment counters: Shed counts requests rejected by the
	// bounded queue, BreakerRejected counts requests bounced off an open
	// circuit breaker, LadderRetries counts recovery-ladder rung climbs
	// after a breakdown, and Degraded counts solves answered through a
	// ladder-built (degraded) preconditioner.
	Shed            int64 `json:"shed"`
	BreakerRejected int64 `json:"breaker_rejected"`
	LadderRetries   int64 `json:"ladder_retries"`
	Degraded        int64 `json:"degraded"`

	// Sequence counters: WarmStarted counts solves seeded with a caller
	// initial guess (Options.X0), Sequences counts SolveSequence calls and
	// SequenceSteps their total step count.
	WarmStarted   int64 `json:"warm_started"`
	Sequences     int64 `json:"sequences"`
	SequenceSteps int64 `json:"sequence_steps"`

	// LatencyMs is wall-clock milliseconds from request acceptance to
	// response; Iterations is matrix–vector products per completed solve.
	LatencyMs  Histogram `json:"latency_ms"`
	Iterations Histogram `json:"iterations"`

	// ModelledSeconds accumulates the virtual machine clock of every
	// solve run (the paper's cost model, not wall time).
	ModelledSeconds float64 `json:"modelled_seconds"`
}

// Stats is a point-in-time snapshot of the whole service.
type Stats struct {
	Matrices   int        `json:"matrices"`
	QueueDepth int        `json:"queue_depth"`
	Running    int        `json:"running_batches"`
	Cache      CacheStats `json:"cache"`
	Solves     SolveStats `json:"solves"`
	// Cluster carries cross-daemon traffic counters; nil outside a
	// cluster.
	Cluster *ClusterStats `json:"cluster,omitempty"`
}

var (
	latencyBoundsMs = []float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000}
	iterationBounds = []float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000}
)

// statsCollector aggregates solve-side counters; cache counters live in
// the cache itself and are merged at snapshot time.
type statsCollector struct {
	mu         sync.Mutex
	requests   int64
	completed  int64
	canceled   int64
	errors     int64
	batches    int64
	batchedRHS int64
	maxBatch   int
	shed       int64
	breakerRej int64
	ladderRet  int64
	degraded   int64
	warmStart  int64
	sequences  int64
	seqSteps   int64
	latency    *histogram
	iterations *histogram
	modelled   float64
}

func newStatsCollector() *statsCollector {
	return &statsCollector{
		latency:    newHistogram(latencyBoundsMs),
		iterations: newHistogram(iterationBounds),
	}
}

func (s *statsCollector) request() {
	s.mu.Lock()
	s.requests++
	s.mu.Unlock()
}

func (s *statsCollector) batch(size int, modelledSeconds float64) {
	s.mu.Lock()
	s.batches++
	s.batchedRHS += int64(size)
	if size > s.maxBatch {
		s.maxBatch = size
	}
	s.modelled += modelledSeconds
	s.mu.Unlock()
}

func (s *statsCollector) completedSolve(latencyMs float64, iterations int) {
	s.mu.Lock()
	s.completed++
	s.latency.observe(latencyMs)
	s.iterations.observe(float64(iterations))
	s.mu.Unlock()
}

func (s *statsCollector) canceledSolve() {
	s.mu.Lock()
	s.canceled++
	s.mu.Unlock()
}

func (s *statsCollector) failedSolve() {
	s.mu.Lock()
	s.errors++
	s.mu.Unlock()
}

func (s *statsCollector) shedRequest() {
	s.mu.Lock()
	s.shed++
	s.mu.Unlock()
}

func (s *statsCollector) breakerRejected() {
	s.mu.Lock()
	s.breakerRej++
	s.mu.Unlock()
}

func (s *statsCollector) ladderRetry() {
	s.mu.Lock()
	s.ladderRet++
	s.mu.Unlock()
}

func (s *statsCollector) degradedSolve() {
	s.mu.Lock()
	s.degraded++
	s.mu.Unlock()
}

func (s *statsCollector) warmStarted() {
	s.mu.Lock()
	s.warmStart++
	s.mu.Unlock()
}

func (s *statsCollector) sequence(steps int) {
	s.mu.Lock()
	s.sequences++
	s.seqSteps += int64(steps)
	s.mu.Unlock()
}

// degradedCount reads the degraded-solve counter for health reports.
func (s *statsCollector) degradedCount() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.degraded
}

func (s *statsCollector) snapshot() SolveStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return SolveStats{
		Requests:        s.requests,
		Completed:       s.completed,
		Canceled:        s.canceled,
		Errors:          s.errors,
		Batches:         s.batches,
		BatchedRHS:      s.batchedRHS,
		MaxBatch:        s.maxBatch,
		Shed:            s.shed,
		BreakerRejected: s.breakerRej,
		LadderRetries:   s.ladderRet,
		Degraded:        s.degraded,
		WarmStarted:     s.warmStart,
		Sequences:       s.sequences,
		SequenceSteps:   s.seqSteps,
		LatencyMs:       s.latency.snapshot(),
		Iterations:      s.iterations.snapshot(),
		ModelledSeconds: s.modelled,
	}
}
