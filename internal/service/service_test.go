package service

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/krylov"
	"repro/internal/matgen"
	"repro/internal/sparse"
)

func testConfig() Config {
	return Config{Procs: 4, Workers: 2, MaxBatch: 8}
}

// slowBudget is the matvec budget of "blocker" solves (unreachable
// tolerance, so they run to the budget): long enough to be observed by
// the tests' polling, short enough not to dominate the race lane, which
// shrinks it further via PILUT_TEST_FAST.
func slowBudget() int {
	if os.Getenv("PILUT_TEST_FAST") != "" {
		return 400
	}
	return 1500
}

func rhs(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	return b
}

// relResidual computes ‖b − A·x‖/‖b‖ with the true (unpreconditioned)
// operator, independently of anything the service reports.
func relResidual(a *sparse.CSR, x, b []float64) float64 {
	y := make([]float64, a.N)
	a.MulVec(y, x)
	var rr, bb float64
	for i := range b {
		d := b[i] - y[i]
		rr += d * d
		bb += b[i] * b[i]
	}
	return math.Sqrt(rr) / math.Sqrt(bb)
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestFactorOnceSolveMany(t *testing.T) {
	s := New(testConfig())
	defer s.Shutdown(context.Background())

	a := matgen.Grid2D(16, 16)
	key, known, err := s.Submit(a)
	if err != nil || known {
		t.Fatalf("Submit: key=%q known=%v err=%v", key, known, err)
	}
	if key2, known2, _ := s.Submit(a.Clone()); key2 != key || !known2 {
		t.Fatalf("resubmit of identical matrix: key=%q known=%v, want %q true", key2, known2, key)
	}

	const solves = 3
	for i := 0; i < solves; i++ {
		res, err := s.Solve(context.Background(), key, rhs(a.N, int64(100+i)), SolveOptions{Tol: 1e-8})
		if err != nil {
			t.Fatalf("solve %d: %v", i, err)
		}
		if !res.Converged {
			t.Fatalf("solve %d did not converge: %+v", i, res)
		}
		if rr := relResidual(a, res.X, rhs(a.N, int64(100+i))); rr > 1e-6 {
			t.Fatalf("solve %d: true relative residual %g too large", i, rr)
		}
		if wantHit := i > 0; res.CacheHit != wantHit {
			t.Fatalf("solve %d: CacheHit=%v, want %v", i, res.CacheHit, wantHit)
		}
	}

	st := s.StatsSnapshot()
	if st.Cache.Factorizations != 1 {
		t.Fatalf("factorizations = %d, want 1 (factor once, solve many)", st.Cache.Factorizations)
	}
	if st.Cache.Misses != 1 || st.Cache.Hits != solves-1 {
		t.Fatalf("cache hits/misses = %d/%d, want %d/1", st.Cache.Hits, st.Cache.Misses, solves-1)
	}
	if st.Solves.Completed != solves {
		t.Fatalf("completed = %d, want %d", st.Solves.Completed, solves)
	}
	if st.Matrices != 1 {
		t.Fatalf("matrices = %d, want 1", st.Matrices)
	}
	if st.Solves.LatencyMs.Count != solves || st.Solves.Iterations.Count != solves {
		t.Fatalf("histograms recorded %d/%d observations, want %d",
			st.Solves.LatencyMs.Count, st.Solves.Iterations.Count, solves)
	}
}

func TestLRUEvictionUnderByteBudget(t *testing.T) {
	// A 1-byte budget makes every entry oversized: the cache holds
	// exactly the most recent factorization, and each insert evicts the
	// previous one. Solving A, then B, then A again must therefore
	// refactor A — and still produce a correct answer.
	cfg := testConfig()
	cfg.CacheBytes = 1
	s := New(cfg)
	defer s.Shutdown(context.Background())

	mA := matgen.Grid2D(12, 12)
	mB := matgen.Grid2D(13, 13)
	keyA, _, _ := s.Submit(mA)
	keyB, _, _ := s.Submit(mB)
	if keyA == keyB {
		t.Fatal("distinct matrices share a fingerprint")
	}

	for i, step := range []struct {
		key string
		a   *sparse.CSR
	}{{keyA, mA}, {keyB, mB}, {keyA, mA}} {
		res, err := s.Solve(context.Background(), step.key, rhs(step.a.N, int64(i)), SolveOptions{})
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		if res.CacheHit {
			t.Fatalf("step %d: unexpected cache hit — eviction did not happen", i)
		}
		if rr := relResidual(step.a, res.X, rhs(step.a.N, int64(i))); rr > 1e-6 {
			t.Fatalf("step %d: residual %g after refactorization", i, rr)
		}
	}

	st := s.StatsSnapshot()
	if st.Cache.Factorizations != 3 {
		t.Fatalf("factorizations = %d, want 3 (A evicted by B, refactored)", st.Cache.Factorizations)
	}
	if st.Cache.Evictions != 2 {
		t.Fatalf("evictions = %d, want 2", st.Cache.Evictions)
	}
	if st.Cache.Entries != 1 {
		t.Fatalf("entries = %d, want 1 under a 1-byte budget", st.Cache.Entries)
	}
}

func TestNoEvictionUnderGenerousBudget(t *testing.T) {
	s := New(testConfig()) // default 256 MiB budget
	defer s.Shutdown(context.Background())
	for _, nx := range []int{10, 11, 12} {
		a := matgen.Grid2D(nx, nx)
		key, _, _ := s.Submit(a)
		if _, err := s.Solve(context.Background(), key, rhs(a.N, int64(nx)), SolveOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	st := s.StatsSnapshot()
	if st.Cache.Evictions != 0 || st.Cache.Entries != 3 {
		t.Fatalf("evictions=%d entries=%d, want 0/3 under a generous budget", st.Cache.Evictions, st.Cache.Entries)
	}
	if st.Cache.Bytes <= 0 {
		t.Fatalf("cache bytes = %d, want > 0", st.Cache.Bytes)
	}
}

func TestZeroDeadlineReturnsCanceledWithoutLeaks(t *testing.T) {
	s := New(testConfig())
	a := matgen.Grid2D(16, 16)
	key, _, _ := s.Submit(a)
	// Warm the cache so the canceled request exercises the solve path,
	// not the factorization path.
	if _, err := s.Solve(context.Background(), key, rhs(a.N, 1), SolveOptions{}); err != nil {
		t.Fatal(err)
	}
	base := runtime.NumGoroutine()

	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Hour))
	defer cancel()
	_, err := s.Solve(ctx, key, rhs(a.N, 2), SolveOptions{})
	if !errors.Is(err, krylov.ErrCanceled) {
		t.Fatalf("expired deadline: err = %v, want krylov.ErrCanceled", err)
	}
	waitFor(t, "canceled request to be accounted", func() bool {
		return s.StatsSnapshot().Solves.Canceled >= 1
	})

	// A later solve still works: the canceled request left no state behind.
	if res, err := s.Solve(context.Background(), key, rhs(a.N, 3), SolveOptions{}); err != nil || !res.Converged {
		t.Fatalf("solve after cancellation: res=%+v err=%v", res, err)
	}

	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	waitFor(t, "goroutines to settle after shutdown", func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= base
	})
}

func TestDeadlineMidSolveCancelsRun(t *testing.T) {
	cfg := testConfig()
	cfg.Workers = 1
	s := New(cfg)
	defer s.Shutdown(context.Background())
	a := matgen.Grid2D(24, 24)
	key, _, _ := s.Submit(a)
	if _, err := s.Solve(context.Background(), key, rhs(a.N, 1), SolveOptions{}); err != nil {
		t.Fatal(err) // warm cache
	}

	// An unreachable tolerance keeps the run iterating until the budget;
	// the 30 ms deadline must abort it long before that, collectively.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := s.Solve(ctx, key, rhs(a.N, 2), SolveOptions{Tol: 1e-300, MaxMatVec: 50000})
	if !errors.Is(err, krylov.ErrCanceled) {
		t.Fatalf("mid-solve deadline: err = %v, want krylov.ErrCanceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v — the run was not aborted", elapsed)
	}
	waitFor(t, "worker to finish the canceled batch", func() bool {
		return s.StatsSnapshot().Running == 0
	})
}

func TestBatchCoalescing(t *testing.T) {
	cfg := testConfig()
	cfg.Workers = 1 // one executor: requests arriving during a run pile up
	s := New(cfg)
	defer s.Shutdown(context.Background())
	a := matgen.Grid2D(24, 24)
	key, _, _ := s.Submit(a)
	if _, err := s.Solve(context.Background(), key, rhs(a.N, 1), SolveOptions{}); err != nil {
		t.Fatal(err) // warm cache
	}

	// Occupy the single worker with a long run (unreachable tolerance).
	blockerDone := make(chan error, 1)
	go func() {
		_, err := s.Solve(context.Background(), key, rhs(a.N, 2), SolveOptions{Tol: 1e-300, MaxMatVec: slowBudget()})
		blockerDone <- err
	}()
	waitFor(t, "blocker to start running", func() bool {
		return s.StatsSnapshot().Running == 1
	})

	// Four concurrent requests with identical options queue up behind it
	// and must be solved as one multi-RHS batch.
	const n = 4
	results := make([]SolveResult, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = s.Solve(context.Background(), key, rhs(a.N, int64(10+i)), SolveOptions{Tol: 1e-8})
		}(i)
	}
	waitFor(t, "requests to queue behind the blocker", func() bool {
		return s.StatsSnapshot().QueueDepth >= n
	})
	wg.Wait()
	if err := <-blockerDone; err != nil {
		t.Fatalf("blocker: %v", err)
	}

	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if !results[i].Converged {
			t.Fatalf("request %d did not converge", i)
		}
		if results[i].BatchSize != n {
			t.Fatalf("request %d solved in a batch of %d, want %d (coalescing failed)", i, results[i].BatchSize, n)
		}
		if rr := relResidual(a, results[i].X, rhs(a.N, int64(10+i))); rr > 1e-6 {
			t.Fatalf("request %d: residual %g", i, rr)
		}
	}
	st := s.StatsSnapshot()
	if st.Solves.MaxBatch < n {
		t.Fatalf("max batch = %d, want ≥ %d", st.Solves.MaxBatch, n)
	}
}

func TestGracefulShutdownDrainsInFlight(t *testing.T) {
	cfg := testConfig()
	cfg.Workers = 1
	s := New(cfg)
	a := matgen.Grid2D(20, 20)
	key, _, _ := s.Submit(a)
	if _, err := s.Solve(context.Background(), key, rhs(a.N, 1), SolveOptions{}); err != nil {
		t.Fatal(err) // warm cache
	}

	inFlight := make(chan error, 1)
	go func() {
		_, err := s.Solve(context.Background(), key, rhs(a.N, 2), SolveOptions{Tol: 1e-300, MaxMatVec: slowBudget()})
		inFlight <- err
	}()
	waitFor(t, "solve to be running", func() bool {
		return s.StatsSnapshot().Running == 1
	})

	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- s.Shutdown(context.Background()) }()
	waitFor(t, "server to start draining", func() bool {
		_, _, err := s.Submit(matgen.Grid2D(5, 5))
		return errors.Is(err, ErrClosed)
	})

	// New requests are rejected while the in-flight one completes.
	if _, err := s.Solve(context.Background(), key, rhs(a.N, 3), SolveOptions{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("solve during drain: err = %v, want ErrClosed", err)
	}
	if err := <-inFlight; err != nil {
		t.Fatalf("in-flight solve was not drained cleanly: %v", err)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("graceful shutdown returned %v", err)
	}
}

func TestShutdownDeadlineFailsQueuedRequests(t *testing.T) {
	cfg := testConfig()
	cfg.Workers = 1
	s := New(cfg)
	a := matgen.Grid2D(20, 20)
	key, _, _ := s.Submit(a)
	if _, err := s.Solve(context.Background(), key, rhs(a.N, 1), SolveOptions{}); err != nil {
		t.Fatal(err)
	}

	// One running solve plus one queued behind it (different options, so
	// it cannot join the batch).
	running := make(chan error, 1)
	queued := make(chan error, 1)
	go func() {
		_, err := s.Solve(context.Background(), key, rhs(a.N, 2), SolveOptions{Tol: 1e-300, MaxMatVec: slowBudget()})
		running <- err
	}()
	waitFor(t, "first solve to run", func() bool { return s.StatsSnapshot().Running == 1 })
	go func() {
		_, err := s.Solve(context.Background(), key, rhs(a.N, 3), SolveOptions{Tol: 1e-300, MaxMatVec: slowBudget(), Restart: 7})
		queued <- err
	}()
	waitFor(t, "second solve to queue", func() bool { return s.StatsSnapshot().QueueDepth == 1 })

	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	err := s.Shutdown(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("shutdown err = %v, want DeadlineExceeded", err)
	}
	if err := <-running; err != nil {
		t.Fatalf("already-running solve must finish: %v", err)
	}
	if err := <-queued; !errors.Is(err, ErrClosed) {
		t.Fatalf("queued solve err = %v, want ErrClosed after shutdown deadline", err)
	}
}

func TestRequestValidation(t *testing.T) {
	s := New(testConfig())
	defer s.Shutdown(context.Background())

	rect := &sparse.CSR{N: 2, M: 3, RowPtr: []int{0, 0, 0}}
	if _, _, err := s.Submit(rect); err == nil {
		t.Fatal("rectangular matrix accepted")
	}
	tiny := matgen.Grid2D(1, 2) // 2 rows < 4 procs
	if _, _, err := s.Submit(tiny); err == nil {
		t.Fatal("matrix smaller than the processor count accepted")
	}
	if _, err := s.Solve(context.Background(), "deadbeef", []float64{1}, SolveOptions{}); !errors.Is(err, ErrUnknownMatrix) {
		t.Fatalf("unknown key: err = %v, want ErrUnknownMatrix", err)
	}
	a := matgen.Grid2D(8, 8)
	key, _, _ := s.Submit(a)
	if _, err := s.Solve(context.Background(), key, make([]float64, 7), SolveOptions{}); err == nil {
		t.Fatal("wrong right-hand-side length accepted")
	}
}

func TestFactorizationFailureIsAnError(t *testing.T) {
	// A malformed matrix (column index out of range) makes the
	// factorization pipeline panic; the service must answer with an
	// error, not crash the worker.
	s := New(Config{Procs: 2, Workers: 1})
	defer s.Shutdown(context.Background())

	g := matgen.Grid2D(8, 8)
	bad := g.Clone()
	bad.Cols[len(bad.Cols)/2] = bad.N + 17

	key, _, err := s.Submit(bad)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if _, err := s.Solve(context.Background(), key, make([]float64, bad.N), SolveOptions{}); err == nil {
		t.Fatal("factorization of a malformed matrix reported success")
	} else if errors.Is(err, krylov.ErrCanceled) {
		t.Fatalf("unexpected cancellation error: %v", err)
	}
	if st := s.StatsSnapshot(); st.Solves.Errors != 1 {
		t.Fatalf("errors = %d, want 1", st.Solves.Errors)
	}

	// The worker survives: a good matrix still solves.
	good := matgen.Grid2D(8, 8)
	gkey, _, _ := s.Submit(good)
	if res, err := s.Solve(context.Background(), gkey, rhs(good.N, 9), SolveOptions{}); err != nil || !res.Converged {
		t.Fatalf("solve after factorization failure: res=%+v err=%v", res, err)
	}
}
