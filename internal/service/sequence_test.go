package service

import (
	"context"
	"math"
	"testing"

	"repro/internal/matgen"
	"repro/internal/sparse"
)

// TestSymbolicReuseAcrossSequence submits a fixed-pattern matrix sequence
// and checks that only the first build pays the symbolic phase: later
// same-pattern builds are refactor-only (SymbolicHit), the symbolic cache
// holds one entry, and a refactor-only build's answer is bitwise
// identical to a cold server's answer for the same matrix.
func TestSymbolicReuseAcrossSequence(t *testing.T) {
	s := New(testConfig())
	defer s.Shutdown(context.Background())

	base := matgen.Grid2D(16, 16)
	seq := append([]*sparse.CSR{base}, matgen.Evolve(base, 2, 1e-2, 3)...)
	b := rhs(base.N, 42)

	keys := make([]string, len(seq))
	results := make([]SolveResult, len(seq))
	for i, a := range seq {
		key, known, err := s.Submit(a)
		if err != nil || known {
			t.Fatalf("submit %d: key=%q known=%v err=%v", i, key, known, err)
		}
		keys[i] = key
		res, err := s.Solve(context.Background(), key, b, SolveOptions{Tol: 1e-9})
		if err != nil || !res.Converged {
			t.Fatalf("solve %d: err=%v res=%+v", i, err, res)
		}
		results[i] = res
	}

	for i, res := range results {
		if res.CacheHit {
			t.Fatalf("step %d: CacheHit for a first-seen matrix", i)
		}
		if wantSym := i > 0; res.SymbolicHit != wantSym {
			t.Fatalf("step %d: SymbolicHit=%v, want %v", i, res.SymbolicHit, wantSym)
		}
	}

	st := s.StatsSnapshot()
	if st.Cache.SymbolicEntries != 1 {
		t.Fatalf("symbolic entries = %d, want 1 (one pattern)", st.Cache.SymbolicEntries)
	}
	if st.Cache.SymbolicMisses != 1 || st.Cache.SymbolicHits != int64(len(seq)-1) {
		t.Fatalf("symbolic hits/misses = %d/%d, want %d/1",
			st.Cache.SymbolicHits, st.Cache.SymbolicMisses, len(seq)-1)
	}
	if st.Cache.RefactorBuilds != int64(len(seq)-1) {
		t.Fatalf("refactor builds = %d, want %d", st.Cache.RefactorBuilds, len(seq)-1)
	}
	if st.Cache.Factorizations != int64(len(seq)) {
		t.Fatalf("factorizations = %d, want %d (every matrix is new)", st.Cache.Factorizations, len(seq))
	}

	// A refactor-only build must not change the numbers: a cold server
	// solving the last matrix alone produces the bitwise-identical answer.
	cold := New(testConfig())
	defer cold.Shutdown(context.Background())
	last := len(seq) - 1
	if _, _, err := cold.Submit(seq[last]); err != nil {
		t.Fatal(err)
	}
	coldRes, err := cold.Solve(context.Background(), keys[last], b, SolveOptions{Tol: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if len(coldRes.X) != len(results[last].X) {
		t.Fatalf("solution lengths differ: %d vs %d", len(coldRes.X), len(results[last].X))
	}
	for i := range coldRes.X {
		if math.Float64bits(coldRes.X[i]) != math.Float64bits(results[last].X[i]) {
			t.Fatalf("x[%d] differs between refactor-only and cold build: %x vs %x",
				i, math.Float64bits(results[last].X[i]), math.Float64bits(coldRes.X[i]))
		}
	}
	if coldRes.Iterations != results[last].Iterations {
		t.Fatalf("iteration counts differ: %d vs %d", results[last].Iterations, coldRes.Iterations)
	}
}

// TestSolveSequenceWarmStarts runs the sequence API over an evolving
// fixed-pattern family and checks warm-start plumbing: every step after
// the first is warm-started and symbolically reused, and repeating the
// final (unchanged) matrix converges at the first residual check.
func TestSolveSequenceWarmStarts(t *testing.T) {
	s := New(testConfig())
	defer s.Shutdown(context.Background())

	base := matgen.Grid2D(16, 16)
	seq := append([]*sparse.CSR{base}, matgen.Evolve(base, 2, 1e-4, 7)...)
	b := rhs(base.N, 5)

	keys := make([]string, 0, len(seq)+1)
	for _, a := range seq {
		key, _, err := s.Submit(a)
		if err != nil {
			t.Fatal(err)
		}
		keys = append(keys, key)
	}
	// Repeat the last matrix: a warm start from its own solution must
	// terminate at the first residual check.
	keys = append(keys, keys[len(keys)-1])

	results, err := s.SolveSequence(context.Background(), keys, b, SolveOptions{Tol: 1e-9}, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(keys) {
		t.Fatalf("got %d results for %d steps", len(results), len(keys))
	}
	for i, res := range results {
		if !res.Converged {
			t.Fatalf("step %d did not converge: %+v", i, res)
		}
		if wantWarm := i > 0; res.WarmStarted != wantWarm {
			t.Fatalf("step %d: WarmStarted=%v, want %v", i, res.WarmStarted, wantWarm)
		}
	}
	last := len(results) - 1
	if results[last].Iterations > 1 {
		t.Fatalf("warm start on unchanged system took %d matvecs, want ≤ 1", results[last].Iterations)
	}
	if !results[last].CacheHit {
		t.Fatal("repeated key missed the factorization cache")
	}

	st := s.StatsSnapshot()
	if st.Solves.Sequences != 1 || st.Solves.SequenceSteps != int64(len(keys)) {
		t.Fatalf("sequences=%d steps=%d, want 1/%d", st.Solves.Sequences, st.Solves.SequenceSteps, len(keys))
	}
	if st.Solves.WarmStarted != int64(len(keys)-1) {
		t.Fatalf("warm-started solves = %d, want %d", st.Solves.WarmStarted, len(keys)-1)
	}

	// Without warm starts the flag stays down.
	coldSeq, err := s.SolveSequence(context.Background(), keys[:2], b, SolveOptions{Tol: 1e-9}, false)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range coldSeq {
		if res.WarmStarted {
			t.Fatalf("step %d warm-started with warmStart=false", i)
		}
	}
}

func TestSolveX0Validation(t *testing.T) {
	s := New(testConfig())
	defer s.Shutdown(context.Background())
	a := matgen.Grid2D(8, 8)
	key, _, err := s.Submit(a)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Solve(context.Background(), key, rhs(a.N, 1), SolveOptions{X0: make([]float64, a.N-1)}); err == nil {
		t.Fatal("Solve accepted an X0 of the wrong length")
	}
	if _, err := s.SolveSequence(context.Background(), nil, rhs(a.N, 1), SolveOptions{}, true); err == nil {
		t.Fatal("SolveSequence accepted an empty key list")
	}
}

// TestSequenceMetricsExposition checks the new counter families reach the
// Prometheus exposition.
func TestSequenceMetricsExposition(t *testing.T) {
	s := New(testConfig())
	defer s.Shutdown(context.Background())

	base := matgen.Grid2D(12, 12)
	seq := append([]*sparse.CSR{base}, matgen.Evolve(base, 1, 1e-2, 9)...)
	keys := make([]string, 0, len(seq))
	for _, a := range seq {
		key, _, err := s.Submit(a)
		if err != nil {
			t.Fatal(err)
		}
		keys = append(keys, key)
	}
	if _, err := s.SolveSequence(context.Background(), keys, rhs(base.N, 3), SolveOptions{}, true); err != nil {
		t.Fatal(err)
	}

	text := scrape(t, s)
	if got := metricValue(t, text, "pilut_cache_symbolic_hits_total"); got != 1 {
		t.Fatalf("symbolic_hits_total = %v, want 1", got)
	}
	if got := metricValue(t, text, "pilut_cache_symbolic_misses_total"); got != 1 {
		t.Fatalf("symbolic_misses_total = %v, want 1", got)
	}
	if got := metricValue(t, text, "pilut_cache_refactor_builds_total"); got != 1 {
		t.Fatalf("refactor_builds_total = %v, want 1", got)
	}
	if got := metricValue(t, text, "pilut_cache_symbolic_entries"); got != 1 {
		t.Fatalf("symbolic_entries = %v, want 1", got)
	}
	if got := metricValue(t, text, "pilut_solve_warm_started_total"); got != 1 {
		t.Fatalf("warm_started_total = %v, want 1", got)
	}
	if got := metricValue(t, text, "pilut_sequences_total"); got != 1 {
		t.Fatalf("sequences_total = %v, want 1", got)
	}
	if got := metricValue(t, text, "pilut_sequence_steps_total"); got != 2 {
		t.Fatalf("sequence_steps_total = %v, want 2", got)
	}
}
