package service

// Proactive factor replication and owner-failure takeover. When a
// factorization is built on its owning daemon, the owner pushes the
// gob-encoded factor to its R HRW successors so an owner's death is
// absorbed by HRW itself: the first successor — already holding the
// bytes — becomes the new owner the moment the view writes the old one
// off, and a solve there is a cache hit, not a rebuild. On every view
// change each daemon re-walks its cache, claims keys it now owns, and
// re-replicates them to the current successor set.
//
// This file is under the errdrop analyzer's strict cluster boundary:
// every error from the net/http, io and encoding layers must be handled
// (Close excepted) — a silently dropped replica push is a silently lost
// recovery path.

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"time"
)

// Entry provenance: how a cached factorization got here. Takeover
// counting keys off it — a key this daemon owns but imported from a peer
// means the previous owner is gone.
const (
	originLocal   = "local"   // built by this daemon
	originPeer    = "peer"    // fetched on demand from the then-owner
	originReplica = "replica" // pushed proactively by the owner
)

// peerStatusError is a peer HTTP answer with a non-success status; the
// code drives the transient-vs-permanent retry split.
type peerStatusError struct {
	peer string
	op   string
	code int
}

func (e *peerStatusError) Error() string {
	return fmt.Sprintf("service: peer %s answered %d to %s", e.peer, e.code, e.op)
}

// transientFetchErr splits peer-operation failures into transient (worth
// one bounded retry: transport errors, overload and server-side
// statuses) and permanent (auth rejection, config mismatch, malformed
// request — retrying cannot help). A clean miss is neither: the peer
// answered.
func transientFetchErr(err error) bool {
	if err == nil || errors.Is(err, errPeerMiss) {
		return false
	}
	var se *peerStatusError
	if errors.As(err, &se) {
		return se.code == http.StatusTooManyRequests || se.code >= 500
	}
	// Transport-level: dial refused, connection reset, timeout — the
	// classic shapes of a daemon mid-restart or a dropped packet.
	return true
}

const (
	fetchRetryBase = 25 * time.Millisecond
	fetchRetryMax  = 250 * time.Millisecond
)

// retryBackoff picks the pause before the one retried peer operation:
// the peer breaker's retry-after hint when one is pending (the breaker
// already knows when the peer is worth probing again), otherwise a
// jittered slice around the base so colliding fetchers don't retry in
// lock-step. Always bounded by fetchRetryMax.
func (cl *cluster) retryBackoff(peer string) time.Duration {
	base := fetchRetryBase
	cl.mu.Lock()
	if hint, ok := cl.brk.retryAfter(peer); ok && hint > 0 && hint < fetchRetryMax {
		base = hint
	}
	jitter := time.Duration(cl.rng.Int63n(int64(base)))
	cl.mu.Unlock()
	d := base/2 + jitter
	if d > fetchRetryMax {
		d = fetchRetryMax
	}
	return d
}

// getFactorRetry is getFactor plus the bounded retry: one extra attempt,
// only on a transient failure, after a jittered backoff.
func (cl *cluster) getFactorRetry(peer, key string) ([]byte, error) {
	data, err := cl.getFactor(peer, key)
	if err == nil || !transientFetchErr(err) {
		return data, err
	}
	cl.fetchRetries.Add(1)
	time.Sleep(cl.retryBackoff(peer))
	return cl.getFactor(peer, key)
}

// fetchCandidate picks the next daemon worth asking for key: the owner,
// then its replicas, in HRW order — recomputed from the live view on
// every call, so a request in flight during a takeover retries against
// the updated view instead of failing with the stale one.
func (cl *cluster) fetchCandidate(key string, tried map[string]bool) string {
	r := cl.ranked(key)
	limit := 1 + cl.replicas
	if limit > len(r) {
		limit = len(r)
	}
	for _, p := range r[:limit] {
		if !tried[p] {
			return p
		}
	}
	return ""
}

// peerFetch tries to satisfy a cache miss from the cluster: the key's
// owner first, then its replicas. Failure of any kind — breaker open,
// candidates exhausted, decode mismatch — returns false and the caller
// builds locally, so no peer death can fail a request this daemon could
// answer alone. A clean miss from a healthy candidate stops the walk:
// nobody built this key yet, and a local build answers faster than more
// round-trips.
func (s *Server) peerFetch(key string) (*entry, bool) {
	cl := s.cluster
	if cl == nil {
		return nil, false
	}
	tried := map[string]bool{cl.self: true}
	for {
		peer := cl.fetchCandidate(key, tried)
		if peer == "" {
			return nil, false
		}
		tried[peer] = true
		if !cl.allow(peer) {
			continue
		}
		cl.fetches.Add(1)
		data, err := cl.getFactorRetry(peer, key)
		if err != nil {
			if errors.Is(err, errPeerMiss) {
				cl.fetchMisses.Add(1)
				cl.peerUp(peer)
				return nil, false
			}
			cl.fetchFailures.Add(1)
			cl.peerDown(peer)
			continue
		}
		cl.peerUp(peer)
		ent, err := s.importFactor(key, data)
		if err != nil {
			cl.fetchFailures.Add(1)
			continue
		}
		ent.origin = originPeer
		cl.fetchHits.Add(1)
		return ent, true
	}
}

// putReplica pushes an encoded factorization to one successor.
func (cl *cluster) putReplica(peer, key string, body []byte) error {
	ctx, cancel := context.WithTimeout(context.Background(), cl.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, peer+"/v1/peer/replica/"+url.PathEscape(key), bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	cl.authorize(req)
	resp, err := cl.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return &peerStatusError{peer: peer, op: "replica push", code: resp.StatusCode}
	}
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		return fmt.Errorf("service: draining replica answer from %s: %w", peer, err)
	}
	return nil
}

// pushReplicas sends ent to the current HRW successors of its key.
// Only the owner pushes (callers check), so R successors hold the bytes
// and the death of the owner promotes one of them for free. Block-Jacobi
// entries are not exportable and are skipped — they are the cheap rung.
// A push that does not fully land (breaker open, transport failure,
// peer rejection) marks the key pending so the probe loop retries it —
// a stable view must not strand a factor without its redundancy.
func (s *Server) pushReplicas(ent *entry) {
	cl := s.cluster
	wf, err := wireOfEntry(ent, s.cfg)
	if err != nil {
		return // not exportable; nothing to protect
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(wf); err != nil {
		cl.replicaPushFailures.Add(1)
		return
	}
	landed := true
	for _, peer := range cl.successors(ent.key) {
		if peer == cl.self {
			continue
		}
		if !cl.allow(peer) {
			landed = false
			continue
		}
		if err := cl.putReplica(peer, ent.key, buf.Bytes()); err != nil {
			cl.replicaPushFailures.Add(1)
			cl.peerDown(peer)
			landed = false
			continue
		}
		cl.replicasPushed.Add(1)
		cl.peerUp(peer)
	}
	cl.mu.Lock()
	if landed {
		delete(cl.pending, ent.key)
	} else {
		cl.pending[ent.key] = true
	}
	cl.mu.Unlock()
}

// retryPendingReplicas re-pushes owned keys whose last replica push did
// not fully land. The probe loop calls it every round, so a transient
// push failure heals within a probe interval instead of waiting for a
// view change that may never come.
func (s *Server) retryPendingReplicas() {
	cl := s.cluster
	cl.mu.Lock()
	keys := make([]string, 0, len(cl.pending))
	for k := range cl.pending {
		keys = append(keys, k)
	}
	cl.mu.Unlock()
	if len(keys) == 0 {
		return
	}
	sort.Strings(keys)
	for _, key := range keys {
		s.mu.Lock()
		ent, ok := s.cache.entries[key]
		s.mu.Unlock()
		if !ok || cl.replicas <= 0 || cl.owner(key) != cl.self {
			// Evicted, replication off, or ownership moved — the push is
			// no longer this daemon's job.
			cl.mu.Lock()
			delete(cl.pending, key)
			cl.mu.Unlock()
			continue
		}
		s.pushReplicas(ent)
	}
}

// maybeReplicate pushes a freshly built entry to its successors when
// this daemon owns the key. Runs asynchronously after a local build.
func (s *Server) maybeReplicate(ent *entry) {
	cl := s.cluster
	if cl == nil || cl.replicas <= 0 {
		return
	}
	if cl.owner(ent.key) != cl.self {
		return
	}
	s.pushReplicas(ent)
}

// ImportReplica ingests a proactively pushed factorization (the body of
// POST /v1/peer/replica/{key}). Idempotent: a key already cached answers
// known without decoding — re-replication after view changes would
// otherwise re-import every key it already delivered.
func (s *Server) ImportReplica(key string, r io.Reader) (known bool, err error) {
	cl := s.cluster
	if cl == nil {
		return false, errors.New("service: this daemon is not a cluster member")
	}
	s.mu.Lock()
	_, have := s.cache.entries[key]
	s.mu.Unlock()
	if have {
		return true, nil
	}
	data, err := io.ReadAll(io.LimitReader(r, maxMatrixWireBytes))
	if err != nil {
		return false, fmt.Errorf("service: reading replica body for %s: %w", key, err)
	}
	ent, err := s.importFactor(key, data)
	if err != nil {
		return false, err
	}
	ent.origin = originReplica
	s.mu.Lock()
	s.cache.insert(ent)
	s.mu.Unlock()
	cl.replicaImports.Add(1)
	return false, nil
}

// onViewChange reacts to a membership change: every cached key this
// daemon now owns is re-replicated to the key's current successor set,
// and keys whose bytes arrived from a peer (fetch or replica push) are
// claimed — counted once as takeovers, the signature of inheriting a
// dead owner's keys. Runs synchronously on the probe/handler goroutine;
// pushes are bounded by the per-op timeout and the breaker.
func (s *Server) onViewChange() {
	cl := s.cluster
	if cl == nil {
		return
	}
	s.mu.Lock()
	owned := make([]*entry, 0, len(s.cache.entries))
	for _, ent := range s.cache.entries {
		if cl.owner(ent.key) == cl.self {
			owned = append(owned, ent)
		}
	}
	s.mu.Unlock()
	for _, ent := range owned {
		if ent.origin != originLocal {
			cl.mu.Lock()
			first := !cl.claimed[ent.key]
			if first {
				cl.claimed[ent.key] = true
			}
			cl.mu.Unlock()
			if first {
				cl.takeovers.Add(1)
			}
		}
		if cl.replicas > 0 {
			s.pushReplicas(ent)
		}
	}
}
