package service

import (
	"context"
	"encoding/json"
	"os"
	"testing"
	"time"

	"repro/internal/ilu"
	"repro/internal/matgen"
	"repro/internal/sparse"
)

// TestEmitSequenceBench writes BENCH_sequence.json: a 16-step
// fixed-pattern matrix sequence solved warm (one server — symbolic
// analysis reused across steps, each solve warm-started from the
// previous solution) against the same 16 matrices solved cold (a fresh
// server per step: full symbolic+numeric factorization and a zero
// initial guess every time). The amortized warm per-step latency must be
// at least 2x below cold. Gated on PILUT_BENCH_SEQUENCE_OUT (the path to
// write); `make bench-sequence` sets it.
func TestEmitSequenceBench(t *testing.T) {
	out := os.Getenv("PILUT_BENCH_SEQUENCE_OUT")
	if out == "" {
		t.Skip("set PILUT_BENCH_SEQUENCE_OUT=<path> to emit BENCH_sequence.json")
	}

	const steps = 16
	const amp = 1e-5
	// A lighter preconditioner than the service default: the sequence
	// regime the bench models is iteration-dominated (many Krylov steps
	// per factorization), which is exactly where warm starts pay — a
	// near-converged guess skips almost all of them.
	cfg := benchConfig()
	cfg.Params = ilu.Params{M: 5, Tau: 1e-2, K: 2}
	base := matgen.Grid2D(64, 64)
	seq := append([]*sparse.CSR{base}, matgen.Evolve(base, steps-1, amp, 42)...)
	b := rhs(base.N, 1)
	opt := SolveOptions{Tol: 1e-9}

	// Cold lane: every step pays the whole pipeline with no reuse of any
	// kind — fresh server, full symbolic+numeric build, zero guess.
	coldMs := make([]float64, steps)
	var coldIters int
	for i, a := range seq {
		s := New(cfg)
		key, _, err := s.Submit(a)
		if err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		res, err := s.Solve(context.Background(), key, b, opt)
		if err != nil || !res.Converged || res.SymbolicHit || res.WarmStarted {
			t.Fatalf("cold step %d: res=%+v err=%v", i, res, err)
		}
		coldMs[i] = float64(time.Since(start)) / float64(time.Millisecond)
		coldIters += res.Iterations
		s.Shutdown(context.Background())
	}

	// Warm lane: one server, the sequence API.
	s := New(cfg)
	defer s.Shutdown(context.Background())
	keys := make([]string, 0, steps)
	for _, a := range seq {
		key, _, err := s.Submit(a)
		if err != nil {
			t.Fatal(err)
		}
		keys = append(keys, key)
	}
	start := time.Now()
	results, err := s.SolveSequence(context.Background(), keys, b, opt, true)
	if err != nil {
		t.Fatal(err)
	}
	warmTotalMs := float64(time.Since(start)) / float64(time.Millisecond)
	var warmIters, patternHits int
	for i, res := range results {
		if !res.Converged {
			t.Fatalf("warm step %d did not converge: %+v", i, res)
		}
		warmIters += res.Iterations
		if res.SymbolicHit {
			patternHits++
		}
	}
	if patternHits != steps-1 {
		t.Fatalf("pattern hits = %d, want %d (fixed-pattern sequence)", patternHits, steps-1)
	}

	var coldTotalMs float64
	for _, v := range coldMs {
		coldTotalMs += v
	}
	coldPerStep := coldTotalMs / steps
	warmPerStep := warmTotalMs / steps
	speedup := coldPerStep / warmPerStep

	report := map[string]any{
		"benchmark": "sequence_warm_vs_cold",
		"matrix":    map[string]any{"kind": "grid2d", "nx": 64, "ny": 64, "n": base.N, "nnz": base.NNZ()},
		"procs":     cfg.Procs,
		"params":    map[string]any{"m": cfg.Params.M, "tau": cfg.Params.Tau, "k": cfg.Params.K},
		"steps":     steps,
		"evolve":    map[string]any{"amp": amp, "seed": 42},
		"tol":       opt.Tol,
		"cold": map[string]any{
			"total_ms":         coldTotalMs,
			"per_step_ms":      coldPerStep,
			"total_iterations": coldIters,
		},
		"warm": map[string]any{
			"total_ms":         warmTotalMs,
			"per_step_ms":      warmPerStep,
			"total_iterations": warmIters,
			"pattern_hits":     patternHits,
		},
		"amortized_speedup": speedup,
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(out, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("cold %.1f ms/step vs warm %.1f ms/step over %d steps (×%.1f, %d vs %d matvecs) → %s",
		coldPerStep, warmPerStep, steps, speedup, coldIters, warmIters, out)

	if speedup < 2 {
		t.Fatalf("amortized sequence speedup ×%.2f, want at least ×2 (cold %.1f ms/step, warm %.1f ms/step)",
			speedup, coldPerStep, warmPerStep)
	}
}
