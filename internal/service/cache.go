package service

import (
	"container/list"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/krylov"
	"repro/internal/sparse"
)

// matrixStore holds submitted matrices by fingerprint. Matrices are
// cheap relative to factorizations and are never evicted: an evicted
// factorization can therefore always be rebuilt from its matrix without
// resubmission.
type matrixStore struct {
	byKey map[string]*sparse.CSR
}

func newMatrixStore() *matrixStore {
	return &matrixStore{byKey: make(map[string]*sparse.CSR)}
}

// put stores a (returning its content key and whether it was already
// known). Caller holds the server lock.
func (s *matrixStore) put(a *sparse.CSR) (string, bool) {
	key := sparse.Fingerprint(a)
	if _, ok := s.byKey[key]; ok {
		return key, true
	}
	s.byKey[key] = a
	return key, false
}

func (s *matrixStore) get(key string) (*sparse.CSR, bool) {
	a, ok := s.byKey[key]
	return a, ok
}

func (s *matrixStore) len() int { return len(s.byKey) }

// precPiece is one virtual processor's preconditioner piece: anything
// krylov can apply that also reports its memory footprint for the cache
// byte budget. core.ProcPrecond (the normal and ladder-retry rungs) and
// core.BlockJacobi (the final fallback rung) both satisfy it.
type precPiece interface {
	krylov.DistPreconditioner
	SizeBytes() int64
}

// entry is one cached factorization: the elimination plan plus every
// virtual processor's preconditioner piece and ghost-exchange plan, all
// built in a single machine run. Entries are immutable once published;
// the per-processor solve scratch is allocated per batch, so concurrent
// batches of *different* matrices may share nothing, and the dispatcher
// guarantees at most one batch per matrix at a time.
type entry struct {
	key  string
	a    *sparse.CSR
	lay  *dist.Layout
	pcs  []precPiece
	mats []*dist.Matrix

	bytes         int64
	levels        int
	factorSeconds float64 // modelled machine seconds of the factorization

	// degraded marks an entry built by a recovery-ladder rung rather
	// than the configured factorization; ladderStep names the rung
	// ("shift", "relaxed", "blockjacobi"). Solves through a degraded
	// entry carry the flag in their SolveResult.
	degraded   bool
	ladderStep string

	// symbolicHit marks an entry whose build reused a cached symbolic
	// analysis — only the numeric refactorization ran. Solves through it
	// carry the flag in their SolveResult.
	symbolicHit bool

	// origin records how the entry got here (originLocal, originPeer,
	// originReplica); a view change claims peer-imported keys this
	// daemon now owns as takeovers.
	origin string

	elem *list.Element
}

// factorCache is a content-addressed LRU over factorizations with a byte
// budget. All methods require the server lock (the cache has no lock of
// its own); the expensive build happens outside the lock in the worker.
type factorCache struct {
	budget  int64
	bytes   int64
	entries map[string]*entry
	lru     *list.List // front = most recently used

	hits           int64
	misses         int64
	evictions      int64
	factorizations int64
}

func newFactorCache(budget int64) *factorCache {
	return &factorCache{
		budget:  budget,
		entries: make(map[string]*entry),
		lru:     list.New(),
	}
}

// lookup returns the entry for key, promoting it to most-recently-used,
// and records a hit or miss.
func (c *factorCache) lookup(key string) (*entry, bool) {
	ent, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.lru.MoveToFront(ent.elem)
	return ent, true
}

// peek is lookup without the hit/miss accounting, for resolution paths
// that already counted the top-level lookup (or, like peer serves,
// should not perturb the local counters at all).
func (c *factorCache) peek(key string) (*entry, bool) {
	ent, ok := c.entries[key]
	if ok {
		c.lru.MoveToFront(ent.elem)
	}
	return ent, ok
}

// insert publishes a freshly built entry and evicts least-recently-used
// entries until the budget is met again. The new entry itself is never
// evicted (a single oversized factorization is allowed to live alone).
// Evicted entries stay valid for any batch still holding a pointer; they
// just stop being findable, so the next solve of that matrix refactors.
func (c *factorCache) insert(ent *entry) {
	if old, ok := c.entries[ent.key]; ok {
		c.removeLocked(old)
	}
	ent.elem = c.lru.PushFront(ent)
	c.entries[ent.key] = ent
	c.bytes += ent.bytes
	for c.bytes > c.budget && c.lru.Len() > 1 {
		victim := c.lru.Back().Value.(*entry)
		c.removeLocked(victim)
		c.evictions++
	}
}

func (c *factorCache) removeLocked(ent *entry) {
	c.lru.Remove(ent.elem)
	delete(c.entries, ent.key)
	c.bytes -= ent.bytes
}

func (c *factorCache) snapshot() CacheStats {
	return CacheStats{
		Entries:        c.lru.Len(),
		Bytes:          c.bytes,
		BudgetBytes:    c.budget,
		Hits:           c.hits,
		Misses:         c.misses,
		Evictions:      c.evictions,
		Factorizations: c.factorizations,
	}
}

// symEntry is one cached symbolic analysis: the pattern-only half of a
// factorization (partition, layout, interior/interface classification,
// interior numbering) plus the per-processor ghost-exchange templates
// built under it. Everything here is a pure function of the sparsity
// pattern, so the entry is keyed by sparse.PatternFingerprint and serves
// every matrix of a sequence that shares the pattern: a value-only change
// skips graph construction, partitioning, layout and the ghost-plan
// setup exchange, leaving just the numeric refactorization.
type symEntry struct {
	patternKey string
	sym        *core.Symbolic
	mats       []*dist.Matrix // per-proc templates; CloneFor rebinds values
	bytes      int64
	elem       *list.Element
}

// symbolicCache is the pattern-keyed sibling of factorCache. The two
// tiers are deliberately separate: a full entry is worth keeping only for
// an exact value match, while a symbolic entry stays useful for the whole
// lifetime of a pattern — evicting one must not evict the other. The mats
// templates alias the full entry built alongside them (both are immutable
// after setup), so the marginal memory of a symbolic entry is the
// analysis arrays plus the layout. All methods require the server lock.
type symbolicCache struct {
	budget  int64
	bytes   int64
	entries map[string]*symEntry
	lru     *list.List

	hits      int64
	misses    int64
	refactors int64 // full builds that reused a cached analysis
}

func newSymbolicCache(budget int64) *symbolicCache {
	return &symbolicCache{
		budget:  budget,
		entries: make(map[string]*symEntry),
		lru:     list.New(),
	}
}

func (c *symbolicCache) lookup(patternKey string) (*symEntry, bool) {
	se, ok := c.entries[patternKey]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.lru.MoveToFront(se.elem)
	return se, true
}

func (c *symbolicCache) insert(se *symEntry) {
	if old, ok := c.entries[se.patternKey]; ok {
		c.removeLocked(old)
	}
	se.elem = c.lru.PushFront(se)
	c.entries[se.patternKey] = se
	c.bytes += se.bytes
	for c.bytes > c.budget && c.lru.Len() > 1 {
		victim := c.lru.Back().Value.(*symEntry)
		c.removeLocked(victim)
	}
}

func (c *symbolicCache) removeLocked(se *symEntry) {
	c.lru.Remove(se.elem)
	delete(c.entries, se.patternKey)
	c.bytes -= se.bytes
}

// fill merges the symbolic-tier numbers into a CacheStats snapshot.
func (c *symbolicCache) fill(cs *CacheStats) {
	cs.SymbolicEntries = c.lru.Len()
	cs.SymbolicBytes = c.bytes
	cs.SymbolicHits = c.hits
	cs.SymbolicMisses = c.misses
	cs.RefactorBuilds = c.refactors
}
