package service

import (
	"container/list"

	"repro/internal/dist"
	"repro/internal/krylov"
	"repro/internal/sparse"
)

// matrixStore holds submitted matrices by fingerprint. Matrices are
// cheap relative to factorizations and are never evicted: an evicted
// factorization can therefore always be rebuilt from its matrix without
// resubmission.
type matrixStore struct {
	byKey map[string]*sparse.CSR
}

func newMatrixStore() *matrixStore {
	return &matrixStore{byKey: make(map[string]*sparse.CSR)}
}

// put stores a (returning its content key and whether it was already
// known). Caller holds the server lock.
func (s *matrixStore) put(a *sparse.CSR) (string, bool) {
	key := sparse.Fingerprint(a)
	if _, ok := s.byKey[key]; ok {
		return key, true
	}
	s.byKey[key] = a
	return key, false
}

func (s *matrixStore) get(key string) (*sparse.CSR, bool) {
	a, ok := s.byKey[key]
	return a, ok
}

func (s *matrixStore) len() int { return len(s.byKey) }

// precPiece is one virtual processor's preconditioner piece: anything
// krylov can apply that also reports its memory footprint for the cache
// byte budget. core.ProcPrecond (the normal and ladder-retry rungs) and
// core.BlockJacobi (the final fallback rung) both satisfy it.
type precPiece interface {
	krylov.DistPreconditioner
	SizeBytes() int64
}

// entry is one cached factorization: the elimination plan plus every
// virtual processor's preconditioner piece and ghost-exchange plan, all
// built in a single machine run. Entries are immutable once published;
// the per-processor solve scratch is allocated per batch, so concurrent
// batches of *different* matrices may share nothing, and the dispatcher
// guarantees at most one batch per matrix at a time.
type entry struct {
	key  string
	a    *sparse.CSR
	lay  *dist.Layout
	pcs  []precPiece
	mats []*dist.Matrix

	bytes         int64
	levels        int
	factorSeconds float64 // modelled machine seconds of the factorization

	// degraded marks an entry built by a recovery-ladder rung rather
	// than the configured factorization; ladderStep names the rung
	// ("shift", "relaxed", "blockjacobi"). Solves through a degraded
	// entry carry the flag in their SolveResult.
	degraded   bool
	ladderStep string

	elem *list.Element
}

// factorCache is a content-addressed LRU over factorizations with a byte
// budget. All methods require the server lock (the cache has no lock of
// its own); the expensive build happens outside the lock in the worker.
type factorCache struct {
	budget  int64
	bytes   int64
	entries map[string]*entry
	lru     *list.List // front = most recently used

	hits           int64
	misses         int64
	evictions      int64
	factorizations int64
}

func newFactorCache(budget int64) *factorCache {
	return &factorCache{
		budget:  budget,
		entries: make(map[string]*entry),
		lru:     list.New(),
	}
}

// lookup returns the entry for key, promoting it to most-recently-used,
// and records a hit or miss.
func (c *factorCache) lookup(key string) (*entry, bool) {
	ent, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.lru.MoveToFront(ent.elem)
	return ent, true
}

// peek is lookup without the hit/miss accounting, for resolution paths
// that already counted the top-level lookup (or, like peer serves,
// should not perturb the local counters at all).
func (c *factorCache) peek(key string) (*entry, bool) {
	ent, ok := c.entries[key]
	if ok {
		c.lru.MoveToFront(ent.elem)
	}
	return ent, ok
}

// insert publishes a freshly built entry and evicts least-recently-used
// entries until the budget is met again. The new entry itself is never
// evicted (a single oversized factorization is allowed to live alone).
// Evicted entries stay valid for any batch still holding a pointer; they
// just stop being findable, so the next solve of that matrix refactors.
func (c *factorCache) insert(ent *entry) {
	if old, ok := c.entries[ent.key]; ok {
		c.removeLocked(old)
	}
	ent.elem = c.lru.PushFront(ent)
	c.entries[ent.key] = ent
	c.bytes += ent.bytes
	for c.bytes > c.budget && c.lru.Len() > 1 {
		victim := c.lru.Back().Value.(*entry)
		c.removeLocked(victim)
		c.evictions++
	}
}

func (c *factorCache) removeLocked(ent *entry) {
	c.lru.Remove(ent.elem)
	delete(c.entries, ent.key)
	c.bytes -= ent.bytes
}

func (c *factorCache) snapshot() CacheStats {
	return CacheStats{
		Entries:        c.lru.Len(),
		Bytes:          c.bytes,
		BudgetBytes:    c.budget,
		Hits:           c.hits,
		Misses:         c.misses,
		Evictions:      c.evictions,
		Factorizations: c.factorizations,
	}
}
