package service

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/matgen"
	"repro/internal/sparse"
)

func TestClusterConfigValidation(t *testing.T) {
	var nilCfg *ClusterConfig
	if got, err := nilCfg.withDefaults(); got != nil || err != nil {
		t.Fatalf("nil config: got %v, %v; want nil, nil", got, err)
	}
	cases := []struct {
		name string
		cfg  ClusterConfig
		want string // error substring; "" = valid
	}{
		{"valid", ClusterConfig{Self: "a", Peers: []string{"a", "b"}}, ""},
		// A single-member cluster is legal now that peers can join at
		// runtime — the seed daemon starts alone.
		{"one peer", ClusterConfig{Self: "a", Peers: []string{"a"}}, ""},
		{"no peers", ClusterConfig{Self: "a"}, ""},
		{"empty url", ClusterConfig{Self: "a", Peers: []string{"a", ""}}, "empty URL"},
		{"duplicate", ClusterConfig{Self: "a", Peers: []string{"a", "a"}}, "duplicate"},
		{"self missing", ClusterConfig{Self: "c", Peers: []string{"a", "b"}}, "not in the peer list"},
	}
	for _, tc := range cases {
		out, err := tc.cfg.withDefaults()
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			} else if out.OpTimeout <= 0 {
				t.Errorf("%s: OpTimeout not defaulted", tc.name)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

// TestClusterOwnerDeterministic pins the routing properties everything
// else rests on: the owner is a pure function of (peer set, key) —
// independent of list order and of which daemon asks — and keys spread
// across all peers rather than piling onto one.
func TestClusterOwnerDeterministic(t *testing.T) {
	peers := []string{"http://a:1", "http://b:1", "http://c:1"}
	mk := func(order []string) *cluster {
		return newCluster(&ClusterConfig{Self: order[0], Peers: order, OpTimeout: time.Second}, 3, time.Second)
	}
	c1 := mk(peers)
	c2 := mk([]string{peers[2], peers[0], peers[1]})
	counts := map[string]int{}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 300; i++ {
		key := fmt.Sprintf("sha256:%016x", rng.Uint64())
		o1, o2 := c1.owner(key), c2.owner(key)
		if o1 != o2 {
			t.Fatalf("key %s: owner depends on peer-list order (%s vs %s)", key, o1, o2)
		}
		counts[o1]++
	}
	for _, p := range peers {
		if counts[p] == 0 {
			t.Errorf("peer %s owns no keys out of 300; rendezvous hash is not spreading", p)
		}
	}
}

// peerHandler exposes the subset of pilutd's HTTP surface the cluster
// layer talks to, backed by a Server resolved at request time (the
// server needs the listener's URL before it can be constructed).
func peerHandler(get func() *Server) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(get().Health())
	})
	mux.HandleFunc("/v1/peer/factor/", func(w http.ResponseWriter, r *http.Request) {
		key := strings.TrimPrefix(r.URL.Path, "/v1/peer/factor/")
		data, err := get().ExportFactor(key)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		w.Write(data)
	})
	mux.HandleFunc("/v1/peer/matrix", func(w http.ResponseWriter, r *http.Request) {
		if _, _, err := get().ImportMatrix(r.Body); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
	})
	return mux
}

// clusterPair builds two servers joined into one cluster over httptest
// listeners. Returned in peer-list order.
func clusterPair(t *testing.T, cfg Config) (srvs [2]*Server, urls [2]string, shutdown func()) {
	t.Helper()
	var s [2]*Server
	ts0 := httptest.NewServer(peerHandler(func() *Server { return s[0] }))
	ts1 := httptest.NewServer(peerHandler(func() *Server { return s[1] }))
	peers := []string{ts0.URL, ts1.URL}
	for i := range s {
		c := cfg
		// Probing and replication are disabled so these tests exercise the
		// static on-demand fetch path deterministically; the membership
		// machinery has its own tests.
		c.Cluster = &ClusterConfig{
			Self: peers[i], Peers: peers, OpTimeout: 5 * time.Second,
			ProbeInterval: -1, Replicas: -1,
		}
		s[i] = New(c)
	}
	return s, [2]string{ts0.URL, ts1.URL}, func() {
		ts0.Close()
		ts1.Close()
		for _, srv := range s {
			srv.Shutdown(context.Background())
		}
	}
}

func bitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// TestClusterPeerFetch is the ownership contract end to end at the
// service layer: a solve landing on the non-owning daemon fetches the
// owner's cached factorization instead of recomputing, and the solution
// is bitwise identical to the owner's own answer.
func TestClusterPeerFetch(t *testing.T) {
	srvs, _, shutdown := clusterPair(t, Config{Procs: 2, Workers: 1, Backend: "real"})
	defer shutdown()

	a := matgen.Grid2D(12, 12)
	key := sparse.Fingerprint(a)
	ownerIdx := 0
	if srvs[0].cluster.owner(key) != srvs[0].cluster.self {
		ownerIdx = 1
	}
	owner, other := srvs[ownerIdx], srvs[1-ownerIdx]

	b := make([]float64, a.N)
	for i := range b {
		b[i] = float64(i%7) - 3
	}
	if _, _, err := owner.Submit(a); err != nil {
		t.Fatal(err)
	}
	want, err := owner.Solve(context.Background(), key, b, SolveOptions{Tol: 1e-8})
	if err != nil {
		t.Fatal(err)
	}

	// The client resubmits to the other daemon (submit-anywhere) and
	// solves there; the factorization must come over the wire.
	if _, _, err := other.Submit(a); err != nil {
		t.Fatal(err)
	}
	got, err := other.Solve(context.Background(), key, b, SolveOptions{Tol: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	if !want.Converged || !got.Converged {
		t.Fatalf("solves did not converge (owner=%v peer=%v)", want.Converged, got.Converged)
	}
	if !bitsEqual(want.X, got.X) {
		t.Errorf("peer-fetched solve differs bitwise from the owner's")
	}
	if want.Iterations != got.Iterations {
		t.Errorf("iteration counts differ: owner %d, peer %d", want.Iterations, got.Iterations)
	}

	os := other.cluster.snapshot()
	if os.PeerFetches != 1 || os.PeerFetchHits != 1 {
		t.Errorf("fetcher counters: %+v, want 1 fetch / 1 hit", os)
	}
	if os.ReplicationsSent != 1 {
		t.Errorf("replications sent = %d, want 1 (submit-anywhere push to owner)", os.ReplicationsSent)
	}
	if ss := owner.cluster.snapshot(); ss.PeerServes != 1 {
		t.Errorf("owner served %d factor exports, want 1", ss.PeerServes)
	}
	// The import registered the factorization in the local cache: a
	// second solve must not fetch again.
	if _, err := other.Solve(context.Background(), key, b, SolveOptions{Tol: 1e-8}); err != nil {
		t.Fatal(err)
	}
	if os := other.cluster.snapshot(); os.PeerFetches != 1 {
		t.Errorf("second solve refetched (fetches=%d); entry was not cached", os.PeerFetches)
	}
}

// TestClusterPeerDeathFallsBack: killing the owner must not fail a
// request the surviving daemon can answer alone — the fetch fails, the
// breaker opens after enough failures, and the solve is built locally.
func TestClusterPeerDeathFallsBack(t *testing.T) {
	cfg := Config{Procs: 2, Workers: 1, Backend: "real", BreakerFailures: 2, BreakerCooldown: time.Hour}
	var s [2]*Server
	ts0 := httptest.NewServer(peerHandler(func() *Server { return s[0] }))
	ts1 := httptest.NewServer(peerHandler(func() *Server { return s[1] }))
	peers := []string{ts0.URL, ts1.URL}
	for i := range s {
		c := cfg
		c.Cluster = &ClusterConfig{
			Self: peers[i], Peers: peers, OpTimeout: 2 * time.Second,
			ProbeInterval: -1, Replicas: -1,
		}
		s[i] = New(c)
	}
	defer ts1.Close()
	defer func() {
		for _, srv := range s {
			srv.Shutdown(context.Background())
		}
	}()

	a := matgen.Grid2D(12, 12)
	key := sparse.Fingerprint(a)
	ownerIdx := 0
	if s[0].cluster.owner(key) != s[0].cluster.self {
		ownerIdx = 1
	}
	// Kill the owner's listener before the survivor ever talks to it.
	if ownerIdx == 0 {
		ts0.Close()
	} else {
		ts1.Close()
		defer ts0.Close()
	}
	survivor, ownerURL := s[1-ownerIdx], peers[ownerIdx]

	b := make([]float64, a.N)
	for i := range b {
		b[i] = 1
	}
	if _, _, err := survivor.Submit(a); err != nil {
		t.Fatal(err)
	}
	res, err := survivor.Solve(context.Background(), key, b, SolveOptions{Tol: 1e-8})
	if err != nil {
		t.Fatalf("solve with dead owner failed: %v", err)
	}
	if !res.Converged {
		t.Fatal("solve with dead owner did not converge")
	}
	st := survivor.cluster.snapshot()
	if st.PeerFetchFailures == 0 && st.ReplicationsLost == 0 {
		t.Errorf("no failed peer operations recorded against a dead owner: %+v", st)
	}
	// Drive the breaker open with repeated failures, then confirm fetch
	// attempts stop being spent on the dead peer.
	for i := 0; i < cfg.BreakerFailures; i++ {
		survivor.cluster.peerDown(ownerURL)
	}
	if !survivor.cluster.breakerOpen(ownerURL) {
		t.Fatalf("breaker still closed after %d consecutive failures", cfg.BreakerFailures)
	}
	before := survivor.cluster.snapshot().PeerFetches
	if ent, ok := survivor.peerFetch(key); ok || ent != nil {
		t.Error("peerFetch succeeded against an open breaker")
	}
	if after := survivor.cluster.snapshot().PeerFetches; after != before {
		t.Errorf("open breaker did not gate the fetch (attempts %d -> %d)", before, after)
	}
}

// TestClusterHealthAggregation: both peers up reports "ok" with a row
// per peer; a dead peer degrades the aggregate without marking this
// daemon unhealthy.
func TestClusterHealthAggregation(t *testing.T) {
	srvs, urls, shutdown := clusterPair(t, Config{Procs: 2, Workers: 1, Backend: "real"})
	defer shutdown()

	h := srvs[0].ClusterHealthCheck()
	if h.Status != "ok" {
		t.Fatalf("healthy cluster reports %q, want ok", h.Status)
	}
	if len(h.Cluster) != 2 {
		t.Fatalf("got %d peer rows, want 2", len(h.Cluster))
	}
	for _, row := range h.Cluster {
		want := "ok"
		if row.URL == urls[0] {
			want = "self"
		}
		if row.Status != want {
			t.Errorf("peer %s: status %q, want %q", row.URL, row.Status, want)
		}
	}

	// Shut down peer 1's listener: peer 0's aggregate degrades, and the
	// row carries the probe error.
	resp, err := http.Get(urls[1] + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	// (the Get above just proves the listener was up; now kill it)
	srvs[1].Shutdown(context.Background())
	h2 := srvs[0].ClusterHealthCheck()
	// A draining peer is not "ok", so the aggregate must degrade whether
	// the probe saw "draining" or a closed listener.
	if h2.Status != "degraded" {
		t.Fatalf("cluster with dead peer reports %q, want degraded", h2.Status)
	}
	if local := srvs[0].Health(); local.Status != "ok" {
		t.Errorf("local health polluted by peer death: %q", local.Status)
	}
}

// TestExportUnknownAndUnexportable pins the 404 contract of the peer
// endpoint: unknown keys and block-Jacobi entries both surface as
// errors the HTTP layer maps to 404, and the fetcher treats 404 as a
// clean miss (local build), not a peer failure.
func TestExportUnknownAndUnexportable(t *testing.T) {
	srv := New(Config{Procs: 2, Workers: 1, Backend: "real"})
	defer srv.Shutdown(context.Background())
	if _, err := srv.ExportFactor("sha256:nope"); err == nil {
		t.Fatal("exporting an unknown key succeeded")
	}
}

// TestImportRejectsMismatchedConfig: a daemon must refuse a peer
// factorization computed under a different layout configuration, since
// applying it would silently change the preconditioner.
func TestImportRejectsMismatchedConfig(t *testing.T) {
	a := matgen.Grid2D(10, 10)
	key := sparse.Fingerprint(a)
	exp := New(Config{Procs: 2, Workers: 1, Backend: "real"})
	defer exp.Shutdown(context.Background())
	if _, _, err := exp.Submit(a); err != nil {
		t.Fatal(err)
	}
	data, err := exp.ExportFactor(key)
	if err != nil {
		t.Fatal(err)
	}

	imp := New(Config{Procs: 4, Workers: 1, Backend: "real"})
	defer imp.Shutdown(context.Background())
	if _, err := imp.importFactor(key, data); err == nil || !strings.Contains(err.Error(), "must share configuration") {
		t.Fatalf("mismatched procs import: err %v, want configuration mismatch", err)
	}

	ok := New(Config{Procs: 2, Workers: 1, Backend: "real"})
	defer ok.Shutdown(context.Background())
	ent, err := ok.importFactor(key, data)
	if err != nil {
		t.Fatalf("matching import failed: %v", err)
	}
	if ent.key != key || len(ent.pcs) != 2 {
		t.Fatalf("imported entry malformed: key %s, %d pieces", ent.key, len(ent.pcs))
	}
	if _, err := imp.importFactor(key, data[:len(data)/2]); err == nil {
		t.Error("truncated body import succeeded")
	}
}
