package service

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"os"
	"sync"
	"testing"
	"time"

	"repro/internal/matgen"
	"repro/internal/sparse"
)

// clusterOfSize builds n in-process servers joined into one cluster
// (replication on, probing under manual control), each already holding
// every matrix in mats.
func clusterOfSize(t *testing.T, n int, mats []*sparse.CSR) (srvs []*Server, shutdown func()) {
	t.Helper()
	srvs = make([]*Server, n)
	tss := make([]*httptest.Server, n)
	for i := range tss {
		i := i
		tss[i] = httptest.NewServer(memberHandler(func() *Server { return srvs[i] }))
	}
	peers := make([]string, n)
	for i, ts := range tss {
		peers[i] = ts.URL
	}
	for i := range srvs {
		srvs[i] = New(Config{Procs: 2, Workers: 2, Backend: "real", Cluster: &ClusterConfig{
			Self: peers[i], Peers: peers, OpTimeout: 10 * time.Second,
			Replicas: 1, ProbeInterval: -1,
		}})
	}
	// Submit only after every daemon exists: Submit forwards matrices to
	// their HRW owners, and an unborn peer cannot answer.
	for _, srv := range srvs {
		for _, a := range mats {
			if _, _, err := srv.Submit(a); err != nil {
				t.Fatal(err)
			}
		}
	}
	return srvs, func() {
		for _, ts := range tss {
			ts.Close()
		}
		for _, srv := range srvs {
			srv.Shutdown(context.Background())
		}
	}
}

// TestEmitClusterBench writes BENCH_cluster.json: solve throughput of
// in-process clusters of 1, 2 and 4 daemons over a zipfian key mix
// (hot keys are answered from caches and replicas, cold ones routed to
// their HRW owner), plus the recovery comparison the replication layer
// exists for — serving a dead owner's key from a successor's replica
// versus rebuilding the factorization cold. Gated on
// PILUT_BENCH_CLUSTER_OUT (the path to write); `make bench-cluster`
// sets it.
func TestEmitClusterBench(t *testing.T) {
	out := os.Getenv("PILUT_BENCH_CLUSTER_OUT")
	if out == "" {
		t.Skip("set PILUT_BENCH_CLUSTER_OUT=<path> to emit BENCH_cluster.json")
	}

	const (
		nMats = 8
		nOps  = 160
		side  = 32
	)
	mats := make([]*sparse.CSR, nMats)
	keys := make([]string, nMats)
	rhss := make([][]float64, nMats)
	for i := range mats {
		// Distinct fingerprints via distinct grids: side, side+1, ...
		mats[i] = matgen.Grid2D(side+i, side)
		keys[i] = sparse.Fingerprint(mats[i])
		rhss[i] = rhs(mats[i].N, int64(i+1))
	}
	// The zipfian op mix: op o solves matrix workload[o]. Fixed seed so
	// every cluster size replays the same workload.
	zipf := rand.NewZipf(rand.New(rand.NewSource(7)), 1.2, 1, nMats-1)
	workload := make([]int, nOps)
	for o := range workload {
		workload[o] = int(zipf.Uint64())
	}
	opt := SolveOptions{Tol: 1e-8}

	type sizeResult struct {
		Daemons    int     `json:"daemons"`
		Ops        int     `json:"ops"`
		ElapsedMs  float64 `json:"elapsed_ms"`
		OpsPerSec  float64 `json:"ops_per_sec"`
		PeerHits   int64   `json:"peer_fetch_hits"`
		RepImports int64   `json:"replica_imports"`
		Factored   int64   `json:"factorizations"`
	}
	var sizes []sizeResult
	for _, n := range []int{1, 2, 4} {
		srvs, shutdown := clusterOfSize(t, n, mats)
		// One goroutine per daemon models n concurrent clients; ops are
		// dealt round-robin so every size replays the same workload.
		start := time.Now()
		var wg sync.WaitGroup
		errc := make(chan error, n)
		for d := range srvs {
			wg.Add(1)
			go func(d int) {
				defer wg.Done()
				for o := d; o < nOps; o += n {
					m := workload[o]
					res, err := srvs[d].Solve(context.Background(), keys[m], rhss[m], opt)
					if err == nil && !res.Converged {
						err = fmt.Errorf("op %d (matrix %d) did not converge", o, m)
					}
					if err != nil {
						select {
						case errc <- err:
						default:
						}
						return
					}
				}
			}(d)
		}
		wg.Wait()
		elapsed := time.Since(start)
		select {
		case err := <-errc:
			t.Fatalf("cluster of %d: %v", n, err)
		default:
		}
		var hits, imports, factored int64
		for _, srv := range srvs {
			st := srv.StatsSnapshot()
			factored += st.Cache.Factorizations
			if st.Cluster != nil {
				hits += st.Cluster.PeerFetchHits
				imports += st.Cluster.ReplicaImports
			}
		}
		shutdown()
		ms := float64(elapsed) / float64(time.Millisecond)
		sizes = append(sizes, sizeResult{
			Daemons: n, Ops: nOps, ElapsedMs: ms,
			OpsPerSec: float64(nOps) / elapsed.Seconds(),
			PeerHits:  hits, RepImports: imports, Factored: factored,
		})
		t.Logf("daemons=%d: %d ops in %.0f ms (%.1f ops/s, %d builds, %d fetch hits, %d replica imports)",
			n, nOps, ms, float64(nOps)/elapsed.Seconds(), factored, hits, imports)
	}

	// Recovery: a dead owner's key answered from the successor's replica
	// (the proactive push already delivered the bytes) against the
	// alternative world where the survivor rebuilds the factorization
	// from scratch.
	srvs, shutdown := clusterOfSize(t, 3, nil)
	defer shutdown()
	key, b := keys[0], rhss[0]
	ranked := srvs[0].cluster.ranked(key)
	byURL := map[string]*Server{}
	for _, srv := range srvs {
		byURL[srv.cluster.self] = srv
	}
	owner, successor := byURL[ranked[0]], byURL[ranked[1]]
	// Only the owner holds the matrix: a peer holding it would build the
	// factor on demand when the owner's fetch walk asks, and the bench
	// would measure the wrong world.
	if _, _, err := owner.Submit(mats[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := owner.Solve(context.Background(), key, b, opt); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for successor.cluster.snapshot().ReplicaImports == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("replica never landed: %+v", owner.cluster.snapshot())
		}
		time.Sleep(5 * time.Millisecond)
	}
	start := time.Now()
	res, err := successor.Solve(context.Background(), key, b, opt)
	if err != nil || !res.Converged {
		t.Fatalf("replica-served recovery solve: res=%+v err=%v", res, err)
	}
	replicaMs := float64(time.Since(start)) / float64(time.Millisecond)
	if got := successor.StatsSnapshot().Cache.Factorizations; got != 0 {
		t.Fatalf("recovery solve built %d factorizations; the replica should have served", got)
	}

	cold := New(Config{Procs: 2, Workers: 2, Backend: "real"})
	defer cold.Shutdown(context.Background())
	if _, _, err := cold.Submit(mats[0]); err != nil {
		t.Fatal(err)
	}
	start = time.Now()
	res, err = cold.Solve(context.Background(), key, b, opt)
	if err != nil || !res.Converged {
		t.Fatalf("cold rebuild solve: res=%+v err=%v", res, err)
	}
	coldMs := float64(time.Since(start)) / float64(time.Millisecond)

	report := map[string]any{
		"benchmark": "cluster_throughput_and_recovery",
		"matrices":  map[string]any{"kind": "grid2d", "count": nMats, "side": side, "n_min": mats[0].N},
		"workload":  map[string]any{"ops": nOps, "mix": "zipf", "s": 1.2, "seed": 7},
		"tol":       opt.Tol,
		"sizes":     sizes,
		"recovery": map[string]any{
			"replica_served_ms": replicaMs,
			"cold_rebuild_ms":   coldMs,
			"speedup":           coldMs / replicaMs,
		},
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(out, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("recovery: replica-served %.2f ms vs cold rebuild %.2f ms (×%.1f) → %s",
		replicaMs, coldMs, coldMs/replicaMs, out)
}
