package service

import (
	"fmt"
	"io"
	"strconv"
)

// WriteMetrics renders a point-in-time snapshot of the service counters in
// the Prometheus text exposition format (version 0.0.4), suitable for
// serving under GET /metrics. Everything is derived from StatsSnapshot —
// no extra state is kept for scraping, so a scrape costs one lock
// acquisition regardless of frequency.
func (s *Server) WriteMetrics(w io.Writer) error {
	st := s.StatsSnapshot()
	mw := &metricsWriter{w: w}

	mw.gauge("pilut_matrices", "Distinct matrices submitted.", float64(st.Matrices))
	mw.gauge("pilut_queue_depth", "Solve requests waiting to be batched.", float64(st.QueueDepth))
	mw.gauge("pilut_running_batches", "Batches currently executing.", float64(st.Running))

	c := st.Cache
	mw.counter("pilut_cache_hits_total", "Factorization cache hits.", float64(c.Hits))
	mw.counter("pilut_cache_misses_total", "Factorization cache misses.", float64(c.Misses))
	mw.counter("pilut_cache_evictions_total", "Factorizations evicted from the cache.", float64(c.Evictions))
	mw.counter("pilut_cache_factorizations_total", "Factorizations built (misses that completed).", float64(c.Factorizations))
	mw.gauge("pilut_cache_entries", "Factorizations currently cached.", float64(c.Entries))
	mw.gauge("pilut_cache_bytes", "Estimated bytes held by cached factorizations.", float64(c.Bytes))
	mw.gauge("pilut_cache_budget_bytes", "Cache byte budget.", float64(c.BudgetBytes))

	mw.counter("pilut_cache_symbolic_hits_total", "Builds that reused a cached symbolic analysis.", float64(c.SymbolicHits))
	mw.counter("pilut_cache_symbolic_misses_total", "Builds that analyzed the pattern from scratch.", float64(c.SymbolicMisses))
	mw.counter("pilut_cache_refactor_builds_total", "Refactor-only builds (numeric phase under a cached analysis).", float64(c.RefactorBuilds))
	mw.gauge("pilut_cache_symbolic_entries", "Symbolic analyses currently cached.", float64(c.SymbolicEntries))
	mw.gauge("pilut_cache_symbolic_bytes", "Estimated bytes held by cached symbolic analyses.", float64(c.SymbolicBytes))

	v := st.Solves
	mw.counter("pilut_solve_requests_total", "Solve requests accepted.", float64(v.Requests))
	mw.counter("pilut_solve_completed_total", "Solve requests answered successfully.", float64(v.Completed))
	mw.counter("pilut_solve_canceled_total", "Solve requests canceled by their context.", float64(v.Canceled))
	mw.counter("pilut_solve_errors_total", "Solve requests failed with an error.", float64(v.Errors))
	// In-flight is derived from the paired counters (every accepted request
	// ends in exactly one of completed/canceled/errors), not tracked
	// separately — the identity is asserted by the concurrency tests.
	inflight := v.Requests - v.Completed - v.Canceled - v.Errors
	mw.gauge("pilut_solve_inflight", "Accepted solve requests not yet answered.", float64(inflight))

	mw.counter("pilut_solve_shed_total", "Solve requests rejected because the bounded queue was full.", float64(v.Shed))
	mw.counter("pilut_solve_breaker_rejected_total", "Solve requests bounced off an open circuit breaker.", float64(v.BreakerRejected))
	mw.counter("pilut_ladder_retries_total", "Recovery-ladder rung climbs after numerical breakdown.", float64(v.LadderRetries))
	mw.counter("pilut_solve_degraded_total", "Solves answered through a degraded (ladder-built) preconditioner.", float64(v.Degraded))
	mw.counter("pilut_solve_warm_started_total", "Solves seeded with a caller initial guess.", float64(v.WarmStarted))
	mw.counter("pilut_sequences_total", "SolveSequence calls.", float64(v.Sequences))
	mw.counter("pilut_sequence_steps_total", "Steps solved across all sequences.", float64(v.SequenceSteps))
	mw.gauge("pilut_breaker_open_keys", "Matrix keys whose circuit breaker is currently open.", float64(len(s.Health().BreakerOpenKeys)))

	mw.counter("pilut_solve_batches_total", "Machine runs executed (one per batch).", float64(v.Batches))
	mw.counter("pilut_solve_batched_rhs_total", "Right-hand sides solved across all batches.", float64(v.BatchedRHS))
	mw.gauge("pilut_solve_max_batch", "Largest batch coalesced so far.", float64(v.MaxBatch))
	mw.counter("pilut_solve_modelled_seconds_total", "Virtual machine seconds accumulated by solve runs.", v.ModelledSeconds)

	mw.histogram("pilut_solve_latency_ms", "Wall-clock latency from request acceptance to response, milliseconds.", v.LatencyMs)
	mw.histogram("pilut_solve_iterations", "Matrix-vector products per completed solve.", v.Iterations)

	if cs := st.Cluster; cs != nil {
		mw.gauge("pilut_cluster_epoch", "Membership view epoch (highest state-change stamp seen).", float64(cs.Epoch))
		mw.gauge("pilut_cluster_members_routable", "Routable members (alive + suspect), self included.", float64(cs.Peers))
		mw.gauge("pilut_cluster_members_alive", "Members the view holds alive.", float64(cs.MembersAlive))
		mw.gauge("pilut_cluster_members_suspect", "Members the view holds suspect.", float64(cs.MembersSuspect))
		mw.gauge("pilut_cluster_members_dead", "Members the view has written off.", float64(cs.MembersDead))
		mw.gauge("pilut_cluster_members_left", "Members administratively drained.", float64(cs.MembersLeft))
		mw.gauge("pilut_cluster_replication_factor", "HRW successors receiving proactive factor copies.", float64(cs.ReplicationFactor))
		mw.counter("pilut_cluster_peer_fetches_total", "Factor fetches attempted against peers.", float64(cs.PeerFetches))
		mw.counter("pilut_cluster_peer_fetch_hits_total", "Factor fetches answered from a peer's cache.", float64(cs.PeerFetchHits))
		mw.counter("pilut_cluster_peer_fetch_misses_total", "Factor fetches the peer answered with a clean miss.", float64(cs.PeerFetchMisses))
		mw.counter("pilut_cluster_peer_fetch_failures_total", "Factor fetches failed by transport or decode.", float64(cs.PeerFetchFailures))
		mw.counter("pilut_cluster_peer_fetch_retries_total", "Bounded retries after transient peer-fetch failures.", float64(cs.PeerFetchRetries))
		mw.counter("pilut_cluster_peer_serves_total", "Factor exports served to peers.", float64(cs.PeerServes))
		mw.counter("pilut_cluster_replications_sent_total", "Matrices pushed to their owning daemon.", float64(cs.ReplicationsSent))
		mw.counter("pilut_cluster_replications_lost_total", "Matrix pushes that failed.", float64(cs.ReplicationsLost))
		mw.counter("pilut_cluster_replicas_pushed_total", "Factor copies delivered to HRW successors.", float64(cs.ReplicasPushed))
		mw.counter("pilut_cluster_replica_push_failures_total", "Factor copy pushes that failed.", float64(cs.ReplicaPushFails))
		mw.counter("pilut_cluster_replica_imports_total", "Factor copies accepted from owners.", float64(cs.ReplicaImports))
		mw.counter("pilut_cluster_takeover_keys_total", "Peer-imported keys claimed after a view change.", float64(cs.TakeoverKeys))
		mw.counter("pilut_cluster_joins_total", "Members admitted by this daemon.", float64(cs.Joins))
		mw.counter("pilut_cluster_leaves_total", "Member tombstones written by this daemon.", float64(cs.Leaves))
		mw.counter("pilut_cluster_rejected_peer_requests_total", "Peer/cluster requests rejected for a bad token.", float64(cs.RejectedPeerReqs))
	}
	return mw.err
}

// metricsWriter emits one metric family at a time, latching the first
// write error.
type metricsWriter struct {
	w   io.Writer
	err error
}

func (m *metricsWriter) printf(format string, args ...any) {
	if m.err != nil {
		return
	}
	_, m.err = fmt.Fprintf(m.w, format, args...)
}

func (m *metricsWriter) family(name, typ, help string, value float64) {
	m.printf("# HELP %s %s\n# TYPE %s %s\n%s %s\n",
		name, help, name, typ, name, formatFloat(value))
}

func (m *metricsWriter) counter(name, help string, v float64) { m.family(name, "counter", help, v) }
func (m *metricsWriter) gauge(name, help string, v float64)   { m.family(name, "gauge", help, v) }

// histogram renders a Histogram snapshot with the cumulative le-buckets
// Prometheus expects (the snapshot stores per-bucket counts).
func (m *metricsWriter) histogram(name, help string, h Histogram) {
	m.printf("# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	cum := int64(0)
	for i, b := range h.Bounds {
		cum += h.Counts[i]
		m.printf("%s_bucket{le=%q} %d\n", name, formatFloat(b), cum)
	}
	m.printf("%s_bucket{le=\"+Inf\"} %d\n", name, h.Count)
	m.printf("%s_sum %s\n", name, formatFloat(h.Sum))
	m.printf("%s_count %d\n", name, h.Count)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
