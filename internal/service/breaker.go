package service

import (
	"sort"
	"time"
)

// breakerState tracks one matrix key through the classic three states:
// closed (counting consecutive failures), open (rejecting until the
// cooldown expires), half-open (one probe request admitted; its outcome
// closes or re-opens the circuit).
type breakerState struct {
	failures  int
	openUntil time.Time
	probing   bool
}

// breaker is the per-matrix-key circuit breaker: a key whose solves keep
// failing (factorization panics, breakdowns the ladder could not recover,
// watchdog deadlocks) stops consuming worker time until a cooldown
// passes. Cancellations and load shedding never count as failures — they
// say nothing about the matrix. All methods require the server lock.
type breaker struct {
	threshold int // consecutive failures that open the circuit
	cooldown  time.Duration
	now       func() time.Time // injectable for tests
	keys      map[string]*breakerState
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	return &breaker{
		threshold: threshold,
		cooldown:  cooldown,
		now:       time.Now,
		keys:      make(map[string]*breakerState),
	}
}

// allow reports whether a request for key may proceed; when it may not,
// retryAfter is the time left until the next probe is admitted.
func (b *breaker) allow(key string) (retryAfter time.Duration, ok bool) {
	st := b.keys[key]
	if st == nil || st.failures < b.threshold {
		return 0, true
	}
	if left := st.openUntil.Sub(b.now()); left > 0 {
		return left, false
	}
	// Cooldown expired: admit exactly one probe; others keep bouncing
	// until the probe's outcome is known.
	if st.probing {
		return b.cooldown, false
	}
	st.probing = true
	return 0, true
}

// retryAfter reports the cooldown remaining on key's open circuit
// without admitting a probe, for callers that only want the back-off
// hint (the peer-fetch retry reuses it as its pause).
func (b *breaker) retryAfter(key string) (time.Duration, bool) {
	st := b.keys[key]
	if st == nil || st.failures < b.threshold {
		return 0, false
	}
	if left := st.openUntil.Sub(b.now()); left > 0 {
		return left, true
	}
	return 0, false
}

// success closes the circuit for key.
func (b *breaker) success(key string) {
	delete(b.keys, key)
}

// cancel reverts a half-open probe whose request was canceled before it
// produced a verdict about the matrix, so the next request can probe.
func (b *breaker) cancel(key string) {
	if st := b.keys[key]; st != nil {
		st.probing = false
	}
}

// failure counts a solve failure; reaching the threshold (or failing a
// half-open probe) opens the circuit for a full cooldown.
func (b *breaker) failure(key string) {
	st := b.keys[key]
	if st == nil {
		st = &breakerState{}
		b.keys[key] = st
	}
	st.failures++
	st.probing = false
	if st.failures >= b.threshold {
		st.openUntil = b.now().Add(b.cooldown)
	}
}

// openKeys lists the keys whose circuit is currently open, sorted for
// deterministic health reports.
func (b *breaker) openKeys() []string {
	var out []string
	for key, st := range b.keys {
		if st.failures >= b.threshold {
			out = append(out, key)
		}
	}
	sort.Strings(out)
	return out
}
