package service

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/trace"
)

// newRunRecorder returns a recorder for one machine run when tracing is
// configured, nil otherwise (the nil recorder is the zero-cost path all
// the way down the stack).
func newRunRecorder(cfg Config) *trace.Recorder {
	if cfg.TraceDir == "" {
		return nil
	}
	return trace.NewRecorder(cfg.Procs)
}

// writeRunTrace persists one run's events as a Chrome trace file named
// <prefix>-<key>-<stamp>.json. Tracing is best-effort observability: a
// failed write must not fail the solve that produced it, so errors are
// reported on stderr and otherwise dropped.
func writeRunTrace(dir, prefix, key string, rec *trace.Recorder) {
	if rec == nil || dir == "" {
		return
	}
	short := key
	if len(short) > 12 {
		short = short[:12]
	}
	name := fmt.Sprintf("%s-%s-%d.json", prefix, short, time.Now().UnixNano())
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "service: trace write failed: %v\n", err)
		return
	}
	err = rec.WriteChromeTrace(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "service: trace write %s failed: %v\n", path, err)
	}
}
