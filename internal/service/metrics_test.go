package service

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/matgen"
)

// metricValue extracts the value of one un-labelled metric from a
// Prometheus text exposition.
func metricValue(t *testing.T, text, name string) float64 {
	t.Helper()
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` (\S+)$`)
	m := re.FindStringSubmatch(text)
	if m == nil {
		t.Fatalf("metric %s not found in:\n%s", name, text)
	}
	v, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		t.Fatalf("metric %s has unparsable value %q", name, m[1])
	}
	return v
}

func scrape(t *testing.T, s *Server) string {
	t.Helper()
	var buf bytes.Buffer
	if err := s.WriteMetrics(&buf); err != nil {
		t.Fatalf("WriteMetrics: %v", err)
	}
	return buf.String()
}

func TestMetricsExposition(t *testing.T) {
	s := New(testConfig())
	defer s.Shutdown(context.Background())

	a := matgen.Grid2D(12, 12)
	key, _, err := s.Submit(a)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Solve(context.Background(), key, rhs(a.N, 1), SolveOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Solve(context.Background(), key, rhs(a.N, 2), SolveOptions{}); err != nil {
		t.Fatal(err)
	}

	text := scrape(t, s)
	if got := metricValue(t, text, "pilut_solve_requests_total"); got != 2 {
		t.Fatalf("requests_total = %v, want 2", got)
	}
	if got := metricValue(t, text, "pilut_solve_completed_total"); got != 2 {
		t.Fatalf("completed_total = %v, want 2", got)
	}
	if got := metricValue(t, text, "pilut_cache_misses_total"); got < 1 {
		t.Fatalf("misses_total = %v, want ≥ 1", got)
	}
	hits := metricValue(t, text, "pilut_cache_hits_total")
	misses := metricValue(t, text, "pilut_cache_misses_total")
	batches := metricValue(t, text, "pilut_solve_batches_total")
	if hits+misses != batches {
		t.Fatalf("hits (%v) + misses (%v) != batches (%v)", hits, misses, batches)
	}
	if got := metricValue(t, text, "pilut_solve_inflight"); got != 0 {
		t.Fatalf("inflight = %v after all solves returned", got)
	}

	// Histogram sanity: cumulative buckets, +Inf equals _count, sum > 0.
	count := metricValue(t, text, "pilut_solve_latency_ms_count")
	if count != 2 {
		t.Fatalf("latency count = %v, want 2", count)
	}
	re := regexp.MustCompile(`(?m)^pilut_solve_latency_ms_bucket\{le="([^"]+)"\} (\d+)$`)
	prev := -1.0
	var infSeen bool
	for _, m := range re.FindAllStringSubmatch(text, -1) {
		v, _ := strconv.ParseFloat(m[2], 64)
		if v < prev {
			t.Fatalf("bucket le=%s not cumulative: %v < %v", m[1], v, prev)
		}
		prev = v
		if m[1] == "+Inf" {
			infSeen = true
			if v != count {
				t.Fatalf("+Inf bucket %v != count %v", v, count)
			}
		}
	}
	if !infSeen {
		t.Fatal("latency histogram has no +Inf bucket")
	}

	// Every HELP line has a TYPE line and vice versa.
	if strings.Count(text, "# HELP") != strings.Count(text, "# TYPE") {
		t.Fatalf("HELP/TYPE mismatch:\n%s", text)
	}
}

// TestConcurrentSolvesAndScrapes hammers the service with concurrent
// solves of cached and uncached matrices while other goroutines scrape
// /metrics and StatsSnapshot, then checks the counter algebra. MaxBatch=1
// makes every request its own batch, so cache lookups equal requests and
// hits + misses == requests must hold exactly. Run under -race this
// doubles as the service-layer race test.
func TestConcurrentSolvesAndScrapes(t *testing.T) {
	s := New(Config{Procs: 4, Workers: 3, MaxBatch: 1})
	defer s.Shutdown(context.Background())

	solvers := 8
	perSolver := 4
	if os.Getenv("PILUT_TEST_FAST") != "" {
		solvers, perSolver = 4, 2
	}

	// A mix of matrices: one shared (cached after its first solve) and one
	// per goroutine pair (exercises insert/evict paths concurrently).
	shared := matgen.Grid2D(10, 10)
	sharedKey, _, err := s.Submit(shared)
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]string, solvers)
	sizes := make([]int, solvers)
	for g := 0; g < solvers; g++ {
		if g%2 == 0 {
			keys[g], sizes[g] = sharedKey, shared.N
			continue
		}
		a := matgen.Torso(5, 5, 5, int64(g))
		k, _, err := s.Submit(a)
		if err != nil {
			t.Fatal(err)
		}
		keys[g], sizes[g] = k, a.N
	}

	var wg sync.WaitGroup
	errCh := make(chan error, solvers*perSolver)
	stopScrape := make(chan struct{})
	var scrapeWG sync.WaitGroup
	for i := 0; i < 2; i++ {
		scrapeWG.Add(1)
		go func() {
			defer scrapeWG.Done()
			for {
				select {
				case <-stopScrape:
					return
				default:
				}
				var buf bytes.Buffer
				if err := s.WriteMetrics(&buf); err != nil {
					errCh <- err
					return
				}
				_ = s.StatsSnapshot()
				time.Sleep(time.Millisecond)
			}
		}()
	}

	for g := 0; g < solvers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for j := 0; j < perSolver; j++ {
				res, err := s.Solve(context.Background(), keys[g], rhs(sizes[g], int64(g*100+j)), SolveOptions{})
				if err != nil {
					errCh <- fmt.Errorf("solver %d/%d: %w", g, j, err)
					return
				}
				if res.BatchSize != 1 {
					errCh <- fmt.Errorf("solver %d/%d: batch size %d with MaxBatch=1", g, j, res.BatchSize)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(stopScrape)
	scrapeWG.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if t.Failed() {
		return
	}

	st := s.StatsSnapshot()
	total := int64(solvers * perSolver)
	if st.Solves.Requests != total || st.Solves.Completed != total {
		t.Fatalf("requests=%d completed=%d, want %d each", st.Solves.Requests, st.Solves.Completed, total)
	}
	if st.Solves.Canceled != 0 || st.Solves.Errors != 0 {
		t.Fatalf("canceled=%d errors=%d, want 0", st.Solves.Canceled, st.Solves.Errors)
	}
	// MaxBatch=1: every request is one batch, every batch does one cache
	// lookup, so the lookup counters must tile the requests exactly.
	if st.Solves.Batches != total {
		t.Fatalf("batches=%d, want %d with MaxBatch=1", st.Solves.Batches, total)
	}
	if st.Cache.Hits+st.Cache.Misses != total {
		t.Fatalf("hits (%d) + misses (%d) != requests (%d)", st.Cache.Hits, st.Cache.Misses, total)
	}
	if st.Cache.Misses != st.Cache.Factorizations {
		t.Fatalf("misses=%d factorizations=%d, want equal (no failures)", st.Cache.Misses, st.Cache.Factorizations)
	}
	if st.Solves.LatencyMs.Count != total || st.Solves.Iterations.Count != total {
		t.Fatalf("histogram counts %d/%d, want %d", st.Solves.LatencyMs.Count, st.Solves.Iterations.Count, total)
	}

	text := scrape(t, s)
	if got := metricValue(t, text, "pilut_solve_inflight"); got != 0 {
		t.Fatalf("inflight = %v after quiescence", got)
	}
}

// TestTraceDirWritesChromeFiles checks that configuring TraceDir produces
// one factor trace and one solve trace per run, each valid Chrome JSON.
func TestTraceDirWritesChromeFiles(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig()
	cfg.TraceDir = dir
	s := New(cfg)
	defer s.Shutdown(context.Background())

	a := matgen.Grid2D(12, 12)
	key, _, err := s.Submit(a)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Solve(context.Background(), key, rhs(a.N, 1), SolveOptions{}); err != nil {
		t.Fatal(err)
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var factor, solve int
	for _, e := range entries {
		data, err := os.ReadFile(dir + "/" + e.Name())
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Contains(data, []byte(`"traceEvents"`)) {
			t.Fatalf("%s is not a Chrome trace", e.Name())
		}
		switch {
		case strings.HasPrefix(e.Name(), "factor-"):
			factor++
		case strings.HasPrefix(e.Name(), "solve-"):
			solve++
		}
	}
	if factor != 1 || solve != 1 {
		t.Fatalf("got %d factor and %d solve traces, want 1 each (files: %v)", factor, solve, entries)
	}
}
