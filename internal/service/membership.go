package service

// Gossip-lite cluster membership. Every daemon keeps a versioned view of
// the member set: one record per member carrying a state and the epoch
// stamp of its last state change. Views merge by last-writer-wins per
// member (higher stamp takes the record), the view epoch is the maximum
// stamp ever seen, and a member never accepts a rumor of its own death —
// it refutes by re-stamping itself alive above the rumor. Periodic
// probes walk each peer through alive → suspect → dead on consecutive
// failures and straight back to alive on the first success; `left` is an
// administrative tombstone (POST /v1/cluster/leave) that stops both
// routing and probing until an explicit re-join.
//
// This file is under the errdrop analyzer's strict cluster boundary:
// every error from the net/http, io and encoding layers must be handled
// (Close excepted), because a swallowed probe or view-exchange error is
// exactly how split views go unnoticed.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"sync"
	"time"
)

// memberState is the probe-driven lifecycle of one cluster member.
type memberState int

const (
	stateAlive   memberState = iota // answering probes; routable
	stateSuspect                    // missed probes, not yet written off; still routable
	stateDead                       // written off; excluded from routing until it answers again
	stateLeft                       // administratively drained; excluded from routing and probing
)

func (s memberState) String() string {
	switch s {
	case stateAlive:
		return "alive"
	case stateSuspect:
		return "suspect"
	case stateDead:
		return "dead"
	case stateLeft:
		return "left"
	}
	return fmt.Sprintf("memberState(%d)", int(s))
}

func parseMemberState(s string) (memberState, error) {
	switch s {
	case "alive":
		return stateAlive, nil
	case "suspect":
		return stateSuspect, nil
	case "dead":
		return stateDead, nil
	case "left":
		return stateLeft, nil
	}
	return 0, fmt.Errorf("service: unknown member state %q", s)
}

// MemberRecord is one member's row in a gossiped view.
type MemberRecord struct {
	URL   string `json:"url"`
	State string `json:"state"`
	// Stamp is the view epoch at this member's last state change; when
	// two views disagree about a member, the higher stamp wins.
	Stamp uint64 `json:"stamp"`
}

// View is the versioned cluster view exchanged on /v1/cluster/view: the
// full member set plus the epoch (the highest stamp any record carries).
// Members are sorted by URL so views are deterministic to compare.
type View struct {
	Epoch   uint64         `json:"epoch"`
	Members []MemberRecord `json:"members"`
}

// member is the mutable in-memory record behind a MemberRecord.
type member struct {
	url   string
	state memberState
	stamp uint64
	fails int // consecutive probe failures since the last success
}

// membership is the daemon's live view of the cluster. All methods are
// safe for concurrent use; the probe loop, HTTP handlers and the router
// all read through it.
type membership struct {
	mu           sync.Mutex
	self         string
	epoch        uint64
	members      map[string]*member
	suspectAfter int // consecutive failures: alive → suspect
	deadAfter    int // consecutive failures: suspect → dead
}

func newMembership(self string, peers []string, suspectAfter, deadAfter int) *membership {
	if suspectAfter <= 0 {
		suspectAfter = 1
	}
	if deadAfter <= suspectAfter {
		deadAfter = suspectAfter + 1
	}
	ms := &membership{
		self:         self,
		epoch:        1,
		members:      make(map[string]*member, len(peers)+1),
		suspectAfter: suspectAfter,
		deadAfter:    deadAfter,
	}
	for _, p := range peers {
		ms.members[p] = &member{url: p, state: stateAlive, stamp: 1}
	}
	if _, ok := ms.members[self]; !ok {
		ms.members[self] = &member{url: self, state: stateAlive, stamp: 1}
	}
	return ms
}

// snapshot renders the view for gossip and health reports.
func (ms *membership) snapshot() View {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	v := View{Epoch: ms.epoch, Members: make([]MemberRecord, 0, len(ms.members))}
	for _, m := range ms.members {
		v.Members = append(v.Members, MemberRecord{URL: m.url, State: m.state.String(), Stamp: m.stamp})
	}
	sort.Slice(v.Members, func(i, j int) bool { return v.Members[i].URL < v.Members[j].URL })
	return v
}

// routable lists the members HRW routing may target: alive and suspect
// (a suspect peer has merely missed probes; writing it off early would
// remap keys on every network hiccup), sorted for determinism.
func (ms *membership) routable() []string {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	out := make([]string, 0, len(ms.members))
	for _, m := range ms.members {
		if m.state == stateAlive || m.state == stateSuspect {
			out = append(out, m.url)
		}
	}
	sort.Strings(out)
	return out
}

// probeTargets lists the members the health loop probes: everyone but
// self and the administratively departed. Dead members stay probed so a
// restarted daemon rejoins on its first answered probe.
func (ms *membership) probeTargets() []string {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	out := make([]string, 0, len(ms.members))
	for _, m := range ms.members {
		if m.url != ms.self && m.state != stateLeft {
			out = append(out, m.url)
		}
	}
	sort.Strings(out)
	return out
}

// stateOf reports a member's current state.
func (ms *membership) stateOf(url string) (memberState, bool) {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	m, ok := ms.members[url]
	if !ok {
		return 0, false
	}
	return m.state, true
}

func (ms *membership) epochNow() uint64 {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	return ms.epoch
}

// observeAlive records an answered probe: the member's failure streak
// resets and any suspect/dead member is promoted straight back to alive
// under a fresh stamp. Reports whether the state changed.
func (ms *membership) observeAlive(url string) bool {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	m, ok := ms.members[url]
	if !ok || m.state == stateLeft {
		return false
	}
	m.fails = 0
	if m.state == stateAlive {
		return false
	}
	ms.epoch++
	m.state, m.stamp = stateAlive, ms.epoch
	return true
}

// observeFailure records a failed probe and walks the member down the
// alive → suspect → dead ladder at the configured failure counts.
// Reports whether the state changed and the state after the observation.
func (ms *membership) observeFailure(url string) (changed bool, after memberState) {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	m, ok := ms.members[url]
	if !ok || m.state == stateLeft {
		return false, stateLeft
	}
	m.fails++
	want := m.state
	switch {
	case m.fails >= ms.deadAfter:
		want = stateDead
	case m.fails >= ms.suspectAfter && m.state == stateAlive:
		want = stateSuspect
	}
	if want == m.state {
		return false, m.state
	}
	ms.epoch++
	m.state, m.stamp = want, ms.epoch
	return true, want
}

// join admits (or revives) a member under a fresh stamp. Reports whether
// the view changed; joining an already-alive member is idempotent.
func (ms *membership) join(url string) bool {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	m, ok := ms.members[url]
	if ok && m.state == stateAlive {
		return false
	}
	ms.epoch++
	if !ok {
		m = &member{url: url}
		ms.members[url] = m
	}
	m.state, m.stamp, m.fails = stateAlive, ms.epoch, 0
	return true
}

// leave writes a member's administrative tombstone. Unknown members are
// an error (a typoed URL must not silently create a tombstone).
func (ms *membership) leave(url string) (changed bool, err error) {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	m, ok := ms.members[url]
	if !ok {
		return false, fmt.Errorf("service: %q is not a cluster member", url)
	}
	if m.state == stateLeft {
		return false, nil
	}
	ms.epoch++
	m.state, m.stamp = stateLeft, ms.epoch
	return true, nil
}

// merge folds a gossiped view into the local one: per member, the higher
// stamp wins; the epoch ratchets to the maximum stamp seen. A rumor of
// our own death (or departure) is refuted by re-stamping self alive
// above it — the refutation then wins every future merge. Reports
// whether any member's state or the member set changed.
func (ms *membership) merge(v View) bool {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	changed := false
	if v.Epoch > ms.epoch {
		ms.epoch = v.Epoch
	}
	for _, r := range v.Members {
		st, err := parseMemberState(r.State)
		if err != nil || r.URL == "" {
			continue // a malformed record must not poison the view
		}
		if r.Stamp > ms.epoch {
			ms.epoch = r.Stamp
		}
		m, ok := ms.members[r.URL]
		if !ok {
			ms.members[r.URL] = &member{url: r.URL, state: st, stamp: r.Stamp}
			changed = true
			continue
		}
		if r.Stamp <= m.stamp {
			continue
		}
		if m.state != st {
			changed = true
		}
		m.state, m.stamp = st, r.Stamp
		if st == stateAlive {
			m.fails = 0
		}
	}
	if self, ok := ms.members[ms.self]; ok && self.state != stateAlive {
		ms.epoch++
		self.state, self.stamp, self.fails = stateAlive, ms.epoch, 0
		changed = true
	}
	return changed
}

// counts tallies members per state for stats and metrics.
func (ms *membership) counts() (alive, suspect, dead, left int) {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	for _, m := range ms.members {
		switch m.state {
		case stateAlive:
			alive++
		case stateSuspect:
			suspect++
		case stateDead:
			dead++
		case stateLeft:
			left++
		}
	}
	return alive, suspect, dead, left
}

// getView fetches a peer's current view; the probe loop uses it both as
// the liveness check and as anti-entropy (the answer merges into the
// local view, so independently observed deaths and joins converge).
func (cl *cluster) getView(peer string) (View, error) {
	ctx, cancel := context.WithTimeout(context.Background(), cl.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+"/v1/cluster/view", nil)
	if err != nil {
		return View{}, err
	}
	cl.authorize(req)
	resp, err := cl.client.Do(req)
	if err != nil {
		return View{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return View{}, &peerStatusError{peer: peer, op: "view probe", code: resp.StatusCode}
	}
	var v View
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&v); err != nil {
		return View{}, fmt.Errorf("service: decoding view from %s: %w", peer, err)
	}
	return v, nil
}

// postView pushes a view to one peer (join/leave broadcast). The peer
// merges it and answers its own; merging the answer back closes the loop
// one gossip round earlier than waiting for the next probe.
func (cl *cluster) postView(peer string, v View) (View, error) {
	body, err := json.Marshal(v)
	if err != nil {
		return View{}, fmt.Errorf("service: encoding view for %s: %w", peer, err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), cl.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, peer+"/v1/cluster/view", bytes.NewReader(body))
	if err != nil {
		return View{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	cl.authorize(req)
	resp, err := cl.client.Do(req)
	if err != nil {
		return View{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return View{}, &peerStatusError{peer: peer, op: "view push", code: resp.StatusCode}
	}
	var out View
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&out); err != nil {
		return View{}, fmt.Errorf("service: decoding view answer from %s: %w", peer, err)
	}
	return out, nil
}

// postJoin asks a seed member to admit url, answering the seed's view.
func (cl *cluster) postJoin(seed, joiner string) (View, error) {
	body, err := json.Marshal(map[string]string{"url": joiner})
	if err != nil {
		return View{}, fmt.Errorf("service: encoding join request: %w", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), cl.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, seed+"/v1/cluster/join", bytes.NewReader(body))
	if err != nil {
		return View{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	cl.authorize(req)
	resp, err := cl.client.Do(req)
	if err != nil {
		return View{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return View{}, &peerStatusError{peer: seed, op: "join", code: resp.StatusCode}
	}
	var v View
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&v); err != nil {
		return View{}, fmt.Errorf("service: decoding join answer from %s: %w", seed, err)
	}
	return v, nil
}

// probeLoop is the membership heartbeat: every ProbeInterval it probes
// all non-left members, re-replicates owned keys when the view changed,
// and retries replica pushes that did not fully land. It runs in its own
// goroutine from New and stops when stop closes (Shutdown).
func (s *Server) probeLoop(stop <-chan struct{}) {
	t := time.NewTicker(s.cluster.probeInterval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
		}
		if s.probeOnce() {
			s.onViewChange()
		}
		s.retryPendingReplicas()
	}
}

// probeOnce probes every probe target concurrently, folds the answers
// into the view, and reports whether the view changed. A dead peer costs
// one OpTimeout per round, not one per request.
func (s *Server) probeOnce() bool {
	cl := s.cluster
	targets := cl.ms.probeTargets()
	changed := make([]bool, len(targets))
	var wg sync.WaitGroup
	for i, peer := range targets {
		wg.Add(1)
		go func(i int, peer string) {
			defer wg.Done()
			v, err := cl.getView(peer)
			if err != nil {
				ch, _ := cl.ms.observeFailure(peer)
				changed[i] = ch
				return
			}
			ch := cl.ms.observeAlive(peer)
			if cl.ms.merge(v) {
				ch = true
			}
			changed[i] = ch
		}(i, peer)
	}
	wg.Wait()
	for _, ch := range changed {
		if ch {
			return true
		}
	}
	return false
}

// ClusterView answers GET /v1/cluster/view; ok is false outside a
// cluster.
func (s *Server) ClusterView() (View, bool) {
	if s.cluster == nil {
		return View{}, false
	}
	return s.cluster.ms.snapshot(), true
}

// MergeView folds a pushed view (POST /v1/cluster/view) into the local
// one, re-replicating owned keys when the view changed, and answers the
// merged view.
func (s *Server) MergeView(v View) (View, bool) {
	if s.cluster == nil {
		return View{}, false
	}
	if s.cluster.ms.merge(v) {
		s.onViewChange()
	}
	return s.cluster.ms.snapshot(), true
}

// HandleJoin admits a member (POST /v1/cluster/join) and answers the
// updated view. The joiner's URL must be absolute — it is what every
// member will dial.
func (s *Server) HandleJoin(raw string) (View, error) {
	cl := s.cluster
	if cl == nil {
		return View{}, errors.New("service: this daemon is not a cluster member")
	}
	u, err := url.Parse(raw)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return View{}, fmt.Errorf("service: join URL %q is not an absolute base URL", raw)
	}
	changed := cl.ms.join(raw)
	v := cl.ms.snapshot()
	if changed {
		cl.joins.Add(1)
		s.onViewChange()
		s.broadcastView(v, raw)
	}
	return v, nil
}

// HandleLeave tombstones a member (POST /v1/cluster/leave) and answers
// the updated view. Leaving self is allowed: the daemon keeps serving
// what it holds, but stops being routed to — the administrative drain.
func (s *Server) HandleLeave(raw string) (View, error) {
	cl := s.cluster
	if cl == nil {
		return View{}, errors.New("service: this daemon is not a cluster member")
	}
	changed, err := cl.ms.leave(raw)
	if err != nil {
		return View{}, err
	}
	v := cl.ms.snapshot()
	if changed {
		cl.leaves.Add(1)
		s.onViewChange()
		s.broadcastView(v, "")
	}
	return v, nil
}

// broadcastView pushes a fresh view to every routable peer so a join or
// leave propagates now instead of at the next probe round. Best-effort
// and asynchronous: an unreachable peer just converges via gossip later,
// but the failure still feeds its breaker.
func (s *Server) broadcastView(v View, skip string) {
	cl := s.cluster
	for _, peer := range cl.ms.routable() {
		if peer == cl.self || peer == skip {
			continue
		}
		go func(peer string) {
			if _, err := cl.postView(peer, v); err != nil {
				cl.peerDown(peer)
				return
			}
			cl.peerUp(peer)
		}(peer)
	}
}

// JoinCluster dials a seed member and merges its view, making this
// daemon a member of an existing cluster (pilutd -join). Retries briefly
// so daemons started together don't race each other's listeners.
func (s *Server) JoinCluster(seed string) error {
	cl := s.cluster
	if cl == nil {
		return errors.New("service: this daemon is not a cluster member")
	}
	var lastErr error
	for attempt := 0; attempt < joinAttempts; attempt++ {
		if attempt > 0 {
			time.Sleep(joinRetryDelay)
		}
		v, err := cl.postJoin(seed, cl.self)
		if err != nil {
			lastErr = err
			continue
		}
		if cl.ms.merge(v) {
			s.onViewChange()
		}
		return nil
	}
	return fmt.Errorf("service: joining cluster via %s: %w", seed, lastErr)
}

const (
	joinAttempts   = 5
	joinRetryDelay = 500 * time.Millisecond
)
