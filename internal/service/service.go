// Package service turns the paper's reproduction into a long-lived
// solver service: submitted matrices are content-addressed by their
// sparse fingerprint, factorizations are computed once per distinct
// matrix and kept in a byte-budgeted LRU cache, and solve requests are
// executed by a worker pool that coalesces concurrent right-hand sides
// for the same matrix into one multi-RHS lock-step GMRES run sharing a
// single preconditioner-application pipeline. Requests carry a
// context.Context whose deadline or cancellation aborts the simulated
// machine run collectively.
package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fault"
	"repro/internal/ilu"
	"repro/internal/krylov"
	"repro/internal/machine"
	"repro/internal/pcomm"
	"repro/internal/pcomm/backend"
	"repro/internal/pcomm/netcomm"
	"repro/internal/sparse"
)

var (
	// ErrUnknownMatrix is returned by Solve for a key no Submit produced.
	ErrUnknownMatrix = errors.New("service: unknown matrix key")
	// ErrClosed is returned for requests arriving after Shutdown began.
	ErrClosed = errors.New("service: server is shutting down")
	// ErrOverloaded is the load-shedding sentinel: the bounded request
	// queue is full. Match the *OverloadedError for the retry hint.
	ErrOverloaded = errors.New("service: request queue full")
	// ErrBreakerOpen is the circuit-breaker sentinel: this matrix key
	// keeps failing and is short-circuited until a cooldown expires.
	// Match the *BreakerOpenError for the retry hint.
	ErrBreakerOpen = errors.New("service: circuit breaker open for matrix")
)

// OverloadedError is the shed verdict of the bounded request queue;
// RetryAfter is the client back-off hint (pilutd turns it into a 429
// with a Retry-After header).
type OverloadedError struct {
	QueueDepth int
	RetryAfter time.Duration
}

func (e *OverloadedError) Error() string {
	return fmt.Sprintf("service: request queue full (%d queued), retry in %v", e.QueueDepth, e.RetryAfter)
}

// Is makes errors.Is(err, ErrOverloaded) match.
func (e *OverloadedError) Is(target error) bool { return target == ErrOverloaded }

// BreakerOpenError rejects a request for a key whose circuit breaker is
// open; RetryAfter is the cooldown remaining until the next probe.
type BreakerOpenError struct {
	Key        string
	RetryAfter time.Duration
}

func (e *BreakerOpenError) Error() string {
	return fmt.Sprintf("service: circuit breaker open for matrix %s, retry in %v", e.Key, e.RetryAfter)
}

// Is makes errors.Is(err, ErrBreakerOpen) match.
func (e *BreakerOpenError) Is(target error) bool { return target == ErrBreakerOpen }

// Config configures a Server. The zero value of every field selects a
// sensible default.
type Config struct {
	// Procs is the number of virtual processors each factorization and
	// solve runs on. Default 4.
	Procs int
	// Params are the ILUT/ILUT* parameters. Default ILUT*(10, 1e-4, 2).
	Params ilu.Params
	// MISRounds and Seed are passed through to core.Factor.
	MISRounds int
	Seed      int64
	// Cost is the virtual machine cost model. The zero value models free
	// communication; use machine.T3D() for the paper's machine. Ignored by
	// the real backend.
	Cost machine.CostModel
	// Backend picks the communication backend every run uses: "" or
	// "modelled" for the simulated machine, "real" for wall-clock shared
	// memory. Both produce bitwise-identical factors and solutions;
	// ModelledSeconds becomes wall time under the real backend. The
	// multi-process "netcomm" backend is rejected: a server's request
	// streams live in one process, so distribution happens at the HTTP
	// layer (a pilutd cluster of single-process daemons), not inside a
	// run's world.
	Backend string
	// Workers is the number of concurrent batch executors. Default 2.
	Workers int
	// MaxBatch caps how many right-hand sides one machine run solves
	// together. Default 8.
	MaxBatch int
	// CacheBytes is the factorization cache budget. Default 256 MiB.
	CacheBytes int64
	// SymbolicCacheBytes budgets the symbolic-analysis cache: pattern-
	// keyed entries holding the partition, layout and interior/interface
	// analysis that same-pattern rebuilds reuse, so a matrix sequence with
	// fixed sparsity pays the symbolic phase once. Default 64 MiB.
	SymbolicCacheBytes int64
	// TraceDir, when non-empty, writes one Chrome trace-event JSON file
	// per machine run into the directory: factor-<key>-<stamp>.json for
	// factorizations and solve-<key>-<stamp>.json for solve batches. Empty
	// (the default) attaches no recorder, so runs pay no tracing cost.
	TraceDir string
	// Faults, when non-nil, wraps every run's world with the
	// deterministic fault-injection layer (internal/fault) and threads
	// Faults.PivotScale into the factorization's pivot perturbation.
	// Production servers leave it nil; chaos tests and the PILUT_FAULTS
	// environment drive it.
	Faults *fault.Spec
	// MaxQueue bounds the accepted-but-not-yet-running solve requests;
	// beyond it Solve sheds load with an *OverloadedError. Default 1024.
	MaxQueue int
	// Watchdog is the per-run deadlock timeout of every factorization
	// and solve run. Default 2 minutes.
	Watchdog time.Duration
	// BreakerFailures is the consecutive-failure count that opens a
	// matrix key's circuit breaker; BreakerCooldown is how long it stays
	// open before one probe request is admitted. Defaults 3 and 30s.
	BreakerFailures int
	BreakerCooldown time.Duration
	// Cluster, when non-nil, makes this server one member of a static
	// pilutd cluster: matrix fingerprints are routed across the peer
	// list by rendezvous hashing, cache misses for keys another daemon
	// owns are satisfied by fetching its factorization over the
	// /v1/peer/ API (falling back to a local build when the peer is
	// down), and new matrices are replicated to their owner. All peers
	// must run identical Procs, Seed and Params.
	Cluster *ClusterConfig
	// MaxRepairRate is the global pivot-repair rate above which a
	// factorization is declared broken down (see core.Options). Default
	// 0.25; negative disables breakdown detection.
	MaxRepairRate float64
	// DisableLadder turns off the breakdown recovery ladder (diagonal
	// shift → relaxed parameters → block-Jacobi): breakdowns then fail
	// the request instead of degrading it.
	DisableLadder bool
}

// mustWorld builds one backend world for a factorization or solve run,
// wrapped in the fault-injection layer when Config.Faults is set. New
// validates cfg.Backend, so an unknown kind here cannot happen for a
// server built through New.
func (c Config) mustWorld() pcomm.World {
	w, err := backend.New(c.Backend, c.Procs, c.Cost)
	if err != nil {
		panic(err)
	}
	return c.Faults.World(w)
}

func (c Config) withDefaults() Config {
	if c.Procs <= 0 {
		c.Procs = 4
	}
	if c.Params.M == 0 && c.Params.Tau == 0 && c.Params.K == 0 {
		c.Params = ilu.Params{M: 10, Tau: 1e-4, K: 2}
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 8
	}
	if c.CacheBytes <= 0 {
		c.CacheBytes = 256 << 20
	}
	if c.SymbolicCacheBytes <= 0 {
		c.SymbolicCacheBytes = 64 << 20
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 1024
	}
	if c.Watchdog <= 0 {
		c.Watchdog = 2 * time.Minute
	}
	if c.BreakerFailures <= 0 {
		c.BreakerFailures = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 30 * time.Second
	}
	switch {
	case c.MaxRepairRate == 0:
		c.MaxRepairRate = 0.25
	case c.MaxRepairRate < 0:
		c.MaxRepairRate = 0 // disables the check in core.Factor
	}
	return c
}

// SolveOptions select the Krylov parameters of one request. Requests for
// the same matrix with identical Krylov parameters are batchable. Zero
// values take the krylov package defaults.
type SolveOptions struct {
	Restart   int
	Tol       float64
	MaxMatVec int
	// X0, when non-nil, warm-starts the solve from the given global
	// initial guess (length n); the classic use is a matrix sequence,
	// where the previous step's solution starts the next step a few
	// digits in. X0 does not split batches — each right-hand side carries
	// its own guess into its slot of the multi-RHS run.
	X0 []float64
}

// batchKey is the comparable batching identity of SolveOptions: requests
// for one matrix coalesce only when these agree. X0 is deliberately
// excluded (see SolveOptions.X0).
type batchKey struct {
	restart   int
	tol       float64
	maxMatVec int
}

func (o SolveOptions) batchKey() batchKey {
	return batchKey{restart: o.Restart, tol: o.Tol, maxMatVec: o.MaxMatVec}
}

// SolveResult is the answer to one solve request.
type SolveResult struct {
	Key        string    `json:"key"`
	X          []float64 `json:"x"`
	Converged  bool      `json:"converged"`
	Iterations int       `json:"iterations"` // matrix–vector products
	Restarts   int       `json:"restarts"`
	Residual   float64   `json:"residual"` // preconditioned relative residual
	CacheHit   bool      `json:"cache_hit"`
	BatchSize  int       `json:"batch_size"` // right-hand sides in the run that solved this
	// ModelledSeconds is the virtual machine time of the run (shared by
	// the whole batch), excluding factorization.
	ModelledSeconds float64 `json:"modelled_seconds"`
	// Degraded marks a solve answered through a recovery-ladder
	// preconditioner instead of the configured factorization;
	// LadderStep names the rung ("shift", "relaxed", "blockjacobi").
	Degraded   bool   `json:"degraded,omitempty"`
	LadderStep string `json:"ladder_step,omitempty"`
	// SymbolicHit marks a solve through an entry whose build reused a
	// cached symbolic analysis (refactor-only build); WarmStarted marks a
	// solve seeded with a caller initial guess.
	SymbolicHit bool `json:"symbolic_hit,omitempty"`
	WarmStarted bool `json:"warm_started,omitempty"`
}

type outcome struct {
	res SolveResult
	err error
}

type request struct {
	key  string
	b    []float64
	opt  SolveOptions
	ctx  context.Context
	enq  time.Time
	done chan outcome
}

// Server is the solver service. Create one with New, stop it with
// Shutdown.
type Server struct {
	cfg   Config
	stats *statsCollector

	mu        sync.Mutex
	cond      *sync.Cond
	matrices  *matrixStore
	cache     *factorCache
	symbolic  *symbolicCache
	breaker   *breaker
	cluster   *cluster // nil outside a cluster
	pending   map[string][]*request // per key, FIFO
	scheduled map[string]bool       // key is queued or being run
	keyq      []string
	queued    int // requests in pending, for the MaxQueue bound
	running   int
	draining  bool // reject new requests
	aborting  bool // fail queued requests instead of solving them
	stopping  bool // workers exit once the queue is empty

	reqWG    sync.WaitGroup // accepted, not-yet-answered requests
	workerWG sync.WaitGroup

	// Membership probe loop (cluster members with probing enabled).
	probeStop     chan struct{}
	stopProbeOnce sync.Once
	probeWG       sync.WaitGroup
	// Asynchronous replica pushes after local builds; drained by
	// Shutdown after the workers (their only spawner) have exited.
	replWG sync.WaitGroup
}

// New starts a Server with cfg.Workers executor goroutines. It panics on
// an unknown or unusable cfg.Backend so a misconfigured daemon fails at
// startup instead of on its first request. Validation must not build a
// world: constructing a netcomm world would rendezvous a whole process
// group just to be told no.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	if netcomm.IsSpec(cfg.Backend) {
		panic(fmt.Errorf("service: backend %q is multi-process; a server runs in one process — shard work across daemons with pilutd -peers instead", cfg.Backend))
	}
	if err := backend.Validate(cfg.Backend); err != nil {
		panic(err)
	}
	clusterCfg, err := cfg.Cluster.withDefaults()
	if err != nil {
		panic(err)
	}
	s := &Server{
		cfg:       cfg,
		stats:     newStatsCollector(),
		matrices:  newMatrixStore(),
		cache:     newFactorCache(cfg.CacheBytes),
		symbolic:  newSymbolicCache(cfg.SymbolicCacheBytes),
		breaker:   newBreaker(cfg.BreakerFailures, cfg.BreakerCooldown),
		pending:   make(map[string][]*request),
		scheduled: make(map[string]bool),
	}
	if clusterCfg != nil {
		s.cluster = newCluster(clusterCfg, cfg.BreakerFailures, cfg.BreakerCooldown)
		if s.cluster.probeInterval > 0 {
			s.probeStop = make(chan struct{})
			s.probeWG.Add(1)
			go func() {
				defer s.probeWG.Done()
				s.probeLoop(s.probeStop)
			}()
		}
	}
	s.cond = sync.NewCond(&s.mu)
	s.workerWG.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// Submit registers a matrix and returns its content key. Submitting the
// same matrix (by content, not by pointer) again returns the same key
// with known = true and costs nothing. The matrix must be square with at
// least Procs rows.
func (s *Server) Submit(a *sparse.CSR) (key string, known bool, err error) {
	if a == nil {
		return "", false, fmt.Errorf("service: nil matrix")
	}
	if a.N != a.M {
		return "", false, fmt.Errorf("service: matrix must be square, got %d×%d", a.N, a.M)
	}
	if a.N < s.cfg.Procs {
		return "", false, fmt.Errorf("service: matrix has %d rows, need at least one per processor (%d)", a.N, s.cfg.Procs)
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return "", false, ErrClosed
	}
	key, known = s.matrices.put(a)
	s.mu.Unlock()
	if !known {
		// In a cluster, push new matrices to their owning daemon so
		// ownership works in the submit-anywhere flow (no-op otherwise).
		s.replicateMatrix(key, a)
	}
	return key, known, nil
}

// Solve solves A·x = b for the matrix registered under key and returns
// the solution. Concurrent Solve calls for the same key with the same
// options are coalesced into one multi-RHS run. A canceled or expired
// ctx makes Solve return an error wrapping krylov.ErrCanceled; a nil ctx
// never cancels.
func (s *Server) Solve(ctx context.Context, key string, b []float64, opt SolveOptions) (SolveResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return SolveResult{}, ErrClosed
	}
	a, ok := s.matrices.get(key)
	if !ok {
		s.mu.Unlock()
		return SolveResult{}, fmt.Errorf("%w: %q", ErrUnknownMatrix, key)
	}
	if len(b) != a.N {
		s.mu.Unlock()
		return SolveResult{}, fmt.Errorf("service: right-hand side has %d entries for an n=%d matrix", len(b), a.N)
	}
	if opt.X0 != nil {
		if len(opt.X0) != a.N {
			s.mu.Unlock()
			return SolveResult{}, fmt.Errorf("service: initial guess has %d entries for an n=%d matrix", len(opt.X0), a.N)
		}
		opt.X0 = append([]float64(nil), opt.X0...)
	}
	if wait, ok := s.breaker.allow(key); !ok {
		s.stats.breakerRejected()
		s.mu.Unlock()
		return SolveResult{}, &BreakerOpenError{Key: key, RetryAfter: wait}
	}
	if s.queued >= s.cfg.MaxQueue {
		s.stats.shedRequest()
		depth := s.queued
		s.mu.Unlock()
		return SolveResult{}, &OverloadedError{QueueDepth: depth, RetryAfter: time.Second}
	}
	req := &request{
		key:  key,
		b:    append([]float64(nil), b...),
		opt:  opt,
		ctx:  ctx,
		enq:  time.Now(),
		done: make(chan outcome, 1),
	}
	s.stats.request()
	s.reqWG.Add(1)
	s.pending[key] = append(s.pending[key], req)
	s.queued++
	if !s.scheduled[key] {
		s.scheduled[key] = true
		s.keyq = append(s.keyq, key)
		s.cond.Signal()
	}
	s.mu.Unlock()

	select {
	case out := <-req.done:
		return out.res, out.err
	case <-ctx.Done():
		// The worker still owns the request and will drain req.done (it
		// is buffered); the caller gets the cancellation immediately.
		return SolveResult{}, fmt.Errorf("%w: %v", krylov.ErrCanceled, ctx.Err())
	}
}

// Health is the liveness summary served by pilutd's /healthz endpoint.
type Health struct {
	// Status is "ok" while the server accepts work and "draining" once
	// Shutdown has begun.
	Status string `json:"status"`
	// QueueDepth is the number of accepted-but-unanswered solve requests.
	QueueDepth int `json:"queue_depth"`
	// BreakerOpenKeys lists matrix keys whose circuit breaker is
	// currently open, sorted.
	BreakerOpenKeys []string `json:"breaker_open_keys"`
	// DegradedSolves counts solves answered through a recovery-ladder
	// preconditioner since startup.
	DegradedSolves int64 `json:"degraded_solves"`
}

// Health reports the server's failure-containment state.
func (s *Server) Health() Health {
	s.mu.Lock()
	h := Health{
		Status:          "ok",
		QueueDepth:      s.queued,
		BreakerOpenKeys: s.breaker.openKeys(),
	}
	if s.draining {
		h.Status = "draining"
	}
	s.mu.Unlock()
	h.DegradedSolves = s.stats.degradedCount()
	if h.BreakerOpenKeys == nil {
		h.BreakerOpenKeys = []string{}
	}
	return h
}

// StatsSnapshot returns a point-in-time view of the service counters.
func (s *Server) StatsSnapshot() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	depth := 0
	for _, q := range s.pending {
		depth += len(q)
	}
	cache := s.cache.snapshot()
	s.symbolic.fill(&cache)
	st := Stats{
		Matrices:   s.matrices.len(),
		QueueDepth: depth,
		Running:    s.running,
		Cache:      cache,
		Solves:     s.stats.snapshot(),
	}
	if s.cluster != nil {
		st.Cluster = s.cluster.snapshot()
	}
	return st
}

// Shutdown stops the service gracefully: new Submit/Solve calls are
// rejected immediately, every already-accepted request is answered, then
// the workers exit. If ctx expires first, requests still waiting in the
// queue are failed with ErrClosed instead of being solved (batches
// already running always finish), and ctx's error is returned.
func (s *Server) Shutdown(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	// Stop the membership heartbeat first: a drain must not keep
	// mutating the view or re-pushing replicas.
	if s.probeStop != nil {
		s.stopProbeOnce.Do(func() { close(s.probeStop) })
	}

	drained := make(chan struct{})
	go func() {
		s.reqWG.Wait()
		close(drained)
	}()
	var err error
	select {
	case <-drained:
	case <-ctx.Done():
		err = ctx.Err()
		s.mu.Lock()
		s.aborting = true
		s.cond.Broadcast()
		s.mu.Unlock()
		<-drained
	}

	s.mu.Lock()
	s.stopping = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.workerWG.Wait()
	s.probeWG.Wait()
	// Workers are gone, so no new replica pushes can start; wait out the
	// in-flight ones (each bounded by the cluster op timeout).
	s.replWG.Wait()
	return err
}

// worker executes batches. At most one batch per key runs at a time
// (entries hold per-processor state that a run uses exclusively), so a
// key is either in keyq or being run, never both.
func (s *Server) worker() {
	defer s.workerWG.Done()
	for {
		s.mu.Lock()
		for len(s.keyq) == 0 && !s.stopping {
			s.cond.Wait()
		}
		if len(s.keyq) == 0 {
			s.mu.Unlock()
			return
		}
		key := s.keyq[0]
		s.keyq = s.keyq[1:]
		batch := s.takeBatchLocked(key)
		aborting := s.aborting
		s.running++
		s.mu.Unlock()

		if aborting {
			s.failBatch(batch, ErrClosed)
		} else {
			s.runBatch(key, batch)
		}

		s.mu.Lock()
		s.running--
		if len(s.pending[key]) > 0 {
			s.keyq = append(s.keyq, key)
			s.cond.Signal()
		} else {
			delete(s.pending, key)
			delete(s.scheduled, key)
		}
		s.mu.Unlock()
	}
}

// takeBatchLocked removes up to MaxBatch requests for key that share the
// head request's options, preserving FIFO order of the rest.
func (s *Server) takeBatchLocked(key string) []*request {
	q := s.pending[key]
	if len(q) == 0 {
		return nil
	}
	head := q[0].opt.batchKey()
	var batch, rest []*request
	for _, r := range q {
		if len(batch) < s.cfg.MaxBatch && r.opt.batchKey() == head {
			batch = append(batch, r)
		} else {
			rest = append(rest, r)
		}
	}
	s.pending[key] = rest
	s.queued -= len(batch)
	return batch
}

func (s *Server) respond(r *request, out outcome) {
	r.done <- out
	s.reqWG.Done()
}

func (s *Server) failBatch(batch []*request, err error) {
	for _, r := range batch {
		if errors.Is(err, krylov.ErrCanceled) {
			s.stats.canceledSolve()
		} else {
			s.stats.failedSolve()
		}
		s.respond(r, outcome{err: err})
	}
}

// entryFor returns the cached factorization for key. On a miss, a
// cluster member first asks the key's owning daemon for its cached
// factorization (bitwise identical rows, no recomputation); any peer
// failure — or no cluster at all — falls through to a local build. The
// expensive paths run without the server lock; per-key exclusive
// dispatch guarantees no duplicate concurrent build.
func (s *Server) entryFor(key string) (*entry, bool, error) {
	s.mu.Lock()
	ent, ok := s.cache.lookup(key)
	s.mu.Unlock()
	if ok {
		return ent, true, nil
	}
	if ent, ok := s.peerFetch(key); ok {
		s.mu.Lock()
		s.cache.insert(ent)
		s.mu.Unlock()
		return ent, false, nil
	}
	return s.entryForLocal(key)
}

// entryForLocal resolves key strictly on this daemon: cache hit or
// local build, never a peer fetch. The peer-serve path uses it so two
// daemons with disagreeing peer lists cannot route a fetch in a cycle.
func (s *Server) entryForLocal(key string) (*entry, bool, error) {
	s.mu.Lock()
	// Uncounted: the caller either already recorded the miss (entryFor)
	// or is a peer serve, which must not perturb local cache counters.
	ent, ok := s.cache.peek(key)
	if ok {
		s.mu.Unlock()
		return ent, true, nil
	}
	a, ok := s.matrices.get(key)
	s.mu.Unlock()
	if !ok {
		return nil, false, fmt.Errorf("%w: %q", ErrUnknownMatrix, key)
	}
	ent, err := s.buildEntry(key, a)
	if err != nil {
		return nil, false, err
	}
	ent.origin = originLocal
	s.mu.Lock()
	s.cache.insert(ent)
	// Only locally built entries count as factorizations; peer-imported
	// ones are visible in ClusterStats.PeerFetchHits instead.
	s.cache.factorizations++
	s.mu.Unlock()
	// The owner protects a fresh factorization by pushing it to its HRW
	// successors; off the request path so the build's caller never waits
	// on peer round-trips.
	if s.cluster != nil {
		s.replWG.Add(1)
		go func() {
			defer s.replWG.Done()
			s.maybeReplicate(ent)
		}()
	}
	return ent, false, nil
}

// mergedContext returns a context that cancels only when every member
// request's context is done: as long as one right-hand side of the batch
// is still wanted, the run continues and the others simply ignore their
// (already answered) results.
func mergedContext(reqs []*request) (context.Context, func()) {
	if len(reqs) == 1 {
		return reqs[0].ctx, func() {}
	}
	ctx, cancel := context.WithCancel(context.Background())
	var remaining atomic.Int64
	remaining.Store(int64(len(reqs)))
	stops := make([]func() bool, 0, len(reqs))
	for _, r := range reqs {
		stops = append(stops, context.AfterFunc(r.ctx, func() {
			if remaining.Add(-1) == 0 {
				cancel()
			}
		}))
	}
	return ctx, func() {
		for _, stop := range stops {
			stop()
		}
		cancel()
	}
}

// recordOutcome feeds one batch verdict to the key's circuit breaker.
// Cancellations say nothing about the matrix: they only revert a pending
// half-open probe. Unknown keys are client errors, not matrix failures.
func (s *Server) recordOutcome(key string, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case err == nil:
		s.breaker.success(key)
	case errors.Is(err, krylov.ErrCanceled):
		s.breaker.cancel(key)
	case errors.Is(err, ErrUnknownMatrix):
	default:
		s.breaker.failure(key)
	}
}

// runBatch factors (or fetches) the matrix and solves the batch in one
// simulated machine run.
func (s *Server) runBatch(key string, batch []*request) {
	if len(batch) == 0 {
		return
	}
	ent, hit, err := s.entryFor(key)
	if err != nil {
		s.recordOutcome(key, err)
		s.failBatch(batch, err)
		return
	}

	// Requests whose context died while queued are answered without
	// occupying a right-hand-side slot.
	var live []*request
	for _, r := range batch {
		if cause := r.ctx.Err(); cause != nil {
			s.stats.canceledSolve()
			s.respond(r, outcome{err: fmt.Errorf("%w: %v", krylov.ErrCanceled, cause)})
			continue
		}
		live = append(live, r)
	}
	if len(live) == 0 {
		return
	}

	bctx, stop := mergedContext(live)
	defer stop()
	B := len(live)
	o := live[0].opt
	opt := krylov.Options{Restart: o.Restart, Tol: o.Tol, MaxMatVec: o.MaxMatVec, Ctx: bctx}

	bParts := make([][][]float64, B)
	x0Parts := make([][][]float64, B)
	xsParts := make([][][]float64, B)
	for bi, r := range live {
		bParts[bi] = ent.lay.Scatter(r.b)
		if r.opt.X0 != nil {
			x0Parts[bi] = ent.lay.Scatter(r.opt.X0)
		}
		xsParts[bi] = make([][]float64, s.cfg.Procs)
	}
	perRes := make([]krylov.Result, B)
	procErrs := make([]error, s.cfg.Procs)

	m := s.cfg.mustWorld()
	m.SetWatchdog(s.cfg.Watchdog)
	rec := newRunRecorder(s.cfg)
	if rec != nil {
		m.SetRecorder(rec)
	}
	mres, runErr := pcomm.Guard(m, func(proc pcomm.Comm) {
		xs := make([][]float64, B)
		bs := make([][]float64, B)
		for bi := 0; bi < B; bi++ {
			xs[bi] = make([]float64, ent.lay.NLocal(proc.ID()))
			if x0Parts[bi] != nil {
				copy(xs[bi], x0Parts[bi][proc.ID()])
			}
			bs[bi] = bParts[bi][proc.ID()]
		}
		rs, serr := krylov.DistGMRESBatch(proc, ent.mats[proc.ID()], ent.pcs[proc.ID()], xs, bs, opt)
		procErrs[proc.ID()] = serr
		for bi := 0; bi < B; bi++ {
			xsParts[bi][proc.ID()] = xs[bi]
		}
		if proc.ID() == 0 && len(rs) == B {
			copy(perRes, rs)
		}
	})
	if rec != nil {
		writeRunTrace(s.cfg.TraceDir, "solve", key, rec)
	}
	if runErr != nil {
		runErr = fmt.Errorf("service: solve of %s failed: %w", key, runErr)
	} else {
		// The solve error is SPMD-collective: every processor returns the
		// same one.
		runErr = procErrs[0]
	}
	s.recordOutcome(key, runErr)
	if runErr != nil {
		s.failBatch(live, runErr)
		return
	}

	s.stats.batch(B, mres.Elapsed)
	for bi, r := range live {
		x := ent.lay.Gather(xsParts[bi])
		res := SolveResult{
			Key:             key,
			X:               x,
			Converged:       perRes[bi].Converged,
			Iterations:      perRes[bi].NMatVec,
			Restarts:        perRes[bi].Restarts,
			Residual:        perRes[bi].Residual,
			CacheHit:        hit,
			BatchSize:       B,
			ModelledSeconds: mres.Elapsed,
			Degraded:        ent.degraded,
			LadderStep:      ent.ladderStep,
			SymbolicHit:     ent.symbolicHit,
			WarmStarted:     r.opt.X0 != nil,
		}
		s.stats.completedSolve(float64(time.Since(r.enq))/float64(time.Millisecond), res.Iterations)
		if ent.degraded {
			s.stats.degradedSolve()
		}
		if res.WarmStarted {
			s.stats.warmStarted()
		}
		s.respond(r, outcome{res: res})
	}
}

// SolveSequence solves the same right-hand side against a sequence of
// registered matrices in order — the matrix-sequence workflow (evolving
// values, typically a fixed pattern). Consecutive same-pattern steps
// reuse the cached symbolic analysis (refactor-only builds), and with
// warmStart set each step starts from the previous step's solution. The
// first error stops the sequence and is returned alongside the results
// of the steps already completed.
func (s *Server) SolveSequence(ctx context.Context, keys []string, b []float64, opt SolveOptions, warmStart bool) ([]SolveResult, error) {
	if len(keys) == 0 {
		return nil, fmt.Errorf("service: empty matrix sequence")
	}
	s.stats.sequence(len(keys))
	results := make([]SolveResult, 0, len(keys))
	var prev []float64
	for i, key := range keys {
		o := opt
		if warmStart && prev != nil {
			o.X0 = prev
		}
		res, err := s.Solve(ctx, key, b, o)
		if err != nil {
			return results, fmt.Errorf("service: sequence step %d (%s): %w", i, key, err)
		}
		results = append(results, res)
		prev = res.X
	}
	return results, nil
}
