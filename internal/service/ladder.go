package service

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/pcomm"
	"repro/internal/sparse"
)

// The recovery ladder, climbed one rung per *core.BreakdownError. The
// empty rung is the configured factorization; each later rung trades
// preconditioner quality for robustness, ending at block-Jacobi — a
// zero-communication factorization of diagonally shifted local blocks
// whose pivot floor cannot cascade, the containment floor that always
// produces *some* usable preconditioner. Any failure that is not a
// breakdown (a panicked processor, a watchdog deadlock) aborts the climb
// immediately: retrying cannot help and the caller needs the real error.
var ladderRungs = []string{"", "shift", "relaxed", "blockjacobi"}

// buildEntry plans and factors a on cfg.Procs virtual processors,
// climbing the recovery ladder on numerical breakdown when
// cfg.DisableLadder is unset. The symbolic phase (graph, partition,
// layout, interior/interface analysis, ghost-exchange templates) is
// looked up in the pattern-keyed symbolic cache first: a hit skips it
// entirely and only the numeric refactorization runs; a miss analyzes
// from scratch and publishes the analysis for the next same-pattern
// build. It runs on a worker goroutine; the server lock is taken only
// around the symbolic cache accesses. Any failed factorization surfaces
// as an error, never a panic or a process death.
func (s *Server) buildEntry(key string, a *sparse.CSR) (ent *entry, err error) {
	cfg := s.cfg
	// The serial phases (graph, partition, analysis, diagonal shift) can
	// panic on a malformed matrix; pcomm.Guard only covers the machine
	// run, so catch those here and surface an error.
	defer func() {
		if r := recover(); r != nil {
			ent = nil
			err = fmt.Errorf("service: factorization of %s failed: %v", key, r)
		}
	}()

	patternKey := sparse.PatternFingerprint(a)
	s.mu.Lock()
	se, symHit := s.symbolic.lookup(patternKey)
	s.mu.Unlock()

	var sym *core.Symbolic
	var plan *core.Plan
	var matTemplates []*dist.Matrix
	if symHit {
		// Bind re-checks the exact pattern; a failure (can only be a
		// fingerprint collision) falls back to a fresh analysis rather
		// than failing the build.
		if plan, err = se.sym.Bind(a); err == nil {
			sym, matTemplates = se.sym, se.mats
		} else {
			symHit = false
		}
	}
	if !symHit {
		g := graph.FromMatrix(a)
		part := partition.KWay(g, cfg.Procs, partition.Options{Seed: cfg.Seed})
		lay, lerr := dist.NewLayout(a.N, cfg.Procs, part)
		if lerr != nil {
			return nil, fmt.Errorf("service: layout for %s: %w", key, lerr)
		}
		if sym, err = core.Analyze(a, lay); err != nil {
			return nil, fmt.Errorf("service: symbolic analysis for %s: %w", key, err)
		}
		if plan, err = sym.Bind(a); err != nil {
			return nil, fmt.Errorf("service: elimination plan for %s: %w", key, err)
		}
	}

	rungs := ladderRungs
	if cfg.DisableLadder {
		rungs = rungs[:1]
	}
	var lastErr error
	for i, step := range rungs {
		ent, err := buildRung(key, a, plan, cfg, step, matTemplates)
		if err == nil {
			ent.degraded = step != ""
			ent.ladderStep = step
			ent.symbolicHit = symHit
			s.mu.Lock()
			if symHit {
				s.symbolic.refactors++
			} else {
				s.symbolic.insert(&symEntry{
					patternKey: patternKey,
					sym:        sym,
					mats:       ent.mats,
					bytes:      sym.SizeBytes(),
				})
			}
			s.mu.Unlock()
			return ent, nil
		}
		lastErr = err
		var bd *core.BreakdownError
		if !errors.As(err, &bd) {
			return nil, err
		}
		if i < len(rungs)-1 {
			s.stats.ladderRetry()
		}
	}
	return nil, fmt.Errorf("service: recovery ladder exhausted for %s: %w", key, lastErr)
}

// buildRung runs one ladder rung against the bound plan. The
// preconditioner is factored from the rung's (possibly shifted) matrix,
// but the distributed operator the solves apply is always the original
// a — a degraded preconditioner must never change which system is being
// solved. A non-nil matTemplates reuses the cached ghost-exchange plans:
// the distributed operators are cloned serially (CloneFor communicates
// nothing) and the run skips the dist.NewMatrix setup exchange.
func buildRung(key string, a *sparse.CSR, plan *core.Plan, cfg Config, step string, matTemplates []*dist.Matrix) (*entry, error) {
	lay := plan.Lay
	params := cfg.Params
	if cfg.Faults != nil {
		params.PivotPerturb = cfg.Faults.PivotScale
	}
	maxRepair := cfg.MaxRepairRate
	switch step {
	case "shift":
		// The shift may create diagonal entries the pattern lacks, so
		// this rung cannot reuse the symbolic analysis: it plans the
		// shifted matrix from scratch (same layout).
		prem := shiftDiagonal(a, shiftAlpha(a))
		var perr error
		if plan, perr = core.NewPlan(prem, lay); perr != nil {
			return nil, fmt.Errorf("service: elimination plan for %s: %w", key, perr)
		}
	case "relaxed":
		params.Tau /= 10
		if params.M > 0 {
			params.M *= 2
		}
	case "blockjacobi":
		// The containment floor must terminate even under a persistent
		// injected pivot fault: the fault targets the distributed
		// pivot-row pipeline, so the local-block fallback runs
		// unperturbed and without the breakdown check (its pivot floor
		// repairs locally and cannot cascade across processors).
		params.PivotPerturb = 0
		maxRepair = 0
	}

	ent := &entry{
		key:  key,
		a:    a,
		lay:  lay,
		pcs:  make([]precPiece, cfg.Procs),
		mats: make([]*dist.Matrix, cfg.Procs),
	}
	if matTemplates != nil {
		for q := 0; q < cfg.Procs; q++ {
			dm, cerr := matTemplates[q].CloneFor(a)
			if cerr != nil {
				return nil, fmt.Errorf("service: operator clone for %s: %w", key, cerr)
			}
			ent.mats[q] = dm
		}
	}

	m := cfg.mustWorld()
	m.SetWatchdog(cfg.Watchdog)
	rec := newRunRecorder(cfg)
	if rec != nil {
		m.SetRecorder(rec)
	}
	bjErrs := make([]error, cfg.Procs)
	res, runErr := pcomm.Guard(m, func(proc pcomm.Comm) {
		if step == "blockjacobi" {
			bj, err := core.FactorBlockJacobi(proc, plan, params)
			if err != nil {
				bjErrs[proc.ID()] = err
				return
			}
			ent.pcs[proc.ID()] = bj
		} else {
			ent.pcs[proc.ID()] = core.Refactor(proc, plan, core.Options{
				Params:        params,
				MISRounds:     cfg.MISRounds,
				Seed:          cfg.Seed,
				MaxRepairRate: maxRepair,
			})
		}
		if matTemplates == nil {
			ent.mats[proc.ID()] = dist.NewMatrix(proc, lay, a)
		}
	})
	writeRunTrace(cfg.TraceDir, "factor", key, rec)
	if runErr != nil {
		return nil, fmt.Errorf("service: factorization of %s failed: %w", key, runErr)
	}
	for _, err := range bjErrs {
		if err != nil {
			return nil, fmt.Errorf("service: factorization of %s failed: %w", key, err)
		}
	}
	ent.factorSeconds = res.Elapsed
	if pp, ok := ent.pcs[0].(*core.ProcPrecond); ok {
		ent.levels = pp.NumLevels()
	}

	ent.bytes = a.SizeBytes()
	for q := 0; q < cfg.Procs; q++ {
		ent.bytes += ent.pcs[q].SizeBytes()
		ent.bytes += ent.mats[q].SizeBytes()
	}
	return ent, nil
}

// shiftAlpha picks the diagonal shift: one percent of the largest
// diagonal magnitude, falling back to the largest entry magnitude and
// finally to 1 for a pathologically zero matrix.
func shiftAlpha(a *sparse.CSR) float64 {
	var maxDiag, maxAll float64
	for i := 0; i < a.N; i++ {
		cols, vals := a.Row(i)
		for k, j := range cols {
			v := math.Abs(vals[k])
			if v > maxAll {
				maxAll = v
			}
			if j == i && v > maxDiag {
				maxDiag = v
			}
		}
	}
	switch {
	case maxDiag > 0:
		return 1e-2 * maxDiag
	case maxAll > 0:
		return 1e-2 * maxAll
	default:
		return 1
	}
}

// shiftDiagonal returns a + alpha·I, creating diagonal entries where the
// pattern lacks them. Only the ladder's preconditioner sees the shifted
// matrix; the solve operator stays the original a.
func shiftDiagonal(a *sparse.CSR, alpha float64) *sparse.CSR {
	b := sparse.NewBuilder(a.N, a.M)
	for i := 0; i < a.N; i++ {
		cols, vals := a.Row(i)
		diagSeen := false
		for k, j := range cols {
			v := vals[k]
			if j == i {
				v += alpha
				diagSeen = true
			}
			b.Add(i, j, v)
		}
		if !diagSeen {
			b.Add(i, i, alpha)
		}
	}
	return b.Build()
}
