package service

import (
	"context"
	"encoding/json"
	"os"
	"testing"
	"time"

	"repro/internal/ilu"
	"repro/internal/machine"
	"repro/internal/matgen"
)

func benchConfig() Config {
	return Config{Procs: 8, Workers: 1, Params: ilu.Params{M: 10, Tau: 1e-4, K: 2}, Cost: machine.T3D()}
}

// BenchmarkColdFactorSolve measures a solve that must factor first: the
// cached entry is dropped between iterations, so each one pays
// factorization + solve.
func BenchmarkColdFactorSolve(b *testing.B) {
	s := New(benchConfig())
	defer s.Shutdown(context.Background())
	a := matgen.Grid2D(48, 48)
	key, _, err := s.Submit(a)
	if err != nil {
		b.Fatal(err)
	}
	rhsVec := rhs(a.N, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res, err := s.Solve(context.Background(), key, rhsVec, SolveOptions{}); err != nil || res.CacheHit {
			b.Fatalf("res=%+v err=%v (want a cold solve)", res, err)
		}
		b.StopTimer()
		s.mu.Lock()
		for _, ent := range s.cache.entries {
			s.cache.removeLocked(ent)
		}
		s.mu.Unlock()
		b.StartTimer()
	}
}

// BenchmarkCacheHitSolve measures the steady state: the factorization is
// cached and each solve only runs the preconditioned Krylov iteration.
func BenchmarkCacheHitSolve(b *testing.B) {
	s := New(benchConfig())
	defer s.Shutdown(context.Background())
	a := matgen.Grid2D(48, 48)
	key, _, err := s.Submit(a)
	if err != nil {
		b.Fatal(err)
	}
	rhsVec := rhs(a.N, 1)
	if _, err := s.Solve(context.Background(), key, rhsVec, SolveOptions{}); err != nil {
		b.Fatal(err) // warm
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res, err := s.Solve(context.Background(), key, rhsVec, SolveOptions{}); err != nil || !res.CacheHit {
			b.Fatalf("res=%+v err=%v (want a cache hit)", res, err)
		}
	}
}

type benchDist struct {
	MeanMs float64 `json:"mean_ms"`
	MinMs  float64 `json:"min_ms"`
	MaxMs  float64 `json:"max_ms"`
}

func summarize(samples []float64) benchDist {
	d := benchDist{MinMs: samples[0], MaxMs: samples[0]}
	for _, v := range samples {
		d.MeanMs += v
		if v < d.MinMs {
			d.MinMs = v
		}
		if v > d.MaxMs {
			d.MaxMs = v
		}
	}
	d.MeanMs /= float64(len(samples))
	return d
}

// TestEmitServiceBench writes BENCH_service.json comparing cold-factor
// and cache-hit solve latency. Gated on PILUT_BENCH_OUT (the path to
// write) so ordinary test runs skip it; `make bench-service` sets it.
func TestEmitServiceBench(t *testing.T) {
	out := os.Getenv("PILUT_BENCH_OUT")
	if out == "" {
		t.Skip("set PILUT_BENCH_OUT=<path> to emit BENCH_service.json")
	}
	cfg := benchConfig()
	s := New(cfg)
	defer s.Shutdown(context.Background())
	a := matgen.Grid2D(48, 48)
	key, _, err := s.Submit(a)
	if err != nil {
		t.Fatal(err)
	}
	rhsVec := rhs(a.N, 1)

	const samples = 7
	cold := make([]float64, samples)
	hot := make([]float64, samples)
	var iterations int
	var modelledSolve, modelledFactor float64
	for i := 0; i < samples; i++ {
		s.mu.Lock()
		for _, ent := range s.cache.entries {
			s.cache.removeLocked(ent) // force the next solve cold
		}
		s.mu.Unlock()
		start := time.Now()
		res, err := s.Solve(context.Background(), key, rhsVec, SolveOptions{})
		if err != nil || res.CacheHit || !res.Converged {
			t.Fatalf("cold sample %d: res=%+v err=%v", i, res, err)
		}
		cold[i] = float64(time.Since(start)) / float64(time.Millisecond)

		start = time.Now()
		res, err = s.Solve(context.Background(), key, rhsVec, SolveOptions{})
		if err != nil || !res.CacheHit || !res.Converged {
			t.Fatalf("hot sample %d: res=%+v err=%v", i, res, err)
		}
		hot[i] = float64(time.Since(start)) / float64(time.Millisecond)
		iterations = res.Iterations
		modelledSolve = res.ModelledSeconds
	}
	s.mu.Lock()
	for _, ent := range s.cache.entries {
		modelledFactor = ent.factorSeconds
	}
	s.mu.Unlock()

	coldD, hotD := summarize(cold), summarize(hot)
	report := map[string]any{
		"benchmark":               "service_cold_factor_vs_cache_hit",
		"matrix":                  map[string]any{"kind": "grid2d", "nx": 48, "ny": 48, "n": a.N, "nnz": a.NNZ()},
		"procs":                   cfg.Procs,
		"params":                  map[string]any{"m": cfg.Params.M, "tau": cfg.Params.Tau, "k": cfg.Params.K},
		"samples":                 samples,
		"cold":                    coldD,
		"hot":                     hotD,
		"speedup_mean":            coldD.MeanMs / hotD.MeanMs,
		"iterations_per_solve":    iterations,
		"modelled_solve_seconds":  modelledSolve,
		"modelled_factor_seconds": modelledFactor,
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(out, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("cold %.1f ms vs cache-hit %.1f ms (×%.1f) → %s",
		coldD.MeanMs, hotD.MeanMs, coldD.MeanMs/hotD.MeanMs, out)
}
