package service

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/gob"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/pcomm"
	"repro/internal/pcomm/realcomm"
	"repro/internal/sparse"
)

// ClusterConfig makes a server one member of a static pilutd cluster.
// Every daemon runs the same peer list (and the same Procs, Seed and
// Params — ownership transfers factorizations, and a piece factored
// under one layout cannot be applied under another). Matrix fingerprints
// are routed across the peers by rendezvous (highest-random-weight)
// hashing: each key has exactly one owning daemon, every daemon computes
// the same owner with no coordination, and removing a peer only reassigns
// the keys it owned.
type ClusterConfig struct {
	// Self is this daemon's advertised base URL; it must appear in Peers.
	Self string
	// Peers lists every daemon's base URL, e.g.
	// ["http://10.0.0.1:8417", "http://10.0.0.2:8417"]. Order does not
	// matter (ownership hashes the URL strings, not the positions), but
	// the *set* must be identical on every daemon or routing loops are
	// possible; the peer-serve endpoints therefore never fetch from a
	// peer in turn.
	Peers []string
	// OpTimeout bounds each peer HTTP operation (factor fetch, matrix
	// replication, health probe). Default 10s.
	OpTimeout time.Duration
}

func (c *ClusterConfig) withDefaults() (*ClusterConfig, error) {
	if c == nil {
		return nil, nil
	}
	out := *c
	if out.OpTimeout <= 0 {
		out.OpTimeout = 10 * time.Second
	}
	if len(out.Peers) < 2 {
		return nil, fmt.Errorf("service: cluster needs at least 2 peers, got %d", len(out.Peers))
	}
	seen := make(map[string]bool, len(out.Peers))
	selfFound := false
	for _, p := range out.Peers {
		if p == "" {
			return nil, errors.New("service: cluster peer list contains an empty URL")
		}
		if seen[p] {
			return nil, fmt.Errorf("service: duplicate cluster peer %q", p)
		}
		seen[p] = true
		if p == out.Self {
			selfFound = true
		}
	}
	if !selfFound {
		return nil, fmt.Errorf("service: cluster self %q is not in the peer list", out.Self)
	}
	return &out, nil
}

// ClusterStats counts cross-daemon traffic for the stats endpoint.
type ClusterStats struct {
	Peers             int    `json:"peers"`
	Self              string `json:"self"`
	PeerFetches       int64  `json:"peer_fetches"`        // factor fetches attempted
	PeerFetchHits     int64  `json:"peer_fetch_hits"`     // answered from the owner's cache
	PeerFetchMisses   int64  `json:"peer_fetch_misses"`   // owner did not have it (built locally)
	PeerFetchFailures int64  `json:"peer_fetch_failures"` // transport/decode failures (built locally)
	PeerServes        int64  `json:"peer_serves"`         // factor exports served to peers
	ReplicationsSent  int64  `json:"replications_sent"`   // matrices pushed to their owner
	ReplicationsLost  int64  `json:"replications_lost"`   // pushes that failed (owner down)
}

// cluster is the server's runtime view of its peer group: the routing
// hash, one HTTP client, and a per-peer circuit breaker (the same state
// machine that guards matrix keys) so a dead daemon stops costing a
// timeout per request long before anyone restarts it.
type cluster struct {
	self    string
	peers   []string
	client  *http.Client
	timeout time.Duration

	mu  sync.Mutex
	brk *breaker

	fetches, fetchHits, fetchMisses, fetchFailures atomic.Int64
	serves, replSent, replLost                     atomic.Int64
}

func newCluster(cfg *ClusterConfig, brkFailures int, brkCooldown time.Duration) *cluster {
	return &cluster{
		self:    cfg.Self,
		peers:   append([]string(nil), cfg.Peers...),
		client:  &http.Client{Timeout: cfg.OpTimeout},
		timeout: cfg.OpTimeout,
		brk:     newBreaker(brkFailures, brkCooldown),
	}
}

// owner returns the daemon that owns key under rendezvous hashing: the
// peer whose hash(peer, key) is largest. Every daemon computes the same
// owner from the same peer set, and a peer's death moves only its own
// keys.
func (cl *cluster) owner(key string) string {
	best := ""
	var bestSum [sha256.Size]byte
	h := sha256.New()
	for _, peer := range cl.peers {
		h.Reset()
		io.WriteString(h, peer)
		h.Write([]byte{0})
		io.WriteString(h, key)
		var sum [sha256.Size]byte
		h.Sum(sum[:0])
		if best == "" || bytes.Compare(sum[:], bestSum[:]) > 0 {
			best, bestSum = peer, sum
		}
	}
	return best
}

// allow asks the peer's circuit breaker whether an operation may
// proceed; peerUp/peerDown report the outcome back.
func (cl *cluster) allow(peer string) bool {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	_, ok := cl.brk.allow(peer)
	return ok
}

func (cl *cluster) peerUp(peer string) {
	cl.mu.Lock()
	cl.brk.success(peer)
	cl.mu.Unlock()
}

func (cl *cluster) peerDown(peer string) {
	cl.mu.Lock()
	cl.brk.failure(peer)
	cl.mu.Unlock()
}

func (cl *cluster) breakerOpen(peer string) bool {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	for _, k := range cl.brk.openKeys() {
		if k == peer {
			return true
		}
	}
	return false
}

func (cl *cluster) snapshot() *ClusterStats {
	return &ClusterStats{
		Peers:             len(cl.peers),
		Self:              cl.self,
		PeerFetches:       cl.fetches.Load(),
		PeerFetchHits:     cl.fetchHits.Load(),
		PeerFetchMisses:   cl.fetchMisses.Load(),
		PeerFetchFailures: cl.fetchFailures.Load(),
		PeerServes:        cl.serves.Load(),
		ReplicationsSent:  cl.replSent.Load(),
		ReplicationsLost:  cl.replLost.Load(),
	}
}

// errPeerMiss reports the owner answered cleanly but had nothing to
// serve (unknown matrix or an unexportable block-Jacobi entry): the
// peer is healthy, the fetcher just builds locally.
var errPeerMiss = errors.New("service: peer does not have the factorization")

// getFactor fetches key's encoded factorization from peer.
func (cl *cluster) getFactor(peer, key string) ([]byte, error) {
	ctx, cancel := context.WithTimeout(context.Background(), cl.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+"/v1/peer/factor/"+url.PathEscape(key), nil)
	if err != nil {
		return nil, err
	}
	resp, err := cl.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		return io.ReadAll(io.LimitReader(resp.Body, maxMatrixWireBytes))
	case http.StatusNotFound:
		return nil, errPeerMiss
	default:
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return nil, fmt.Errorf("service: peer %s answered %d to factor fetch: %s", peer, resp.StatusCode, bytes.TrimSpace(body))
	}
}

// putMatrix replicates a matrix body to its owner.
func (cl *cluster) putMatrix(peer string, body []byte) error {
	ctx, cancel := context.WithTimeout(context.Background(), cl.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, peer+"/v1/peer/matrix", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := cl.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("service: peer %s answered %d to matrix replication", peer, resp.StatusCode)
	}
	io.Copy(io.Discard, resp.Body)
	return nil
}

// probeHealth asks one peer for its local (non-aggregated) health.
func (cl *cluster) probeHealth(peer string) (status string, err error) {
	ctx, cancel := context.WithTimeout(context.Background(), cl.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+"/healthz?scope=local", nil)
	if err != nil {
		return "", err
	}
	resp, err := cl.client.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	var h struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&h); err != nil {
		return "", err
	}
	if h.Status == "" {
		return "", fmt.Errorf("peer answered %d with no status", resp.StatusCode)
	}
	return h.Status, nil
}

// maxMatrixWireBytes bounds peer transfer bodies (a factorization of a
// cached matrix, or the matrix itself) the same way the public matrix
// endpoint bounds MatrixMarket bodies.
const maxMatrixWireBytes = 1 << 30

// wireCSR is the gob form of a sparse matrix for peer replication.
type wireCSR struct {
	N, M   int
	RowPtr []int
	Cols   []int
	Vals   []float64
}

func csrToWire(a *sparse.CSR) wireCSR {
	return wireCSR{N: a.N, M: a.M, RowPtr: a.RowPtr, Cols: a.Cols, Vals: a.Vals}
}

func csrFromWire(w wireCSR) *sparse.CSR {
	return &sparse.CSR{N: w.N, M: w.M, RowPtr: w.RowPtr, Cols: w.Cols, Vals: w.Vals}
}

// wireFactor is the gob body of /v1/peer/factor/{key}: the factored
// matrix plus every processor's preconditioner piece, and the exact
// configuration the factorization ran under. The importer rebuilds the
// partition, layout and elimination plan deterministically from the
// matrix — those are pure functions of (matrix, procs, seed) — and
// rehydrates the pieces, so the factors never get recomputed and stay
// bitwise identical to the owner's.
type wireFactor struct {
	Key           string
	Matrix        wireCSR
	Procs         int
	Seed          int64
	LadderStep    string
	Degraded      bool
	Levels        int
	FactorSeconds float64
	Pieces        []core.WirePrecond
}

// ErrNotExportable marks entries whose pieces are not ProcPrecond rows
// (the block-Jacobi containment floor): those are cheap to rebuild and
// not worth a wire format.
var ErrNotExportable = errors.New("service: factorization entry is not exportable")

func wireOfEntry(ent *entry, cfg Config) (*wireFactor, error) {
	wf := &wireFactor{
		Key:           ent.key,
		Matrix:        csrToWire(ent.a),
		Procs:         cfg.Procs,
		Seed:          cfg.Seed,
		LadderStep:    ent.ladderStep,
		Degraded:      ent.degraded,
		Levels:        ent.levels,
		FactorSeconds: ent.factorSeconds,
		Pieces:        make([]core.WirePrecond, len(ent.pcs)),
	}
	for q, pc := range ent.pcs {
		pp, ok := pc.(*core.ProcPrecond)
		if !ok {
			return nil, fmt.Errorf("%w: processor %d holds a %T piece", ErrNotExportable, q, pc)
		}
		wf.Pieces[q] = pp.Wire()
	}
	return wf, nil
}

// ExportFactor encodes key's factorization for a peer daemon. The entry
// is resolved strictly locally — cache hit or local build, never a
// fetch from another peer — so daemons with disagreeing peer lists
// cannot route a fetch in a cycle. Unknown keys surface
// ErrUnknownMatrix (the peer endpoint answers 404 and the fetcher
// builds locally).
func (s *Server) ExportFactor(key string) ([]byte, error) {
	ent, _, err := s.entryForLocal(key)
	if err != nil {
		return nil, err
	}
	wf, err := wireOfEntry(ent, s.cfg)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(wf); err != nil {
		return nil, fmt.Errorf("service: encoding factorization %s: %w", key, err)
	}
	if s.cluster != nil {
		s.cluster.serves.Add(1)
	}
	return buf.Bytes(), nil
}

// importFactor decodes a peer's factorization and rebuilds a cache
// entry around it: the matrix, layout and plan are reconstructed
// locally (deterministic given the wire's procs and seed, which must
// match this daemon's), the preconditioner rows come straight off the
// wire, and the ghost-exchange plans are rebuilt in a local
// shared-memory run — the only part that needs a communicator, and it
// moves no floating-point data.
func (s *Server) importFactor(key string, data []byte) (ent *entry, err error) {
	defer func() {
		if r := recover(); r != nil {
			ent, err = nil, fmt.Errorf("service: importing factorization %s: %v", key, r)
		}
	}()
	var wf wireFactor
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&wf); err != nil {
		return nil, fmt.Errorf("service: decoding factorization %s: %w", key, err)
	}
	if wf.Key != key {
		return nil, fmt.Errorf("service: peer served factorization %s for requested key %s", wf.Key, key)
	}
	if wf.Procs != s.cfg.Procs || wf.Seed != s.cfg.Seed {
		return nil, fmt.Errorf("service: peer factored %s with procs=%d seed=%d, this daemon runs procs=%d seed=%d — cluster members must share configuration",
			key, wf.Procs, wf.Seed, s.cfg.Procs, s.cfg.Seed)
	}
	if len(wf.Pieces) != wf.Procs {
		return nil, fmt.Errorf("service: factorization %s carries %d pieces for %d processors", key, len(wf.Pieces), wf.Procs)
	}
	a := csrFromWire(wf.Matrix)
	if got := sparse.Fingerprint(a); got != key {
		return nil, fmt.Errorf("service: peer-served matrix fingerprints to %s, want %s", got, key)
	}

	g := graph.FromMatrix(a)
	part := partition.KWay(g, s.cfg.Procs, partition.Options{Seed: s.cfg.Seed})
	lay, err := dist.NewLayout(a.N, s.cfg.Procs, part)
	if err != nil {
		return nil, fmt.Errorf("service: layout for imported %s: %w", key, err)
	}
	prem := a
	if wf.LadderStep == "shift" {
		prem = shiftDiagonal(a, shiftAlpha(a))
	}
	plan, err := core.NewPlan(prem, lay)
	if err != nil {
		return nil, fmt.Errorf("service: plan for imported %s: %w", key, err)
	}

	ent = &entry{
		key:           key,
		a:             a,
		lay:           lay,
		pcs:           make([]precPiece, wf.Procs),
		mats:          make([]*dist.Matrix, wf.Procs),
		levels:        wf.Levels,
		factorSeconds: wf.FactorSeconds,
		degraded:      wf.Degraded,
		ladderStep:    wf.LadderStep,
	}
	for q := range wf.Pieces {
		pp, perr := core.FromWire(plan, wf.Pieces[q])
		if perr != nil {
			return nil, perr
		}
		ent.pcs[q] = pp
	}
	if _, rerr := pcomm.Guard(realcomm.New(wf.Procs), func(c pcomm.Comm) {
		ent.mats[c.ID()] = dist.NewMatrix(c, lay, a)
	}); rerr != nil {
		return nil, fmt.Errorf("service: ghost plans for imported %s: %w", key, rerr)
	}

	ent.bytes = a.SizeBytes()
	for q := 0; q < wf.Procs; q++ {
		ent.bytes += ent.pcs[q].SizeBytes()
		ent.bytes += ent.mats[q].SizeBytes()
	}
	// The importing daemon now knows the matrix too: a later cache
	// eviction can rebuild locally without resubmission.
	s.mu.Lock()
	s.matrices.put(a)
	s.mu.Unlock()
	return ent, nil
}

// ImportMatrix ingests a replicated matrix from a peer (the gob wireCSR
// body of POST /v1/peer/matrix).
func (s *Server) ImportMatrix(r io.Reader) (key string, known bool, err error) {
	var w wireCSR
	if err := gob.NewDecoder(io.LimitReader(r, maxMatrixWireBytes)).Decode(&w); err != nil {
		return "", false, fmt.Errorf("service: decoding replicated matrix: %w", err)
	}
	return s.Submit(csrFromWire(w))
}

// peerFetch tries to satisfy a cache miss from key's owning daemon.
// Failure of any kind — breaker open, owner down, owner miss, decode
// mismatch — returns false and the caller builds locally, so no peer
// death can fail a request that this daemon could answer alone.
func (s *Server) peerFetch(key string) (*entry, bool) {
	cl := s.cluster
	if cl == nil {
		return nil, false
	}
	owner := cl.owner(key)
	if owner == cl.self || !cl.allow(owner) {
		return nil, false
	}
	cl.fetches.Add(1)
	data, err := cl.getFactor(owner, key)
	if err != nil {
		if errors.Is(err, errPeerMiss) {
			// A clean miss is a healthy answer.
			cl.fetchMisses.Add(1)
			cl.peerUp(owner)
		} else {
			cl.fetchFailures.Add(1)
			cl.peerDown(owner)
		}
		return nil, false
	}
	cl.peerUp(owner)
	ent, err := s.importFactor(key, data)
	if err != nil {
		cl.fetchFailures.Add(1)
		return nil, false
	}
	cl.fetchHits.Add(1)
	return ent, true
}

// replicateMatrix pushes a freshly submitted matrix to its owning
// daemon so ownership works in the submit-anywhere flow: the owner can
// then build (and serve) the factorization even though the client never
// talked to it. Best-effort — a dead owner costs one gated attempt and
// the submit still succeeds locally.
func (s *Server) replicateMatrix(key string, a *sparse.CSR) {
	cl := s.cluster
	if cl == nil {
		return
	}
	owner := cl.owner(key)
	if owner == cl.self || !cl.allow(owner) {
		return
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(csrToWire(a)); err != nil {
		cl.replLost.Add(1)
		return
	}
	if err := cl.putMatrix(owner, buf.Bytes()); err != nil {
		cl.replLost.Add(1)
		cl.peerDown(owner)
		return
	}
	cl.replSent.Add(1)
	cl.peerUp(owner)
}

// PeerHealth is one peer's row in the aggregated cluster health.
type PeerHealth struct {
	URL string `json:"url"`
	// Status: the peer's own reported status ("ok", "draining"), or
	// "down" when it cannot be reached, or "self" for this daemon.
	Status string `json:"status"`
	// BreakerOpen reports this daemon's circuit breaker for the peer;
	// an open breaker means recent operations kept failing and fetches
	// are currently being skipped.
	BreakerOpen bool   `json:"breaker_open"`
	Error       string `json:"error,omitempty"`
}

// ClusterHealth is the cluster-wide health answer: this daemon's local
// health plus one row per peer. Status degrades to "degraded" when any
// peer is unreachable — the cluster still answers everything this
// daemon can serve alone, so degradation is a warning, not an outage.
type ClusterHealth struct {
	Health
	Cluster []PeerHealth `json:"cluster,omitempty"`
}

// ClusterEnabled reports whether this server is a cluster member.
func (s *Server) ClusterEnabled() bool { return s.cluster != nil }

// ClusterHealthCheck probes every peer's local health and aggregates.
// Probes run concurrently; a dead peer costs one OpTimeout, not one per
// peer.
func (s *Server) ClusterHealthCheck() ClusterHealth {
	out := ClusterHealth{Health: s.Health()}
	cl := s.cluster
	if cl == nil {
		return out
	}
	rows := make([]PeerHealth, len(cl.peers))
	var wg sync.WaitGroup
	for i, peer := range cl.peers {
		rows[i] = PeerHealth{URL: peer, BreakerOpen: cl.breakerOpen(peer)}
		if peer == cl.self {
			rows[i].Status = "self"
			continue
		}
		wg.Add(1)
		go func(i int, peer string) {
			defer wg.Done()
			status, err := cl.probeHealth(peer)
			if err != nil {
				rows[i].Status = "down"
				rows[i].Error = err.Error()
				return
			}
			rows[i].Status = status
		}(i, peer)
	}
	wg.Wait()
	for i := range rows {
		if rows[i].Status != "self" && rows[i].Status != "ok" && out.Status == "ok" {
			out.Status = "degraded"
		}
	}
	out.Cluster = rows
	return out
}
