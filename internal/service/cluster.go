package service

import (
	"bytes"
	"context"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/gob"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/pcomm"
	"repro/internal/pcomm/realcomm"
	"repro/internal/sparse"
)

// ClusterConfig makes a server one member of a pilutd cluster. Every
// daemon must run the same Procs, Seed and Params — ownership transfers
// factorizations, and a piece factored under one layout cannot be
// applied under another. Matrix fingerprints are routed across the
// *live* member view by rendezvous (highest-random-weight) hashing:
// each key has exactly one owning daemon, every daemon computes the
// same owner from the same view with no coordination, and a member's
// death or departure reassigns only the keys it owned. Membership is
// dynamic — Peers only seeds the initial view; daemons join at runtime
// via POST /v1/cluster/join and are written off by failed health
// probes (see membership.go).
type ClusterConfig struct {
	// Self is this daemon's advertised base URL; when Peers is non-empty
	// it must appear there.
	Self string
	// Peers seeds the member view, e.g.
	// ["http://10.0.0.1:8417", "http://10.0.0.2:8417"]. Order does not
	// matter (ownership hashes the URL strings, not the positions).
	// Empty means a single-member seed cluster that others join.
	Peers []string
	// OpTimeout bounds each peer HTTP operation (factor fetch, matrix
	// replication, view exchange, health probe). Default 10s.
	OpTimeout time.Duration
	// Replicas is how many HRW successors receive a proactive copy of
	// each factorization built on its owner, so an owner's death is
	// absorbed by a replica promotion instead of a rebuild. Default 1;
	// negative disables replication.
	Replicas int
	// ProbeInterval is the membership heartbeat period: every interval
	// each daemon probes all non-left members and merges their views.
	// Default 1s; negative disables probing (the view then changes only
	// through joins, leaves and pushed views — the static-cluster mode
	// tests use).
	ProbeInterval time.Duration
	// SuspectAfter and DeadAfter are the consecutive probe-failure
	// counts that demote a member alive → suspect and → dead.
	// Defaults 1 and 2.
	SuspectAfter int
	DeadAfter    int
	// Token, when non-empty, is the shared secret every /v1/peer/* and
	// /v1/cluster/* request must present (pilutd -cluster-token /
	// PILUT_CLUSTER_TOKEN). All members must agree on it.
	Token string
}

func (c *ClusterConfig) withDefaults() (*ClusterConfig, error) {
	if c == nil {
		return nil, nil
	}
	out := *c
	if out.Self == "" {
		return nil, errors.New("service: cluster config needs Self")
	}
	if out.OpTimeout <= 0 {
		out.OpTimeout = 10 * time.Second
	}
	if out.Replicas == 0 {
		out.Replicas = 1
	}
	if out.Replicas < 0 {
		out.Replicas = 0
	}
	if out.ProbeInterval == 0 {
		out.ProbeInterval = time.Second
	}
	if out.SuspectAfter <= 0 {
		out.SuspectAfter = 1
	}
	if out.DeadAfter <= out.SuspectAfter {
		out.DeadAfter = out.SuspectAfter + 1
	}
	if len(out.Peers) == 0 {
		out.Peers = []string{out.Self}
	}
	seen := make(map[string]bool, len(out.Peers))
	selfFound := false
	for _, p := range out.Peers {
		if p == "" {
			return nil, errors.New("service: cluster peer list contains an empty URL")
		}
		if seen[p] {
			return nil, fmt.Errorf("service: duplicate cluster peer %q", p)
		}
		seen[p] = true
		if p == out.Self {
			selfFound = true
		}
	}
	if !selfFound {
		return nil, fmt.Errorf("service: cluster self %q is not in the peer list", out.Self)
	}
	return &out, nil
}

// ClusterStats counts cross-daemon traffic and the membership view for
// the stats endpoint.
type ClusterStats struct {
	Peers             int    `json:"peers"` // routable members (alive + suspect), self included
	Self              string `json:"self"`
	Epoch             uint64 `json:"epoch"`
	MembersAlive      int    `json:"members_alive"`
	MembersSuspect    int    `json:"members_suspect"`
	MembersDead       int    `json:"members_dead"`
	MembersLeft       int    `json:"members_left"`
	ReplicationFactor int    `json:"replication_factor"`
	PeerFetches       int64  `json:"peer_fetches"`        // factor fetches attempted
	PeerFetchHits     int64  `json:"peer_fetch_hits"`     // answered from a peer's cache
	PeerFetchMisses   int64  `json:"peer_fetch_misses"`   // peer did not have it (built locally)
	PeerFetchFailures int64  `json:"peer_fetch_failures"` // transport/decode failures
	PeerFetchRetries  int64  `json:"peer_fetch_retries"`  // bounded retries after a transient failure
	PeerServes        int64  `json:"peer_serves"`         // factor exports served to peers
	ReplicationsSent  int64  `json:"replications_sent"`   // matrices pushed to their owner
	ReplicationsLost  int64  `json:"replications_lost"`   // pushes that failed (owner down)
	ReplicasPushed    int64  `json:"replicas_pushed"`     // factor copies delivered to successors
	ReplicaPushFails  int64  `json:"replica_push_failures"`
	ReplicaImports    int64  `json:"replica_imports"` // factor copies accepted from owners
	TakeoverKeys      int64  `json:"takeover_keys"`   // peer-imported keys claimed after a view change
	Joins             int64  `json:"joins"`           // members admitted by this daemon
	Leaves            int64  `json:"leaves"`          // tombstones written by this daemon
	RejectedPeerReqs  int64  `json:"rejected_peer_requests"`
}

// cluster is the server's runtime view of its peer group: the live
// membership behind HRW routing, one HTTP client, and a per-peer circuit
// breaker (the same state machine that guards matrix keys) so a dead
// daemon stops costing a timeout per request long before the probe loop
// writes it off.
type cluster struct {
	self          string
	ms            *membership
	client        *http.Client
	timeout       time.Duration
	token         string
	replicas      int
	probeInterval time.Duration

	mu      sync.Mutex
	brk     *breaker
	claimed map[string]bool // peer-imported keys already counted as takeovers
	pending map[string]bool // owned keys whose last replica push did not fully land
	rng     *rand.Rand      // retry-backoff jitter; guarded by mu

	fetches, fetchHits, fetchMisses, fetchFailures atomic.Int64
	fetchRetries                                   atomic.Int64
	serves, replSent, replLost                     atomic.Int64
	replicasPushed, replicaPushFailures            atomic.Int64
	replicaImports, takeovers                      atomic.Int64
	joins, leaves, rejected                        atomic.Int64
}

func newCluster(cfg *ClusterConfig, brkFailures int, brkCooldown time.Duration) *cluster {
	return &cluster{
		self:          cfg.Self,
		ms:            newMembership(cfg.Self, cfg.Peers, cfg.SuspectAfter, cfg.DeadAfter),
		client:        &http.Client{Timeout: cfg.OpTimeout},
		timeout:       cfg.OpTimeout,
		token:         cfg.Token,
		replicas:      cfg.Replicas,
		probeInterval: cfg.ProbeInterval,
		brk:           newBreaker(brkFailures, brkCooldown),
		claimed:       make(map[string]bool),
		pending:       make(map[string]bool),
		rng:           rand.New(rand.NewSource(1)),
	}
}

// ClusterTokenHeader carries the shared cluster secret on every
// /v1/peer/* and /v1/cluster/* request.
const ClusterTokenHeader = "X-Pilut-Cluster-Token"

// authorize attaches the cluster token to an outgoing peer request.
func (cl *cluster) authorize(req *http.Request) {
	if cl.token != "" {
		req.Header.Set(ClusterTokenHeader, cl.token)
	}
}

// PeerAuthOK checks a presented cluster token against the configured
// shared secret (constant-time). Mismatches count toward the
// rejected-peer-request counter; with no token configured (or no
// cluster) every request passes.
func (s *Server) PeerAuthOK(got string) bool {
	cl := s.cluster
	if cl == nil || cl.token == "" {
		return true
	}
	if subtle.ConstantTimeCompare([]byte(got), []byte(cl.token)) == 1 {
		return true
	}
	cl.rejected.Add(1)
	return false
}

// ranked orders the routable members for key by rendezvous hashing,
// best first: ranked[0] is the owner, ranked[1:1+R] the replica
// successors. Every daemon computes the same order from the same view,
// and removing one member deletes exactly its slot — the keys of every
// surviving member stay put (the minimal-disruption property the
// remapping test pins).
func (cl *cluster) ranked(key string) []string {
	peers := cl.ms.routable()
	type cand struct {
		url string
		sum [sha256.Size]byte
	}
	cands := make([]cand, len(peers))
	h := sha256.New()
	for i, peer := range peers {
		h.Reset()
		io.WriteString(h, peer)
		h.Write([]byte{0})
		io.WriteString(h, key)
		cands[i].url = peer
		h.Sum(cands[i].sum[:0])
	}
	sort.Slice(cands, func(i, j int) bool {
		return bytes.Compare(cands[i].sum[:], cands[j].sum[:]) > 0
	})
	out := make([]string, len(cands))
	for i := range cands {
		out[i] = cands[i].url
	}
	return out
}

// owner returns the daemon that currently owns key: the head of the
// rendezvous ranking over the live view. A lone daemon owns everything.
func (cl *cluster) owner(key string) string {
	r := cl.ranked(key)
	if len(r) == 0 {
		return cl.self
	}
	return r[0]
}

// successors returns the R daemons after the owner in key's ranking —
// the replica set that receives proactive factor pushes.
func (cl *cluster) successors(key string) []string {
	r := cl.ranked(key)
	if len(r) < 2 || cl.replicas <= 0 {
		return nil
	}
	end := 1 + cl.replicas
	if end > len(r) {
		end = len(r)
	}
	return r[1:end]
}

// allow asks the peer's circuit breaker whether an operation may
// proceed; peerUp/peerDown report the outcome back.
func (cl *cluster) allow(peer string) bool {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	_, ok := cl.brk.allow(peer)
	return ok
}

func (cl *cluster) peerUp(peer string) {
	cl.mu.Lock()
	cl.brk.success(peer)
	cl.mu.Unlock()
}

func (cl *cluster) peerDown(peer string) {
	cl.mu.Lock()
	cl.brk.failure(peer)
	cl.mu.Unlock()
}

func (cl *cluster) breakerOpen(peer string) bool {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	for _, k := range cl.brk.openKeys() {
		if k == peer {
			return true
		}
	}
	return false
}

func (cl *cluster) snapshot() *ClusterStats {
	alive, suspect, dead, left := cl.ms.counts()
	return &ClusterStats{
		Peers:             alive + suspect,
		Self:              cl.self,
		Epoch:             cl.ms.epochNow(),
		MembersAlive:      alive,
		MembersSuspect:    suspect,
		MembersDead:       dead,
		MembersLeft:       left,
		ReplicationFactor: cl.replicas,
		PeerFetches:       cl.fetches.Load(),
		PeerFetchHits:     cl.fetchHits.Load(),
		PeerFetchMisses:   cl.fetchMisses.Load(),
		PeerFetchFailures: cl.fetchFailures.Load(),
		PeerFetchRetries:  cl.fetchRetries.Load(),
		PeerServes:        cl.serves.Load(),
		ReplicationsSent:  cl.replSent.Load(),
		ReplicationsLost:  cl.replLost.Load(),
		ReplicasPushed:    cl.replicasPushed.Load(),
		ReplicaPushFails:  cl.replicaPushFailures.Load(),
		ReplicaImports:    cl.replicaImports.Load(),
		TakeoverKeys:      cl.takeovers.Load(),
		Joins:             cl.joins.Load(),
		Leaves:            cl.leaves.Load(),
		RejectedPeerReqs:  cl.rejected.Load(),
	}
}

// errPeerMiss reports the owner answered cleanly but had nothing to
// serve (unknown matrix or an unexportable block-Jacobi entry): the
// peer is healthy, the fetcher just builds locally.
var errPeerMiss = errors.New("service: peer does not have the factorization")

// getFactor fetches key's encoded factorization from peer.
func (cl *cluster) getFactor(peer, key string) ([]byte, error) {
	ctx, cancel := context.WithTimeout(context.Background(), cl.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+"/v1/peer/factor/"+url.PathEscape(key), nil)
	if err != nil {
		return nil, err
	}
	cl.authorize(req)
	resp, err := cl.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		return io.ReadAll(io.LimitReader(resp.Body, maxMatrixWireBytes))
	case http.StatusNotFound:
		return nil, errPeerMiss
	default:
		return nil, &peerStatusError{peer: peer, op: "factor fetch", code: resp.StatusCode}
	}
}

// putMatrix replicates a matrix body to its owner.
func (cl *cluster) putMatrix(peer string, body []byte) error {
	ctx, cancel := context.WithTimeout(context.Background(), cl.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, peer+"/v1/peer/matrix", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	cl.authorize(req)
	resp, err := cl.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return &peerStatusError{peer: peer, op: "matrix replication", code: resp.StatusCode}
	}
	io.Copy(io.Discard, resp.Body)
	return nil
}

// probeHealth asks one peer for its local (non-aggregated) health.
func (cl *cluster) probeHealth(peer string) (status string, err error) {
	ctx, cancel := context.WithTimeout(context.Background(), cl.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+"/healthz?scope=local", nil)
	if err != nil {
		return "", err
	}
	resp, err := cl.client.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	var h struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&h); err != nil {
		return "", err
	}
	if h.Status == "" {
		return "", fmt.Errorf("peer answered %d with no status", resp.StatusCode)
	}
	return h.Status, nil
}

// maxMatrixWireBytes bounds peer transfer bodies (a factorization of a
// cached matrix, or the matrix itself) the same way the public matrix
// endpoint bounds MatrixMarket bodies.
const maxMatrixWireBytes = 1 << 30

// wireCSR is the gob form of a sparse matrix for peer replication.
type wireCSR struct {
	N, M   int
	RowPtr []int
	Cols   []int
	Vals   []float64
}

func csrToWire(a *sparse.CSR) wireCSR {
	return wireCSR{N: a.N, M: a.M, RowPtr: a.RowPtr, Cols: a.Cols, Vals: a.Vals}
}

func csrFromWire(w wireCSR) *sparse.CSR {
	return &sparse.CSR{N: w.N, M: w.M, RowPtr: w.RowPtr, Cols: w.Cols, Vals: w.Vals}
}

// wireFactor is the gob body of /v1/peer/factor/{key}: the factored
// matrix plus every processor's preconditioner piece, and the exact
// configuration the factorization ran under. The importer rebuilds the
// partition, layout and elimination plan deterministically from the
// matrix — those are pure functions of (matrix, procs, seed) — and
// rehydrates the pieces, so the factors never get recomputed and stay
// bitwise identical to the owner's.
type wireFactor struct {
	Key           string
	Matrix        wireCSR
	Procs         int
	Seed          int64
	LadderStep    string
	Degraded      bool
	Levels        int
	FactorSeconds float64
	Pieces        []core.WirePrecond
}

// ErrNotExportable marks entries whose pieces are not ProcPrecond rows
// (the block-Jacobi containment floor): those are cheap to rebuild and
// not worth a wire format.
var ErrNotExportable = errors.New("service: factorization entry is not exportable")

func wireOfEntry(ent *entry, cfg Config) (*wireFactor, error) {
	wf := &wireFactor{
		Key:           ent.key,
		Matrix:        csrToWire(ent.a),
		Procs:         cfg.Procs,
		Seed:          cfg.Seed,
		LadderStep:    ent.ladderStep,
		Degraded:      ent.degraded,
		Levels:        ent.levels,
		FactorSeconds: ent.factorSeconds,
		Pieces:        make([]core.WirePrecond, len(ent.pcs)),
	}
	for q, pc := range ent.pcs {
		pp, ok := pc.(*core.ProcPrecond)
		if !ok {
			return nil, fmt.Errorf("%w: processor %d holds a %T piece", ErrNotExportable, q, pc)
		}
		wf.Pieces[q] = pp.Wire()
	}
	return wf, nil
}

// ExportFactor encodes key's factorization for a peer daemon. The entry
// is resolved strictly locally — cache hit or local build, never a
// fetch from another peer — so daemons with disagreeing peer lists
// cannot route a fetch in a cycle. Unknown keys surface
// ErrUnknownMatrix (the peer endpoint answers 404 and the fetcher
// builds locally).
func (s *Server) ExportFactor(key string) ([]byte, error) {
	ent, _, err := s.entryForLocal(key)
	if err != nil {
		return nil, err
	}
	wf, err := wireOfEntry(ent, s.cfg)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(wf); err != nil {
		return nil, fmt.Errorf("service: encoding factorization %s: %w", key, err)
	}
	if s.cluster != nil {
		s.cluster.serves.Add(1)
	}
	return buf.Bytes(), nil
}

// importFactor decodes a peer's factorization and rebuilds a cache
// entry around it: the matrix, layout and plan are reconstructed
// locally (deterministic given the wire's procs and seed, which must
// match this daemon's), the preconditioner rows come straight off the
// wire, and the ghost-exchange plans are rebuilt in a local
// shared-memory run — the only part that needs a communicator, and it
// moves no floating-point data.
func (s *Server) importFactor(key string, data []byte) (ent *entry, err error) {
	defer func() {
		if r := recover(); r != nil {
			ent, err = nil, fmt.Errorf("service: importing factorization %s: %v", key, r)
		}
	}()
	var wf wireFactor
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&wf); err != nil {
		return nil, fmt.Errorf("service: decoding factorization %s: %w", key, err)
	}
	if wf.Key != key {
		return nil, fmt.Errorf("service: peer served factorization %s for requested key %s", wf.Key, key)
	}
	if wf.Procs != s.cfg.Procs || wf.Seed != s.cfg.Seed {
		return nil, fmt.Errorf("service: peer factored %s with procs=%d seed=%d, this daemon runs procs=%d seed=%d — cluster members must share configuration",
			key, wf.Procs, wf.Seed, s.cfg.Procs, s.cfg.Seed)
	}
	if len(wf.Pieces) != wf.Procs {
		return nil, fmt.Errorf("service: factorization %s carries %d pieces for %d processors", key, len(wf.Pieces), wf.Procs)
	}
	a := csrFromWire(wf.Matrix)
	if got := sparse.Fingerprint(a); got != key {
		return nil, fmt.Errorf("service: peer-served matrix fingerprints to %s, want %s", got, key)
	}

	g := graph.FromMatrix(a)
	part := partition.KWay(g, s.cfg.Procs, partition.Options{Seed: s.cfg.Seed})
	lay, err := dist.NewLayout(a.N, s.cfg.Procs, part)
	if err != nil {
		return nil, fmt.Errorf("service: layout for imported %s: %w", key, err)
	}
	prem := a
	if wf.LadderStep == "shift" {
		prem = shiftDiagonal(a, shiftAlpha(a))
	}
	plan, err := core.NewPlan(prem, lay)
	if err != nil {
		return nil, fmt.Errorf("service: plan for imported %s: %w", key, err)
	}

	ent = &entry{
		key:           key,
		a:             a,
		lay:           lay,
		pcs:           make([]precPiece, wf.Procs),
		mats:          make([]*dist.Matrix, wf.Procs),
		levels:        wf.Levels,
		factorSeconds: wf.FactorSeconds,
		degraded:      wf.Degraded,
		ladderStep:    wf.LadderStep,
	}
	for q := range wf.Pieces {
		pp, perr := core.FromWire(plan, wf.Pieces[q])
		if perr != nil {
			return nil, perr
		}
		ent.pcs[q] = pp
	}
	if _, rerr := pcomm.Guard(realcomm.New(wf.Procs), func(c pcomm.Comm) {
		ent.mats[c.ID()] = dist.NewMatrix(c, lay, a)
	}); rerr != nil {
		return nil, fmt.Errorf("service: ghost plans for imported %s: %w", key, rerr)
	}

	ent.bytes = a.SizeBytes()
	for q := 0; q < wf.Procs; q++ {
		ent.bytes += ent.pcs[q].SizeBytes()
		ent.bytes += ent.mats[q].SizeBytes()
	}
	// The importing daemon now knows the matrix too: a later cache
	// eviction can rebuild locally without resubmission.
	s.mu.Lock()
	s.matrices.put(a)
	s.mu.Unlock()
	return ent, nil
}

// ImportMatrix ingests a replicated matrix from a peer (the gob wireCSR
// body of POST /v1/peer/matrix).
func (s *Server) ImportMatrix(r io.Reader) (key string, known bool, err error) {
	var w wireCSR
	if err := gob.NewDecoder(io.LimitReader(r, maxMatrixWireBytes)).Decode(&w); err != nil {
		return "", false, fmt.Errorf("service: decoding replicated matrix: %w", err)
	}
	return s.Submit(csrFromWire(w))
}

// replicateMatrix pushes a freshly submitted matrix to its owning
// daemon so ownership works in the submit-anywhere flow: the owner can
// then build (and serve) the factorization even though the client never
// talked to it. Best-effort — a dead owner costs one gated attempt and
// the submit still succeeds locally.
func (s *Server) replicateMatrix(key string, a *sparse.CSR) {
	cl := s.cluster
	if cl == nil {
		return
	}
	owner := cl.owner(key)
	if owner == cl.self || !cl.allow(owner) {
		return
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(csrToWire(a)); err != nil {
		cl.replLost.Add(1)
		return
	}
	if err := cl.putMatrix(owner, buf.Bytes()); err != nil {
		cl.replLost.Add(1)
		cl.peerDown(owner)
		return
	}
	cl.replSent.Add(1)
	cl.peerUp(owner)
}

// PeerHealth is one member's row in the aggregated cluster health.
type PeerHealth struct {
	URL string `json:"url"`
	// Status: the peer's own reported status ("ok", "draining"), or
	// "down" when it cannot be reached, "left" for administratively
	// drained members (not probed), or "self" for this daemon.
	Status string `json:"status"`
	// State is the membership view's verdict for the member ("alive",
	// "suspect", "dead", "left") — the probe loop's accumulated opinion,
	// versus Status which is this one health check's live probe.
	State string `json:"state"`
	// BreakerOpen reports this daemon's circuit breaker for the peer;
	// an open breaker means recent operations kept failing and fetches
	// are currently being skipped.
	BreakerOpen bool   `json:"breaker_open"`
	Error       string `json:"error,omitempty"`
}

// ClusterHealth is the cluster-wide health answer: this daemon's local
// health plus one row per member of the view and the view's epoch.
// Status degrades to "degraded" when any non-left member is unreachable
// or written off — the cluster still answers everything this daemon can
// serve alone, so degradation is a warning, not an outage.
type ClusterHealth struct {
	Health
	Epoch   uint64       `json:"epoch,omitempty"`
	Cluster []PeerHealth `json:"cluster,omitempty"`
}

// ClusterEnabled reports whether this server is a cluster member.
func (s *Server) ClusterEnabled() bool { return s.cluster != nil }

// ClusterHealthCheck probes every live member's local health and
// aggregates it with the membership view. Probes run concurrently; a
// dead peer costs one OpTimeout, not one per peer.
func (s *Server) ClusterHealthCheck() ClusterHealth {
	out := ClusterHealth{Health: s.Health()}
	cl := s.cluster
	if cl == nil {
		return out
	}
	view := cl.ms.snapshot()
	out.Epoch = view.Epoch
	rows := make([]PeerHealth, len(view.Members))
	var wg sync.WaitGroup
	for i, m := range view.Members {
		rows[i] = PeerHealth{URL: m.URL, State: m.State, BreakerOpen: cl.breakerOpen(m.URL)}
		switch {
		case m.URL == cl.self:
			rows[i].Status = "self"
			continue
		case m.State == stateLeft.String():
			rows[i].Status = "left"
			continue
		}
		wg.Add(1)
		go func(i int, peer string) {
			defer wg.Done()
			status, err := cl.probeHealth(peer)
			if err != nil {
				rows[i].Status = "down"
				rows[i].Error = err.Error()
				return
			}
			rows[i].Status = status
		}(i, m.URL)
	}
	wg.Wait()
	for i := range rows {
		if out.Status != "ok" {
			break
		}
		switch rows[i].Status {
		case "self", "ok", "left":
		default:
			out.Status = "degraded"
		}
	}
	out.Cluster = rows
	return out
}
