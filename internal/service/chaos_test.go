// Chaos tests: the service must survive every injected fault class —
// numerical breakdown, a panicking processor, a lost message — answering
// the affected request with a structured error or a Degraded success,
// and then serving the follow-up clean request normally. The suite runs
// on the backend selected by $PILUT_BACKEND so CI sweeps both.
package service

import (
	"context"
	"errors"
	"math"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/krylov"
	"repro/internal/matgen"
	"repro/internal/pcomm"
	"repro/internal/pcomm/netcomm"
)

func chaosConfig(t *testing.T, spec string) Config {
	t.Helper()
	cfg := testConfig()
	cfg.Backend = os.Getenv("PILUT_BACKEND")
	if netcomm.IsSpec(cfg.Backend) {
		// A server's request streams live in one process, so the
		// multi-process backend cannot host its runs; the netcomm CI
		// lane still sweeps this suite, on the closest wall-clock
		// backend.
		cfg.Backend = "real"
	}
	if spec != "" {
		s, err := fault.Parse(spec)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Faults = s
	}
	return cfg
}

// TestPivotFaultDegradesToBlockJacobi: a denormal pivot perturbation
// makes every distributed rung break down; the ladder must land on
// block-Jacobi and answer Degraded successes, including cache hits.
func TestPivotFaultDegradesToBlockJacobi(t *testing.T) {
	cfg := chaosConfig(t, "seed=3,pivot=1e-320")
	s := New(cfg)
	defer s.Shutdown(context.Background())
	a := matgen.Grid2D(16, 16)
	key, _, _ := s.Submit(a)
	b := rhs(a.N, 1)

	res, err := s.Solve(context.Background(), key, b, SolveOptions{Tol: 1e-8})
	if err != nil {
		t.Fatalf("solve under pivot fault: %v", err)
	}
	if !res.Degraded || res.LadderStep != "blockjacobi" {
		t.Fatalf("res = degraded=%v step=%q, want the blockjacobi containment floor", res.Degraded, res.LadderStep)
	}
	if !res.Converged {
		t.Fatalf("degraded solve did not converge")
	}
	if rr := relResidual(a, res.X, b); rr > 1e-6 {
		t.Fatalf("degraded solution residual %g too large", rr)
	}

	// The follow-up hits the cached (degraded) entry and still carries
	// the flag; the daemon never died.
	res2, err := s.Solve(context.Background(), key, rhs(a.N, 2), SolveOptions{Tol: 1e-8})
	if err != nil {
		t.Fatalf("follow-up solve: %v", err)
	}
	if !res2.CacheHit || !res2.Degraded {
		t.Fatalf("follow-up = hit=%v degraded=%v, want a degraded cache hit", res2.CacheHit, res2.Degraded)
	}

	st := s.StatsSnapshot()
	if st.Solves.LadderRetries == 0 || st.Solves.Degraded != 2 {
		t.Fatalf("stats = retries=%d degraded=%d, want retries>0 and degraded=2",
			st.Solves.LadderRetries, st.Solves.Degraded)
	}
	if h := s.Health(); h.Status != "ok" || h.DegradedSolves != 2 {
		t.Fatalf("health = %+v, want ok with 2 degraded solves", h)
	}
}

// TestPanicFaultIsContained: one processor panics mid-factorization. The
// request gets a structured error naming the rank; the one-shot fault
// then leaves the daemon serving the next request cleanly.
func TestPanicFaultIsContained(t *testing.T) {
	cfg := chaosConfig(t, "seed=1,panic=1@5")
	s := New(cfg)
	defer s.Shutdown(context.Background())
	a := matgen.Grid2D(16, 16)
	key, _, _ := s.Submit(a)

	_, err := s.Solve(context.Background(), key, rhs(a.N, 1), SolveOptions{})
	if err == nil {
		t.Fatal("solve under panic fault reported success")
	}
	var re *pcomm.RunError
	if !errors.As(err, &re) || re.Rank != 1 {
		t.Fatalf("err = %v, want a *pcomm.RunError for rank 1", err)
	}
	var ip *fault.InjectedPanic
	if !errors.As(err, &ip) {
		t.Fatalf("err = %v does not wrap the *fault.InjectedPanic", err)
	}

	// One-shot: the same daemon, same key, now factors and solves fine.
	res, err := s.Solve(context.Background(), key, rhs(a.N, 2), SolveOptions{Tol: 1e-8})
	if err != nil || !res.Converged {
		t.Fatalf("follow-up solve after contained panic: res=%+v err=%v", res, err)
	}
}

// TestDropFaultTripsWatchdogAndRecovers: a swallowed message deadlocks
// the factorization; the per-run watchdog must fail that request with a
// structured deadlock error and leave the daemon healthy.
func TestDropFaultTripsWatchdogAndRecovers(t *testing.T) {
	cfg := chaosConfig(t, "seed=1,drop=0@2")
	cfg.Watchdog = 1500 * time.Millisecond
	s := New(cfg)
	defer s.Shutdown(context.Background())
	a := matgen.Grid2D(16, 16)
	key, _, _ := s.Submit(a)

	_, err := s.Solve(context.Background(), key, rhs(a.N, 1), SolveOptions{})
	if err == nil {
		t.Fatal("solve under drop fault reported success")
	}
	var re *pcomm.RunError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want a *pcomm.RunError from the watchdog", err)
	}
	if re.Dump == "" {
		t.Fatal("watchdog RunError carries no blocked-state dump")
	}

	res, err := s.Solve(context.Background(), key, rhs(a.N, 2), SolveOptions{Tol: 1e-8})
	if err != nil || !res.Converged {
		t.Fatalf("follow-up solve after watchdog trip: res=%+v err=%v", res, err)
	}
}

// TestBreakerOpensAndProbes: a matrix that always fails to factor opens
// its circuit breaker after the configured failures; further requests
// bounce immediately with a retry hint, and after the cooldown exactly
// one probe is admitted.
func TestBreakerOpensAndProbes(t *testing.T) {
	cfg := chaosConfig(t, "")
	cfg.Workers = 1
	cfg.BreakerFailures = 2
	cfg.BreakerCooldown = 200 * time.Millisecond
	s := New(cfg)
	defer s.Shutdown(context.Background())

	g := matgen.Grid2D(8, 8)
	bad := g.Clone()
	bad.Cols[len(bad.Cols)/2] = bad.N + 17 // malformed: factorization always panics
	key, _, err := s.Submit(bad)
	if err != nil {
		t.Fatal(err)
	}
	b := rhs(bad.N, 1)

	for i := 0; i < 2; i++ {
		if _, err := s.Solve(context.Background(), key, b, SolveOptions{}); err == nil {
			t.Fatalf("solve %d of the malformed matrix succeeded", i)
		} else if errors.Is(err, ErrBreakerOpen) {
			t.Fatalf("solve %d bounced off the breaker before the threshold", i)
		}
	}

	// Third request: the circuit is open — rejected without running.
	start := time.Now()
	_, err = s.Solve(context.Background(), key, b, SolveOptions{})
	var bo *BreakerOpenError
	if !errors.As(err, &bo) || bo.RetryAfter <= 0 {
		t.Fatalf("err = %v, want *BreakerOpenError with a retry hint", err)
	}
	if time.Since(start) > 100*time.Millisecond {
		t.Fatalf("breaker rejection took %v, want immediate", time.Since(start))
	}

	// After the cooldown one probe is admitted (and fails again).
	time.Sleep(cfg.BreakerCooldown + 50*time.Millisecond)
	if _, err := s.Solve(context.Background(), key, b, SolveOptions{}); errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("post-cooldown probe was rejected: %v", err)
	}
	if _, err := s.Solve(context.Background(), key, b, SolveOptions{}); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("failed probe did not re-open the breaker: %v", err)
	}

	// A different (healthy) matrix is unaffected by the open circuit.
	good := matgen.Grid2D(8, 8)
	gkey, _, _ := s.Submit(good)
	if res, err := s.Solve(context.Background(), gkey, rhs(good.N, 2), SolveOptions{}); err != nil || !res.Converged {
		t.Fatalf("healthy matrix blocked by another key's breaker: res=%+v err=%v", res, err)
	}

	st := s.StatsSnapshot()
	if st.Solves.BreakerRejected == 0 {
		t.Fatal("breaker rejections not counted in stats")
	}
	if h := s.Health(); len(h.BreakerOpenKeys) != 1 || h.BreakerOpenKeys[0] != key {
		t.Fatalf("health breaker keys = %v, want [%s]", h.BreakerOpenKeys, key)
	}
}

// TestQueueShedsUnderOverload: with the single worker pinned and the
// bounded queue full, the next request is shed immediately with a 429
// retry hint instead of queueing without bound.
func TestQueueShedsUnderOverload(t *testing.T) {
	cfg := chaosConfig(t, "")
	cfg.Workers = 1
	cfg.MaxBatch = 1
	cfg.MaxQueue = 2
	s := New(cfg)
	defer s.Shutdown(context.Background())
	a := matgen.Grid2D(24, 24)
	key, _, _ := s.Submit(a)
	if _, err := s.Solve(context.Background(), key, rhs(a.N, 1), SolveOptions{}); err != nil {
		t.Fatal(err) // warm cache
	}

	// Pin the worker with an unreachable-tolerance blocker.
	blockerCtx, stopBlocker := context.WithCancel(context.Background())
	defer stopBlocker()
	blockerDone := make(chan struct{})
	go func() {
		defer close(blockerDone)
		s.Solve(blockerCtx, key, rhs(a.N, 2), SolveOptions{Tol: 1e-300, MaxMatVec: 500000})
	}()
	waitFor(t, "blocker to start running", func() bool {
		return s.StatsSnapshot().Running == 1
	})

	// Fill the queue to MaxQueue, then one more must shed.
	qctx, stopQueued := context.WithCancel(context.Background())
	defer stopQueued()
	for i := 0; i < cfg.MaxQueue; i++ {
		go s.Solve(qctx, key, rhs(a.N, int64(3+i)), SolveOptions{Tol: 1e-300, MaxMatVec: 500000})
	}
	waitFor(t, "queue to fill", func() bool {
		return s.StatsSnapshot().QueueDepth >= cfg.MaxQueue
	})

	_, err := s.Solve(context.Background(), key, rhs(a.N, 9), SolveOptions{})
	var ov *OverloadedError
	if !errors.As(err, &ov) || ov.RetryAfter <= 0 {
		t.Fatalf("err = %v, want *OverloadedError with a retry hint", err)
	}
	if st := s.StatsSnapshot(); st.Solves.Shed == 0 {
		t.Fatal("shed requests not counted in stats")
	}

	stopBlocker()
	stopQueued()
	<-blockerDone
	waitFor(t, "workers to drain", func() bool {
		st := s.StatsSnapshot()
		return st.Running == 0 && st.QueueDepth == 0
	})
}

// TestRealBackendCancelMidSolveReleasesProcs is the satellite for the
// wall-clock backend: a context expiring mid-solve must release every
// processor goroutine collectively, leak nothing, and leave the cache
// serving hits.
func TestRealBackendCancelMidSolveReleasesProcs(t *testing.T) {
	cfg := testConfig()
	cfg.Backend = "real"
	cfg.Workers = 1
	s := New(cfg)
	defer s.Shutdown(context.Background())
	a := matgen.Grid2D(24, 24)
	key, _, _ := s.Submit(a)
	if _, err := s.Solve(context.Background(), key, rhs(a.N, 1), SolveOptions{}); err != nil {
		t.Fatal(err) // warm cache
	}
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err := s.Solve(ctx, key, rhs(a.N, 2), SolveOptions{Tol: 1e-300, MaxMatVec: 500000})
	if !errors.Is(err, krylov.ErrCanceled) {
		t.Fatalf("mid-solve expiry on real backend: err = %v, want krylov.ErrCanceled", err)
	}
	waitFor(t, "run to release all processors", func() bool {
		return s.StatsSnapshot().Running == 0
	})
	waitFor(t, "processor goroutines to exit", func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= before+2
	})

	// Cache is consistent: the follow-up is a hit and converges.
	res, err := s.Solve(context.Background(), key, rhs(a.N, 3), SolveOptions{Tol: 1e-8})
	if err != nil || !res.Converged || !res.CacheHit {
		t.Fatalf("follow-up after canceled run: res=%+v err=%v", res, err)
	}
}

// TestFaultsOffIsBitwiseClean: a Config with no Faults produces the same
// solution bits as one with a nil-spec explicitly, guarding against the
// injection layer leaking into the clean path.
func TestFaultsOffIsBitwiseClean(t *testing.T) {
	a := matgen.Grid2D(16, 16)
	b := rhs(a.N, 4)
	solve := func(spec *fault.Spec) SolveResult {
		cfg := chaosConfig(t, "")
		cfg.Faults = spec
		s := New(cfg)
		defer s.Shutdown(context.Background())
		key, _, _ := s.Submit(a)
		res, err := s.Solve(context.Background(), key, b, SolveOptions{Tol: 1e-8})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	clean := solve(nil)
	disabled := solve(&fault.Spec{Seed: 5}) // present but injects nothing
	if clean.Degraded || disabled.Degraded {
		t.Fatal("clean solves flagged degraded")
	}
	for i := range clean.X {
		if math.Float64bits(clean.X[i]) != math.Float64bits(disabled.X[i]) {
			t.Fatalf("X[%d] differs between nil and disabled fault specs", i)
		}
	}
}
