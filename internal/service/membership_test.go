package service

// Tests for the gossip-lite membership layer, the HRW minimal-disruption
// property routing rests on, the bounded peer-fetch retry, and the
// replication/takeover path: owner builds, successor inherits, solves
// stay bitwise identical across the failover.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/matgen"
	"repro/internal/sparse"
)

func TestMembershipProbeLadder(t *testing.T) {
	ms := newMembership("a", []string{"a", "b", "c"}, 1, 3)
	e0 := ms.epoch

	// One failure: alive → suspect, still routable.
	if ch, after := ms.observeFailure("b"); !ch || after != stateSuspect {
		t.Fatalf("first failure: changed=%v state=%v, want true/suspect", ch, after)
	}
	if r := ms.routable(); len(r) != 3 {
		t.Fatalf("suspect member dropped from routing: %v", r)
	}
	// Second failure: suspect stays suspect (deadAfter=3), no change.
	if ch, after := ms.observeFailure("b"); ch || after != stateSuspect {
		t.Fatalf("second failure: changed=%v state=%v, want false/suspect", ch, after)
	}
	// Third failure: dead, out of routing, still probed for rejoin.
	if ch, after := ms.observeFailure("b"); !ch || after != stateDead {
		t.Fatalf("third failure: changed=%v state=%v, want true/dead", ch, after)
	}
	if r := ms.routable(); len(r) != 2 {
		t.Fatalf("dead member still routable: %v", r)
	}
	if pt := ms.probeTargets(); len(pt) != 2 {
		t.Fatalf("dead member must stay probed (rejoin path): targets %v", pt)
	}
	if ms.epoch <= e0 {
		t.Fatal("state changes did not advance the epoch")
	}

	// First answered probe: straight back to alive, failure streak reset.
	if !ms.observeAlive("b") {
		t.Fatal("revival did not report a view change")
	}
	if st, _ := ms.stateOf("b"); st != stateAlive {
		t.Fatalf("revived member is %v, want alive", st)
	}
	if ch, after := ms.observeFailure("b"); !ch || after != stateSuspect {
		t.Fatalf("failure streak not reset by revival: changed=%v state=%v", ch, after)
	}

	// Administrative leave: out of routing AND probing; unknown URL errors.
	if _, err := ms.leave("nobody"); err == nil {
		t.Error("leave of an unknown member did not error")
	}
	if ch, err := ms.leave("c"); !ch || err != nil {
		t.Fatalf("leave(c): changed=%v err=%v", ch, err)
	}
	if pt := ms.probeTargets(); len(pt) != 1 || pt[0] != "b" {
		t.Fatalf("left member still probed: targets %v", pt)
	}
	if ch, _ := ms.observeFailure("c"); ch {
		t.Error("probe observation mutated a left member")
	}
	// Re-join revives the tombstone.
	if !ms.join("c") {
		t.Fatal("re-join of a left member did not change the view")
	}
	if st, _ := ms.stateOf("c"); st != stateAlive {
		t.Fatalf("re-joined member is %v, want alive", st)
	}
	// Joining an already-alive member is idempotent.
	if ms.join("c") {
		t.Error("idempotent join reported a view change")
	}
}

func TestMembershipMergeLastWriterWins(t *testing.T) {
	ms := newMembership("a", []string{"a", "b", "c"}, 1, 2)

	// A higher-stamped record wins; a lower-stamped one is ignored.
	changed := ms.merge(View{Epoch: 9, Members: []MemberRecord{
		{URL: "b", State: "dead", Stamp: 9},
		{URL: "c", State: "suspect", Stamp: 0}, // stale: local stamp is 1
		{URL: "d", State: "alive", Stamp: 5},   // new member
		{URL: "", State: "alive", Stamp: 99},   // malformed: no URL
		{URL: "e", State: "zombie", Stamp: 99}, // malformed: unknown state
	}})
	if !changed {
		t.Fatal("merge with new information reported no change")
	}
	if st, _ := ms.stateOf("b"); st != stateDead {
		t.Errorf("higher-stamped death did not win: b is %v", st)
	}
	if st, _ := ms.stateOf("c"); st != stateAlive {
		t.Errorf("stale record overwrote c: %v", st)
	}
	if st, ok := ms.stateOf("d"); !ok || st != stateAlive {
		t.Errorf("new member not admitted by merge: %v %v", st, ok)
	}
	if _, ok := ms.stateOf("e"); ok {
		t.Error("malformed record created a member")
	}
	if ms.epochNow() < 9 {
		t.Errorf("epoch %d did not ratchet to the merged view's 9", ms.epochNow())
	}

	// Merging the same view again is a no-op (stamps are not >).
	if ms.merge(View{Epoch: 9, Members: []MemberRecord{{URL: "b", State: "dead", Stamp: 9}}}) {
		t.Error("idempotent re-merge reported a change")
	}

	// Self-refutation: a rumor of our own death is refuted under a fresh
	// stamp above the rumor's, so the refutation wins every future merge.
	if !ms.merge(View{Epoch: 30, Members: []MemberRecord{{URL: "a", State: "dead", Stamp: 30}}}) {
		t.Fatal("self-death rumor reported no change")
	}
	if st, _ := ms.stateOf("a"); st != stateAlive {
		t.Fatalf("self was not refuted back to alive: %v", st)
	}
	v := ms.snapshot()
	if v.Epoch <= 30 {
		t.Errorf("refutation stamp %d does not exceed the rumor's 30", v.Epoch)
	}
	for _, m := range v.Members {
		if m.URL == "a" && m.Stamp <= 30 {
			t.Errorf("self record stamp %d would lose the next merge against the rumor", m.Stamp)
		}
	}
}

// TestHRWMinimalDisruption pins the property failover rests on: removing
// one member from the view remaps ONLY the keys that member owned —
// every surviving owner keeps every key it had. Checked across cluster
// sizes, both by shrinking the configured peer list and by marking the
// member dead through the probe ladder (the two must agree).
func TestHRWMinimalDisruption(t *testing.T) {
	const keys = 300
	for _, n := range []int{2, 3, 5, 8} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			peers := make([]string, n)
			for i := range peers {
				peers[i] = fmt.Sprintf("http://node-%d:8417", i)
			}
			mk := func(list []string) *cluster {
				return newCluster(&ClusterConfig{Self: list[0], Peers: list, OpTimeout: time.Second}, 3, time.Second)
			}
			full := mk(peers)
			before := make(map[string]string, keys)
			for i := 0; i < keys; i++ {
				k := fmt.Sprintf("sha256:%08d", i)
				before[k] = full.owner(k)
			}

			// Remove the last peer (never Self) two ways.
			removed := peers[n-1]
			shrunk := mk(peers[:n-1])
			probed := mk(peers)
			for f := 0; f < 2; f++ { // default deadAfter = 2
				probed.ms.observeFailure(removed)
			}

			moved := 0
			for k, own := range before {
				so, po := shrunk.owner(k), probed.owner(k)
				if so != po {
					t.Fatalf("key %s: shrunk list says %s, dead member says %s", k, so, po)
				}
				if own == removed {
					moved++
					if so == removed {
						t.Fatalf("key %s still maps to the removed member", k)
					}
					continue
				}
				if so != own {
					t.Fatalf("key %s moved %s → %s although its owner survived", k, own, so)
				}
			}
			if moved == 0 {
				t.Fatal("removed member owned no keys; test has no teeth")
			}
			// Sanity: the removed member's share is roughly 1/n, not the
			// whole space (a degenerate hash would shuffle everything).
			if moved > 3*keys/n {
				t.Errorf("removed member owned %d/%d keys — far above the ~1/%d fair share", moved, keys, n)
			}
		})
	}
}

func TestTransientFetchErrClassification(t *testing.T) {
	status := func(code int) error { return &peerStatusError{peer: "p", op: "t", code: code} }
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"clean miss", errPeerMiss, false},
		{"wrapped miss", fmt.Errorf("fetch: %w", errPeerMiss), false},
		{"429 overload", status(429), true},
		{"500", status(500), true},
		{"503", status(503), true},
		{"wrapped 503", fmt.Errorf("fetch: %w", status(503)), true},
		{"403 auth", status(403), false},
		{"400 bad request", status(400), false},
		{"422 mismatch", status(422), false},
		{"transport", errors.New("dial tcp: connection refused"), true},
	}
	for _, tc := range cases {
		if got := transientFetchErr(tc.err); got != tc.want {
			t.Errorf("%s: transient=%v, want %v", tc.name, got, tc.want)
		}
	}
}

// retryCluster builds a bare cluster whose only peer is ts, for driving
// getFactorRetry directly.
func retryCluster(ts *httptest.Server) *cluster {
	return newCluster(&ClusterConfig{
		Self:      "http://self.invalid",
		Peers:     []string{"http://self.invalid", ts.URL},
		OpTimeout: 5 * time.Second,
	}, 3, time.Minute)
}

func TestGetFactorRetryOnceOnTransient(t *testing.T) {
	hits := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits++
		if hits == 1 {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte("factor-bytes"))
	}))
	defer ts.Close()
	cl := retryCluster(ts)
	data, err := cl.getFactorRetry(ts.URL, "k")
	if err != nil || string(data) != "factor-bytes" {
		t.Fatalf("retry did not recover: %q, %v", data, err)
	}
	if hits != 2 {
		t.Errorf("server saw %d requests, want 2 (original + one retry)", hits)
	}
	if got := cl.fetchRetries.Load(); got != 1 {
		t.Errorf("fetchRetries = %d, want 1", got)
	}
}

func TestGetFactorRetryBounded(t *testing.T) {
	hits := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits++
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer ts.Close()
	cl := retryCluster(ts)
	_, err := cl.getFactorRetry(ts.URL, "k")
	var se *peerStatusError
	if !errors.As(err, &se) || se.code != http.StatusServiceUnavailable {
		t.Fatalf("error %v, want 503 peerStatusError", err)
	}
	if hits != 2 {
		t.Errorf("server saw %d requests, want exactly 2 (one bounded retry)", hits)
	}
}

func TestGetFactorRetrySkipsPermanentAndMiss(t *testing.T) {
	for _, tc := range []struct {
		name string
		code int
	}{{"auth rejection", http.StatusForbidden}, {"clean miss", http.StatusNotFound}} {
		t.Run(tc.name, func(t *testing.T) {
			hits := 0
			ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				hits++
				w.WriteHeader(tc.code)
			}))
			defer ts.Close()
			cl := retryCluster(ts)
			if _, err := cl.getFactorRetry(ts.URL, "k"); err == nil {
				t.Fatal("no error surfaced")
			}
			if hits != 1 {
				t.Errorf("server saw %d requests, want 1 (no retry)", hits)
			}
			if got := cl.fetchRetries.Load(); got != 0 {
				t.Errorf("fetchRetries = %d, want 0", got)
			}
		})
	}
}

func TestPeerAuthToken(t *testing.T) {
	srv := New(Config{Procs: 2, Workers: 1, Backend: "real", Cluster: &ClusterConfig{
		Self: "http://a", Peers: []string{"http://a"}, Token: "s3cret",
		ProbeInterval: -1, Replicas: -1,
	}})
	defer srv.Shutdown(context.Background())
	if !srv.PeerAuthOK("s3cret") {
		t.Error("correct token rejected")
	}
	if srv.PeerAuthOK("") || srv.PeerAuthOK("wrong") {
		t.Error("bad token accepted")
	}
	if got := srv.cluster.snapshot().RejectedPeerReqs; got != 2 {
		t.Errorf("rejected counter = %d, want 2", got)
	}

	open := New(Config{Procs: 2, Workers: 1, Backend: "real", Cluster: &ClusterConfig{
		Self: "http://a", Peers: []string{"http://a"},
		ProbeInterval: -1, Replicas: -1,
	}})
	defer open.Shutdown(context.Background())
	if !open.PeerAuthOK("") || !open.PeerAuthOK("anything") {
		t.Error("tokenless cluster rejected a request")
	}
	// Outgoing requests carry the header when configured.
	req, _ := http.NewRequest(http.MethodGet, "http://a/x", nil)
	srv.cluster.authorize(req)
	if req.Header.Get(ClusterTokenHeader) != "s3cret" {
		t.Error("authorize did not attach the configured token")
	}
}

// memberHandler is peerHandler plus the membership/replication surface —
// the subset of pilutd the dynamic-cluster service layer talks to.
func memberHandler(get func() *Server) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(get().Health())
	})
	mux.HandleFunc("GET /v1/peer/factor/{key}", func(w http.ResponseWriter, r *http.Request) {
		data, err := get().ExportFactor(r.PathValue("key"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		w.Write(data)
	})
	mux.HandleFunc("POST /v1/peer/matrix", func(w http.ResponseWriter, r *http.Request) {
		if _, _, err := get().ImportMatrix(r.Body); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
		}
	})
	mux.HandleFunc("POST /v1/peer/replica/{key}", func(w http.ResponseWriter, r *http.Request) {
		known, err := get().ImportReplica(r.PathValue("key"), r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusUnprocessableEntity)
			return
		}
		json.NewEncoder(w).Encode(map[string]bool{"known": known})
	})
	mux.HandleFunc("GET /v1/cluster/view", func(w http.ResponseWriter, r *http.Request) {
		v, ok := get().ClusterView()
		if !ok {
			http.Error(w, "not a member", http.StatusNotFound)
			return
		}
		json.NewEncoder(w).Encode(v)
	})
	mux.HandleFunc("POST /v1/cluster/view", func(w http.ResponseWriter, r *http.Request) {
		var v View
		if err := json.NewDecoder(r.Body).Decode(&v); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		merged, ok := get().MergeView(v)
		if !ok {
			http.Error(w, "not a member", http.StatusNotFound)
			return
		}
		json.NewEncoder(w).Encode(merged)
	})
	mux.HandleFunc("POST /v1/cluster/join", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			URL string `json:"url"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		v, err := get().HandleJoin(req.URL)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		json.NewEncoder(w).Encode(v)
	})
	return mux
}

// clusterTrio builds three servers joined into one cluster with
// replication enabled and probing under manual control.
func clusterTrio(t *testing.T) (srvs [3]*Server, tss [3]*httptest.Server, shutdown func()) {
	t.Helper()
	var s [3]*Server
	for i := range tss {
		i := i
		tss[i] = httptest.NewServer(memberHandler(func() *Server { return s[i] }))
	}
	peers := []string{tss[0].URL, tss[1].URL, tss[2].URL}
	for i := range s {
		s[i] = New(Config{Procs: 2, Workers: 1, Backend: "real", Cluster: &ClusterConfig{
			Self: peers[i], Peers: peers, OpTimeout: 5 * time.Second,
			Replicas: 1, ProbeInterval: -1,
		}})
	}
	return s, tss, func() {
		for _, ts := range tss {
			ts.Close()
		}
		for _, srv := range s {
			srv.Shutdown(context.Background())
		}
	}
}

// TestReplicationAndTakeover is the service-layer failover contract: the
// owner's freshly built factor lands on its HRW successor proactively;
// when the owner dies the successor claims the key and answers from the
// replica — bitwise identical, zero local factorizations — and a third
// daemon's in-flight-style fetch walks past the dead owner to the new
// one.
func TestReplicationAndTakeover(t *testing.T) {
	srvs, tss, shutdown := clusterTrio(t)
	defer shutdown()

	a := matgen.Grid2D(12, 12)
	key := sparse.Fingerprint(a)
	ranked := srvs[0].cluster.ranked(key)
	byURL := map[string]int{}
	for i, srv := range srvs {
		byURL[srv.cluster.self] = i
	}
	owner := srvs[byURL[ranked[0]]]
	successor := srvs[byURL[ranked[1]]]
	third := srvs[byURL[ranked[2]]]

	b := make([]float64, a.N)
	for i := range b {
		b[i] = float64(i%5) - 2
	}
	if _, _, err := owner.Submit(a); err != nil {
		t.Fatal(err)
	}
	want, err := owner.Solve(context.Background(), key, b, SolveOptions{Tol: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	if !want.Converged {
		t.Fatal("baseline solve did not converge")
	}

	// The proactive push runs off the request path; wait for it to land.
	deadline := time.Now().Add(10 * time.Second)
	for successor.cluster.snapshot().ReplicaImports == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("replica never reached the successor: owner=%+v successor=%+v",
				owner.cluster.snapshot(), successor.cluster.snapshot())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := owner.cluster.snapshot().ReplicasPushed; got != 1 {
		t.Errorf("owner pushed %d replicas, want 1 (R=1)", got)
	}

	// Kill the owner's listener. The third daemon still believes the dead
	// owner is routable; its fetch walk must absorb the failure (with the
	// bounded transient retry) and land on the replica-holding successor.
	tss[byURL[ranked[0]]].Close()
	if _, _, err := third.Submit(a); err != nil {
		t.Fatal(err)
	}
	got3, err := third.Solve(context.Background(), key, b, SolveOptions{Tol: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	if !bitsEqual(want.X, got3.X) {
		t.Error("third daemon's solve differs bitwise")
	}
	ts3 := third.cluster.snapshot()
	if ts3.PeerFetchHits != 1 {
		t.Errorf("third daemon fetch hits = %d, want 1 (served by the replica holder)", ts3.PeerFetchHits)
	}
	if ts3.PeerFetchFailures == 0 || ts3.PeerFetchRetries == 0 {
		t.Errorf("third daemon's walk past the dead owner recorded no failure/retry: %+v", ts3)
	}
	if f := third.StatsSnapshot().Cache.Factorizations; f != 0 {
		t.Errorf("third daemon built %d factorizations instead of fetching", f)
	}

	// Walk the owner to dead on the successor (deadAfter defaults to 2);
	// the view change must claim the key and re-replicate it onward.
	for f := 0; f < 2; f++ {
		successor.cluster.ms.observeFailure(ranked[0])
	}
	successor.onViewChange()
	if successor.cluster.owner(key) != successor.cluster.self {
		t.Fatal("successor did not inherit ownership after the owner died")
	}
	ss := successor.cluster.snapshot()
	if ss.TakeoverKeys != 1 {
		t.Errorf("takeover_keys = %d, want 1", ss.TakeoverKeys)
	}
	if ss.ReplicasPushed == 0 {
		t.Errorf("view change did not re-replicate the claimed key: %+v", ss)
	}

	// Solve on the new owner: answered from the replica, not rebuilt.
	if _, _, err := successor.Submit(a); err != nil {
		t.Fatal(err)
	}
	got, err := successor.Solve(context.Background(), key, b, SolveOptions{Tol: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	if !bitsEqual(want.X, got.X) || want.Iterations != got.Iterations {
		t.Error("post-takeover solve differs from the pre-kill owner's answer")
	}
	if f := successor.StatsSnapshot().Cache.Factorizations; f != 0 {
		t.Errorf("successor built %d factorizations; the replica should have served", f)
	}
}

// TestProbeWalksPeerToDead drives probeOnce manually: a closed listener
// walks alive → suspect → dead in two rounds, the view epoch advances,
// and /healthz-style aggregation reports the membership verdict.
func TestProbeWalksPeerToDead(t *testing.T) {
	srvs, tss, shutdown := clusterTrio(t)
	defer shutdown()

	if srvs[0].probeOnce() {
		t.Fatal("probe round over a healthy cluster changed the view")
	}
	e0 := srvs[0].cluster.ms.epochNow()
	tss[2].Close()
	victim := srvs[2].cluster.self

	if !srvs[0].probeOnce() {
		t.Fatal("first failed probe round reported no change")
	}
	if st, _ := srvs[0].cluster.ms.stateOf(victim); st != stateSuspect {
		t.Fatalf("after one failed round: %v, want suspect", st)
	}
	if !srvs[0].probeOnce() {
		t.Fatal("second failed probe round reported no change")
	}
	if st, _ := srvs[0].cluster.ms.stateOf(victim); st != stateDead {
		t.Fatalf("after two failed rounds: %v, want dead", st)
	}
	if e := srvs[0].cluster.ms.epochNow(); e <= e0 {
		t.Errorf("epoch %d did not advance across state changes (was %d)", e, e0)
	}

	h := srvs[0].ClusterHealthCheck()
	if h.Status != "degraded" {
		t.Errorf("cluster health %q, want degraded", h.Status)
	}
	var row *PeerHealth
	for i := range h.Cluster {
		if h.Cluster[i].URL == victim {
			row = &h.Cluster[i]
		}
	}
	if row == nil || row.State != "dead" {
		t.Errorf("health row for the dead peer: %+v, want state dead", row)
	}
}

// TestJoinPropagatesMembership covers the runtime join path end to end
// at the service layer: a fourth daemon joins via a seed, the seed
// admits and broadcasts, and every member converges on a 4-member view.
func TestJoinPropagatesMembership(t *testing.T) {
	srvs, _, shutdown := clusterTrio(t)
	defer shutdown()

	var joiner *Server
	ts := httptest.NewServer(memberHandler(func() *Server { return joiner }))
	defer ts.Close()
	joiner = New(Config{Procs: 2, Workers: 1, Backend: "real", Cluster: &ClusterConfig{
		Self: ts.URL, OpTimeout: 5 * time.Second, Replicas: 1, ProbeInterval: -1,
	}})
	defer joiner.Shutdown(context.Background())

	if err := joiner.JoinCluster(srvs[0].cluster.self); err != nil {
		t.Fatalf("JoinCluster: %v", err)
	}
	if got := len(joiner.cluster.ms.routable()); got != 4 {
		t.Fatalf("joiner sees %d routable members, want 4", got)
	}
	if got := srvs[0].cluster.snapshot().Joins; got != 1 {
		t.Errorf("seed join counter = %d, want 1", got)
	}
	// The seed broadcast the new view; the other members converge without
	// waiting for a probe round.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if len(srvs[1].cluster.ms.routable()) == 4 && len(srvs[2].cluster.ms.routable()) == 4 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("broadcast did not converge: %v / %v",
				srvs[1].cluster.ms.routable(), srvs[2].cluster.ms.routable())
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Leave tombstones the joiner everywhere and stops routing to it.
	if _, err := srvs[0].HandleLeave(ts.URL); err != nil {
		t.Fatalf("HandleLeave: %v", err)
	}
	if got := len(srvs[0].cluster.ms.routable()); got != 3 {
		t.Errorf("after leave the seed routes to %d members, want 3", got)
	}
	if got := srvs[0].cluster.snapshot().Leaves; got != 1 {
		t.Errorf("seed leave counter = %d, want 1", got)
	}
	if _, err := srvs[0].HandleLeave("http://never-joined.invalid"); err == nil ||
		!strings.Contains(err.Error(), "not a cluster member") {
		t.Errorf("leave of a non-member: err %v, want not-a-member error", err)
	}
}

// TestPendingReplicaRetry is the stable-view redundancy contract: a
// replica push that fails (peer up but rejecting) marks the key pending,
// the probe-loop retry keeps re-pushing while the failure lasts, and the
// first clean push delivers the factor and clears the backlog. Stale
// pending keys (evicted from the cache) are dropped without a push.
func TestPendingReplicaRetry(t *testing.T) {
	var s [2]*Server
	var failReplica atomic.Bool
	var tss [2]*httptest.Server
	for i := range tss {
		i := i
		inner := memberHandler(func() *Server { return s[i] })
		tss[i] = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if failReplica.Load() && strings.HasPrefix(r.URL.Path, "/v1/peer/replica/") {
				http.Error(w, "synthetic push failure", http.StatusInternalServerError)
				return
			}
			inner.ServeHTTP(w, r)
		}))
	}
	peers := []string{tss[0].URL, tss[1].URL}
	for i := range s {
		s[i] = New(Config{Procs: 2, Workers: 1, Backend: "real", Cluster: &ClusterConfig{
			Self: peers[i], Peers: peers, OpTimeout: 5 * time.Second,
			Replicas: 1, ProbeInterval: -1,
		}})
	}
	defer func() {
		for _, ts := range tss {
			ts.Close()
		}
		for _, srv := range s {
			srv.Shutdown(context.Background())
		}
	}()

	a := matgen.Grid2D(12, 12)
	key := sparse.Fingerprint(a)
	owner, other := s[0], s[1]
	if owner.cluster.owner(key) != owner.cluster.self {
		owner, other = other, owner
	}
	pendingHas := func(srv *Server, k string) bool {
		srv.cluster.mu.Lock()
		defer srv.cluster.mu.Unlock()
		return srv.cluster.pending[k]
	}

	failReplica.Store(true)
	if _, _, err := owner.Submit(a); err != nil {
		t.Fatal(err)
	}
	b := make([]float64, a.N)
	for i := range b {
		b[i] = 1
	}
	if _, err := owner.Solve(context.Background(), key, b, SolveOptions{Tol: 1e-8}); err != nil {
		t.Fatal(err)
	}
	// The push runs off the request path; wait for its failure to land.
	deadline := time.Now().Add(10 * time.Second)
	for owner.cluster.snapshot().ReplicaPushFails == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("rejected push never recorded: %+v", owner.cluster.snapshot())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !pendingHas(owner, key) {
		t.Fatal("failed push did not mark the key pending")
	}

	// A retry while the peer still rejects keeps the key pending.
	owner.retryPendingReplicas()
	if !pendingHas(owner, key) {
		t.Error("key left the pending set while the peer still rejects pushes")
	}
	if got := owner.cluster.snapshot().ReplicaPushFails; got < 2 {
		t.Errorf("push failures = %d, want >= 2 after one retry", got)
	}
	if got := other.cluster.snapshot().ReplicaImports; got != 0 {
		t.Fatalf("peer imported %d replicas while rejecting pushes", got)
	}

	// First clean retry delivers and clears the backlog.
	failReplica.Store(false)
	owner.retryPendingReplicas()
	if pendingHas(owner, key) {
		t.Error("delivered key still pending")
	}
	if got := owner.cluster.snapshot().ReplicasPushed; got != 1 {
		t.Errorf("replicas pushed = %d, want 1", got)
	}
	if got := other.cluster.snapshot().ReplicaImports; got != 1 {
		t.Errorf("peer replica imports = %d, want 1", got)
	}

	// A pending key no longer in the cache is dropped, not pushed.
	owner.cluster.mu.Lock()
	owner.cluster.pending["not-a-cached-key"] = true
	owner.cluster.mu.Unlock()
	owner.retryPendingReplicas()
	if pendingHas(owner, "not-a-cached-key") {
		t.Error("evicted key was not dropped from the pending set")
	}
	if got := owner.cluster.snapshot().ReplicasPushed; got != 1 {
		t.Errorf("stale pending key triggered a push: pushed = %d, want 1", got)
	}
}
