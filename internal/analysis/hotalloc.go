package analysis

import (
	"go/ast"
)

// HotAlloc is the allocation ratchet for the factorization hot loops: a
// function whose doc comment carries a //pilut:hotpath directive may not
// allocate — make, new, append, slice/map composite literals, &composite
// literals, closure creation — nor call a module-local function that
// allocates (transitively, via the facts layer). Every allocation that
// is currently tolerated must wear a //pilutlint:ok hotalloc comment
// with a reason, which turns the analyzer's findings into the worklist
// for allocator-pressure work: remove the allocation, delete the
// annotation, and the ratchet tightens.
//
// Calls to other //pilut:hotpath functions are not reported — they are
// audited at their own definition — so the hot region composes without
// re-reporting each leaf's annotated allocations at every caller.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "flag allocations (direct or via callees) in //pilut:hotpath functions",
	Run:  runHotAlloc,
}

func runHotAlloc(pass *Pass) error {
	info := pass.TypesInfo
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotpath(fd.Doc) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if e, ok := n.(ast.Expr); ok {
					if desc := allocExpr(info, e); desc != "" {
						pass.Reportf(n.Pos(),
							"%s in //pilut:hotpath function %s; reuse a scratch buffer or annotate the site", desc, fd.Name.Name)
					}
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := calleeOf(info, call)
				if callee == nil {
					return true
				}
				ff := pass.Facts.Lookup(callee)
				if ff == nil || ff.Hot {
					// Standard library / opaque package / interface dispatch,
					// or a hot function audited at its own definition.
					return true
				}
				if ff.Has(FactAllocates) {
					pass.Reportf(call.Pos(),
						"call from //pilut:hotpath function %s to %s, which %s",
						fd.Name.Name, funcLabel(callee), pass.Facts.Chain(pass.Fset, callee, FactAllocates))
				}
				return true
			})
		}
	}
	return nil
}
