package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// BytesArg flags Send/AllGather calls whose modelled byte count is a raw
// literal or hand-rolled arithmetic instead of a BytesOf* helper. The
// byte count drives the LogP cost model behind every number in the
// EXPERIMENTS tables; a raw "8*len(xs)" that drifts from the payload's
// real wire size silently skews them, and the drift is invisible at run
// time because nothing functional depends on it.
//
// Accepted forms: a call to any function whose name starts with BytesOf
// (machine.BytesOfFloats, ilu.BytesOfURows, ...), the constant 0 (a pure
// control message), sums of accepted forms, and variables/parameters
// whose every definition is an accepted form.
var BytesArg = &Analyzer{
	Name: "bytesarg",
	Doc:  "flag raw byte counts at Send/AllGather sites",
	Run:  runBytesArg,
}

// bytesArgIdx maps methods to the index of their modelled-bytes argument.
var bytesArgIdx = map[string]int{
	"Send":      3,
	"AllGather": 1,
}

func runBytesArg(pass *Pass) error {
	idx := buildDefIndex(pass)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name, ok := procMethod(pass.TypesInfo, call)
			if !ok {
				return true
			}
			argIdx, ok := bytesArgIdx[name]
			if !ok || len(call.Args) <= argIdx {
				return true
			}
			arg := call.Args[argIdx]
			if !bytesAcceptable(pass.TypesInfo, idx, arg, make(map[*types.Var]bool)) {
				pass.Reportf(arg.Pos(),
					"modelled byte count of %s should come from a BytesOf* helper (or 0 for a control message); raw counts silently skew the LogP cost model", name)
			}
			return true
		})
	}
	return nil
}

func bytesAcceptable(info *types.Info, idx *defIndex, e ast.Expr, visiting map[*types.Var]bool) bool {
	// Constant zero in any spelling.
	if tv, ok := info.Types[e]; ok && tv.Value != nil {
		if v, exact := constant.Int64Val(tv.Value); exact && v == 0 {
			return true
		}
	}
	switch e := e.(type) {
	case *ast.ParenExpr:
		return bytesAcceptable(info, idx, e.X, visiting)
	case *ast.BinaryExpr:
		if e.Op.String() == "+" {
			return bytesAcceptable(info, idx, e.X, visiting) && bytesAcceptable(info, idx, e.Y, visiting)
		}
		return false
	case *ast.CallExpr:
		fun := e.Fun
		// Unwrap explicit generic instantiation: pcomm.BytesOf[URow](n).
		switch f := fun.(type) {
		case *ast.IndexExpr:
			fun = f.X
		case *ast.IndexListExpr:
			fun = f.X
		}
		var name string
		switch fun := fun.(type) {
		case *ast.Ident:
			name = fun.Name
		case *ast.SelectorExpr:
			name = fun.Sel.Name
		}
		return strings.HasPrefix(name, "BytesOf")
	case *ast.Ident:
		v := lookupVar(info, e)
		if v == nil {
			return false
		}
		if idx.params[v] {
			// A forwarded parameter: the obligation moves to the caller of
			// the enclosing helper.
			return true
		}
		if visiting[v] {
			return true
		}
		defs := idx.defs[v]
		if len(defs) == 0 {
			return false
		}
		visiting[v] = true
		defer delete(visiting, v)
		for _, d := range defs {
			switch d.kind {
			case defZero:
				// starts at 0
			case defExpr, defCompound:
				if !bytesAcceptable(info, idx, d.rhs, visiting) {
					return false
				}
			default:
				return false
			}
		}
		return true
	}
	return false
}
