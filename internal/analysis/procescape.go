package analysis

import (
	"go/ast"
	"go/types"
)

// ProcEscape flags communicator handles (*machine.Proc, pcomm.Comm)
// escaping the goroutine Run handed them to: captured by or passed to a
// go statement, stored in a package-level variable, or sent through a
// channel. A handle carries an unsynchronized virtual clock (or
// receiver-owned mailbox stashes on the real backend) and per-processor
// counters; sharing one across goroutines races, and using one after Run
// returns corrupts the next run's accounting. The messaging layer itself
// is exempt — Run is where the confinement is established.
var ProcEscape = &Analyzer{
	Name: "procescape",
	Doc:  "flag communicator handles escaping their goroutine",
	Run:  runProcEscape,
}

func runProcEscape(pass *Pass) error {
	if exemptPkg(pass.Pkg.Path()) {
		return nil
	}
	info := pass.TypesInfo
	isProcExpr := func(e ast.Expr) bool {
		tv, ok := info.Types[e]
		return ok && isComm(tv.Type)
	}
	labelOf := func(e ast.Expr) string {
		tv, _ := info.Types[e]
		return commLabel(tv.Type)
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				checkGoStmt(pass, n, isProcExpr, labelOf)
			case *ast.SendStmt:
				if isProcExpr(n.Value) {
					pass.Reportf(n.Value.Pos(),
						"%s sent on a channel; the communicator is confined to the goroutine Run handed it to", labelOf(n.Value))
				}
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					rhs := n.Rhs[0]
					if len(n.Lhs) == len(n.Rhs) {
						rhs = n.Rhs[i]
					}
					if isProcExpr(rhs) && isPackageLevelTarget(info, lhs) {
						pass.Reportf(rhs.Pos(),
							"%s stored in a package-level variable; the communicator must not outlive its Run goroutine", labelOf(rhs))
					}
				}
			case *ast.ValueSpec:
				// var global = p at package scope (or any spec storing a Proc
				// into a package-level name).
				for i, name := range n.Names {
					if i < len(n.Values) && isProcExpr(n.Values[i]) && isPackageLevelTarget(info, name) {
						pass.Reportf(n.Values[i].Pos(),
							"%s stored in a package-level variable; the communicator must not outlive its Run goroutine", labelOf(n.Values[i]))
					}
				}
			}
			return true
		})
	}
	return nil
}

// checkGoStmt reports communicator handles entering a goroutine either
// as arguments or as free variables of a function-literal body.
func checkGoStmt(pass *Pass, g *ast.GoStmt, isProcExpr func(ast.Expr) bool, labelOf func(ast.Expr) string) {
	for _, arg := range g.Call.Args {
		if isProcExpr(arg) {
			pass.Reportf(arg.Pos(),
				"%s passed to a goroutine; the communicator is confined to the goroutine Run handed it to", labelOf(arg))
		}
	}
	switch fun := g.Call.Fun.(type) {
	case *ast.SelectorExpr:
		// go p.Method(...): the receiver escapes.
		if isProcExpr(fun.X) {
			pass.Reportf(fun.X.Pos(),
				"%s method launched as a goroutine; the communicator is confined to the goroutine Run handed it to", labelOf(fun.X))
		}
	case *ast.FuncLit:
		// Free communicator variables captured by the closure body.
		reported := make(map[*types.Var]bool)
		ast.Inspect(fun.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			v := lookupVar(pass.TypesInfo, id)
			if v == nil || reported[v] || !isComm(v.Type()) {
				return true
			}
			if v.Pos() < fun.Pos() || v.Pos() > fun.End() {
				reported[v] = true
				pass.Reportf(id.Pos(),
					"%s %s captured by a go-statement closure; the communicator is confined to the goroutine Run handed it to", commLabel(v.Type()), id.Name)
			}
			return true
		})
	}
}

// isPackageLevelTarget reports whether the assignment target's root
// object is a package-level variable.
func isPackageLevelTarget(info *types.Info, e ast.Expr) bool {
	for {
		switch t := e.(type) {
		case *ast.Ident:
			v := lookupVar(info, t)
			if v == nil || v.Pkg() == nil {
				return false
			}
			return v.Parent() == v.Pkg().Scope()
		case *ast.SelectorExpr:
			e = t.X
		case *ast.IndexExpr:
			e = t.X
		case *ast.StarExpr:
			e = t.X
		case *ast.ParenExpr:
			e = t.X
		default:
			return false
		}
	}
}
