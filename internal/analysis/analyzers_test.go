package analysis_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func testdata(t *testing.T, pkg string) string {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("testdata", "src", pkg))
	if err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestSendAlias(t *testing.T) {
	analysistest.Run(t, analysis.SendAlias, testdata(t, "sendalias"))
}

func TestCollective(t *testing.T) {
	analysistest.Run(t, analysis.Collective, testdata(t, "collective"))
}

func TestProcEscape(t *testing.T) {
	analysistest.Run(t, analysis.ProcEscape, testdata(t, "procescape"))
}

func TestBytesArg(t *testing.T) {
	analysistest.Run(t, analysis.BytesArg, testdata(t, "bytesarg"))
}
