package analysis_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func testdata(t *testing.T, pkg string) string {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("testdata", "src", pkg))
	if err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestSendAlias(t *testing.T) {
	analysistest.Run(t, analysis.SendAlias, testdata(t, "sendalias"))
}

func TestCollective(t *testing.T) {
	analysistest.Run(t, analysis.Collective, testdata(t, "collective"))
}

func TestProcEscape(t *testing.T) {
	analysistest.Run(t, analysis.ProcEscape, testdata(t, "procescape"))
}

func TestBytesArg(t *testing.T) {
	analysistest.Run(t, analysis.BytesArg, testdata(t, "bytesarg"))
}

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, analysis.Determinism, testdata(t, "determinism"))
}

func TestFloatFold(t *testing.T) {
	analysistest.Run(t, analysis.FloatFold, testdata(t, "floatfold"))
}

func TestHotAlloc(t *testing.T) {
	analysistest.Run(t, analysis.HotAlloc, testdata(t, "hotalloc"))
}

func TestErrDrop(t *testing.T) {
	analysistest.Run(t, analysis.ErrDrop, testdata(t, "errdrop"))
}

// TestErrDropNetcomm covers the stricter boundary applied inside the
// netcomm transport: stdlib net/io/bufio/gob/exec errors and the
// package's own helpers must be handled, with Close excepted.
func TestErrDropNetcomm(t *testing.T) {
	analysistest.Run(t, analysis.ErrDrop, testdata(t, "netcomm"))
}

// TestErrDropCluster covers the per-file cluster boundary: inside
// membership.go and replication.go, stdlib net/http/io/gob/json errors
// must be handled (Close excepted), while a sibling file in the same
// package dropping the same errors stays clean.
func TestErrDropCluster(t *testing.T) {
	analysistest.Run(t, analysis.ErrDrop, testdata(t, "clusterdrop"))
}

// TestSuppressMultiLineCall is the regression test for suppression
// matching: an annotation above a multi-line call covers diagnostics
// reported at the call's arguments on later lines.
func TestSuppressMultiLineCall(t *testing.T) {
	analysistest.Run(t, analysis.SendAlias, testdata(t, "suppressmulti"))
}

// TestSuiteCleanOverModule is the self-check: the full analyzer suite
// must report nothing over the module's own tree, so a finding anywhere
// is either a real regression or a missing annotation — the same
// contract CI's lint job enforces with the pilutlint driver.
func TestSuiteCleanOverModule(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	dirs, err := analysis.ExpandPatterns([]string{"../../..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) == 0 {
		t.Fatal("pattern expansion found no packages")
	}
	ld, err := analysis.NewLoader("../..")
	if err != nil {
		t.Fatal(err)
	}
	for _, dir := range dirs {
		pkgs, err := ld.Load(dir, false)
		if err != nil {
			t.Fatalf("load %s: %v", dir, err)
		}
		for _, pkg := range pkgs {
			for _, a := range analysis.All() {
				diags, err := a.Apply(pkg)
				if err != nil {
					t.Fatalf("%s: %s: %v", pkg.Path, a.Name, err)
				}
				for _, d := range diags {
					t.Errorf("%s: %s: %s (%s)", pkg.Path, pkg.Fset.Position(d.Pos), d.Message, a.Name)
				}
			}
		}
	}
}
