package analysis

import (
	"go/ast"
	"go/types"
)

// SendAlias flags Send/AllGather payloads that may alias memory the
// sender retains. The simulated machine passes references where a real
// distributed machine serializes onto the wire, so a sender that keeps a
// reference to a sent slice or map and later mutates it silently corrupts
// the receiver — the cardinal sin of a shared-address-space simulation of
// message passing.
//
// The check is a freshness heuristic, not an escape analysis: a payload
// is accepted when it is provably a value built for this send — a
// literal, a composite literal, the result of a function call (copy
// helpers, constructors, append to nil), or a local variable whose every
// definition is such a value. Everything else that can carry references
// (an indexing expression, a struct field, a parameter, a ranged element)
// is reported. Payloads of pure-scalar type are always fine.
var SendAlias = &Analyzer{
	Name: "sendalias",
	Doc:  "flag Send/AllGather payloads aliasing memory the sender retains",
	Run:  runSendAlias,
}

// payloadArg maps collective/point-to-point methods to the index of
// their payload argument.
var payloadArg = map[string]int{
	"Send":      2,
	"AllGather": 0,
}

// pcommPayloadArg maps pcomm package-level functions to the index of
// their payload argument (index 0 is the communicator).
var pcommPayloadArg = map[string]int{
	"SendSlice":       3,
	"AllGatherSlice":  1,
	"AllGatherInts":   1,
	"AllGatherFloats": 1,
}

func runSendAlias(pass *Pass) error {
	if exemptPkg(pass.Pkg.Path()) {
		// The machine and pcomm packages are the messaging layer itself:
		// their wrappers forward caller-owned buffers by design, and the
		// convention is enforced at their call sites.
		return nil
	}
	idx := buildDefIndex(pass)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name, ok := procMethod(pass.TypesInfo, call)
			argIdx, wanted := -1, false
			if ok {
				argIdx, wanted = payloadArg[name]
			} else if name, ok = pcommFunc(pass.TypesInfo, call); ok {
				argIdx, wanted = pcommPayloadArg[name]
			}
			if !wanted || len(call.Args) <= argIdx {
				return true
			}
			payload := call.Args[argIdx]
			tv, ok := pass.TypesInfo.Types[payload]
			if !ok || !containsRefs(tv.Type) {
				return true
			}
			if !fresh(pass.TypesInfo, idx, payload, make(map[*types.Var]bool)) {
				pass.Reportf(payload.Pos(),
					"payload of %s may alias memory the sender retains; send a freshly built buffer or copy it first (pcomm.CopyInts/CopyFloats/CopyBools)", name)
			}
			return true
		})
	}
	return nil
}

// fresh reports whether e provably evaluates to memory built for this
// use. visiting breaks definition cycles (x = append(x, ...)) — a cycle
// is optimistically fresh; any non-fresh definition elsewhere still
// poisons the variable.
func fresh(info *types.Info, idx *defIndex, e ast.Expr, visiting map[*types.Var]bool) bool {
	switch e := e.(type) {
	case *ast.BasicLit:
		return true
	case *ast.CompositeLit:
		return true
	case *ast.ParenExpr:
		return fresh(info, idx, e.X, visiting)
	case *ast.UnaryExpr:
		// &T{...} is a fresh allocation; &x aliases x.
		if _, ok := e.X.(*ast.CompositeLit); ok {
			return true
		}
		return false
	case *ast.CallExpr:
		// A received payload belongs to this processor but was built by
		// the sender; forwarding it verbatim re-shares that memory.
		if m, ok := procMethod(info, e); ok && m == "Recv" {
			return false
		}
		if m, ok := pcommFunc(info, e); ok && m == "RecvSlice" {
			return false
		}
		if tv, ok := info.Types[e.Fun]; ok && tv.IsType() {
			// Conversion: slice-to-slice conversions do not copy.
			if len(e.Args) == 1 {
				return fresh(info, idx, e.Args[0], visiting)
			}
			return false
		}
		if id, ok := e.Fun.(*ast.Ident); ok && info.Uses[id] != nil {
			if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
				switch id.Name {
				case "make", "new":
					return true
				case "append":
					// append can return its first argument's array.
					return len(e.Args) > 0 && fresh(info, idx, e.Args[0], visiting)
				default:
					return false
				}
			}
		}
		// Any other call: constructors and copy helpers return fresh
		// memory by convention.
		return true
	case *ast.Ident:
		if e.Name == "nil" {
			return true
		}
		v := lookupVar(info, e)
		if v == nil {
			return false
		}
		if idx.params[v] {
			return false
		}
		if visiting[v] {
			return true
		}
		defs := idx.defs[v]
		if len(defs) == 0 {
			return false
		}
		visiting[v] = true
		defer delete(visiting, v)
		for _, d := range defs {
			switch d.kind {
			case defZero:
				// zero value: nil slice/map, fresh by construction
			case defExpr:
				if !fresh(info, idx, d.rhs, visiting) {
					return false
				}
			default: // range element, compound assignment
				return false
			}
		}
		return true
	}
	return false
}
