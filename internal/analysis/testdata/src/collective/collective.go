// Package collective exercises the collective analyzer: Barrier and
// AllReduce/AllGather must not sit behind control flow conditioned on
// proc-local state.
package collective

import (
	"repro/internal/machine"
	"repro/internal/pcomm"
)

// Violations: the guard derives from p.ID() or Recv data.
func bad(p *machine.Proc, x int) {
	if p.ID() == 0 {
		p.Barrier() // want `collective Barrier inside a branch whose condition derives from proc-local state`
	}

	id := p.ID()
	if id > 0 {
		p.AllReduceInt(x, pcomm.OpSum) // want `collective AllReduceInt inside a branch whose condition derives from proc-local state`
	}

	switch p.ID() {
	case 0:
		p.Barrier() // want `collective Barrier inside a switch whose condition derives from proc-local state`
	}

	n := p.Recv(0, 0).(int)
	for i := 0; i < n; i++ {
		pcomm.AllGatherInts(p, []int{i}) // want `collective AllGatherInts inside a loop whose condition derives from proc-local state`
	}

	switch x {
	case id:
		p.Barrier() // want `collective Barrier inside a switch case whose condition derives from proc-local state`
	}
}

// badComm repeats the violations through the backend-agnostic interface:
// the guard reads c.ID() or data received via the generic fast path.
func badComm(c pcomm.Comm, x int) {
	if c.ID() == 0 {
		c.Barrier() // want `collective Barrier inside a branch whose condition derives from proc-local state`
	}
	sizes := pcomm.RecvSlice[int](c, 0, 0)
	if len(sizes) > 0 {
		c.AllReduceInt(x, pcomm.OpMax) // want `collective AllReduceInt inside a branch whose condition derives from proc-local state`
	}
}

// Clean: uniform guards — loop counters, AllReduce results, parameters.
func good(p *machine.Proc, iters int, tol float64) {
	for i := 0; i < iters; i++ {
		p.Barrier()
	}
	res := p.AllReduceFloat64(tol, pcomm.OpMax)
	if res > 1.0 {
		p.Barrier()
	}
	if iters > 3 {
		p.AllReduceInt(1, pcomm.OpSum)
	}
	// Proc-local work inside the branch is fine; only collectives rendezvous.
	if p.ID() == 0 {
		p.Send(1, 0, []int{p.ID()}, pcomm.BytesOfInts(1))
	}
}

// goodComm: a reduction result is uniform, so guarding on it is fine.
func goodComm(c pcomm.Comm, tol float64) {
	res := c.AllReduceFloat64(tol, pcomm.OpMax)
	if res > 1.0 {
		c.Barrier()
	}
}

// Suppressed: every processor provably computes the same flag.
func waived(p *machine.Proc, flags []bool) {
	if flags[p.ID()] {
		//pilutlint:ok collective flags is replicated identically on all procs
		p.Barrier()
	}
}
