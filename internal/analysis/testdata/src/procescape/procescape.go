// Package procescape exercises the procescape analyzer: a communicator
// handle (*machine.Proc or pcomm.Comm) is confined to the goroutine Run
// handed it to.
package procescape

import (
	"repro/internal/machine"
	"repro/internal/pcomm"
)

var global *machine.Proc

var globalComm pcomm.Comm

func worker(p *machine.Proc) {
	p.Barrier()
}

func commWorker(c pcomm.Comm) {
	c.Barrier()
}

// Violations: the Proc leaks to another goroutine or outlives the run.
func bad(p *machine.Proc, ch chan *machine.Proc) {
	go worker(p) // want `\*machine.Proc passed to a goroutine`

	go p.Barrier() // want `\*machine.Proc method launched as a goroutine`

	go func() {
		p.Send(1, 0, nil, 0) // want `\*machine.Proc p captured by a go-statement closure`
	}()

	ch <- p // want `\*machine.Proc sent on a channel`

	global = p // want `\*machine.Proc stored in a package-level variable`
}

// badComm: the same escapes through the backend-agnostic interface.
func badComm(c pcomm.Comm, ch chan pcomm.Comm) {
	go commWorker(c) // want `pcomm.Comm passed to a goroutine`

	go c.Barrier() // want `pcomm.Comm method launched as a goroutine`

	go func() {
		c.Send(1, 0, nil, 0) // want `pcomm.Comm c captured by a go-statement closure`
	}()

	ch <- c // want `pcomm.Comm sent on a channel`

	globalComm = c // want `pcomm.Comm stored in a package-level variable`
}

// Clean: scalar results may cross goroutines; local aliases are fine.
func good(p *machine.Proc, c pcomm.Comm, done chan int) {
	go func(id int) {
		done <- id
	}(p.ID())

	go func(id int) {
		done <- id
	}(c.ID())

	q := p // a local alias stays confined
	q.Barrier()

	go func() {
		// A fresh closure variable shadowing the name is not a capture.
		var p int
		_ = p
	}()
}

// Suppressed: a deliberate hand-off, e.g. a helper goroutine joined
// before the processor body returns.
func waived(p *machine.Proc) {
	//pilutlint:ok procescape helper is joined before the proc body returns
	go worker(p)
}
