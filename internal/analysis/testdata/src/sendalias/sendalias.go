// Package sendalias exercises the sendalias analyzer: payloads of
// Send/AllGather must not alias memory the sender retains.
package sendalias

import "repro/internal/machine"

type holder struct {
	data []float64
}

// Violations: the payload provably aliases sender-visible memory.
func bad(p *machine.Proc, xs []int, h holder, rows [][]float64) {
	p.Send(1, 0, xs, machine.BytesOfInts(len(xs)))    // want `payload of Send may alias memory the sender retains`
	p.Send(1, 1, h.data, machine.BytesOfFloats(len(h.data))) // want `payload of Send may alias memory the sender retains`
	for _, row := range rows {
		p.Send(1, 2, row, machine.BytesOfFloats(len(row))) // want `payload of Send may alias memory the sender retains`
	}
	v := p.Recv(0, 3)
	p.Send(2, 3, v, 0) // want `payload of Send may alias memory the sender retains`
	p.AllGather(xs, machine.BytesOfInts(len(xs))) // want `payload of AllGather may alias memory the sender retains`
	p.AllGatherInts(xs)                           // want `payload of AllGatherInts may alias memory the sender retains`

	alias := xs
	p.Send(1, 4, alias, machine.BytesOfInts(len(alias))) // want `payload of Send may alias memory the sender retains`
}

// Clean: freshly built payloads and scalar payloads.
func good(p *machine.Proc, xs []int, n int) {
	p.Send(1, 0, []int{1, 2, 3}, machine.BytesOfInts(3))

	msg := make([]float64, n)
	for i := range msg {
		msg[i] = float64(i)
	}
	p.Send(1, 1, msg, machine.BytesOfFloats(len(msg)))

	var out []int
	out = append(out, xs...)
	p.Send(1, 2, out, machine.BytesOfInts(len(out)))

	p.Send(1, 3, machine.CopyInts(xs), machine.BytesOfInts(len(xs)))
	p.Send(1, 4, n, machine.BytesOfInts(1)) // scalar payload: no references
	p.Send(1, 5, nil, 0)
	p.AllGatherInts(machine.CopyInts(xs))
}

// Suppressed: the sender provably never mutates xs again.
func waived(p *machine.Proc, xs []int) {
	//pilutlint:ok sendalias xs is never mutated after this send
	p.Send(1, 0, xs, machine.BytesOfInts(len(xs)))
}
