// Package sendalias exercises the sendalias analyzer: payloads of
// Send/AllGather must not alias memory the sender retains.
package sendalias

import (
	"repro/internal/machine"
	"repro/internal/pcomm"
)

type holder struct {
	data []float64
}

// Violations: the payload provably aliases sender-visible memory.
func bad(p *machine.Proc, xs []int, h holder, rows [][]float64) {
	p.Send(1, 0, xs, pcomm.BytesOfInts(len(xs)))           // want `payload of Send may alias memory the sender retains`
	p.Send(1, 1, h.data, pcomm.BytesOfFloats(len(h.data))) // want `payload of Send may alias memory the sender retains`
	for _, row := range rows {
		p.Send(1, 2, row, pcomm.BytesOfFloats(len(row))) // want `payload of Send may alias memory the sender retains`
	}
	v := p.Recv(0, 3)
	p.Send(2, 3, v, 0)                          // want `payload of Send may alias memory the sender retains`
	p.AllGather(xs, pcomm.BytesOfInts(len(xs))) // want `payload of AllGather may alias memory the sender retains`
	pcomm.AllGatherInts(p, xs)                  // want `payload of AllGatherInts may alias memory the sender retains`

	alias := xs
	p.Send(1, 4, alias, pcomm.BytesOfInts(len(alias))) // want `payload of Send may alias memory the sender retains`
}

// badComm repeats the violations through the backend-agnostic
// pcomm.Comm interface and the generic slice fast path.
func badComm(c pcomm.Comm, xs []int, ys []float64) {
	c.Send(1, 0, xs, pcomm.BytesOfInts(len(xs))) // want `payload of Send may alias memory the sender retains`
	pcomm.SendSlice(c, 1, 1, ys)                 // want `payload of SendSlice may alias memory the sender retains`
	pcomm.AllGatherFloats(c, ys)                 // want `payload of AllGatherFloats may alias memory the sender retains`

	got := pcomm.RecvSlice[float64](c, 0, 2)
	pcomm.SendSlice(c, 2, 2, got) // want `payload of SendSlice may alias memory the sender retains`
}

// Clean: freshly built payloads and scalar payloads.
func good(p *machine.Proc, xs []int, n int) {
	p.Send(1, 0, []int{1, 2, 3}, pcomm.BytesOfInts(3))

	msg := make([]float64, n)
	for i := range msg {
		msg[i] = float64(i)
	}
	p.Send(1, 1, msg, pcomm.BytesOfFloats(len(msg)))

	var out []int
	out = append(out, xs...)
	p.Send(1, 2, out, pcomm.BytesOfInts(len(out)))

	p.Send(1, 3, pcomm.CopyInts(xs), pcomm.BytesOfInts(len(xs)))
	p.Send(1, 4, n, pcomm.BytesOfInts(1)) // scalar payload: no references
	p.Send(1, 5, nil, 0)
	pcomm.AllGatherInts(p, pcomm.CopyInts(xs))
}

// goodComm: fresh buffers through the interface and the generic path.
func goodComm(c pcomm.Comm, xs []int) {
	pcomm.SendSlice(c, 1, 0, pcomm.CopyInts(xs))
	msg := make([]int, len(xs))
	copy(msg, xs)
	pcomm.SendSlice(c, 1, 1, msg)
	pcomm.AllGatherInts(c, []int{c.ID()})
}

// Suppressed: the sender provably never mutates xs again.
func waived(p *machine.Proc, xs []int) {
	//pilutlint:ok sendalias xs is never mutated after this send
	p.Send(1, 0, xs, pcomm.BytesOfInts(len(xs)))
}
