// Package dethelper provides non-SPMD helpers for the determinism
// golden test: none of these functions takes a communicator, so their
// nondeterminism is only reachable — and only reportable — through the
// facts layer, at call sites in SPMD code of an importing package.
package dethelper

import "time"

// Keys ranges over a map: nondeterministic iteration order.
func Keys(m map[int]float64) []int {
	var ks []int
	for k := range m {
		ks = append(ks, k)
	}
	return ks
}

// now reads the wall clock; Stamp reaches it one call deeper, so the
// chain in the diagnostic has two hops.
func now() time.Time { return time.Now() }

// Stamp returns a wall-clock timestamp.
func Stamp() float64 { return float64(now().UnixNano()) }

// Sum is fact-free: calling it from SPMD code is fine.
func Sum(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}
