// Package determinism exercises the determinism analyzer: SPMD code —
// any function whose signature carries a communicator — must not range
// over maps, read the wall clock, draw from the global math/rand source,
// select, or launch goroutines, directly or through callees (the facts
// layer carries callee summaries across packages).
package determinism

import (
	"math/rand"
	"time"

	"repro/internal/analysis/testdata/src/determinism/dethelper"
	"repro/internal/pcomm"
)

// Direct violations inside an SPMD function.
func bad(c pcomm.Comm, weights map[int]float64) {
	for k := range weights { // want `map iteration in SPMD code`
		_ = k
	}
	_ = time.Now()     // want `wall-clock read in SPMD code`
	_ = rand.Float64() // want `global math/rand source in SPMD code`
	done := make(chan int)
	select { // want `select in SPMD code`
	case <-done:
	}
	go func() {}() // want `goroutine launched in SPMD code`
	_ = c.ID()
}

// sumLocal is not SPMD code itself (no communicator), so its map range
// is reported at SPMD call sites, not here.
func sumLocal(m map[int]float64) float64 {
	s := 0.0
	for _, v := range m {
		s += v
	}
	return s
}

// Transitive violations: reported at the call that reaches them, with
// the chain in the message. dethelper is a different package — the facts
// crossed a package boundary to get here.
func badTransitive(c pcomm.Comm, m map[int]float64) {
	_ = sumLocal(m)       // want `call to determinism.sumLocal reaches nondeterminism from SPMD code: it ranges over a map`
	_ = dethelper.Keys(m) // want `call to dethelper.Keys reaches nondeterminism from SPMD code: it ranges over a map`
	_ = dethelper.Stamp() // want `call to dethelper.Stamp reaches nondeterminism from SPMD code: it calls dethelper.now, which reads the wall clock`
	c.Barrier()
}

// spmdHelper takes a communicator: it is SPMD code in its own right, so
// the violation is reported at its definition and NOT re-reported at its
// call sites.
func spmdHelper(c pcomm.Comm, m map[int]bool) {
	for k := range m { // want `map iteration in SPMD code`
		_ = k
	}
}

func callsSPMDHelper(c pcomm.Comm, m map[int]bool) {
	spmdHelper(c, m) // no diagnostic here: flagged at the definition
}

// Clean SPMD code: sorted-key iteration, the communicator clock, a
// rank-seeded generator, and fact-free helpers.
func good(c pcomm.Comm, keys []int, m map[int]float64) {
	s := 0.0
	for _, k := range keys {
		s += m[k]
	}
	_ = c.Time()
	rng := rand.New(rand.NewSource(int64(c.ID())))
	_ = rng.Float64()
	_ = dethelper.Sum(keys)
}

// Waived: the deliberate exception wears an annotation.
func waived(c pcomm.Comm, m map[int]bool) int {
	n := 0
	//pilutlint:ok determinism order-insensitive count over replicated map
	for range m {
		n++
	}
	return n
}
