// Package hotalloc exercises the hotalloc analyzer: functions marked
// //pilut:hotpath may not allocate, directly or through module-local
// callees; tolerated allocations wear //pilutlint:ok annotations and
// form the ratchet worklist for allocator-pressure work.
package hotalloc

import "repro/internal/analysis/testdata/src/hotalloc/allochelper"

//pilut:hotpath
func hotDirect(dst, src []float64, n int) []float64 {
	tmp := make([]float64, n) // want `make in //pilut:hotpath function hotDirect`
	copy(tmp, src)
	dst = append(dst, tmp...)    // want `append .may grow the backing array. in //pilut:hotpath function hotDirect`
	seen := map[int]bool{}       // want `map literal in //pilut:hotpath function hotDirect`
	pair := &struct{ a, b int }{ // want `&composite literal in //pilut:hotpath function hotDirect`
		a: 1, b: 2,
	}
	cmp := func(x float64) bool { return x > 0 } // want `closure creation in //pilut:hotpath function hotDirect`
	_, _, _ = seen, pair, cmp
	return dst
}

//pilut:hotpath
func hotTransitive(n int) int {
	a := allochelper.Grow(n)  // want `call from //pilut:hotpath function hotTransitive to allochelper.Grow, which allocates`
	b := allochelper.Reach(n) // want `call from //pilut:hotpath function hotTransitive to allochelper.Reach, which calls allochelper.Grow, which allocates`
	c := localGrow(n)         // want `call from //pilut:hotpath function hotTransitive to hotalloc.localGrow, which allocates`
	return a + b + c + allochelper.Flat(n)
}

// localGrow allocates but is not hot: unconstrained at its definition,
// reported at hot call sites.
func localGrow(n int) int {
	return len(make([]byte, n))
}

//pilut:hotpath
func hotCallsHot(dst, src []float64, n int) []float64 {
	// Calls to other hot functions are not re-reported: their allocations
	// are audited (and annotated) at their own definition.
	return hotScratch(dst, src)
}

//pilut:hotpath
func hotScratch(dst, src []float64) []float64 {
	for i := range src {
		if i < len(dst) {
			dst[i] = src[i]
		}
	}
	return dst
}

// cold functions allocate freely.
func cold(n int) []int { return make([]int, n) }

//pilut:hotpath
func hotWaived(n int) []float64 {
	//pilutlint:ok hotalloc result buffer is retained by the caller
	return make([]float64, n)
}
