// Package allochelper provides an allocating helper for the hotalloc
// golden test: it lives in a different package than its hot caller, so
// the finding must travel through the facts layer.
package allochelper

// Grow allocates.
func Grow(n int) int {
	xs := make([]int, n)
	return len(xs)
}

// Reach allocates one call deeper, to exercise the chain rendering.
func Reach(n int) int { return Grow(n) }

// Flat is allocation-free.
func Flat(x int) int { return x * 2 }
