// Package genericpc instantiates generics with pcomm types. The loader
// and fact store must handle instantiated *types.Func objects (facts are
// keyed by Origin), and analyzers must see through the instantiation:
// the generic helper keys ranges over a map, so calling it from SPMD
// code is a determinism finding even though the call site names the
// instantiation, not the generic declaration.
package genericpc

import "repro/internal/pcomm"

// Box wraps any value, here a communicator.
type Box[T any] struct{ v T }

// Get returns the boxed value.
func (b *Box[T]) Get() T { return b.v }

// keys collects map keys in range order — nondeterministic.
func keys[K comparable, V any](m map[K]V) []K {
	out := make([]K, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// Use exercises instantiation with pcomm types from SPMD code.
func Use(c pcomm.Comm, owners map[int]pcomm.Comm) int {
	b := Box[pcomm.Comm]{v: c}
	ks := keys(owners)
	return b.Get().ID() + len(ks)
}
