// Package netcomm exercises the errdrop analyzer's stricter in-transport
// boundary: inside a package whose import path ends in /netcomm, dropped
// errors from the stdlib layers the transport is built on (net, io,
// bufio, encoding/gob, os/exec) and from the package's own helpers fail
// lint — a dropped dial/accept/frame error is a rank that blocks forever
// instead of a *RunError naming the broken link. Close is excepted:
// teardown paths drop Close errors deliberately.
package netcomm

import (
	"bytes"
	"encoding/gob"
	"io"
	"net"
)

// writeFrame is a module-local transport helper; its dropped errors are
// boundary violations like the stdlib's.
func writeFrame(w io.Writer, body []byte) error {
	_, err := w.Write(body)
	return err
}

func badDial(addr string) {
	net.Dial("tcp", addr) // want `error result of net.Dial discarded .call used as a statement.`

	c, _ := net.Dial("tcp", addr) // want `error result of net.Dial assigned to _`
	_ = c
}

func badFrame(w io.Writer, body []byte) {
	w.Write(body) // want `error result of io.Writer.Write discarded .call used as a statement.`

	writeFrame(w, body) // want `error result of netcomm.writeFrame discarded .call used as a statement.`

	var buf bytes.Buffer
	gob.NewEncoder(&buf).Encode(body) // want `error result of gob.Encoder.Encode discarded .call used as a statement.`

	go writeFrame(w, body) // want `error result of netcomm.writeFrame discarded .go statement.`
}

func closeIsDeliberate(c net.Conn, ln net.Listener) {
	// Teardown: the interesting error already happened upstream.
	c.Close()
	defer ln.Close()
}

func good(addr string, body []byte) error {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer c.Close()
	if err := writeFrame(c, body); err != nil {
		return err
	}
	return nil
}

func waived(w io.Writer, body []byte) {
	writeFrame(w, body) //pilutlint:ok errdrop best-effort wakeup; the reader notices the dead conn itself
}
