// Package bytesarg exercises the bytesarg analyzer: modelled byte counts
// at Send/AllGather sites must come from BytesOf* helpers (or be 0 for
// pure control messages) so the LogP cost model stays honest.
package bytesarg

import (
	"repro/internal/machine"
	"repro/internal/pcomm"
)

// BytesOfPairs is a domain-specific sizing helper; any BytesOf* name is
// accepted, package-qualified or not.
func BytesOfPairs(n int) int { return 16 * n }

type pair struct{ a, b float64 }

// Violations: raw literals and hand-rolled arithmetic.
func bad(p *machine.Proc, xs []int) {
	p.Send(1, 0, xs, 8*len(xs)) // want `modelled byte count of Send should come from a BytesOf\* helper`

	p.Send(1, 1, xs, 800) // want `modelled byte count of Send should come from a BytesOf\* helper`

	p.AllGather(xs, len(xs)) // want `modelled byte count of AllGather should come from a BytesOf\* helper`

	b := 8 * len(xs)
	p.Send(1, 2, xs, b) // want `modelled byte count of Send should come from a BytesOf\* helper`
}

// badComm: the same violations through the backend-agnostic interface.
func badComm(c pcomm.Comm, xs []int) {
	c.Send(1, 0, xs, 8*len(xs)) // want `modelled byte count of Send should come from a BytesOf\* helper`

	c.AllGather(len(xs), 8) // want `modelled byte count of AllGather should come from a BytesOf\* helper`
}

// Clean: helpers, zero, sums of helpers, accumulators, forwarded params.
func good(p *machine.Proc, xs []int, flags []bool) {
	p.Send(1, 0, xs, pcomm.BytesOfInts(len(xs)))
	p.Send(1, 1, nil, 0)
	p.Send(1, 2, xs, pcomm.BytesOfInts(len(xs))+pcomm.BytesOfBools(len(flags)))
	p.Send(1, 3, xs, BytesOfPairs(len(xs)))
	p.AllGather(len(xs), pcomm.BytesOfInts(1))

	b := 0
	b += pcomm.BytesOfInts(len(xs))
	b += pcomm.BytesOfBools(len(flags))
	p.Send(1, 4, xs, b)
}

// goodComm: the generic BytesOf helper with an explicit instantiation is
// a BytesOf* call like any other.
func goodComm(c pcomm.Comm, ps []pair) {
	c.Send(1, 0, ps, pcomm.BytesOf[pair](len(ps)))
	c.AllGather(len(ps), pcomm.BytesOf[int](1))
}

// sendWith forwards its byte count: the obligation moves to its callers.
func sendWith(p *machine.Proc, bytes int) {
	p.Send(1, 0, []int{1}, bytes)
}

// Suppressed: a deliberately modelled constant header size.
func waived(p *machine.Proc) {
	p.Send(1, 0, nil, 64) //pilutlint:ok bytesarg fixed 64-byte header, modelled deliberately
}
