// Package bytesarg exercises the bytesarg analyzer: modelled byte counts
// at Send/AllGather sites must come from BytesOf* helpers (or be 0 for
// pure control messages) so the LogP cost model stays honest.
package bytesarg

import "repro/internal/machine"

// BytesOfPairs is a domain-specific sizing helper; any BytesOf* name is
// accepted, package-qualified or not.
func BytesOfPairs(n int) int { return 16 * n }

// Violations: raw literals and hand-rolled arithmetic.
func bad(p *machine.Proc, xs []int) {
	p.Send(1, 0, xs, 8*len(xs)) // want `modelled byte count of Send should come from a BytesOf\* helper`

	p.Send(1, 1, xs, 800) // want `modelled byte count of Send should come from a BytesOf\* helper`

	p.AllGather(xs, len(xs)) // want `modelled byte count of AllGather should come from a BytesOf\* helper`

	b := 8 * len(xs)
	p.Send(1, 2, xs, b) // want `modelled byte count of Send should come from a BytesOf\* helper`
}

// Clean: helpers, zero, sums of helpers, accumulators, forwarded params.
func good(p *machine.Proc, xs []int, flags []bool) {
	p.Send(1, 0, xs, machine.BytesOfInts(len(xs)))
	p.Send(1, 1, nil, 0)
	p.Send(1, 2, xs, machine.BytesOfInts(len(xs))+machine.BytesOfBools(len(flags)))
	p.Send(1, 3, xs, BytesOfPairs(len(xs)))
	p.AllGather(len(xs), machine.BytesOfInts(1))

	b := 0
	b += machine.BytesOfInts(len(xs))
	b += machine.BytesOfBools(len(flags))
	p.Send(1, 4, xs, b)
}

// sendWith forwards its byte count: the obligation moves to its callers.
func sendWith(p *machine.Proc, bytes int) {
	p.Send(1, 0, []int{1}, bytes)
}

// Suppressed: a deliberately modelled constant header size.
func waived(p *machine.Proc) {
	p.Send(1, 0, nil, 64) //pilutlint:ok bytesarg fixed 64-byte header, modelled deliberately
}
