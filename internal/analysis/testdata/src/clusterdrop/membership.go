// Package clusterdrop exercises the errdrop analyzer's per-file cluster
// boundary: inside membership.go and replication.go of the service
// package (or a package named clusterdrop, like this golden one),
// dropped errors from the stdlib layers the gossip view exchange and
// replica pushes are built on (net, net/http, io, bufio, encoding/gob,
// encoding/json) fail lint — a dropped probe or push error is a silently
// lost liveness verdict or a factor stranded without its redundancy.
// Close is excepted: teardown paths drop Close errors deliberately.
package clusterdrop

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"io"
	"net/http"
)

type view struct {
	Epoch uint64
}

func badProbe(c *http.Client, url string) {
	c.Get(url) // want `error result of http.Client.Get discarded .call used as a statement.`

	resp, _ := c.Get(url) // want `error result of http.Client.Get assigned to _`
	if resp != nil {
		defer resp.Body.Close() // Close is excepted on teardown paths.
	}
}

func badPush(w io.Writer, v view) {
	var buf bytes.Buffer
	gob.NewEncoder(&buf).Encode(v) // want `error result of gob.Encoder.Encode discarded .call used as a statement.`

	json.NewEncoder(w).Encode(v) // want `error result of json.Encoder.Encode discarded .call used as a statement.`

	go io.Copy(io.Discard, &buf) // want `error result of io.Copy discarded .go statement.`
}

func goodProbe(c *http.Client, url string) (view, error) {
	resp, err := c.Get(url)
	if err != nil {
		return view{}, err
	}
	defer resp.Body.Close()
	var v view
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		return view{}, err
	}
	return v, nil
}

func waivedPush(w io.Writer, v view) {
	json.NewEncoder(w).Encode(v) //pilutlint:ok errdrop best-effort hint to a draining peer
}
