package clusterdrop

// The strict cluster boundary is per FILE, not per package: this sibling
// drops the same stdlib errors membership.go is flagged for, and stays
// clean because it is neither membership.go nor replication.go — the
// ordinary comm/service boundary applies here and says nothing about
// net/http or encoding errors.

import (
	"encoding/json"
	"io"
	"net/http"
)

func unflaggedProbe(c *http.Client, url string) {
	c.Get(url) // same drop as membership.go's badProbe; not on a strict file

	resp, _ := c.Get(url)
	if resp != nil {
		resp.Body.Close()
	}
}

func unflaggedPush(w io.Writer, v view) {
	json.NewEncoder(w).Encode(v)
	io.WriteString(w, "\n")
}
