package clusterdrop

// replication.go is the second strict file: the boundary keys off the
// basename, and a replica push that drops its transport error is exactly
// the silent redundancy loss the boundary exists to catch.

import (
	"io"
	"net/http"
)

func badReplicaPush(c *http.Client, url string, body io.Reader) {
	c.Post(url, "application/octet-stream", body) // want `error result of http.Client.Post discarded .call used as a statement.`
}

func goodReplicaPush(c *http.Client, url string, body io.Reader) error {
	resp, err := c.Post(url, "application/octet-stream", body)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		return err
	}
	return nil
}
