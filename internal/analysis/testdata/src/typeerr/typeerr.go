// Package typeerr does not type-check. The loader must surface the
// checker's error, not panic, and never hand the package to analyzers.
package typeerr

import "repro/internal/pcomm"

func mismatch(c pcomm.Comm) string {
	return c.ID() + "not a string"
}
