// Package suppressmulti is the regression test for suppression matching
// on multi-line calls: a //pilutlint:ok comment on the line above a call
// must suppress diagnostics reported at the call's *arguments*, which
// land on later lines when the call is wrapped. Exercised with the
// sendalias analyzer, which reports at the payload argument.
package suppressmulti

import "repro/internal/pcomm"

func waivedMultiLine(c pcomm.Comm, xs []int) {
	//pilutlint:ok sendalias xs is built fresh by the caller and never reused
	c.Send(1, 0,
		xs,
		pcomm.BytesOfInts(len(xs)))
}

// Without the annotation the same shape is still flagged, on the
// argument's own line.
func stillFlagged(c pcomm.Comm, xs []int) {
	c.Send(1, 0,
		xs, // want `payload of Send may alias memory the sender retains`
		pcomm.BytesOfInts(len(xs)))
}

// The annotation only covers the one call it precedes: a second
// violating call right after is still flagged.
func onlyFirstCallCovered(c pcomm.Comm, xs, ys []int) {
	//pilutlint:ok sendalias xs is replicated input
	c.Send(1, 0,
		xs,
		pcomm.BytesOfInts(len(xs)))
	c.Send(1, 1,
		ys, // want `payload of Send may alias memory the sender retains`
		pcomm.BytesOfInts(len(ys)))
}
