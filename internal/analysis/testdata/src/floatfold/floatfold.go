// Package floatfold exercises the floatfold analyzer: floating-point
// accumulation must fold in a deterministic rank order — never in
// map-range order, never descending over AllGather contributions.
package floatfold

import "repro/internal/pcomm"

func badMap(m map[int]float64) float64 {
	s := 0.0
	for _, v := range m {
		s += v // want `floating-point accumulation in map-range order`
	}
	return s
}

func badMapAssignForm(m map[int]float64) float64 {
	var s float64
	for _, v := range m {
		s = s + v // want `floating-point accumulation in map-range order`
	}
	return s
}

func badDescGather(c pcomm.Comm, x float64) float64 {
	parts := pcomm.AllGatherFloats(c, []float64{x})
	s := 0.0
	for i := len(parts) - 1; i >= 0; i-- {
		s += parts[i][0] // want `manual fold over AllGather contributions in descending order`
	}
	return s
}

// Integer accumulation is associative: map-range order is harmless.
func goodIntMap(m map[int]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// Ascending folds over gathered contributions are rank order: fine.
func goodAscendGather(c pcomm.Comm, x float64) float64 {
	parts := pcomm.AllGatherFloats(c, []float64{x})
	s := 0.0
	for i := 0; i < len(parts); i++ {
		s += parts[i][0]
	}
	for _, p := range parts {
		s += p[0]
	}
	return s
}

// Folding map values through a sorted key slice is the fix for badMap.
func goodSortedKeys(m map[int]float64, keys []int) float64 {
	s := 0.0
	for _, k := range keys {
		s += m[k]
	}
	return s
}

// Waived: this particular fold is exact (no rounding), but the analyzer
// cannot know that; the annotation records the reasoning.
func waived(m map[int]float64) float64 {
	s := 0.0
	for _, v := range m {
		s += v //pilutlint:ok floatfold values are exact powers of two, the fold never rounds
	}
	return s
}
