// Package errdrop exercises the errdrop analyzer: errors returned
// across the comm/service boundary (pcomm.Guard above all) carry the
// failure diagnosis and must not be dropped.
package errdrop

import (
	"repro/internal/pcomm"
)

func bad(w pcomm.World, f func(pcomm.Comm)) {
	pcomm.Guard(w, f) // want `error result of pcomm.Guard discarded .call used as a statement.`

	_, _ = pcomm.Guard(w, f) // want `error result of pcomm.Guard assigned to _`

	res, _ := pcomm.Guard(w, f) // want `error result of pcomm.Guard assigned to _`
	_ = res

	defer pcomm.Guard(w, f) // want `error result of pcomm.Guard discarded .deferred call.`
}

func good(w pcomm.World, f func(pcomm.Comm)) error {
	res, err := pcomm.Guard(w, f)
	if err != nil {
		return err
	}
	_ = res.Elapsed
	return nil
}

func waived(w pcomm.World, f func(pcomm.Comm)) {
	_, _ = pcomm.Guard(w, f) //pilutlint:ok errdrop best-effort warmup, failure is retried cold
}
