package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Collective flags calls to Barrier/AllReduce*/AllGather* that sit inside
// a branch or loop whose condition derives from proc-local state (p.ID,
// data returned by p.Recv, p.Time, p.Stats). Collectives are rendezvous
// points: every virtual processor must reach them in the same order, so a
// collective guarded by processor-dependent control flow is the static
// form of the machine's runtime "collective mismatch" panic — and a
// deadlock on a real MPI machine, where nothing checks.
//
// The analysis is a lexical taint check: it sees direct method calls on
// *machine.Proc, not collectives buried in callees, and only flags
// conditions that provably mention proc-local data. Uniform conditions
// (loop counters, AllReduce results, configuration) pass.
var Collective = &Analyzer{
	Name: "collective",
	Doc:  "flag collectives guarded by proc-local control flow",
	Run:  runCollective,
}

func isCollectiveName(name string) bool {
	return name == "Barrier" ||
		strings.HasPrefix(name, "AllReduce") ||
		strings.HasPrefix(name, "AllGather")
}

func runCollective(pass *Pass) error {
	pm := buildParents(pass.Files)
	info := pass.TypesInfo

	// taintedVars is computed per top-level function the first time a
	// collective is found inside it.
	taintCache := make(map[*ast.FuncDecl]map[*types.Var]bool)

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name, ok := procMethod(info, call)
			if !ok {
				name, ok = pcommFunc(info, call)
			}
			if !ok || !isCollectiveName(name) {
				return true
			}
			fd := topLevelFunc(pm, call)
			if fd == nil {
				return true
			}
			tainted, ok := taintCache[fd]
			if !ok {
				tainted = taintedVars(info, fd)
				taintCache[fd] = tainted
			}
			if cond, kind := localGuard(info, pm, call, fd, tainted); cond != nil {
				pass.Reportf(call.Pos(),
					"collective %s inside a %s whose condition derives from proc-local state; every processor must reach collectives in the same order", name, kind)
			}
			return true
		})
	}
	return nil
}

// localGuard climbs from the collective call to its top-level function
// looking for an enclosing branch or loop whose condition is tainted by
// proc-local state. It returns the offending condition and a description
// of the construct.
func localGuard(info *types.Info, pm parentMap, call ast.Node, fd *ast.FuncDecl, tainted map[*types.Var]bool) (ast.Expr, string) {
	prev := ast.Node(call)
	for n := pm[call]; n != nil && n != fd; prev, n = n, pm[n] {
		switch n := n.(type) {
		case *ast.IfStmt:
			if (prev == n.Body || prev == n.Else) && exprTainted(info, n.Cond, tainted) {
				return n.Cond, "branch"
			}
		case *ast.SwitchStmt:
			if prev == n.Body && n.Tag != nil && exprTainted(info, n.Tag, tainted) {
				return n.Tag, "switch"
			}
		case *ast.ForStmt:
			if prev == n.Body && n.Cond != nil && exprTainted(info, n.Cond, tainted) {
				return n.Cond, "loop"
			}
		case *ast.RangeStmt:
			if prev == n.Body && exprTainted(info, n.X, tainted) {
				return n.X, "range loop"
			}
		case *ast.CaseClause:
			// Tagged switch: the clause values are compared against the
			// tag; if the values are tainted, taking this clause is
			// proc-dependent even when the tag is uniform.
			for _, e := range n.List {
				if exprTainted(info, e, tainted) {
					return e, "switch case"
				}
			}
		}
	}
	return nil, ""
}

// isTaintSource reports whether e directly reads proc-local state.
func isTaintSource(info *types.Info, e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.SelectorExpr:
		// A bound p.ID method value mentioned in a condition (the call
		// itself is the CallExpr case).
		if e.Sel.Name != "ID" {
			return false
		}
		tv, ok := info.Types[e.X]
		return ok && isComm(tv.Type)
	case *ast.CallExpr:
		if name, ok := procMethod(info, e); ok {
			return name == "ID" || name == "Recv" || name == "Time" || name == "Stats"
		}
		if name, ok := pcommFunc(info, e); ok {
			return name == "RecvSlice"
		}
		return false
	}
	return false
}

// exprTainted reports whether e mentions a taint source or a tainted
// variable.
func exprTainted(info *types.Info, e ast.Expr, tainted map[*types.Var]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if ex, ok := n.(ast.Expr); ok && isTaintSource(info, ex) {
			found = true
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if v := lookupVar(info, id); v != nil && tainted[v] {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// taintedVars computes, to a fixpoint, the variables of fd (including its
// closures) assigned from proc-local state.
func taintedVars(info *types.Info, fd *ast.FuncDecl) map[*types.Var]bool {
	tainted := make(map[*types.Var]bool)
	varOf := func(e ast.Expr) *types.Var {
		if id, ok := e.(*ast.Ident); ok {
			return lookupVar(info, id)
		}
		return nil
	}
	for changed := true; changed; {
		changed = false
		mark := func(lhs ast.Expr) {
			if v := varOf(lhs); v != nil && !tainted[v] {
				tainted[v] = true
				changed = true
			}
		}
		ast.Inspect(fd, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) == len(n.Rhs) {
					for i, lhs := range n.Lhs {
						if exprTainted(info, n.Rhs[i], tainted) {
							mark(lhs)
						}
					}
				} else {
					for _, lhs := range n.Lhs {
						if exprTainted(info, n.Rhs[0], tainted) {
							mark(lhs)
						}
					}
				}
			case *ast.ValueSpec:
				for i, name := range n.Names {
					if len(n.Values) == len(n.Names) && exprTainted(info, n.Values[i], tainted) {
						mark(name)
					} else if len(n.Values) == 1 && len(n.Names) > 1 && exprTainted(info, n.Values[0], tainted) {
						mark(name)
					}
				}
			case *ast.RangeStmt:
				if exprTainted(info, n.X, tainted) {
					if n.Key != nil {
						mark(n.Key)
					}
					if n.Value != nil {
						mark(n.Value)
					}
				}
			}
			return true
		})
	}
	return tainted
}
