package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatFold flags floating-point accumulation whose fold order is not
// deterministic rank order: an accumulation statement inside a loop that
// ranges over a map (iteration order varies run to run), and manual
// folds over AllGather results that walk the gathered contributions in
// descending index order. Floating-point addition is not associative, so
// either pattern silently produces a different last bit on the next run
// — the exact failure mode the backends' rank-order collective contract
// (DESIGN.md §10) exists to prevent. AllReduce and an ascending walk
// over AllGather results both fold in rank order and pass.
var FloatFold = &Analyzer{
	Name: "floatfold",
	Doc:  "flag float accumulation in map-range or non-rank order",
	Run:  runFloatFold,
}

// isFloat reports whether t is a floating-point or complex type.
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}

// accTarget returns the accumulated-into expression if stmt is a
// floating-point accumulation: x += e, x -= e, or x = x ± e / x = e + x.
func accTarget(info *types.Info, stmt *ast.AssignStmt) ast.Expr {
	if len(stmt.Lhs) != 1 || len(stmt.Rhs) != 1 {
		return nil
	}
	lhs := stmt.Lhs[0]
	tv, ok := info.Types[lhs]
	if !ok || !isFloat(tv.Type) {
		return nil
	}
	switch stmt.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN:
		return lhs
	case token.ASSIGN:
		bin, ok := unparen(stmt.Rhs[0]).(*ast.BinaryExpr)
		if !ok || (bin.Op != token.ADD && bin.Op != token.SUB) {
			return nil
		}
		lv := lookupIdentVar(info, lhs)
		if lv == nil {
			return nil
		}
		if lookupIdentVar(info, bin.X) == lv || (bin.Op == token.ADD && lookupIdentVar(info, bin.Y) == lv) {
			return lhs
		}
	}
	return nil
}

// lookupIdentVar resolves e to a variable when e is a plain identifier.
func lookupIdentVar(info *types.Info, e ast.Expr) *types.Var {
	id, ok := unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	return lookupVar(info, id)
}

// gatherDefined reports whether v's value provably comes from an
// AllGather (the per-rank contribution slice).
func gatherDefined(info *types.Info, idx *defIndex, v *types.Var) bool {
	for _, d := range idx.defs[v] {
		if d.rhs == nil {
			continue
		}
		call, ok := unparen(d.rhs).(*ast.CallExpr)
		if !ok {
			continue
		}
		if m, ok := procMethod(info, call); ok && m == "AllGather" {
			return true
		}
		if m, ok := pcommFunc(info, call); ok {
			switch m {
			case "AllGather", "AllGatherSlice", "AllGatherInts", "AllGatherFloats":
				return true
			}
		}
	}
	return false
}

func runFloatFold(pass *Pass) error {
	if factOpaque(pass.Pkg.Path()) {
		return nil
	}
	info := pass.TypesInfo
	pm := buildParents(pass.Files)
	idx := buildDefIndex(pass)

	// descLoopVar returns the loop variable of a descending for loop
	// (post statement i-- or i -= ...), or nil.
	descLoopVar := func(fs *ast.ForStmt) *types.Var {
		switch post := fs.Post.(type) {
		case *ast.IncDecStmt:
			if post.Tok == token.DEC {
				return lookupIdentVar(info, post.X)
			}
		case *ast.AssignStmt:
			if post.Tok == token.SUB_ASSIGN && len(post.Lhs) == 1 {
				return lookupIdentVar(info, post.Lhs[0])
			}
		}
		return nil
	}

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			stmt, ok := n.(*ast.AssignStmt)
			if !ok || accTarget(info, stmt) == nil {
				return true
			}
			// Climb to the enclosing loops of the accumulation.
			for p := pm[ast.Node(stmt)]; p != nil; p = pm[p] {
				switch loop := p.(type) {
				case *ast.RangeStmt:
					if tv, ok := info.Types[loop.X]; ok {
						if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
							pass.Reportf(stmt.Pos(),
								"floating-point accumulation in map-range order: iteration order varies across runs, so the sum's last bits do too; fold over sorted keys instead")
							return true
						}
					}
				case *ast.ForStmt:
					dv := descLoopVar(loop)
					if dv == nil {
						continue
					}
					// Does the accumulation index AllGather-derived data by
					// the descending loop variable?
					bad := false
					ast.Inspect(stmt.Rhs[0], func(m ast.Node) bool {
						ix, ok := m.(*ast.IndexExpr)
						if !ok || bad {
							return !bad
						}
						base := lookupIdentVar(info, ix.X)
						if base == nil || !gatherDefined(info, idx, base) {
							return true
						}
						usesLoopVar := false
						ast.Inspect(ix.Index, func(k ast.Node) bool {
							if id, ok := k.(*ast.Ident); ok && lookupVar(info, id) == dv {
								usesLoopVar = true
							}
							return !usesLoopVar
						})
						if usesLoopVar {
							bad = true
						}
						return !bad
					})
					if bad {
						pass.Reportf(stmt.Pos(),
							"manual fold over AllGather contributions in descending order bypasses the rank-order reduction contract; fold ranks 0..P-1 ascending (or use AllReduce)")
						return true
					}
				}
			}
			return true
		})
	}
	return nil
}
