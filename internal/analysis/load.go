package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked package ready for analysis.
type Package struct {
	Dir   string
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// Facts is the loader-wide interprocedural fact store; it already
	// holds summaries for this package and everything it (transitively)
	// imports within the module.
	Facts *FactStore
}

// Loader parses and type-checks packages without golang.org/x/tools: it
// resolves module-local import paths against the module root read from
// go.mod and everything else against GOROOT/src, type-checking imports
// from source recursively. The cache is shared so checking a whole tree
// pays for the standard library once.
type Loader struct {
	Fset    *token.FileSet
	ModPath string
	ModRoot string
	// Facts accumulates per-function summaries for every module-local
	// package the loader checks, imported ones included, in dependency
	// order (a package is summarized before any of its importers).
	Facts *FactStore

	cache map[string]*types.Package
}

// NewLoader builds a loader for the module containing dir (any directory
// at or below the module root).
func NewLoader(dir string) (*Loader, error) {
	root, path, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	return &Loader{
		Fset:    token.NewFileSet(),
		ModPath: path,
		ModRoot: root,
		Facts:   NewFactStore(),
		cache:   make(map[string]*types.Package),
	}, nil
}

// buildCtx is build.Default with cgo disabled: type-checking from source
// cannot expand cgo, so packages like net must resolve to their pure-Go
// build variant (the files a `CGO_ENABLED=0` build would select).
func buildCtx() *build.Context {
	ctx := build.Default
	ctx.CgoEnabled = false
	return &ctx
}

// findModule walks up from dir to the first go.mod and returns the module
// root directory and module path.
func findModule(dir string) (root, path string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module line", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("analysis: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// Import implements types.Importer by type-checking the imported package
// from source (GOROOT or module-local).
func (ld *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := ld.cache[path]; ok {
		return p, nil
	}
	dir, err := ld.dirOf(path)
	if err != nil {
		return nil, err
	}
	bp, err := buildCtx().ImportDir(dir, 0)
	if err != nil {
		return nil, err
	}
	moduleLocal := path == ld.ModPath || strings.HasPrefix(path, ld.ModPath+"/")
	// Module-local imports are parsed with comments and full type
	// information so their functions can be summarized into the fact
	// store (hotpath markers live in doc comments); the standard library
	// needs neither.
	var mode parser.Mode
	var info *types.Info
	if moduleLocal {
		mode = parser.ParseComments
		info = newInfo()
	}
	files, err := ld.parse(dir, bp.GoFiles, mode)
	if err != nil {
		return nil, err
	}
	conf := types.Config{Importer: ld, FakeImportC: true}
	pkg, err := conf.Check(path, ld.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking import %q: %w", path, err)
	}
	if moduleLocal {
		ld.Facts.Summarize(path, files, info)
	}
	ld.cache[path] = pkg
	return pkg, nil
}

func (ld *Loader) dirOf(path string) (string, error) {
	if path == ld.ModPath {
		return ld.ModRoot, nil
	}
	if rest, ok := strings.CutPrefix(path, ld.ModPath+"/"); ok {
		return filepath.Join(ld.ModRoot, filepath.FromSlash(rest)), nil
	}
	dir := filepath.Join(build.Default.GOROOT, "src", filepath.FromSlash(path))
	if _, err := os.Stat(dir); err == nil {
		return dir, nil
	}
	// Standard-library packages import their external dependencies (e.g.
	// net → golang.org/x/net/dns/dnsmessage) through GOROOT's vendor tree.
	vdir := filepath.Join(build.Default.GOROOT, "src", "vendor", filepath.FromSlash(path))
	if _, err := os.Stat(vdir); err == nil {
		return vdir, nil
	}
	return "", fmt.Errorf("analysis: cannot resolve import %q under %s/src", path, build.Default.GOROOT)
}

func (ld *Loader) parse(dir string, names []string, mode parser.Mode) ([]*ast.File, error) {
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(ld.Fset, filepath.Join(dir, name), nil, mode)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// newInfo allocates the types.Info maps the analyzers need.
func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// Load type-checks the package in dir for analysis. With tests set, the
// package's internal _test.go files are included, and a second Package is
// returned for the external (_test-suffixed) test package if one exists.
// The Packages carry full syntax (with comments) and type information.
func (ld *Loader) Load(dir string, tests bool) ([]*Package, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	bp, err := buildCtx().ImportDir(dir, 0)
	if err != nil {
		return nil, err
	}
	path := ld.pathOf(dir, bp.Name)

	names := append([]string(nil), bp.GoFiles...)
	if tests {
		names = append(names, bp.TestGoFiles...)
	}
	files, err := ld.parse(dir, names, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	info := newInfo()
	conf := types.Config{Importer: ld, FakeImportC: true}
	tpkg, err := conf.Check(path, ld.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	ld.Facts.Summarize(path, files, info)
	if _, ok := ld.cache[path]; !ok && !tests {
		// Only a test-free check is safe to reuse as an import: test files
		// must not leak into importers of this package. And only the first
		// instance may enter the cache — overwriting would hand later
		// importers a types.Package distinct from the one already woven
		// into earlier importers, and identical-looking types would stop
		// being identical.
		ld.cache[path] = tpkg
	}
	pkgs := []*Package{{Dir: dir, Path: path, Fset: ld.Fset, Files: files, Types: tpkg, Info: info, Facts: ld.Facts}}

	if tests && len(bp.XTestGoFiles) > 0 {
		xfiles, err := ld.parse(dir, bp.XTestGoFiles, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		xinfo := newInfo()
		xpkg, err := conf.Check(path+"_test", ld.Fset, xfiles, xinfo)
		if err != nil {
			return nil, fmt.Errorf("analysis: type-checking %s_test: %w", path, err)
		}
		ld.Facts.Summarize(path+"_test", xfiles, xinfo)
		pkgs = append(pkgs, &Package{Dir: dir, Path: path + "_test", Fset: ld.Fset, Files: xfiles, Types: xpkg, Info: xinfo, Facts: ld.Facts})
	}
	return pkgs, nil
}

// ExpandPatterns resolves package patterns to directories containing Go
// files. Only the "dir" and "dir/..." forms are supported — enough for a
// module with no external dependencies. Matching the go tool, testdata,
// vendor and dot/underscore directories are not part of "...".
func ExpandPatterns(args []string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(dir string) {
		if !seen[dir] && hasGoFiles(dir) {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, arg := range args {
		if root, ok := strings.CutSuffix(arg, "..."); ok {
			root = filepath.Clean(strings.TrimSuffix(root, "/"))
			if root == "" {
				root = "."
			}
			err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if path != root && (name == "testdata" || name == "vendor" ||
					strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
					return filepath.SkipDir
				}
				add(path)
				return nil
			})
			if err != nil {
				return nil, err
			}
			continue
		}
		info, err := os.Stat(arg)
		if err != nil || !info.IsDir() {
			return nil, fmt.Errorf("argument %q is not a directory (only dir and dir/... patterns are supported)", arg)
		}
		add(filepath.Clean(arg))
	}
	sort.Strings(dirs)
	return dirs, nil
}

// hasGoFiles reports whether dir holds at least one non-test Go file, so
// test-only directories (like the repo root) are skipped rather than
// failing to load.
func hasGoFiles(dir string) bool {
	bp, err := build.Default.ImportDir(dir, 0)
	if err != nil {
		return false
	}
	return len(bp.GoFiles) > 0
}

// pathOf maps a directory to an import path: module-relative when inside
// the module, synthetic otherwise (testdata packages).
func (ld *Loader) pathOf(dir, pkgName string) string {
	if rel, err := filepath.Rel(ld.ModRoot, dir); err == nil && !strings.HasPrefix(rel, "..") {
		if rel == "." {
			return ld.ModPath
		}
		return ld.ModPath + "/" + filepath.ToSlash(rel)
	}
	return pkgName
}
