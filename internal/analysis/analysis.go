// Package analysis is a static-analysis suite for the machine layer's
// SPMD invariants: every virtual processor must reach collectives in the
// same order, all inter-processor data flow must go through Send/Recv
// with by-value (freshly copied) payloads, *machine.Proc handles are
// goroutine-confined, and modelled byte counts must come from BytesOf*
// helpers so the LogP cost model stays honest.
//
// The framework mirrors the golang.org/x/tools/go/analysis API shape
// (Analyzer, Pass, Diagnostic) but is built on the standard library only
// — go/parser + go/types with a GOROOT/module source importer — because
// this module carries no external dependencies. Run the analyzers with
//
//	go run ./cmd/pilutlint ./...
//
// A finding can be suppressed with an inline comment on the same line or
// the line above:
//
//	//pilutlint:ok <analyzer> <reason>
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// MachinePath is the import path of the simulated-machine package whose
// invariants the analyzers enforce.
const MachinePath = "repro/internal/machine"

// PcommPath is the import path of the communicator-interface package.
// Algorithm code talks to pcomm.Comm rather than *machine.Proc, so the
// analyzers treat both as the machine layer.
const PcommPath = "repro/internal/pcomm"

// FaultPath is the fault-injection layer: a pass-through Comm wrapper
// that forwards caller-owned payloads by design, like the backends.
const FaultPath = "repro/internal/fault"

// exemptPkg reports whether path is part of the messaging layer itself
// (the machine, the pcomm interface, or a backend), where the invariants
// are established rather than consumed.
func exemptPkg(path string) bool {
	return path == MachinePath || path == PcommPath || path == FaultPath ||
		strings.HasPrefix(path, PcommPath+"/")
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Pass carries one type-checked package through an analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Facts holds interprocedural summaries for this package and every
	// module-local package it imports (nil when the loader predates the
	// facts layer, e.g. hand-built passes in tests).
	Facts *FactStore

	diags []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Analyzer is one invariant checker.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// All returns the full suite in a stable order.
func All() []*Analyzer {
	return []*Analyzer{
		SendAlias, Collective, ProcEscape, BytesArg,
		Determinism, FloatFold, HotAlloc, ErrDrop,
	}
}

// Apply runs the analyzer over a loaded package and returns the findings
// with //pilutlint:ok suppressions already filtered out, sorted by
// position.
func (a *Analyzer) Apply(pkg *Package) ([]Diagnostic, error) {
	pass := &Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		Facts:     pkg.Facts,
	}
	if err := a.Run(pass); err != nil {
		return nil, err
	}
	diags := suppress(a.Name, pkg, pass.diags)
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags, nil
}

// suppress drops diagnostics covered by a "//pilutlint:ok <name>"
// comment: one on the diagnostic's own line or the line above, or one
// covering a call expression the diagnostic sits inside — a comment above
// a multi-line call suppresses diagnostics reported at the call's
// arguments on later lines, not just at its first line.
func suppress(name string, pkg *Package, diags []Diagnostic) []Diagnostic {
	if len(diags) == 0 {
		return diags
	}
	marker := "pilutlint:ok " + name
	// Lines (per file) carrying a suppression for this analyzer.
	ok := make(map[string]map[int]bool)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.Contains(c.Text, marker) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				if ok[pos.Filename] == nil {
					ok[pos.Filename] = make(map[int]bool)
				}
				ok[pos.Filename][pos.Line] = true
				ok[pos.Filename][pos.Line+1] = true
			}
		}
	}
	okLine := func(pos token.Pos) bool {
		p := pkg.Fset.Position(pos)
		return ok[p.Filename][p.Line]
	}
	suppressed := make([]bool, len(diags))
	for i, d := range diags {
		suppressed[i] = okLine(d.Pos)
	}
	// A diagnostic anywhere inside a call expression is suppressed when
	// the suppression covers the call's first line: analyzers report at
	// argument positions (sendalias at the payload, bytesarg at the byte
	// count), which land on later lines when the call is wrapped.
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, isCall := n.(*ast.CallExpr)
			if !isCall || !okLine(call.Pos()) {
				return true
			}
			for i, d := range diags {
				if !suppressed[i] && call.Pos() <= d.Pos && d.Pos < call.End() {
					suppressed[i] = true
				}
			}
			return true
		})
	}
	var out []Diagnostic
	for i, d := range diags {
		if !suppressed[i] {
			out = append(out, d)
		}
	}
	return out
}

// ---- shared type helpers -------------------------------------------------

// isProcPtr reports whether t is *machine.Proc.
func isProcPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	return isNamed(ptr.Elem(), MachinePath, "Proc")
}

func isNamed(t types.Type, path, name string) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == path
}

// isComm reports whether t is a communicator handle: *machine.Proc, the
// pcomm.Comm interface, or a backend's concrete processor type
// (*realcomm.Proc). Anything whose type satisfies pcomm.Comm counts, so
// user-defined interfaces embedding Comm are covered too.
func isComm(t types.Type) bool {
	if isProcPtr(t) || isNamed(t, MachinePath, "Proc") {
		return true
	}
	if isNamed(t, PcommPath, "Comm") {
		return true
	}
	if ptr, ok := t.(*types.Pointer); ok {
		if isNamed(ptr.Elem(), PcommPath+"/realcomm", "Proc") {
			return true
		}
	}
	if iface, ok := t.Underlying().(*types.Interface); ok {
		// An interface that includes the Comm method set (ID, P, Send,
		// Recv, Barrier) is a communicator view.
		need := map[string]bool{"ID": false, "P": false, "Send": false, "Recv": false, "Barrier": false}
		for i := 0; i < iface.NumMethods(); i++ {
			if _, ok := need[iface.Method(i).Name()]; ok {
				need[iface.Method(i).Name()] = true
			}
		}
		all := true
		for _, got := range need {
			all = all && got
		}
		return all
	}
	return false
}

// commLabel names t's communicator flavor for diagnostics.
func commLabel(t types.Type) string {
	if isProcPtr(t) || isNamed(t, MachinePath, "Proc") {
		return "*machine.Proc"
	}
	return "pcomm.Comm"
}

// procMethod returns the method name if call is a method call on a
// communicator receiver (p.Send, p.Barrier, ... on *machine.Proc or
// pcomm.Comm).
func procMethod(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	tv, ok := info.Types[sel.X]
	if !ok {
		return "", false
	}
	if isComm(tv.Type) {
		return sel.Sel.Name, true
	}
	return "", false
}

// pcommFunc returns the function name if call invokes a package-level
// function of the pcomm package (pcomm.AllGatherInts, pcomm.SendSlice,
// ...), unwrapping explicit generic instantiation.
func pcommFunc(info *types.Info, call *ast.CallExpr) (string, bool) {
	fun := call.Fun
	switch f := fun.(type) {
	case *ast.IndexExpr:
		fun = f.X
	case *ast.IndexListExpr:
		fun = f.X
	}
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	obj := info.Uses[sel.Sel]
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != PcommPath {
		return "", false
	}
	return fn.Name(), true
}

// containsRefs reports whether values of t can alias other memory: a
// slice, map, pointer, channel or interface anywhere inside it. Scalars
// and pure-scalar structs are always safe to send.
func containsRefs(t types.Type) bool {
	return containsRefs1(t, make(map[types.Type]bool))
}

func containsRefs1(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	seen[t] = true
	switch u := t.Underlying().(type) {
	case *types.Slice, *types.Map, *types.Pointer, *types.Chan, *types.Interface, *types.Signature:
		return true
	case *types.Basic:
		return false // scalars; strings are immutable, hence safe too
	case *types.Array:
		return containsRefs1(u.Elem(), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsRefs1(u.Field(i).Type(), seen) {
				return true
			}
		}
	}
	return false
}

// parentMap records the enclosing node of every AST node in a file.
type parentMap map[ast.Node]ast.Node

func buildParents(files []*ast.File) parentMap {
	pm := make(parentMap)
	for _, f := range files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return false
			}
			if len(stack) > 0 {
				pm[n] = stack[len(stack)-1]
			}
			stack = append(stack, n)
			return true
		})
	}
	return pm
}

// enclosingFunc returns the innermost FuncDecl or FuncLit containing n.
func enclosingFunc(pm parentMap, n ast.Node) ast.Node {
	for p := pm[n]; p != nil; p = pm[p] {
		switch p.(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return p
		}
	}
	return nil
}

// topLevelFunc returns the outermost FuncDecl containing n (climbing out
// of nested FuncLits), or nil at package scope.
func topLevelFunc(pm parentMap, n ast.Node) *ast.FuncDecl {
	var top *ast.FuncDecl
	for p := pm[n]; p != nil; p = pm[p] {
		if fd, ok := p.(*ast.FuncDecl); ok {
			top = fd
		}
	}
	return top
}
