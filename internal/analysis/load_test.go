package analysis_test

import (
	"strings"
	"testing"

	"repro/internal/analysis"
)

func newLoader(t *testing.T) *analysis.Loader {
	t.Helper()
	ld, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	return ld
}

// TestLoadTypeError: a package that fails type-checking yields an error
// naming the package, never a panic or a half-checked result.
func TestLoadTypeError(t *testing.T) {
	ld := newLoader(t)
	pkgs, err := ld.Load(testdata(t, "typeerr"), false)
	if err == nil {
		t.Fatalf("Load(typeerr) = %d pkgs, want type-check error", len(pkgs))
	}
	if !strings.Contains(err.Error(), "type-checking") {
		t.Errorf("error should identify the type-check phase: %v", err)
	}
}

// TestLoadEmptyDir: a directory with no Go files is a graceful load
// error, not a crash.
func TestLoadEmptyDir(t *testing.T) {
	ld := newLoader(t)
	if _, err := ld.Load(testdata(t, "emptypkg"), false); err == nil {
		t.Fatal("Load(emptypkg) succeeded, want no-Go-files error")
	}
}

// TestLoadGenericsWithPcommTypes: generics instantiated with pcomm types
// load cleanly, and the fact store resolves instantiated functions back
// to their generic origin — the map-ranging generic helper is reported
// at its SPMD call site.
func TestLoadGenericsWithPcommTypes(t *testing.T) {
	ld := newLoader(t)
	pkgs, err := ld.Load(testdata(t, "genericpc"), false)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	diags, err := analysis.Determinism.Apply(pkgs[0])
	if err != nil {
		t.Fatal(err)
	}
	var hit bool
	for _, d := range diags {
		if strings.Contains(d.Message, "keys") && strings.Contains(d.Message, "ranges over a map") {
			hit = true
		}
	}
	if !hit {
		t.Errorf("expected a determinism finding for the generic map-ranging helper, got %d diagnostics: %+v", len(diags), diags)
	}
}

// TestExpandPatterns: the "..." form walks the tree but skips testdata,
// and a non-directory argument is an error.
func TestExpandPatterns(t *testing.T) {
	dirs, err := analysis.ExpandPatterns([]string{"."})
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) != 1 || dirs[0] != "." {
		t.Errorf("ExpandPatterns(.) = %v, want [.]", dirs)
	}
	dirs, err = analysis.ExpandPatterns([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range dirs {
		if strings.Contains(d, "testdata") {
			t.Errorf("pattern walk entered testdata: %s", d)
		}
	}
	if _, err := analysis.ExpandPatterns([]string{"no/such/dir"}); err == nil {
		t.Error("ExpandPatterns(no/such/dir) succeeded, want error")
	}
}
