package analysis

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"strings"
)

// ErrDrop flags discarded errors on the comm and service boundaries: a
// call into the messaging layer (pcomm and its backends, machine, fault)
// or the service package whose error result is dropped — the call used
// as a statement, deferred, or the error assigned to the blank
// identifier. The error on these boundaries is almost always a
// *pcomm.RunError carrying the failing rank, root cause, stack and
// blocked-state dump, or a service admission/breaker decision; dropping
// it converts a contained, diagnosable failure back into a silent one,
// undoing exactly what the failure-containment layer (DESIGN.md §11)
// bought. Other packages' errors are go vet's business, not this
// analyzer's.
var ErrDrop = &Analyzer{
	Name: "errdrop",
	Doc:  "flag discarded errors on comm and service boundaries",
	Run:  runErrDrop,
}

// ServicePath is the import path of the solver-service package.
const ServicePath = "repro/internal/service"

// errBoundaryPkg reports whether path is a package whose returned errors
// must not be dropped: the messaging layer plus the service supervisor.
func errBoundaryPkg(path string) bool {
	return exemptPkg(path) || path == ServicePath
}

// netBoundaryPkg is the boundary set applied *inside* the netcomm
// transport (ordinary messaging-layer packages are exempt from errdrop;
// netcomm is not): the stdlib layers its dial/accept/frame/spawn paths
// are built on, plus its own helpers. A dropped error here does not
// just lose a diagnosis — it turns a dead connection into a rank that
// blocks forever, so the watchdog fires instead of the *RunError that
// names the broken link.
func netBoundaryPkg(path string) bool {
	switch path {
	case "net", "io", "bufio", "encoding/gob", "os/exec":
		return true
	}
	return strings.HasSuffix(path, "/netcomm") || errBoundaryPkg(path)
}

// clusterBoundaryPkg is the boundary set applied inside the service
// package's membership and replication files: the stdlib layers the
// gossip view exchange and replica pushes are built on, plus the usual
// comm/service boundary. A dropped error on these paths is a silently
// lost probe verdict or a factor stranded without its redundancy — the
// exact failures the dynamic-membership layer exists to surface.
func clusterBoundaryPkg(path string) bool {
	switch path {
	case "net", "net/http", "io", "bufio", "encoding/gob", "encoding/json":
		return true
	}
	return errBoundaryPkg(path)
}

// clusterStrictFile reports whether filename is one of the service
// package's membership/replication code paths, which get the stricter
// cluster boundary per file (the rest of the package keeps the ordinary
// comm/service boundary).
func clusterStrictFile(pkgPath, filename string) bool {
	if pkgPath != ServicePath && !strings.HasSuffix(pkgPath, "/clusterdrop") {
		return false
	}
	switch filepath.Base(filename) {
	case "membership.go", "replication.go":
		return true
	}
	return false
}

var errorType = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// boundaryErrResults returns the indices of call's error-typed results
// when the callee is a function of a package the boundary predicate
// accepts.
func boundaryErrResults(info *types.Info, call *ast.CallExpr, boundary func(string) bool) (fn *types.Func, errIdx []int) {
	callee := calleeOf(info, call)
	if callee == nil || callee.Pkg() == nil || !boundary(callee.Pkg().Path()) {
		return nil, nil
	}
	sig, ok := callee.Type().(*types.Signature)
	if !ok {
		return nil, nil
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if types.Implements(sig.Results().At(i).Type(), errorType) {
			errIdx = append(errIdx, i)
		}
	}
	if len(errIdx) == 0 {
		return nil, nil
	}
	return callee, errIdx
}

func runErrDrop(pass *Pass) error {
	notClose := func(fn *types.Func) bool { return fn.Name() != "Close" }
	pkgBoundaryOf := func(fn *types.Func) bool { return true }
	pkgBoundary := errBoundaryPkg
	if strings.HasSuffix(pass.Pkg.Path(), "/netcomm") {
		// The socket transport gets the stricter net-level boundary.
		// Close is excepted: teardown paths drop Close errors
		// deliberately (the interesting error already happened).
		pkgBoundary = netBoundaryPkg
		pkgBoundaryOf = notClose
	} else if exemptPkg(pass.Pkg.Path()) {
		// The messaging layer's internal plumbing manages its own errors.
		return nil
	}
	info := pass.TypesInfo
	report := func(pos ast.Node, fn *types.Func, how string) {
		pass.Reportf(pos.Pos(),
			"error result of %s %s; on a comm/service boundary the error carries the failure diagnosis (*pcomm.RunError rank, cause, blocked-state dump) — handle it", funcLabel(fn), how)
	}
	for _, f := range pass.Files {
		// Boundary strictness is per file: the membership/replication
		// code paths answer for their stdlib errors too, Close excepted.
		boundary, boundaryOf := pkgBoundary, pkgBoundaryOf
		if clusterStrictFile(pass.Pkg.Path(), pass.Fset.Position(f.Pos()).Filename) {
			boundary = clusterBoundaryPkg
			boundaryOf = notClose
		}
		results := func(call *ast.CallExpr) (*types.Func, []int) {
			fn, errIdx := boundaryErrResults(info, call, boundary)
			if fn == nil || !boundaryOf(fn) {
				return nil, nil
			}
			return fn, errIdx
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					if fn, _ := results(call); fn != nil {
						report(n, fn, "discarded (call used as a statement)")
					}
				}
			case *ast.DeferStmt:
				if fn, _ := results(n.Call); fn != nil {
					report(n, fn, "discarded (deferred call)")
				}
			case *ast.GoStmt:
				if fn, _ := results(n.Call); fn != nil {
					report(n, fn, "discarded (go statement)")
				}
			case *ast.AssignStmt:
				// x, _ := pcomm.Guard(...): the error position is blanked.
				if len(n.Rhs) != 1 {
					return true
				}
				call, ok := n.Rhs[0].(*ast.CallExpr)
				if !ok || len(n.Lhs) < 2 {
					return true
				}
				fn, errIdx := results(call)
				if fn == nil {
					return true
				}
				for _, i := range errIdx {
					if i >= len(n.Lhs) {
						continue
					}
					if id, ok := n.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
						report(n.Lhs[i], fn, "assigned to _")
					}
				}
			}
			return true
		})
	}
	return nil
}
