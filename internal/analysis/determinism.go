package analysis

import (
	"go/ast"
	"go/types"
)

// Determinism flags nondeterminism sources reachable from SPMD code —
// any function whose signature carries a communicator (pcomm.Comm,
// *machine.Proc): map-range iteration, wall-clock reads (time.Now /
// Since / Until), the global math/rand source, select statements, and
// goroutine launches. The repo's central contract is that a run produces
// bitwise-identical factors, stats and GMRES histories on the modelled
// and realcomm backends (DESIGN.md §10); each of these constructs can
// reorder floating-point operations (or change values outright) between
// two runs, which the runtime equivalence tests only catch when the
// schedule happens to differ.
//
// The check is interprocedural through the facts layer: a helper that
// ranges over a map is flagged at the call site that reaches it from
// SPMD code, with the call chain in the message — including helpers in
// other packages. Helpers that themselves take a communicator are
// skipped at call sites (they are SPMD code and are checked at their own
// definition). The messaging layer, trace recorder and service
// supervisor are exempt: their internals (mailbox selects, wall-clock
// latency histograms) are by design and sit outside the deterministic
// region.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "flag nondeterminism (map ranges, wall clock, global rand, select, goroutines) reachable from SPMD code",
	Run:  runDeterminism,
}

// sigTakesComm reports whether a signature carries a communicator in its
// receiver or parameters — the definition of "SPMD code" for this suite.
func sigTakesComm(sig *types.Signature) bool {
	if sig == nil {
		return false
	}
	if sig.Recv() != nil && isComm(sig.Recv().Type()) {
		return true
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isComm(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

// fnTakesComm is sigTakesComm on a function object.
func fnTakesComm(fn *types.Func) bool {
	sig, _ := fn.Type().(*types.Signature)
	return sigTakesComm(sig)
}

// directDetMessage phrases a direct violation.
func directDetMessage(f Fact) string {
	switch f {
	case FactRangesMap:
		return "map iteration in SPMD code: range order is nondeterministic across runs; iterate a sorted key slice instead"
	case FactWallClock:
		return "wall-clock read in SPMD code breaks modelled/real bit-compatibility; use the communicator clock (Comm.Time)"
	case FactGlobalRand:
		return "global math/rand source in SPMD code is nondeterministic; use a rank-seeded rand.New(rand.NewSource(...))"
	case FactSelect:
		return "select in SPMD code makes message-arrival order observable; receive in deterministic rank order instead"
	case FactSpawnsGoroutine:
		return "goroutine launched in SPMD code: the communicator contract is one goroutine per rank"
	}
	return f.String() + " in SPMD code"
}

func runDeterminism(pass *Pass) error {
	if factOpaque(pass.Pkg.Path()) {
		return nil
	}
	info := pass.TypesInfo

	// Collect the bodies of SPMD functions: declarations and function
	// literals whose signature carries a communicator.
	var bodies []*ast.BlockStmt
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body == nil {
					return false
				}
				if fn, ok := info.Defs[n.Name].(*types.Func); ok && fnTakesComm(fn) {
					bodies = append(bodies, n.Body)
					return false // nested comm-taking literals are part of this body's walk
				}
			case *ast.FuncLit:
				if tv, ok := info.Types[n]; ok {
					if sig, ok := tv.Type.(*types.Signature); ok && sigTakesComm(sig) {
						bodies = append(bodies, n.Body)
						return false
					}
				}
			}
			return true
		})
	}

	for _, body := range bodies {
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				// A nested literal that takes its own communicator is SPMD
				// code in its own right and is walked separately.
				if tv, ok := info.Types[n]; ok {
					if sig, ok := tv.Type.(*types.Signature); ok && sigTakesComm(sig) {
						return false
					}
				}
			case *ast.RangeStmt:
				if tv, ok := info.Types[n.X]; ok {
					if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
						pass.Reportf(n.Range, "%s", directDetMessage(FactRangesMap))
					}
				}
			case *ast.SelectStmt:
				pass.Reportf(n.Select, "%s", directDetMessage(FactSelect))
			case *ast.GoStmt:
				pass.Reportf(n.Go, "%s", directDetMessage(FactSpawnsGoroutine))
			case *ast.CallExpr:
				callee := calleeOf(info, n)
				if callee == nil {
					break
				}
				if fact, ok := stdlibFact(callee); ok {
					pass.Reportf(n.Pos(), "%s", directDetMessage(fact))
					break
				}
				if fnTakesComm(callee) {
					break // SPMD code itself; checked at its definition
				}
				ff := pass.Facts.Lookup(callee)
				if ff == nil {
					break // standard library, interface method, or opaque package
				}
				for _, fact := range DeterminismFacts {
					if ff.Has(fact) {
						pass.Reportf(n.Pos(), "call to %s reaches nondeterminism from SPMD code: it %s",
							funcLabel(callee), pass.Facts.Chain(pass.Fset, callee, fact))
					}
				}
			}
			return true
		})
	}
	return nil
}
