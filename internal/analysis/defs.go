package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// defKind classifies how a variable received a value.
type defKind int

const (
	defZero     defKind = iota // var x T with no initializer
	defExpr                    // x := e, x = e, var x = e
	defRange                   // for x := range e
	defCompound                // x += e and friends
)

// varDef is one definition site of a variable.
type varDef struct {
	kind defKind
	rhs  ast.Expr // nil for defZero; the range operand for defRange
}

// defIndex records, for every variable in the package, the expressions
// assigned to it, plus which variables are function parameters or method
// receivers. It is the shared substrate of the sendalias freshness check
// and the bytesarg provenance check.
type defIndex struct {
	defs   map[*types.Var][]varDef
	params map[*types.Var]bool
}

func buildDefIndex(pass *Pass) *defIndex {
	idx := &defIndex{
		defs:   make(map[*types.Var][]varDef),
		params: make(map[*types.Var]bool),
	}
	info := pass.TypesInfo
	addDef := func(lhs ast.Expr, d varDef) {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			return // x.f = e / x[i] = e mutate, they do not (re)define
		}
		var obj types.Object
		if o := info.Defs[id]; o != nil {
			obj = o
		} else {
			obj = info.Uses[id]
		}
		if v, ok := obj.(*types.Var); ok {
			idx.defs[v] = append(idx.defs[v], d)
		}
	}
	markParams := func(ft *ast.FuncType, recv *ast.FieldList) {
		for _, fl := range []*ast.FieldList{recv, ft.Params, ft.Results} {
			if fl == nil {
				continue
			}
			for _, f := range fl.List {
				for _, name := range f.Names {
					if v, ok := info.Defs[name].(*types.Var); ok {
						idx.params[v] = true
					}
				}
			}
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				markParams(n.Type, n.Recv)
			case *ast.FuncLit:
				markParams(n.Type, nil)
			case *ast.AssignStmt:
				switch {
				case n.Tok == token.ASSIGN || n.Tok == token.DEFINE:
					if len(n.Lhs) == len(n.Rhs) {
						for i, lhs := range n.Lhs {
							addDef(lhs, varDef{kind: defExpr, rhs: n.Rhs[i]})
						}
					} else {
						// x, y := f(): every LHS comes from the one call.
						for _, lhs := range n.Lhs {
							addDef(lhs, varDef{kind: defExpr, rhs: n.Rhs[0]})
						}
					}
				default: // +=, -=, ...
					addDef(n.Lhs[0], varDef{kind: defCompound, rhs: n.Rhs[0]})
				}
			case *ast.ValueSpec:
				for i, name := range n.Names {
					switch {
					case len(n.Values) == len(n.Names):
						addDef(name, varDef{kind: defExpr, rhs: n.Values[i]})
					case len(n.Values) == 0:
						addDef(name, varDef{kind: defZero})
					default:
						addDef(name, varDef{kind: defExpr, rhs: n.Values[0]})
					}
				}
			case *ast.RangeStmt:
				if n.Key != nil {
					addDef(n.Key, varDef{kind: defRange, rhs: n.X})
				}
				if n.Value != nil {
					addDef(n.Value, varDef{kind: defRange, rhs: n.X})
				}
			case *ast.TypeSwitchStmt:
				// "switch v := x.(type)": v aliases x in each clause.
				if a, ok := n.Assign.(*ast.AssignStmt); ok && len(a.Lhs) == 1 {
					addDef(a.Lhs[0], varDef{kind: defExpr, rhs: a.Rhs[0]})
				}
			}
			return true
		})
	}
	return idx
}

// lookupVar resolves an identifier to its variable object, if any.
func lookupVar(info *types.Info, id *ast.Ident) *types.Var {
	var obj types.Object
	if o := info.Uses[id]; o != nil {
		obj = o
	} else {
		obj = info.Defs[id]
	}
	v, _ := obj.(*types.Var)
	return v
}
