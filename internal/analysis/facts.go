package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// This file is the framework's interprocedural layer: per-function fact
// summaries ("ranges over a map", "reads the wall clock", "allocates",
// ...) computed bottom-up over the in-module call graph. The Loader
// type-checks imports before importers, so facts for a package's
// dependencies are always in the store by the time the package itself is
// summarized — the classic x/tools facts discipline ("exported across
// packages in dependency order") without the serialization machinery,
// because the whole module is checked in one process.
//
// Analyzers use the store to flag violations reached *transitively* from
// an entry point: the determinism analyzer reports a map iteration three
// calls deep under a pcomm.Comm, at the call site that drags it in, with
// the full chain in the message.

// Fact is one propagated property of a function.
type Fact uint8

const (
	// FactRangesMap: the function (or a callee) iterates over a map, whose
	// order varies run to run.
	FactRangesMap Fact = iota
	// FactWallClock: reads the wall clock (time.Now / Since / Until).
	FactWallClock
	// FactGlobalRand: draws from the unseeded global math/rand source.
	FactGlobalRand
	// FactSelect: executes a select statement — a nondeterministic choice
	// over communication readiness.
	FactSelect
	// FactSpawnsGoroutine: launches a goroutine.
	FactSpawnsGoroutine
	// FactAllocates: allocates on a path through the function (make, new,
	// append, slice/map composite literal, closure creation).
	FactAllocates

	numFacts
)

// String names the fact as a predicate, for diagnostics.
func (f Fact) String() string {
	switch f {
	case FactRangesMap:
		return "ranges over a map"
	case FactWallClock:
		return "reads the wall clock"
	case FactGlobalRand:
		return "uses the global math/rand source"
	case FactSelect:
		return "executes a select statement"
	case FactSpawnsGoroutine:
		return "launches a goroutine"
	case FactAllocates:
		return "allocates"
	}
	return fmt.Sprintf("fact(%d)", int(f))
}

// DeterminismFacts are the facts that make a function unsafe to run under
// an SPMD communicator: any of them can change the order (or the values)
// of floating-point operations between two runs or two backends.
var DeterminismFacts = []Fact{FactRangesMap, FactWallClock, FactGlobalRand, FactSelect, FactSpawnsGoroutine}

// Origin records why a function carries a fact: either a primitive
// occurrence in its own body (Callee nil, Pos the occurrence), or
// inheritance through a call (Callee the called function, Pos the call
// site in this function's body).
type Origin struct {
	Pos    token.Pos
	Callee *types.Func // nil for a direct occurrence
}

// FuncFacts is the summary of one function.
type FuncFacts struct {
	origins [numFacts]*Origin
	// Hot marks a //pilut:hotpath doc-comment annotation. It is a marker,
	// not a propagated fact: the hotalloc analyzer audits hot functions at
	// their definition and therefore treats calls to them as opaque.
	Hot bool
}

// Has reports whether the function carries f.
func (ff *FuncFacts) Has(f Fact) bool { return ff != nil && ff.origins[f] != nil }

// Origin returns the provenance of f, or nil.
func (ff *FuncFacts) Origin(f Fact) *Origin {
	if ff == nil {
		return nil
	}
	return ff.origins[f]
}

// FactStore holds the summaries of every summarized module-local
// function, keyed by the *types.Func object of its declaration (generic
// functions by their Origin object).
type FactStore struct {
	funcs map[*types.Func]*FuncFacts
	pkgs  map[string]bool // package paths already summarized
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{funcs: make(map[*types.Func]*FuncFacts), pkgs: make(map[string]bool)}
}

// Lookup returns fn's summary, or nil when fn was not summarized (a
// standard-library function, an interface method, or a function of an
// opaque package).
func (s *FactStore) Lookup(fn *types.Func) *FuncFacts {
	if s == nil || fn == nil {
		return nil
	}
	return s.funcs[fn.Origin()]
}

// factOpaque reports whether facts must not propagate out of pkg: the
// messaging layer itself (machine, pcomm and its backends, fault), the
// trace recorder and the service supervisor establish the invariants the
// analyzers check elsewhere — a select inside realcomm's mailbox or a
// wall-clock read inside the service's latency histogram is by design.
func factOpaque(path string) bool {
	return exemptPkg(path) ||
		path == "repro/internal/trace" ||
		path == "repro/internal/service"
}

// Chain renders the provenance of fact f on fn as a human-readable call
// chain, e.g. "calls mis.Shuffle, which calls graph.Visit, which ranges
// over a map (graph.go:41)". The position of the ultimate primitive
// occurrence is included file-base-relative.
func (s *FactStore) Chain(fset *token.FileSet, fn *types.Func, f Fact) string {
	var b strings.Builder
	for depth := 0; depth < 32; depth++ {
		ff := s.Lookup(fn)
		o := ff.Origin(f)
		if o == nil {
			b.WriteString(f.String())
			return b.String()
		}
		if o.Callee == nil {
			pos := fset.Position(o.Pos)
			fmt.Fprintf(&b, "%s (%s:%d)", f, filepath.Base(pos.Filename), pos.Line)
			return b.String()
		}
		fmt.Fprintf(&b, "calls %s, which ", funcLabel(o.Callee))
		fn = o.Callee
	}
	b.WriteString(f.String())
	return b.String()
}

// funcLabel renders fn as pkg.Name or pkg.(Recv).Name for diagnostics.
func funcLabel(fn *types.Func) string {
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Name() + "."
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return pkg + named.Obj().Name() + "." + fn.Name()
		}
	}
	return pkg + fn.Name()
}

// hotpathMarker is the doc-comment directive marking a function whose
// allocations the hotalloc analyzer ratchets.
const hotpathMarker = "//pilut:hotpath"

func isHotpath(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.HasPrefix(strings.TrimSpace(c.Text), hotpathMarker) {
			return true
		}
	}
	return false
}

// unparen strips parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// calleeOf resolves a call expression to the *types.Func it statically
// invokes, or nil for builtins, conversions, function-typed variables and
// dynamic interface dispatch it cannot see through. Generic functions
// resolve to their origin object.
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	fun := unparen(call.Fun)
	switch f := fun.(type) {
	case *ast.IndexExpr:
		fun = unparen(f.X)
	case *ast.IndexListExpr:
		fun = unparen(f.X)
	}
	var obj types.Object
	switch f := fun.(type) {
	case *ast.Ident:
		obj = info.Uses[f]
	case *ast.SelectorExpr:
		obj = info.Uses[f.Sel]
	default:
		return nil
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	return fn.Origin()
}

// stdlibFact maps a handful of standard-library functions to the fact
// calling them implies. Only package-level functions are listed: a
// *rand.Rand built from an explicit seed is deterministic and fine.
func stdlibFact(fn *types.Func) (Fact, bool) {
	if fn.Pkg() == nil {
		return 0, false
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return 0, false
	}
	switch fn.Pkg().Path() {
	case "time":
		switch fn.Name() {
		case "Now", "Since", "Until":
			return FactWallClock, true
		}
	case "math/rand", "math/rand/v2":
		// Only the package-level draws touch the shared global source;
		// rand.New / rand.NewSource build explicitly-seeded generators,
		// which is exactly the deterministic alternative.
		switch fn.Name() {
		case "New", "NewSource", "NewZipf", "NewChaCha8", "NewPCG":
			return 0, false
		}
		return FactGlobalRand, true
	}
	return 0, false
}

// allocExpr classifies e as an allocation primitive and returns a short
// description, or "". Composite literals of slice or map type allocate;
// struct literals generally live on the stack and are not counted unless
// their address is taken (the &T{...} case reaches here as the UnaryExpr
// handled by the caller walking into its operand CompositeLit — a plain
// value struct literal returns "").
func allocExpr(info *types.Info, e ast.Expr) string {
	switch e := e.(type) {
	case *ast.CallExpr:
		if id, ok := unparen(e.Fun).(*ast.Ident); ok {
			if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
				switch id.Name {
				case "make":
					return "make"
				case "new":
					return "new"
				case "append":
					return "append (may grow the backing array)"
				}
			}
		}
	case *ast.CompositeLit:
		tv, ok := info.Types[e]
		if !ok {
			return ""
		}
		switch tv.Type.Underlying().(type) {
		case *types.Slice:
			return "slice literal"
		case *types.Map:
			return "map literal"
		}
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			if _, ok := unparen(e.X).(*ast.CompositeLit); ok {
				return "&composite literal"
			}
		}
	case *ast.FuncLit:
		return "closure creation"
	}
	return ""
}

// Summarize computes the fact summaries of one type-checked package and
// adds them to the store. Facts of imported module-local packages must
// already be present (the Loader guarantees this by summarizing in
// dependency order). Calls into opaque packages, the standard library,
// interface methods and function values contribute nothing — the layer is
// deliberately a static under-approximation of the dynamic call graph.
// Summarize may run more than once for one import path (the Loader
// re-checks a package when it is both imported and directly analyzed,
// producing distinct types.Func objects); summaries are keyed by object,
// so the runs coexist and lookups through either object resolve.
func (s *FactStore) Summarize(path string, files []*ast.File, info *types.Info) {
	s.pkgs[path] = true
	if factOpaque(path) {
		return
	}

	type edge struct {
		callee *types.Func
		pos    token.Pos
	}
	type fnData struct {
		fn    *types.Func
		facts *FuncFacts
		calls []edge // local (same-package) call edges, for the fixpoint
	}
	var decls []*fnData
	byFn := make(map[*types.Func]*fnData)

	for _, f := range files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			fn = fn.Origin()
			data := &fnData{fn: fn, facts: &FuncFacts{Hot: isHotpath(fd.Doc)}}
			decls = append(decls, data)
			byFn[fn] = data
			s.funcs[fn] = data.facts

			setDirect := func(fact Fact, pos token.Pos) {
				if data.facts.origins[fact] == nil {
					data.facts.origins[fact] = &Origin{Pos: pos}
				}
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.RangeStmt:
					if tv, ok := info.Types[n.X]; ok {
						if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
							setDirect(FactRangesMap, n.Range)
						}
					}
				case *ast.SelectStmt:
					setDirect(FactSelect, n.Select)
				case *ast.GoStmt:
					setDirect(FactSpawnsGoroutine, n.Go)
				case *ast.CallExpr:
					callee := calleeOf(info, n)
					if callee == nil {
						break
					}
					if fact, ok := stdlibFact(callee); ok {
						setDirect(fact, n.Pos())
						break
					}
					cp := callee.Pkg()
					if cp == nil || factOpaque(cp.Path()) {
						break
					}
					if cp.Path() == path {
						// Same package: defer to the fixpoint (the callee's
						// own summary may not exist yet, and recursion needs
						// iteration anyway).
						data.calls = append(data.calls, edge{callee, n.Pos()})
						break
					}
					// Cross-package: the callee's summary, if it exists, is
					// final — imports are summarized before importers.
					if cff := s.Lookup(callee); cff != nil {
						for fact := Fact(0); fact < numFacts; fact++ {
							if cff.Has(fact) && data.facts.origins[fact] == nil {
								data.facts.origins[fact] = &Origin{Pos: n.Pos(), Callee: callee}
							}
						}
					}
				}
				if e, ok := n.(ast.Expr); ok {
					if desc := allocExpr(info, e); desc != "" {
						setDirect(FactAllocates, n.Pos())
					}
				}
				return true
			})
		}
	}

	// Propagate over same-package edges to a fixpoint (handles recursion
	// and any declaration order).
	for changed := true; changed; {
		changed = false
		for _, d := range decls {
			for _, e := range d.calls {
				cd, ok := byFn[e.callee]
				if !ok {
					continue
				}
				for fact := Fact(0); fact < numFacts; fact++ {
					if cd.facts.origins[fact] != nil && d.facts.origins[fact] == nil {
						d.facts.origins[fact] = &Origin{Pos: e.pos, Callee: e.callee}
						changed = true
					}
				}
			}
		}
	}
}
