// Package analysistest runs an analyzer over a testdata package and
// checks its diagnostics against // want "regexp" comments, in the style
// of golang.org/x/tools/go/analysis/analysistest.
//
// A want comment expects a diagnostic on its own line:
//
//	p.Send(1, 0, xs, 8) // want `aliases memory`
//
// Several patterns on one line expect several diagnostics. Lines without
// a want comment expect none.
package analysistest

import (
	"fmt"
	"regexp"
	"sort"
	"strconv"
	"sync"
	"testing"

	"repro/internal/analysis"
)

var (
	loaderOnce sync.Once
	sharedLd   *analysis.Loader
	loaderErr  error
)

// loader returns a process-wide Loader so every golden test shares one
// type-checked standard library.
func loader(dir string) (*analysis.Loader, error) {
	loaderOnce.Do(func() {
		sharedLd, loaderErr = analysis.NewLoader(dir)
	})
	return sharedLd, loaderErr
}

// wantRe matches one quoted pattern after a want marker.
var wantRe = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

type expectation struct {
	re      *regexp.Regexp
	matched bool
}

// Run loads the package in dir, applies a, and reports any mismatch
// between the diagnostics and the files' want comments as test errors.
func Run(t *testing.T, a *analysis.Analyzer, dir string) {
	t.Helper()
	ld, err := loader(dir)
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkgs, err := ld.Load(dir, false)
	if err != nil {
		t.Fatalf("load %s: %v", dir, err)
	}
	for _, pkg := range pkgs {
		diags, err := a.Apply(pkg)
		if err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
		check(t, a, pkg, diags)
	}
}

func check(t *testing.T, a *analysis.Analyzer, pkg *analysis.Package, diags []analysis.Diagnostic) {
	t.Helper()
	// Gather expectations per file:line.
	wants := make(map[string][]*expectation)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				idx := wantIndex(c.Text)
				if idx < 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				for _, q := range wantRe.FindAllString(c.Text[idx:], -1) {
					pat, err := unquote(q)
					if err != nil {
						t.Errorf("%s: bad want pattern %s: %v", key, q, err)
						continue
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Errorf("%s: bad want regexp %q: %v", key, pat, err)
						continue
					}
					wants[key] = append(wants[key], &expectation{re: re})
				}
			}
		}
	}
	// Match diagnostics against expectations.
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
		found := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic from %s: %s", key, a.Name, d.Message)
		}
	}
	var keys []string
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		for _, w := range wants[k] {
			if !w.matched {
				t.Errorf("%s: expected diagnostic matching %q, got none", k, w.re)
			}
		}
	}
}

// wantIndex returns the offset just past the "want" marker in a comment,
// or -1. The marker must be the first word of the comment text.
func wantIndex(text string) int {
	m := regexp.MustCompile(`^//\s*want\s`).FindString(text)
	if m == "" {
		return -1
	}
	return len(m)
}

func unquote(q string) (string, error) {
	if q[0] == '`' {
		return q[1 : len(q)-1], nil
	}
	return strconv.Unquote(q)
}
