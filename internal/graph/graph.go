// Package graph provides the undirected weighted graph substrate used by
// the partitioner and the independent-set algorithms: adjacency structure
// derived from a sparse matrix, edge cuts, boundary detection and connected
// components.
package graph

import (
	"fmt"

	"repro/internal/sparse"
)

// Graph is an undirected graph in adjacency (CSR-like) form. Vertex i's
// neighbours occupy Adj[Xadj[i]:Xadj[i+1]], with matching edge weights in
// AdjWgt. Vertex weights live in VWgt. Self-loops are never stored.
type Graph struct {
	NVtx   int
	Xadj   []int
	Adj    []int
	AdjWgt []int
	VWgt   []int
}

// FromMatrix builds the adjacency graph of a square sparse matrix: an edge
// {i, j} exists when a_ij or a_ji is stored (i ≠ j). All vertex and edge
// weights are 1. This is the graph the paper partitions.
func FromMatrix(a *sparse.CSR) *Graph {
	if a.N != a.M {
		panic("graph: FromMatrix requires a square matrix")
	}
	s := a.SymmetrizeStructure()
	g := &Graph{NVtx: s.N, Xadj: make([]int, s.N+1)}
	for i := 0; i < s.N; i++ {
		cols, _ := s.Row(i)
		deg := 0
		for _, j := range cols {
			if j != i {
				deg++
			}
		}
		g.Xadj[i+1] = g.Xadj[i] + deg
	}
	g.Adj = make([]int, g.Xadj[s.N])
	g.AdjWgt = make([]int, g.Xadj[s.N])
	g.VWgt = make([]int, s.N)
	for i := 0; i < s.N; i++ {
		g.VWgt[i] = 1
		p := g.Xadj[i]
		cols, _ := s.Row(i)
		for _, j := range cols {
			if j != i {
				g.Adj[p] = j
				g.AdjWgt[p] = 1
				p++
			}
		}
	}
	return g
}

// NEdges reports the number of undirected edges.
func (g *Graph) NEdges() int { return len(g.Adj) / 2 }

// Degree reports the number of neighbours of vertex v.
func (g *Graph) Degree(v int) int { return g.Xadj[v+1] - g.Xadj[v] }

// Neighbors returns the neighbour slice of v (aliases graph storage).
func (g *Graph) Neighbors(v int) []int { return g.Adj[g.Xadj[v]:g.Xadj[v+1]] }

// EdgeWeights returns the edge-weight slice of v (aliases graph storage).
func (g *Graph) EdgeWeights(v int) []int { return g.AdjWgt[g.Xadj[v]:g.Xadj[v+1]] }

// TotalVWgt reports the sum of all vertex weights.
func (g *Graph) TotalVWgt() int {
	s := 0
	for _, w := range g.VWgt {
		s += w
	}
	return s
}

// EdgeCut returns the total weight of edges whose endpoints lie in
// different parts under the given assignment.
func (g *Graph) EdgeCut(part []int) int {
	if len(part) != g.NVtx {
		panic(fmt.Sprintf("graph: EdgeCut: partition length %d for %d vertices", len(part), g.NVtx))
	}
	cut := 0
	for v := 0; v < g.NVtx; v++ {
		for k := g.Xadj[v]; k < g.Xadj[v+1]; k++ {
			if part[g.Adj[k]] != part[v] {
				cut += g.AdjWgt[k]
			}
		}
	}
	return cut / 2
}

// Boundary returns, for each vertex, whether it has a neighbour in a
// different part. These are the paper's interface nodes.
func (g *Graph) Boundary(part []int) []bool {
	b := make([]bool, g.NVtx)
	for v := 0; v < g.NVtx; v++ {
		for k := g.Xadj[v]; k < g.Xadj[v+1]; k++ {
			if part[g.Adj[k]] != part[v] {
				b[v] = true
				break
			}
		}
	}
	return b
}

// PartWeights returns the total vertex weight of each of nparts parts.
func (g *Graph) PartWeights(part []int, nparts int) []int {
	w := make([]int, nparts)
	for v, p := range part {
		w[p] += g.VWgt[v]
	}
	return w
}

// Components labels connected components; it returns the label array and
// the number of components.
func (g *Graph) Components() ([]int, int) {
	comp := make([]int, g.NVtx)
	for i := range comp {
		comp[i] = -1
	}
	var stack []int
	nc := 0
	for s := 0; s < g.NVtx; s++ {
		if comp[s] != -1 {
			continue
		}
		comp[s] = nc
		stack = append(stack[:0], s)
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, u := range g.Neighbors(v) {
				if comp[u] == -1 {
					comp[u] = nc
					stack = append(stack, u)
				}
			}
		}
		nc++
	}
	return comp, nc
}

// Validate checks structural invariants: sorted-free adjacency within
// bounds, symmetric edges with matching weights, no self loops. Returns an
// error describing the first violation.
func (g *Graph) Validate() error {
	if len(g.Xadj) != g.NVtx+1 {
		return fmt.Errorf("graph: xadj length %d for %d vertices", len(g.Xadj), g.NVtx)
	}
	type edge struct{ u, v int }
	weights := make(map[edge]int)
	for v := 0; v < g.NVtx; v++ {
		for k := g.Xadj[v]; k < g.Xadj[v+1]; k++ {
			u := g.Adj[k]
			if u < 0 || u >= g.NVtx {
				return fmt.Errorf("graph: vertex %d has neighbour %d out of range", v, u)
			}
			if u == v {
				return fmt.Errorf("graph: self loop at %d", v)
			}
			weights[edge{v, u}] = g.AdjWgt[k]
		}
	}
	for e, w := range weights {
		w2, ok := weights[edge{e.v, e.u}]
		if !ok {
			return fmt.Errorf("graph: edge (%d,%d) has no reverse", e.u, e.v)
		}
		if w != w2 {
			return fmt.Errorf("graph: edge (%d,%d) weight %d != reverse %d", e.u, e.v, w, w2)
		}
	}
	return nil
}
