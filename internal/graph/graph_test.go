package graph

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/matgen"
	"repro/internal/sparse"
)

func TestFromMatrixGrid(t *testing.T) {
	a := matgen.Grid2D(3, 3)
	g := FromMatrix(a)
	if g.NVtx != 9 {
		t.Fatalf("NVtx = %d, want 9", g.NVtx)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Corner has degree 2, edge 3, centre 4.
	if got := g.Degree(0); got != 2 {
		t.Errorf("corner degree = %d, want 2", got)
	}
	if got := g.Degree(4); got != 4 {
		t.Errorf("centre degree = %d, want 4", got)
	}
	if got := g.NEdges(); got != 12 {
		t.Errorf("NEdges = %d, want 12", got)
	}
}

func TestFromMatrixNonsymmetric(t *testing.T) {
	// a_01 stored but a_10 not: the graph must still contain edge {0,1}.
	a := sparse.FromDense([][]float64{
		{1, 5, 0},
		{0, 1, 0},
		{0, 0, 1},
	})
	g := FromMatrix(a)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Degree(0) != 1 || g.Degree(1) != 1 {
		t.Fatalf("degrees = %d,%d, want 1,1", g.Degree(0), g.Degree(1))
	}
	if g.Neighbors(1)[0] != 0 {
		t.Fatal("edge {0,1} missing its reverse")
	}
}

func TestNoSelfLoops(t *testing.T) {
	a := matgen.Grid2D(4, 4) // has diagonal entries
	g := FromMatrix(a)
	for v := 0; v < g.NVtx; v++ {
		for _, u := range g.Neighbors(v) {
			if u == v {
				t.Fatalf("self loop at %d", v)
			}
		}
	}
}

func TestEdgeCutAndBoundary(t *testing.T) {
	// 2×4 grid, split between columns 1 and 2 (vertex = i*4+j).
	a := matgen.Grid2D(2, 4)
	g := FromMatrix(a)
	part := []int{0, 0, 1, 1, 0, 0, 1, 1}
	if got := g.EdgeCut(part); got != 2 {
		t.Errorf("EdgeCut = %d, want 2", got)
	}
	b := g.Boundary(part)
	wantBoundary := map[int]bool{1: true, 2: true, 5: true, 6: true}
	for v, isB := range b {
		if isB != wantBoundary[v] {
			t.Errorf("Boundary[%d] = %v, want %v", v, isB, wantBoundary[v])
		}
	}
}

func TestPartWeights(t *testing.T) {
	a := matgen.Grid2D(2, 2)
	g := FromMatrix(a)
	w := g.PartWeights([]int{0, 1, 1, 1}, 2)
	if w[0] != 1 || w[1] != 3 {
		t.Errorf("PartWeights = %v, want [1 3]", w)
	}
}

func TestComponents(t *testing.T) {
	// Two disjoint 2×2 grids glued into one matrix block-diagonally.
	b := sparse.NewBuilder(8, 8)
	add := func(off int) {
		pairs := [][2]int{{0, 1}, {1, 3}, {3, 2}, {2, 0}}
		for _, p := range pairs {
			b.Add(off+p[0], off+p[1], -1)
			b.Add(off+p[1], off+p[0], -1)
		}
		for i := 0; i < 4; i++ {
			b.Add(off+i, off+i, 4)
		}
	}
	add(0)
	add(4)
	g := FromMatrix(b.Build())
	comp, nc := g.Components()
	if nc != 2 {
		t.Fatalf("components = %d, want 2", nc)
	}
	for i := 0; i < 4; i++ {
		if comp[i] != comp[0] {
			t.Error("first block split across components")
		}
		if comp[4+i] != comp[4] {
			t.Error("second block split across components")
		}
	}
	if comp[0] == comp[4] {
		t.Error("blocks merged into one component")
	}
}

func TestComponentsConnected(t *testing.T) {
	g := FromMatrix(matgen.Grid2D(5, 7))
	_, nc := g.Components()
	if nc != 1 {
		t.Fatalf("grid should be connected, got %d components", nc)
	}
}

// Property: EdgeCut is invariant under part-label swaps and equals a
// brute-force count.
func TestEdgeCutProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(15)
		a := matgen.RandomSPDPattern(n, 4, seed)
		g := FromMatrix(a)
		part := make([]int, n)
		for i := range part {
			part[i] = r.Intn(3)
		}
		got := g.EdgeCut(part)
		// Brute force over unordered vertex pairs.
		want := 0
		seen := map[[2]int]bool{}
		for v := 0; v < n; v++ {
			adj := g.Neighbors(v)
			wgt := g.EdgeWeights(v)
			for k, u := range adj {
				key := [2]int{min(u, v), max(u, v)}
				if seen[key] {
					continue
				}
				seen[key] = true
				if part[u] != part[v] {
					want += wgt[k]
				}
			}
		}
		// Swap labels 0 and 1: cut unchanged.
		swapped := make([]int, n)
		for i, p := range part {
			switch p {
			case 0:
				swapped[i] = 1
			case 1:
				swapped[i] = 0
			default:
				swapped[i] = p
			}
		}
		return got == want && g.EdgeCut(swapped) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
