package graph

import "sort"

// RCM computes a reverse Cuthill–McKee ordering of the graph and returns
// it as a permutation (old index → new index). Bandwidth-reducing
// orderings are the classic serial companion to incomplete factorizations:
// they keep ILUT's fill local and are a useful baseline against the
// partition-induced ordering the parallel algorithm produces.
func (g *Graph) RCM() []int {
	n := g.NVtx
	perm := make([]int, n)
	for i := range perm {
		perm[i] = -1
	}
	var order []int
	visited := make([]bool, n)
	queue := make([]int, 0, n)

	for start := 0; start < n; start++ {
		if visited[start] {
			continue
		}
		s := g.pseudoPeripheral(start)
		visited[s] = true
		queue = append(queue[:0], s)
		for qi := 0; qi < len(queue); qi++ {
			v := queue[qi]
			order = append(order, v)
			// Enqueue unvisited neighbours by increasing degree (the
			// Cuthill–McKee tie-break).
			nbrs := make([]int, 0, g.Degree(v))
			for _, u := range g.Neighbors(v) {
				if !visited[u] {
					visited[u] = true
					nbrs = append(nbrs, u)
				}
			}
			sort.Slice(nbrs, func(a, b int) bool {
				da, db := g.Degree(nbrs[a]), g.Degree(nbrs[b])
				if da != db {
					return da < db
				}
				return nbrs[a] < nbrs[b]
			})
			queue = append(queue, nbrs...)
		}
	}
	// Reverse.
	for i, v := range order {
		perm[v] = n - 1 - i
	}
	return perm
}

// pseudoPeripheral finds an approximate peripheral vertex by repeated BFS
// (George–Liu): start anywhere, jump to a farthest minimum-degree vertex
// until the eccentricity stops growing.
func (g *Graph) pseudoPeripheral(start int) int {
	v := start
	prevEcc := -1
	dist := make([]int, g.NVtx)
	for iter := 0; iter < 10; iter++ {
		ecc, far := g.bfsFarthest(v, dist)
		if ecc <= prevEcc {
			return v
		}
		prevEcc = ecc
		v = far
	}
	return v
}

// bfsFarthest runs BFS from s within s's component and returns the
// eccentricity and a farthest vertex of minimum degree.
func (g *Graph) bfsFarthest(s int, dist []int) (int, int) {
	for i := range dist {
		dist[i] = -1
	}
	dist[s] = 0
	queue := []int{s}
	last := s
	for qi := 0; qi < len(queue); qi++ {
		v := queue[qi]
		last = v
		for _, u := range g.Neighbors(v) {
			if dist[u] == -1 {
				dist[u] = dist[v] + 1
				queue = append(queue, u)
			}
		}
	}
	ecc := dist[last]
	best := last
	for _, v := range queue {
		if dist[v] == ecc && g.Degree(v) < g.Degree(best) {
			best = v
		}
	}
	return ecc, best
}

// Bandwidth returns the matrix bandwidth induced by an ordering: the
// maximum |perm[u] − perm[v]| over edges.
func (g *Graph) Bandwidth(perm []int) int {
	bw := 0
	for v := 0; v < g.NVtx; v++ {
		for _, u := range g.Neighbors(v) {
			d := perm[u] - perm[v]
			if d < 0 {
				d = -d
			}
			if d > bw {
				bw = d
			}
		}
	}
	return bw
}
