package graph

import (
	"testing"

	"repro/internal/matgen"
	"repro/internal/sparse"
)

func TestRCMIsPermutation(t *testing.T) {
	g := FromMatrix(matgen.Torso(6, 6, 6, 1))
	perm := g.RCM()
	sparse.InversePermutation(perm) // panics if invalid
}

func TestRCMReducesBandwidthOfShuffledGrid(t *testing.T) {
	// A Morton-ordered (shuffled) grid has large bandwidth; RCM must
	// bring it close to the natural-ordering bandwidth.
	a := matgen.Torso(8, 8, 8, 2)
	g := FromMatrix(a)
	identity := sparse.IdentityPermutation(g.NVtx)
	before := g.Bandwidth(identity)
	after := g.Bandwidth(g.RCM())
	if after*2 >= before {
		t.Errorf("RCM bandwidth %d not ≪ original %d", after, before)
	}
}

func TestRCMOnPath(t *testing.T) {
	// A path graph reordered by RCM has bandwidth 1.
	n := 20
	b := sparse.NewBuilder(n, n)
	for i := 0; i < n; i++ {
		b.Add(i, i, 2)
		if i+1 < n {
			b.Add(i, i+1, -1)
			b.Add(i+1, i, -1)
		}
	}
	g := FromMatrix(b.Build())
	if bw := g.Bandwidth(g.RCM()); bw != 1 {
		t.Errorf("path RCM bandwidth = %d, want 1", bw)
	}
}

func TestRCMDisconnected(t *testing.T) {
	// Two components: ordering must still be a permutation covering both.
	b := sparse.NewBuilder(6, 6)
	for i := 0; i < 6; i++ {
		b.Add(i, i, 1)
	}
	b.Add(0, 1, -1)
	b.Add(1, 0, -1)
	b.Add(4, 5, -1)
	b.Add(5, 4, -1)
	g := FromMatrix(b.Build())
	perm := g.RCM()
	sparse.InversePermutation(perm)
}

func TestBandwidthIdentityGrid(t *testing.T) {
	g := FromMatrix(matgen.Grid2D(4, 6))
	// Lexicographic 4×6 grid: bandwidth = ny = 6.
	if bw := g.Bandwidth(sparse.IdentityPermutation(g.NVtx)); bw != 6 {
		t.Errorf("grid bandwidth = %d, want 6", bw)
	}
}

func TestGreedyColoringValid(t *testing.T) {
	g := FromMatrix(matgen.Torso(6, 6, 6, 4))
	color, nc := g.GreedyColoring(nil)
	if !g.ValidateColoring(color) {
		t.Fatal("invalid coloring")
	}
	if nc < 2 {
		t.Fatalf("suspicious color count %d", nc)
	}
	// Max color index consistent with count.
	for _, c := range color {
		if c < 0 || c >= nc {
			t.Fatalf("color %d out of range [0,%d)", c, nc)
		}
	}
}

func TestGreedyColoringBipartiteGrid(t *testing.T) {
	// 5-point grids are bipartite: natural-order greedy gives 2 colors.
	g := FromMatrix(matgen.Grid2D(6, 7))
	color, nc := g.GreedyColoring(nil)
	if nc != 2 {
		t.Fatalf("grid coloring used %d colors, want 2", nc)
	}
	if !g.ValidateColoring(color) {
		t.Fatal("invalid coloring")
	}
}

func TestValidateColoringDetectsConflict(t *testing.T) {
	g := FromMatrix(matgen.Grid2D(2, 2))
	bad := make([]int, g.NVtx) // all same color on a connected graph
	if g.ValidateColoring(bad) {
		t.Fatal("conflict not detected")
	}
}
