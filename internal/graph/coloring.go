package graph

// GreedyColoring colours the vertices so no edge joins two vertices of
// the same colour, using first-fit in the given order (nil = natural
// order). Returns the colour array and the number of colours. For static
// sparsity patterns (ILU(0)), colour classes are exactly the independent
// sets that can be factored concurrently — the precomputed schedule of
// the paper's Figure 1(a) that dynamic fill invalidates for ILUT.
func (g *Graph) GreedyColoring(order []int) ([]int, int) {
	n := g.NVtx
	color := make([]int, n)
	for i := range color {
		color[i] = -1
	}
	if order == nil {
		order = make([]int, n)
		for i := range order {
			order[i] = i
		}
	}
	maxColor := 0
	used := make([]int, 0, 8)
	for _, v := range order {
		used = used[:0]
		for _, u := range g.Neighbors(v) {
			if c := color[u]; c >= 0 {
				for len(used) <= c {
					used = append(used, -1)
				}
				used[c] = v
			}
		}
		c := 0
		for c < len(used) && used[c] == v {
			c++
		}
		color[v] = c
		if c+1 > maxColor {
			maxColor = c + 1
		}
	}
	return color, maxColor
}

// ValidateColoring reports whether no edge connects equal colours.
func (g *Graph) ValidateColoring(color []int) bool {
	for v := 0; v < g.NVtx; v++ {
		for _, u := range g.Neighbors(v) {
			if u != v && color[u] == color[v] {
				return false
			}
		}
	}
	return true
}
