package matgen

import (
	"math"
	"testing"

	"repro/internal/sparse"
)

func TestGrid2DStructure(t *testing.T) {
	a := Grid2D(3, 4)
	if a.N != 12 || a.M != 12 {
		t.Fatalf("dims %d×%d, want 12×12", a.N, a.M)
	}
	// Interior point (1,1) = row 1*4+1 = 5 has 5 entries.
	if got := a.RowNNZ(5); got != 5 {
		t.Errorf("interior row nnz = %d, want 5", got)
	}
	// Corner (0,0) has 3 entries.
	if got := a.RowNNZ(0); got != 3 {
		t.Errorf("corner row nnz = %d, want 3", got)
	}
	if a.At(0, 0) != 4 || a.At(0, 1) != -1 || a.At(0, 4) != -1 {
		t.Error("wrong stencil values")
	}
}

func TestGrid2DSymmetric(t *testing.T) {
	a := Grid2D(5, 6)
	at := a.Transpose()
	if sparse.MaxAbsDiff(a, at) != 0 {
		t.Error("Grid2D not symmetric")
	}
}

func TestGrid2DDiagonallyDominantAndSPDish(t *testing.T) {
	a := Grid2D(6, 6)
	for i := 0; i < a.N; i++ {
		cols, vals := a.Row(i)
		var off float64
		var diag float64
		for k, j := range cols {
			if j == i {
				diag = vals[k]
			} else {
				off += math.Abs(vals[k])
			}
		}
		if diag < off {
			t.Fatalf("row %d not diagonally dominant: %v < %v", i, diag, off)
		}
	}
}

func TestGrid3DStructure(t *testing.T) {
	a := Grid3D(3, 3, 3)
	if a.N != 27 {
		t.Fatalf("N = %d, want 27", a.N)
	}
	// Centre vertex has 7 entries.
	centre := (1*3+1)*3 + 1
	if got := a.RowNNZ(centre); got != 7 {
		t.Errorf("centre row nnz = %d, want 7", got)
	}
	if sparse.MaxAbsDiff(a, a.Transpose()) != 0 {
		t.Error("Grid3D not symmetric")
	}
}

func TestTorsoProperties(t *testing.T) {
	a := Torso(6, 6, 6, 3)
	if a.N != 216 {
		t.Fatalf("N = %d, want 216", a.N)
	}
	// Symmetric (values, not just structure).
	if d := sparse.MaxAbsDiff(a, a.Transpose()); d > 1e-12 {
		t.Errorf("Torso asymmetric by %v", d)
	}
	// Strictly positive diagonal, nonpositive off-diagonals.
	for i := 0; i < a.N; i++ {
		cols, vals := a.Row(i)
		for k, j := range cols {
			if j == i && vals[k] <= 0 {
				t.Fatalf("diagonal %d = %v not positive", i, vals[k])
			}
			if j != i && vals[k] > 0 {
				t.Fatalf("off-diagonal (%d,%d) = %v positive", i, j, vals[k])
			}
		}
	}
	// Weak diagonal dominance with at least some strict rows (boundary).
	strict := 0
	for i := 0; i < a.N; i++ {
		cols, vals := a.Row(i)
		var off, diag float64
		for k, j := range cols {
			if j == i {
				diag = vals[k]
			} else {
				off += math.Abs(vals[k])
			}
		}
		if diag < off-1e-12 {
			t.Fatalf("row %d violates weak dominance", i)
		}
		if diag > off+1e-12 {
			strict++
		}
	}
	if strict == 0 {
		t.Error("no strictly dominant rows; Dirichlet boundary missing")
	}
}

func TestTorsoDeterministicPerSeed(t *testing.T) {
	a := Torso(5, 5, 5, 9)
	b := Torso(5, 5, 5, 9)
	if !a.Equal(b) {
		t.Error("same seed produced different matrices")
	}
	c := Torso(5, 5, 5, 10)
	if a.Equal(c) {
		t.Error("different seeds produced identical matrices (suspicious)")
	}
}

func TestTorsoCoefficientJumps(t *testing.T) {
	// The conductivity field must actually produce varying magnitudes:
	// ratio of largest to smallest diagonal should exceed 10.
	a := Torso(10, 10, 10, 4)
	d := a.Diagonal()
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range d {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi/lo < 10 {
		t.Errorf("diagonal ratio %.2f, want ≥ 10 (jump coefficients missing)", hi/lo)
	}
}

func TestConvDiff2DNonsymmetric(t *testing.T) {
	a := ConvDiff2D(5, 5, 20, 10)
	if d := sparse.MaxAbsDiff(a, a.Transpose()); d == 0 {
		t.Error("ConvDiff2D with nonzero velocity should be nonsymmetric")
	}
	// Structurally symmetric though.
	s := a.SymmetrizeStructure()
	if s.NNZ() != a.NNZ() {
		t.Error("ConvDiff2D should be structurally symmetric")
	}
}

func TestAnisotropic2D(t *testing.T) {
	a := Anisotropic2D(4, 4, 0.01)
	if a.At(0, 0) != 2+2*0.01 {
		t.Errorf("diagonal = %v", a.At(0, 0))
	}
	if a.At(0, 4) != -1 { // x-neighbour (i+1,j) at row distance ny=4
		t.Errorf("x coupling = %v, want -1", a.At(0, 4))
	}
	if a.At(0, 1) != -0.01 {
		t.Errorf("y coupling = %v, want -0.01", a.At(0, 1))
	}
}

func TestRandomSPDPattern(t *testing.T) {
	a := RandomSPDPattern(50, 6, 5)
	if d := sparse.MaxAbsDiff(a, a.Transpose()); d > 1e-12 {
		t.Errorf("RandomSPDPattern asymmetric by %v", d)
	}
	for i := 0; i < a.N; i++ {
		cols, vals := a.Row(i)
		var off, diag float64
		for k, j := range cols {
			if j == i {
				diag = vals[k]
			} else {
				off += math.Abs(vals[k])
			}
		}
		if diag <= off {
			t.Fatalf("row %d not strictly dominant", i)
		}
	}
}

func TestMortonPermutationIsPermutation(t *testing.T) {
	p := mortonPermutation(4, 5, 3, 2)
	sparse.InversePermutation(p) // panics if invalid
	if len(p) != 60 {
		t.Fatalf("length %d, want 60", len(p))
	}
}

func TestInterleave3(t *testing.T) {
	if interleave3(0, 0, 0) != 0 {
		t.Error("zero key")
	}
	// x=1,y=0,z=0 → bit 0; y=1 → bit 1; z=1 → bit 2.
	if interleave3(1, 0, 0) != 1 || interleave3(0, 1, 0) != 2 || interleave3(0, 0, 1) != 4 {
		t.Error("unit keys wrong")
	}
	// Monotone in each coordinate for small values along axes.
	if !(interleave3(2, 0, 0) > interleave3(1, 0, 0)) {
		t.Error("not monotone in x")
	}
}

func TestEvolveFixedPatternDeterministic(t *testing.T) {
	base := Grid2D(9, 7)
	baseVals := append([]float64(nil), base.Vals...)
	seq := Evolve(base, 5, 1e-2, 42)
	if len(seq) != 5 {
		t.Fatalf("Evolve returned %d steps, want 5", len(seq))
	}
	pk := sparse.PatternFingerprint(base)
	prevVF := sparse.ValueFingerprint(base)
	for i, m := range seq {
		if sparse.PatternFingerprint(m) != pk {
			t.Fatalf("step %d changed the sparsity pattern", i)
		}
		vf := sparse.ValueFingerprint(m)
		if vf == prevVF {
			t.Fatalf("step %d has the same values as the previous step", i)
		}
		prevVF = vf
	}
	// The input is untouched.
	for k, v := range base.Vals {
		if v != baseVals[k] {
			t.Fatalf("Evolve modified the input matrix at entry %d", k)
		}
	}
	// Same arguments reproduce the identical sequence bit for bit.
	again := Evolve(base, 5, 1e-2, 42)
	for i := range seq {
		if sparse.ValueFingerprint(seq[i]) != sparse.ValueFingerprint(again[i]) {
			t.Fatalf("step %d is not deterministic across calls", i)
		}
	}
	// A different seed diverges.
	other := Evolve(base, 5, 1e-2, 43)
	if sparse.ValueFingerprint(other[0]) == sparse.ValueFingerprint(seq[0]) {
		t.Fatalf("different seeds produced identical perturbations")
	}
}

func TestEvolveStaysNearDominant(t *testing.T) {
	// Grid2D interior rows are only weakly dominant (4 vs 4), so a
	// perturbed row can dip slightly below strict dominance; what Evolve
	// must guarantee is that after s steps of amplitude amp the
	// diagonal/off-diagonal ratio never falls below ((1−amp)/(1+amp))^s —
	// the worst case of the multiplicative walk.
	const amp, steps = 1e-2, 8
	seq := Evolve(Grid2D(8, 8), steps, amp, 7)
	for i, m := range seq {
		bound := math.Pow((1-amp)/(1+amp), float64(i+1))
		for r := 0; r < m.N; r++ {
			cols, vals := m.Row(r)
			var diag, off float64
			for k, j := range cols {
				if j == r {
					diag = math.Abs(vals[k])
				} else {
					off += math.Abs(vals[k])
				}
			}
			if diag < bound*off {
				t.Fatalf("step %d row %d drifted past the walk bound: |diag|=%g sum|off|=%g bound=%g",
					i, r, diag, off, bound)
			}
		}
	}
}
