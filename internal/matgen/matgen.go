// Package matgen generates the test problems of the paper's evaluation and
// their synthetic stand-ins: the G0 centred-difference grid operator, a
// synthetic TORSO-like inhomogeneous 3-D Laplacian (the original
// finite-element ECG matrix is proprietary — see DESIGN.md for the
// substitution argument), convection–diffusion and anisotropic operators
// for robustness studies.
package matgen

import (
	"math/rand"
	"sort"

	"repro/internal/sparse"
)

// Grid2D returns the 5-point centred-difference Laplacian on an nx×ny grid
// with Dirichlet boundary conditions: the paper's G0 matrix class
// (n = nx·ny equations, ≤ 5 nonzeros per row, diagonally dominant).
func Grid2D(nx, ny int) *sparse.CSR {
	n := nx * ny
	b := sparse.NewBuilder(n, n)
	id := func(i, j int) int { return i*ny + j }
	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			v := id(i, j)
			b.Add(v, v, 4)
			if i > 0 {
				b.Add(v, id(i-1, j), -1)
			}
			if i < nx-1 {
				b.Add(v, id(i+1, j), -1)
			}
			if j > 0 {
				b.Add(v, id(i, j-1), -1)
			}
			if j < ny-1 {
				b.Add(v, id(i, j+1), -1)
			}
		}
	}
	return b.Build()
}

// Grid3D returns the 7-point Laplacian on an nx×ny×nz grid with Dirichlet
// boundary conditions.
func Grid3D(nx, ny, nz int) *sparse.CSR {
	n := nx * ny * nz
	b := sparse.NewBuilder(n, n)
	id := func(i, j, k int) int { return (i*ny+j)*nz + k }
	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			for k := 0; k < nz; k++ {
				v := id(i, j, k)
				b.Add(v, v, 6)
				if i > 0 {
					b.Add(v, id(i-1, j, k), -1)
				}
				if i < nx-1 {
					b.Add(v, id(i+1, j, k), -1)
				}
				if j > 0 {
					b.Add(v, id(i, j-1, k), -1)
				}
				if j < ny-1 {
					b.Add(v, id(i, j+1, k), -1)
				}
				if k > 0 {
					b.Add(v, id(i, j, k-1), -1)
				}
				if k < nz-1 {
					b.Add(v, id(i, j, k+1), -1)
				}
			}
		}
	}
	return b.Build()
}

// Torso returns a synthetic stand-in for the paper's TORSO matrix: a 3-D
// finite-difference discretization of ∇·(σ∇u) on an nx×ny×nz box where the
// conductivity σ jumps by orders of magnitude across two ellipsoidal
// inclusions (lung-like: σ=0.04; heart-like blood pool: σ=6) embedded in a
// background of σ=0.2 — the conductivity contrasts of human-thorax ECG
// models. Nodes are renumbered in a Morton (Z-curve) order with seeded
// jitter, so the matrix has the irregular, non-banded structure of a
// finite-element numbering. The result is structurally symmetric,
// positive definite and substantially worse conditioned than Grid3D.
func Torso(nx, ny, nz int, seed int64) *sparse.CSR {
	n := nx * ny * nz
	id := func(i, j, k int) int { return (i*ny+j)*nz + k }

	sigma := func(i, j, k int) float64 {
		x := (float64(i) + 0.5) / float64(nx)
		y := (float64(j) + 0.5) / float64(ny)
		z := (float64(k) + 0.5) / float64(nz)
		// Two lung-like low-conductivity ellipsoids. The contrast is kept
		// near the upper end of published thorax models so the reduced-
		// scale matrix is as hard for simple preconditioners as the
		// paper's full-scale TORSO.
		if inEllipsoid(x, y, z, 0.30, 0.45, 0.5, 0.16, 0.22, 0.35) ||
			inEllipsoid(x, y, z, 0.70, 0.45, 0.5, 0.16, 0.22, 0.35) {
			return 0.005
		}
		// Heart-like high-conductivity blood pool.
		if inEllipsoid(x, y, z, 0.5, 0.62, 0.5, 0.12, 0.14, 0.18) {
			return 10.0
		}
		return 0.2
	}
	// Skeletal muscle in the outer shell of the thorax is strongly
	// anisotropic (fibres run circumferentially): the through-fibre
	// conductivity is an order of magnitude below the along-fibre value.
	// Diagonal scaling cannot compensate for direction-dependent
	// coefficients, which is what makes the real TORSO hard for simple
	// preconditioners.
	axisScale := func(i, j, k, axis int) float64 {
		x := (float64(i)+0.5)/float64(nx) - 0.5
		y := (float64(j)+0.5)/float64(ny) - 0.5
		if x*x+y*y > 0.16 { // muscle shell
			if axis == 2 { // through-fibre (vertical) direction
				return 0.05
			}
		}
		return 1
	}
	// Harmonic mean of cell conductivities gives the face coefficient —
	// the standard finite-volume treatment of jump coefficients.
	face := func(s1, s2 float64) float64 { return 2 * s1 * s2 / (s1 + s2) }

	b := sparse.NewBuilder(n, n)
	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			for k := 0; k < nz; k++ {
				v := id(i, j, k)
				sv := sigma(i, j, k)
				diag := 0.0
				add := func(u int, su float64, axis int) {
					c := face(sv, su) * axisScale(i, j, k, axis)
					b.Add(v, u, -c)
					diag += c
				}
				if i > 0 {
					add(id(i-1, j, k), sigma(i-1, j, k), 0)
				} else {
					diag += sv * axisScale(i, j, k, 0) // Dirichlet face
				}
				if i < nx-1 {
					add(id(i+1, j, k), sigma(i+1, j, k), 0)
				} else {
					diag += sv * axisScale(i, j, k, 0)
				}
				if j > 0 {
					add(id(i, j-1, k), sigma(i, j-1, k), 1)
				} else {
					diag += sv * axisScale(i, j, k, 1)
				}
				if j < ny-1 {
					add(id(i, j+1, k), sigma(i, j+1, k), 1)
				} else {
					diag += sv * axisScale(i, j, k, 1)
				}
				if k > 0 {
					add(id(i, j, k-1), sigma(i, j, k-1), 2)
				} else {
					diag += sv * axisScale(i, j, k, 2)
				}
				if k < nz-1 {
					add(id(i, j, k+1), sigma(i, j, k+1), 2)
				} else {
					diag += sv * axisScale(i, j, k, 2)
				}
				b.Add(v, v, diag)
			}
		}
	}
	a := b.Build()
	return a.Permute(mortonPermutation(nx, ny, nz, seed))
}

func inEllipsoid(x, y, z, cx, cy, cz, rx, ry, rz float64) bool {
	dx := (x - cx) / rx
	dy := (y - cy) / ry
	dz := (z - cz) / rz
	return dx*dx+dy*dy+dz*dz <= 1
}

// mortonPermutation maps lexicographic grid indices to a Morton (Z-curve)
// ordering with a small random jitter, emulating the locality-preserving
// but non-banded numbering of a finite-element mesh.
func mortonPermutation(nx, ny, nz int, seed int64) []int {
	n := nx * ny * nz
	type entry struct {
		key uint64
		idx int
	}
	entries := make([]entry, 0, n)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			for k := 0; k < nz; k++ {
				idx := (i*ny+j)*nz + k
				key := interleave3(uint64(i), uint64(j), uint64(k))
				// Jitter within a 2³ Morton cell.
				key = key ^ uint64(rng.Intn(8))
				entries = append(entries, entry{key, idx})
			}
		}
	}
	sort.Slice(entries, func(a, b int) bool {
		if entries[a].key != entries[b].key {
			return entries[a].key < entries[b].key
		}
		return entries[a].idx < entries[b].idx
	})
	perm := make([]int, n)
	for newPos, e := range entries {
		perm[e.idx] = newPos
	}
	return perm
}

// interleave3 bit-interleaves three 21-bit coordinates into a Morton key.
func interleave3(x, y, z uint64) uint64 {
	return spread3(x) | spread3(y)<<1 | spread3(z)<<2
}

func spread3(v uint64) uint64 {
	v &= 0x1fffff
	v = (v | v<<32) & 0x1f00000000ffff
	v = (v | v<<16) & 0x1f0000ff0000ff
	v = (v | v<<8) & 0x100f00f00f00f00f
	v = (v | v<<4) & 0x10c30c30c30c30c3
	v = (v | v<<2) & 0x1249249249249249
	return v
}

// ConvDiff2D returns the centred-difference discretization of
// −Δu + px·u_x + py·u_y on an nx×ny grid, scaled by h² so entries are
// O(1) (the classic PDE test-matrix form): a structurally symmetric but
// numerically nonsymmetric operator. Large |px|, |py| (relative to the
// grid spacing) yield the ill-conditioned systems for which the paper
// argues ILUT outperforms structure-only dropping.
func ConvDiff2D(nx, ny int, px, py float64) *sparse.CSR {
	n := nx * ny
	hx := 1.0 / float64(nx+1)
	hy := 1.0 / float64(ny+1)
	// Multiply the operator through by hx·hy: diffusion couplings become
	// O(1) and the convection terms enter as ±p·h/2.
	cxx := hy / hx
	cyy := hx / hy
	gx := px * hy / 2
	gy := py * hx / 2
	b := sparse.NewBuilder(n, n)
	id := func(i, j int) int { return i*ny + j }
	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			v := id(i, j)
			b.Add(v, v, 2*cxx+2*cyy)
			if i > 0 {
				b.Add(v, id(i-1, j), -cxx-gx)
			}
			if i < nx-1 {
				b.Add(v, id(i+1, j), -cxx+gx)
			}
			if j > 0 {
				b.Add(v, id(i, j-1), -cyy-gy)
			}
			if j < ny-1 {
				b.Add(v, id(i, j+1), -cyy+gy)
			}
		}
	}
	return b.Build()
}

// Anisotropic2D returns the 5-point discretization of −u_xx − eps·u_yy.
// Strong anisotropy (eps ≪ 1) degrades simple preconditioners and
// rewards the fill that ILUT keeps.
func Anisotropic2D(nx, ny int, eps float64) *sparse.CSR {
	n := nx * ny
	b := sparse.NewBuilder(n, n)
	id := func(i, j int) int { return i*ny + j }
	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			v := id(i, j)
			b.Add(v, v, 2+2*eps)
			if i > 0 {
				b.Add(v, id(i-1, j), -1)
			}
			if i < nx-1 {
				b.Add(v, id(i+1, j), -1)
			}
			if j > 0 {
				b.Add(v, id(i, j-1), -eps)
			}
			if j < ny-1 {
				b.Add(v, id(i, j+1), -eps)
			}
		}
	}
	return b.Build()
}

// RandomSPDPattern returns a random diagonally dominant, structurally
// symmetric matrix with roughly nnzPerRow off-diagonal entries per row.
// Used by property tests that need a well-posed yet irregular problem.
func RandomSPDPattern(n, nnzPerRow int, seed int64) *sparse.CSR {
	rng := rand.New(rand.NewSource(seed))
	b := sparse.NewBuilder(n, n)
	rowSum := make([]float64, n)
	for i := 0; i < n; i++ {
		for k := 0; k < nnzPerRow/2+1; k++ {
			j := rng.Intn(n)
			if j == i {
				continue
			}
			v := -(0.1 + rng.Float64())
			b.Add(i, j, v)
			b.Add(j, i, v)
			rowSum[i] += -v
			rowSum[j] += -v
		}
	}
	for i := 0; i < n; i++ {
		b.Add(i, i, rowSum[i]+1+rng.Float64())
	}
	return b.Build()
}

// Evolve returns a steps-long sequence of value-perturbed copies of a
// sharing its sparsity pattern exactly — the matrix-sequence workload of
// time-stepping and parameter-sweep traffic, where coefficients drift but
// the mesh (and hence the pattern) is fixed. Step t is a multiplicative
// random walk from step t−1: every stored value is scaled by
// (1 + amp·u) with u drawn uniformly from (−1, 1), so consecutive steps
// stay close (warm starts pay off) while values genuinely change
// (fingerprints and factors differ). The walk is driven by a single
// seeded generator, so a given (a, steps, amp, seed) triple reproduces
// the identical sequence bit for bit. The input matrix is not modified.
// With a diagonally dominant input and amp well under the dominance
// margin, every step stays dominant.
func Evolve(a *sparse.CSR, steps int, amp float64, seed int64) []*sparse.CSR {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*sparse.CSR, steps)
	prev := a
	for t := 0; t < steps; t++ {
		c := prev.Clone()
		for k := range c.Vals {
			u := 2*rng.Float64() - 1
			c.Vals[k] *= 1 + amp*u
		}
		out[t] = c
		prev = c
	}
	return out
}
