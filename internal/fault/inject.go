package fault

import (
	"math/rand"
	"time"

	"repro/internal/pcomm"
	"repro/internal/trace"
)

// World wraps w so every communicator it hands out injects s's faults.
// A nil or disabled spec returns w unchanged, so production paths can
// call this unconditionally.
func (s *Spec) World(w pcomm.World) pcomm.World {
	if !s.Enabled() {
		return w
	}
	return &world{inner: w, spec: s}
}

type world struct {
	inner pcomm.World
	spec  *Spec
}

func (w *world) NumProcs() int                 { return w.inner.NumProcs() }
func (w *world) SetWatchdog(d time.Duration)   { w.inner.SetWatchdog(d) }
func (w *world) SetRecorder(r *trace.Recorder) { w.inner.SetRecorder(r) }

// Run injects the spec into every rank. When the run dies, the
// *pcomm.RunError's dump gains a report of the destructive faults that
// fired — including which transport each drop severed — so a chaos
// failure is diagnosable from the error alone.
func (w *world) Run(f func(pcomm.Comm)) pcomm.Result {
	defer func() {
		if r := recover(); r != nil {
			if re, ok := r.(*pcomm.RunError); ok {
				if report := w.spec.armedReport(); report != "" {
					if re.Dump != "" {
						re.Dump += "\n"
					}
					re.Dump += report
				}
			}
			panic(r)
		}
	}()
	return w.inner.Run(func(c pcomm.Comm) { f(w.spec.wrap(c)) })
}

// wrap builds the per-processor injector. The RNG is seeded from
// (Seed, rank) only, so each rank's fault schedule is a pure function of
// the spec and its own operation sequence — independent of goroutine
// interleaving, hence reproducible.
func (s *Spec) wrap(c pcomm.Comm) pcomm.Comm {
	in := &injector{
		Comm: c,
		spec: s,
		rng:  rand.New(rand.NewSource(s.Seed ^ (int64(c.ID()+1) * 0x5DEECE66D))),
	}
	// The SendSlice/RecvSlice fast path type-asserts RawComm, so the
	// wrapper must mirror the inner communicator's RawComm-ness exactly:
	// always claiming it would hand the modelled backend raw headers it
	// cannot unbox, never claiming it would silently de-optimize the
	// real backend.
	if rc, ok := c.(pcomm.RawComm); ok {
		return &rawInjector{injector: in, raw: rc}
	}
	return in
}

// injector wraps a Comm; the embedded interface passes the local-only
// methods (ID, P, Time, Work, Sleep, Stats, Tracer) straight through,
// and every communication method runs the fault schedule first.
type injector struct {
	pcomm.Comm
	spec *Spec
	rng  *rand.Rand
	ops  int // communicator operations so far, for panic=RANK@NTH
	sent int // sends so far, for drop=RANK@NTH
}

// beforeOp advances the per-rank operation count and fires panic and
// delay faults due at this operation.
func (in *injector) beforeOp(op string) {
	in.ops++
	s := in.spec
	if s.PanicNth > 0 && s.PanicRank == in.ID() && in.ops == s.PanicNth && s.firePanic() {
		s.record(in.ID(), in.ops, "panic", op)
		panic(&InjectedPanic{Rank: in.ID(), Op: in.ops, At: op})
	}
	if s.DelayProb > 0 && in.rng.Float64() < s.DelayProb {
		dt := s.DelayMean * in.rng.ExpFloat64()
		s.record(in.ID(), in.ops, "delay", op)
		// Sleep advances the modelled virtual clock; the wall sleep (a
		// no-op amount on the simulator's scale, capped so huge modelled
		// delays stay testable) perturbs real-backend timing. Neither
		// touches a floating-point value: collectives fold in rank
		// order whenever processors arrive, so results stay bitwise
		// identical under delay-only specs.
		in.Comm.Sleep(dt)
		time.Sleep(min(time.Duration(dt*float64(time.Second)), time.Millisecond))
	}
}

// dropThis reports whether this send is the spec's dropped one. On a
// backend with a real transport (netcomm), the drop also severs the
// connection toward dst — exercising the receiver's half-close handling
// and the sender's redial path — and records which transport it cut; on
// in-memory backends the message is swallowed with nothing to sever.
func (in *injector) dropThis(dst int) bool {
	s := in.spec
	in.sent++
	if s.DropNth > 0 && s.DropRank == in.ID() && in.sent == s.DropNth && s.fireDrop() {
		detail := ""
		if td, ok := in.Comm.(pcomm.TransportDropper); ok {
			detail = td.DropTransport(dst)
		}
		s.recordDetail(in.ID(), in.ops, "drop", "send", detail)
		return true
	}
	return false
}

func (in *injector) Send(dst, tag int, payload any, bytes int) {
	in.beforeOp("send")
	if in.dropThis(dst) {
		return
	}
	in.Comm.Send(dst, tag, payload, bytes)
}

func (in *injector) Recv(src, tag int) any {
	in.beforeOp("recv")
	return in.Comm.Recv(src, tag)
}

func (in *injector) Barrier() {
	in.beforeOp("barrier")
	in.Comm.Barrier()
}

func (in *injector) AllReduceFloat64(v float64, op pcomm.ReduceOp) float64 {
	in.beforeOp("allreduce_float64")
	return in.Comm.AllReduceFloat64(v, op)
}

func (in *injector) AllReduceInt(v int, op pcomm.ReduceOp) int {
	in.beforeOp("allreduce_int")
	return in.Comm.AllReduceInt(v, op)
}

func (in *injector) AllGather(v any, bytes int) []any {
	in.beforeOp("allgather")
	return in.Comm.AllGather(v, bytes)
}

// rawInjector adds the RawComm fast path on backends that provide it,
// injecting the same fault schedule (raw sends count toward drop=, raw
// ops toward panic=).
type rawInjector struct {
	*injector
	raw pcomm.RawComm
}

func (in *rawInjector) SendRaw(dst, tag int, h pcomm.RawSlice, bytes int) {
	in.beforeOp("send")
	if in.dropThis(dst) {
		return
	}
	in.raw.SendRaw(dst, tag, h, bytes)
}

func (in *rawInjector) RecvRaw(src, tag int) (pcomm.RawSlice, any, bool) {
	in.beforeOp("recv")
	return in.raw.RecvRaw(src, tag)
}
