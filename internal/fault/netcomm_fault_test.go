// Chaos coverage for the fault layer over the socket backend: a drop
// fault on netcomm must sever the real transport (not just swallow a
// value in memory), the blocked receiver must surface as a watchdog
// RunError, and the error's dump must name the armed transport — the
// full diagnosis chain `make chaos` relies on when a distributed run
// dies.
package fault_test

import (
	"errors"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/pcomm"
	"repro/internal/pcomm/netcomm"
)

// netcommGroup builds an n-node netcomm group over unix sockets in a
// temp dir. Rendezvous blocks until every node is up, so nodes are
// created concurrently.
func netcommGroup(t *testing.T, n int) []*netcomm.Node {
	t.Helper()
	dir := t.TempDir()
	peers := make([]string, n)
	for i := range peers {
		peers[i] = filepath.Join(dir, "fault"+string(rune('0'+i))+".sock")
	}
	nodes := make([]*netcomm.Node, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			nodes[i], errs[i] = netcomm.NewNode(&netcomm.Spec{
				Raw: "fault:" + dir, Listen: peers[i], Peers: peers, Self: i,
			})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
	}
	t.Cleanup(func() {
		for _, nd := range nodes {
			if err := nd.Close(); err != nil {
				t.Logf("closing node: %v", err)
			}
		}
	})
	return nodes
}

// TestDropFaultSeversNetcommTransport: the injected drop on a
// cross-process send cuts the socket toward the receiver and swallows
// the message; the receiver's hang trips the watchdog, the failure
// unwinds both processes' worlds as *pcomm.RunError, and the dump names
// the severed transport so the chaos failure is diagnosable from the
// error alone.
func TestDropFaultSeversNetcommTransport(t *testing.T) {
	nodes := netcommGroup(t, 2)
	spec, err := fault.Parse("seed=1,drop=0@1")
	if err != nil {
		t.Fatal(err)
	}
	const P = 2
	worlds := make([]pcomm.World, len(nodes))
	for i, nd := range nodes {
		w, err := nd.NewWorld(P)
		if err != nil {
			t.Fatalf("node %d NewWorld: %v", i, err)
		}
		w.SetWatchdog(time.Second)
		worlds[i] = spec.World(w)
	}
	runErrs := make([]error, len(worlds))
	var wg sync.WaitGroup
	wg.Add(len(worlds))
	for i, w := range worlds {
		go func(i int, w pcomm.World) {
			defer wg.Done()
			_, runErrs[i] = pcomm.Guard(w, func(p pcomm.Comm) {
				if p.ID() == 0 {
					p.Send(1, 7, 3.14, 8)
				} else {
					p.Recv(0, 7)
				}
			})
		}(i, w)
	}
	wg.Wait()

	events := spec.Events()
	if len(events) != 1 || events[0].Kind != "drop" {
		t.Fatalf("events = %+v, want exactly one drop", events)
	}
	if d := events[0].Detail; !strings.Contains(d, "netcomm") || !strings.Contains(d, "rank 0→1") {
		t.Errorf("drop event detail %q does not name the severed transport", d)
	}
	for i, err := range runErrs {
		if err == nil {
			t.Fatalf("process %d: dropped send did not fail the run", i)
		}
		var re *pcomm.RunError
		if !errors.As(err, &re) {
			t.Fatalf("process %d: error %v (%T) is not a *pcomm.RunError", i, err, err)
		}
		if !strings.Contains(re.Dump, "transport armed") || !strings.Contains(re.Dump, "netcomm") {
			t.Errorf("process %d: dump does not report the armed transport:\n%s", i, re.Dump)
		}
	}
}

// TestDelayFaultsBitwiseInertOverNetcomm: delay-only specs perturb
// arrival timing through real sockets; rank-order folds must keep the
// reduction bitwise identical to the clean run.
func TestDelayFaultsBitwiseInertOverNetcomm(t *testing.T) {
	nodes := netcommGroup(t, 2)
	const P = 4
	sum := func(w pcomm.World, out *float64) error {
		_, err := pcomm.Guard(w, func(p pcomm.Comm) {
			v := 1.0 / float64(3*p.ID()+1)
			got := p.AllReduceFloat64(v, pcomm.OpSum)
			if p.ID() == 0 {
				*out = got
			}
		})
		return err
	}
	run := func(spec *fault.Spec) float64 {
		t.Helper()
		var out float64
		worlds := make([]pcomm.World, len(nodes))
		for i, nd := range nodes {
			w, err := nd.NewWorld(P)
			if err != nil {
				t.Fatalf("node %d NewWorld: %v", i, err)
			}
			w.SetWatchdog(time.Minute)
			worlds[i] = spec.World(w)
		}
		errs := make([]error, len(worlds))
		var wg sync.WaitGroup
		wg.Add(len(worlds))
		for i, w := range worlds {
			go func(i int, w pcomm.World) {
				defer wg.Done()
				errs[i] = sum(w, &out)
			}(i, w)
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				t.Fatalf("process %d: %v", i, err)
			}
		}
		return out
	}
	clean := run(&fault.Spec{})
	spec, err := fault.Parse("seed=5,delay=0.9@1e-4")
	if err != nil {
		t.Fatal(err)
	}
	delayed := run(spec)
	if len(spec.Events()) == 0 {
		t.Fatal("delay spec injected nothing; test is vacuous")
	}
	if clean != delayed {
		t.Fatalf("delay-only faults changed the fold: %v vs %v", clean, delayed)
	}
}
