// Package fault is a seeded, deterministic fault-injection layer for the
// SPMD stack. A Spec wraps any pcomm.World so that every communicator the
// world hands out misbehaves in a reproducible way:
//
//   - delay: probabilistic per-op stalls. On the modelled backend they
//     advance the virtual clock; on the real backend they sleep wall
//     time. Delays never change floating-point results — collectives
//     fold in rank order regardless of arrival time — so delay-only
//     specs are safe to run under the entire test suite (see the chaos
//     Makefile lane).
//   - drop: one Send of one rank is swallowed. The receiver blocks
//     forever, which the run's watchdog converts into a deadlock dump —
//     the fault that exercises containment of lost messages.
//   - panic: one rank panics with *InjectedPanic at its Nth communicator
//     operation, modelling a crashed processor mid-protocol.
//   - pivot: Spec.PivotScale is wired (by the caller) into
//     ilu.Params.PivotPerturb, scaling every pivot toward zero to force
//     the pivot-repair/breakdown path in core.Factor.
//
// All randomness derives from Spec.Seed and the processor rank, never
// from time or global state, so the same spec injects the same faults at
// the same operations on every run — failures found by a chaos sweep
// replay exactly from their seed.
//
// Destructive faults (drop, panic) fire once per Spec value: a service
// holding a Spec in its Config injects the fault into one run, survives
// it, and then must serve the follow-up request cleanly — exactly the
// acceptance story. Call Reset to rearm.
package fault

import (
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// EnvVar selects a fault spec for test worlds built through
// pcomm/pcommtest and for pilutd, e.g.
// PILUT_FAULTS="seed=7,delay=0.2@1e-5".
const EnvVar = "PILUT_FAULTS"

// Spec describes what to inject. The zero value (and a nil *Spec)
// injects nothing.
type Spec struct {
	// Seed drives every random decision; per-rank generators are derived
	// from it so injection is independent of goroutine scheduling.
	Seed int64

	// DelayProb is the per-operation probability of a delay; DelayMean
	// is the mean delay in seconds (default 10µs when a delay spec sets
	// only the probability).
	DelayProb float64
	DelayMean float64

	// DropRank/DropNth: the DropNth-th Send (1-based) of rank DropRank
	// is silently swallowed. Zero DropNth disables.
	DropRank int
	DropNth  int

	// PanicRank/PanicNth: rank PanicRank panics with *InjectedPanic at
	// its PanicNth-th communicator operation (1-based). Zero PanicNth
	// disables.
	PanicRank int
	PanicNth  int

	// PivotScale multiplies every ILUT pivot before the tiny-pivot floor
	// check when threaded into ilu.Params.PivotPerturb (the service does
	// this for factorization runs). A denormal scale such as 1e-320
	// turns every pivot into a repair, tripping breakdown detection.
	// Zero disables.
	PivotScale float64

	// KillPeerMs is a daemon-level fault: pilutd arms a one-shot timer
	// that hard-stops its HTTP listener (and every open connection)
	// KillPeerMs milliseconds after startup, modelling an owner daemon
	// dying mid-workload while the process stays up — the chaos driver
	// for membership probes, replica promotion and takeover. It does not
	// touch the comm layer (Enabled ignores it). Zero disables.
	KillPeerMs int

	dropFired  atomic.Bool
	panicFired atomic.Bool

	mu     sync.Mutex
	events []Event
}

// Event records one injected fault, for determinism assertions. Seq is
// the per-rank operation count at injection time, so sorting by
// (Rank, Seq) yields a schedule-independent order.
type Event struct {
	Rank int
	Seq  int
	Kind string // "delay", "drop", "panic"
	Op   string // "send", "recv", "barrier", ...
	// Detail names the transport the fault armed, when there was one: a
	// drop on a networked backend severs a real connection and records
	// which (e.g. "netcomm tcp 127.0.0.1:401→127.0.0.1:402 (rank 0→2)").
	// Empty for in-memory backends, whose drop swallows the message with
	// nothing to sever.
	Detail string
}

// InjectedPanic is the panic value of a panic fault. It is an error, so
// errors.As finds it through pcomm.RunError.
type InjectedPanic struct {
	Rank int
	Op   int
	At   string
}

func (e *InjectedPanic) Error() string {
	return fmt.Sprintf("fault: injected panic on proc %d at comm op %d (%s)", e.Rank, e.Op, e.At)
}

// Enabled reports whether the spec injects anything.
func (s *Spec) Enabled() bool {
	if s == nil {
		return false
	}
	return s.DelayProb > 0 || s.DropNth > 0 || s.PanicNth > 0 || s.PivotScale != 0
}

// Parse decodes a spec string: comma- or semicolon-separated clauses
//
//	seed=N            RNG seed (default 1)
//	delay=P[@MEAN]    delay probability, optional mean seconds
//	drop=RANK@NTH     swallow rank's NTH send
//	panic=RANK@NTH    panic rank at its NTH comm op
//	pivot=SCALE       pivot perturbation factor
//	killpeer=MS       hard-stop the daemon's HTTP listener after MS ms
//
// An empty string parses to a disabled spec.
func Parse(text string) (*Spec, error) {
	s := &Spec{Seed: 1, DelayMean: 1e-5}
	for _, clause := range strings.FieldsFunc(text, func(r rune) bool { return r == ',' || r == ';' }) {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		key, val, ok := strings.Cut(clause, "=")
		if !ok {
			return nil, fmt.Errorf("fault: clause %q is not key=value", clause)
		}
		switch key {
		case "seed":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("fault: seed %q: %v", val, err)
			}
			s.Seed = n
		case "delay":
			prob, mean, err := probAt(val, s.DelayMean)
			if err != nil {
				return nil, fmt.Errorf("fault: delay %q: %v", val, err)
			}
			s.DelayProb, s.DelayMean = prob, mean
		case "drop":
			rank, nth, err := rankAt(val)
			if err != nil {
				return nil, fmt.Errorf("fault: drop %q: %v", val, err)
			}
			s.DropRank, s.DropNth = rank, nth
		case "panic":
			rank, nth, err := rankAt(val)
			if err != nil {
				return nil, fmt.Errorf("fault: panic %q: %v", val, err)
			}
			s.PanicRank, s.PanicNth = rank, nth
		case "pivot":
			scale, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return nil, fmt.Errorf("fault: pivot %q: %v", val, err)
			}
			s.PivotScale = scale
		case "killpeer":
			ms, err := strconv.Atoi(val)
			if err != nil || ms < 1 {
				return nil, fmt.Errorf("fault: killpeer %q must be a positive millisecond count", val)
			}
			s.KillPeerMs = ms
		default:
			return nil, fmt.Errorf("fault: unknown clause %q", key)
		}
	}
	return s, nil
}

func probAt(val string, defMean float64) (prob, mean float64, err error) {
	probStr, meanStr, has := strings.Cut(val, "@")
	prob, err = strconv.ParseFloat(probStr, 64)
	if err != nil || prob < 0 || prob > 1 {
		return 0, 0, fmt.Errorf("probability %q must be in [0,1]", probStr)
	}
	mean = defMean
	if has {
		mean, err = strconv.ParseFloat(meanStr, 64)
		if err != nil || mean <= 0 {
			return 0, 0, fmt.Errorf("mean %q must be a positive duration in seconds", meanStr)
		}
	}
	return prob, mean, nil
}

func rankAt(val string) (rank, nth int, err error) {
	rankStr, nthStr, has := strings.Cut(val, "@")
	if !has {
		return 0, 0, fmt.Errorf("want RANK@NTH, got %q", val)
	}
	rank, err = strconv.Atoi(rankStr)
	if err != nil || rank < 0 {
		return 0, 0, fmt.Errorf("rank %q must be a non-negative integer", rankStr)
	}
	nth, err = strconv.Atoi(nthStr)
	if err != nil || nth < 1 {
		return 0, 0, fmt.Errorf("nth %q must be a positive integer", nthStr)
	}
	return rank, nth, nil
}

// FromEnv parses PILUT_FAULTS. An unset or empty variable yields a nil
// spec (inject nothing).
func FromEnv() (*Spec, error) {
	text := os.Getenv(EnvVar)
	if text == "" {
		return nil, nil
	}
	s, err := Parse(text)
	if err != nil {
		return nil, err
	}
	return s, nil
}

// String renders the spec back into Parse's grammar.
func (s *Spec) String() string {
	if s == nil {
		return ""
	}
	parts := []string{fmt.Sprintf("seed=%d", s.Seed)}
	if s.DelayProb > 0 {
		parts = append(parts, fmt.Sprintf("delay=%g@%g", s.DelayProb, s.DelayMean))
	}
	if s.DropNth > 0 {
		parts = append(parts, fmt.Sprintf("drop=%d@%d", s.DropRank, s.DropNth))
	}
	if s.PanicNth > 0 {
		parts = append(parts, fmt.Sprintf("panic=%d@%d", s.PanicRank, s.PanicNth))
	}
	if s.PivotScale != 0 {
		parts = append(parts, fmt.Sprintf("pivot=%g", s.PivotScale))
	}
	if s.KillPeerMs > 0 {
		parts = append(parts, fmt.Sprintf("killpeer=%d", s.KillPeerMs))
	}
	return strings.Join(parts, ",")
}

// KillPeerAfter reports the delay after which the daemon should
// hard-stop its listener, and whether the fault is armed at all. The
// comm layer ignores this fault entirely — it belongs to the process
// hosting the HTTP surface.
func (s *Spec) KillPeerAfter() (d time.Duration, ok bool) {
	if s == nil || s.KillPeerMs <= 0 {
		return 0, false
	}
	return time.Duration(s.KillPeerMs) * time.Millisecond, true
}

// Reset rearms one-shot faults and clears the event log, so one Spec can
// drive repeated identical runs in determinism tests.
func (s *Spec) Reset() {
	if s == nil {
		return
	}
	s.dropFired.Store(false)
	s.panicFired.Store(false)
	s.mu.Lock()
	s.events = nil
	s.mu.Unlock()
}

// Events returns the injected-fault log sorted by (Rank, Seq) — a
// schedule-independent order, equal across same-seed runs.
func (s *Spec) Events() []Event {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	out := append([]Event(nil), s.events...)
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Rank != out[j].Rank {
			return out[i].Rank < out[j].Rank
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}

func (s *Spec) record(rank, seq int, kind, op string) {
	s.recordDetail(rank, seq, kind, op, "")
}

func (s *Spec) recordDetail(rank, seq int, kind, op, detail string) {
	s.mu.Lock()
	s.events = append(s.events, Event{Rank: rank, Seq: seq, Kind: kind, Op: op, Detail: detail})
	s.mu.Unlock()
}

// armedReport renders the destructive faults this spec has fired, with
// the transport each one armed, for appending to a RunError's dump: when
// a chaos run dies, the diagnosis says which injected fault killed it
// and which connection (if any) was cut.
func (s *Spec) armedReport() string {
	var lines []string
	for _, e := range s.Events() {
		if e.Kind == "delay" {
			continue
		}
		line := fmt.Sprintf("  rank %d, comm op %d: injected %s at %q", e.Rank, e.Seq, e.Kind, e.Op)
		if e.Detail != "" {
			line += " — transport armed: " + e.Detail
		} else if e.Kind == "drop" {
			line += " — in-memory transport, message swallowed with nothing to sever"
		}
		lines = append(lines, line)
	}
	if len(lines) == 0 {
		return ""
	}
	return "fault injection active (spec " + s.String() + "):\n" + strings.Join(lines, "\n")
}

func (s *Spec) fireDrop() bool  { return s.dropFired.CompareAndSwap(false, true) }
func (s *Spec) firePanic() bool { return s.panicFired.CompareAndSwap(false, true) }
