// Chaos tests for the fault-injection layer itself: determinism of the
// injected schedule, bitwise inertness of delay-only specs, and the
// containment contract (injected panics and drops surface as structured
// *pcomm.RunError values, never as process death or leaked goroutines)
// on both communication backends.
package fault_test

import (
	"errors"
	"math"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/ilu"
	"repro/internal/machine"
	"repro/internal/matgen"
	"repro/internal/partition"
	"repro/internal/pcomm"
	"repro/internal/pcomm/backend"
	"repro/internal/pcomm/realcomm"
	"repro/internal/sparse"
)

func TestParseRoundTrip(t *testing.T) {
	cases := []string{
		"seed=7,delay=0.25@0.001",
		"seed=3,drop=1@4",
		"panic=2@9,pivot=1e-320",
		"seed=11,delay=0.1,drop=0@2,panic=1@5,pivot=1e-300",
		"killpeer=750",
		"seed=4,delay=0.1,killpeer=1500",
	}
	for _, text := range cases {
		s, err := fault.Parse(text)
		if err != nil {
			t.Fatalf("Parse(%q): %v", text, err)
		}
		s2, err := fault.Parse(s.String())
		if err != nil {
			t.Fatalf("Parse(String(%q)=%q): %v", text, s.String(), err)
		}
		if s.String() != s2.String() {
			t.Errorf("round trip of %q: %q != %q", text, s.String(), s2.String())
		}
	}
	for _, bad := range []string{
		"delay=2",      // probability out of range
		"drop=1",       // missing @NTH
		"panic=-1@3",   // negative rank
		"panic=1@0",    // nth must be ≥1
		"pivot=x",      // not a float
		"bogus=1",      // unknown clause
		"delay=0.5@-1", // negative mean
		"seed",         // not key=value
		"killpeer=0",   // must be ≥1 ms
		"killpeer=x",   // not an integer
	} {
		if _, err := fault.Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted a malformed spec", bad)
		}
	}
}

// TestKillPeerAfter pins the daemon-level contract: killpeer is invisible
// to the communication layer (Enabled stays false on a killpeer-only
// spec, so no fault world is wrapped) and KillPeerAfter converts the
// clause to a timer delay only when armed.
func TestKillPeerAfter(t *testing.T) {
	var nilSpec *fault.Spec
	if d, ok := nilSpec.KillPeerAfter(); ok || d != 0 {
		t.Fatalf("nil spec: KillPeerAfter = %v, %v; want 0, false", d, ok)
	}
	s, err := fault.Parse("killpeer=250")
	if err != nil {
		t.Fatal(err)
	}
	if s.Enabled() {
		t.Error("killpeer-only spec reports Enabled; the comm layer would wrap a fault world for nothing")
	}
	d, ok := s.KillPeerAfter()
	if !ok || d != 250*time.Millisecond {
		t.Errorf("KillPeerAfter = %v, %v; want 250ms, true", d, ok)
	}
	s2, err := fault.Parse("seed=7,delay=0.2")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s2.KillPeerAfter(); ok {
		t.Error("spec without killpeer reports an armed kill timer")
	}
}

// backends lists the communication backends every containment property
// must hold on.
var backends = []string{backend.Modelled, backend.Real}

func world(t *testing.T, kind string, p int) pcomm.World {
	t.Helper()
	w, err := backend.New(kind, p, machine.Zero())
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// factorAndSolveBits runs the parallel factorization of a small grid
// under spec (nil for the clean baseline) and returns the bit patterns
// of the gathered L and U values.
func factorAndSolveBits(t *testing.T, kind string, spec *fault.Spec) ([]uint64, []uint64) {
	t.Helper()
	const P = 4
	a := matgen.Grid2D(12, 12)
	g := graph.FromMatrix(a)
	part := partition.KWay(g, P, partition.Options{Seed: 5})
	lay, err := dist.NewLayout(a.N, P, part)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := core.NewPlan(a, lay)
	if err != nil {
		t.Fatal(err)
	}
	pcs := make([]*core.ProcPrecond, P)
	w := spec.World(world(t, kind, P))
	w.Run(func(p pcomm.Comm) {
		pcs[p.ID()] = core.Factor(p, plan, core.Options{
			Params: ilu.Params{M: 8, Tau: 1e-4, K: 2}, Seed: 7,
		})
	})
	f, _, err := core.GatherFactors(pcs)
	if err != nil {
		t.Fatal(err)
	}
	bits := func(c *sparse.CSR) []uint64 {
		out := make([]uint64, len(c.Vals))
		for i, v := range c.Vals {
			out[i] = math.Float64bits(v)
		}
		return out
	}
	return bits(f.L), bits(f.U)
}

// TestDelayFaultsAreBitwiseInert is the core safety property of the
// chaos lane: delays reorder arrival times but collectives fold in rank
// order, so a delay-only spec must leave every factor value bitwise
// unchanged against the fault-free baseline on both backends.
func TestDelayFaultsAreBitwiseInert(t *testing.T) {
	for _, kind := range backends {
		cleanL, cleanU := factorAndSolveBits(t, kind, nil)
		spec, err := fault.Parse("seed=42,delay=0.3@1e-5")
		if err != nil {
			t.Fatal(err)
		}
		delayL, delayU := factorAndSolveBits(t, kind, spec)
		if len(spec.Events()) == 0 {
			t.Fatalf("%s: delay spec injected nothing; test is vacuous", kind)
		}
		for i := range cleanL {
			if cleanL[i] != delayL[i] {
				t.Fatalf("%s: L[%d] changed under delay-only faults", kind, i)
			}
		}
		for i := range cleanU {
			if cleanU[i] != delayU[i] {
				t.Fatalf("%s: U[%d] changed under delay-only faults", kind, i)
			}
		}
	}
}

// TestSameSeedSameSchedule: the injected event schedule is a pure
// function of (spec, rank, op sequence) — two runs of the same program
// under fresh specs with the same seed inject identical faults, on
// either backend.
func TestSameSeedSameSchedule(t *testing.T) {
	for _, kind := range backends {
		run := func() []fault.Event {
			spec, err := fault.Parse("seed=9,delay=0.4@1e-6")
			if err != nil {
				t.Fatal(err)
			}
			factorAndSolveBits(t, kind, spec)
			return spec.Events()
		}
		ev1, ev2 := run(), run()
		if len(ev1) == 0 {
			t.Fatalf("%s: no events injected; test is vacuous", kind)
		}
		if len(ev1) != len(ev2) {
			t.Fatalf("%s: event counts differ: %d vs %d", kind, len(ev1), len(ev2))
		}
		for i := range ev1 {
			if ev1[i] != ev2[i] {
				t.Fatalf("%s: event %d differs: %+v vs %+v", kind, i, ev1[i], ev2[i])
			}
		}
	}
}

// TestInjectedPanicSurfacesAsRunError: a panic fault kills one rank
// mid-protocol; the world must unwind every sibling and report a
// structured *pcomm.RunError naming the rank, wrapping the
// *fault.InjectedPanic, with the injection site in the stack.
func TestInjectedPanicSurfacesAsRunError(t *testing.T) {
	for _, kind := range backends {
		spec, err := fault.Parse("seed=1,panic=1@3")
		if err != nil {
			t.Fatal(err)
		}
		w := spec.World(world(t, kind, 4))
		_, runErr := pcomm.Guard(w, func(p pcomm.Comm) {
			for i := 0; i < 5; i++ {
				p.Barrier()
			}
		})
		if runErr == nil {
			t.Fatalf("%s: injected panic did not fail the run", kind)
		}
		var re *pcomm.RunError
		if !errors.As(runErr, &re) {
			t.Fatalf("%s: error is %T, want *pcomm.RunError", kind, runErr)
		}
		if re.Rank != 1 {
			t.Errorf("%s: failing rank = %d, want 1", kind, re.Rank)
		}
		var ip *fault.InjectedPanic
		if !errors.As(runErr, &ip) || ip.Rank != 1 || ip.Op != 3 {
			t.Errorf("%s: cause = %#v, want InjectedPanic{Rank:1, Op:3}", kind, re.Cause)
		}
		if !strings.Contains(re.Stack, "beforeOp") {
			t.Errorf("%s: root-cause stack does not show the injection site:\n%s", kind, re.Stack)
		}
	}
}

// TestDroppedSendTripsWatchdog: swallowing one message blocks its
// receiver forever; the watchdog must convert that hang into a
// *machine.DeadlockError (via RunError) instead of hanging the process.
func TestDroppedSendTripsWatchdog(t *testing.T) {
	for _, kind := range backends {
		spec, err := fault.Parse("seed=1,drop=0@1")
		if err != nil {
			t.Fatal(err)
		}
		w := spec.World(world(t, kind, 2))
		w.SetWatchdog(500 * time.Millisecond)
		_, runErr := pcomm.Guard(w, func(p pcomm.Comm) {
			if p.ID() == 0 {
				p.Send(1, 7, 3.14, 8)
			} else {
				p.Recv(0, 7)
			}
		})
		if runErr == nil {
			t.Fatalf("%s: dropped send did not fail the run", kind)
		}
		// Each backend has its own DeadlockError type; accept either.
		var mde *machine.DeadlockError
		var rde *realcomm.DeadlockError
		if !errors.As(runErr, &mde) && !errors.As(runErr, &rde) {
			t.Fatalf("%s: error %v (%T) does not wrap a DeadlockError", kind, runErr, runErr)
		}
		var re *pcomm.RunError
		if !errors.As(runErr, &re) {
			t.Fatalf("%s: error is not a *pcomm.RunError", kind)
		}
		if re.Dump == "" {
			t.Errorf("%s: deadlock RunError carries no state dump", kind)
		}
	}
}

// TestNoGoroutineLeakAcrossFaults sweeps seeds over panic and drop
// faults on both backends and checks the goroutine count settles back:
// faults may kill runs, never leak their processor goroutines.
func TestNoGoroutineLeakAcrossFaults(t *testing.T) {
	before := runtime.NumGoroutine()
	for _, kind := range backends {
		for seed := int64(1); seed <= 3; seed++ {
			for _, text := range []string{"panic=0@2", "panic=2@4", "drop=1@1"} {
				spec, err := fault.Parse(text)
				if err != nil {
					t.Fatal(err)
				}
				spec.Seed = seed
				w := spec.World(world(t, kind, 4))
				w.SetWatchdog(300 * time.Millisecond)
				if _, runErr := pcomm.Guard(w, func(p pcomm.Comm) {
					for i := 0; i < 4; i++ {
						p.Barrier()
					}
					if p.ID() == 1 {
						p.Send(0, 1, 1.0, 8)
					}
					if p.ID() == 0 {
						p.Recv(1, 1)
					}
				}); runErr == nil {
					t.Fatalf("%s %s seed=%d: fault injected nothing", kind, text, seed)
				}
			}
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if g := runtime.NumGoroutine(); g <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: before=%d now=%d", before, runtime.NumGoroutine())
		}
		time.Sleep(20 * time.Millisecond)
	}
}
