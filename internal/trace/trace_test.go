package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	p := r.Proc(3)
	if p != nil {
		t.Fatalf("nil recorder returned a tracer: %v", p)
	}
	if p.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	// Every recording method must be a no-op on the nil tracer.
	p.Span("c", "n", 0, 1)
	p.Instant("c", "n", 0)
	p.Counter("c", "n", 0, 1)
	if r.NumProcs() != 0 {
		t.Fatalf("nil recorder has %d procs", r.NumProcs())
	}
	if evs := r.Events(); evs != nil {
		t.Fatalf("nil recorder produced events: %v", evs)
	}
}

func TestRecorderMergeOrder(t *testing.T) {
	r := NewRecorder(2)
	// Interleave events across procs with ties on the timestamp.
	r.Proc(1).Instant("c", "b", 2.0)
	r.Proc(0).Instant("c", "a", 2.0)
	r.Proc(0).Span("c", "s", 0.5, 1.5, I("x", 7))
	r.Proc(1).Instant("c", "c", 0.5)

	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("got %d events, want 4", len(evs))
	}
	// Sorted by (Ts, Proc, Seq): span@0.5/p0, instant@0.5/p1, then the two
	// instants at 2.0 in proc order.
	wantNames := []string{"s", "c", "a", "b"}
	for i, ev := range evs {
		if ev.Name != wantNames[i] {
			t.Fatalf("event %d is %q, want %q (order %+v)", i, ev.Name, wantNames[i], evs)
		}
	}
	if evs[0].Dur != 1.0 {
		t.Fatalf("span duration %v, want 1.0", evs[0].Dur)
	}
	if len(evs[0].Args) != 1 || evs[0].Args[0].Key != "x" || evs[0].Args[0].Num != 7 {
		t.Fatalf("span args %+v", evs[0].Args)
	}
}

func TestWriteChromeValidJSON(t *testing.T) {
	r := NewRecorder(2)
	r.Proc(0).Span("factor", "phase1.interior", 0, 0.25, I("rows", 10), F("flops", 123.5))
	r.Proc(1).Instant("machine", "send", 0.1, I("dst", 0), S("why", "test"))
	r.Proc(0).Counter("machine", "queue", 0.2, 3)

	var buf bytes.Buffer
	if err := WriteChrome(&buf, Part{Name: "factorization", Rec: r}, Part{Name: "empty", Rec: nil}); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  *float64       `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}

	byPh := map[string]int{}
	var haveProcessName, haveSpan bool
	for _, ev := range doc.TraceEvents {
		byPh[ev.Ph]++
		if ev.Ph == "M" && ev.Name == "process_name" {
			haveProcessName = true
			if ev.Args["name"] != "factorization" {
				t.Fatalf("process_name args %v", ev.Args)
			}
		}
		if ev.Ph == "X" {
			haveSpan = true
			if ev.Dur == nil || *ev.Dur != 0.25*1e6 {
				t.Fatalf("span dur %v, want %v µs", ev.Dur, 0.25*1e6)
			}
			if ev.Ts != 0 || ev.Args["rows"] != float64(10) {
				t.Fatalf("span ts=%v args=%v", ev.Ts, ev.Args)
			}
		}
	}
	if !haveProcessName || !haveSpan {
		t.Fatalf("missing metadata or span events: %v", byPh)
	}
	if byPh["i"] != 1 || byPh["C"] != 1 {
		t.Fatalf("instant/counter counts wrong: %v", byPh)
	}
	// 1 process_name + 2 thread_name + 3 events; the nil part contributes
	// nothing.
	if len(doc.TraceEvents) != 6 {
		t.Fatalf("got %d events, want 6", len(doc.TraceEvents))
	}
	if strings.Count(buf.String(), "\n") != 1 {
		t.Fatalf("expected single-line output with trailing newline")
	}
}

func TestStringArgs(t *testing.T) {
	r := NewRecorder(1)
	r.Proc(0).Instant("c", "n", 0, S("label", "hello"))
	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"label":"hello"`) {
		t.Fatalf("string arg missing from output: %s", buf.String())
	}
}
