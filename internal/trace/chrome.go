package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// Part names one recorder's events for a multi-machine trace file: the
// factorization run and the solve run of cmd/pilut become two Chrome
// "processes" on a shared timeline.
type Part struct {
	Name string
	Rec  *Recorder
}

// chromeEvent is one entry of the Chrome trace-event JSON array. Ts and
// Dur are microseconds; we map virtual seconds 1:1 onto trace seconds, so
// one modelled second renders as one second in Perfetto.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

func argsMap(args []Arg) map[string]any {
	if len(args) == 0 {
		return nil
	}
	m := make(map[string]any, len(args))
	for _, a := range args {
		if a.IsStr {
			m[a.Key] = a.Str
		} else {
			m[a.Key] = a.Num
		}
	}
	return m
}

const secToUs = 1e6

// WriteChrome writes the recorders' events as a Chrome trace-event JSON
// object ({"traceEvents": [...]}), loadable in Perfetto or
// chrome://tracing. Each part becomes one process (pid) named after it;
// each virtual processor becomes one thread (tid) of that process.
func WriteChrome(w io.Writer, parts ...Part) error {
	bw := newErrWriter(w)
	bw.writeString(`{"displayTimeUnit":"ms","traceEvents":[`)
	enc := json.NewEncoder(discardNewline{bw})
	first := true
	emit := func(ev chromeEvent) {
		if !first {
			bw.writeString(",")
		}
		first = false
		if bw.err == nil {
			if err := enc.Encode(ev); err != nil {
				bw.err = err
			}
		}
	}

	for pid, part := range parts {
		if part.Rec == nil {
			continue
		}
		emit(chromeEvent{
			Name: "process_name", Ph: "M", Pid: pid, Tid: 0,
			Args: map[string]any{"name": part.Name},
		})
		for tid := 0; tid < part.Rec.NumProcs(); tid++ {
			emit(chromeEvent{
				Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
				Args: map[string]any{"name": fmt.Sprintf("proc %d", tid)},
			})
		}
		for _, ev := range part.Rec.Events() {
			ce := chromeEvent{
				Name: ev.Name, Cat: ev.Cat, Pid: pid, Tid: ev.Proc,
				Ts: ev.Ts * secToUs, Args: argsMap(ev.Args),
			}
			switch ev.Kind {
			case KindSpan:
				ce.Ph = "X"
				dur := ev.Dur * secToUs
				ce.Dur = &dur
			case KindInstant:
				ce.Ph = "i"
				ce.S = "t" // thread-scoped instant
			case KindCounter:
				ce.Ph = "C"
			}
			emit(ce)
		}
	}
	bw.writeString("]}\n")
	return bw.err
}

// WriteChromeTrace writes this recorder's events as a single-process
// Chrome trace.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	return WriteChrome(w, Part{Name: "machine", Rec: r})
}

// errWriter latches the first write error so the emit loop stays simple.
type errWriter struct {
	w   io.Writer
	err error
}

func newErrWriter(w io.Writer) *errWriter { return &errWriter{w: w} }

func (e *errWriter) writeString(s string) {
	if e.err != nil {
		return
	}
	_, e.err = io.WriteString(e.w, s)
}

func (e *errWriter) Write(p []byte) (int, error) {
	if e.err != nil {
		return len(p), nil
	}
	n, err := e.w.Write(p)
	if err != nil {
		e.err = err
		return len(p), nil
	}
	return n, nil
}

// discardNewline strips the trailing newline json.Encoder appends after
// every value, keeping the event array compact.
type discardNewline struct{ w io.Writer }

func (d discardNewline) Write(p []byte) (int, error) {
	n := len(p)
	for n > 0 && p[n-1] == '\n' {
		n--
	}
	if _, err := d.w.Write(p[:n]); err != nil {
		return 0, err
	}
	return len(p), nil
}
