// Package trace is a zero-dependency event and span recorder keyed on the
// virtual clocks of the simulated machine. It gives every phase of the
// reproduction — interior factorization, per-level interface elimination,
// MIS rounds, Krylov iterations, service batches — a place to record what
// happened and when, in *modelled* time, without perturbing the LogP cost
// model: recording never touches a processor's clock, and the nil-recorder
// fast path makes every call site a single pointer comparison when tracing
// is off.
//
// Each virtual processor owns a private ProcTracer and appends to it from
// its own goroutine, so recording takes no locks during a run; the Recorder
// merges the per-processor buffers into one deterministic event sequence
// after the machine run completes. Exports are the Chrome trace-event JSON
// format (see chrome.go), loadable in Perfetto or chrome://tracing.
package trace

import "sort"

// Kind discriminates the event shapes of the Chrome trace-event format we
// use: complete spans ("X"), instants ("i") and counters ("C").
type Kind uint8

// Event kinds.
const (
	KindSpan Kind = iota
	KindInstant
	KindCounter
)

// Arg is one key/value annotation on an event. Numeric values are held as
// float64 (Chrome renders them natively); string values are tagged.
type Arg struct {
	Key   string
	Num   float64
	Str   string
	IsStr bool
}

// F annotates an event with a float64 value.
func F(key string, v float64) Arg { return Arg{Key: key, Num: v} }

// I annotates an event with an integer value.
func I(key string, v int) Arg { return Arg{Key: key, Num: float64(v)} }

// S annotates an event with a string value.
func S(key, v string) Arg { return Arg{Key: key, Str: v, IsStr: true} }

// Event is one recorded trace event. Ts and Dur are virtual seconds (the
// machine's modelled clock), not wall time.
type Event struct {
	Kind Kind
	Cat  string
	Name string
	Proc int
	Ts   float64
	Dur  float64 // spans only
	Args []Arg
	Seq  uint64 // per-processor program order, for a stable merge
}

// ProcTracer is one virtual processor's private event buffer. A nil
// ProcTracer is valid and records nothing — every method begins with a nil
// check, so call sites need no guards for correctness. Hot paths should
// still test Enabled() before building variadic args, so that a disabled
// recorder costs one branch and zero allocations.
type ProcTracer struct {
	proc   int
	seq    uint64
	events []Event
}

// Enabled reports whether events are being recorded.
func (t *ProcTracer) Enabled() bool { return t != nil }

// Span records a completed span covering [start, end] in virtual seconds.
func (t *ProcTracer) Span(cat, name string, start, end float64, args ...Arg) {
	if t == nil {
		return
	}
	t.events = append(t.events, Event{
		Kind: KindSpan, Cat: cat, Name: name, Proc: t.proc,
		Ts: start, Dur: end - start, Args: args, Seq: t.seq,
	})
	t.seq++
}

// Instant records a point event at ts virtual seconds.
func (t *ProcTracer) Instant(cat, name string, ts float64, args ...Arg) {
	if t == nil {
		return
	}
	t.events = append(t.events, Event{
		Kind: KindInstant, Cat: cat, Name: name, Proc: t.proc,
		Ts: ts, Args: args, Seq: t.seq,
	})
	t.seq++
}

// Counter records a named counter sample at ts virtual seconds.
func (t *ProcTracer) Counter(cat, name string, ts float64, value float64) {
	if t == nil {
		return
	}
	t.events = append(t.events, Event{
		Kind: KindCounter, Cat: cat, Name: name, Proc: t.proc,
		Ts: ts, Args: []Arg{F("value", value)}, Seq: t.seq,
	})
	t.seq++
}

// Recorder collects the events of one machine run. Create one per run with
// NewRecorder and attach it before the run starts; read it only after the
// run completes (the per-processor buffers are written concurrently while
// processors execute).
type Recorder struct {
	procs []*ProcTracer
}

// NewRecorder returns a recorder for nprocs virtual processors.
func NewRecorder(nprocs int) *Recorder {
	r := &Recorder{procs: make([]*ProcTracer, nprocs)}
	for i := range r.procs {
		r.procs[i] = &ProcTracer{proc: i}
	}
	return r
}

// Proc returns processor id's tracer. A nil Recorder (tracing off) returns
// a nil ProcTracer, which records nothing.
func (r *Recorder) Proc(id int) *ProcTracer {
	if r == nil || id < 0 || id >= len(r.procs) {
		return nil
	}
	return r.procs[id]
}

// NumProcs reports how many processors the recorder covers.
func (r *Recorder) NumProcs() int {
	if r == nil {
		return 0
	}
	return len(r.procs)
}

// Events merges every processor's buffer into one sequence ordered by
// (Ts, Proc, Seq). The ordering is fully determined by the virtual clocks
// and per-processor program order, so two identical runs produce identical
// sequences — the determinism tests rely on this.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	total := 0
	for _, pt := range r.procs {
		total += len(pt.events)
	}
	out := make([]Event, 0, total)
	for _, pt := range r.procs {
		out = append(out, pt.events...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := &out[i], &out[j]
		if a.Ts != b.Ts {
			return a.Ts < b.Ts
		}
		if a.Proc != b.Proc {
			return a.Proc < b.Proc
		}
		return a.Seq < b.Seq
	})
	return out
}
