// Package ilu implements the serial incomplete-factorization algorithms of
// the paper: Saad's dual-threshold ILUT(m, t) (Algorithm 1), the modified
// ILUT*(m, t, k) dropping rule, the static-pattern ILU(0) and level-of-fill
// ILU(k) baselines, and the triangular solves used to apply the resulting
// preconditioners.
package ilu

import (
	"fmt"

	"repro/internal/sparse"
)

// Factors holds an incomplete LU factorization M = L·U. L is unit lower
// triangular with the unit diagonal implicit (only strictly-lower entries
// stored); U is upper triangular and stores its diagonal.
type Factors struct {
	L *sparse.CSR
	U *sparse.CSR
}

// N returns the system size.
func (f *Factors) N() int { return f.L.N }

// NNZ reports the stored entries in L and U combined (the implicit unit
// diagonal of L is not counted).
func (f *Factors) NNZ() int { return f.L.NNZ() + f.U.NNZ() }

// SolveL solves L·x = b by forward substitution (x and b may alias).
func (f *Factors) SolveL(x, b []float64) {
	l := f.L
	if len(x) != l.N || len(b) != l.N {
		panic("ilu: SolveL dimension mismatch")
	}
	for i := 0; i < l.N; i++ {
		s := b[i]
		cols, vals := l.Row(i)
		for k, j := range cols {
			s -= vals[k] * x[j]
		}
		x[i] = s
	}
}

// SolveU solves U·x = b by backward substitution (x and b may alias).
func (f *Factors) SolveU(x, b []float64) {
	u := f.U
	if len(x) != u.N || len(b) != u.N {
		panic("ilu: SolveU dimension mismatch")
	}
	for i := u.N - 1; i >= 0; i-- {
		s := b[i]
		var diag float64
		cols, vals := u.Row(i)
		for k, j := range cols {
			switch {
			case j == i:
				diag = vals[k]
			case j > i:
				s -= vals[k] * x[j]
			default:
				panic(fmt.Sprintf("ilu: U has sub-diagonal entry (%d,%d)", i, j))
			}
		}
		if diag == 0 {
			panic(fmt.Sprintf("ilu: zero pivot in U at row %d", i))
		}
		x[i] = s / diag
	}
}

// Solve applies the preconditioner: x = U⁻¹·L⁻¹·b. x and b may alias.
func (f *Factors) Solve(x, b []float64) {
	f.SolveL(x, b)
	f.SolveU(x, x)
}

// Product returns the explicit product L·U (with L's implicit unit
// diagonal), used by tests to measure ‖A − LU‖.
func (f *Factors) Product() *sparse.CSR {
	n := f.N()
	b := sparse.NewBuilder(n, n)
	// (L+I)·U: row i of product = U_i + Σ_j L_ij · U_j.
	for i := 0; i < n; i++ {
		ucols, uvals := f.U.Row(i)
		for k, j := range ucols {
			b.Add(i, j, uvals[k])
		}
		lcols, lvals := f.L.Row(i)
		for k, j := range lcols {
			ujcols, ujvals := f.U.Row(j)
			for kk, jj := range ujcols {
				b.Add(i, jj, lvals[k]*ujvals[kk])
			}
		}
	}
	return b.Build()
}

// CheckStructure validates the triangular shape invariants; tests call it
// after every factorization path.
func (f *Factors) CheckStructure() error {
	n := f.N()
	if f.U.N != n || f.L.M != n || f.U.M != n {
		return fmt.Errorf("ilu: inconsistent factor dimensions")
	}
	for i := 0; i < n; i++ {
		cols, _ := f.L.Row(i)
		for _, j := range cols {
			if j >= i {
				return fmt.Errorf("ilu: L has entry (%d,%d) on or above diagonal", i, j)
			}
		}
		ucols, uvals := f.U.Row(i)
		hasDiag := false
		for k, j := range ucols {
			if j < i {
				return fmt.Errorf("ilu: U has entry (%d,%d) below diagonal", i, j)
			}
			if j == i {
				hasDiag = true
				if uvals[k] == 0 {
					return fmt.Errorf("ilu: U has explicit zero pivot at %d", i)
				}
			}
		}
		if !hasDiag {
			return fmt.Errorf("ilu: U missing diagonal at row %d", i)
		}
	}
	return nil
}

// FillFactor reports NNZ(L+U) / NNZ(A), the storage overhead of the
// preconditioner relative to the matrix.
func (f *Factors) FillFactor(a *sparse.CSR) float64 {
	return float64(f.NNZ()) / float64(a.NNZ())
}
