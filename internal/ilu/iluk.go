package ilu

import (
	"container/heap"
	"fmt"
	"math"

	"repro/internal/sparse"
)

// ILU0 computes the zero-fill incomplete factorization: the L and U
// patterns are exactly the pattern of A. It is the cheap static-pattern
// baseline the paper contrasts with threshold dropping.
func ILU0(a *sparse.CSR) (*Factors, Stats, error) {
	pattern, err := symbolicILUK(a, 0)
	if err != nil {
		return nil, Stats{}, err
	}
	return factorOnPattern(a, pattern)
}

// ILUK computes the level-of-fill factorization ILU(k): fill entries are
// admitted while their fill level does not exceed lev. ILUK(a, 0) equals
// ILU0(a).
func ILUK(a *sparse.CSR, lev int) (*Factors, Stats, error) {
	if lev < 0 {
		return nil, Stats{}, fmt.Errorf("ilu: negative fill level %d", lev)
	}
	pattern, err := symbolicILUK(a, lev)
	if err != nil {
		return nil, Stats{}, err
	}
	return factorOnPattern(a, pattern)
}

// symbolicILUK computes the union pattern of L+U for ILU(k) by symbolic
// elimination: lev(fill at j via pivot k) = lev(i,k) + lev(k,j) + 1, kept
// while ≤ maxLev. The returned matrix stores levels as values (diagonal
// included with level 0) — downstream only uses the pattern.
func symbolicILUK(a *sparse.CSR, maxLev int) (*sparse.CSR, error) {
	if a.N != a.M {
		return nil, fmt.Errorf("ilu: symbolic ILU(k) requires a square matrix")
	}
	n := a.N
	// levRow[j] = current level of position j in the working row; −1 absent.
	levRow := make([]int, n)
	for j := range levRow {
		levRow[j] = -1
	}
	var touched []int
	var h colHeap

	rowCols := make([][]int, n)
	rowLevs := make([][]float64, n)
	// uPat[k] lists the strictly-upper pattern of row k with levels, used
	// when row k acts as pivot.
	uPat := make([][]int, n)
	uLev := make([][]int, n)

	for i := 0; i < n; i++ {
		cols, _ := a.Row(i)
		hasDiag := false
		h = h[:0]
		touched = touched[:0]
		for _, j := range cols {
			levRow[j] = 0
			touched = append(touched, j)
			if j < i {
				h = append(h, j)
			}
			if j == i {
				hasDiag = true
			}
		}
		if !hasDiag {
			levRow[i] = 0
			touched = append(touched, i)
		}
		heap.Init(&h)
		for h.Len() > 0 {
			k := heap.Pop(&h).(int)
			lik := levRow[k]
			if lik < 0 || lik > maxLev {
				continue
			}
			for idx, j := range uPat[k] {
				nl := lik + uLev[k][idx] + 1
				if nl > maxLev {
					continue
				}
				if levRow[j] == -1 {
					levRow[j] = nl
					touched = append(touched, j)
					if j < i {
						heap.Push(&h, j)
					}
				} else if nl < levRow[j] {
					levRow[j] = nl
				}
			}
		}
		// Collect the surviving pattern (level ≤ maxLev).
		var rc []int
		var rl []float64
		var up []int
		var ul []int
		// touched may contain duplicates? No: positions are appended only
		// when transitioning from −1.
		sortInts(touched)
		for _, j := range touched {
			l := levRow[j]
			levRow[j] = -1
			if l < 0 || l > maxLev {
				continue
			}
			rc = append(rc, j)
			rl = append(rl, float64(l))
			if j > i {
				up = append(up, j)
				ul = append(ul, l)
			}
		}
		rowCols[i], rowLevs[i] = rc, rl
		uPat[i], uLev[i] = up, ul
	}
	return sparse.FromRows(n, n, rowCols, rowLevs), nil
}

func sortInts(a []int) {
	// Insertion sort: the touched lists are short and nearly sorted.
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}

// factorOnPattern runs the numeric IKJ elimination restricted to a fixed
// pattern (which must include every diagonal position).
func factorOnPattern(a *sparse.CSR, pattern *sparse.CSR) (*Factors, Stats, error) {
	n := a.N
	var st Stats
	w := sparse.NewWorkRow(n)
	lCols := make([][]int, n)
	lVals := make([][]float64, n)
	uCols := make([][]int, n)
	uVals := make([][]float64, n)
	var h colHeap

	for i := 0; i < n; i++ {
		pcols, _ := pattern.Row(i)
		// Load a_i onto the fixed pattern (positions outside it are lost).
		for _, j := range pcols {
			w.Set(j, 0)
		}
		acols, avals := a.Row(i)
		for k, j := range acols {
			if w.Has(j) {
				w.Set(j, avals[k])
			}
		}
		h = h[:0]
		for _, j := range pcols {
			if j < i {
				h = append(h, j)
			}
		}
		heap.Init(&h)
		for h.Len() > 0 {
			k := heap.Pop(&h).(int)
			piv := uVals[k][0]
			wk := w.Get(k) / piv
			st.Flops++
			w.Set(k, wk)
			ukc := uCols[k]
			ukv := uVals[k]
			for idx := 1; idx < len(ukc); idx++ {
				j := ukc[idx]
				if w.Has(j) { // static pattern: update only existing slots
					w.Add(j, -wk*ukv[idx])
					st.Flops += 2
				}
			}
		}
		lCols[i], lVals[i] = w.Gather(0, i, nil, nil)
		d := w.Get(i)
		if d == 0 || math.Abs(d) < 1e-300 {
			d = pivotFloor(0)
			st.FixedPivot++
		}
		uc := []int{i}
		uv := []float64{d}
		w.Drop(i)
		uc, uv = w.Gather(i, n, uc, uv)
		uCols[i], uVals[i] = uc, uv
		w.Reset()
	}
	f := &Factors{
		L: sparse.FromRows(n, n, lCols, lVals),
		U: sparse.FromRows(n, n, uCols, uVals),
	}
	return f, st, nil
}

// Jacobi returns the diagonal preconditioner as degenerate Factors (L
// empty, U the diagonal of A): the paper's baseline in Table 3.
func Jacobi(a *sparse.CSR) (*Factors, error) {
	if a.N != a.M {
		return nil, fmt.Errorf("ilu: Jacobi requires a square matrix")
	}
	n := a.N
	d := a.Diagonal()
	uc := make([][]int, n)
	uv := make([][]float64, n)
	for i := 0; i < n; i++ {
		if d[i] == 0 {
			return nil, fmt.Errorf("ilu: Jacobi: zero diagonal at %d", i)
		}
		uc[i] = []int{i}
		uv[i] = []float64{d[i]}
	}
	return &Factors{
		L: sparse.NewCSR(n, n),
		U: sparse.FromRows(n, n, uc, uv),
	}, nil
}
