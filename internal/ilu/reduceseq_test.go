package ilu

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/matgen"
	"repro/internal/sparse"
)

// TestEliminateRowSeqExactPartialElimination verifies the phase-1 kernel
// against dense partial Gaussian elimination: eliminating a *sequential*
// pivot block (with intra-block fill) from a trailing row.
func TestEliminateRowSeqExactPartialElimination(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 10
	blk := 6 // pivot block [0, 6)
	a := matgen.RandomSPDPattern(n, 4, 9)
	d := a.Dense()
	_ = rng

	// Build the pivot block's U rows by dense LU restricted to the block,
	// keeping couplings to the trailing columns.
	lu := make([][]float64, n)
	for i := range lu {
		lu[i] = append([]float64(nil), d[i]...)
	}
	for k := 0; k < blk; k++ {
		for i := k + 1; i < blk; i++ {
			if lu[i][k] == 0 {
				continue
			}
			lu[i][k] /= lu[k][k]
			for j := k + 1; j < n; j++ {
				lu[i][j] -= lu[i][k] * lu[k][j]
			}
		}
	}
	var st Stats
	pivots := make([]*URow, blk)
	for k := 0; k < blk; k++ {
		var cols []int
		var vals []float64
		cols = append(cols, k)
		vals = append(vals, lu[k][k])
		for j := k + 1; j < n; j++ {
			if lu[k][j] != 0 {
				cols = append(cols, j)
				vals = append(vals, lu[k][j])
			}
		}
		r, err := FactorPivotRow(k, cols, vals, 0, 0, &st)
		if err != nil {
			t.Fatal(err)
		}
		rr := r
		pivots[k] = &rr
	}

	// Eliminate the block from row 7 via the kernel.
	w := sparse.NewWorkRow(n)
	aCols, aVals := a.Row(7)
	lC, lV, rC, rV := EliminateRowSeq(w, 7, aCols, aVals,
		func(k int) *URow { return pivots[k] }, 0, blk, 0, 0, 0, &st)

	// Dense reference: eliminate pivots 0..5 from row 7 (with fill chasing).
	want := append([]float64(nil), d[7]...)
	for k := 0; k < blk; k++ {
		if want[k] == 0 {
			continue
		}
		want[k] /= lu[k][k]
		for j := k + 1; j < n; j++ {
			want[j] -= want[k] * lu[k][j]
		}
	}
	got := make([]float64, n)
	for i, c := range lC {
		got[c] = lV[i]
	}
	for i, c := range rC {
		got[c] = rV[i]
	}
	for j := 0; j < n; j++ {
		if math.Abs(got[j]-want[j]) > 1e-10 {
			t.Fatalf("col %d: got %v, want %v", j, got[j], want[j])
		}
	}
}

// TestEliminateRowSeqChasesFill constructs a case where the row has no
// entry at pivot 1 initially, but elimination of pivot 0 creates one; the
// heap-driven kernel must then eliminate pivot 1 too (EliminateRow's
// single sweep would not).
func TestEliminateRowSeqChasesFill(t *testing.T) {
	// Pivots: u0 = [2, 0, 1(at col1? no)] ... construct explicitly:
	// u0: diag 2, coupling to col 1 (value 4) and col 2 (value 6)
	// u1: diag 3, coupling to col 2 (value 9)
	// row 2: entries at col 0 (value 2) and col 2 (diag 1); no entry at 1.
	var st Stats
	u0 := &URow{Col: 0, Diag: 2, Cols: []int{1, 2}, Vals: []float64{4, 6}}
	u1 := &URow{Col: 1, Diag: 3, Cols: []int{2}, Vals: []float64{9}}
	pivots := []*URow{u0, u1}
	w := sparse.NewWorkRow(3)
	lC, lV, rC, rV := EliminateRowSeq(w, 2,
		[]int{0, 2}, []float64{2, 1},
		func(k int) *URow { return pivots[k] }, 0, 2, 0, 0, 0, &st)
	// Multiplier l20 = 2/2 = 1; fill at col1 = 0 − 1·4 = −4; at col2 = 1 − 1·6 = −5.
	// Then l21 = −4/3; col2 = −5 − (−4/3)·9 = −5 + 12 = 7.
	wantL := map[int]float64{0: 1, 1: -4.0 / 3.0}
	for i, c := range lC {
		if math.Abs(lV[i]-wantL[c]) > 1e-12 {
			t.Fatalf("L col %d = %v, want %v", c, lV[i], wantL[c])
		}
		delete(wantL, c)
	}
	if len(wantL) != 0 {
		t.Fatalf("missing L entries: %v (got cols %v)", wantL, lC)
	}
	if len(rC) != 1 || rC[0] != 2 || math.Abs(rV[0]-7) > 1e-12 {
		t.Fatalf("reduced row = %v/%v, want [2]/[7]", rC, rV)
	}
}

// TestEliminateRowSeqDroppingRules checks the 1st and 3rd rules behave
// like EliminateRow's.
func TestEliminateRowSeqDroppingRules(t *testing.T) {
	var st Stats
	u0 := &URow{Col: 0, Diag: 100, Cols: []int{2}, Vals: []float64{5}}
	w := sparse.NewWorkRow(3)
	// Multiplier 0.5/100 = 0.005 < tau=0.1 → dropped by rule 1.
	lC, _, rC, rV := EliminateRowSeq(w, 1,
		[]int{0, 1}, []float64{0.5, 3},
		func(k int) *URow { return u0 }, 0, 1, 0.1, 0, 0, &st)
	if len(lC) != 0 {
		t.Fatalf("L = %v, want empty (rule 1)", lC)
	}
	if len(rC) != 1 || rV[0] != 3 {
		t.Fatalf("reduced = %v/%v", rC, rV)
	}

	// kcap bounds the reduced part.
	u0b := &URow{Col: 0, Diag: 1, Cols: []int{2, 3, 4, 5, 6}, Vals: []float64{9, 8, 7, 6, 5}}
	w2 := sparse.NewWorkRow(7)
	_, _, rC2, _ := EliminateRowSeq(w2, 1,
		[]int{0, 1}, []float64{1, 2},
		func(k int) *URow { return u0b }, 0, 1, 0, 1, 2, &st)
	// reduced cap = kcap·m = 2 plus the protected diagonal 1.
	if len(rC2) > 3 {
		t.Fatalf("reduced part %v exceeds kcap·m + diag", rC2)
	}
	hasDiag := false
	for _, c := range rC2 {
		if c == 1 {
			hasDiag = true
		}
	}
	if !hasDiag {
		t.Fatal("diagonal dropped")
	}
}

// TestEliminateRowSeqMissingPivot checks the defensive panic.
func TestEliminateRowSeqMissingPivot(t *testing.T) {
	var st Stats
	w := sparse.NewWorkRow(2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	EliminateRowSeq(w, 1, []int{0, 1}, []float64{1, 1},
		func(k int) *URow { return nil }, 0, 1, 0, 0, 0, &st)
}

// TestHeapHelpers exercises the bespoke heap directly.
func TestHeapHelpers(t *testing.T) {
	var h colHeap
	for _, v := range []int{5, 1, 9, 3, 7, 2} {
		heapPush(&h, v)
	}
	prev := -1
	for h.Len() > 0 {
		v := heapPop(&h)
		if v < prev {
			t.Fatalf("heap pop out of order: %d after %d", v, prev)
		}
		prev = v
	}
	h = colHeap{9, 4, 6, 1}
	heapInit(&h)
	if heapPop(&h) != 1 {
		t.Fatal("heapInit did not establish order")
	}
}
