package ilu

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/matgen"
	"repro/internal/sparse"
)

func TestILUTPNoPivotEqualsILUTQuality(t *testing.T) {
	// permTol ≤ 1 disables pivoting: the factors must reproduce A exactly
	// with no dropping, like CompleteLU.
	a := matgen.Grid2D(6, 6)
	r, err := ILUTP(a, Params{M: 0, Tau: 0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for j, p := range r.Pos {
		if p != j {
			t.Fatalf("unexpected column swap at %d without pivoting", j)
		}
	}
	if d := sparse.MaxAbsDiff(r.Factors.Product(), a); d > 1e-8 {
		t.Errorf("‖LU − A‖∞ = %v", d)
	}
}

func TestILUTPExactWithPivoting(t *testing.T) {
	// With pivoting enabled and no dropping, LU must equal A·Q exactly.
	rng := rand.New(rand.NewSource(3))
	n := 25
	b := sparse.NewBuilder(n, n)
	for i := 0; i < n; i++ {
		for k := 0; k < 4; k++ {
			b.Add(i, rng.Intn(n), rng.NormFloat64())
		}
		b.Add(i, (i+7)%n, 3+rng.Float64()) // strong off-diagonal
	}
	a := b.Build()
	r, err := ILUTP(a, Params{M: 0, Tau: 0}, 100)
	if err != nil {
		t.Fatal(err)
	}
	sparse.InversePermutation(r.Pos) // valid permutation
	// Build A·Q: entry (i, j) of A lands at column Pos[j].
	aq := sparse.NewBuilder(n, n)
	for i := 0; i < n; i++ {
		cols, vals := a.Row(i)
		for k, j := range cols {
			aq.Add(i, r.Pos[j], vals[k])
		}
	}
	if d := sparse.MaxAbsDiff(r.Factors.Product(), aq.Build()); d > 1e-6 {
		t.Errorf("‖LU − AQ‖∞ = %v", d)
	}
}

func TestILUTPSolvesZeroDiagonalSystem(t *testing.T) {
	// A permuted identity-like system with zero diagonal everywhere:
	// plain ILUT must fall back to pivot floors (inaccurate), ILUTP
	// pivots and solves exactly.
	n := 12
	b := sparse.NewBuilder(n, n)
	for i := 0; i < n; i++ {
		b.Add(i, (i+1)%n, 2.0)
		b.Add(i, (i+3)%n, 0.5)
	}
	a := b.Build()
	r, err := ILUTP(a, Params{M: 0, Tau: 0}, 100)
	if err != nil {
		t.Fatal(err)
	}
	xTrue := make([]float64, n)
	for i := range xTrue {
		xTrue[i] = math.Cos(float64(i))
	}
	rhs := make([]float64, n)
	a.MulVec(rhs, xTrue)
	x := make([]float64, n)
	r.Solve(x, rhs)
	for i := range x {
		if math.Abs(x[i]-xTrue[i]) > 1e-8 {
			t.Fatalf("x[%d] = %v, want %v", i, x[i], xTrue[i])
		}
	}
	if r.Stats.FixedPivot != 0 {
		t.Errorf("ILUTP still needed %d pivot floors", r.Stats.FixedPivot)
	}
}

func TestILUTPSolveUndoesPermutation(t *testing.T) {
	a := matgen.ConvDiff2D(8, 8, 25, -10)
	r, err := ILUTP(a, Params{M: 0, Tau: 0}, 10)
	if err != nil {
		t.Fatal(err)
	}
	xTrue := sparse.Ones(a.N)
	rhs := make([]float64, a.N)
	a.MulVec(rhs, xTrue)
	x := make([]float64, a.N)
	r.Solve(x, rhs)
	for i := range x {
		if math.Abs(x[i]-1) > 1e-7 {
			t.Fatalf("x[%d] = %v, want 1", i, x[i])
		}
	}
}

func TestILUTPRespectsCaps(t *testing.T) {
	a := matgen.Grid2D(10, 10)
	r, err := ILUTP(a, Params{M: 4, Tau: 1e-6}, 50)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < a.N; i++ {
		if got := r.Factors.L.RowNNZ(i); got > 4 {
			t.Fatalf("L row %d has %d > 4 entries", i, got)
		}
		if got := r.Factors.U.RowNNZ(i); got > 5 {
			t.Fatalf("U row %d has %d > 5 entries", i, got)
		}
	}
	if err := r.Factors.CheckStructure(); err != nil {
		t.Fatal(err)
	}
}

func TestILUTPErrors(t *testing.T) {
	if _, err := ILUTP(sparse.NewCSR(2, 3), Params{}, 10); err == nil {
		t.Error("non-square accepted")
	}
	if _, err := ILUTP(matgen.Grid2D(2, 2), Params{Tau: -1}, 10); err == nil {
		t.Error("negative tolerance accepted")
	}
	if _, err := ILUTP(sparse.NewCSR(2, 2), Params{}, 10); err == nil {
		t.Error("empty row accepted")
	}
}
