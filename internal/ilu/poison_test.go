package ilu

import (
	"math/rand"
	"reflect"
	"testing"
)

// Scratch-poisoning property tests (ISSUE 8): a reused Scratch must be
// indistinguishable from a fresh one. Between factorization passes the
// poison pass overwrites every byte a correct kernel may not read with
// NaN and sentinel garbage; a kernel that consumes stale scratch state
// then produces NaNs (which reflect.DeepEqual never matches) or absurd
// column indices, so a bitwise run-to-run comparison catches the leak.

type poisonRowOut struct {
	lC []int
	lV []float64
	u  URow
}

// runPoisonRows eliminates and factors a deterministic pseudo-random row
// set against a fixed pivot panel, returning every output for bitwise
// comparison.
func runPoisonRows(t *testing.T, s *Scratch) []poisonRowOut {
	t.Helper()
	const n = 96
	pivots := make([]URow, 8)
	for k := range pivots {
		pivots[k] = URow{
			Col:  k,
			Diag: 2 + float64(k)*0.125,
			Cols: []int{8 + 2*k, 32 + k, 64 + 3*k},
			Vals: []float64{0.5, -0.25, 1.0 / float64(k+2)},
		}
	}
	pivot := func(k int) *URow { return &pivots[k] }
	rng := rand.New(rand.NewSource(42))
	st := &Stats{}
	var out []poisonRowOut
	for r := 0; r < 60; r++ {
		i := 8 + rng.Intn(n-8)
		var cols []int
		var vals []float64
		for j := 0; j < n; j++ {
			if j == i {
				cols = append(cols, j)
				vals = append(vals, 6+rng.Float64())
			} else if rng.Float64() < 0.15 {
				cols = append(cols, j)
				vals = append(vals, rng.NormFloat64())
			}
		}
		var o poisonRowOut
		if r%2 == 0 {
			o.lC, o.lV, _, _ = s.EliminateRowSeq(i, cols, vals, pivot, 0, 8, 1e-3, 5, 2, st)
		} else {
			o.lC, o.lV, _, _ = s.EliminateRow(i, cols, vals, nil, nil, pivot, 0, 8, 1e-3, 5, 2, st)
		}
		_, _, rC, rV := s.EliminateRowStatic(i, cols, vals, nil, nil, pivot, 0, 8, st)
		u, err := s.FactorPivotRow(i, rC, rV, 1e-3, 5, 0, st)
		if err != nil {
			t.Fatalf("row %d: FactorPivotRow: %v", r, err)
		}
		o.u = u
		out = append(out, o)
	}
	return out
}

// TestScratchPoisonBitwise factors the same row set with a fresh Scratch
// and with one reused Scratch that is poisoned between passes, and
// demands bitwise-identical outputs every time.
func TestScratchPoisonBitwise(t *testing.T) {
	base := runPoisonRows(t, NewScratch(96))

	s := NewScratch(96)
	for pass := 0; pass < 3; pass++ {
		got := runPoisonRows(t, s)
		if !reflect.DeepEqual(got, base) {
			t.Fatalf("pass %d on a reused+poisoned scratch differs bitwise from a fresh scratch", pass)
		}
		// Simulate the pool's reuse protocol, then scribble.
		s.Sanitize()
		s.DetachOutputs()
		s.Poison()
	}
}

// TestScratchPoisonPanicsOnLiveState pins the other half of the Poison
// contract: poisoning a scratch whose working row still holds live data
// must panic rather than silently corrupt it.
func TestScratchPoisonPanicsOnLiveState(t *testing.T) {
	s := NewScratch(16)
	s.W().Scatter([]int{3}, []float64{1.5})
	defer func() {
		if recover() == nil {
			t.Fatal("Poison on a dirty working row did not panic")
		}
	}()
	s.Poison()
}
