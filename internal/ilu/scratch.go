package ilu

import (
	"math"

	"repro/internal/sparse"
)

// Scratch bundles every piece of reusable working memory the row kernels
// need, so the steady-state factorization loop allocates zero bytes per
// row: the dense working row of Algorithm 1, the fill-selection heap of
// the sequential kernel, gather staging buffers, the pivot-row selection
// buffer, and an output arena the factored rows are carved from.
//
// Ownership rules (DESIGN.md §13):
//
//   - The volatile parts (working row, heap, staging buffers) hold no
//     live data between kernel calls and may be reused across
//     factorizations — core pools them per processor.
//   - The output arena (out) owns the memory of every row a kernel
//     returned. It must live as long as those rows do, so a pooled
//     Scratch detaches it before reuse (DetachOutputs) and the carved
//     rows keep their chunks alive through ordinary GC liveness.
//
// A zero Scratch is not usable; call NewScratch. The legacy free
// functions (EliminateRow, FactorPivotRowPerturbed, ...) wrap these
// methods with a transient scratch in fresh mode, preserving their
// historical exact-fit allocation behavior for callers that factor a
// handful of rows.
type Scratch struct {
	w *sparse.WorkRow
	h colHeap // fill-selection heap of EliminateRowSeq

	// gather staging: factored part (lc/lv) and reduced part (rc/rv) of
	// the current row, reused across rows.
	lc []int
	lv []float64
	rc []int
	rv []float64

	// pivot-row selection buffer of FactorPivotRow.
	ents []pivEnt

	// out is the output arena; fresh selects exact-fit allocations
	// instead (the legacy wrapper mode).
	out   slab
	fresh bool
}

// pivEnt is one surviving off-diagonal entry of a pivot row.
type pivEnt struct {
	col int
	val float64
}

// NewScratch returns a Scratch whose working row covers n positions.
func NewScratch(n int) *Scratch {
	return &Scratch{w: sparse.NewWorkRow(n)}
}

// Grow ensures the working row covers at least n positions. The scratch
// must hold no live state (kernels always leave it reset).
func (s *Scratch) Grow(n int) { s.w.Resize(n) }

// W exposes the working row (read-mostly: tests and the ILU(0) static
// planner use it directly).
func (s *Scratch) W() *sparse.WorkRow { return s.w }

// DetachOutputs releases the output arena to its carved rows: the
// scratch forgets the chunks, the rows keep them alive, and the next
// factorization starts a fresh arena. Must be called before a Scratch is
// reused for a new factorization whose predecessor's rows are still
// live.
func (s *Scratch) DetachOutputs() { s.out = slab{} }

// Sanitize resets every volatile part, so a Scratch recovered from a
// panicking factorization is safe to reuse. Idempotent and cheap (the
// working-row reset is O(nnz of the interrupted row)).
func (s *Scratch) Sanitize() {
	s.w.Reset()
	s.h = s.h[:0]
	s.lc, s.lv = s.lc[:0], s.lv[:0]
	s.rc, s.rv = s.rc[:0], s.rv[:0]
	s.ents = s.ents[:0]
}

// Poison verifies the volatile state is clean and then overwrites every
// byte a correct kernel may not read — spare capacities of the heap,
// staging buffers, selection buffer, and the unused tail of the output
// arena — with NaN/sentinel garbage. A kernel that reads stale scratch
// state after a Poison produces NaNs or absurd indices, which the
// bitwise run-to-run property tests catch. Panics if live state is
// found.
func (s *Scratch) Poison() {
	s.w.PoisonClean()
	const sentinel = -0x5A5A5A5A
	nan := math.NaN()
	hh := s.h[:cap(s.h)]
	for k := range hh {
		hh[k] = sentinel
	}
	s.h = s.h[:0]
	ic := s.lc[:cap(s.lc)]
	for k := range ic {
		ic[k] = sentinel
	}
	ic = s.rc[:cap(s.rc)]
	for k := range ic {
		ic[k] = sentinel
	}
	fv := s.lv[:cap(s.lv)]
	for k := range fv {
		fv[k] = nan
	}
	fv = s.rv[:cap(s.rv)]
	for k := range fv {
		fv[k] = nan
	}
	s.lc, s.lv, s.rc, s.rv = s.lc[:0], s.lv[:0], s.rc[:0], s.rv[:0]
	ee := s.ents[:cap(s.ents)]
	for k := range ee {
		ee[k] = pivEnt{col: sentinel, val: nan}
	}
	s.ents = s.ents[:0]
	s.out.poisonTail(nan, sentinel)
}

// slab is a chunked output arena: rows are carved from large chunks so
// the per-row cost is a copy, not an allocation. Carved slices are
// capped (three-index) so a stray append copies out instead of
// clobbering a neighbour. There is no free: rows live until the arena
// and every carved row are unreachable together.
type slab struct {
	ints   []int
	floats []float64
}

// slabChunk is the default chunk size in elements. Large enough that
// chunk allocation is far off the per-row path, small enough not to
// strand memory on tiny factorizations.
const slabChunk = 4096

// carveInts returns an uninitialized length-n int slice from the arena.
//
//pilut:hotpath
func (s *slab) carveInts(n int) []int {
	if cap(s.ints)-len(s.ints) < n {
		c := slabChunk
		if n > c {
			c = n
		}
		s.ints = make([]int, 0, c) //pilutlint:ok hotalloc amortized chunk refill; per-row carves are slice arithmetic
	}
	off := len(s.ints)
	s.ints = s.ints[:off+n]
	return s.ints[off : off+n : off+n]
}

// carveFloats returns an uninitialized length-n float64 slice.
//
//pilut:hotpath
func (s *slab) carveFloats(n int) []float64 {
	if cap(s.floats)-len(s.floats) < n {
		c := slabChunk
		if n > c {
			c = n
		}
		s.floats = make([]float64, 0, c) //pilutlint:ok hotalloc amortized chunk refill; per-row carves are slice arithmetic
	}
	off := len(s.floats)
	s.floats = s.floats[:off+n]
	return s.floats[off : off+n : off+n]
}

// poisonTail scribbles over the unused remainder of the current chunks.
func (s *slab) poisonTail(nan float64, sentinel int) {
	tail := s.ints[len(s.ints):cap(s.ints)]
	for k := range tail {
		tail[k] = sentinel
	}
	ftail := s.floats[len(s.floats):cap(s.floats)]
	for k := range ftail {
		ftail[k] = nan
	}
}

// discardAll resets the used counters, reusing the chunks in place.
// Only valid when every row ever carved from the arena is dead — the
// alloc-regression guards use it to run a kernel in a loop without
// growing the arena.
func (s *slab) discardAll() {
	s.ints = s.ints[:0]
	s.floats = s.floats[:0]
}

// takeInts stores a gathered row: nil for an empty row (matching
// Gather-into-nil), an exact-fit copy in fresh mode, an arena carve
// otherwise.
//
//pilut:hotpath
func (s *Scratch) takeInts(src []int) []int {
	if len(src) == 0 {
		return nil
	}
	if s.fresh {
		out := make([]int, len(src)) //pilutlint:ok hotalloc legacy exact-fit mode used by the free-function wrappers only
		copy(out, src)
		return out
	}
	out := s.out.carveInts(len(src))
	copy(out, src)
	return out
}

//pilut:hotpath
func (s *Scratch) takeFloats(src []float64) []float64 {
	if len(src) == 0 {
		return nil
	}
	if s.fresh {
		out := make([]float64, len(src)) //pilutlint:ok hotalloc legacy exact-fit mode used by the free-function wrappers only
		copy(out, src)
		return out
	}
	out := s.out.carveFloats(len(src))
	copy(out, src)
	return out
}

// sortEntsByMag sorts descending by |val|, ties toward smaller column —
// the 2nd-rule selection order. Insertion sort: rows are short (≤ m plus
// slack), the comparator is a total order, and no closure or interface
// boxing touches the hot path.
//
//pilut:hotpath
func sortEntsByMag(ents []pivEnt) {
	for i := 1; i < len(ents); i++ {
		e := ents[i]
		ae := math.Abs(e.val)
		j := i - 1
		for j >= 0 {
			aj := math.Abs(ents[j].val)
			if aj > ae || (aj == ae && ents[j].col < e.col) {
				break
			}
			ents[j+1] = ents[j]
			j--
		}
		ents[j+1] = e
	}
}

// sortEntsByCol sorts ascending by column (columns are distinct).
//
//pilut:hotpath
func sortEntsByCol(ents []pivEnt) {
	for i := 1; i < len(ents); i++ {
		e := ents[i]
		j := i - 1
		for j >= 0 && ents[j].col > e.col {
			ents[j+1] = ents[j]
			j--
		}
		ents[j+1] = e
	}
}
