package ilu

import (
	"container/heap"
	"fmt"
	"math"

	"repro/internal/sparse"
)

// Params configures the threshold factorizations.
type Params struct {
	// M is the maximum number of entries kept per row in each of L and U
	// (the diagonal of U does not count). M ≤ 0 means unlimited.
	M int
	// Tau is the drop threshold t. Entries smaller in magnitude than
	// Tau × ‖a_i‖₂ (relative to the original row) are dropped.
	Tau float64
	// K, when positive, enables the ILUT* rule: rows of the successively
	// reduced matrices keep at most K·M entries. K ≤ 0 reproduces plain
	// ILUT (reduced rows bounded only by the threshold). K only affects
	// the two-phase/reduced-matrix driver, not the plain serial ILUT.
	K int
	// PivotPerturb, when nonzero, multiplies every computed pivot before
	// the tiny-pivot floor check. It exists for the fault-injection layer
	// (internal/fault, Spec.PivotScale): a denormal factor such as 1e-320
	// deterministically turns every pivot into a repair, driving the
	// breakdown-detection and recovery-ladder paths. Zero — the default,
	// and the only production value — is bitwise inert.
	PivotPerturb float64
}

// Validate reports configuration errors.
func (p Params) Validate() error {
	if p.Tau < 0 {
		return fmt.Errorf("ilu: negative drop tolerance %v", p.Tau)
	}
	return nil
}

// maxFill returns the per-row cap as a concrete bound.
func (p Params) maxFill(n int) int {
	if p.M <= 0 {
		return n
	}
	return p.M
}

// Stats reports what a factorization did; the parallel driver aggregates
// these per virtual processor. Dropped is the total over every dropping
// rule; the DroppedRuleN counters attribute drops to the paper's three
// rules where the kernel can tell them apart (their sum can be below
// Dropped for kernels that predate the split, e.g. ILUTP's column
// pivoting path).
type Stats struct {
	Flops      float64 // multiply-add and divide operations
	Dropped    int     // entries removed by any dropping rule
	FixedPivot int     // zero/tiny pivots replaced

	// DroppedRule1 counts multipliers dropped by the relative threshold
	// during elimination (the paper's 1st dropping rule).
	DroppedRule1 int
	// DroppedRule2 counts entries dropped when a factored row is stored:
	// the relative threshold plus the keep-m-largest cap on the L and U
	// parts (the 2nd rule).
	DroppedRule2 int
	// DroppedRule3 counts entries dropped from reduced-matrix rows: the
	// relative threshold plus, for ILUT*, the k·m cap (the 3rd rule).
	DroppedRule3 int
}

// pivotFloor returns the replacement magnitude for an untenably small
// pivot: the relative threshold when positive, otherwise a fixed tiny
// value. The paper's test matrices never trigger this, but downstream
// users' will.
func pivotFloor(tau float64) float64 {
	if tau > 0 {
		return tau
	}
	return 1e-12
}

// ILUT computes the ILUT(m, t) incomplete factorization of a square
// matrix following Algorithm 1 of the paper: a dual dropping strategy with
// a relative threshold applied during elimination and a per-row fill cap
// applied when the row is stored.
func ILUT(a *sparse.CSR, p Params) (*Factors, Stats, error) {
	if a.N != a.M {
		return nil, Stats{}, fmt.Errorf("ilu: ILUT requires a square matrix, got %d×%d", a.N, a.M)
	}
	if err := p.Validate(); err != nil {
		return nil, Stats{}, err
	}
	n := a.N
	m := p.maxFill(n)

	var st Stats
	w := sparse.NewWorkRow(n)
	lCols := make([][]int, n)
	lVals := make([][]float64, n)
	uCols := make([][]int, n)
	uVals := make([][]float64, n)
	var lheap colHeap

	for i := 0; i < n; i++ {
		cols, vals := a.Row(i)
		if len(cols) == 0 {
			return nil, st, fmt.Errorf("ilu: row %d of A is empty", i)
		}
		tau := p.Tau * a.RowNorm2(i)

		w.Scatter(cols, vals)
		lheap = lheap[:0]
		for _, j := range cols {
			if j < i {
				lheap = append(lheap, j)
			}
		}
		heap.Init(&lheap)

		// Elimination sweep: process k < i in increasing order, including
		// fill positions created along the way.
		for lheap.Len() > 0 {
			k := heap.Pop(&lheap).(int)
			if !w.Has(k) {
				continue // dropped earlier in this sweep
			}
			piv := uVals[k][0] // diagonal of U stored first in row k
			wk := w.Get(k) / piv
			st.Flops++
			if math.Abs(wk) < tau {
				// 1st dropping rule.
				w.Drop(k)
				st.Dropped++
				st.DroppedRule1++
				continue
			}
			w.Set(k, wk)
			// w ← w − wk·u_k over the strictly-upper part of U's row k.
			ukc := uCols[k]
			ukv := uVals[k]
			for idx := 1; idx < len(ukc); idx++ {
				j := ukc[idx]
				if !w.Has(j) && j < i {
					heap.Push(&lheap, j)
				}
				w.Add(j, -wk*ukv[idx])
				st.Flops += 2
			}
		}

		// 2nd dropping rule: relative threshold then keep the m largest in
		// each of the L and U parts (diagonal always kept).
		d2 := w.DropBelow(0, n, tau, i)
		d2 += w.KeepLargest(0, i, m, -1)
		d2 += w.KeepLargest(i, n, m, i)
		st.Dropped += d2
		st.DroppedRule2 += d2

		lCols[i], lVals[i] = w.Gather(0, i, nil, nil)
		var uc []int
		var uv []float64
		// Store the diagonal first for O(1) pivot access; the remaining
		// upper entries follow in increasing column order.
		d := w.Get(i)
		if p.PivotPerturb != 0 {
			d *= p.PivotPerturb
		}
		if math.Abs(d) < pivotFloor(tau)*1e-3 || d == 0 {
			if d >= 0 {
				d = pivotFloor(tau)
			} else {
				d = -pivotFloor(tau)
			}
			st.FixedPivot++
		}
		uc = append(uc, i)
		uv = append(uv, d)
		w.Drop(i)
		uc, uv = w.Gather(i, n, uc, uv)
		uCols[i], uVals[i] = uc, uv

		w.Reset()
	}
	f := &Factors{
		L: sparse.FromRows(n, n, lCols, lVals),
		U: fromURows(n, uCols, uVals),
	}
	return f, st, nil
}

// fromURows builds the U factor from rows stored diagonal-first.
func fromURows(n int, cols [][]int, vals [][]float64) *sparse.CSR {
	// The diagonal-first convention means rows are sorted except that the
	// leading diagonal element is already the smallest column in an upper
	// triangular row, so rows are in fact fully sorted.
	return sparse.FromRows(n, n, cols, vals)
}

// colHeap is a min-heap of column indices driving the elimination order.
type colHeap []int

func (h colHeap) Len() int            { return len(h) }
func (h colHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h colHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *colHeap) Push(x interface{}) { *h = append(*h, x.(int)) }
func (h *colHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// CompleteLU computes the exact LU factorization by running ILUT with no
// dropping; small systems only (tests and examples).
func CompleteLU(a *sparse.CSR) (*Factors, error) {
	f, _, err := ILUT(a, Params{M: 0, Tau: 0})
	return f, err
}
