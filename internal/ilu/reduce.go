package ilu

import (
	"fmt"
	"math"

	"repro/internal/sparse"
)

// URow is the U-factor row of a factored pivot, in global column indices.
// The diagonal is held separately; Cols/Vals list the strictly-upper
// entries in increasing column order. Pivot rows are what processors
// exchange during the interface phase — the paper's "rows of U that need
// to be communicated".
type URow struct {
	Col  int // the pivot's index in the (combined or final) column space
	Orig int // the pivot's original row id, for cross-processor matching
	Diag float64
	Cols []int
	Vals []float64
}

// BytesOfURow returns the modelled wire size of one U row: the pivot's
// column, original id and diagonal (8 bytes each) plus a (column, value)
// pair per off-diagonal entry. Keeping the cost model behind a BytesOf*
// helper is what the bytesarg analyzer enforces at Send/AllGather sites.
func BytesOfURow(r *URow) int { return 24 + 16*len(r.Cols) }

// BytesOfURows returns the modelled wire size of a pivot-row message.
func BytesOfURows(rows []URow) int {
	b := 0
	for i := range rows {
		b += BytesOfURow(&rows[i])
	}
	return b
}

// emptyRowCols/emptyRowVals back the Cols/Vals of a pivot row with no
// off-diagonal survivors: non-nil (matching the historical exact-fit
// make) and shared — zero-length, so no write can ever land in them.
var (
	emptyRowCols = make([]int, 0)
	emptyRowVals = make([]float64, 0)
)

// FactorPivotRow turns the current reduced row of an independent-set
// pivot into its U row (the paper's phase-2 step "factoring the nodes of
// I_l only requires creating the rows of U"): entries below the relative
// threshold tau are dropped and at most m off-diagonal entries survive.
// cols/vals must contain the diagonal position i.
func FactorPivotRow(i int, cols []int, vals []float64, tau float64, m int, st *Stats) (URow, error) {
	return FactorPivotRowPerturbed(i, cols, vals, tau, m, 0, st)
}

// FactorPivotRowPerturbed is FactorPivotRow with the fault-injection
// pivot perturbation of Params.PivotPerturb applied before the tiny-pivot
// repair check; perturb 0 disables it and is bitwise identical to
// FactorPivotRow. It is the transient-scratch wrapper around
// Scratch.FactorPivotRow; hot callers hold a Scratch instead.
func FactorPivotRowPerturbed(i int, cols []int, vals []float64, tau float64, m int, perturb float64, st *Stats) (URow, error) {
	s := Scratch{fresh: true}
	return s.FactorPivotRow(i, cols, vals, tau, m, perturb, st)
}

// FactorPivotRow is the zero-alloc kernel behind the free function of the
// same name: the surviving-entry buffer is the scratch's reusable
// selection buffer, selection and ordering run on closure-free insertion
// sorts, and the U row's storage is carved from the output arena.
//
//pilut:hotpath
func (s *Scratch) FactorPivotRow(i int, cols []int, vals []float64, tau float64, m int, perturb float64, st *Stats) (URow, error) {
	r := URow{Col: i}
	found := false
	keep := s.ents[:0]
	for k, j := range cols {
		if j == i {
			r.Diag = vals[k]
			found = true
			continue
		}
		if math.Abs(vals[k]) < tau {
			st.Dropped++
			st.DroppedRule2++
			continue
		}
		keep = append(keep, pivEnt{j, vals[k]}) //pilutlint:ok hotalloc selection buffer grows to peak row nnz once, then is reused across rows
	}
	s.ents = keep
	if !found {
		return r, fmt.Errorf("ilu: pivot row %d has no diagonal entry", i)
	}
	if perturb != 0 {
		r.Diag *= perturb
	}
	if r.Diag == 0 || math.Abs(r.Diag) < 1e-300 {
		if r.Diag >= 0 {
			r.Diag = pivotFloor(tau)
		} else {
			r.Diag = -pivotFloor(tau)
		}
		st.FixedPivot++
	}
	if m > 0 && len(keep) > m {
		sortEntsByMag(keep)
		st.Dropped += len(keep) - m
		st.DroppedRule2 += len(keep) - m
		keep = keep[:m]
		s.ents = keep
	}
	sortEntsByCol(keep)
	if len(keep) == 0 {
		r.Cols, r.Vals = emptyRowCols, emptyRowVals
		return r, nil
	}
	if s.fresh {
		r.Cols = make([]int, len(keep))     //pilutlint:ok hotalloc legacy exact-fit mode used by the free-function wrapper only
		r.Vals = make([]float64, len(keep)) //pilutlint:ok hotalloc legacy exact-fit mode used by the free-function wrapper only
	} else {
		r.Cols = s.out.carveInts(len(keep))
		r.Vals = s.out.carveFloats(len(keep))
	}
	for k, e := range keep {
		r.Cols[k] = e.col
		r.Vals[k] = e.val
	}
	return r, nil
}

// EliminateRow applies Algorithm 2 of the paper to one row that is *not*
// in the current independent set: it eliminates the unknowns of the pivot
// range [nl, nl1) from the row, merges the multipliers with the row's
// accumulated L part, applies the 3rd dropping rule and splits the result
// into the new L part (columns < nl1) and the next-level reduced row
// (columns ≥ nl1).
//
//   - w is a reusable working row over the global index space (reset on
//     entry and exit).
//   - aCols/aVals is the current reduced row of i (columns in [nl, n)).
//   - lCols/lVals is the L row accumulated over earlier levels (columns
//     < nl).
//   - pivot(k) returns the U row of pivot k for k in [nl, nl1); it is only
//     called for columns actually present in the row.
//   - tau is the row's relative drop tolerance (t × ‖original a_i‖₂).
//   - m bounds the L part; kcap·m bounds the reduced part when kcap > 0
//     (the ILUT* rule — kcap ≤ 0 reproduces plain ILUT).
//
// Because the pivots are independent, the eliminations cannot create fill
// inside [nl, nl1), so a single increasing sweep over the row's original
// pivot-range entries suffices — the property the paper exploits to
// pre-post all communication.
//
// This free function is the transient-scratch wrapper; hot callers hold
// a Scratch and call the method, whose returned slices are arena-carved.
func EliminateRow(
	w *sparse.WorkRow,
	i int,
	aCols []int, aVals []float64,
	lCols []int, lVals []float64,
	pivot func(k int) *URow,
	nl, nl1 int,
	tau float64, m, kcap int,
	st *Stats,
) (newLCols []int, newLVals []float64, redCols []int, redVals []float64) {
	s := Scratch{w: w, fresh: true}
	return s.EliminateRow(i, aCols, aVals, lCols, lVals, pivot, nl, nl1, tau, m, kcap, st)
}

// EliminateRow is the zero-alloc kernel: every intermediate lives in the
// scratch and the returned row halves are carved from the output arena
// (or exact-fit copies in fresh mode).
//
//pilut:hotpath
func (s *Scratch) EliminateRow(
	i int,
	aCols []int, aVals []float64,
	lCols []int, lVals []float64,
	pivot func(k int) *URow,
	nl, nl1 int,
	tau float64, m, kcap int,
	st *Stats,
) (newLCols []int, newLVals []float64, redCols []int, redVals []float64) {
	w := s.w
	w.Scatter(aCols, aVals)

	// Eliminate pivot-range unknowns in increasing column order. aCols is
	// sorted, and no new entries appear in [nl, nl1) during the sweep.
	for _, k := range aCols {
		if k < nl || k >= nl1 {
			continue
		}
		if !w.Has(k) {
			continue
		}
		p := pivot(k)
		if p == nil {
			panic(fmt.Sprintf("ilu: EliminateRow: missing pivot row %d", k))
		}
		wk := w.Get(k) / p.Diag
		st.Flops++
		if math.Abs(wk) < tau {
			// 1st dropping rule.
			w.Drop(k)
			st.Dropped++
			st.DroppedRule1++
			continue
		}
		w.Set(k, wk)
		for idx, j := range p.Cols {
			if j >= nl && j < nl1 {
				panic(fmt.Sprintf("ilu: pivot %d has entry %d inside the independent range [%d,%d)", k, j, nl, nl1))
			}
			w.Add(j, -wk*p.Vals[idx])
			st.Flops += 2
		}
	}

	// Merge the accumulated L row (line 13 of Algorithm 2).
	w.Scatter(lCols, lVals)
	return s.finishRow(i, nl1, tau, m, kcap, st)
}

// EliminateRowSeq is the phase-1 variant of EliminateRow used when the
// pivot block [nl, nl1) was factored *sequentially* (a processor's interior
// rows) rather than as an independent set: eliminations may then create
// fill back inside the pivot range, so the sweep is driven by a heap that
// picks up fill positions, exactly like the main ILUT loop. Dropping rules
// and the L/reduced split are identical to EliminateRow.
func EliminateRowSeq(
	w *sparse.WorkRow,
	i int,
	aCols []int, aVals []float64,
	pivot func(k int) *URow,
	nl, nl1 int,
	tau float64, m, kcap int,
	st *Stats,
) (newLCols []int, newLVals []float64, redCols []int, redVals []float64) {
	s := Scratch{w: w, fresh: true}
	return s.EliminateRowSeq(i, aCols, aVals, pivot, nl, nl1, tau, m, kcap, st)
}

// EliminateRowSeq is the zero-alloc kernel: the fill-selection heap is
// the scratch's reusable heap rather than a per-call allocation.
//
//pilut:hotpath
func (s *Scratch) EliminateRowSeq(
	i int,
	aCols []int, aVals []float64,
	pivot func(k int) *URow,
	nl, nl1 int,
	tau float64, m, kcap int,
	st *Stats,
) (newLCols []int, newLVals []float64, redCols []int, redVals []float64) {
	w := s.w
	w.Scatter(aCols, aVals)

	h := s.h[:0]
	for _, k := range aCols {
		if k >= nl && k < nl1 {
			h = append(h, k) //pilutlint:ok hotalloc the fill heap grows to one row's peak pivot-range nnz once, then is reused across rows
		}
	}
	heapInit(&h)
	for h.Len() > 0 {
		k := heapPop(&h)
		if !w.Has(k) {
			continue
		}
		p := pivot(k)
		if p == nil {
			panic(fmt.Sprintf("ilu: EliminateRowSeq: missing pivot row %d", k))
		}
		wk := w.Get(k) / p.Diag
		st.Flops++
		if math.Abs(wk) < tau {
			w.Drop(k)
			st.Dropped++
			st.DroppedRule1++
			continue
		}
		w.Set(k, wk)
		for idx, j := range p.Cols {
			if j > k && j < nl1 && !w.Has(j) {
				heapPush(&h, j)
			}
			w.Add(j, -wk*p.Vals[idx])
			st.Flops += 2
		}
	}
	s.h = h
	return s.finishRow(i, nl1, tau, m, kcap, st)
}

// finishRow is the shared tail of EliminateRow and EliminateRowSeq: the
// 3rd dropping rule — threshold-and-cap the factored part; threshold
// (and, for ILUT*, cap at kcap·m) the reduced part, always preserving
// the reduced diagonal — then the L/reduced gather, the working-row
// reset, and the carve (or exact-fit copy) of the four result slices.
//
//pilut:hotpath
func (s *Scratch) finishRow(i, nl1 int, tau float64, m, kcap int, st *Stats) (newLCols []int, newLVals []float64, redCols []int, redVals []float64) {
	w := s.w
	n := w.Len()
	d2 := w.DropBelow(0, nl1, tau, -1)
	if m > 0 {
		d2 += w.KeepLargest(0, nl1, m, -1)
	}
	d3 := w.DropBelow(nl1, n, tau, i)
	if kcap > 0 && m > 0 {
		d3 += w.KeepLargest(nl1, n, kcap*m, i)
	}
	st.Dropped += d2 + d3
	st.DroppedRule2 += d2
	st.DroppedRule3 += d3
	if !w.Has(i) {
		// The reduced diagonal must exist for the row to be factorable
		// later; recreate it at the pivot floor if elimination cancelled
		// it exactly.
		w.Set(i, pivotFloor(tau))
		st.FixedPivot++
	}

	s.lc, s.lv = w.Gather(0, nl1, s.lc[:0], s.lv[:0])
	s.rc, s.rv = w.Gather(nl1, n, s.rc[:0], s.rv[:0])
	w.Reset()
	return s.takeInts(s.lc), s.takeFloats(s.lv), s.takeInts(s.rc), s.takeFloats(s.rv)
}

// EliminateRowStatic is the zero-fill (ILU(0)) counterpart of
// EliminateRow: it eliminates the pivot block [nl, nl1) from a row while
// confining every update to positions the row already has — no fill is
// created and nothing is dropped, which is precisely why the schedule of
// a static-pattern factorization can be precomputed (§3 of the paper).
// Works for both sequential pivot blocks and independent sets, since
// without fill the two traversals coincide. Returns the row's new L part
// (columns < nl1) and its remaining static row (columns ≥ nl1).
func EliminateRowStatic(
	w *sparse.WorkRow,
	i int,
	aCols []int, aVals []float64,
	lCols []int, lVals []float64,
	pivot func(k int) *URow,
	nl, nl1 int,
	st *Stats,
) (newLCols []int, newLVals []float64, redCols []int, redVals []float64) {
	s := Scratch{w: w, fresh: true}
	return s.EliminateRowStatic(i, aCols, aVals, lCols, lVals, pivot, nl, nl1, st)
}

// EliminateRowStatic is the zero-alloc kernel for the static pattern.
//
//pilut:hotpath
func (s *Scratch) EliminateRowStatic(
	i int,
	aCols []int, aVals []float64,
	lCols []int, lVals []float64,
	pivot func(k int) *URow,
	nl, nl1 int,
	st *Stats,
) (newLCols []int, newLVals []float64, redCols []int, redVals []float64) {
	w := s.w
	n := w.Len()
	w.Scatter(aCols, aVals)
	for _, k := range aCols {
		if k < nl || k >= nl1 || !w.Has(k) {
			continue
		}
		p := pivot(k)
		if p == nil {
			panic(fmt.Sprintf("ilu: EliminateRowStatic: missing pivot row %d", k))
		}
		wk := w.Get(k) / p.Diag
		st.Flops++
		w.Set(k, wk)
		for idx, j := range p.Cols {
			if w.Has(j) { // static pattern: update existing positions only
				w.Add(j, -wk*p.Vals[idx])
				st.Flops += 2
			}
		}
	}
	w.Scatter(lCols, lVals)
	s.lc, s.lv = w.Gather(0, nl1, s.lc[:0], s.lv[:0])
	s.rc, s.rv = w.Gather(nl1, n, s.rc[:0], s.rv[:0])
	w.Reset()
	return s.takeInts(s.lc), s.takeFloats(s.lv), s.takeInts(s.rc), s.takeFloats(s.rv)
}

// FactorPivotRowStatic builds a pivot's U row keeping the full static
// pattern (no dropping). cols/vals must contain the diagonal position i.
func FactorPivotRowStatic(i int, cols []int, vals []float64, st *Stats) (URow, error) {
	return FactorPivotRow(i, cols, vals, 0, 0, st)
}

// Small heap helpers shared with the ILUT driver (container/heap without
// the interface boilerplate for the hot path).
//
//pilut:hotpath
func heapInit(h *colHeap) {
	n := h.Len()
	for i := n/2 - 1; i >= 0; i-- {
		heapDown(*h, i, n)
	}
}

//pilut:hotpath
func heapPush(h *colHeap, x int) {
	*h = append(*h, x) //pilutlint:ok hotalloc heap scratch is bounded by one row's fill and reused across pushes
	i := len(*h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if (*h)[p] <= (*h)[i] {
			break
		}
		(*h)[p], (*h)[i] = (*h)[i], (*h)[p]
		i = p
	}
}

//pilut:hotpath
func heapPop(h *colHeap) int {
	old := *h
	n := len(old)
	x := old[0]
	old[0] = old[n-1]
	*h = old[:n-1]
	heapDown(*h, 0, n-1)
	return x
}

//pilut:hotpath
func heapDown(h colHeap, i, n int) {
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && h[l] < h[m] {
			m = l
		}
		if r < n && h[r] < h[m] {
			m = r
		}
		if m == i {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}
