//go:build !race

// Alloc-regression guards for the row kernels (ISSUE 8): the steady-state
// factorization loop must allocate zero bytes per row. Each guard runs a
// kernel against a reused Scratch exactly the way core's factorization
// loop does — discarding the arena between iterations so the chunks are
// reused in place — and pins AllocsPerRun at zero. The file is excluded
// under the race detector, whose instrumentation allocates.

package ilu

import (
	"testing"
)

// guardFixture is a small elimination problem: eight factored pivots in
// the pivot range [0, 8) whose fill lands in [8, 32), and a row with
// entries on both sides of the split.
type guardFixture struct {
	pivots []URow
	aCols  []int
	aVals  []float64
	lCols  []int
	lVals  []float64
}

func newGuardFixture() *guardFixture {
	f := &guardFixture{}
	f.pivots = make([]URow, 8)
	for k := range f.pivots {
		f.pivots[k] = URow{
			Col:  k,
			Diag: 2 + float64(k)*0.125,
			Cols: []int{8 + k, 16 + k, 24 + k},
			Vals: []float64{0.5, -0.25, 0.75},
		}
	}
	f.aCols = []int{0, 3, 5, 9, 12, 20}
	f.aVals = []float64{1.5, -2.0, 0.75, 3.0, -1.25, 0.5}
	f.lCols = []int{1, 4}
	f.lVals = []float64{0.125, -0.5}
	return f
}

func (f *guardFixture) pivot(k int) *URow { return &f.pivots[k] }

// TestAllocsEliminateRowSeq guards the ILUT row-merge kernel: the
// heap-driven sweep plus pivot-row factorization — one full phase-1
// iteration of core.Factor.
func TestAllocsEliminateRowSeq(t *testing.T) {
	f := newGuardFixture()
	s := NewScratch(64)
	st := &Stats{}
	var sink int
	avg := testing.AllocsPerRun(100, func() {
		lC, lV, rC, rV := s.EliminateRowSeq(9, f.aCols, f.aVals, f.pivot, 0, 8, 1e-3, 4, 2, st)
		urow, err := s.FactorPivotRow(9, rC, rV, 1e-3, 4, 0, st)
		if err != nil {
			sink = -1
			return
		}
		sink = len(lC) + len(lV) + len(urow.Cols)
		s.out.discardAll()
	})
	if sink < 0 {
		t.Fatal("kernel returned an error inside the guard loop")
	}
	if avg > 0 {
		t.Errorf("EliminateRowSeq+FactorPivotRow allocates %.2f objects/row, want 0", avg)
	}
}

// TestAllocsEliminateRow guards the Schur elimination round kernel: the
// increasing-column sweep with an accumulated L merge — one §7 block-round
// iteration of core's schurBlockRound.
func TestAllocsEliminateRow(t *testing.T) {
	f := newGuardFixture()
	s := NewScratch(64)
	st := &Stats{}
	var sink int
	avg := testing.AllocsPerRun(100, func() {
		lC, lV, rC, rV := s.EliminateRow(9, f.aCols, f.aVals, f.lCols, f.lVals, f.pivot, 0, 8, 1e-3, 4, 2, st)
		sink = len(lC) + len(lV) + len(rC) + len(rV)
		s.out.discardAll()
	})
	_ = sink
	if avg > 0 {
		t.Errorf("EliminateRow allocates %.2f objects/row, want 0", avg)
	}
}

// TestAllocsEliminateRowStatic guards the pattern-restricted ILU(0)
// kernel the same way.
func TestAllocsEliminateRowStatic(t *testing.T) {
	f := newGuardFixture()
	s := NewScratch(64)
	st := &Stats{}
	var sink int
	avg := testing.AllocsPerRun(100, func() {
		lC, lV, rC, rV := s.EliminateRowStatic(9, f.aCols, f.aVals, f.lCols, f.lVals, f.pivot, 0, 8, st)
		sink = len(lC) + len(lV) + len(rC) + len(rV)
		s.out.discardAll()
	})
	_ = sink
	if avg > 0 {
		t.Errorf("EliminateRowStatic allocates %.2f objects/row, want 0", avg)
	}
}
