package ilu

import (
	"testing"

	"repro/internal/matgen"
	"repro/internal/mis"
	"repro/internal/sparse"
)

func TestMultiElimCompleteLUExact(t *testing.T) {
	for _, a := range []*sparse.CSR{
		matgen.Grid2D(6, 6),
		matgen.RandomSPDPattern(40, 4, 7),
	} {
		res, err := MultiElimILUT(a, Params{M: 0, Tau: 0}, mis.DefaultRounds, 1)
		if err != nil {
			t.Fatal(err)
		}
		pap := a.Permute(res.Perm)
		if d := sparse.MaxAbsDiff(res.Factors.Product(), pap); d > 1e-8 {
			t.Errorf("‖LU − PAPᵀ‖∞ = %v", d)
		}
		if err := res.Factors.CheckStructure(); err != nil {
			t.Error(err)
		}
	}
}

func TestMultiElimPermValid(t *testing.T) {
	a := matgen.Torso(5, 5, 5, 3)
	res, err := MultiElimILUT(a, Params{M: 8, Tau: 1e-4}, mis.DefaultRounds, 2)
	if err != nil {
		t.Fatal(err)
	}
	sparse.InversePermutation(res.Perm)
	total := 0
	for _, s := range res.LevelSizes {
		if s <= 0 {
			t.Fatalf("empty level in %v", res.LevelSizes)
		}
		total += s
	}
	if total != a.N {
		t.Fatalf("levels cover %d of %d rows", total, a.N)
	}
}

func TestMultiElimLevelsAreIndependentInFactors(t *testing.T) {
	a := matgen.Grid2D(8, 8)
	res, err := MultiElimILUT(a, Params{M: 6, Tau: 1e-5}, mis.DefaultRounds, 4)
	if err != nil {
		t.Fatal(err)
	}
	levelOf := make([]int, a.N)
	pos := 0
	for l, s := range res.LevelSizes {
		for k := 0; k < s; k++ {
			levelOf[pos] = l
			pos++
		}
	}
	check := func(m *sparse.CSR, name string) {
		for i := 0; i < a.N; i++ {
			cols, _ := m.Row(i)
			for _, j := range cols {
				if j != i && levelOf[i] == levelOf[j] {
					t.Fatalf("%s couples same-level unknowns %d,%d", name, i, j)
				}
			}
		}
	}
	check(res.Factors.L, "L")
	check(res.Factors.U, "U")
}

func TestMultiElimPreconditionsGMRESStyleStep(t *testing.T) {
	a := matgen.Torso(6, 6, 6, 5)
	res, err := MultiElimILUT(a, Params{M: 10, Tau: 1e-4, K: 2}, mis.DefaultRounds, 6)
	if err != nil {
		t.Fatal(err)
	}
	// One preconditioned step on the permuted system must shrink the
	// residual substantially.
	n := a.N
	pap := a.Permute(res.Perm)
	b := sparse.Ones(n)
	x := make([]float64, n)
	res.Factors.Solve(x, b)
	r := make([]float64, n)
	pap.MulVec(r, x)
	for i := range r {
		r[i] = b[i] - r[i]
	}
	if rel := sparse.Norm2(r) / sparse.Norm2(b); rel > 0.6 {
		t.Errorf("one preconditioned step leaves residual %v", rel)
	}
}

func TestMultiElimILUTStarFewerLevels(t *testing.T) {
	a := matgen.Torso(7, 7, 7, 8)
	plain, err := MultiElimILUT(a, Params{M: 10, Tau: 1e-6}, mis.DefaultRounds, 3)
	if err != nil {
		t.Fatal(err)
	}
	star, err := MultiElimILUT(a, Params{M: 10, Tau: 1e-6, K: 2}, mis.DefaultRounds, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(star.LevelSizes) > len(plain.LevelSizes) {
		t.Errorf("ILUT* used more levels (%d) than ILUT (%d)",
			len(star.LevelSizes), len(plain.LevelSizes))
	}
	t.Logf("multi-elimination levels: ILUT=%d ILUT*=%d", len(plain.LevelSizes), len(star.LevelSizes))
}

func TestMultiElimErrors(t *testing.T) {
	if _, err := MultiElimILUT(sparse.NewCSR(2, 3), Params{}, 5, 1); err == nil {
		t.Error("non-square accepted")
	}
	if _, err := MultiElimILUT(matgen.Grid2D(3, 3), Params{Tau: -1}, 5, 1); err == nil {
		t.Error("negative tolerance accepted")
	}
}
