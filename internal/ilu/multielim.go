package ilu

import (
	"fmt"
	"sort"

	"repro/internal/mis"
	"repro/internal/sparse"
)

// MultiElimResult is the output of the serial multi-elimination driver.
type MultiElimResult struct {
	Factors *Factors
	// Perm maps original index → elimination order.
	Perm []int
	// LevelSizes lists the independent-set sizes, in elimination order.
	LevelSizes []int
	Stats      Stats
}

// MultiElimILUT computes an ILUT factorization by multi-elimination — the
// serial analogue (Saad's ILUM, reference [11] of the paper) of the
// parallel interface phase: at every level a maximal independent set of
// the *current* reduced matrix is factored at once, the corresponding
// unknowns are eliminated from the remaining rows (Algorithm 2 with the
// 3rd dropping rule; p.K > 0 applies the ILUT* cap), and the process
// recurses on the reduced matrix. It exercises exactly the level
// machinery of the parallel code with no machine underneath, which makes
// it both a reference implementation and an ordering of independent
// interest.
func MultiElimILUT(a *sparse.CSR, p Params, rounds int, seed int64) (*MultiElimResult, error) {
	if a.N != a.M {
		return nil, errNonSquare(a)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := a.N
	res := &MultiElimResult{Perm: make([]int, n)}
	st := &res.Stats

	// Reduced rows in combined space: unfactored column j ↦ n + j.
	redCols := make([][]int, n)
	redVals := make([][]float64, n)
	tau := make([]float64, n)
	for i := 0; i < n; i++ {
		cols, vals := a.Row(i)
		rc := make([]int, len(cols))
		for k, j := range cols {
			rc[k] = n + j
		}
		redCols[i] = rc
		redVals[i] = append([]float64(nil), vals...)
		tau[i] = p.Tau * a.RowNorm2(i)
	}

	lCols := make([][]int, n)
	lVals := make([][]float64, n)
	uRows := make([]*URow, n) // by original index; cols in combined space
	remaining := make([]int, n)
	for i := range remaining {
		remaining[i] = i
	}
	w := sparse.NewWorkRow(2 * n)
	newOf := make([]int, n)
	nl := 0

	for level := 0; len(remaining) > 0; level++ {
		// Independent set of the current reduced structure.
		adj := make([][]int, len(remaining))
		for k, i := range remaining {
			var nbrs []int
			for _, c := range redCols[i] {
				if o := c - n; o != i {
					nbrs = append(nbrs, indexOf(remaining, o))
				}
			}
			adj[k] = nbrs
		}
		sel := mis.Serial(adj, nil, rounds, seed+int64(level)*7919)

		var pivots []int
		for k, i := range remaining {
			if sel[k] {
				pivots = append(pivots, i)
			}
		}
		sort.Ints(pivots)
		levelNew := make(map[int]int, len(pivots))
		for r, i := range pivots {
			levelNew[i] = nl + r
			newOf[i] = nl + r
			res.Perm[i] = nl + r
		}
		nl1 := nl + len(pivots)
		res.LevelSizes = append(res.LevelSizes, len(pivots))

		// Factor the pivots (U rows only).
		inLevel := make(map[int]bool, len(pivots))
		for _, i := range pivots {
			inLevel[i] = true
		}
		pivotByNew := make(map[int]*URow, len(pivots))
		for _, i := range pivots {
			u, err := FactorPivotRow(n+i, redCols[i], redVals[i], tau[i], p.maxFill(n), st)
			if err != nil {
				return nil, err
			}
			u.Col = levelNew[i]
			u.Orig = i
			ui := u
			uRows[i] = &ui
			pivotByNew[u.Col] = &ui
			redCols[i], redVals[i] = nil, nil
		}

		// Eliminate the level from the remaining rows (Algorithm 2).
		var next []int
		for k, i := range remaining {
			if sel[k] {
				continue
			}
			tC := append([]int(nil), redCols[i]...)
			for idx, c := range tC {
				if nid, ok := levelNew[c-n]; ok {
					tC[idx] = nid
				}
			}
			tV := redVals[i]
			sortPairCombined(tC, tV)
			lC, lV, nrC, nrV := EliminateRow(w, n+i, tC, tV,
				lCols[i], lVals[i],
				func(k int) *URow { return pivotByNew[k] },
				nl, nl1, tau[i], p.maxFillCap(), p.K, st)
			lCols[i], lVals[i] = lC, lV
			redCols[i], redVals[i] = nrC, nrV
			next = append(next, i)
		}
		remaining = next
		nl = nl1
	}

	// Assemble: rows land at their elimination positions; U columns still
	// in combined space become elimination indices.
	fLC := make([][]int, n)
	fLV := make([][]float64, n)
	fUC := make([][]int, n)
	fUV := make([][]float64, n)
	for i := 0; i < n; i++ {
		nid := newOf[i]
		fLC[nid], fLV[nid] = lCols[i], lVals[i]
		u := uRows[i]
		uc := make([]int, 0, len(u.Cols)+1)
		uv := make([]float64, 0, len(u.Vals)+1)
		uc = append(uc, nid)
		uv = append(uv, u.Diag)
		for k, c := range u.Cols {
			if c >= n {
				uc = append(uc, newOf[c-n])
			} else {
				uc = append(uc, c)
			}
			uv = append(uv, u.Vals[k])
		}
		sortPairCombined(uc[1:], uv[1:])
		// The diagonal is the smallest index in an upper-triangular row,
		// so the whole row is sorted.
		fUC[nid], fUV[nid] = uc, uv
	}
	res.Factors = &Factors{
		L: sparse.FromRows(n, n, fLC, fLV),
		U: sparse.FromRows(n, n, fUC, fUV),
	}
	return res, nil
}

// maxFillCap returns M for the elimination kernel (0 = unlimited keeps
// the kernel's "no cap" semantics).
func (p Params) maxFillCap() int { return p.M }

func errNonSquare(a *sparse.CSR) error {
	return fmt.Errorf("ilu: multi-elimination requires a square matrix, got %d×%d", a.N, a.M)
}

// indexOf maps a global id to its position in the remaining list. The
// remaining list is sorted ascending (it starts that way and filtering
// preserves order), so binary search applies.
func indexOf(sorted []int, v int) int {
	lo, hi := 0, len(sorted)
	for lo < hi {
		mid := (lo + hi) / 2
		if sorted[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func sortPairCombined(cols []int, vals []float64) {
	for i := 1; i < len(cols); i++ {
		c, v := cols[i], vals[i]
		j := i - 1
		for j >= 0 && cols[j] > c {
			cols[j+1], vals[j+1] = cols[j], vals[j]
			j--
		}
		cols[j+1], vals[j+1] = c, v
	}
}
