package ilu

import (
	"math"
	"testing"

	"repro/internal/sparse"
)

// reduceFixture: a 5×5 matrix whose rows 0 and 1 form an independent set
// (a01 = a10 = 0), mimicking one level of the interface factorization.
//
//	[ 4  0  1  2  0 ]
//	[ 0  5  0  1  3 ]
//	[ 1  2  6  0  0 ]
//	[ 2  0  0  7  1 ]
//	[ 0  3  0  1  8 ]
func reduceFixture() *sparse.CSR {
	return sparse.FromDense([][]float64{
		{4, 0, 1, 2, 0},
		{0, 5, 0, 1, 3},
		{1, 2, 6, 0, 0},
		{2, 0, 0, 7, 1},
		{0, 3, 0, 1, 8},
	})
}

func pivotRowsFor(t *testing.T, a *sparse.CSR, pivots []int, tau float64, m int) map[int]*URow {
	t.Helper()
	var st Stats
	out := make(map[int]*URow)
	for _, i := range pivots {
		cols, vals := a.Row(i)
		r, err := FactorPivotRow(i, cols, vals, tau, m, &st)
		if err != nil {
			t.Fatal(err)
		}
		rr := r
		out[i] = &rr
	}
	return out
}

func TestFactorPivotRowBasic(t *testing.T) {
	a := reduceFixture()
	rows := pivotRowsFor(t, a, []int{0, 1}, 0, 0)
	u0 := rows[0]
	if u0.Diag != 4 {
		t.Fatalf("u0 diag = %v, want 4", u0.Diag)
	}
	if len(u0.Cols) != 2 || u0.Cols[0] != 2 || u0.Cols[1] != 3 {
		t.Fatalf("u0 cols = %v, want [2 3]", u0.Cols)
	}
	if u0.Vals[0] != 1 || u0.Vals[1] != 2 {
		t.Fatalf("u0 vals = %v", u0.Vals)
	}
}

func TestFactorPivotRowThresholdAndCap(t *testing.T) {
	var st Stats
	r, err := FactorPivotRow(0,
		[]int{0, 2, 3, 4},
		[]float64{10, 0.001, 5, 3},
		0.01, // drops the 0.001
		1,    // keeps only the 5
		&st)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Cols) != 1 || r.Cols[0] != 3 || r.Vals[0] != 5 {
		t.Fatalf("kept %v/%v, want col 3 val 5", r.Cols, r.Vals)
	}
	if st.Dropped != 2 {
		t.Fatalf("dropped = %d, want 2", st.Dropped)
	}
}

func TestFactorPivotRowMissingDiagonal(t *testing.T) {
	var st Stats
	if _, err := FactorPivotRow(0, []int{1}, []float64{1}, 0, 0, &st); err == nil {
		t.Error("missing diagonal accepted")
	}
}

func TestFactorPivotRowZeroPivotFixed(t *testing.T) {
	var st Stats
	r, err := FactorPivotRow(0, []int{0, 1}, []float64{0, 2}, 0.5, 0, &st)
	if err != nil {
		t.Fatal(err)
	}
	if r.Diag == 0 {
		t.Error("zero pivot not replaced")
	}
	if st.FixedPivot != 1 {
		t.Errorf("FixedPivot = %d, want 1", st.FixedPivot)
	}
}

// TestEliminateRowExactSchur checks Algorithm 2 with no dropping against
// the dense Schur complement.
func TestEliminateRowExactSchur(t *testing.T) {
	a := reduceFixture()
	n := a.N
	pivots := pivotRowsFor(t, a, []int{0, 1}, 0, 0)
	w := sparse.NewWorkRow(n)
	var st Stats

	d := a.Dense()
	for i := 2; i < n; i++ {
		aCols, aVals := a.Row(i)
		lC, lV, rC, rV := EliminateRow(w, i, aCols, aVals, nil, nil,
			func(k int) *URow { return pivots[k] }, 0, 2, 0, 0, 0, &st)

		// Expected multipliers and Schur row.
		want := make([]float64, n)
		copy(want, d[i])
		for k := 0; k < 2; k++ {
			lik := want[k] / d[k][k]
			want[k] = lik
			for j := 2; j < n; j++ {
				want[j] -= lik * d[k][j]
			}
		}
		got := make([]float64, n)
		for kk, j := range lC {
			got[j] = lV[kk]
		}
		for kk, j := range rC {
			got[j] = rV[kk]
		}
		for j := 0; j < n; j++ {
			if math.Abs(got[j]-want[j]) > 1e-12 {
				t.Fatalf("row %d col %d: got %v, want %v", i, j, got[j], want[j])
			}
		}
	}
}

// TestEliminateRowSecondLevel verifies L-row merging across levels: a row
// carries multipliers from level 0 and gains more at level 1.
func TestEliminateRowSecondLevel(t *testing.T) {
	a := reduceFixture()
	n := a.N
	w := sparse.NewWorkRow(n)
	var st Stats

	// Level 0: pivots {0,1}; eliminate from rows 2,3,4.
	piv0 := pivotRowsFor(t, a, []int{0, 1}, 0, 0)
	type rowState struct {
		lC []int
		lV []float64
		rC []int
		rV []float64
	}
	state := make(map[int]rowState)
	for i := 2; i < n; i++ {
		aCols, aVals := a.Row(i)
		lC, lV, rC, rV := EliminateRow(w, i, aCols, aVals, nil, nil,
			func(k int) *URow { return piv0[k] }, 0, 2, 0, 0, 0, &st)
		state[i] = rowState{lC, lV, rC, rV}
	}

	// Level 1: rows 2 and 3 are now independent iff reduced a23/a32 = 0;
	// fixture has a23 = a32 = 0 and elimination adds nothing there
	// (u0 row: cols {2,3}; row 2 gains fill at 3 via pivot 0: -l20·u03 =
	// -(1/4)·2 = -0.5, so 2–3 becomes dependent). Use pivot {2} alone.
	pr2 := state[2]
	var u2 URow
	{
		cols := append([]int(nil), pr2.rC...)
		vals := append([]float64(nil), pr2.rV...)
		r, err := FactorPivotRow(2, cols, vals, 0, 0, &st)
		if err != nil {
			t.Fatal(err)
		}
		u2 = r
	}
	// Eliminate pivot 2 from row 3 with its accumulated L row.
	pr3 := state[3]
	lC, lV, rC, rV := EliminateRow(w, 3, pr3.rC, pr3.rV, pr3.lC, pr3.lV,
		func(k int) *URow {
			if k == 2 {
				return &u2
			}
			return nil
		}, 2, 3, 0, 0, 0, &st)

	// Dense reference: LU of the full 5×5; row 3 of the combined L\U array
	// holds the multipliers (cols 0..2) and the twice-reduced row (3..4).
	lu := denseLU(reduceFixture().Dense())
	want := make([]float64, n)
	copy(want, lu[3])
	got := make([]float64, n)
	for kk, j := range lC {
		got[j] = lV[kk]
	}
	for kk, j := range rC {
		got[j] = rV[kk]
	}
	for j := 0; j < n; j++ {
		if math.Abs(got[j]-want[j]) > 1e-12 {
			t.Fatalf("col %d: got %v, want %v", j, got[j], want[j])
		}
	}
}

// denseLU computes the in-place Doolittle LU of a dense matrix (no
// pivoting) and returns the combined L\U array.
func denseLU(d [][]float64) [][]float64 {
	n := len(d)
	for k := 0; k < n; k++ {
		for i := k + 1; i < n; i++ {
			d[i][k] /= d[k][k]
			for j := k + 1; j < n; j++ {
				d[i][j] -= d[i][k] * d[k][j]
			}
		}
	}
	return d
}

func TestEliminateRowILUTStarCap(t *testing.T) {
	// A row with many reduced entries: kcap=1, m=2 must leave at most 2
	// entries (plus diagonal) in the reduced part.
	n := 10
	b := sparse.NewBuilder(n, n)
	// Pivot row 0 couples to everything.
	b.Add(0, 0, 2)
	for j := 2; j < n; j++ {
		b.Add(0, j, float64(j))
	}
	// Row 1 couples to pivot 0 and has its own entries.
	b.Add(1, 0, 1)
	b.Add(1, 1, 5)
	b.Add(1, 5, 1)
	a := b.Build()

	var st Stats
	pivots := pivotRowsFor(t, a, []int{0}, 0, 0)
	w := sparse.NewWorkRow(n)
	aCols, aVals := a.Row(1)
	_, _, rC, _ := EliminateRow(w, 1, aCols, aVals, nil, nil,
		func(k int) *URow { return pivots[k] }, 0, 1, 0, 2, 1, &st)
	// Reduced part: diagonal 1 plus at most kcap·m = 2 others.
	if len(rC) > 3 {
		t.Fatalf("ILUT* cap violated: %d reduced entries", len(rC))
	}
	hasDiag := false
	for _, j := range rC {
		if j == 1 {
			hasDiag = true
		}
	}
	if !hasDiag {
		t.Fatal("diagonal dropped from reduced row")
	}

	// Plain ILUT (kcap=0) keeps everything above threshold.
	w2 := sparse.NewWorkRow(n)
	_, _, rC2, _ := EliminateRow(w2, 1, aCols, aVals, nil, nil,
		func(k int) *URow { return pivots[k] }, 0, 1, 0, 2, 0, &st)
	if len(rC2) <= len(rC) {
		t.Fatalf("plain ILUT should keep more reduced entries: %d vs %d", len(rC2), len(rC))
	}
}

func TestEliminateRowFirstDroppingRule(t *testing.T) {
	// The multiplier w_k = a_ik/u_kk falls below tau and must be dropped,
	// leaving the row unchanged in the reduced part.
	a := sparse.FromDense([][]float64{
		{100, 0, 7},
		{0.5, 3, 0},
		{0, 0, 1},
	})
	var st Stats
	pivots := pivotRowsFor(t, a, []int{0}, 0, 0)
	w := sparse.NewWorkRow(3)
	aCols, aVals := a.Row(1)
	lC, _, rC, rV := EliminateRow(w, 1, aCols, aVals, nil, nil,
		func(k int) *URow { return pivots[k] }, 0, 1, 0.1, 0, 0, &st)
	// multiplier = 0.5/100 = 0.005 < 0.1 → dropped; L empty.
	if len(lC) != 0 {
		t.Fatalf("L part = %v, want empty", lC)
	}
	if len(rC) != 1 || rC[0] != 1 || rV[0] != 3 {
		t.Fatalf("reduced row = %v/%v, want diag only", rC, rV)
	}
	if st.Dropped == 0 {
		t.Error("drop not counted")
	}
}

func TestEliminateRowPanicsOnDependentPivot(t *testing.T) {
	// A pivot whose U row reaches inside the independent range indicates
	// a broken independent set; EliminateRow must refuse.
	var st Stats
	u := &URow{Col: 0, Diag: 1, Cols: []int{1}, Vals: []float64{1}}
	w := sparse.NewWorkRow(3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	EliminateRow(w, 2, []int{0, 2}, []float64{1, 1}, nil, nil,
		func(k int) *URow { return u }, 0, 2, 0, 0, 0, &st)
}

func TestEliminateRowMissingPivotPanics(t *testing.T) {
	var st Stats
	w := sparse.NewWorkRow(3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	EliminateRow(w, 2, []int{0, 2}, []float64{1, 1}, nil, nil,
		func(k int) *URow { return nil }, 0, 1, 0, 0, 0, &st)
}
