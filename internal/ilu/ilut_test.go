package ilu

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/matgen"
	"repro/internal/sparse"
)

func TestCompleteLUEqualsA(t *testing.T) {
	for _, tc := range []struct {
		name string
		a    *sparse.CSR
	}{
		{"grid", matgen.Grid2D(5, 5)},
		{"random", matgen.RandomSPDPattern(40, 5, 3)},
		{"convdiff", matgen.ConvDiff2D(5, 5, 3, 1)},
	} {
		f, err := CompleteLU(tc.a)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if err := f.CheckStructure(); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		lu := f.Product()
		if d := sparse.MaxAbsDiff(lu, tc.a); d > 1e-8 {
			t.Errorf("%s: ‖LU − A‖∞ = %v, want ≈ 0", tc.name, d)
		}
	}
}

func TestCompleteLUSolves(t *testing.T) {
	a := matgen.Grid2D(8, 8)
	f, err := CompleteLU(a)
	if err != nil {
		t.Fatal(err)
	}
	n := a.N
	xTrue := make([]float64, n)
	for i := range xTrue {
		xTrue[i] = math.Sin(float64(i))
	}
	b := make([]float64, n)
	a.MulVec(b, xTrue)
	x := make([]float64, n)
	f.Solve(x, b)
	for i := range x {
		if math.Abs(x[i]-xTrue[i]) > 1e-8 {
			t.Fatalf("x[%d] = %v, want %v", i, x[i], xTrue[i])
		}
	}
}

func TestSolveInvertsFactors(t *testing.T) {
	a := matgen.RandomSPDPattern(60, 6, 11)
	f, _, err := ILUT(a, Params{M: 8, Tau: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	n := a.N
	rng := rand.New(rand.NewSource(1))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	// y = L·U·x computed via Product, then Solve must return x.
	lu := f.Product()
	y := make([]float64, n)
	lu.MulVec(y, x)
	got := make([]float64, n)
	f.Solve(got, y)
	for i := range x {
		if math.Abs(got[i]-x[i]) > 1e-6*math.Max(1, math.Abs(x[i])) {
			t.Fatalf("solve mismatch at %d: %v vs %v", i, got[i], x[i])
		}
	}
}

func TestILUTRespectsFillCap(t *testing.T) {
	a := matgen.Grid2D(10, 10)
	for _, m := range []int{1, 3, 5} {
		f, _, err := ILUT(a, Params{M: m, Tau: 0})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < a.N; i++ {
			if got := f.L.RowNNZ(i); got > m {
				t.Fatalf("m=%d: L row %d has %d entries", m, i, got)
			}
			if got := f.U.RowNNZ(i); got > m+1 { // +1 for the diagonal
				t.Fatalf("m=%d: U row %d has %d entries", m, i, got)
			}
		}
	}
}

func TestILUTThresholdDropsEntries(t *testing.T) {
	a := matgen.Grid2D(12, 12)
	loose, _, err := ILUT(a, Params{M: 0, Tau: 1e-1})
	if err != nil {
		t.Fatal(err)
	}
	tight, _, err := ILUT(a, Params{M: 0, Tau: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	if loose.NNZ() >= tight.NNZ() {
		t.Errorf("larger threshold should drop more: nnz %d vs %d", loose.NNZ(), tight.NNZ())
	}
}

func TestILUTMoreFillBetterAccuracy(t *testing.T) {
	a := matgen.RandomSPDPattern(80, 6, 21)
	var prev float64 = math.Inf(1)
	for _, m := range []int{2, 8, 80} {
		f, _, err := ILUT(a, Params{M: m, Tau: 0})
		if err != nil {
			t.Fatal(err)
		}
		res := sparse.MaxAbsDiff(f.Product(), a)
		if res > prev*1.5 { // allow slack; trend must be non-increasing
			t.Errorf("m=%d: residual %v worse than previous %v", m, res, prev)
		}
		if res < prev {
			prev = res
		}
	}
	if prev > 1e-8 {
		t.Errorf("unlimited fill should reproduce A, residual %v", prev)
	}
}

func TestILUTStatsPopulated(t *testing.T) {
	a := matgen.Grid2D(8, 8)
	_, st, err := ILUT(a, Params{M: 2, Tau: 1e-2})
	if err != nil {
		t.Fatal(err)
	}
	if st.Flops <= 0 {
		t.Error("no flops counted")
	}
	if st.Dropped <= 0 {
		t.Error("no drops counted for a lossy factorization")
	}
}

func TestILUTErrors(t *testing.T) {
	if _, _, err := ILUT(sparse.NewCSR(2, 3), Params{}); err == nil {
		t.Error("non-square accepted")
	}
	if _, _, err := ILUT(matgen.Grid2D(2, 2), Params{Tau: -1}); err == nil {
		t.Error("negative tolerance accepted")
	}
	if _, _, err := ILUT(sparse.NewCSR(2, 2), Params{}); err == nil {
		t.Error("empty row accepted")
	}
}

func TestILUTDiagonalAlwaysKept(t *testing.T) {
	a := matgen.ConvDiff2D(6, 6, 40, 40)
	f, _, err := ILUT(a, Params{M: 1, Tau: 1e-1})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.CheckStructure(); err != nil {
		t.Fatal(err) // CheckStructure verifies every diagonal exists
	}
}

func TestILUTPreconditionerQuality(t *testing.T) {
	// An ILUT preconditioner must reduce the residual of a single
	// Richardson step versus no preconditioning.
	a := matgen.Grid2D(15, 15)
	n := a.N
	f, _, err := ILUT(a, Params{M: 5, Tau: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	b := sparse.Ones(n)
	// x = M⁻¹ b should give ‖b − A·x‖ ≪ ‖b‖.
	x := make([]float64, n)
	f.Solve(x, b)
	r := make([]float64, n)
	a.MulVec(r, x)
	for i := range r {
		r[i] = b[i] - r[i]
	}
	if rel := sparse.Norm2(r) / sparse.Norm2(b); rel > 0.5 {
		t.Errorf("one preconditioned step leaves relative residual %v", rel)
	}
}

func TestSolveLSolveUPanics(t *testing.T) {
	a := matgen.Grid2D(3, 3)
	f, err := CompleteLU(a)
	if err != nil {
		t.Fatal(err)
	}
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("SolveL dim", func() { f.SolveL(make([]float64, 2), make([]float64, 9)) })
	mustPanic("SolveU dim", func() { f.SolveU(make([]float64, 9), make([]float64, 1)) })
}
