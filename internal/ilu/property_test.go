package ilu

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/matgen"
	"repro/internal/sparse"
)

// Property: for random diagonally dominant matrices and random parameters,
// every ILUT factorization has valid triangular structure, finite values,
// and a solve that produces finite results.
func TestILUTAlwaysWellFormed(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 5 + r.Intn(40)
		a := matgen.RandomSPDPattern(n, 2+r.Intn(5), seed)
		p := Params{M: r.Intn(8), Tau: math.Pow(10, -float64(r.Intn(8)))}
		fac, _, err := ILUT(a, p)
		if err != nil {
			return false
		}
		if fac.CheckStructure() != nil {
			return false
		}
		for _, v := range fac.L.Vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
		}
		for _, v := range fac.U.Vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
		}
		x := make([]float64, n)
		fac.Solve(x, sparse.Ones(n))
		for _, v := range x {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: with no dropping, ILUT is exact for any diagonally dominant
// matrix (complete LU), regardless of sparsity.
func TestILUTNoDropExactProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(25)
		a := matgen.RandomSPDPattern(n, 2+r.Intn(4), seed)
		fac, _, err := ILUT(a, Params{M: 0, Tau: 0})
		if err != nil {
			return false
		}
		return sparse.MaxAbsDiff(fac.Product(), a) < 1e-7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: the drop tolerance is monotone — a looser tolerance never
// yields more stored entries than a tighter one (same M).
func TestILUTTauMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 10 + r.Intn(30)
		a := matgen.RandomSPDPattern(n, 4, seed)
		loose, _, err := ILUT(a, Params{M: 0, Tau: 1e-2})
		if err != nil {
			return false
		}
		tight, _, err := ILUT(a, Params{M: 0, Tau: 1e-8})
		if err != nil {
			return false
		}
		return loose.NNZ() <= tight.NNZ()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: multi-elimination levels are always a disjoint cover, and the
// factors always have valid structure.
func TestMultiElimWellFormedProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 5 + r.Intn(30)
		a := matgen.RandomSPDPattern(n, 3, seed)
		res, err := MultiElimILUT(a, Params{M: 5, Tau: 1e-4}, 5, seed)
		if err != nil {
			return false
		}
		total := 0
		for _, s := range res.LevelSizes {
			total += s
		}
		if total != n {
			return false
		}
		sparse.InversePermutation(res.Perm)
		return res.Factors.CheckStructure() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: ILUTP's column permutation is always valid and its factors
// well formed.
func TestILUTPWellFormedProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 5 + r.Intn(25)
		a := matgen.RandomSPDPattern(n, 3, seed)
		res, err := ILUTP(a, Params{M: 1 + r.Intn(6), Tau: 1e-4}, 10)
		if err != nil {
			return false
		}
		sparse.InversePermutation(res.Pos)
		return res.Factors.CheckStructure() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
