package ilu

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"repro/internal/sparse"
)

// ILUTPResult carries the factors of a column-pivoted factorization and
// the column permutation that was chosen.
type ILUTPResult struct {
	Factors *Factors
	// Pos maps an original column to its pivot position: the factors
	// approximate A·Q where Q moves column j to position Pos[j].
	Pos   []int
	Stats Stats
}

// Solve solves A·x = b using the pivoted factors, undoing the column
// permutation.
func (r *ILUTPResult) Solve(x, b []float64) {
	n := len(r.Pos)
	y := make([]float64, n)
	r.Factors.Solve(y, b)
	for j := 0; j < n; j++ {
		x[j] = y[r.Pos[j]]
	}
}

// ILUTP computes ILUT with column pivoting (Saad's ILUTP): at step i,
// if the largest eligible entry of the working row exceeds
// |w_diag| / permTol, its column is swapped into the pivot position.
// permTol ≤ 1 disables pivoting (plain ILUT up to bookkeeping); a common
// robust choice is permTol in [10, 1000] — larger values pivot more
// eagerly. Use it when the matrix has zeros or small entries on the
// diagonal, where plain ILUT must fall back to pivot floors.
func ILUTP(a *sparse.CSR, p Params, permTol float64) (*ILUTPResult, error) {
	if a.N != a.M {
		return nil, fmt.Errorf("ilu: ILUTP requires a square matrix, got %d×%d", a.N, a.M)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := a.N
	m := p.maxFill(n)
	res := &ILUTPResult{Pos: make([]int, n)}
	st := &res.Stats

	pos := res.Pos // original column → position
	colAt := make([]int, n)
	for j := 0; j < n; j++ {
		pos[j] = j
		colAt[j] = j
	}

	w := sparse.NewWorkRow(n) // indexed by ORIGINAL column
	lCols := make([][]int, n) // position indices (< i, frozen)
	lVals := make([][]float64, n)
	uCols := make([][]int, n) // original columns; diag col first
	uVals := make([][]float64, n)
	uDiagCol := make([]int, n)
	var h colHeap

	for i := 0; i < n; i++ {
		cols, vals := a.Row(i)
		if len(cols) == 0 {
			return nil, fmt.Errorf("ilu: row %d of A is empty", i)
		}
		tau := p.Tau * a.RowNorm2(i)
		w.Scatter(cols, vals)
		h = h[:0]
		for _, j := range cols {
			if pos[j] < i {
				h = append(h, pos[j])
			}
		}
		heap.Init(&h)
		for h.Len() > 0 {
			k := heap.Pop(&h).(int)
			jc := colAt[k] // original column sitting at pivot position k
			if !w.Has(jc) {
				continue
			}
			piv := uVals[k][0]
			wk := w.Get(jc) / piv
			st.Flops++
			if math.Abs(wk) < tau {
				w.Drop(jc)
				st.Dropped++
				continue
			}
			w.Set(jc, wk)
			ukc := uCols[k]
			ukv := uVals[k]
			for idx := 1; idx < len(ukc); idx++ {
				j := ukc[idx]
				if !w.Has(j) && pos[j] < i {
					heap.Push(&h, pos[j])
				}
				w.Add(j, -wk*ukv[idx])
				st.Flops += 2
			}
		}

		// Split the working row by position and apply the 2nd dropping
		// rule per part (threshold, then keep the m largest).
		type ent struct {
			col int
			val float64
		}
		var lpart, upart []ent
		for _, j := range w.Indices() {
			v := w.Get(j)
			if pos[j] < i {
				lpart = append(lpart, ent{j, v})
			} else {
				upart = append(upart, ent{j, v})
			}
		}
		filter := func(es []ent, cap int, protect int) []ent {
			out := es[:0]
			for _, e := range es {
				if e.col == protect || math.Abs(e.val) >= tau {
					out = append(out, e)
				} else {
					st.Dropped++
				}
			}
			if cap > 0 && len(out) > cap {
				sort.Slice(out, func(a, b int) bool {
					av, bv := math.Abs(out[a].val), math.Abs(out[b].val)
					if out[a].col == protect {
						return true
					}
					if out[b].col == protect {
						return false
					}
					if av != bv {
						return av > bv
					}
					return out[a].col < out[b].col
				})
				st.Dropped += len(out) - cap
				out = out[:cap]
			}
			return out
		}
		lpart = filter(lpart, m, -1)

		// Pivot choice among the U part: the diagonal candidate is the
		// column currently at position i; swap in the largest entry when
		// it dominates by more than the pivoting tolerance.
		diagCol := colAt[i]
		diagVal := w.Get(diagCol)
		best, bestVal := diagCol, math.Abs(diagVal)
		if permTol > 1 {
			for _, e := range upart {
				if av := math.Abs(e.val); av > bestVal*1.0000000001 && av > math.Abs(diagVal)*permTolInv(permTol) {
					best, bestVal = e.col, av
				}
			}
		}
		if best != diagCol && math.Abs(w.Get(best)) > math.Abs(diagVal) {
			// Swap positions of diagCol and best.
			pi, pb := pos[diagCol], pos[best]
			pos[diagCol], pos[best] = pb, pi
			colAt[pi], colAt[pb] = best, diagCol
			diagCol = best
			diagVal = w.Get(best)
		}
		upart = filter(upart, m+1, diagCol)

		// Assemble the row. L columns are frozen positions; U keeps
		// original columns with the pivot column first.
		sort.Slice(lpart, func(a, b int) bool { return pos[lpart[a].col] < pos[lpart[b].col] })
		lc := make([]int, len(lpart))
		lv := make([]float64, len(lpart))
		for k, e := range lpart {
			lc[k] = pos[e.col]
			lv[k] = e.val
		}
		lCols[i], lVals[i] = lc, lv

		d := diagVal
		if d == 0 || math.Abs(d) < 1e-300 {
			if d >= 0 {
				d = pivotFloor(tau)
			} else {
				d = -pivotFloor(tau)
			}
			st.FixedPivot++
		}
		uc := []int{diagCol}
		uv := []float64{d}
		for _, e := range upart {
			if e.col != diagCol {
				uc = append(uc, e.col)
				uv = append(uv, e.val)
			}
		}
		uCols[i], uVals[i] = uc, uv
		uDiagCol[i] = diagCol
		w.Reset()
	}

	// Translate U columns to final positions and build the factors.
	fUC := make([][]int, n)
	fUV := make([][]float64, n)
	for i := 0; i < n; i++ {
		uc := make([]int, len(uCols[i]))
		uv := append([]float64(nil), uVals[i]...)
		for k, j := range uCols[i] {
			uc[k] = pos[j]
		}
		sortRowPair(uc, uv)
		fUC[i] = uc
		fUV[i] = uv
	}
	res.Factors = &Factors{
		L: sparse.FromRows(n, n, lCols, lVals),
		U: sparse.FromRows(n, n, fUC, fUV),
	}
	return res, nil
}

func permTolInv(t float64) float64 {
	if t <= 1 {
		return math.Inf(1)
	}
	return 1 / t
}

func sortRowPair(cols []int, vals []float64) {
	for i := 1; i < len(cols); i++ {
		c, v := cols[i], vals[i]
		j := i - 1
		for j >= 0 && cols[j] > c {
			cols[j+1], vals[j+1] = cols[j], vals[j]
			j--
		}
		cols[j+1], vals[j+1] = c, v
	}
}
