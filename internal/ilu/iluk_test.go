package ilu

import (
	"math"
	"testing"

	"repro/internal/matgen"
	"repro/internal/sparse"
)

func samePattern(a, b *sparse.CSR) bool {
	if a.N != b.N || a.NNZ() != b.NNZ() {
		return false
	}
	for k := range a.Cols {
		if a.Cols[k] != b.Cols[k] {
			return false
		}
	}
	for i := range a.RowPtr {
		if a.RowPtr[i] != b.RowPtr[i] {
			return false
		}
	}
	return true
}

func TestILU0PatternMatchesA(t *testing.T) {
	a := matgen.Grid2D(6, 6)
	f, _, err := ILU0(a)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.CheckStructure(); err != nil {
		t.Fatal(err)
	}
	// Union of L and U patterns must equal the pattern of A.
	b := sparse.NewBuilder(a.N, a.N)
	for i := 0; i < a.N; i++ {
		cols, _ := f.L.Row(i)
		for _, j := range cols {
			b.Add(i, j, 1)
		}
		ucols, _ := f.U.Row(i)
		for _, j := range ucols {
			b.Add(i, j, 1)
		}
	}
	union := b.Build()
	if union.NNZ() != a.NNZ() {
		t.Fatalf("ILU0 pattern nnz %d, A nnz %d", union.NNZ(), a.NNZ())
	}
	for i := 0; i < a.N; i++ {
		uc, _ := union.Row(i)
		ac, _ := a.Row(i)
		for k := range uc {
			if uc[k] != ac[k] {
				t.Fatalf("row %d pattern differs", i)
			}
		}
	}
}

func TestILU0OnTridiagonalIsExact(t *testing.T) {
	// A tridiagonal matrix suffers no fill, so ILU(0) is the complete LU.
	a := sparse.FromDense([][]float64{
		{2, -1, 0, 0},
		{-1, 2, -1, 0},
		{0, -1, 2, -1},
		{0, 0, -1, 2},
	})
	f, _, err := ILU0(a)
	if err != nil {
		t.Fatal(err)
	}
	if d := sparse.MaxAbsDiff(f.Product(), a); d > 1e-12 {
		t.Errorf("tridiagonal ILU0 residual %v", d)
	}
}

func TestILUKLevelsNested(t *testing.T) {
	a := matgen.Grid2D(7, 7)
	var prevNNZ int
	for _, k := range []int{0, 1, 2, 3} {
		f, _, err := ILUK(a, k)
		if err != nil {
			t.Fatal(err)
		}
		if err := f.CheckStructure(); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		nnz := f.NNZ()
		if nnz < prevNNZ {
			t.Errorf("ILU(%d) has fewer entries (%d) than ILU(%d) (%d)", k, nnz, k-1, prevNNZ)
		}
		prevNNZ = nnz
	}
}

func TestILUKLargeLevelApproachesExact(t *testing.T) {
	a := matgen.Grid2D(5, 5)
	f, _, err := ILUK(a, 25)
	if err != nil {
		t.Fatal(err)
	}
	if d := sparse.MaxAbsDiff(f.Product(), a); d > 1e-8 {
		t.Errorf("ILU(k→∞) residual %v, want ≈ 0", d)
	}
}

func TestILUKAccuracyImprovesWithLevel(t *testing.T) {
	a := matgen.Grid2D(9, 9)
	res := func(k int) float64 {
		f, _, err := ILUK(a, k)
		if err != nil {
			t.Fatal(err)
		}
		return sparse.MaxAbsDiff(f.Product(), a)
	}
	r0, r2 := res(0), res(2)
	if r2 >= r0 {
		t.Errorf("ILU(2) residual %v not better than ILU(0) %v", r2, r0)
	}
}

func TestILUKNegativeLevel(t *testing.T) {
	if _, _, err := ILUK(matgen.Grid2D(2, 2), -1); err == nil {
		t.Error("negative level accepted")
	}
}

func TestJacobi(t *testing.T) {
	a := matgen.Grid2D(4, 4)
	f, err := Jacobi(a)
	if err != nil {
		t.Fatal(err)
	}
	b := sparse.Ones(a.N)
	x := make([]float64, a.N)
	f.Solve(x, b)
	for i := range x {
		if math.Abs(x[i]-0.25) > 1e-15 {
			t.Fatalf("Jacobi solve x[%d] = %v, want 0.25", i, x[i])
		}
	}
}

func TestJacobiZeroDiagonal(t *testing.T) {
	a := sparse.FromDense([][]float64{{0, 1}, {1, 0}})
	if _, err := Jacobi(a); err == nil {
		t.Error("zero diagonal accepted")
	}
}

func TestSymbolicILUKAddsMissingDiagonal(t *testing.T) {
	a := sparse.FromDense([][]float64{
		{0, 1},
		{1, 0},
	})
	// Entries at (0,0)/(1,1) are zero hence unstored; symbolic must add
	// the diagonal so the numeric phase can pivot (fixed up to the floor).
	pat, err := symbolicILUK(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	if pat.At(0, 0) != 0 && !hasCol(pat, 0, 0) {
		t.Error("diagonal (0,0) missing from symbolic pattern")
	}
	if !hasCol(pat, 0, 0) || !hasCol(pat, 1, 1) {
		t.Error("diagonal missing from symbolic pattern")
	}
}

func hasCol(a *sparse.CSR, i, j int) bool {
	cols, _ := a.Row(i)
	for _, c := range cols {
		if c == j {
			return true
		}
	}
	return false
}
