package ilu

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/matgen"
	"repro/internal/sparse"
)

// Property: ILUT(m, t) respects the 2nd dropping rule's fill cap on every
// row — at most m off-diagonal entries in the L part and at most m+1
// entries (including the diagonal) in the U part — and attributes every
// dropped entry to exactly one of the paper's dropping rules.
func TestILUTFillCapProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 8 + r.Intn(40)
		m := 1 + r.Intn(6)
		a := matgen.RandomSPDPattern(n, 2+r.Intn(5), seed)
		fac, st, err := ILUT(a, Params{M: m, Tau: math.Pow(10, -1-float64(r.Intn(7)))})
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			lc, _ := fac.L.Row(i)
			if len(lc) > m {
				t.Logf("row %d: %d L entries exceed m=%d", i, len(lc), m)
				return false
			}
			uc, _ := fac.U.Row(i)
			if len(uc) > m+1 {
				t.Logf("row %d: %d U entries exceed m+1=%d", i, len(uc), m+1)
				return false
			}
		}
		// Plain ILUT has no reduced matrix, so rule 3 never fires and the
		// per-rule counters partition the total exactly.
		if st.DroppedRule3 != 0 || st.Dropped != st.DroppedRule1+st.DroppedRule2 {
			t.Logf("drop counters inconsistent: total=%d rule1=%d rule2=%d rule3=%d",
				st.Dropped, st.DroppedRule1, st.DroppedRule2, st.DroppedRule3)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: no kept off-diagonal entry is below the row's relative
// threshold t·‖a_i‖₂ — the dual dropping strategy never stores an entry
// the 2nd rule should have removed. The diagonal is exempt (tiny pivots
// are floored, not dropped).
func TestILUTThresholdProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 8 + r.Intn(40)
		p := Params{M: 0, Tau: math.Pow(10, -1-float64(r.Intn(6)))}
		a := matgen.RandomSPDPattern(n, 2+r.Intn(4), seed)
		fac, _, err := ILUT(a, p)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			tau := p.Tau * a.RowNorm2(i)
			lc, lv := fac.L.Row(i)
			for k := range lc {
				if math.Abs(lv[k]) < tau {
					t.Logf("row %d: kept L entry %v below threshold %v", i, lv[k], tau)
					return false
				}
			}
			uc, uv := fac.U.Row(i)
			for k := range uc {
				if uc[k] == i {
					continue
				}
				if math.Abs(uv[k]) < tau {
					t.Logf("row %d: kept U entry %v below threshold %v", i, uv[k], tau)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: the ILUT* 3rd dropping rule caps the reduced row produced by
// the phase-2 kernel at k·m entries plus the protected diagonal, for any
// random row and any random independent pivot set; the L part obeys the
// 2nd rule's m cap; and the per-rule drop counters partition the total.
func TestEliminateRowReducedCapProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nl1 := 2 + r.Intn(6) // pivot range [0, nl1)
		n := nl1 + 10 + r.Intn(40)
		m := 1 + r.Intn(4)
		kcap := 1 + r.Intn(3)

		// Independent pivots: their U rows have no entries inside [0, nl1).
		pivots := make([]*URow, nl1)
		for k := 0; k < nl1; k++ {
			u := &URow{Col: k, Diag: 1 + r.Float64()}
			for j := nl1; j < n; j++ {
				if r.Float64() < 0.3 {
					u.Cols = append(u.Cols, j)
					u.Vals = append(u.Vals, r.NormFloat64())
				}
			}
			pivots[k] = u
		}

		// A random unfactored row with its diagonal at i ≥ nl1.
		i := nl1 + r.Intn(n-nl1)
		var cols []int
		var vals []float64
		for j := 0; j < n; j++ {
			if j == i || r.Float64() < 0.4 {
				cols = append(cols, j)
				vals = append(vals, r.NormFloat64())
			}
		}

		w := sparse.NewWorkRow(n)
		var st Stats
		newL, _, red, _ := EliminateRow(w, i, cols, vals, nil, nil,
			func(k int) *URow { return pivots[k] },
			0, nl1, 1e-4, m, kcap, &st)
		if len(newL) > m {
			t.Logf("L part kept %d entries, cap m=%d", len(newL), m)
			return false
		}
		if len(red) > kcap*m+1 {
			t.Logf("reduced row kept %d entries, cap k·m+1=%d", len(red), kcap*m+1)
			return false
		}
		if st.Dropped != st.DroppedRule1+st.DroppedRule2+st.DroppedRule3 {
			t.Logf("drop counters inconsistent: total=%d rule1=%d rule2=%d rule3=%d",
				st.Dropped, st.DroppedRule1, st.DroppedRule2, st.DroppedRule3)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
