package machine

import (
	"fmt"
	"strings"
	"time"
)

// DeadlockError is the failure a watchdog-armed Run panics with when the
// timeout expires: the SPMD program made no forward progress (typically a
// Recv with no matching Send, or processors entering collectives in
// different orders on a path the collective-mismatch check cannot see).
// Dump holds a per-processor state report — what each virtual processor
// was blocked on and its last observed virtual clock — turning a silent
// test hang into an actionable message.
type DeadlockError struct {
	Timeout time.Duration
	Dump    string
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("machine: watchdog: run still blocked after %v\n%s", e.Timeout, e.Dump)
}

// SetWatchdog arms a per-Run timeout. If the run has not completed after
// d, every processor blocked inside the machine is woken with a
// *DeadlockError carrying a state dump, and Run panics with it. A
// processor spinning in pure local compute cannot be interrupted — the
// watchdog catches communication deadlocks, which always park in Recv or
// a collective. Must be called before Run; d ≤ 0 disables the watchdog.
func (m *Machine) SetWatchdog(d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.started {
		panic("machine: SetWatchdog must be called before Run")
	}
	m.watchdog = d
}

// startWatchdog spawns the timer goroutine for an armed watchdog and
// returns a function that disarms it when the run completes.
func (m *Machine) startWatchdog() func() {
	if m.watchdog <= 0 {
		return func() {}
	}
	done := make(chan struct{})
	go func() {
		t := time.NewTimer(m.watchdog)
		defer t.Stop()
		select {
		case <-done:
		case <-t.C:
			m.mu.Lock()
			if m.failed == nil {
				de := &DeadlockError{Timeout: m.watchdog, Dump: m.dumpLocked()}
				m.failed = de
				m.failRank = -1
				m.failDump = de.Dump
				m.wakeAllLocked()
			}
			m.mu.Unlock()
		}
	}()
	return func() { close(done) }
}

// dumpLocked renders every processor's blocked state. Caller holds m.mu,
// so the blocked fields are stable; clocks are the last values observed
// at a machine operation (a running processor's true clock is private to
// its goroutine).
func (m *Machine) dumpLocked() string {
	var b strings.Builder
	fmt.Fprintf(&b, "P=%d processors:\n", m.P)
	for _, p := range m.procs {
		switch p.blocked.kind {
		case "send":
			fmt.Fprintf(&b, "  proc %d: in Send(dst=%d, tag=%d) at t=%.3e\n",
				p.id, p.blocked.dst, p.blocked.tag, p.blocked.clock)
		case "recv":
			fmt.Fprintf(&b, "  proc %d: blocked in Recv(src=%d, tag=%d) at t=%.3e\n",
				p.id, p.blocked.src, p.blocked.tag, p.blocked.clock)
		case "collective":
			fmt.Fprintf(&b, "  proc %d: waiting in collective %q (%d of %d arrived) at t=%.3e\n",
				p.id, p.blocked.op, m.rvCount, m.P, p.blocked.clock)
		default:
			fmt.Fprintf(&b, "  proc %d: not blocked in the machine (computing or finished; last seen at t=%.3e)\n",
				p.id, p.blocked.clock)
		}
	}
	return strings.TrimRight(b.String(), "\n")
}
