package machine

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/pcomm"
)

// A Machine is single-use: rendezvous buffers, mailboxes and failure
// state belong to one generation of processors. Reuse must be an explicit
// panic, not silent corruption.
func TestRunReusePanics(t *testing.T) {
	m := New(2, Zero())
	m.Run(func(p *Proc) { p.Barrier() })
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected second Run on the same Machine to panic")
		}
		if !strings.Contains(r.(string), "single-use") {
			t.Fatalf("unexpected panic value: %v", r)
		}
	}()
	m.Run(func(p *Proc) { p.Barrier() })
}

func TestRunReusePanicsAfterFailure(t *testing.T) {
	m := New(2, Zero())
	func() {
		defer func() { recover() }()
		m.Run(func(p *Proc) { panic("boom") })
	}()
	defer func() {
		if recover() == nil {
			t.Fatal("expected Run on a failed Machine to panic")
		}
	}()
	m.Run(func(p *Proc) {})
}

// A panic on one processor must carry its original value out of Run even
// when the other processors are parked in a collective (not just in Recv,
// which TestPanicPropagation covers). Run wraps it in a *pcomm.RunError
// naming the failing rank, with its stack trace and a blocked-state dump
// of the siblings it stranded.
func TestPanicUnblocksCollective(t *testing.T) {
	m := New(4, Zero())
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic to propagate from Run")
		}
		re, ok := r.(*pcomm.RunError)
		if !ok {
			t.Fatalf("expected *pcomm.RunError, got %T: %v", r, r)
		}
		if re.Rank != 3 || re.Cause != any("boom") {
			t.Fatalf("root cause lost: rank=%d cause=%v, want rank 3 cause \"boom\"", re.Rank, re.Cause)
		}
		if !strings.Contains(re.Stack, "TestPanicUnblocksCollective") {
			t.Errorf("stack trace does not name the panicking frame:\n%s", re.Stack)
		}
		// The dump is a best-effort snapshot at failure time (siblings
		// may not have parked yet); it must at least cover every rank
		// and embed the root-cause stack.
		if !strings.Contains(re.Dump, "P=4 processors") || !strings.Contains(re.Dump, "root-cause stack (proc 3)") {
			t.Errorf("dump missing processor table or stack section:\n%s", re.Dump)
		}
	}()
	m.Run(func(p *Proc) {
		if p.ID() == 3 {
			panic("boom")
		}
		p.Barrier()
	})
}

// The collective-mismatch panic must also surface as the Run panic value
// and wake processors parked in the other collective.
func TestCollectiveMismatchReportsOps(t *testing.T) {
	m := New(3, Zero())
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected collective mismatch panic")
		}
		re, ok := r.(*pcomm.RunError)
		if !ok || !strings.Contains(fmt.Sprint(re.Cause), "collective mismatch") {
			t.Fatalf("unexpected panic value: %v", r)
		}
	}()
	m.Run(func(p *Proc) {
		if p.ID() == 0 {
			p.AllReduceInt(1, OpSum)
		} else {
			p.Barrier()
		}
	})
}

func TestWatchdogRecvDeadlockDump(t *testing.T) {
	m := New(2, Zero())
	m.SetWatchdog(50 * time.Millisecond)
	defer func() {
		r := recover()
		re, ok := r.(*pcomm.RunError)
		if !ok {
			t.Fatalf("expected *pcomm.RunError, got %v", r)
		}
		de, ok := re.Cause.(*DeadlockError)
		if !ok {
			t.Fatalf("expected *DeadlockError cause, got %v", re.Cause)
		}
		if re.Rank != -1 {
			t.Errorf("watchdog failure blames rank %d, want -1 (no single culprit)", re.Rank)
		}
		for _, want := range []string{
			"proc 0: blocked in Recv(src=1, tag=7)",
			"proc 1: blocked in Recv(src=0, tag=9)",
		} {
			if !strings.Contains(de.Dump, want) {
				t.Errorf("dump missing %q:\n%s", want, de.Dump)
			}
		}
		if !strings.Contains(de.Error(), "watchdog") {
			t.Errorf("Error() missing watchdog marker: %s", de.Error())
		}
	}()
	m.Run(func(p *Proc) {
		// Classic SPMD deadlock: both sides receive first, nobody sends.
		if p.ID() == 0 {
			p.Recv(1, 7)
		} else {
			p.Recv(0, 9)
		}
	})
}

func TestWatchdogCollectiveDeadlockDump(t *testing.T) {
	m := New(3, Zero())
	m.SetWatchdog(50 * time.Millisecond)
	defer func() {
		r := recover()
		re, ok := r.(*pcomm.RunError)
		if !ok {
			t.Fatalf("expected *pcomm.RunError, got %v", r)
		}
		de, ok := re.Cause.(*DeadlockError)
		if !ok {
			t.Fatalf("expected *DeadlockError cause, got %v", re.Cause)
		}
		if !strings.Contains(de.Dump, `waiting in collective "barrier" (2 of 3 arrived)`) {
			t.Errorf("dump missing collective wait:\n%s", de.Dump)
		}
		if !strings.Contains(de.Dump, "blocked in Recv(src=0, tag=1)") {
			t.Errorf("dump missing recv wait:\n%s", de.Dump)
		}
	}()
	m.Run(func(p *Proc) {
		// Proc 2 waits for a message that never comes while the others
		// enter the barrier: a one-sided collective, the static form of
		// which the collective analyzer flags.
		if p.ID() == 2 {
			p.Recv(0, 1)
		} else {
			p.Barrier()
		}
	})
}

func TestWatchdogDoesNotFireOnCompletion(t *testing.T) {
	m := New(4, Zero())
	m.SetWatchdog(time.Minute)
	var total int64
	res := m.Run(func(p *Proc) {
		p.Send((p.ID()+1)%4, 1, p.ID(), 8)
		v := p.Recv((p.ID()+3)%4, 1).(int)
		atomic.AddInt64(&total, int64(v))
		p.Barrier()
	})
	if total != 6 {
		t.Fatalf("ring total = %d", total)
	}
	if res.PerProc[0].MsgsSent != 1 {
		t.Fatalf("stats lost: %+v", res.PerProc[0])
	}
}

func TestSetWatchdogAfterRunPanics(t *testing.T) {
	m := New(1, Zero())
	m.Run(func(p *Proc) {})
	defer func() {
		if recover() == nil {
			t.Fatal("expected SetWatchdog after Run to panic")
		}
	}()
	m.SetWatchdog(time.Second)
}

func TestCopyHelpers(t *testing.T) {
	xs := []int{1, 2, 3}
	cp := CopyInts(xs)
	cp[0] = 99
	if xs[0] != 1 {
		t.Fatal("CopyInts aliases its input")
	}
	fs := []float64{1.5}
	fcp := CopyFloats(fs)
	fcp[0] = 0
	if fs[0] != 1.5 {
		t.Fatal("CopyFloats aliases its input")
	}
	bs := []bool{true}
	bcp := CopyBools(bs)
	bcp[0] = false
	if !bs[0] {
		t.Fatal("CopyBools aliases its input")
	}
	if BytesOfBools(5) != 5 || BytesOfUint64s(2) != 16 {
		t.Fatal("byte helpers wrong")
	}
}
