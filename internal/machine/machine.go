// Package machine simulates the distributed-memory message-passing computer
// the paper runs on (a Cray T3D). P virtual processors execute SPMD Go code
// as goroutines; all inter-processor data flow goes through explicit
// Send/Recv and collectives, exactly as an MPI program would be structured.
//
// Each virtual processor carries a virtual clock advanced by a LogP-style
// cost model: computation advances the local clock by flops × FlopTime;
// a message arrives at senderTime + Latency + bytes × ByteTime, and the
// receiver's clock jumps to at least the arrival time; collectives cost a
// logarithmic number of message steps. The modelled elapsed time of a run
// is the maximum clock over processors — the makespan of the communication
// DAG — which reproduces the *scaling shape* a real distributed machine
// exhibits even though the host has far fewer physical cores.
package machine

import (
	"fmt"
	"math"
	"runtime/debug"
	"sync"
	"time"

	"repro/internal/pcomm"
	"repro/internal/trace"
)

// CostModel holds the machine constants of the LogP-style clock.
type CostModel struct {
	FlopTime float64 // seconds per floating-point operation
	Latency  float64 // seconds per point-to-point message (wire + software)
	ByteTime float64 // seconds per payload byte
	Overhead float64 // CPU seconds charged to each end per message
}

// T3D returns constants approximating the paper's Cray T3D: 150 MHz Alpha
// EV4 processors sustaining ~15 Mflop/s on sparse kernels, a few µs of
// message latency (the T3D's remote-store network was unusually fast for
// its era — "a small latency" in the paper's words), and ~150 MB/s links.
func T3D() CostModel {
	return CostModel{
		FlopTime: 1.0 / 15e6,
		Latency:  5e-6,
		ByteTime: 1.0 / 150e6,
		Overhead: 1e-6,
	}
}

// Workstation returns constants for a cluster of T3D-class nodes on a
// commodity Ethernet-class network: identical processors, two orders of
// magnitude more latency, an order of magnitude less bandwidth. Only the
// network differs from T3D(), isolating the effect the paper's conclusion
// is about — ILUT*'s synchronization savings matter most on slow networks.
func Workstation() CostModel {
	return CostModel{
		FlopTime: 1.0 / 15e6,
		Latency:  500e-6,
		ByteTime: 1.0 / 10e6,
		Overhead: 10e-6,
	}
}

// Zero returns a cost model in which time never advances; useful for tests
// that only care about data movement semantics.
func Zero() CostModel { return CostModel{} }

// Stats and Result are the backend-neutral pcomm types: the machine is
// one of two pcomm.World backends and reports its activity in the shared
// vocabulary (Time/Busy are virtual modelled seconds here).
type (
	Stats  = pcomm.Stats
	Result = pcomm.Result
)

type message struct {
	tag     int
	payload any
	arrival float64
}

// Machine is a P-processor virtual machine. A Machine is single-use:
// create one per parallel run — Run panics if called a second time, since
// mailboxes, rendezvous buffers and failure state would otherwise leak
// from one generation of processors into the next.
type Machine struct {
	P    int
	Cost CostModel

	mu   sync.Mutex
	cond *sync.Cond
	mail []msgQueue // index src*P + dst

	rvOp     string
	rvCount  int
	rvGen    int64
	rvVals   []any
	rvTimes  []float64
	rvResult *rvResult

	failed    any
	failRank  int    // root-cause rank, -1 when none (watchdog)
	failStack string // panicking goroutine's stack, "" for watchdog
	failDump  string // blocked-state table at failure time

	started  bool          // set by Run; a Machine is single-use
	procs    []*Proc       // the run's processors, for the watchdog dump
	watchdog time.Duration // 0 = disabled; see SetWatchdog

	rec *trace.Recorder // nil = tracing off (the default)
}

// msgQueue is one (src, dst) mailbox. Each mailbox carries its own
// condition variable (on the machine mutex) so a Send wakes only the one
// processor that can possibly consume the message, not every parked
// processor in the machine — the previous global cond.Broadcast cost
// O(P²) spurious wakeups per exchange phase at large P.
type msgQueue struct {
	q    []message
	cond *sync.Cond
}

type rvResult struct {
	vals    []any
	maxTime float64
}

// New creates a machine with P processors and the given cost model.
func New(p int, cost CostModel) *Machine {
	if p < 1 {
		panic("machine: need at least one processor")
	}
	m := &Machine{P: p, Cost: cost, mail: make([]msgQueue, p*p)}
	m.cond = sync.NewCond(&m.mu)
	for i := range m.mail {
		m.mail[i].cond = sync.NewCond(&m.mu)
	}
	m.rvVals = make([]any, p)
	m.rvTimes = make([]float64, p)
	return m
}

// NumProcs returns P; part of the pcomm.World surface.
func (m *Machine) NumProcs() int { return m.P }

// Proc is the handle a virtual processor uses inside Run. It must only be
// used from the goroutine it was handed to: never capture a *Proc in a go
// statement, store it in a package-level variable, or pass it through a
// channel (the procescape analyzer enforces this).
type Proc struct {
	id int
	m  *Machine

	now   float64
	stats Stats
	tr    *trace.ProcTracer // nil when tracing is off

	// blocked describes what the processor is waiting on, for the
	// watchdog's deadlock dump. Guarded by m.mu; the clock field is the
	// last virtual time observed at a machine operation, which is safe to
	// read while the owning goroutine is blocked or between operations.
	blocked blockedState
}

// blockedState records why a processor is parked inside the machine.
type blockedState struct {
	kind  string // "" (running), "send", "recv", "collective"
	src   int    // recv: source processor
	dst   int    // send: destination processor
	tag   int    // send/recv: message tag
	op    string // collective: operation name
	clock float64
}

// Run executes f on every processor concurrently and returns once all have
// finished. If any processor panics, the panic value is captured, all
// blocked processors are woken with the same failure, and Run panics with
// a *pcomm.RunError carrying the failing rank, its stack trace, the root
// panic value, and a blocked-state dump of the other processors. Run may
// be called at most once per Machine.
func (m *Machine) Run(f func(*Proc)) Result {
	m.mu.Lock()
	if m.started {
		m.mu.Unlock()
		panic("machine: Run called twice on the same Machine; a Machine is single-use — create a new Machine per run")
	}
	m.started = true
	procs := make([]*Proc, m.P)
	for i := 0; i < m.P; i++ {
		procs[i] = &Proc{id: i, m: m, tr: m.rec.Proc(i)}
	}
	m.procs = procs
	m.mu.Unlock()

	stopWatchdog := m.startWatchdog()
	defer stopWatchdog()

	var wg sync.WaitGroup
	wg.Add(m.P)
	for i := 0; i < m.P; i++ {
		go func(p *Proc) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					if _, secondary := r.(procAbort); secondary {
						m.fail(r)
						return
					}
					// debug.Stack() inside a deferred recover still sees
					// the panicking frames: defers run before the stack
					// unwinds, so the trace names the real culprit.
					m.failProc(p.id, r, string(debug.Stack()))
				}
			}()
			f(p)
		}(procs[i])
	}
	wg.Wait()
	m.mu.Lock()
	failed := m.failed
	rank, stack, dump := m.failRank, m.failStack, m.failDump
	m.mu.Unlock()
	if failed != nil {
		if abort, ok := failed.(procAbort); ok {
			failed = abort.cause
		}
		panic(&pcomm.RunError{Backend: "modelled", Rank: rank, Cause: failed, Stack: stack, Dump: dump})
	}
	res := Result{PerProc: make([]Stats, m.P)}
	for i, p := range procs {
		p.stats.Time = p.now
		res.PerProc[i] = p.stats
		if p.now > res.Elapsed {
			res.Elapsed = p.now
		}
	}
	return res
}

func (m *Machine) fail(cause any) {
	m.mu.Lock()
	if m.failed == nil {
		m.failed = cause
	}
	m.wakeAllLocked()
	m.mu.Unlock()
}

// failProc records a root-cause processor failure: the rank, its stack
// trace, and a blocked-state snapshot of every other processor at the
// moment of death. Only the first failure wins; secondary procAbort
// unwinds go through fail and never overwrite these fields.
func (m *Machine) failProc(rank int, cause any, stack string) {
	m.mu.Lock()
	if m.failed == nil {
		m.failed = cause
		m.failRank = rank
		m.failStack = stack
		m.failDump = m.dumpLocked()
		if stack != "" {
			m.failDump += fmt.Sprintf("\nroot-cause stack (proc %d):\n%s", rank, stack)
		}
	}
	m.wakeAllLocked()
	m.mu.Unlock()
}

// wakeAllLocked wakes every parked processor — collective waiters on the
// machine cond and receivers on their per-mailbox conds — so a failure
// (or the watchdog) reaches processors wherever they are blocked.
func (m *Machine) wakeAllLocked() {
	m.cond.Broadcast()
	for i := range m.mail {
		m.mail[i].cond.Broadcast()
	}
}

// procAbort wraps the original panic so that secondary processors woken by
// a failure do not overwrite the root cause when they unwind.
type procAbort struct{ cause any }

// SetRecorder attaches a trace recorder to the machine. It must be called
// before Run; the recorder must have been created for at least P
// processors. A nil recorder (the default) keeps tracing strictly off:
// every record site reduces to one nil pointer comparison and the virtual
// clocks are never touched either way, so the LogP cost model is
// identical with and without tracing.
func (m *Machine) SetRecorder(r *trace.Recorder) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.started {
		panic("machine: SetRecorder after Run")
	}
	if r != nil && r.NumProcs() < m.P {
		panic(fmt.Sprintf("machine: recorder covers %d processors, machine has %d", r.NumProcs(), m.P))
	}
	m.rec = r
}

// ID returns this processor's rank in [0, P).
func (p *Proc) ID() int { return p.id }

// P returns the number of processors in the run.
func (p *Proc) P() int { return p.m.P }

// Time returns the processor's current virtual clock in modelled seconds.
func (p *Proc) Time() float64 { return p.now }

// Tracer returns the processor's trace sink, nil when tracing is off. The
// returned value is safe to call either way; hot paths should guard with
// Enabled() to skip argument construction when tracing is off.
func (p *Proc) Tracer() *trace.ProcTracer { return p.tr }

// Machine returns the machine this processor belongs to.
func (p *Proc) Machine() *Machine { return p.m }

// Stats returns a snapshot of the processor's counters.
func (p *Proc) Stats() Stats {
	s := p.stats
	s.Time = p.now
	return s
}

// Work advances the virtual clock by flops floating-point operations.
func (p *Proc) Work(flops float64) {
	p.stats.Flops += flops
	dt := flops * p.m.Cost.FlopTime
	p.now += dt
	p.stats.Busy += dt
}

// Sleep advances the virtual clock by dt modelled seconds without counting
// flops; used to model non-flop local work (copying, sorting).
func (p *Proc) Sleep(dt float64) {
	p.now += dt
	p.stats.Busy += dt
}

// Send delivers payload to processor dst under the given tag. bytes is the
// payload size used by the cost model (use BytesOf* helpers). Sends are
// asynchronous and unbounded; matching is FIFO per (src, dst, tag).
func (p *Proc) Send(dst, tag int, payload any, bytes int) {
	m := p.m
	if dst < 0 || dst >= m.P {
		panic(fmt.Sprintf("machine: Send to invalid processor %d", dst))
	}
	p.stats.MsgsSent++
	p.stats.BytesSent += int64(bytes)
	p.now += m.Cost.Overhead
	arrival := p.now + m.Cost.Latency + float64(bytes)*m.Cost.ByteTime
	if p.tr != nil {
		p.tr.Instant("machine", "send", p.now,
			trace.I("dst", dst), trace.I("tag", tag), trace.I("bytes", bytes))
	}
	m.mu.Lock()
	p.blocked = blockedState{kind: "send", dst: dst, tag: tag, clock: p.now}
	box := p.id*m.P + dst
	m.mail[box].q = append(m.mail[box].q, message{tag: tag, payload: payload, arrival: arrival})
	m.mail[box].cond.Signal()
	p.blocked = blockedState{clock: p.now}
	m.mu.Unlock()
}

// Recv blocks until a message with the given tag from src is available and
// returns its payload, advancing the clock to at least the arrival time.
func (p *Proc) Recv(src, tag int) any {
	m := p.m
	if src < 0 || src >= m.P {
		panic(fmt.Sprintf("machine: Recv from invalid processor %d", src))
	}
	t0 := p.now
	msg := p.takeMessage(src, tag)
	p.now += m.Cost.Overhead
	if msg.arrival > p.now {
		p.now = msg.arrival
	}
	if p.tr != nil {
		p.tr.Span("machine", "recv", t0, p.now,
			trace.I("src", src), trace.I("tag", tag))
	}
	return msg.payload
}

// takeMessage blocks until the mailbox holds a message with the given tag
// and removes it. The machine mutex is held with defer so that a failure
// panic cannot leak the lock. While parked, the processor's blocked state
// names the (src, tag) it is waiting on for the watchdog dump.
func (p *Proc) takeMessage(src, tag int) message {
	m := p.m
	box := src*m.P + p.id
	m.mu.Lock()
	defer m.mu.Unlock()
	p.blocked = blockedState{kind: "recv", src: src, tag: tag, clock: p.now}
	defer func() { p.blocked = blockedState{clock: p.blocked.clock} }()
	for {
		m.checkFailedLocked()
		q := m.mail[box].q
		for i := range q {
			if q[i].tag == tag {
				msg := q[i]
				m.mail[box].q = append(q[:i], q[i+1:]...)
				return msg
			}
		}
		m.mail[box].cond.Wait()
	}
}

func (m *Machine) checkFailedLocked() {
	if m.failed != nil {
		panic(procAbort{m.failed})
	}
}

// collect is the rendezvous underlying every collective: all P processors
// deposit a value; everyone receives the full value slice and the maximum
// clock at entry. op names the collective for cross-call mismatch checks.
func (p *Proc) collect(op string, val any) ([]any, float64) {
	m := p.m
	p.stats.Collectives++
	m.mu.Lock()
	defer m.mu.Unlock()
	p.blocked = blockedState{kind: "collective", op: op, clock: p.now}
	defer func() { p.blocked = blockedState{clock: p.blocked.clock} }()
	m.checkFailedLocked()
	if m.rvCount == 0 {
		m.rvOp = op
	} else if m.rvOp != op {
		panic(fmt.Sprintf("machine: collective mismatch: %q vs %q", m.rvOp, op))
	}
	m.rvVals[p.id] = val
	m.rvTimes[p.id] = p.now
	m.rvCount++
	myGen := m.rvGen
	if m.rvCount == m.P {
		maxT := math.Inf(-1)
		for _, t := range m.rvTimes {
			if t > maxT {
				maxT = t
			}
		}
		vals := append([]any(nil), m.rvVals...)
		m.rvResult = &rvResult{vals: vals, maxTime: maxT}
		m.rvCount = 0
		m.rvGen++
		m.cond.Broadcast()
		return vals, maxT
	}
	for m.rvGen == myGen {
		m.checkFailedLocked()
		m.cond.Wait()
	}
	return m.rvResult.vals, m.rvResult.maxTime
}

// logP returns ceil(log2 P), at least 1.
func (p *Proc) logP() float64 {
	l := math.Ceil(math.Log2(float64(p.m.P)))
	if l < 1 {
		l = 1
	}
	return l
}

// traceCollective records a collective's span from the entry clock t0 to
// the processor's post-collective clock.
func (p *Proc) traceCollective(op string, t0 float64, bytes int) {
	if p.tr != nil {
		p.tr.Span("machine", op, t0, p.now, trace.I("bytes", bytes))
	}
}

// Barrier synchronizes all processors: everyone leaves with the same clock,
// max-over-procs plus a logarithmic synchronization cost.
func (p *Proc) Barrier() {
	t0 := p.now
	_, maxT := p.collect("barrier", nil)
	p.now = maxT + 2*p.logP()*p.m.Cost.Latency
	p.traceCollective("barrier", t0, 0)
}

// ReduceOp and the reduction operators are the pcomm vocabulary; the
// aliases keep machine-level code and tests spelled the traditional way.
type ReduceOp = pcomm.ReduceOp

// Reduction operators.
const (
	OpSum = pcomm.OpSum
	OpMax = pcomm.OpMax
	OpMin = pcomm.OpMin
)

// AllReduceFloat64 combines one float64 per processor with op; all
// processors receive the result.
func (p *Proc) AllReduceFloat64(v float64, op ReduceOp) float64 {
	t0 := p.now
	vals, maxT := p.collect("allreduce_f64", v)
	p.now = maxT + p.collectiveCost(8)
	p.traceCollective("allreduce_f64", t0, 8)
	out := vals[0].(float64)
	for _, a := range vals[1:] {
		x := a.(float64)
		switch op {
		case OpSum:
			out += x
		case OpMax:
			if x > out {
				out = x
			}
		case OpMin:
			if x < out {
				out = x
			}
		}
	}
	return out
}

// AllReduceInt combines one int per processor with op.
func (p *Proc) AllReduceInt(v int, op ReduceOp) int {
	t0 := p.now
	vals, maxT := p.collect("allreduce_int", v)
	p.now = maxT + p.collectiveCost(8)
	p.traceCollective("allreduce_int", t0, 8)
	out := vals[0].(int)
	for _, a := range vals[1:] {
		x := a.(int)
		switch op {
		case OpSum:
			out += x
		case OpMax:
			if x > out {
				out = x
			}
		case OpMin:
			if x < out {
				out = x
			}
		}
	}
	return out
}

// AllGather deposits one value per processor and returns the slice indexed
// by processor ID. bytes is the per-processor payload size for the cost
// model.
func (p *Proc) AllGather(v any, bytes int) []any {
	t0 := p.now
	vals, maxT := p.collect("allgather", v)
	// Recursive-doubling allgather moves ~P×bytes per processor total.
	p.now = maxT + p.logP()*p.m.Cost.Latency + float64(p.m.P*bytes)*p.m.Cost.ByteTime
	p.traceCollective("allgather", t0, bytes)
	return vals
}

// collectiveCost models an allreduce-style exchange of b bytes.
func (p *Proc) collectiveCost(b int) float64 {
	return p.logP() * (p.m.Cost.Latency + float64(b)*p.m.Cost.ByteTime)
}

// The BytesOf* sizing helpers and Copy* payload-detachment helpers live
// in pcomm (their canonical home since the communicator abstraction was
// extracted); these wrappers keep the traditional machine-qualified
// spelling working for machine-level code and tests.

// BytesOfFloats returns the modelled wire size of n float64s.
func BytesOfFloats(n int) int { return pcomm.BytesOfFloats(n) }

// BytesOfInts returns the modelled wire size of n int indices.
func BytesOfInts(n int) int { return pcomm.BytesOfInts(n) }

// BytesOfUint64s returns the modelled wire size of n uint64 keys.
func BytesOfUint64s(n int) int { return pcomm.BytesOfUint64s(n) }

// BytesOfBools returns the modelled wire size of n boolean flags.
func BytesOfBools(n int) int { return pcomm.BytesOfBools(n) }

// CopyInts returns a copy of xs that shares no memory with it.
func CopyInts(xs []int) []int { return pcomm.CopyInts(xs) }

// CopyFloats returns a copy of xs that shares no memory with it.
func CopyFloats(xs []float64) []float64 { return pcomm.CopyFloats(xs) }

// CopyBools returns a copy of xs that shares no memory with it.
func CopyBools(xs []bool) []bool { return pcomm.CopyBools(xs) }
