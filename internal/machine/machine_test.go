package machine

import (
	"math"
	"sync/atomic"
	"testing"
	"testing/quick"

	"repro/internal/pcomm"
)

func TestSendRecvBasic(t *testing.T) {
	m := New(2, Zero())
	var got int
	m.Run(func(p *Proc) {
		if p.ID() == 0 {
			p.Send(1, 7, 42, 8)
		} else {
			got = p.Recv(0, 7).(int)
		}
	})
	if got != 42 {
		t.Fatalf("got %d, want 42", got)
	}
}

func TestSendRecvFIFOPerTag(t *testing.T) {
	m := New(2, Zero())
	var order []int
	m.Run(func(p *Proc) {
		if p.ID() == 0 {
			for i := 0; i < 5; i++ {
				p.Send(1, 1, i, 8)
			}
		} else {
			for i := 0; i < 5; i++ {
				order = append(order, p.Recv(0, 1).(int))
			}
		}
	})
	for i, v := range order {
		if v != i {
			t.Fatalf("FIFO violated: %v", order)
		}
	}
}

func TestRecvByTagOutOfOrder(t *testing.T) {
	m := New(2, Zero())
	var a, b int
	m.Run(func(p *Proc) {
		if p.ID() == 0 {
			p.Send(1, 10, 100, 8)
			p.Send(1, 20, 200, 8)
		} else {
			b = p.Recv(0, 20).(int) // receive the later tag first
			a = p.Recv(0, 10).(int)
		}
	})
	if a != 100 || b != 200 {
		t.Fatalf("tag-directed receive failed: a=%d b=%d", a, b)
	}
}

func TestClockAdvancesOnWork(t *testing.T) {
	cost := CostModel{FlopTime: 1e-6}
	m := New(1, cost)
	res := m.Run(func(p *Proc) {
		p.Work(1000)
	})
	if math.Abs(res.Elapsed-1e-3) > 1e-12 {
		t.Fatalf("elapsed = %v, want 1e-3", res.Elapsed)
	}
	if res.PerProc[0].Flops != 1000 {
		t.Fatalf("flops = %v", res.PerProc[0].Flops)
	}
}

func TestMessageTimestampPropagation(t *testing.T) {
	cost := CostModel{FlopTime: 1e-6, Latency: 1e-3, ByteTime: 1e-6}
	m := New(2, cost)
	var recvTime float64
	m.Run(func(p *Proc) {
		if p.ID() == 0 {
			p.Work(5000) // clock = 5ms
			p.Send(1, 0, nil, 1000)
		} else {
			p.Recv(0, 0)
			recvTime = p.Time()
		}
	})
	// Receiver idle until 5ms + 1ms latency + 1ms transfer = 7ms.
	want := 0.007
	if math.Abs(recvTime-want) > 1e-9 {
		t.Fatalf("recv clock = %v, want %v", recvTime, want)
	}
}

func TestRecvDoesNotRewindClock(t *testing.T) {
	cost := CostModel{FlopTime: 1e-6, Latency: 1e-6}
	m := New(2, cost)
	var recvTime float64
	m.Run(func(p *Proc) {
		if p.ID() == 0 {
			p.Send(1, 0, nil, 0) // arrives early
		} else {
			p.Work(1e6) // 1 second of local work first
			p.Recv(0, 0)
			recvTime = p.Time()
		}
	})
	if recvTime < 1.0 {
		t.Fatalf("clock rewound to %v", recvTime)
	}
}

func TestBarrierSynchronizesClocks(t *testing.T) {
	cost := CostModel{FlopTime: 1e-6, Latency: 1e-6}
	m := New(4, Zero())
	m.Cost = cost
	times := make([]float64, 4)
	m.Run(func(p *Proc) {
		p.Work(float64(p.ID()) * 1000) // uneven work
		p.Barrier()
		times[p.ID()] = p.Time()
	})
	for i := 1; i < 4; i++ {
		if times[i] != times[0] {
			t.Fatalf("clocks differ after barrier: %v", times)
		}
	}
	if times[0] < 3e-3 {
		t.Fatalf("barrier time %v below slowest processor", times[0])
	}
}

func TestAllReduce(t *testing.T) {
	m := New(5, Zero())
	sums := make([]float64, 5)
	maxs := make([]int, 5)
	mins := make([]int, 5)
	m.Run(func(p *Proc) {
		sums[p.ID()] = p.AllReduceFloat64(float64(p.ID()+1), OpSum)
		maxs[p.ID()] = p.AllReduceInt(p.ID(), OpMax)
		mins[p.ID()] = p.AllReduceInt(p.ID()+10, OpMin)
	})
	for i := 0; i < 5; i++ {
		if sums[i] != 15 {
			t.Errorf("proc %d sum = %v, want 15", i, sums[i])
		}
		if maxs[i] != 4 {
			t.Errorf("proc %d max = %d, want 4", i, maxs[i])
		}
		if mins[i] != 10 {
			t.Errorf("proc %d min = %d, want 10", i, mins[i])
		}
	}
}

func TestAllGather(t *testing.T) {
	m := New(3, Zero())
	var results [3][][]int
	m.Run(func(p *Proc) {
		results[p.ID()] = pcomm.AllGatherInts(p, []int{p.ID(), p.ID() * 10})
	})
	for pid := 0; pid < 3; pid++ {
		for src := 0; src < 3; src++ {
			got := results[pid][src]
			if got[0] != src || got[1] != src*10 {
				t.Fatalf("proc %d: gathered[%d] = %v", pid, src, got)
			}
		}
	}
}

func TestAllGatherFloats(t *testing.T) {
	m := New(2, Zero())
	var out [][]float64
	m.Run(func(p *Proc) {
		g := pcomm.AllGatherFloats(p, []float64{float64(p.ID()) + 0.5})
		if p.ID() == 0 {
			out = g
		}
	})
	if out[0][0] != 0.5 || out[1][0] != 1.5 {
		t.Fatalf("gathered %v", out)
	}
}

func TestRepeatedCollectives(t *testing.T) {
	m := New(4, Zero())
	m.Run(func(p *Proc) {
		for i := 0; i < 100; i++ {
			s := p.AllReduceInt(1, OpSum)
			if s != 4 {
				panic("bad sum")
			}
		}
	})
}

func TestStatsCounters(t *testing.T) {
	m := New(2, Zero())
	res := m.Run(func(p *Proc) {
		if p.ID() == 0 {
			p.Send(1, 0, nil, 100)
			p.Send(1, 0, nil, 50)
		} else {
			p.Recv(0, 0)
			p.Recv(0, 0)
		}
		p.Barrier()
	})
	if res.PerProc[0].MsgsSent != 2 || res.PerProc[0].BytesSent != 150 {
		t.Errorf("proc 0 stats = %+v", res.PerProc[0])
	}
	if res.PerProc[1].MsgsSent != 0 {
		t.Errorf("proc 1 sent %d messages", res.PerProc[1].MsgsSent)
	}
	if res.PerProc[0].Collectives != 1 {
		t.Errorf("collectives = %d", res.PerProc[0].Collectives)
	}
	if res.TotalBytes() != 150 {
		t.Errorf("TotalBytes = %d", res.TotalBytes())
	}
}

func TestPanicPropagation(t *testing.T) {
	m := New(3, Zero())
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic to propagate from Run")
		}
	}()
	m.Run(func(p *Proc) {
		if p.ID() == 1 {
			panic("boom")
		}
		// Other processors block; the failure must wake them.
		p.Recv((p.ID()+1)%3, 99)
	})
}

func TestElapsedIsMax(t *testing.T) {
	cost := CostModel{FlopTime: 1e-6}
	m := New(3, cost)
	res := m.Run(func(p *Proc) {
		p.Work(float64(p.ID()) * 1e6)
	})
	if math.Abs(res.Elapsed-2.0) > 1e-9 {
		t.Fatalf("Elapsed = %v, want 2.0", res.Elapsed)
	}
}

func TestManyProcessorsStress(t *testing.T) {
	m := New(64, Zero())
	var total int64
	m.Run(func(p *Proc) {
		// Ring exchange.
		next := (p.ID() + 1) % 64
		prev := (p.ID() + 63) % 64
		p.Send(next, 5, p.ID(), 8)
		v := p.Recv(prev, 5).(int)
		atomic.AddInt64(&total, int64(v))
		p.Barrier()
	})
	if total != 64*63/2 {
		t.Fatalf("ring total = %d", total)
	}
}

// Property: virtual clocks are non-decreasing through any sequence of
// operations, and barrier leaves all clocks equal.
func TestClockMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		if seed < 0 {
			seed = -(seed + 1)
		}
		p := int(seed%4) + 2
		m := New(p, T3D())
		ok := int32(1)
		m.Run(func(pr *Proc) {
			last := pr.Time()
			check := func() {
				if pr.Time() < last {
					atomic.StoreInt32(&ok, 0)
				}
				last = pr.Time()
			}
			pr.Work(float64((seed%100)+1) * 10)
			check()
			pr.Send((pr.ID()+1)%p, 1, nil, int(seed%1000))
			check()
			pr.Recv((pr.ID()+p-1)%p, 1)
			check()
			pr.Barrier()
			check()
			pr.AllReduceFloat64(1, OpSum)
			check()
		})
		return ok == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestT3DConstantsSane(t *testing.T) {
	c := T3D()
	if c.FlopTime <= 0 || c.Latency <= 0 || c.ByteTime <= 0 {
		t.Fatal("T3D constants must be positive")
	}
	w := Workstation()
	if w.Latency <= c.Latency {
		t.Error("workstation network should be slower than T3D")
	}
}

func TestCollectiveMismatchPanics(t *testing.T) {
	m := New(2, Zero())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on mismatched collectives")
		}
	}()
	m.Run(func(p *Proc) {
		if p.ID() == 0 {
			p.Barrier()
		} else {
			p.AllReduceInt(1, OpSum)
		}
	})
}

func TestSleepAdvancesClock(t *testing.T) {
	m := New(1, Zero())
	res := m.Run(func(p *Proc) {
		p.Sleep(0.25)
	})
	if res.Elapsed != 0.25 {
		t.Fatalf("Elapsed = %v, want 0.25", res.Elapsed)
	}
}

func TestSendInvalidDestination(t *testing.T) {
	m := New(2, Zero())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Run(func(p *Proc) {
		if p.ID() == 0 {
			p.Send(5, 0, nil, 0)
		} else {
			p.Recv(0, 0)
		}
	})
}

func TestProcStatsSnapshot(t *testing.T) {
	m := New(1, CostModel{FlopTime: 1})
	m.Run(func(p *Proc) {
		p.Work(3)
		s := p.Stats()
		if s.Flops != 3 || s.Time != 3 {
			panic("stats snapshot wrong")
		}
	})
}

func TestBytesHelpers(t *testing.T) {
	if BytesOfFloats(3) != 24 || BytesOfInts(2) != 16 {
		t.Fatal("byte helpers wrong")
	}
}

func TestMachineAccessor(t *testing.T) {
	m := New(3, Zero())
	m.Run(func(p *Proc) {
		if p.Machine() != m || p.Machine().P != 3 || p.P() != 3 {
			panic("Machine accessor wrong")
		}
	})
}

func TestTotalFlopsAndResult(t *testing.T) {
	m := New(2, CostModel{FlopTime: 1e-9})
	res := m.Run(func(p *Proc) {
		p.Work(100)
	})
	if res.TotalFlops() != 200 {
		t.Fatalf("TotalFlops = %v", res.TotalFlops())
	}
}

func TestBusyAndOverheadAccounting(t *testing.T) {
	cost := CostModel{FlopTime: 1e-3, Latency: 1e-3}
	m := New(2, cost)
	res := m.Run(func(p *Proc) {
		if p.ID() == 0 {
			p.Work(10) // 10 ms busy
			p.Send(1, 0, nil, 0)
		} else {
			p.Recv(0, 0) // idles ~11 ms
		}
	})
	if res.PerProc[0].Busy <= 0 {
		t.Fatal("no busy time recorded")
	}
	of := res.OverheadFraction()
	if of <= 0 || of >= 1 {
		t.Fatalf("overhead fraction %v out of (0,1)", of)
	}
	// Proc 1 did no work: overhead ≥ 50% of processor-time minus proc 0's
	// send overhead share.
	if of < 0.4 {
		t.Fatalf("overhead fraction %v implausibly low", of)
	}
}
