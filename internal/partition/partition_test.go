package partition

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/matgen"
)

func gridGraph(nx, ny int) *graph.Graph {
	return graph.FromMatrix(matgen.Grid2D(nx, ny))
}

func TestKWayBasicInvariants(t *testing.T) {
	g := gridGraph(20, 20)
	for _, k := range []int{1, 2, 3, 4, 8} {
		part := KWay(g, k, Options{Seed: 42})
		cut, weights, err := Validate(g, part, k)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		// Every part nonempty.
		for p, w := range weights {
			if w == 0 {
				t.Errorf("k=%d: part %d empty", k, p)
			}
		}
		if k == 1 && cut != 0 {
			t.Errorf("k=1 cut = %d, want 0", cut)
		}
	}
}

func TestKWayBalance(t *testing.T) {
	g := gridGraph(30, 30)
	for _, k := range []int{2, 4, 8, 16} {
		part := KWay(g, k, Options{Seed: 7, Ubfactor: 1.05})
		_, weights, err := Validate(g, part, k)
		if err != nil {
			t.Fatal(err)
		}
		target := float64(g.TotalVWgt()) / float64(k)
		for p, w := range weights {
			// Recursive bisection compounds tolerance; allow 1.30×.
			if float64(w) > 1.30*target {
				t.Errorf("k=%d part %d weight %d exceeds 1.3×target (%.1f)", k, p, w, target)
			}
		}
	}
}

func TestKWayBeatsRandomCut(t *testing.T) {
	g := gridGraph(32, 32)
	for _, k := range []int{2, 4, 8} {
		ml := KWay(g, k, Options{Seed: 3})
		rnd := RandomKWay(g, k, 3)
		mlCut := g.EdgeCut(ml)
		rndCut := g.EdgeCut(rnd)
		if mlCut*2 >= rndCut {
			t.Errorf("k=%d: multilevel cut %d not ≪ random cut %d", k, mlCut, rndCut)
		}
	}
}

func TestBisectionCutNearOptimalOnGrid(t *testing.T) {
	// Optimal bisection of an n×n grid cuts ~n edges. Allow 3×.
	n := 24
	g := gridGraph(n, n)
	part := KWay(g, 2, Options{Seed: 11})
	cut := g.EdgeCut(part)
	if cut > 3*n {
		t.Errorf("bisection cut %d, want ≤ %d for %d×%d grid", cut, 3*n, n, n)
	}
}

func TestKWayDeterministicForSeed(t *testing.T) {
	g := gridGraph(15, 15)
	p1 := KWay(g, 4, Options{Seed: 5})
	p2 := KWay(g, 4, Options{Seed: 5})
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("same seed produced different partitions")
		}
	}
}

func TestKWayIrregularGraph(t *testing.T) {
	a := matgen.RandomSPDPattern(400, 6, 99)
	g := graph.FromMatrix(a)
	part := KWay(g, 8, Options{Seed: 1})
	_, weights, err := Validate(g, part, 8)
	if err != nil {
		t.Fatal(err)
	}
	for p, w := range weights {
		if w == 0 {
			t.Errorf("part %d empty", p)
		}
	}
}

func TestKWayTorso(t *testing.T) {
	a := matgen.Torso(8, 8, 8, 1)
	g := graph.FromMatrix(a)
	part := KWay(g, 4, Options{Seed: 2})
	cut, _, err := Validate(g, part, 4)
	if err != nil {
		t.Fatal(err)
	}
	rndCut := g.EdgeCut(RandomKWay(g, 4, 2))
	if cut >= rndCut {
		t.Errorf("multilevel cut %d no better than random %d on torso", cut, rndCut)
	}
}

func TestKWayNpartsExceedsVertices(t *testing.T) {
	g := gridGraph(2, 2) // 4 vertices
	part := KWay(g, 4, Options{Seed: 1})
	if _, weights, err := Validate(g, part, 4); err != nil {
		t.Fatal(err)
	} else {
		for p, w := range weights {
			if w != 1 {
				t.Errorf("part %d weight %d, want 1", p, w)
			}
		}
	}
}

func TestValidateErrors(t *testing.T) {
	g := gridGraph(3, 3)
	if _, _, err := Validate(g, []int{0}, 2); err == nil {
		t.Error("expected length error")
	}
	bad := make([]int, 9)
	bad[0] = 7
	if _, _, err := Validate(g, bad, 2); err == nil {
		t.Error("expected out-of-range part error")
	}
}

func TestGainHeap(t *testing.T) {
	h := newGainHeap(4)
	h.push(1, 5)
	h.push(2, 9)
	h.push(3, 1)
	h.push(4, 9)
	v, g := h.pop()
	if g != 9 {
		t.Fatalf("pop gain %d, want 9", g)
	}
	_ = v
	if _, g2 := h.pop(); g2 != 9 {
		t.Fatalf("second pop gain %d, want 9", g2)
	}
	if _, g3 := h.pop(); g3 != 5 {
		t.Fatalf("third pop gain %d, want 5", g3)
	}
	if _, g4 := h.pop(); g4 != 1 {
		t.Fatalf("fourth pop gain %d, want 1", g4)
	}
	if h.len() != 0 {
		t.Fatal("heap not empty")
	}
}

func TestSubgraphExtraction(t *testing.T) {
	g := gridGraph(4, 4)
	side := make([]int, 16)
	for v := 8; v < 16; v++ {
		side[v] = 1
	}
	sub, vmap := subgraph(g, side, 0)
	if sub.NVtx != 8 {
		t.Fatalf("subgraph NVtx = %d, want 8", sub.NVtx)
	}
	if err := sub.Validate(); err != nil {
		t.Fatal(err)
	}
	// Edge count: the 2×4 block has 10 internal edges.
	if sub.NEdges() != 10 {
		t.Errorf("subgraph edges = %d, want 10", sub.NEdges())
	}
	for i, v := range vmap {
		if v != i {
			t.Errorf("vmap[%d] = %d, want %d", i, v, i)
		}
	}
}

// Property: KWay always produces a valid cover with nonempty parts when
// k ≤ number of vertices, for random connected-ish graphs.
func TestKWayValidCoverProperty(t *testing.T) {
	f := func(seed int64) bool {
		if seed < 0 {
			seed = -(seed + 1)
		}
		n := 20 + int(seed%60)
		a := matgen.RandomSPDPattern(n, 4, seed)
		g := graph.FromMatrix(a)
		k := 2 + int(seed%6)
		part := KWay(g, k, Options{Seed: seed + 1})
		_, weights, err := Validate(g, part, k)
		if err != nil {
			return false
		}
		for _, w := range weights {
			if w == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestOptionsNormalize(t *testing.T) {
	o := Options{}.Normalize()
	if o.Ubfactor < 1 || o.CoarsenTo <= 0 || o.NIter <= 0 || o.NInitTries <= 0 || o.Seed == 0 {
		t.Fatalf("defaults not applied: %+v", o)
	}
	custom := Options{Ubfactor: 1.2, CoarsenTo: 10, NIter: 3, NInitTries: 2, Seed: 9}.Normalize()
	if custom != (Options{Ubfactor: 1.2, CoarsenTo: 10, NIter: 3, NInitTries: 2, Seed: 9}) {
		t.Fatalf("custom values overridden: %+v", custom)
	}
}
