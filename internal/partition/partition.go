// Package partition implements a from-scratch multilevel k-way graph
// partitioner in the style the paper relies on (Karypis & Kumar's
// multilevel scheme, reference [6] of the paper): heavy-edge-matching
// coarsening, greedy graph-growing initial bisection, Fiduccia–Mattheyses
// boundary refinement during uncoarsening, and recursive bisection to k
// parts. It replaces the ParMETIS dependency of the original system.
package partition

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
)

// Options control the partitioner. The zero value is usable; Normalize
// fills in defaults.
type Options struct {
	// Ubfactor is the allowed imbalance: every part may weigh up to
	// Ubfactor × (total/nparts). Default 1.05.
	Ubfactor float64
	// CoarsenTo stops coarsening once the graph has at most this many
	// vertices. Default 80.
	CoarsenTo int
	// NIter is the number of FM refinement passes per level. Default 6.
	NIter int
	// NInitTries is the number of greedy-growing attempts for the initial
	// bisection of the coarsest graph. Default 8.
	NInitTries int
	// Seed drives every random choice; runs are reproducible. Default 1.
	Seed int64
}

// Normalize returns a copy of o with defaults applied.
func (o Options) Normalize() Options {
	if o.Ubfactor < 1 {
		o.Ubfactor = 1.05
	}
	if o.CoarsenTo <= 0 {
		o.CoarsenTo = 80
	}
	if o.NIter <= 0 {
		o.NIter = 6
	}
	if o.NInitTries <= 0 {
		o.NInitTries = 8
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// KWay partitions g into nparts parts by multilevel recursive bisection
// and returns the part assignment (values in [0, nparts)).
func KWay(g *graph.Graph, nparts int, opt Options) []int {
	if nparts < 1 {
		panic("partition: nparts must be ≥ 1")
	}
	opt = opt.Normalize()
	part := make([]int, g.NVtx)
	if nparts == 1 {
		return part
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	vtxMap := make([]int, g.NVtx) // identity mapping at the top level
	for i := range vtxMap {
		vtxMap[i] = i
	}
	recursiveBisect(g, vtxMap, nparts, 0, part, opt, rng)
	return part
}

// RandomKWay assigns vertices to parts uniformly at random (balanced by
// round-robin of a shuffled order). Baseline for the partition-quality
// ablation.
func RandomKWay(g *graph.Graph, nparts int, seed int64) []int {
	rng := rand.New(rand.NewSource(seed))
	order := rng.Perm(g.NVtx)
	part := make([]int, g.NVtx)
	for k, v := range order {
		part[v] = k % nparts
	}
	return part
}

// recursiveBisect partitions the subgraph g (whose vertex v corresponds to
// original vertex vtxMap[v]) into nparts parts numbered starting at
// firstPart, writing assignments into the global part array.
func recursiveBisect(g *graph.Graph, vtxMap []int, nparts, firstPart int, part []int, opt Options, rng *rand.Rand) {
	if nparts == 1 {
		for _, orig := range vtxMap {
			part[orig] = firstPart
		}
		return
	}
	k0 := (nparts + 1) / 2
	k1 := nparts - k0
	total := g.TotalVWgt()
	target0 := int(float64(total) * float64(k0) / float64(nparts))

	side := multilevelBisect(g, target0, opt, rng)

	sub0, map0 := subgraph(g, side, 0)
	sub1, map1 := subgraph(g, side, 1)
	// Compose mappings back to original vertices.
	orig0 := make([]int, len(map0))
	for i, v := range map0 {
		orig0[i] = vtxMap[v]
	}
	orig1 := make([]int, len(map1))
	for i, v := range map1 {
		orig1[i] = vtxMap[v]
	}
	recursiveBisect(sub0, orig0, k0, firstPart, part, opt, rng)
	recursiveBisect(sub1, orig1, k1, firstPart+k0, part, opt, rng)
}

// subgraph extracts the vertices of g with side[v] == which, returning the
// induced subgraph and the mapping from subgraph vertex → g vertex.
func subgraph(g *graph.Graph, side []int, which int) (*graph.Graph, []int) {
	newID := make([]int, g.NVtx)
	var vmap []int
	for v := 0; v < g.NVtx; v++ {
		if side[v] == which {
			newID[v] = len(vmap)
			vmap = append(vmap, v)
		} else {
			newID[v] = -1
		}
	}
	s := &graph.Graph{NVtx: len(vmap), Xadj: make([]int, len(vmap)+1)}
	for i, v := range vmap {
		deg := 0
		for _, u := range g.Neighbors(v) {
			if newID[u] >= 0 {
				deg++
			}
		}
		s.Xadj[i+1] = s.Xadj[i] + deg
	}
	s.Adj = make([]int, s.Xadj[len(vmap)])
	s.AdjWgt = make([]int, s.Xadj[len(vmap)])
	s.VWgt = make([]int, len(vmap))
	for i, v := range vmap {
		s.VWgt[i] = g.VWgt[v]
		p := s.Xadj[i]
		adj := g.Neighbors(v)
		wgt := g.EdgeWeights(v)
		for k, u := range adj {
			if newID[u] >= 0 {
				s.Adj[p] = newID[u]
				s.AdjWgt[p] = wgt[k]
				p++
			}
		}
	}
	return s, vmap
}

// level holds one rung of the multilevel hierarchy.
type level struct {
	g    *graph.Graph
	cmap []int // fine vertex → coarse vertex in the next level
}

// multilevelBisect bisects g so that side 0 weighs approximately target0.
// Returns the 0/1 side assignment.
func multilevelBisect(g *graph.Graph, target0 int, opt Options, rng *rand.Rand) []int {
	// Coarsening phase.
	var levels []level
	cur := g
	for cur.NVtx > opt.CoarsenTo {
		coarse, cmap := coarsen(cur, rng)
		if coarse.NVtx >= cur.NVtx*95/100 {
			// Matching stalled (e.g. star graphs); stop coarsening.
			break
		}
		levels = append(levels, level{g: cur, cmap: cmap})
		cur = coarse
	}

	// Initial bisection on the coarsest graph.
	side := initialBisect(cur, target0, opt, rng)
	fmRefine(cur, side, target0, opt, rng)

	// Uncoarsening with refinement.
	for li := len(levels) - 1; li >= 0; li-- {
		fine := levels[li]
		fineSide := make([]int, fine.g.NVtx)
		for v := 0; v < fine.g.NVtx; v++ {
			fineSide[v] = side[fine.cmap[v]]
		}
		side = fineSide
		fmRefine(fine.g, side, target0, opt, rng)
	}
	return side
}

// coarsen performs one level of heavy-edge matching and graph contraction.
func coarsen(g *graph.Graph, rng *rand.Rand) (*graph.Graph, []int) {
	match := make([]int, g.NVtx)
	for i := range match {
		match[i] = -1
	}
	order := rng.Perm(g.NVtx)
	cmap := make([]int, g.NVtx)
	nc := 0
	for _, v := range order {
		if match[v] != -1 {
			continue
		}
		best, bestW := -1, -1
		adj := g.Neighbors(v)
		wgt := g.EdgeWeights(v)
		for k, u := range adj {
			if match[u] == -1 && wgt[k] > bestW {
				best, bestW = u, wgt[k]
			}
		}
		if best == -1 {
			match[v] = v
			cmap[v] = nc
			nc++
		} else {
			match[v] = best
			match[best] = v
			cmap[v] = nc
			cmap[best] = nc
			nc++
		}
	}

	coarse := &graph.Graph{NVtx: nc, Xadj: make([]int, nc+1), VWgt: make([]int, nc)}
	for v := 0; v < g.NVtx; v++ {
		coarse.VWgt[cmap[v]] += g.VWgt[v]
	}

	// Merge adjacency lists of matched pairs with a stamped workspace.
	stamp := make([]int, nc)
	slot := make([]int, nc)
	for i := range stamp {
		stamp[i] = -1
	}
	var cadj []int
	var cwgt []int
	members := make([][2]int, nc)
	for i := range members {
		members[i] = [2]int{-1, -1}
	}
	for v := 0; v < g.NVtx; v++ {
		c := cmap[v]
		if members[c][0] == -1 {
			members[c][0] = v
		} else {
			members[c][1] = v
		}
	}
	for c := 0; c < nc; c++ {
		start := len(cadj)
		for _, v := range members[c] {
			if v == -1 {
				continue
			}
			adj := g.Neighbors(v)
			wgt := g.EdgeWeights(v)
			for k, u := range adj {
				cu := cmap[u]
				if cu == c {
					continue // internal edge of the contracted pair
				}
				if stamp[cu] != c {
					stamp[cu] = c
					slot[cu] = len(cadj)
					cadj = append(cadj, cu)
					cwgt = append(cwgt, wgt[k])
				} else {
					cwgt[slot[cu]] += wgt[k]
				}
			}
		}
		coarse.Xadj[c+1] = coarse.Xadj[c] + (len(cadj) - start)
	}
	coarse.Adj = cadj
	coarse.AdjWgt = cwgt
	return coarse, cmap
}

// initialBisect produces a starting bisection of the coarsest graph by
// greedy graph growing: grow a BFS region from a random seed until side 0
// reaches its target weight; repeat several times and keep the smallest
// refined cut.
func initialBisect(g *graph.Graph, target0 int, opt Options, rng *rand.Rand) []int {
	best := make([]int, g.NVtx)
	bestCut := -1
	side := make([]int, g.NVtx)
	for try := 0; try < opt.NInitTries; try++ {
		for i := range side {
			side[i] = 1
		}
		w0 := 0
		start := rng.Intn(g.NVtx)
		queue := []int{start}
		seen := make([]bool, g.NVtx)
		seen[start] = true
		for len(queue) > 0 && w0 < target0 {
			v := queue[0]
			queue = queue[1:]
			side[v] = 0
			w0 += g.VWgt[v]
			for _, u := range g.Neighbors(v) {
				if !seen[u] {
					seen[u] = true
					queue = append(queue, u)
				}
			}
		}
		// If the BFS ran out of vertices (disconnected graph), fill from
		// arbitrary remaining vertices.
		for v := 0; v < g.NVtx && w0 < target0; v++ {
			if side[v] == 1 {
				side[v] = 0
				w0 += g.VWgt[v]
			}
		}
		fmRefine(g, side, target0, opt, rng)
		cut := g.EdgeCut(side)
		if bestCut < 0 || cut < bestCut {
			bestCut = cut
			copy(best, side)
		}
	}
	return best
}

// fmRefine runs Fiduccia–Mattheyses boundary refinement passes on a
// bisection in place, respecting the balance tolerance in opt.
func fmRefine(g *graph.Graph, side []int, target0 int, opt Options, rng *rand.Rand) {
	total := g.TotalVWgt()
	maxVW := 1
	for _, w := range g.VWgt {
		if w > maxVW {
			maxVW = w
		}
	}
	// Allowed deviation from the target split.
	dev := int(float64(total) * (opt.Ubfactor - 1))
	if dev < maxVW {
		dev = maxVW
	}
	lo0, hi0 := target0-dev, target0+dev
	// Never allow a side to empty out, no matter how small the graph.
	if lo0 < 1 {
		lo0 = 1
	}
	if hi0 > total-1 {
		hi0 = total - 1
	}

	for pass := 0; pass < opt.NIter; pass++ {
		if !fmPass(g, side, target0, lo0, hi0, rng) {
			break
		}
	}
}

// fmPass performs a single FM pass: tentatively move the best-gain
// boundary vertices one at a time (each vertex at most once), then roll
// back to the best prefix observed. Reports whether the cut improved.
func fmPass(g *graph.Graph, side []int, target0, lo0, hi0 int, rng *rand.Rand) bool {
	n := g.NVtx
	gain := make([]int, n)
	locked := make([]bool, n)
	w0 := 0
	for v := 0; v < n; v++ {
		if side[v] == 0 {
			w0 += g.VWgt[v]
		}
	}
	h := newGainHeap(n)
	computeGain := func(v int) int {
		ext, in := 0, 0
		adj := g.Neighbors(v)
		wgt := g.EdgeWeights(v)
		for k, u := range adj {
			if side[u] != side[v] {
				ext += wgt[k]
			} else {
				in += wgt[k]
			}
		}
		return ext - in
	}
	for v := 0; v < n; v++ {
		gain[v] = computeGain(v)
		// Seed the heap with boundary vertices only; moving interior
		// vertices first never helps and bloats the pass.
		if isBoundary(g, side, v) {
			h.push(v, gain[v])
		}
	}

	type move struct {
		v    int
		gain int
	}
	var moves []move
	cutDelta := 0
	bestDelta := 0
	bestPrefix := 0
	balancedAtBest := w0 >= lo0 && w0 <= hi0

	for h.len() > 0 {
		v, gv := h.pop()
		if locked[v] || gv != gain[v] {
			if !locked[v] {
				h.push(v, gain[v]) // stale entry; reinsert with fresh gain
			}
			continue
		}
		// Balance check for moving v to the other side.
		nw0 := w0
		if side[v] == 0 {
			nw0 -= g.VWgt[v]
		} else {
			nw0 += g.VWgt[v]
		}
		if nw0 < lo0-g.VWgt[v] || nw0 > hi0+g.VWgt[v] {
			continue // hopelessly unbalancing; skip this vertex
		}
		locked[v] = true
		side[v] ^= 1
		w0 = nw0
		cutDelta -= gv
		moves = append(moves, move{v, gv})
		// Update neighbour gains.
		adj := g.Neighbors(v)
		wgt := g.EdgeWeights(v)
		for k, u := range adj {
			if locked[u] {
				continue
			}
			if side[u] == side[v] {
				gain[u] -= 2 * wgt[k]
			} else {
				gain[u] += 2 * wgt[k]
			}
			h.push(u, gain[u])
		}
		balanced := w0 >= lo0 && w0 <= hi0
		if (balanced && !balancedAtBest) || (balanced == balancedAtBest && cutDelta < bestDelta) {
			bestDelta = cutDelta
			bestPrefix = len(moves)
			balancedAtBest = balanced
		}
	}

	// Roll back moves after the best prefix.
	for i := len(moves) - 1; i >= bestPrefix; i-- {
		side[moves[i].v] ^= 1
	}
	return bestDelta < 0
}

func isBoundary(g *graph.Graph, side []int, v int) bool {
	for _, u := range g.Neighbors(v) {
		if side[u] != side[v] {
			return true
		}
	}
	return false
}

// Validate checks that part is a proper nparts-way assignment of g and
// returns the cut and part weights. Used by tests and the CLI.
func Validate(g *graph.Graph, part []int, nparts int) (cut int, weights []int, err error) {
	if len(part) != g.NVtx {
		return 0, nil, fmt.Errorf("partition: assignment length %d for %d vertices", len(part), g.NVtx)
	}
	for v, p := range part {
		if p < 0 || p >= nparts {
			return 0, nil, fmt.Errorf("partition: vertex %d assigned to invalid part %d", v, p)
		}
	}
	return g.EdgeCut(part), g.PartWeights(part, nparts), nil
}

// gainHeap is a binary max-heap of (vertex, gain) pairs. It permits stale
// entries: pop returns the recorded gain so callers can detect and discard
// entries that no longer match the current gain table.
type gainHeap struct {
	vtx  []int
	gain []int
}

func newGainHeap(capHint int) *gainHeap {
	return &gainHeap{vtx: make([]int, 0, capHint), gain: make([]int, 0, capHint)}
}

func (h *gainHeap) len() int { return len(h.vtx) }

func (h *gainHeap) push(v, g int) {
	h.vtx = append(h.vtx, v)
	h.gain = append(h.gain, g)
	i := len(h.vtx) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.gain[p] >= h.gain[i] {
			break
		}
		h.swap(p, i)
		i = p
	}
}

func (h *gainHeap) pop() (int, int) {
	v, g := h.vtx[0], h.gain[0]
	last := len(h.vtx) - 1
	h.swap(0, last)
	h.vtx = h.vtx[:last]
	h.gain = h.gain[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < last && h.gain[l] > h.gain[m] {
			m = l
		}
		if r < last && h.gain[r] > h.gain[m] {
			m = r
		}
		if m == i {
			break
		}
		h.swap(i, m)
		i = m
	}
	return v, g
}

func (h *gainHeap) swap(i, j int) {
	h.vtx[i], h.vtx[j] = h.vtx[j], h.vtx[i]
	h.gain[i], h.gain[j] = h.gain[j], h.gain[i]
}
