package dist

import (
	"math"
	"testing"

	"repro/internal/machine"
	"repro/internal/matgen"
	"repro/internal/pcomm"
	"repro/internal/pcomm/pcommtest"
	"repro/internal/sparse"
)

// TestCloneForBitwiseMulVec builds distributed operators under one world,
// clones them serially (no world, no communication) for a same-pattern
// matrix with new values, and checks the clones' MulVec is bitwise
// identical to operators built fresh for that matrix inside a run — the
// ghost-exchange plan reuse must not change a single bit.
func TestCloneForBitwiseMulVec(t *testing.T) {
	base := matgen.Grid2D(10, 10)
	next := matgen.Evolve(base, 1, 5e-2, 13)[0]
	const P = 4
	lay := partitionedLayout(t, base, P)

	x := make([]float64, base.N)
	for i := range x {
		x[i] = math.Sin(float64(i) + 0.5)
	}
	xParts := lay.Scatter(x)

	mulAll := func(mats []*Matrix) []float64 {
		yParts := make([][]float64, P)
		m := pcommtest.New(t, P, machine.T3D())
		m.Run(func(p pcomm.Comm) {
			y := make([]float64, lay.NLocal(p.ID()))
			mats[p.ID()].MulVec(p, y, xParts[p.ID()])
			yParts[p.ID()] = y
		})
		return lay.Gather(yParts)
	}

	templates := make([]*Matrix, P)
	m := pcommtest.New(t, P, machine.T3D())
	m.Run(func(p pcomm.Comm) {
		templates[p.ID()] = NewMatrix(p, lay, base)
	})

	// Clone serially — outside any machine run.
	clones := make([]*Matrix, P)
	for q := 0; q < P; q++ {
		c, err := templates[q].CloneFor(next)
		if err != nil {
			t.Fatalf("CloneFor proc %d: %v", q, err)
		}
		clones[q] = c
	}

	fresh := make([]*Matrix, P)
	m2 := pcommtest.New(t, P, machine.T3D())
	m2.Run(func(p pcomm.Comm) {
		fresh[p.ID()] = NewMatrix(p, lay, next)
	})

	got := mulAll(clones)
	want := mulAll(fresh)
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("y[%d] differs between clone and fresh operator: %x vs %x",
				i, math.Float64bits(got[i]), math.Float64bits(want[i]))
		}
	}

	// The clone must act on the new values, not the template's.
	baseY := mulAll(templates)
	same := true
	for i := range baseY {
		if baseY[i] != got[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("clone produced the template's product — values were not rebound")
	}
}

// TestCloneForRejectsMismatches pins the guard: a clone needs the same
// dimensions and nonzero count.
func TestCloneForRejectsMismatches(t *testing.T) {
	a := matgen.Grid2D(8, 8)
	const P = 2
	lay := partitionedLayout(t, a, P)
	templates := make([]*Matrix, P)
	m := pcommtest.New(t, P, machine.Zero())
	m.Run(func(p pcomm.Comm) {
		templates[p.ID()] = NewMatrix(p, lay, a)
	})

	if _, err := templates[0].CloneFor(matgen.Grid2D(9, 9)); err == nil {
		t.Fatal("CloneFor accepted a matrix of different dimensions")
	}
	b := sparse.NewBuilder(a.N, a.M)
	for i := 0; i < a.N; i++ {
		b.Add(i, i, 1)
	}
	if _, err := templates[0].CloneFor(b.Build()); err == nil {
		t.Fatal("CloneFor accepted a matrix with a different nonzero count")
	}
}
