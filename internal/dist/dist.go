// Package dist provides the distributed matrix and vector kernels of the
// system: a row distribution (layout) of a square sparse matrix over the
// virtual machine's processors, ghost-value exchange, parallel
// matrix–vector products, and reduction-based inner products/norms — the
// building blocks the paper's iterative solver runs on.
package dist

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/pcomm"
	"repro/internal/sparse"
)

// Layout is a row distribution of an n×n matrix: PartOf[i] is the owning
// processor of global row/unknown i, Rows[p] lists processor p's rows in
// increasing global order. Layouts are immutable after construction and
// safely shared by all processors.
type Layout struct {
	N      int
	P      int
	PartOf []int
	Rows   [][]int
	local  []map[int]int // per proc: global id → position in Rows[p]
}

// NewLayout builds a layout from a part assignment (values in [0, P)).
func NewLayout(n, p int, partOf []int) (*Layout, error) {
	if len(partOf) != n {
		return nil, fmt.Errorf("dist: partOf has %d entries for %d rows", len(partOf), n)
	}
	l := &Layout{N: n, P: p, PartOf: append([]int(nil), partOf...)}
	l.Rows = make([][]int, p)
	for i, q := range partOf {
		if q < 0 || q >= p {
			return nil, fmt.Errorf("dist: row %d assigned to invalid processor %d", i, q)
		}
		l.Rows[q] = append(l.Rows[q], i)
	}
	l.local = make([]map[int]int, p)
	for q := 0; q < p; q++ {
		l.local[q] = make(map[int]int, len(l.Rows[q]))
		for k, g := range l.Rows[q] {
			l.local[q][g] = k
		}
	}
	return l, nil
}

// NLocal reports how many rows processor q owns.
func (l *Layout) NLocal(q int) int { return len(l.Rows[q]) }

// SizeBytes estimates the heap footprint of the layout for cache
// accounting: a cached symbolic artifact keeps its layout alive across
// value swaps, so the bytes must be charged somewhere.
func (l *Layout) SizeBytes() int64 {
	b := 8 * int64(len(l.PartOf))
	for q := range l.Rows {
		b += 8 * int64(len(l.Rows[q]))
		b += 16 * int64(len(l.local[q]))
	}
	return b
}

// LocalIndex returns the local position of global row g on its owner, or
// −1 if q does not own g.
func (l *Layout) LocalIndex(q, g int) int {
	if idx, ok := l.local[q][g]; ok {
		return idx
	}
	return -1
}

// Scatter splits a global vector into per-processor local vectors.
func (l *Layout) Scatter(x []float64) [][]float64 {
	out := make([][]float64, l.P)
	for q := 0; q < l.P; q++ {
		out[q] = make([]float64, len(l.Rows[q]))
		for k, g := range l.Rows[q] {
			out[q][k] = x[g]
		}
	}
	return out
}

// Gather reassembles a global vector from per-processor local vectors.
func (l *Layout) Gather(parts [][]float64) []float64 {
	x := make([]float64, l.N)
	for q := 0; q < l.P; q++ {
		for k, g := range l.Rows[q] {
			x[g] = parts[q][k]
		}
	}
	return x
}

// Matrix is one processor's view of a distributed matrix: the global CSR
// is shared read-only and each processor touches only its own rows, plus a
// ghost-exchange plan for the off-processor columns those rows reference.
type Matrix struct {
	Lay *Layout
	A   *sparse.CSR

	me        int
	ghostIDs  []int       // remote global columns, grouped by owner
	ghostSlot map[int]int // global id → index into ghost arrays (setup only)
	recvFrom  [][]int     // per proc: count prefix into ghostIDs (via ranges)
	sendTo    [][]int     // per proc: local indices of owned values to ship
	ghost     []float64   // ghost value buffer reused across products

	// Pre-resolved column references for the product loops, one int32 per
	// local nonzero: r ≥ 0 reads x[r] (owned), r < 0 reads ghost[^r]. One
	// flat array plus offsets replaces a layout-map and a ghost-map lookup
	// per nonzero per product — the dominant cost of MulVec once the
	// exchange is pooled.
	refFlat []int32
	refOff  []int

	// Batch product scratch, owned by the matrix and reused: the
	// deinterleaved ghost values of every vector in a batch, and the
	// per-vector views into them.
	batchGhost []float64
	batchViews [][]float64
}

// Message tags used by this package.
const (
	tagGhost = 9201
)

// NewMatrix builds processor p's view of A under the layout, performing
// the collective setup exchange that tells every owner which values its
// neighbours need. All processors must call it together.
func NewMatrix(p pcomm.Comm, lay *Layout, a *sparse.CSR) *Matrix {
	if a.N != lay.N || a.M != lay.N {
		panic("dist: matrix/layout size mismatch")
	}
	m := &Matrix{Lay: lay, A: a, me: p.ID(), ghostSlot: make(map[int]int)}
	P := lay.P
	need := make([][]int, P)
	for _, g := range lay.Rows[p.ID()] {
		cols, _ := a.Row(g)
		for _, j := range cols {
			q := lay.PartOf[j]
			if q == p.ID() {
				continue
			}
			if _, ok := m.ghostSlot[j]; !ok {
				m.ghostSlot[j] = -1 // placeholder; slotted below
				need[q] = append(need[q], j)
			}
		}
	}
	for q := range need {
		sort.Ints(need[q])
	}
	for q := 0; q < P; q++ {
		for _, j := range need[q] {
			m.ghostSlot[j] = len(m.ghostIDs)
			m.ghostIDs = append(m.ghostIDs, j)
		}
	}
	m.recvFrom = need
	m.ghost = make([]float64, len(m.ghostIDs))
	if lay.N >= 1<<31 {
		panic("dist: matrix too large for int32 column references")
	}
	rows := lay.Rows[p.ID()]
	m.refOff = make([]int, len(rows)+1)
	for k, g := range rows {
		m.refOff[k] = len(m.refFlat)
		cols, _ := a.Row(g)
		for _, j := range cols {
			if lay.PartOf[j] == p.ID() {
				m.refFlat = append(m.refFlat, int32(lay.LocalIndex(p.ID(), j)))
			} else {
				m.refFlat = append(m.refFlat, int32(^m.ghostSlot[j]))
			}
		}
	}
	m.refOff[len(rows)] = len(m.refFlat)

	// Exchange request lists so owners learn what to send.
	var flat []int
	for q := 0; q < P; q++ {
		if len(need[q]) == 0 {
			continue
		}
		flat = append(flat, q, len(need[q]))
		flat = append(flat, need[q]...)
	}
	all := pcomm.AllGatherInts(p, flat)
	m.sendTo = make([][]int, P)
	for src := 0; src < P; src++ {
		f := all[src]
		for i := 0; i < len(f); {
			dst, cnt := f[i], f[i+1]
			ids := f[i+2 : i+2+cnt]
			i += 2 + cnt
			if dst != p.ID() {
				continue
			}
			for _, g := range ids {
				li := lay.LocalIndex(p.ID(), g)
				if li < 0 {
					panic("dist: neighbour requested a row we do not own")
				}
				m.sendTo[src] = append(m.sendTo[src], li)
			}
		}
	}
	return m
}

// NGhost reports the number of off-processor values each product fetches.
func (m *Matrix) NGhost() int { return len(m.ghostIDs) }

// exchangeGhosts ships owned x values to neighbours and fills the ghost
// buffer from theirs: one coalesced message per neighbour per round.
// Send buffers come from the shared pcomm.Floats pool and the borrowed-
// buffer receive path recycles them, so a steady-state exchange touches
// the allocator not at all.
//
//pilut:hotpath
func (m *Matrix) exchangeGhosts(p pcomm.Comm, x []float64) {
	P := m.Lay.P
	for q := 0; q < P; q++ {
		if q == m.me || len(m.sendTo[q]) == 0 {
			continue
		}
		msg := pcomm.Floats.Get(len(m.sendTo[q]))
		for k, li := range m.sendTo[q] {
			msg[k] = x[li]
		}
		pcomm.SendSlice(p, q, tagGhost, msg)
	}
	pos := 0
	for q := 0; q < P; q++ {
		if q == m.me || len(m.recvFrom[q]) == 0 {
			continue
		}
		cnt := len(m.recvFrom[q])
		got := pcomm.RecvSliceInto(p, q, tagGhost, m.ghost[pos:pos+cnt], &pcomm.Floats)
		if got != cnt {
			panic("dist: ghost message length mismatch")
		}
		pos += cnt
	}
}

// MulVec computes the local rows of y = A·x. x and y hold the owned
// values in Rows[p] order. The ghost exchange and the 2·nnz flops are
// charged to the virtual clock. The inner loop walks the pre-resolved
// refFlat references instead of chasing layout and ghost maps.
//
//pilut:hotpath
func (m *Matrix) MulVec(p pcomm.Comm, y, x []float64) {
	rows := m.Lay.Rows[m.me]
	if len(x) != len(rows) || len(y) != len(rows) {
		panic("dist: MulVec local vector length mismatch")
	}
	m.exchangeGhosts(p, x)
	flops := 0
	for k, g := range rows {
		_, vals := m.A.Row(g)
		refs := m.refFlat[m.refOff[k]:m.refOff[k+1]]
		var s float64
		for idx, r := range refs {
			if r >= 0 {
				s += vals[idx] * x[r]
			} else {
				s += vals[idx] * m.ghost[^r]
			}
		}
		flops += 2 * len(refs)
		y[k] = s
	}
	p.Work(float64(flops))
}

// MulVecBatch computes the local rows of ys[i] = A·xs[i] for a batch of
// vectors with a single ghost exchange: each neighbour receives one
// message carrying the values of every vector in the batch, so the
// per-message latency is paid once per neighbour instead of once per
// vector. The arithmetic is identical to repeated MulVec calls.
// Collective: every processor must call it with the same batch size.
//
//pilut:hotpath
func (m *Matrix) MulVecBatch(p pcomm.Comm, ys, xs [][]float64) {
	if len(ys) != len(xs) {
		panic("dist: MulVecBatch batch size mismatch")
	}
	B := len(xs)
	switch B {
	case 0:
		return
	case 1:
		m.MulVec(p, ys[0], xs[0])
		return
	}
	rows := m.Lay.Rows[m.me]
	for i := range xs {
		if len(xs[i]) != len(rows) || len(ys[i]) != len(rows) {
			panic("dist: MulVecBatch local vector length mismatch")
		}
	}
	P := m.Lay.P
	for q := 0; q < P; q++ {
		if q == m.me || len(m.sendTo[q]) == 0 {
			continue
		}
		msg := pcomm.Floats.Get(B * len(m.sendTo[q]))
		off := 0
		for _, x := range xs {
			for _, li := range m.sendTo[q] {
				msg[off] = x[li]
				off++
			}
		}
		pcomm.SendSlice(p, q, tagGhost, msg)
	}
	ng := len(m.ghostIDs)
	if cap(m.batchGhost) < B*ng {
		m.batchGhost = make([]float64, B*ng) //pilutlint:ok hotalloc grow-only scratch owned by the matrix; steady-state batches reuse it
	}
	if cap(m.batchViews) < B {
		m.batchViews = make([][]float64, B) //pilutlint:ok hotalloc grow-only scratch owned by the matrix; steady-state batches reuse it
	}
	bg := m.batchGhost[:B*ng]
	ghosts := m.batchViews[:B]
	for bi := range ghosts {
		ghosts[bi] = bg[bi*ng : (bi+1)*ng]
	}
	pos := 0
	for q := 0; q < P; q++ {
		if q == m.me || len(m.recvFrom[q]) == 0 {
			continue
		}
		cnt := len(m.recvFrom[q])
		msg := pcomm.RecvSlice[float64](p, q, tagGhost)
		if len(msg) != B*cnt {
			panic("dist: MulVecBatch ghost message length mismatch")
		}
		for bi := 0; bi < B; bi++ {
			copy(ghosts[bi][pos:pos+cnt], msg[bi*cnt:(bi+1)*cnt])
		}
		pcomm.Floats.Put(msg)
		pos += cnt
	}
	flops := 0
	for bi := range xs {
		x := xs[bi]
		y := ys[bi]
		ghost := ghosts[bi]
		for k, g := range rows {
			_, vals := m.A.Row(g)
			refs := m.refFlat[m.refOff[k]:m.refOff[k+1]]
			var s float64
			for idx, r := range refs {
				if r >= 0 {
					s += vals[idx] * x[r]
				} else {
					s += vals[idx] * ghost[^r]
				}
			}
			flops += 2 * len(refs)
			y[k] = s
		}
	}
	p.Work(float64(flops))
}

// CloneFor rebinds this processor's view to a matrix with the SAME
// sparsity pattern but different values, reusing the entire pattern-only
// exchange plan: ghost ids, send/receive lists and the pre-resolved
// int32 column references are shared (they are immutable after setup),
// while the value buffers are fresh so clones never race. Unlike
// NewMatrix this performs no communication at all — it is safe to call
// serially, outside any machine run, which is exactly how the service's
// refactor-only path uses it.
//
// The caller is responsible for the pattern actually matching (the
// service guarantees it via sparse.PatternFingerprint keys); CloneFor
// checks dimensions and nonzero count as a cheap guard and returns an
// error on mismatch.
func (m *Matrix) CloneFor(a *sparse.CSR) (*Matrix, error) {
	if a.N != m.Lay.N || a.M != m.Lay.N {
		return nil, fmt.Errorf("dist: CloneFor matrix %dx%d does not match layout size %d", a.N, a.M, m.Lay.N)
	}
	if a.NNZ() != m.A.NNZ() {
		return nil, fmt.Errorf("dist: CloneFor matrix has %d entries, exchange plan was built for %d", a.NNZ(), m.A.NNZ())
	}
	return &Matrix{
		Lay:       m.Lay,
		A:         a,
		me:        m.me,
		ghostIDs:  m.ghostIDs,
		ghostSlot: m.ghostSlot,
		recvFrom:  m.recvFrom,
		sendTo:    m.sendTo,
		ghost:     make([]float64, len(m.ghostIDs)),
		refFlat:   m.refFlat,
		refOff:    m.refOff,
	}, nil
}

// SizeBytes estimates the in-memory footprint of this processor's ghost
// exchange plan and buffers (the shared CSR is accounted separately).
func (m *Matrix) SizeBytes() int64 {
	n := 8 * int64(len(m.ghostIDs)+len(m.ghost)) // ids + value buffer
	n += 16 * int64(len(m.ghostSlot))
	for q := range m.sendTo {
		n += 8 * int64(len(m.sendTo[q])+len(m.recvFrom[q]))
	}
	return n
}

// Dot computes the global inner product of two distributed vectors.
func Dot(p pcomm.Comm, x, y []float64) float64 {
	if len(x) != len(y) {
		panic("dist: Dot length mismatch")
	}
	var s float64
	for i, v := range x {
		s += v * y[i]
	}
	p.Work(float64(2 * len(x)))
	return p.AllReduceFloat64(s, pcomm.OpSum)
}

// Norm2 computes the global Euclidean norm of a distributed vector.
func Norm2(p pcomm.Comm, x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	p.Work(float64(2 * len(x)))
	total := p.AllReduceFloat64(s, pcomm.OpSum)
	if total < 0 {
		total = 0
	}
	return math.Sqrt(total)
}
