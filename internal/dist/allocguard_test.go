//go:build !race

package dist

import (
	"runtime"
	"testing"

	"repro/internal/matgen"
	"repro/internal/pcomm"
	"repro/internal/pcomm/realcomm"
)

// Alloc-regression guard for the product path (ISSUE 8): steady-state
// MulVec and MulVecBatch on real goroutines must not allocate — ghost
// exchanges circulate pooled buffers through pcomm.Floats, the inner loop
// walks pre-resolved refs instead of maps, and the batch scratch is owned
// by the Matrix. Measured via the global malloc counter around a quiesced
// window (the kernels run on worker goroutines, out of AllocsPerRun's
// reach); the budget absorbs the delimiting barrier generations. Excluded
// under the race detector, whose instrumentation allocates.
func TestMulVecSteadyStateAllocs(t *testing.T) {
	const (
		P      = 4
		warm   = 50
		meas   = 400
		batchB = 3
		budget = 100
	)
	a := matgen.Grid2D(24, 24)
	lay := partitionedLayout(t, a, P)
	w := realcomm.New(P)
	var delta uint64
	w.Run(func(p pcomm.Comm) {
		m := NewMatrix(p, lay, a)
		nl := lay.NLocal(p.ID())
		x := make([]float64, nl)
		y := make([]float64, nl)
		for k := range x {
			x[k] = float64(k%7) + 0.5
		}
		xs := make([][]float64, batchB)
		ys := make([][]float64, batchB)
		for b := range xs {
			xs[b] = x
			ys[b] = make([]float64, nl)
		}
		for i := 0; i < warm; i++ {
			m.MulVec(p, y, x)
			m.MulVecBatch(p, ys, xs)
		}
		p.Barrier()
		var m1, m2 runtime.MemStats
		if p.ID() == 0 {
			runtime.GC()
			runtime.ReadMemStats(&m1)
		}
		p.Barrier()
		for i := 0; i < meas; i++ {
			m.MulVec(p, y, x)
			m.MulVecBatch(p, ys, xs)
		}
		p.Barrier()
		if p.ID() == 0 {
			runtime.ReadMemStats(&m2)
			delta = m2.Mallocs - m1.Mallocs
		}
		p.Barrier()
	})
	t.Logf("mallocs over %d MulVec+MulVecBatch rounds on %d procs: %d (budget %d)", meas, P, delta, budget)
	if delta > budget {
		t.Errorf("product path allocated %d objects over %d rounds, budget %d", delta, meas, budget)
	}
}
