package dist

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/machine"
	"repro/internal/matgen"
	"repro/internal/partition"
	"repro/internal/pcomm"
	"repro/internal/pcomm/modelled"
	"repro/internal/pcomm/pcommtest"
	"repro/internal/sparse"
)

func partitionedLayout(t *testing.T, a *sparse.CSR, P int) *Layout {
	t.Helper()
	g := graph.FromMatrix(a)
	part := partition.KWay(g, P, partition.Options{Seed: 1})
	lay, err := NewLayout(a.N, P, part)
	if err != nil {
		t.Fatal(err)
	}
	return lay
}

func TestLayoutBasics(t *testing.T) {
	part := []int{0, 1, 0, 1, 1}
	lay, err := NewLayout(5, 2, part)
	if err != nil {
		t.Fatal(err)
	}
	if lay.NLocal(0) != 2 || lay.NLocal(1) != 3 {
		t.Fatalf("NLocal = %d,%d", lay.NLocal(0), lay.NLocal(1))
	}
	if lay.LocalIndex(0, 2) != 1 {
		t.Errorf("LocalIndex(0,2) = %d, want 1", lay.LocalIndex(0, 2))
	}
	if lay.LocalIndex(0, 1) != -1 {
		t.Errorf("LocalIndex for unowned row should be -1")
	}
	x := []float64{10, 11, 12, 13, 14}
	parts := lay.Scatter(x)
	back := lay.Gather(parts)
	for i := range x {
		if back[i] != x[i] {
			t.Fatalf("scatter/gather mismatch at %d", i)
		}
	}
}

func TestLayoutErrors(t *testing.T) {
	if _, err := NewLayout(3, 2, []int{0}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := NewLayout(2, 2, []int{0, 5}); err == nil {
		t.Error("invalid processor accepted")
	}
}

func TestDistributedMulVecMatchesSerial(t *testing.T) {
	a := matgen.Grid2D(12, 12)
	n := a.N
	rng := rand.New(rand.NewSource(4))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	want := make([]float64, n)
	a.MulVec(want, x)

	for _, P := range []int{1, 2, 4, 8} {
		lay := partitionedLayout(t, a, P)
		xParts := lay.Scatter(x)
		yParts := make([][]float64, P)
		m := pcommtest.New(t, P, machine.T3D())
		m.Run(func(p pcomm.Comm) {
			dm := NewMatrix(p, lay, a)
			y := make([]float64, lay.NLocal(p.ID()))
			dm.MulVec(p, y, xParts[p.ID()])
			yParts[p.ID()] = y
		})
		got := lay.Gather(yParts)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-12 {
				t.Fatalf("P=%d: y[%d] = %v, want %v", P, i, got[i], want[i])
			}
		}
	}
}

func TestDistributedMulVecNonsymmetric(t *testing.T) {
	a := matgen.ConvDiff2D(8, 8, 15, -7)
	n := a.N
	x := make([]float64, n)
	for i := range x {
		x[i] = float64(i%7) - 3
	}
	want := make([]float64, n)
	a.MulVec(want, x)
	P := 4
	lay := partitionedLayout(t, a, P)
	xParts := lay.Scatter(x)
	yParts := make([][]float64, P)
	m := pcommtest.New(t, P, machine.Zero())
	m.Run(func(p pcomm.Comm) {
		dm := NewMatrix(p, lay, a)
		y := make([]float64, lay.NLocal(p.ID()))
		dm.MulVec(p, y, xParts[p.ID()])
		yParts[p.ID()] = y
	})
	got := lay.Gather(yParts)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("y[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestDotAndNorm(t *testing.T) {
	a := matgen.Grid2D(6, 6)
	n := a.N
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = float64(i + 1)
		y[i] = 1.0 / float64(i+1)
	}
	wantDot := sparse.Dot(x, y)
	wantNorm := sparse.Norm2(x)

	P := 3
	lay := partitionedLayout(t, a, P)
	xp := lay.Scatter(x)
	yp := lay.Scatter(y)
	var gotDot, gotNorm [3]float64
	m := pcommtest.New(t, P, machine.Zero())
	m.Run(func(p pcomm.Comm) {
		gotDot[p.ID()] = Dot(p, xp[p.ID()], yp[p.ID()])
		gotNorm[p.ID()] = Norm2(p, xp[p.ID()])
	})
	for q := 0; q < P; q++ {
		if math.Abs(gotDot[q]-wantDot) > 1e-9*math.Abs(wantDot) {
			t.Errorf("proc %d dot = %v, want %v", q, gotDot[q], wantDot)
		}
		if math.Abs(gotNorm[q]-wantNorm) > 1e-9*wantNorm {
			t.Errorf("proc %d norm = %v, want %v", q, gotNorm[q], wantNorm)
		}
	}
}

func TestGhostCountsShrinkWithGoodPartition(t *testing.T) {
	a := matgen.Grid2D(20, 20)
	P := 4
	g := graph.FromMatrix(a)

	count := func(part []int) int {
		if _, err := NewLayout(a.N, P, part); err != nil {
			t.Fatal(err)
		}
		total := 0
		for _, isB := range g.Boundary(part) {
			if isB {
				total++
			}
		}
		return total
	}
	good := count(partition.KWay(g, P, partition.Options{Seed: 2}))
	bad := count(partition.RandomKWay(g, P, 2))
	if good*2 >= bad {
		t.Errorf("good partition boundary %d not ≪ random %d", good, bad)
	}
}

func TestMulVecCostReflectsCommunication(t *testing.T) {
	// With a nonzero cost model, the elapsed time of a distributed SpMV
	// must exceed pure compute time (communication overhead exists) and
	// per-proc compute must shrink as P grows. The assertion is about the
	// virtual clock, so the test pins the modelled backend regardless of
	// PILUT_BACKEND.
	a := matgen.Grid2D(24, 24)
	elapsed := func(P int) float64 {
		lay := partitionedLayout(t, a, P)
		x := make([]float64, a.N)
		for i := range x {
			x[i] = 1
		}
		xp := lay.Scatter(x)
		m := modelled.New(P, machine.T3D())
		res := m.Run(func(p pcomm.Comm) {
			dm := NewMatrix(p, lay, a)
			y := make([]float64, lay.NLocal(p.ID()))
			for it := 0; it < 10; it++ {
				dm.MulVec(p, y, xp[p.ID()])
			}
		})
		return res.Elapsed
	}
	t1 := elapsed(1)
	t4 := elapsed(4)
	if t4 >= t1 {
		t.Errorf("4-proc SpMV (%v) not faster than 1-proc (%v)", t4, t1)
	}
}

func TestMulVecBatchMatchesSerial(t *testing.T) {
	const P = 4
	const B = 3
	a := matgen.Grid2D(15, 15)
	lay := partitionedLayout(t, a, P)
	rng := rand.New(rand.NewSource(11))
	xsGlobal := make([][]float64, B)
	want := make([][]float64, B)
	for bi := range xsGlobal {
		xsGlobal[bi] = make([]float64, a.N)
		for i := range xsGlobal[bi] {
			xsGlobal[bi][i] = rng.NormFloat64()
		}
		want[bi] = make([]float64, a.N)
		a.MulVec(want[bi], xsGlobal[bi])
	}

	ysParts := make([][][]float64, B)
	for bi := range ysParts {
		ysParts[bi] = make([][]float64, P)
	}
	var msgsBatch int64
	m := pcommtest.New(t, P, machine.Zero())
	res := m.Run(func(p pcomm.Comm) {
		dm := NewMatrix(p, lay, a)
		xs := make([][]float64, B)
		ys := make([][]float64, B)
		for bi := 0; bi < B; bi++ {
			xs[bi] = lay.Scatter(xsGlobal[bi])[p.ID()]
			ys[bi] = make([]float64, lay.NLocal(p.ID()))
		}
		before := p.Stats().MsgsSent
		dm.MulVecBatch(p, ys, xs)
		if p.ID() == 0 {
			msgsBatch = p.Stats().MsgsSent - before
		}
		for bi := 0; bi < B; bi++ {
			ysParts[bi][p.ID()] = ys[bi]
		}
	})
	_ = res
	for bi := 0; bi < B; bi++ {
		got := lay.Gather(ysParts[bi])
		for i := range got {
			if math.Abs(got[i]-want[bi][i]) > 1e-12 {
				t.Fatalf("rhs %d: batch MulVec differs at %d: %v vs %v", bi, i, got[i], want[bi][i])
			}
		}
	}

	// The batch ships one message per neighbour regardless of B; a loop
	// of single MulVec calls would send B times as many.
	var msgsSingle int64
	m2 := pcommtest.New(t, P, machine.Zero())
	m2.Run(func(p pcomm.Comm) {
		dm := NewMatrix(p, lay, a)
		x := lay.Scatter(xsGlobal[0])[p.ID()]
		y := make([]float64, lay.NLocal(p.ID()))
		before := p.Stats().MsgsSent
		dm.MulVec(p, y, x)
		if p.ID() == 0 {
			msgsSingle = p.Stats().MsgsSent - before
		}
	})
	if msgsBatch != msgsSingle {
		t.Fatalf("batch sent %d messages, single product sends %d — batching must not multiply message count", msgsBatch, msgsSingle)
	}
}
