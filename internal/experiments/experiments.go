// Package experiments reproduces the paper's evaluation: Table 1
// (factorization time), Table 2 (triangular-solve and matrix–vector time),
// Table 3 (GMRES preconditioning quality), and Figures 4–6 (relative
// speedups), plus the ablations DESIGN.md commits to. Both cmd/experiments
// and the top-level benchmarks drive this package.
package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/ilu"
	"repro/internal/krylov"
	"repro/internal/machine"
	"repro/internal/matgen"
	"repro/internal/partition"
	"repro/internal/pcomm"
	"repro/internal/pcomm/backend"
	"repro/internal/sparse"
)

// Config scales and parameterizes a full evaluation run. The paper's sweep
// is m ∈ {5,10,20}, t ∈ {1e-2,1e-4,1e-6}, k = 2, p ∈ {16,32,64,128}.
type Config struct {
	Procs []int
	Ms    []int
	Taus  []float64
	K     int
	// G0Side is the square-grid side for the G0 problem (the paper's G0
	// has ≈52k unknowns ⇒ side ≈ 228). Benchmarks default to a reduced
	// scale; pass -scale full to cmd/experiments for paper size.
	G0Side int
	// TorsoSide is the cube side for the synthetic TORSO stand-in (the
	// paper's TORSO has ≈201k unknowns ⇒ side ≈ 59).
	TorsoSide int
	Seed      int64
	Cost      machine.CostModel
	// Backend picks the communication backend every experiment machine
	// runs on: "" or "modelled" for the simulated machine (Cost applies),
	// "real" for wall-clock shared memory (Cost ignored, Seconds become
	// wall time).
	Backend string
}

// mustWorld builds the configured backend's world with p processors.
// Experiment entry points validate Backend up front, so an unknown kind
// here is a programming error and panics.
func (c Config) mustWorld(p int) pcomm.World {
	w, err := backend.New(c.Backend, p, c.Cost)
	if err != nil {
		panic(err)
	}
	return w
}

// Default returns the reduced-scale configuration used by tests and
// benchmarks: same sweep as the paper, smaller matrices.
func Default() Config {
	return Config{
		Procs:     []int{16, 32, 64, 128},
		Ms:        []int{5, 10, 20},
		Taus:      []float64{1e-2, 1e-4, 1e-6},
		K:         2,
		G0Side:    128,
		TorsoSide: 28,
		Seed:      1,
		Cost:      machine.T3D(),
	}
}

// PaperScale returns the full-size configuration matching the paper's
// problem sizes.
func PaperScale() Config {
	c := Default()
	c.G0Side = 228
	c.TorsoSide = 59
	return c
}

// Problem bundles a named matrix with cached partitions and plans per
// processor count, so every experiment on the same (matrix, p) pair sees
// the identical distribution.
type Problem struct {
	Name string
	A    *sparse.CSR
	seed int64

	layouts map[int]*dist.Layout
	plans   map[int]*core.Plan
}

// G0 builds the 2-D grid problem.
func (c Config) G0() *Problem {
	return &Problem{Name: "G0", A: matgen.Grid2D(c.G0Side, c.G0Side), seed: c.Seed,
		layouts: map[int]*dist.Layout{}, plans: map[int]*core.Plan{}}
}

// Torso builds the synthetic TORSO problem.
func (c Config) Torso() *Problem {
	return &Problem{Name: "TORSO", A: matgen.Torso(c.TorsoSide, c.TorsoSide, c.TorsoSide, c.Seed), seed: c.Seed,
		layouts: map[int]*dist.Layout{}, plans: map[int]*core.Plan{}}
}

// PlanFor returns (building and caching on first use) the layout and plan
// for p processors.
func (pr *Problem) PlanFor(p int) (*dist.Layout, *core.Plan, error) {
	if lay, ok := pr.layouts[p]; ok {
		return lay, pr.plans[p], nil
	}
	g := graph.FromMatrix(pr.A)
	part := partition.KWay(g, p, partition.Options{Seed: pr.seed})
	lay, err := dist.NewLayout(pr.A.N, p, part)
	if err != nil {
		return nil, nil, err
	}
	plan, err := core.NewPlan(pr.A, lay)
	if err != nil {
		return nil, nil, err
	}
	pr.layouts[p] = lay
	pr.plans[p] = plan
	return lay, plan, nil
}

// RandomPlanFor is PlanFor with a random partition (partition ablation).
func (pr *Problem) RandomPlanFor(p int) (*dist.Layout, *core.Plan, error) {
	g := graph.FromMatrix(pr.A)
	part := partition.RandomKWay(g, p, pr.seed)
	lay, err := dist.NewLayout(pr.A.N, p, part)
	if err != nil {
		return nil, nil, err
	}
	plan, err := core.NewPlan(pr.A, lay)
	if err != nil {
		return nil, nil, err
	}
	return lay, plan, nil
}

// FactorOutcome is one cell of Table 1 plus the structure data the text
// quotes (number of independent sets, fill).
type FactorOutcome struct {
	Seconds   float64 // modelled time on the virtual machine
	Levels    int     // q
	NNZ       int     // stored factor entries
	Interface int     // global interface unknowns
	Flops     float64
}

// Factorization runs the parallel ILUT/ILUT* factorization and reports
// the modelled time; it also returns the per-processor pieces so callers
// can keep using the preconditioner.
func (c Config) Factorization(pr *Problem, p int, params ilu.Params) (FactorOutcome, []*core.ProcPrecond, error) {
	_, plan, err := pr.PlanFor(p)
	if err != nil {
		return FactorOutcome{}, nil, err
	}
	pcs := make([]*core.ProcPrecond, p)
	m := c.mustWorld(p)
	res := m.Run(func(proc pcomm.Comm) {
		pcs[proc.ID()] = core.Factor(proc, plan, core.Options{Params: params, Seed: c.Seed})
	})
	nnz := 0
	for _, pc := range pcs {
		nnz += pc.NNZ()
	}
	return FactorOutcome{
		Seconds:   res.Elapsed,
		Levels:    pcs[0].NumLevels(),
		NNZ:       nnz,
		Interface: plan.NInterface,
		Flops:     res.TotalFlops(),
	}, pcs, nil
}

// TriangularSolve reports the modelled time of nApply forward+backward
// substitutions with an already-built preconditioner.
func (c Config) TriangularSolve(pr *Problem, p int, pcs []*core.ProcPrecond, nApply int) (float64, error) {
	t, _, err := c.TriangularSolveRate(pr, p, pcs, nApply)
	return t, err
}

// TriangularSolveRate additionally reports the per-processor MFlop rate —
// the paper's §6 comparison metric for the substitutions.
func (c Config) TriangularSolveRate(pr *Problem, p int, pcs []*core.ProcPrecond, nApply int) (float64, float64, error) {
	lay, _, err := pr.PlanFor(p)
	if err != nil {
		return 0, 0, err
	}
	b := sparse.Ones(pr.A.N)
	bParts := lay.Scatter(b)
	m := c.mustWorld(p)
	res := m.Run(func(proc pcomm.Comm) {
		x := make([]float64, lay.NLocal(proc.ID()))
		for it := 0; it < nApply; it++ {
			pcs[proc.ID()].Solve(proc, x, bParts[proc.ID()])
		}
	})
	mflops := res.TotalFlops() / (res.Elapsed * float64(p)) / 1e6
	return res.Elapsed / float64(nApply), mflops, nil
}

// MatVec reports the modelled time of one distributed matrix–vector
// product (averaged over nApply), the last row of Table 2.
func (c Config) MatVec(pr *Problem, p int, nApply int) (float64, error) {
	t, _, err := c.MatVecRate(pr, p, nApply)
	return t, err
}

// MatVecRate additionally reports the per-processor MFlop rate.
func (c Config) MatVecRate(pr *Problem, p int, nApply int) (float64, float64, error) {
	lay, _, err := pr.PlanFor(p)
	if err != nil {
		return 0, 0, err
	}
	x := sparse.Ones(pr.A.N)
	xParts := lay.Scatter(x)
	m := c.mustWorld(p)
	res := m.Run(func(proc pcomm.Comm) {
		dm := dist.NewMatrix(proc, lay, pr.A)
		y := make([]float64, lay.NLocal(proc.ID()))
		for it := 0; it < nApply; it++ {
			dm.MulVec(proc, y, xParts[proc.ID()])
		}
	})
	mflops := res.TotalFlops() / (res.Elapsed * float64(p)) / 1e6
	return res.Elapsed / float64(nApply), mflops, nil
}

// GMRESOutcome is one cell of Table 3.
type GMRESOutcome struct {
	Seconds   float64 // modelled GMRES time (excluding factorization)
	NMV       int
	Converged bool
	Residual  float64
}

// PrecondKind selects the preconditioner of a Table 3 run.
type PrecondKind int

// Preconditioner kinds.
const (
	PrecondILUT PrecondKind = iota // params.K ≤ 0
	PrecondILUTStar
	PrecondDiagonal
)

// GMRES runs the distributed solver with b = A·e and a zero initial
// guess, the paper's setup, and reports time and matrix–vector products.
func (c Config) GMRES(pr *Problem, p int, kind PrecondKind, params ilu.Params, restart, maxMV int, tol float64) (GMRESOutcome, error) {
	lay, plan, err := pr.PlanFor(p)
	if err != nil {
		return GMRESOutcome{}, err
	}
	n := pr.A.N
	e := sparse.Ones(n)
	b := make([]float64, n)
	pr.A.MulVec(b, e)
	bParts := lay.Scatter(b)

	// Build the preconditioner first (its cost is reported separately in
	// the paper).
	var pcs []*core.ProcPrecond
	if kind != PrecondDiagonal {
		pcs = make([]*core.ProcPrecond, p)
		mf := c.mustWorld(p)
		mf.Run(func(proc pcomm.Comm) {
			pcs[proc.ID()] = core.Factor(proc, plan, core.Options{Params: params, Seed: c.Seed})
		})
	}

	outs := make([]krylov.Result, p)
	m := c.mustWorld(p)
	res := m.Run(func(proc pcomm.Comm) {
		dm := dist.NewMatrix(proc, lay, pr.A)
		var prec krylov.DistPreconditioner
		switch kind {
		case PrecondDiagonal:
			j, err := krylov.NewDistJacobi(lay, pr.A, proc.ID())
			if err != nil {
				panic(err)
			}
			prec = j
		default:
			prec = pcs[proc.ID()]
		}
		x := make([]float64, lay.NLocal(proc.ID()))
		r, err := krylov.DistGMRES(proc, dm, prec, x, bParts[proc.ID()],
			krylov.Options{Restart: restart, Tol: tol, MaxMatVec: maxMV})
		if err != nil {
			panic(err)
		}
		outs[proc.ID()] = r
	})
	return GMRESOutcome{
		Seconds:   res.Elapsed,
		NMV:       outs[0].NMatVec,
		Converged: outs[0].Converged,
		Residual:  outs[0].Residual,
	}, nil
}

// ConfigName formats a factorization configuration the way the paper
// labels its rows.
func ConfigName(star bool, m int, tau float64, k int) string {
	if star {
		return fmt.Sprintf("ILUT*(%d,%.0e,%d)", m, tau, k)
	}
	return fmt.Sprintf("ILUT(%d,%.0e)", m, tau)
}

// Table is a simple fixed-width table writer shared by the experiment
// drivers.
type Table struct {
	Header []string
	Rows   [][]string
}

// Add appends a row.
func (t *Table) Add(cells ...string) { t.Rows = append(t.Rows, cells) }

// Write renders the table with aligned columns.
func (t *Table) Write(w io.Writer) {
	width := make([]int, len(t.Header))
	for i, h := range t.Header {
		width[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				fmt.Fprint(w, "  ")
			}
			fmt.Fprintf(w, "%-*s", width[i], c)
		}
		fmt.Fprintln(w)
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		for j := 0; j < width[i]; j++ {
			sep[i] += "-"
		}
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
}
