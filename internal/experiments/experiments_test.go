package experiments

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"repro/internal/ilu"
	"repro/internal/machine"
)

// tiny returns a configuration small enough for unit tests. With
// PILUT_TEST_FAST set (as the race-enabled CI lane does), the problems
// shrink further: the race detector slows the simulated processors by
// roughly an order of magnitude, and the smoke tests only assert table
// shape and convergence flags, not resolution.
func tiny() Config {
	c := Config{
		Procs:     []int{2, 4},
		Ms:        []int{5},
		Taus:      []float64{1e-2, 1e-4},
		K:         2,
		G0Side:    20,
		TorsoSide: 8,
		Seed:      1,
		Cost:      machine.T3D(),
	}
	if os.Getenv("PILUT_TEST_FAST") != "" {
		c.Procs = []int{2}
		c.G0Side = 12
		c.TorsoSide = 6
	}
	return c
}

func TestFactorizationOutcome(t *testing.T) {
	c := tiny()
	pr := c.G0()
	out, pcs, err := c.Factorization(pr, 4, ilu.Params{M: 5, Tau: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	if out.Seconds <= 0 || out.Levels <= 0 || out.NNZ <= 0 || out.Interface <= 0 {
		t.Fatalf("degenerate outcome: %+v", out)
	}
	if len(pcs) != 4 {
		t.Fatalf("expected 4 pieces, got %d", len(pcs))
	}
}

func TestTriangularSolveAndMatVecTimes(t *testing.T) {
	c := tiny()
	pr := c.Torso()
	_, pcs, err := c.Factorization(pr, 2, ilu.Params{M: 5, Tau: 1e-4, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts, err := c.TriangularSolve(pr, 2, pcs, 3)
	if err != nil {
		t.Fatal(err)
	}
	mv, err := c.MatVec(pr, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if ts <= 0 || mv <= 0 {
		t.Fatalf("nonpositive times: solve=%v matvec=%v", ts, mv)
	}
	// The paper: a forward+backward substitution costs roughly the same as
	// a matvec (~1.3× at scale); at tiny scale allow a wide band.
	if ts > 50*mv {
		t.Errorf("triangular solve %v ≫ matvec %v", ts, mv)
	}
}

func TestGMRESOutcomes(t *testing.T) {
	c := tiny()
	pr := c.G0()
	ilutOut, err := c.GMRES(pr, 4, PrecondILUTStar, ilu.Params{M: 5, Tau: 1e-4, K: 2}, 10, 2000, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if !ilutOut.Converged {
		t.Fatalf("ILUT* GMRES did not converge: %+v", ilutOut)
	}
	diagOut, err := c.GMRES(pr, 4, PrecondDiagonal, ilu.Params{}, 10, 2000, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if diagOut.Converged && diagOut.NMV <= ilutOut.NMV {
		t.Errorf("diagonal NMV %d not worse than ILUT* NMV %d", diagOut.NMV, ilutOut.NMV)
	}
}

func TestRunTable1Smoke(t *testing.T) {
	c := tiny()
	var buf bytes.Buffer
	if err := c.RunTable1(&buf, []*Problem{c.G0()}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "ILUT(5,1e-02)") || !strings.Contains(out, "ILUT*(5,1e-04,2)") {
		t.Errorf("table missing expected rows:\n%s", out)
	}
}

func TestRunTable2And3Smoke(t *testing.T) {
	c := tiny()
	var buf bytes.Buffer
	if err := c.RunTable2(&buf, c.Torso()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Matrix-Vector") {
		t.Error("table 2 missing matvec row")
	}
	buf.Reset()
	if err := c.RunTable3(&buf, []*Problem{c.G0()}, 1e-5, 1500); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Diagonal") {
		t.Error("table 3 missing diagonal row")
	}
}

func TestRunFigureAndStructureSmoke(t *testing.T) {
	c := tiny()
	var buf bytes.Buffer
	if err := c.RunFigure(&buf, c.G0(), false); err != nil {
		t.Fatal(err)
	}
	if err := c.RunFigure(&buf, c.G0(), true); err != nil {
		t.Fatal(err)
	}
	if err := c.RunStructure(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "speedup") {
		t.Error("figure output missing")
	}
}

func TestAblationsSmoke(t *testing.T) {
	c := tiny()
	var buf bytes.Buffer
	if err := c.RunAblationK(&buf, c.G0()); err != nil {
		t.Fatal(err)
	}
	if err := c.RunAblationMIS(&buf, c.G0()); err != nil {
		t.Fatal(err)
	}
	if err := c.RunAblationPartition(&buf, c.G0()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "plain ILUT") {
		t.Errorf("ablation output incomplete:\n%s", buf.String())
	}
}

func TestSpeedupShape(t *testing.T) {
	// The central performance claim: factorization on more processors
	// takes less modelled time. Needs a problem big enough that interface
	// overhead does not dominate (the paper's smallest case is 52k rows;
	// 4k suffices for 2→8 processors).
	c := tiny()
	c.Procs = []int{2, 8}
	c.G0Side = 64
	pr := c.G0()
	t2, _, err := c.Factorization(pr, 2, ilu.Params{M: 5, Tau: 1e-4, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	t8, _, err := c.Factorization(pr, 8, ilu.Params{M: 5, Tau: 1e-4, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if t8.Seconds >= t2.Seconds {
		t.Errorf("no speedup: p=2 %.5fs vs p=8 %.5fs", t2.Seconds, t8.Seconds)
	}
}

func TestILUTStarFasterAtSmallThreshold(t *testing.T) {
	// Paper: for t=1e-6, ILUT* beats ILUT in factorization time.
	c := tiny()
	pr := c.Torso()
	p := 4
	plain, _, err := c.Factorization(pr, p, ilu.Params{M: 10, Tau: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	star, _, err := c.Factorization(pr, p, ilu.Params{M: 10, Tau: 1e-6, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if star.Seconds > plain.Seconds*1.05 {
		t.Errorf("ILUT* (%.5fs) not faster than ILUT (%.5fs)", star.Seconds, plain.Seconds)
	}
	if star.Levels > plain.Levels {
		t.Errorf("ILUT* used more levels (%d) than ILUT (%d)", star.Levels, plain.Levels)
	}
}

func TestRunNetworkSmoke(t *testing.T) {
	c := tiny()
	var buf bytes.Buffer
	if err := c.RunNetwork(&buf, c.G0()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "workstation cluster") || !strings.Contains(out, "Cray T3D") {
		t.Errorf("network output incomplete:\n%s", out)
	}
}

func TestRunAblationSchurSmoke(t *testing.T) {
	c := tiny()
	var buf bytes.Buffer
	if err := c.RunAblationSchur(&buf, c.G0()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Schur blocks + MIS") {
		t.Errorf("schur ablation output incomplete:\n%s", buf.String())
	}
}

func TestNetworkAmplifiesILUTStarAdvantage(t *testing.T) {
	// The paper's conclusion: on slower networks ILUT* becomes critical.
	// The absolute cost of ILUT's extra synchronization levels must blow
	// up on the slow network.
	c := tiny()
	c.G0Side = 48
	pr := c.G0()
	saved := func(cost machine.CostModel) float64 {
		cfg := c
		cfg.Cost = cost
		plain, _, err := cfg.Factorization(pr, 4, ilu.Params{M: 10, Tau: 1e-6})
		if err != nil {
			t.Fatal(err)
		}
		star, _, err := cfg.Factorization(pr, 4, ilu.Params{M: 10, Tau: 1e-6, K: 2})
		if err != nil {
			t.Fatal(err)
		}
		return plain.Seconds - star.Seconds
	}
	t3d := saved(machine.T3D())
	ws := saved(machine.Workstation())
	t.Logf("modelled seconds saved by ILUT*: T3D=%.4f workstation=%.4f", t3d, ws)
	if ws < 5*t3d {
		t.Errorf("slow network should amplify the absolute cost of ILUT's extra levels: saved T3D %.4f vs workstation %.4f", t3d, ws)
	}
}

func TestRunILU0Smoke(t *testing.T) {
	c := tiny()
	var buf bytes.Buffer
	if err := c.RunILU0(&buf, c.G0()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "ILU(0)") {
		t.Errorf("ilu0 output incomplete:\n%s", buf.String())
	}
}

func TestRunBreakdownSmoke(t *testing.T) {
	c := tiny()
	var buf bytes.Buffer
	if err := c.RunBreakdown(&buf, c.G0()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "%") {
		t.Errorf("breakdown output incomplete:\n%s", buf.String())
	}
}
